// ftdl-info — inspection utility.
//
//   ftdl-info devices                 list the device zoo
//   ftdl-info models                  list the model zoo with Table I stats
//   ftdl-info config D1 D2 D3 DEVICE  validate an overlay shape + timing
//   ftdl-info disasm FILE.hex         disassemble an InstBUS word dump
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/str_util.h"
#include "common/table.h"
#include "ftdl/ftdl.h"
#include "timing/timing_report.h"

namespace {

using namespace ftdl;

int cmd_devices() {
  AsciiTable t({"Device", "Family", "DSPs", "cols x per-col", "BRAM18",
                "CLBs", "DSP fmax", "BRAM fmax"});
  for (const std::string& name : fpga::device_names()) {
    const fpga::Device d = fpga::device_by_name(name);
    t.row({d.name, to_string(d.family), std::to_string(d.total_dsp()),
           strformat("%d x %d", d.dsp_columns, d.dsp_per_column),
           std::to_string(d.total_bram18()), std::to_string(d.clb_count),
           format_hz(d.timing.dsp_fmax_hz), format_hz(d.timing.bram_fmax_hz)});
  }
  t.print();
  return 0;
}

int cmd_models() {
  AsciiTable t({"Model", "Layers", "Overlay layers", "Total ops",
                "CONV/MM/EWOP", "Weights (16b)"});
  auto models = nn::mlperf_models();
  models.push_back(nn::mobilenet_v1());
  for (const nn::Network& net : models) {
    const nn::NetworkStats s = net.stats();
    t.row({net.name(), std::to_string(net.layers().size()),
           std::to_string(net.overlay_layers().size()),
           format_count(double(s.total_ops())),
           strformat("%.2f/%.2f/%.2f%%", 100 * s.conv_fraction(),
                     100 * s.mm_fraction(), 100 * s.ewop_fraction()),
           format_bytes(double(s.weight_bytes()))});
  }
  t.print();
  return 0;
}

/// Strict positional parsing (common/str_util): `ftdl-info config 12 x5 20`
/// is a usage error, never a silent 0.
int parse_dim(const char* what, const char* s) {
  std::int64_t v = 0;
  if (!parse_int_strict(s, 1, 1'000'000, &v)) {
    std::fprintf(stderr, "ftdl-info: %s needs a positive integer, got '%s'\n",
                 what, s);
    std::exit(2);
  }
  return static_cast<int>(v);
}

int cmd_config(int argc, char** argv) {
  if (argc < 6) {
    std::fprintf(stderr, "usage: ftdl-info config D1 D2 D3 DEVICE\n");
    return 2;
  }
  arch::OverlayConfig cfg = arch::paper_config();
  cfg.d1 = parse_dim("D1", argv[2]);
  cfg.d2 = parse_dim("D2", argv[3]);
  cfg.d3 = parse_dim("D3", argv[4]);
  const fpga::Device dev = fpga::device_by_name(argv[5]);
  try {
    timing::OverlayGeometry g;
    g.d1 = cfg.d1;
    g.d2 = cfg.d2;
    g.d3 = cfg.d3;
    std::fputs(timing::render_timing_report(dev, g, cfg.clocks).c_str(),
               stdout);
    cfg.validate_for_device(dev);
    std::printf("\n%s fits %s.\n", cfg.to_string().c_str(), dev.name.c_str());
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "invalid: %s\n", e.what());
    return 1;
  }
}

int cmd_disasm(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: ftdl-info disasm FILE.hex\n");
    return 2;
  }
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 1;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') {
      std::printf("%s\n", line.c_str());
      continue;
    }
    try {
      const arch::Instruction inst =
          arch::decode(std::stoull(line, nullptr, 16));
      std::printf("%s    %s\n", line.c_str(), inst.to_string().c_str());
    } catch (const std::exception& e) {
      std::printf("%s    <malformed: %s>\n", line.c_str(), e.what());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: ftdl-info devices|models|config|disasm ...\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "devices") return cmd_devices();
  if (cmd == "models") return cmd_models();
  if (cmd == "config") return cmd_config(argc, argv);
  if (cmd == "disasm") return cmd_disasm(argc, argv);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
