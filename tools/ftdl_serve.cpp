// ftdl-serve — batched concurrent inference serving demo (docs/serving.md).
//
// Stands up an ftdl::serve::Server over a model-zoo network (or an .ftdl
// spec), drives it with a multi-client load generator — closed-loop by
// default, fixed-rate with --rate — and reports throughput, batching and
// latency percentiles. With observability on it also writes
//   trace.json    enqueue/batch/execute spans on client and worker tracks
//   metrics.json  serve/* counters, queue-depth and latency gauges
//
//   ftdl-serve [MODEL] [options]
//     MODEL            Table I model name (default Sentimental-seqCNN)
//                      or a .ftdl network-spec path
//     --list           list the model zoo and exit
//     --requests N     total requests to submit        (default 16)
//     --clients N      load-generator threads          (default 4)
//     --workers N      server worker threads           (default 2)
//     --batch N        max dynamic batch size          (default 8)
//     --timeout-us N   batch coalescing timeout        (default 2000)
//     --depth N        admission queue depth           (default 64)
//     --rate R         submissions/sec across all clients (0 = closed loop)
//     --path ref|sim   execution path                  (default ref)
//     --seed N         request input seed base         (default 1)
//     --check          verify outputs bit-identical to a workers=1 rerun
//     --trace FILE     trace output path               (default trace.json)
//     --metrics FILE   metrics output path             (default metrics.json)
//     --stream FILE    also record an ftdl-stream-v1 binary event log
//                      (docs/obs-stream-format.md); replay/verify it with
//                      ftdl-obsq (docs/operations.md)
//     --cache-dir DIR  persistent program cache (FTDL_CACHE_DIR env); a
//                      restarted server warm-starts its compiles from disk
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "compiler/program_store.h"
#include "compiler/session.h"
#include "frontend/spec_parser.h"
#include "nn/model_zoo.h"
#include "obs/obs.h"
#include "obs/stream_writer.h"
#include "serve/serve.h"

namespace {

using namespace ftdl;

struct Args {
  std::string model = "Sentimental-seqCNN";
  std::string trace_path = "trace.json";
  std::string metrics_path = "metrics.json";
  std::string stream_path;  ///< empty = no binary event log
  int requests = 16;
  int clients = 4;
  int workers = 2;
  int max_batch = 8;
  std::int64_t timeout_us = 2'000;
  std::size_t depth = 64;
  double rate = 0.0;  ///< 0 = closed loop
  std::uint64_t seed = 1;
  std::string cache_dir;
  bool sim_path = false;
  bool check = false;
  bool list = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "ftdl-serve: %s\n", msg);
  std::fprintf(stderr,
               "usage: ftdl-serve [MODEL|SPEC.ftdl] [--requests N] "
               "[--clients N] [--workers N]\n"
               "                  [--batch N] [--timeout-us N] [--depth N] "
               "[--rate R] [--path ref|sim]\n"
               "                  [--seed N] [--check] [--trace FILE] "
               "[--metrics FILE] [--stream FILE]\n"
               "                  [--cache-dir DIR] [--list]\n");
  std::exit(2);
}

/// Strict flag parsing (common/str_util): `--workers x8` is a usage error,
/// never a silent 0.
std::int64_t parse_int_flag(const char* opt, const char* s, std::int64_t min_v,
                            std::int64_t max_v) {
  std::int64_t v = 0;
  if (!parse_int_strict(s, min_v, max_v, &v)) {
    usage((std::string(opt) + " needs an integer in [" +
           std::to_string(min_v) + ", " + std::to_string(max_v) + "], got '" +
           s + "'")
              .c_str());
  }
  return v;
}

double parse_nonneg_double_flag(const char* opt, const char* s) {
  double v = 0.0;
  if (!parse_double_strict(s, &v) || v < 0.0) {
    usage((std::string(opt) + " needs a non-negative number, got '" + s + "'")
              .c_str());
  }
  return v;
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--requests") == 0)
      args.requests = static_cast<int>(parse_int_flag(a, next(i), 1, 1'000'000));
    else if (std::strcmp(a, "--clients") == 0)
      args.clients = static_cast<int>(parse_int_flag(a, next(i), 1, 10'000));
    else if (std::strcmp(a, "--workers") == 0)
      args.workers = static_cast<int>(parse_int_flag(a, next(i), 1, 10'000));
    else if (std::strcmp(a, "--batch") == 0)
      args.max_batch = static_cast<int>(parse_int_flag(a, next(i), 1, 100'000));
    else if (std::strcmp(a, "--timeout-us") == 0)
      args.timeout_us = parse_int_flag(a, next(i), 0, 1'000'000'000);
    else if (std::strcmp(a, "--depth") == 0)
      args.depth =
          static_cast<std::size_t>(parse_int_flag(a, next(i), 1, 1'000'000));
    else if (std::strcmp(a, "--rate") == 0)
      args.rate = parse_nonneg_double_flag(a, next(i));
    else if (std::strcmp(a, "--seed") == 0)
      args.seed = static_cast<std::uint64_t>(
          parse_int_flag(a, next(i), 0, 9'223'372'036'854'775'807LL));
    else if (std::strcmp(a, "--cache-dir") == 0) args.cache_dir = next(i);
    else if (std::strcmp(a, "--path") == 0) {
      const std::string p = next(i);
      if (p == "sim") args.sim_path = true;
      else if (p != "ref") usage("--path must be ref or sim");
    }
    else if (std::strcmp(a, "--check") == 0) args.check = true;
    else if (std::strcmp(a, "--trace") == 0) args.trace_path = next(i);
    else if (std::strcmp(a, "--metrics") == 0) args.metrics_path = next(i);
    else if (std::strcmp(a, "--stream") == 0) args.stream_path = next(i);
    else if (std::strcmp(a, "--list") == 0) args.list = true;
    else if (a[0] == '-') usage(("unknown option " + std::string(a)).c_str());
    else args.model = a;
  }
  if (args.requests < 1) usage("--requests must be >= 1");
  if (args.clients < 1) usage("--clients must be >= 1");
  return args;
}

nn::Network load_network(const std::string& model) {
  if (model.size() > 5 && model.substr(model.size() - 5) == ".ftdl") {
    std::ifstream in(model);
    if (!in) throw Error("cannot open spec " + model);
    std::ostringstream text;
    text << in.rdbuf();
    return frontend::parse_network_spec(text.str());
  }
  return nn::model_by_name(model);
}

nn::Tensor16 request_input(const nn::Network& net, std::uint64_t seed) {
  const nn::Layer& first = net.layers().front();
  nn::Tensor16 input =
      first.kind == nn::LayerKind::MatMul
          ? nn::Tensor16({static_cast<int>(first.mm_m),
                          static_cast<int>(first.mm_p)})
          : nn::Tensor16({first.in_c, first.in_h, first.in_w});
  Rng rng(seed);
  input.fill_random(rng);
  return input;
}

struct LoadResult {
  std::vector<nn::Tensor16> outputs;  ///< indexed by request; empty if lost
  std::int64_t submitted = 0;
  std::int64_t rejected = 0;
  double wall_seconds = 0.0;
};

/// Submits `n` seeded requests from `clients` threads. Closed loop when
/// rate == 0 (each client waits for its result before the next submit);
/// otherwise open loop paced to `rate` submissions/sec overall, collecting
/// futures as they resolve. Rejected submissions (backpressure) are counted
/// and not retried.
LoadResult run_load(serve::Server& server, const nn::Network& net,
                    const Args& args) {
  LoadResult lr;
  lr.outputs.resize(static_cast<std::size_t>(args.requests));
  std::atomic<int> next{0};
  std::atomic<std::int64_t> rejected{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(args.clients));
  for (int c = 0; c < args.clients; ++c) {
    threads.emplace_back([&, c] {
      obs::set_thread_track_name("client-" + std::to_string(c));
      std::vector<std::pair<int, std::future<serve::InferenceResult>>> open;
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= args.requests) break;
        if (args.rate > 0.0) {
          // Fixed-rate pacing: request i is due at start + i/rate.
          const auto due =
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(double(i) / args.rate));
          std::this_thread::sleep_until(due);
        }
        serve::Submission s =
            server.submit(request_input(net, args.seed + std::uint64_t(i)));
        if (!s.accepted) {
          rejected.fetch_add(1);
          continue;
        }
        if (args.rate > 0.0) {
          open.emplace_back(i, std::move(s.result));
        } else {
          lr.outputs[static_cast<std::size_t>(i)] = s.result.get().output;
        }
      }
      for (auto& [i, fut] : open) {
        lr.outputs[static_cast<std::size_t>(i)] = fut.get().output;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  lr.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  lr.submitted = args.requests;
  lr.rejected = rejected.load();
  return lr;
}

serve::ServerOptions server_options(const Args& args) {
  serve::ServerOptions opt;
  opt.workers = args.workers;
  opt.max_batch = args.max_batch;
  opt.batch_timeout_us = args.timeout_us;
  opt.queue_depth = args.depth;
  if (args.sim_path) {
    opt.exec.path = runtime::OverlayPath::CycleSim;
    // Scaled-down overlay: the functional simulator executes every MACC.
    opt.exec.config.d1 = 4;
    opt.exec.config.d2 = 2;
    opt.exec.config.d3 = 3;
  }
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.list) {
    for (const nn::Network& net : nn::mlperf_models()) {
      std::printf("%s\n", net.name().c_str());
    }
    return 0;
  }

  try {
    obs::Registry& reg = obs::Registry::global();
    reg.reset();
    // Attach the streaming backend (when requested) after the reset so the
    // log sees the run from its first event.
    obs::set_enabled(true, args.stream_path);

    const std::string cache_dir = compiler::resolve_cache_dir(args.cache_dir);
    if (!cache_dir.empty()) {
      compiler::CompilerSession::global().set_store(
          std::make_shared<compiler::ProgramStore>(cache_dir));
    }

    const nn::Network net = load_network(args.model);
    const runtime::WeightStore weights =
        runtime::WeightStore::random_for(net, args.seed + 1'000);

    std::printf("ftdl-serve: %s, %d requests from %d clients (%s)\n",
                net.name().c_str(), args.requests, args.clients,
                args.rate > 0.0 ? "fixed-rate" : "closed-loop");

    serve::Server server(net, weights, server_options(args));
    const LoadResult lr = run_load(server, net, args);
    server.stop();
    const serve::ServerStats st = server.stats();

    std::printf("  %lld completed, %lld rejected, %lld failed in %.3f s "
                "(%.1f req/s)\n",
                static_cast<long long>(st.completed),
                static_cast<long long>(lr.rejected),
                static_cast<long long>(st.failed), lr.wall_seconds,
                double(st.completed) / lr.wall_seconds);
    std::printf("  batches: %lld (mean size %.2f, max %lld), peak queue %lld\n",
                static_cast<long long>(st.batches), st.mean_batch_size(),
                static_cast<long long>(st.max_batch_observed),
                static_cast<long long>(st.peak_queue_depth));
    std::printf("  latency us: p50 %.0f  p95 %.0f  p99 %.0f  max %.0f\n",
                st.latency.percentile(50.0), st.latency.percentile(95.0),
                st.latency.percentile(99.0), st.latency.max_us());

    if (!cache_dir.empty()) {
      const compiler::SessionStats cs =
          compiler::CompilerSession::global().stats();
      std::printf(
          "  cache %s: disk_hits=%lld disk_misses=%lld disk_evictions=%lld "
          "disk_bytes=%lld\n",
          cache_dir.c_str(), static_cast<long long>(cs.disk_hits),
          static_cast<long long>(cs.disk_misses),
          static_cast<long long>(cs.disk_evictions),
          static_cast<long long>(cs.disk_bytes));
    }

    if (args.check) {
      // Replay the same request set on a serial server: every output the
      // concurrent run produced must be bit-identical (docs/serving.md).
      serve::ServerOptions serial = server_options(args);
      serial.workers = 1;
      serial.max_batch = 1;
      serial.batch_timeout_us = 0;
      serve::Server ref(net, weights, serial);
      std::int64_t checked = 0;
      for (int i = 0; i < args.requests; ++i) {
        if (lr.outputs[static_cast<std::size_t>(i)].size() == 0) continue;
        serve::Submission s =
            ref.submit(request_input(net, args.seed + std::uint64_t(i)));
        if (!s.accepted) throw Error("check rerun rejected a request");
        if (!(s.result.get().output == lr.outputs[static_cast<std::size_t>(i)]))
          throw Error("determinism check FAILED at request " +
                      std::to_string(i));
        ++checked;
      }
      ref.stop();
      std::printf("  check: %lld outputs bit-identical to workers=1\n",
                  static_cast<long long>(checked));
    }

    reg.write_chrome_trace(args.trace_path);
    reg.write_metrics(args.metrics_path);
    std::printf("wrote %s (%zu events) and %s\n", args.trace_path.c_str(),
                reg.event_count(), args.metrics_path.c_str());
    if (reg.stream_attached()) {
      const obs::stream::StreamStats ss = reg.detach_stream();
      std::printf("wrote %s (%llu records, %llu chunks, %llu bytes)\n",
                  args.stream_path.c_str(),
                  static_cast<unsigned long long>(ss.records),
                  static_cast<unsigned long long>(
                      ss.data_chunks + ss.string_chunks),
                  static_cast<unsigned long long>(ss.bytes_written));
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "ftdl-serve: %s\n", e.what());
    return 1;
  }
}
