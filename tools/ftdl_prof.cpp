// ftdl-prof — cross-layer observability profiler (docs/observability.md).
//
// Runs a model-zoo network (or an .ftdl spec) through the full stack with
// ftdl::obs collection enabled — compile + schedule (wall-clock compiler
// spans), host-pipeline evaluation, multi-FPGA pipeline planning, and a
// cycle-level simulation of the whole network on a scaled-down overlay
// (virtual-clock timelines of LoopT bursts, ActBUF refills, PSumBUF drains
// and stalls) — then writes
//   trace.json    Chrome trace-event JSON (open in https://ui.perfetto.dev)
//   metrics.json  flat counters/gauges snapshot (schema ftdl-metrics-v1)
//
//   ftdl-prof [MODEL] [options]
//     MODEL               Table I model name (default Sentimental-seqCNN)
//                         or a .ftdl network-spec path
//     --list              list the model zoo and exit
//     --trace FILE        trace output path    (default trace.json)
//     --metrics FILE      metrics output path  (default metrics.json)
//     --stream FILE       also record an ftdl-stream-v1 binary event log
//                         (docs/obs-stream-format.md; query with ftdl-obsq)
//     --budget N          mapping-search budget per layer (default 8000)
//     --jobs N            compiler parallelism (default: FTDL_JOBS env, else
//                         the hardware thread count; results bit-identical)
//     --no-sim            skip the cycle-level execution phase
//     --sim-macs-limit N  skip simulation above N network MACs (default 5e8;
//                         the functional simulator executes every MACC)
//     --cache-dir DIR     persistent program cache (FTDL_CACHE_DIR env);
//                         repeat profiles warm-start compiles from disk
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "analyze/analyze.h"
#include "arch/overlay_config.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "compiler/program_store.h"
#include "compiler/session.h"
#include "frontend/spec_parser.h"
#include "host/host_pipeline.h"
#include "multifpga/partition.h"
#include "nn/model_zoo.h"
#include "obs/obs.h"
#include "obs/stream_writer.h"
#include "runtime/executor.h"

namespace {

using namespace ftdl;

struct Args {
  std::string model = "Sentimental-seqCNN";
  std::string trace_path = "trace.json";
  std::string metrics_path = "metrics.json";
  std::string stream_path;  ///< empty = no binary event log
  std::int64_t budget = 8'000;
  std::int64_t sim_macs_limit = 500'000'000;
  std::string cache_dir;
  int jobs = 0;  ///< 0 = session default (FTDL_JOBS env / hardware threads)
  bool no_sim = false;
  bool list = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "ftdl-prof: %s\n", msg);
  std::fprintf(stderr,
               "usage: ftdl-prof [MODEL|SPEC.ftdl] [--trace FILE] "
               "[--metrics FILE] [--stream FILE]\n                 "
               "[--budget N] [--jobs N] [--cache-dir DIR] "
               "[--no-sim] [--sim-macs-limit N] [--list]\n");
  std::exit(2);
}

/// Strict flag parsing (common/str_util): `--budget 8k` is a usage error,
/// never a silent 0.
std::int64_t parse_int_flag(const char* opt, const char* s, std::int64_t min_v,
                            std::int64_t max_v) {
  std::int64_t v = 0;
  if (!parse_int_strict(s, min_v, max_v, &v)) {
    usage((std::string(opt) + " needs an integer in [" +
           std::to_string(min_v) + ", " + std::to_string(max_v) + "], got '" +
           s + "'")
              .c_str());
  }
  return v;
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--trace") == 0) args.trace_path = next(i);
    else if (std::strcmp(a, "--metrics") == 0) args.metrics_path = next(i);
    else if (std::strcmp(a, "--stream") == 0) args.stream_path = next(i);
    else if (std::strcmp(a, "--budget") == 0)
      args.budget = parse_int_flag(a, next(i), 1, 1'000'000'000);
    else if (std::strcmp(a, "--jobs") == 0)
      args.jobs = static_cast<int>(parse_int_flag(a, next(i), 1, 1024));
    else if (std::strcmp(a, "--cache-dir") == 0) args.cache_dir = next(i);
    else if (std::strcmp(a, "--sim-macs-limit") == 0)
      args.sim_macs_limit =
          parse_int_flag(a, next(i), 0, 9'223'372'036'854'775'807LL);
    else if (std::strcmp(a, "--no-sim") == 0) args.no_sim = true;
    else if (std::strcmp(a, "--list") == 0) args.list = true;
    else if (a[0] == '-') usage(("unknown option " + std::string(a)).c_str());
    else args.model = a;
  }
  return args;
}

nn::Network load_network(const std::string& model) {
  if (model.size() > 5 && model.substr(model.size() - 5) == ".ftdl") {
    std::ifstream in(model);
    if (!in) throw Error("cannot open spec " + model);
    std::ostringstream text;
    text << in.rdbuf();
    return frontend::parse_network_spec(text.str());
  }
  return nn::model_by_name(model);
}

/// Overlay the cycle-level phase runs on: small enough that functional
/// simulation of a whole network finishes in seconds (the schedule phase
/// still uses the full paper overlay).
arch::OverlayConfig sim_config() {
  arch::OverlayConfig c;
  c.d1 = 4;
  c.d2 = 2;
  c.d3 = 3;
  c.actbuf_words = 128;
  c.wbuf_words = 1024;
  c.psumbuf_words = 2048;
  c.clocks = fpga::ClockPair::from_high(650e6);
  return c;
}

std::int64_t overlay_macs(const nn::Network& net) {
  std::int64_t macs = 0;
  for (const nn::Layer& l : net.layers()) {
    if (l.on_overlay()) macs += l.macs() * l.repeat;
  }
  return macs;
}

nn::Tensor16 network_input(const nn::Network& net, Rng& rng) {
  const nn::Layer& first = net.layers().front();
  nn::Tensor16 input =
      first.kind == nn::LayerKind::MatMul
          ? nn::Tensor16({static_cast<int>(first.mm_m),
                          static_cast<int>(first.mm_p)})
          : nn::Tensor16({first.in_c, first.in_h, first.in_w});
  input.fill_random(rng);
  return input;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.list) {
    for (const nn::Network& net : nn::mlperf_models()) {
      std::printf("%s\n", net.name().c_str());
    }
    return 0;
  }

  try {
    obs::Registry& reg = obs::Registry::global();
    reg.reset();
    // Attach the streaming backend (when requested) after the reset so the
    // log sees the run from its first event.
    obs::set_enabled(true, args.stream_path);

    compiler::CompilerSession& session = compiler::CompilerSession::global();
    if (args.jobs > 0) session.set_jobs(args.jobs);
    const std::string cache_dir = compiler::resolve_cache_dir(args.cache_dir);
    if (!cache_dir.empty()) {
      session.set_store(std::make_shared<compiler::ProgramStore>(cache_dir));
    }

    const nn::Network net = load_network(args.model);
    std::printf("ftdl-prof: %s (%lld overlay MACs)\n", net.name().c_str(),
                static_cast<long long>(overlay_macs(net)));

    // Phase 1 — compile + schedule on the full paper overlay.
    const compiler::NetworkSchedule sched = compiler::schedule_network(
        net, arch::paper_config(), compiler::Objective::Performance,
        args.budget);
    std::printf("  schedule: %.1f FPS, %.1f%% hardware efficiency\n",
                sched.fps(), 100.0 * sched.hardware_efficiency);

    // Phase 2 — host EWOP pipeline + multi-FPGA plan.
    const host::PipelineReport pipe =
        host::evaluate_pipeline(net, sched, host::HostModel{});
    std::printf("  host pipeline: %.2f host/overlay ratio (%s-bound)\n",
                pipe.host_over_overlay,
                pipe.ewop_bounds_throughput ? "host" : "overlay");
    const multifpga::MultiFpgaPlan plan = multifpga::partition_pipeline(sched, 2);
    std::printf("  2-FPGA plan: %.1f FPS, balance %.2f, resident=%s\n",
                plan.fps, plan.balance, plan.weights_resident ? "yes" : "no");
    const analyze::AnalysisResult part_check =
        analyze::analyze_partition(sched, plan);
    if (!part_check.diagnostics.empty()) {
      std::fputs(part_check.to_string().c_str(), stdout);
    }
    std::printf("  partition check: %d error(s), %d warning(s)\n",
                part_check.errors(), part_check.warnings());
    if (!part_check.ok()) return 1;

    // Phase 3 — cycle-level execution on a scaled-down overlay.
    const std::int64_t macs = overlay_macs(net);
    if (args.no_sim) {
      obs::count("prof/sim_skipped");
    } else if (macs > args.sim_macs_limit) {
      std::printf("  cycle sim: SKIPPED (%lld MACs > limit %lld; "
                  "--sim-macs-limit raises it)\n",
                  static_cast<long long>(macs),
                  static_cast<long long>(args.sim_macs_limit));
      obs::count("prof/sim_skipped");
    } else {
      try {
        Rng rng(1);
        const runtime::WeightStore weights =
            runtime::WeightStore::random_for(net, 2);
        runtime::ExecOptions opt;
        opt.path = runtime::OverlayPath::CycleSim;
        opt.config = sim_config();
        opt.search_budget_per_layer = args.budget;
        const runtime::ExecResult r =
            runtime::run_network(net, network_input(net, rng), weights, opt);
        std::printf("  cycle sim: %lld cycles over %zu layer runs\n",
                    static_cast<long long>(r.total_sim_cycles),
                    r.runs.size());
      } catch (const ConfigError& e) {
        // Recurrent networks are not executable feed-forward; the schedule
        // and pipeline phases above still profile them.
        std::printf("  cycle sim: SKIPPED (%s)\n", e.what());
        obs::count("prof/sim_skipped");
      }
    }

    obs::gauge("prof/schedule_fps", sched.fps());
    obs::gauge("prof/schedule_efficiency", sched.hardware_efficiency);

    const compiler::SessionStats ss = session.stats();
    std::printf("  session: jobs=%d, %lld cache hits / %lld misses, "
                "%lld programs (%.1f KiB)\n",
                session.jobs(), static_cast<long long>(ss.hits),
                static_cast<long long>(ss.misses),
                static_cast<long long>(ss.entries),
                double(ss.program_bytes) / 1024.0);
    if (!cache_dir.empty()) {
      std::printf("  cache %s: disk_hits=%lld disk_misses=%lld "
                  "disk_evictions=%lld disk_bytes=%lld\n",
                  cache_dir.c_str(), static_cast<long long>(ss.disk_hits),
                  static_cast<long long>(ss.disk_misses),
                  static_cast<long long>(ss.disk_evictions),
                  static_cast<long long>(ss.disk_bytes));
    }

    reg.write_chrome_trace(args.trace_path);
    reg.write_metrics(args.metrics_path);
    std::printf("wrote %s (%zu events) and %s (%zu counters, %zu gauges)\n",
                args.trace_path.c_str(), reg.event_count(),
                args.metrics_path.c_str(), reg.metrics().counters.size(),
                reg.metrics().gauges.size());
    if (reg.stream_attached()) {
      const obs::stream::StreamStats ss = reg.detach_stream();
      std::printf("wrote %s (%llu records, %llu chunks, %llu bytes)\n",
                  args.stream_path.c_str(),
                  static_cast<unsigned long long>(ss.records),
                  static_cast<unsigned long long>(
                      ss.data_chunks + ss.string_chunks),
                  static_cast<unsigned long long>(ss.bytes_written));
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "ftdl-prof: %s\n", e.what());
    return 1;
  }
}
