// ftdl-lint — static verifier for compiled instruction artifacts.
//
// Disassembles a stream, runs the ftdl::verify analyzer against the
// configured overlay, and annotates every diagnostic on its offending
// instruction line. Accepts either artifact the compiler ships:
//
//   * a .ftdlprog program file (save_program / ftdl-program v1): the full
//     semantic verification — the stored stream must agree with the stored
//     mapping re-evaluated on the given overlay;
//   * an InstBUS hex word dump as written by `ftdlc --emit FILE`: one
//     16-hex-digit word per line, `#` comment lines delimit per-layer
//     streams; structural + resource checks only (no mapping available).
//
//   ftdl-lint FILE [--d1 N --d2 N --d3 N] [--clock MHZ] [--quiet]
//
// Exit status: 0 = clean, 1 = diagnostics with error severity, 2 = usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "arch/isa.h"
#include "arch/overlay_config.h"
#include "common/error.h"
#include "compiler/program_io.h"
#include "compiler/program_verify.h"
#include "verify/verifier.h"

namespace {

using namespace ftdl;

struct Args {
  std::string path;
  arch::OverlayConfig config = arch::paper_config();
  bool quiet = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "ftdl-lint: %s\n", msg);
  std::fprintf(stderr,
               "usage: ftdl-lint FILE [--d1 N --d2 N --d3 N] [--clock MHZ] "
               "[--quiet]\n"
               "  FILE: .ftdlprog artifact or `ftdlc --emit` hex word dump\n");
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--d1") == 0) args.config.d1 = std::atoi(next(i));
    else if (std::strcmp(a, "--d2") == 0) args.config.d2 = std::atoi(next(i));
    else if (std::strcmp(a, "--d3") == 0) args.config.d3 = std::atoi(next(i));
    else if (std::strcmp(a, "--clock") == 0) {
      args.config.clocks = fpga::ClockPair::from_high(std::atof(next(i)) * 1e6);
    } else if (std::strcmp(a, "--quiet") == 0) {
      args.quiet = true;
    } else if (a[0] == '-') {
      usage((std::string("unknown option ") + a).c_str());
    } else if (args.path.empty()) {
      args.path = a;
    } else {
      usage("multiple input files given");
    }
  }
  if (args.path.empty()) usage("no input file given");
  return args;
}

/// One `#`-delimited stream section of an --emit dump.
struct HexSection {
  std::string label;  ///< text of the introducing comment (may be empty)
  std::vector<std::uint64_t> words;
};

std::vector<HexSection> parse_hex_dump(const std::string& text) {
  std::vector<HexSection> sections;
  std::istringstream in(text);
  std::string line;
  auto current = [&]() -> HexSection& {
    if (sections.empty()) sections.push_back(HexSection{});
    return sections.back();
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // A comment starts a new per-layer stream (ftdlc --emit format).
      if (!sections.empty() && sections.back().words.empty() &&
          sections.back().label.empty()) {
        sections.back().label = line;
      } else {
        sections.push_back(HexSection{line, {}});
      }
      continue;
    }
    std::size_t pos = 0;
    std::uint64_t word = 0;
    try {
      word = std::stoull(line, &pos, 16);
    } catch (const std::exception&) {
      throw Error("not a hex InstBUS word: " + line);
    }
    if (pos != line.size()) throw Error("not a hex InstBUS word: " + line);
    current().words.push_back(word);
  }
  return sections;
}

int lint_hex_dump(const std::string& text, const Args& args) {
  int errors = 0;
  for (const HexSection& sec : parse_hex_dump(text)) {
    if (sec.words.empty()) continue;
    const verify::VerifyResult vr = verify::verify_words(sec.words, args.config);
    errors += vr.errors();
    if (!sec.label.empty()) std::printf("%s\n", sec.label.c_str());
    if (!args.quiet || !vr.ok()) {
      std::fputs(verify::annotate(verify::decode_lenient(sec.words), vr).c_str(),
                 stdout);
    }
    std::printf("  -> %d error(s), %d warning(s)\n", vr.errors(), vr.warnings());
  }
  return errors;
}

int lint_program(const std::string& text, const Args& args) {
  compiler::LayerProgram prog;
  try {
    prog = compiler::deserialize_program(text, args.config);
  } catch (const Error& e) {
    // Deserialization already verifies; surface its first diagnostic.
    std::printf("FAIL: %s\n", e.what());
    return 1;
  }
  const verify::VerifyResult vr = compiler::verify_program(prog, args.config);
  std::printf("# %s (x%d weight groups)\n", prog.layer.name.c_str(),
              prog.weight_groups);
  if (!args.quiet || !vr.ok()) {
    std::fputs(verify::annotate(prog.row_stream, vr).c_str(), stdout);
  }
  std::printf("  -> %d error(s), %d warning(s)\n", vr.errors(), vr.warnings());
  return vr.errors();
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  std::ifstream in(args.path);
  if (!in) {
    std::fprintf(stderr, "ftdl-lint: cannot open %s\n", args.path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  try {
    const bool is_program = text.rfind("ftdl-program", 0) == 0;
    const int errors =
        is_program ? lint_program(text, args) : lint_hex_dump(text, args);
    return errors ? 1 : 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "ftdl-lint: error: %s\n", e.what());
    return 2;
  }
}
