// ftdl-lint — static verifier for compiled instruction artifacts.
//
// Disassembles a stream, runs the ftdl::verify analyzer against the
// configured overlay, and annotates every diagnostic on its offending
// instruction line. Accepts any artifact the compiler ships:
//
//   * a .ftdlprog program file (save_program / ftdl-program v1): the full
//     semantic verification — the stored stream must agree with the stored
//     mapping re-evaluated on the given overlay;
//   * an InstBUS hex word dump as written by `ftdlc --emit FILE`: one
//     16-hex-digit word per line, `#` comment lines delimit per-layer
//     streams; structural + resource checks only (no mapping available);
//   * a whole-network bundle (save_network / ftdl-network v1): every
//     embedded program is verified per-stream, then the whole-network
//     analyzer (ftdl::analyze) reports the memory/graph-family
//     diagnostics — overlapping tensor ranges, shape breaks, stale or
//     missing programs.
//
//   ftdl-lint FILE [--network] [--json] [--Werror]
//             [--d1 N --d2 N --d3 N] [--clock MHZ] [--quiet]
//
//   --network  require FILE to be a ftdl-network bundle (the format is
//              auto-detected either way; the flag turns a mismatch into an
//              error instead of falling back)
//   --json     machine-readable diagnostics on stdout (ftdl-lint-v1)
//   --Werror   promote warnings to the failing exit status
//
// Exit status: 0 = clean, 1 = error diagnostics (or any diagnostic under
// --Werror), 2 = usage / unreadable input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/analyze.h"
#include "analyze/network_io.h"
#include "arch/isa.h"
#include "arch/overlay_config.h"
#include "common/error.h"
#include "common/str_util.h"
#include "compiler/program_io.h"
#include "compiler/program_verify.h"
#include "verify/verifier.h"

namespace {

using namespace ftdl;

struct Args {
  std::string path;
  arch::OverlayConfig config = arch::paper_config();
  bool quiet = false;
  bool json = false;
  bool warnings_as_errors = false;
  bool require_network = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "ftdl-lint: %s\n", msg);
  std::fprintf(stderr,
               "usage: ftdl-lint FILE [--network] [--json] [--Werror]\n"
               "                 [--d1 N --d2 N --d3 N] [--clock MHZ] "
               "[--quiet]\n"
               "  FILE: .ftdlprog artifact, ftdl-network bundle, or "
               "`ftdlc --emit` hex word dump\n");
  std::exit(2);
}

/// Strict positive-integer option parsing (common/str_util): rejects garbage
/// and out-of-range values instead of std::atoi's silent 0.
int parse_pos_int(const char* opt, const char* s) {
  std::int64_t v = 0;
  if (!parse_int_strict(s, 1, 1'000'000, &v)) {
    usage((std::string(opt) + " needs a positive integer, got '" + s + "'")
              .c_str());
  }
  return static_cast<int>(v);
}

double parse_pos_double(const char* opt, const char* s) {
  double v = 0.0;
  if (!parse_double_strict(s, &v) || !(v > 0.0)) {
    usage((std::string(opt) + " needs a positive number, got '" + s + "'")
              .c_str());
  }
  return v;
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--d1") == 0) args.config.d1 = parse_pos_int(a, next(i));
    else if (std::strcmp(a, "--d2") == 0) args.config.d2 = parse_pos_int(a, next(i));
    else if (std::strcmp(a, "--d3") == 0) args.config.d3 = parse_pos_int(a, next(i));
    else if (std::strcmp(a, "--clock") == 0) {
      args.config.clocks =
          fpga::ClockPair::from_high(parse_pos_double(a, next(i)) * 1e6);
    } else if (std::strcmp(a, "--quiet") == 0) {
      args.quiet = true;
    } else if (std::strcmp(a, "--json") == 0) {
      args.json = true;
    } else if (std::strcmp(a, "--Werror") == 0) {
      args.warnings_as_errors = true;
    } else if (std::strcmp(a, "--network") == 0) {
      args.require_network = true;
    } else if (a[0] == '-') {
      usage((std::string("unknown option ") + a).c_str());
    } else if (args.path.empty()) {
      args.path = a;
    } else {
      usage("multiple input files given");
    }
  }
  if (args.path.empty()) usage("no input file given");
  return args;
}

/// One diagnostic in the unified report (stream diagnostics carry an
/// instruction index; network diagnostics carry a `where` entity).
struct ReportEntry {
  std::string severity;
  std::string check;
  std::string section;  ///< stream section / program label (may be empty)
  std::string where;    ///< network-level entity (may be empty)
  int index = -1;       ///< instruction index; -1 = not a stream diagnostic
  std::string message;
};

struct Report {
  std::string mode;
  std::vector<ReportEntry> entries;
  int errors = 0;
  int warnings = 0;

  void add_stream(const std::string& section, const verify::VerifyResult& vr) {
    errors += vr.errors();
    warnings += vr.warnings();
    for (const verify::Diagnostic& d : vr.diagnostics) {
      entries.push_back(ReportEntry{verify::to_string(d.severity),
                                    verify::to_string(d.check), section, "",
                                    d.index, d.message});
    }
  }

  void add_network(const analyze::AnalysisResult& ar) {
    errors += ar.errors();
    warnings += ar.warnings();
    for (const analyze::Diagnostic& d : ar.diagnostics) {
      entries.push_back(ReportEntry{verify::to_string(d.severity),
                                    analyze::to_string(d.check), "", d.where,
                                    -1, d.message});
    }
  }
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void print_json(const Args& args, const Report& report) {
  std::printf("{\n  \"schema\": \"ftdl-lint-v1\",\n  \"file\": \"%s\",\n"
              "  \"mode\": \"%s\",\n  \"diagnostics\": [",
              json_escape(args.path).c_str(), report.mode.c_str());
  bool first = true;
  for (const ReportEntry& e : report.entries) {
    std::printf("%s\n    {\"severity\": \"%s\", \"check\": \"%s\"",
                first ? "" : ",", e.severity.c_str(), e.check.c_str());
    first = false;
    if (!e.section.empty())
      std::printf(", \"section\": \"%s\"", json_escape(e.section).c_str());
    if (!e.where.empty())
      std::printf(", \"where\": \"%s\"", json_escape(e.where).c_str());
    if (e.index >= 0) std::printf(", \"index\": %d", e.index);
    std::printf(", \"message\": \"%s\"}", json_escape(e.message).c_str());
  }
  std::printf("%s],\n  \"errors\": %d,\n  \"warnings\": %d\n}\n",
              report.entries.empty() ? "" : "\n  ", report.errors,
              report.warnings);
}

/// One `#`-delimited stream section of an --emit dump.
struct HexSection {
  std::string label;  ///< text of the introducing comment (may be empty)
  std::vector<std::uint64_t> words;
};

std::vector<HexSection> parse_hex_dump(const std::string& text) {
  std::vector<HexSection> sections;
  std::istringstream in(text);
  std::string line;
  auto current = [&]() -> HexSection& {
    if (sections.empty()) sections.push_back(HexSection{});
    return sections.back();
  };
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // A comment starts a new per-layer stream (ftdlc --emit format).
      if (!sections.empty() && sections.back().words.empty() &&
          sections.back().label.empty()) {
        sections.back().label = line;
      } else {
        sections.push_back(HexSection{line, {}});
      }
      continue;
    }
    std::size_t pos = 0;
    std::uint64_t word = 0;
    try {
      word = std::stoull(line, &pos, 16);
    } catch (const std::exception&) {
      throw Error("not a hex InstBUS word: " + line);
    }
    if (pos != line.size()) throw Error("not a hex InstBUS word: " + line);
    current().words.push_back(word);
  }
  return sections;
}

void lint_hex_dump(const std::string& text, const Args& args,
                   Report& report) {
  report.mode = "hex";
  for (const HexSection& sec : parse_hex_dump(text)) {
    if (sec.words.empty()) continue;
    const verify::VerifyResult vr = verify::verify_words(sec.words, args.config);
    report.add_stream(sec.label, vr);
    if (args.json) continue;
    if (!sec.label.empty()) std::printf("%s\n", sec.label.c_str());
    if (!args.quiet || !vr.ok()) {
      std::fputs(verify::annotate(verify::decode_lenient(sec.words), vr).c_str(),
                 stdout);
    }
    std::printf("  -> %d error(s), %d warning(s)\n", vr.errors(), vr.warnings());
  }
}

void lint_program(const std::string& text, const Args& args, Report& report) {
  report.mode = "program";
  compiler::LayerProgram prog = compiler::deserialize_program(text, args.config);
  const verify::VerifyResult vr = compiler::verify_program(prog, args.config);
  const std::string label = "# " + prog.layer.name + " (x" +
                            std::to_string(prog.weight_groups) +
                            " weight groups)";
  report.add_stream(label, vr);
  if (args.json) return;
  std::printf("%s\n", label.c_str());
  if (!args.quiet || !vr.ok()) {
    std::fputs(verify::annotate(prog.row_stream, vr).c_str(), stdout);
  }
  std::printf("  -> %d error(s), %d warning(s)\n", vr.errors(), vr.warnings());
}

void lint_network(const std::string& text, const Args& args, Report& report) {
  report.mode = "network";
  // Per-program verification happens inside the bundle parse (each embedded
  // program re-runs the analytical model + stream verifier, throwing on the
  // first mismatch); the network-level analyzer then reports everything
  // it finds instead of stopping at the first.
  const analyze::ScheduledNetwork sn =
      analyze::parse_network_bundle(text, args.config);
  const analyze::AnalysisResult ar = analyze::analyze_network(sn);
  report.add_network(ar);
  if (args.json) return;
  std::printf("# %s: %zu layers, %zu programs, %llu-word DRAM image\n",
              sn.net.name().c_str(), sn.net.layers().size(),
              sn.schedule.layers.size(),
              static_cast<unsigned long long>(sn.memory.image_words));
  if (!args.quiet || !ar.ok()) std::fputs(ar.to_string().c_str(), stdout);
  std::printf("  -> %d error(s), %d warning(s)\n", ar.errors(), ar.warnings());
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  std::ifstream in(args.path);
  if (!in) {
    std::fprintf(stderr, "ftdl-lint: cannot open %s\n", args.path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Report report;
  try {
    const bool is_network = text.rfind("ftdl-network", 0) == 0;
    const bool is_program = text.rfind("ftdl-program", 0) == 0;
    if (args.require_network && !is_network)
      throw Error("--network given but the input is not a ftdl-network "
                  "bundle");
    if (is_network) lint_network(text, args, report);
    else if (is_program) lint_program(text, args, report);
    else lint_hex_dump(text, args, report);
  } catch (const Error& e) {
    // Undecodable artifacts (bad format, or an embedded program whose
    // stream disagrees with its mapping) fail before diagnostics exist.
    if (args.json) {
      std::printf("{\n  \"schema\": \"ftdl-lint-v1\",\n  \"file\": \"%s\",\n"
                  "  \"fatal\": \"%s\",\n  \"errors\": 1,\n"
                  "  \"warnings\": 0\n}\n",
                  json_escape(args.path).c_str(),
                  json_escape(e.what()).c_str());
    } else {
      std::printf("FAIL: %s\n", e.what());
    }
    return 1;
  }
  if (args.json) print_json(args, report);
  const bool fail =
      report.errors > 0 || (args.warnings_as_errors && report.warnings > 0);
  return fail ? 1 : 0;
}
