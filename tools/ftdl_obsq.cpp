// ftdl-obsq — offline query/verify tool for ftdl-stream-v1 event logs
// (format spec: docs/obs-stream-format.md; workflows: docs/operations.md).
//
// Loads a log recorded by `ftdl-serve --stream` / `ftdl-prof --stream` (or
// any obs::stream::StreamWriter) and operates on the reconstructed run:
//
//   ftdl-obsq LOG [options]
//     (no option)      summary: framing, records, tracks, spans, health
//     --check          verify structural invariants (contiguous chunk and
//                      record sequences, balanced + monotonic spans,
//                      resolvable strings); exit 1 with the offending
//                      sequence number on the first violation
//     --txns           reconstruct request transactions (enqueue ->
//                      batch/execute chains recorded by ftdl::serve) and
//                      print one line per request
//     --trace FILE     export Chrome trace-event JSON from the log —
//                      byte-identical to the live registry's export for
//                      the same run
//     --metrics FILE   export the ftdl-metrics-v1 snapshot from the log
//     --hexdump        print the raw log bytes xxd-style (the rendering
//                      the format spec's worked example uses)
//
// Exit status: 0 = loaded fine and (with --check) all invariants hold;
// 1 = damage or an invariant violation; 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "obs/obs.h"
#include "obs/stream_reader.h"

namespace {

using namespace ftdl;
using namespace ftdl::obs::stream;

struct Args {
  std::string log_path;
  std::string trace_path;    ///< empty = no trace export
  std::string metrics_path;  ///< empty = no metrics export
  bool check = false;
  bool txns = false;
  bool hexdump = false;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "ftdl-obsq: %s\n", msg);
  std::fprintf(stderr,
               "usage: ftdl-obsq LOG [--check] [--txns] [--trace FILE] "
               "[--metrics FILE] [--hexdump]\n");
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--check") == 0) args.check = true;
    else if (std::strcmp(a, "--txns") == 0) args.txns = true;
    else if (std::strcmp(a, "--hexdump") == 0) args.hexdump = true;
    else if (std::strcmp(a, "--trace") == 0) args.trace_path = next(i);
    else if (std::strcmp(a, "--metrics") == 0) args.metrics_path = next(i);
    else if (a[0] == '-') usage(("unknown option " + std::string(a)).c_str());
    else if (!args.log_path.empty()) usage("more than one LOG argument");
    else args.log_path = a;
  }
  if (args.log_path.empty()) usage("missing LOG argument");
  return args;
}

void write_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open " + path + " for writing");
  out << body;
}

void print_summary(const Args& args, const LoadedLog& log,
                   const ReconstructedLog& r) {
  std::printf("%s: ftdl-stream-v%u, %llu bytes\n", args.log_path.c_str(),
              log.version, static_cast<unsigned long long>(log.file_bytes));
  std::printf("  chunks: %zu complete, records: %zu, strings: %zu\n",
              log.chunks.size(), log.records.size(), log.strings.size());
  std::size_t begins = 0, ends = 0, counters = 0, gauges = 0, annos = 0;
  for (const Record& rec : log.records) {
    switch (static_cast<RecordKind>(rec.kind)) {
      case RecordKind::SpanBegin: ++begins; break;
      case RecordKind::SpanEnd: ++ends; break;
      case RecordKind::CounterAdd: ++counters; break;
      case RecordKind::GaugeSet: ++gauges; break;
      case RecordKind::Annotate: ++annos; break;
      default: break;
    }
  }
  std::printf("  tracks: %zu, span begins/ends: %zu/%zu, counter adds: %zu, "
              "gauge sets: %zu, annotations: %zu\n",
              r.tracks.size(), begins, ends, counters, gauges, annos);
  for (std::size_t i = 0; i < r.tracks.size(); ++i) {
    std::printf("    track %zu: %s / %s\n", i, r.tracks[i].process.c_str(),
                r.tracks[i].thread.c_str());
  }
  if (log.truncated) {
    std::printf("  TRUNCATED at byte %llu (incomplete tail chunk)\n",
                static_cast<unsigned long long>(log.truncation_offset));
  }
  for (const std::string& e : log.errors) {
    std::printf("  DAMAGE: %s\n", e.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.hexdump) {
      std::fputs(format_hex_dump(read_file_bytes(args.log_path)).c_str(),
                 stdout);
      return 0;
    }

    const LoadedLog log = load_stream(args.log_path);
    const ReconstructedLog r = reconstruct(log);

    if (!args.trace_path.empty())
      write_file(args.trace_path, obs::render_chrome_trace(r.tracks, r.events));
    if (!args.metrics_path.empty())
      write_file(args.metrics_path, obs::render_metrics_json(r.metrics));

    if (args.check) {
      const CheckReport report = check_log(log);
      std::fputs(report.to_string().c_str(), stdout);
      if (!report.ok()) return 1;
    } else if (args.txns) {
      const std::vector<Transaction> txns = reconstruct_transactions(r);
      std::printf("%zu transaction(s)\n", txns.size());
      for (const Transaction& t : txns) {
        if (!t.reject_reason.empty()) {
          std::printf("  request %llu: REJECTED (%s) at %.1f us\n",
                      static_cast<unsigned long long>(t.request),
                      t.reject_reason.c_str(), t.enqueue_ts);
          continue;
        }
        std::printf("  request %llu: enqueue %.1f us (+%.1f)",
                    static_cast<unsigned long long>(t.request), t.enqueue_ts,
                    t.enqueue_dur);
        if (t.has_execute) {
          std::printf("  execute %.1f us (+%.1f) in batch %llu (size %d)",
                      t.execute_ts, t.execute_dur,
                      static_cast<unsigned long long>(t.batch), t.batch_size);
        } else {
          std::printf("  (no execute recorded)");
        }
        std::printf("\n");
      }
    } else {
      print_summary(args, log, r);
      // Damage fails the plain summary too so scripted use is safe.
      if (log.truncated || !log.errors.empty()) return 1;
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "ftdl-obsq: %s\n", e.what());
    return 1;
  }
}
