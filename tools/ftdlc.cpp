// ftdlc — the FTDL command-line compiler.
//
// Compiles a network spec (see src/frontend/spec_parser.h for the grammar)
// onto a parameterized overlay, printing the per-layer schedule and the
// network roll-up; optionally emits the controllers' encoded instruction
// streams.
//
//   ftdlc NETWORK.ftdl [options]
//     --device NAME        target device          (default xcvu125)
//     --d1 N --d2 N --d3 N overlay shape          (default 12 5 20)
//     --clock MHZ          CLKh in MHz            (default 650)
//     --objective obj1|obj2  scheduling objective (default obj1)
//     --budget N           search budget/layer    (default 60000)
//     --jobs N             compiler parallelism   (default: FTDL_JOBS env,
//                          else the hardware thread count; output is
//                          bit-identical for any value)
//     --emit FILE          write instruction words (hex) to FILE
//     --bundle FILE        write the whole-network ftdl-network bundle
//     --verify             statically verify every emitted stream
//     --timing             print the post-P&R style timing report
//     --rtl DIR            generate the overlay's Verilog RTL into DIR
//     --cache-dir DIR      persistent program cache (FTDL_CACHE_DIR env);
//                          a second run warm-starts from disk
//     --quiet              suppress the per-layer table
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "analyze/analyze.h"
#include "analyze/network_io.h"
#include "common/str_util.h"
#include "common/table.h"
#include "compiler/program_store.h"
#include "compiler/program_verify.h"
#include "compiler/session.h"
#include "frontend/spec_parser.h"
#include "ftdl/ftdl.h"
#include "rtlgen/verilog_gen.h"
#include "timing/timing_report.h"
#include "verify/verifier.h"

namespace {

using namespace ftdl;

struct Args {
  std::string spec_path;
  FrameworkOptions fw;
  std::string emit_path;
  std::string bundle_path;
  std::string cache_dir;
  bool quiet = false;
  bool timing = false;
  bool verify = false;
  std::string rtl_dir;
};

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg) std::fprintf(stderr, "ftdlc: %s\n", msg);
  std::fprintf(stderr,
               "usage: ftdlc NETWORK.ftdl [--device NAME] [--d1 N --d2 N "
               "--d3 N]\n             [--clock MHZ] [--objective obj1|obj2] "
               "[--budget N] [--jobs N]\n             [--emit FILE] "
               "[--bundle FILE] [--cache-dir DIR] [--verify] [--quiet]\n");
  std::exit(2);
}

/// Strict flag parsing (common/str_util): garbage like `--jobs x8` is a
/// usage error, never a silent 0.
int parse_int_flag(const char* opt, const char* s, std::int64_t min_v,
                   std::int64_t max_v) {
  std::int64_t v = 0;
  if (!parse_int_strict(s, min_v, max_v, &v)) {
    usage((std::string(opt) + " needs an integer in [" +
           std::to_string(min_v) + ", " + std::to_string(max_v) + "], got '" +
           s + "'")
              .c_str());
  }
  return static_cast<int>(v);
}

double parse_pos_double_flag(const char* opt, const char* s) {
  double v = 0.0;
  if (!parse_double_strict(s, &v) || !(v > 0.0)) {
    usage((std::string(opt) + " needs a positive number, got '" + s + "'")
              .c_str());
  }
  return v;
}

Args parse_args(int argc, char** argv) {
  Args args;
  auto next = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing option value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--device") == 0) args.fw.device_name = next(i);
    else if (std::strcmp(a, "--d1") == 0)
      args.fw.config.d1 = parse_int_flag(a, next(i), 1, 1'000'000);
    else if (std::strcmp(a, "--d2") == 0)
      args.fw.config.d2 = parse_int_flag(a, next(i), 1, 1'000'000);
    else if (std::strcmp(a, "--d3") == 0)
      args.fw.config.d3 = parse_int_flag(a, next(i), 1, 1'000'000);
    else if (std::strcmp(a, "--clock") == 0) {
      args.fw.config.clocks =
          fpga::ClockPair::from_high(parse_pos_double_flag(a, next(i)) * 1e6);
    } else if (std::strcmp(a, "--objective") == 0) {
      const std::string v = next(i);
      if (v == "obj1") args.fw.objective = compiler::Objective::Performance;
      else if (v == "obj2") args.fw.objective = compiler::Objective::Balance;
      else usage("objective must be obj1 or obj2");
    } else if (std::strcmp(a, "--budget") == 0) {
      args.fw.search_budget_per_layer =
          parse_int_flag(a, next(i), 1, 1'000'000'000);
    } else if (std::strcmp(a, "--jobs") == 0) {
      args.fw.jobs = parse_int_flag(a, next(i), 1, 1024);
    } else if (std::strcmp(a, "--cache-dir") == 0) {
      args.cache_dir = next(i);
    } else if (std::strcmp(a, "--emit") == 0) {
      args.emit_path = next(i);
    } else if (std::strcmp(a, "--bundle") == 0) {
      args.bundle_path = next(i);
    } else if (std::strcmp(a, "--quiet") == 0) {
      args.quiet = true;
    } else if (std::strcmp(a, "--verify") == 0) {
      args.verify = true;
    } else if (std::strcmp(a, "--timing") == 0) {
      args.timing = true;
    } else if (std::strcmp(a, "--rtl") == 0) {
      args.rtl_dir = next(i);
    } else if (a[0] == '-') {
      usage((std::string("unknown option ") + a).c_str());
    } else if (args.spec_path.empty()) {
      args.spec_path = a;
    } else {
      usage("multiple spec files given");
    }
  }
  if (args.spec_path.empty()) usage("no spec file given");
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    const std::string cache_dir = compiler::resolve_cache_dir(args.cache_dir);
    if (!cache_dir.empty()) {
      compiler::CompilerSession::global().set_store(
          std::make_shared<compiler::ProgramStore>(cache_dir));
    }

    const nn::Network net = frontend::parse_network_file(args.spec_path);
    Framework fw{args.fw};

    std::printf("ftdlc: %s -> %s on %s (fmax %s)\n", args.spec_path.c_str(),
                fw.config().to_string().c_str(), fw.device().name.c_str(),
                format_hz(fw.timing().clk_h_fmax_hz).c_str());

    if (args.timing) {
      timing::OverlayGeometry g;
      g.d1 = fw.config().d1;
      g.d2 = fw.config().d2;
      g.d3 = fw.config().d3;
      std::fputs(timing::render_timing_report(fw.device(), g,
                                              fw.config().clocks)
                     .c_str(),
                 stdout);
      std::printf("\n");
    }

    const NetworkReport report = fw.evaluate(net);

    if (!args.quiet) {
      AsciiTable table({"Layer", "Kind", "MACs", "Groups", "Cycles", "Eff.",
                        "E_WBUF"});
      for (const compiler::LayerProgram& lp : report.schedule.layers) {
        table.row({lp.layer.name, to_string(lp.layer.kind),
                   format_count(double(lp.layer.macs())),
                   std::to_string(lp.weight_groups),
                   std::to_string(lp.total_cycles()),
                   format_percent(lp.perf.hardware_efficiency),
                   strformat("%.2f", lp.perf.e_wbuf)});
      }
      table.print();
    }

    std::printf(
        "network %s: %zu overlay layers, %s MACs/frame\n"
        "  %.1f inferences/s | efficiency %s | %.1f W | %.1f GOPS/W\n",
        net.name().c_str(), report.schedule.layers.size(),
        format_count(double(report.schedule.overlay_macs)).c_str(),
        report.fps(),
        format_percent(report.schedule.hardware_efficiency).c_str(),
        report.power.total_w(), report.gops_per_w());

    if (!cache_dir.empty()) {
      const compiler::SessionStats cs =
          compiler::CompilerSession::global().stats();
      std::printf(
          "cache %s: disk_hits=%lld disk_misses=%lld disk_evictions=%lld "
          "disk_bytes=%lld\n",
          cache_dir.c_str(), static_cast<long long>(cs.disk_hits),
          static_cast<long long>(cs.disk_misses),
          static_cast<long long>(cs.disk_evictions),
          static_cast<long long>(cs.disk_bytes));
    }

    if (args.verify) {
      int verify_errors = 0, verify_warnings = 0;
      for (const compiler::LayerProgram& lp : report.schedule.layers) {
        const verify::VerifyResult vr =
            compiler::verify_program(lp, fw.config());
        verify_errors += vr.errors();
        verify_warnings += vr.warnings();
        if (!vr.diagnostics.empty()) {
          std::printf("verify %s:\n", lp.layer.name.c_str());
          std::fputs(verify::annotate(lp.row_stream, vr).c_str(), stdout);
        }
      }
      std::printf("verify: %zu streams, %d error(s), %d warning(s)\n",
                  report.schedule.layers.size(), verify_errors,
                  verify_warnings);
      if (verify_errors) return 1;
    }

    // Whole-network static analysis over the compiled schedule: memory plan
    // liveness/overlap, producer/consumer shape agreement, program coverage.
    const analyze::ScheduledNetwork scheduled =
        analyze::make_scheduled(net, report.schedule);
    const analyze::AnalysisResult analysis =
        analyze::analyze_network(scheduled);
    if (!analysis.diagnostics.empty()) {
      std::fputs(analysis.to_string().c_str(), stdout);
    }
    std::printf("analyze: %llu-word DRAM image, %d error(s), %d warning(s)\n",
                static_cast<unsigned long long>(scheduled.memory.image_words),
                analysis.errors(), analysis.warnings());
    if (!analysis.ok()) return 1;

    if (!args.bundle_path.empty()) {
      analyze::save_network(scheduled, args.bundle_path);
      std::printf("network bundle written to %s\n", args.bundle_path.c_str());
    }

    if (!args.rtl_dir.empty()) {
      const int n = rtlgen::write_rtl_bundle(
          rtlgen::generate_overlay_rtl(fw.config()), args.rtl_dir);
      std::printf("%d RTL files written to %s\n", n, args.rtl_dir.c_str());
    }

    if (!args.emit_path.empty()) {
      std::ofstream out(args.emit_path);
      if (!out) throw Error("cannot open " + args.emit_path);
      for (const compiler::LayerProgram& lp : report.schedule.layers) {
        out << "# " << lp.layer.name << " (x" << lp.weight_groups
            << " weight groups)\n";
        for (std::uint64_t word : lp.encoded_stream()) {
          out << strformat("%016llx\n", static_cast<unsigned long long>(word));
        }
      }
      std::printf("instruction streams written to %s\n",
                  args.emit_path.c_str());
    }
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "ftdlc: error: %s\n", e.what());
    return 1;
  }
}
