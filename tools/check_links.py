#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/.

Verifies that every relative link target in the repository's markdown
pages exists on disk, and that every `#fragment` — same-file (`#anchor`)
or cross-file (`page.md#anchor`) — names a real heading in the target
page, using GitHub's heading-to-anchor slug rules (including `-N`
suffixes for duplicate headings). External URLs are skipped. Stdlib-only
so CI needs nothing beyond python3. Exit code 0 when every link
resolves, 1 otherwise, listing each broken link as file:line.

Usage: check_links.py [REPO_ROOT]   (default: parent of this script's dir)
"""

import os
import re
import sys

# Inline links [text](target) and reference definitions [label]: target.
INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_LINK = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)")
FENCE = re.compile(r"^\s*(```|~~~)")
HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def markdown_files(root):
    yield os.path.join(root, "README.md")
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                yield os.path.join(docs, name)


def non_fence_lines(path):
    """Yield (lineno, line) for every line outside code fences."""
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if not in_fence:
                yield lineno, line


def targets_in(path):
    """Yield (lineno, target) for every link in one markdown file."""
    for lineno, line in non_fence_lines(path):
        # Strip inline code spans so `[x](y)` examples don't count.
        stripped = re.sub(r"`[^`]*`", "", line)
        for rx in (INLINE_LINK, IMAGE_LINK, REF_DEF):
            for m in rx.finditer(stripped):
                yield lineno, m.group(1)


def github_slug(text, seen):
    """GitHub's heading-to-anchor rule: drop markup, lowercase, strip
    everything but word chars / spaces / hyphens, hyphenate spaces, and
    suffix -1, -2, ... on repeats (`seen` tracks prior occurrences)."""
    text = re.sub(r"\[([^\]]*)\]\([^)\s]*\)", r"\1", text)  # links -> text
    text = text.replace("`", "").replace("*", "")
    slug = re.sub(r"[^\w\- ]", "", text.strip().lower()).replace(" ", "-")
    if slug in seen:
        seen[slug] += 1
        return f"{slug}-{seen[slug]}"
    seen[slug] = 0
    return slug


def heading_anchors(path, cache={}):
    """The set of valid fragment anchors of one markdown file (cached)."""
    if path not in cache:
        anchors, seen = set(), {}
        for _, line in non_fence_lines(path):
            m = HEADING.match(line)
            if m:
                anchors.add(github_slug(m.group(2), seen))
        # Explicit HTML anchors (<a name="..."> / id="...") also count.
        with open(path, encoding="utf-8") as f:
            anchors.update(re.findall(r"<a\s+(?:name|id)=\"([^\"]+)\"", f.read()))
        cache[path] = anchors
    return cache[path]


def is_external(target):
    return target.startswith(("http://", "https://", "mailto:", "ftp://"))


def main():
    root = os.path.abspath(
        sys.argv[1]
        if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir)
    )
    broken = []
    checked = 0
    for md in markdown_files(root):
        if not os.path.isfile(md):
            broken.append((md, 0, "<file missing>"))
            continue
        base = os.path.dirname(md)
        for lineno, target in targets_in(md):
            if is_external(target):
                continue
            path, _, frag = target.partition("#")
            resolved = md if not path else os.path.normpath(
                os.path.join(base, path))
            if path:
                checked += 1
                if not os.path.exists(resolved):
                    broken.append((md, lineno, target))
                    continue
            if frag and resolved.endswith(".md"):
                checked += 1
                if frag not in heading_anchors(resolved):
                    broken.append((md, lineno, target))
    if broken:
        for md, lineno, target in broken:
            rel = os.path.relpath(md, root)
            print(f"{rel}:{lineno}: broken link -> {target}")
        print(f"check_links: {len(broken)} broken of {checked} relative links")
        return 1
    print(f"check_links: {checked} relative links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
