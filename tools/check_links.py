#!/usr/bin/env python3
"""Markdown link checker for README.md and docs/.

Verifies that every relative link target in the repository's markdown
pages exists on disk (anchors-only links and external URLs are skipped).
Stdlib-only so CI needs nothing beyond python3. Exit code 0 when every
link resolves, 1 otherwise, listing each broken link as file:line.

Usage: check_links.py [REPO_ROOT]   (default: parent of this script's dir)
"""

import os
import re
import sys

# Inline links [text](target) and reference definitions [label]: target.
INLINE_LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
IMAGE_LINK = re.compile(r"\!\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REF_DEF = re.compile(r"^\s{0,3}\[[^\]]+\]:\s+(\S+)")
FENCE = re.compile(r"^\s*(```|~~~)")


def markdown_files(root):
    yield os.path.join(root, "README.md")
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                yield os.path.join(docs, name)


def targets_in(path):
    """Yield (lineno, target) for every link in one markdown file."""
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            # Strip inline code spans so `[x](y)` examples don't count.
            stripped = re.sub(r"`[^`]*`", "", line)
            for rx in (INLINE_LINK, IMAGE_LINK, REF_DEF):
                for m in rx.finditer(stripped):
                    yield lineno, m.group(1)


def is_external(target):
    return target.startswith(("http://", "https://", "mailto:", "ftp://"))


def main():
    root = os.path.abspath(
        sys.argv[1]
        if len(sys.argv) > 1
        else os.path.join(os.path.dirname(__file__), os.pardir)
    )
    broken = []
    checked = 0
    for md in markdown_files(root):
        if not os.path.isfile(md):
            broken.append((md, 0, "<file missing>"))
            continue
        base = os.path.dirname(md)
        for lineno, target in targets_in(md):
            if is_external(target) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            checked += 1
            resolved = os.path.normpath(os.path.join(base, path))
            if not os.path.exists(resolved):
                broken.append((md, lineno, target))
    if broken:
        for md, lineno, target in broken:
            rel = os.path.relpath(md, root)
            print(f"{rel}:{lineno}: broken link -> {target}")
        print(f"check_links: {len(broken)} broken of {checked} relative links")
        return 1
    print(f"check_links: {checked} relative links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
