// Ablation A: the double-pump clock pair (Sec. III-A2).
//
// The same overlay with the double pump disabled must run every primitive,
// including the DSPs, at the BRAM ceiling (~528 MHz) — and the weight-reuse
// requirement disappears. This bench quantifies what the technique buys on
// GoogLeNet and ResNet50.
#include <cstdio>

#include "common/str_util.h"
#include "common/table.h"
#include "ftdl/ftdl.h"

int main() {
  using namespace ftdl;

  AsciiTable table({"Mode", "CLKh", "Network", "HW eff.", "FPS", "GOPS"});
  double fps_dp[2] = {0, 0}, fps_single[2] = {0, 0};

  for (bool double_pump : {true, false}) {
    FrameworkOptions opts;
    opts.search_budget_per_layer = 30'000;
    opts.config.double_pump = double_pump;
    if (!double_pump) {
      // Single clock: everything at the BRAM ceiling of the UltraScale part.
      opts.config.clocks = fpga::ClockPair::from_high(528e6);
    }
    Framework fw{opts};

    int i = 0;
    for (const char* name : {"GoogLeNet", "ResNet50"}) {
      const NetworkReport r = fw.evaluate(nn::model_by_name(name));
      (double_pump ? fps_dp : fps_single)[i++] = r.fps();
      table.row({double_pump ? "double-pump" : "single-clock",
                 format_hz(fw.config().clocks.clk_h_hz), name,
                 format_percent(r.schedule.hardware_efficiency),
                 strformat("%.1f", r.fps()),
                 strformat("%.0f", r.effective_gops())});
    }
  }

  std::printf("=== Ablation A: double-pump on/off ===\n\n");
  table.print();
  std::printf("\nSpeedup from the double pump: GoogLeNet %.2fx, ResNet50 "
              "%.2fx\n(expected ~650/528 = 1.23x when compute-bound, minus "
              "any weight-reuse\nconstraint the double pump imposes on the "
              "schedule).\n",
              fps_dp[0] / fps_single[0], fps_dp[1] / fps_single[1]);
  return 0;
}
