// Ablation F: host EWOP pipeline headroom (Sec. V-A's claim that EWOP on
// the host CPU does not bound throughput).
//
// Sweeps the host's element-wise throughput and reports when the claim
// holds, per network — including the worst single pipeline stage, which
// breaks before the aggregate does.
#include <cstdio>

#include "common/str_util.h"
#include "common/table.h"
#include "ftdl/ftdl.h"

int main() {
  using namespace ftdl;

  std::printf("=== Ablation F: host EWOP pipeline ===\n\n");
  const arch::OverlayConfig cfg = arch::paper_config();

  for (const char* name : {"GoogLeNet", "ResNet50"}) {
    const nn::Network net = nn::model_by_name(name);
    const auto sched = compiler::schedule_network(
        net, cfg, compiler::Objective::Performance, 20'000);
    const double required = host::required_host_ops_per_sec(net, sched);

    std::printf("--- %s: %s EWOP ops/frame, overlay %.2f ms/frame ---\n", name,
                format_count(double(net.stats().ewop_ops)).c_str(),
                sched.seconds_per_frame() * 1e3);
    std::printf("Minimum host throughput for full rate: %s ops/s\n",
                format_count(required).c_str());

    AsciiTable table({"Host ops/s", "Host ms/frame", "Frame ms", "EWOP-bound",
                      "Worst stage ratio"});
    for (double gops : {0.5, 2.0, 5.0, 20.0, 80.0}) {
      host::HostModel hm;
      hm.ewop_ops_per_sec = gops * 1e9;
      const auto r = host::evaluate_pipeline(net, sched, hm);
      table.row({strformat("%.1f G", gops),
                 strformat("%.3f", r.host_seconds * 1e3),
                 strformat("%.3f", r.frame_seconds * 1e3),
                 r.ewop_bounds_throughput ? "YES" : "no",
                 strformat("%.2f", r.worst_stage_ratio)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("At any realistic host (>= a few Gops/s of int16 SIMD), EWOP "
              "never bounds the\nframe rate — the paper's pipelining "
              "assumption holds with a wide margin.\n");
  return 0;
}
