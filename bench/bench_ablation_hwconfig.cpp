// Ablation B (Objective 3, Sec. IV-D3): best (D1, D2, D3) at equal cost.
//
// At a fixed budget of 1200 TPEs on the vu125, enumerate every legal
// (D1, D2, D3) split, schedule a representative GoogLeNet layer mix on
// each, and rank them. Shows why the paper's 12 x 5 x 20 is a good choice.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/str_util.h"
#include "common/table.h"
#include "compiler/session.h"
#include "ftdl/ftdl.h"

int main() {
  using namespace ftdl;

  // Representative GoogLeNet layer mix (early, middle, late, reduce, FC).
  nn::Network net("googlenet-mix");
  net.add(nn::make_conv("conv2/3x3", 64, 56, 56, 192, 3, 1, 1));
  net.add(nn::make_conv("3a/3x3", 96, 28, 28, 128, 3, 1, 1));
  net.add(nn::make_conv("4e/3x3", 160, 14, 14, 320, 3, 1, 1));
  net.add(nn::make_conv("5b/1x1", 832, 7, 7, 384, 1, 1, 0));
  net.add(nn::make_matmul("fc", 1024, 1000, 1));

  const fpga::Device dev = fpga::ultrascale_vu125();
  const int budget = 1200;

  struct Row {
    arch::OverlayConfig cfg;
    compiler::NetworkSchedule sched;
  };

  // Enumerate the legal splits serially, schedule them concurrently through
  // the shared compiler session, and collect survivors back in enumeration
  // order (so the ranking below is deterministic at any parallelism).
  std::vector<arch::OverlayConfig> candidates;
  for (int d1 = 4; d1 <= 48; ++d1) {
    if (budget % d1 != 0) continue;
    for (int d2 = 1; d2 <= dev.dsp_columns; ++d2) {
      if ((budget / d1) % d2 != 0) continue;
      const int d3 = budget / d1 / d2;
      if (d1 * d3 > dev.dsp_per_column) continue;
      arch::OverlayConfig cfg = arch::paper_config();
      cfg.d1 = d1;
      cfg.d2 = d2;
      cfg.d3 = d3;
      candidates.push_back(cfg);
    }
  }

  compiler::CompilerSession& session = compiler::CompilerSession::global();
  std::vector<std::unique_ptr<Row>> evaluated(candidates.size());
  session.pool().parallel_for(candidates.size(), [&](std::size_t i) {
    compiler::name_worker_track();
    try {
      candidates[i].validate_for_device(dev);
      evaluated[i] = std::make_unique<Row>(Row{
          candidates[i],
          compiler::schedule_network(net, candidates[i],
                                     compiler::Objective::Performance,
                                     20'000)});
    } catch (const Error&) {
      // split does not fit the device or has no feasible mapping
    }
  });

  std::vector<Row> rows;
  for (auto& r : evaluated) {
    if (r) rows.push_back(std::move(*r));
  }

  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.sched.total_cycles < b.sched.total_cycles;
  });

  std::printf("=== Ablation B: hardware-configuration search at 1200 TPEs ===\n\n");
  AsciiTable table({"D1 x D2 x D3", "Total cycles", "HW eff.", "Rank"});
  int rank = 1;
  for (const Row& r : rows) {
    table.row({strformat("%d x %d x %d", r.cfg.d1, r.cfg.d2, r.cfg.d3),
               std::to_string(r.sched.total_cycles),
               format_percent(r.sched.hardware_efficiency),
               std::to_string(rank++)});
  }
  table.print();
  if (!rows.empty()) {
    std::printf("\nBest split: %d x %d x %d (the paper's example uses "
                "12 x 5 x 20).\n",
                rows.front().cfg.d1, rows.front().cfg.d2, rows.front().cfg.d3);
  }
  const compiler::SessionStats ss = session.stats();
  std::printf("compiler session: jobs=%d, %lld cache hits / %lld misses, "
              "%lld programs resident\n",
              session.jobs(), static_cast<long long>(ss.hits),
              static_cast<long long>(ss.misses),
              static_cast<long long>(ss.entries));
  return 0;
}
