// Ablation C: DRAM bandwidth sweep (roofline crossover).
//
// The paper fixes DRAM at 26 GB/s "achievable in most platforms". This
// sweep shows where the ResNet50-class layers cross from memory-bound to
// compute-bound and how much headroom 26 GB/s leaves. Exports
// ablation_bandwidth.csv.
#include <cstdio>

#include "common/csv.h"
#include "common/str_util.h"
#include "common/table.h"
#include "ftdl/ftdl.h"

int main() {
  using namespace ftdl;

  // The per-stage bottleneck layers of ResNet50 plus the classifier.
  nn::Network net("resnet50-mix");
  net.add(nn::make_conv("conv1/7x7_s2", 3, 224, 224, 64, 7, 2, 3));
  net.add(nn::make_conv("res2/conv2_3x3", 64, 56, 56, 64, 3, 1, 1));
  net.add(nn::make_conv("res3/conv2_3x3", 128, 28, 28, 128, 3, 1, 1));
  net.add(nn::make_conv("res4/conv2_3x3", 256, 14, 14, 256, 3, 1, 1));
  net.add(nn::make_conv("res5/conv2_3x3", 512, 7, 7, 512, 3, 1, 1));
  net.add(nn::make_matmul("fc1000", 2048, 1000, 1));

  std::printf("=== Ablation C: DRAM bandwidth sweep (ResNet50 layer mix) ===\n\n");
  AsciiTable table({"DRAM BW", "Total cycles", "HW eff.",
                    "Bound by (worst layer)"});
  CsvWriter csv("ablation_bandwidth.csv",
                {"bandwidth_gbps", "total_cycles", "hardware_efficiency"});

  for (double gbps : {3.25, 6.5, 13.0, 26.0, 52.0, 104.0}) {
    arch::OverlayConfig cfg = arch::paper_config();
    cfg.dram_rd_bytes_per_sec = gbps * 1e9;
    cfg.dram_wr_bytes_per_sec = gbps * 1e9;
    const auto sched = compiler::schedule_network(
        net, cfg, compiler::Objective::Performance, 15'000);

    // Identify the binding channel of the least efficient layer.
    const compiler::LayerProgram* worst = &sched.layers.front();
    for (const auto& lp : sched.layers) {
      if (lp.perf.hardware_efficiency < worst->perf.hardware_efficiency)
        worst = &lp;
    }
    const auto& p = worst->perf;
    const char* bound = "compute";
    if (p.c_exe == p.c_dram_rd || p.c_exe == p.c_dram_wr) bound = "DRAM";
    else if (p.c_exe == p.c_act_bus) bound = "ActBUS";
    else if (p.c_exe == p.c_psum_bus) bound = "PSumBUS";

    table.row({strformat("%.2f GB/s", gbps),
               std::to_string(sched.total_cycles),
               format_percent(sched.hardware_efficiency),
               strformat("%s (%s)", bound, worst->layer.name.c_str())});
    csv.row_numeric({gbps, double(sched.total_cycles),
                     sched.hardware_efficiency});
  }
  table.print();
  std::printf("\nThe paper's 26 GB/s sits at/above the crossover: higher "
              "bandwidth buys little,\nlower bandwidth starves the early "
              "high-resolution layers. Exported to ablation_bandwidth.csv.\n");
  return 0;
}
