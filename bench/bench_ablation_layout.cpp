// Ablation D: layout-aware overlay vs boundary-fed systolic baseline.
//
// Quantifies the intro's architecture-layout-mismatch argument in
// throughput terms: at equal DSP counts and equal (assumed) hardware
// efficiency, the attainable GOPS ratio equals the fmax ratio — and the
// baseline's fmax collapses with scale while FTDL's stays flat.
#include <cstdio>

#include "common/str_util.h"
#include "common/table.h"
#include "fpga/device_zoo.h"
#include "timing/scaling_study.h"

int main() {
  using namespace ftdl;
  using namespace ftdl::timing;

  std::printf("=== Ablation D: FTDL layout vs boundary-fed systolic ===\n\n");
  for (const fpga::Device& dev :
       {fpga::virtex7_vx330t(), fpga::ultrascale_vu125()}) {
    std::printf("--- %s ---\n", dev.name.c_str());
    AsciiTable table({"TPEs", "FTDL fmax", "Systolic fmax", "fmax ratio",
                      "FTDL peak GOPS", "Systolic peak GOPS"});
    for (const ScalePoint& pt : run_scaling_study(dev)) {
      const double f_ftdl = pt.ftdl.clk_h_fmax_hz;
      const double f_sys = pt.systolic.clk_h_fmax_hz;
      table.row({std::to_string(pt.tpes), format_hz(f_ftdl),
                 format_hz(f_sys), strformat("%.2fx", f_ftdl / f_sys),
                 strformat("%.0f", 2.0 * pt.tpes * f_ftdl / 1e9),
                 strformat("%.0f", 2.0 * pt.tpes * f_sys / 1e9)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("At full scale the layout-aware overlay sustains ~2.5-3x the\n"
              "clock of the boundary-fed design — the foundation of Table "
              "II's speedups.\n");
  return 0;
}
