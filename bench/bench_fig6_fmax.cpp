// Fig. 6: hardware evaluation on the Virtex-7 7vx330t (a) and the
// UltraScale vu125 (b) after place and route.
//
// Seven configurations per device, scale-up fashion. The FTDL overlay's
// CLKh should stabilize above 620 MHz (Virtex) / 650 MHz (UltraScale) even
// at 100% DSP utilization, while the boundary-fed systolic baseline
// degrades with scale. Exports fig6.csv for plotting.
#include <cstdio>

#include "common/csv.h"
#include "common/str_util.h"
#include "common/table.h"
#include "fpga/device_zoo.h"
#include "timing/scaling_study.h"

int main() {
  using namespace ftdl;
  using namespace ftdl::timing;

  CsvWriter csv("fig6.csv",
                {"device", "config", "tpes", "dsp_util", "bram_util",
                 "ftdl_clk_h_mhz", "ftdl_clk_l_mhz", "ftdl_critical_net",
                 "systolic_clk_mhz"});

  for (const fpga::Device& dev :
       {fpga::virtex7_vx330t(), fpga::ultrascale_vu125()}) {
    std::printf("=== Fig. 6%s: %s (%s) ===\n",
                dev.family == fpga::Family::Virtex7 ? "(a)" : "(b)",
                dev.name.c_str(), to_string(dev.family));
    AsciiTable table({"Config (D1xD2xD3)", "TPEs", "DSP util", "BRAM util",
                      "FTDL CLKh", "FTDL CLKl", "Critical net",
                      "Systolic fmax"});
    for (const ScalePoint& pt : run_scaling_study(dev)) {
      const auto& g = pt.geometry;
      table.row({strformat("%dx%dx%d", g.d1, g.d2, g.d3),
                 std::to_string(pt.tpes), format_percent(pt.dsp_utilization),
                 format_percent(pt.bram_utilization),
                 format_hz(pt.ftdl.clk_h_fmax_hz),
                 format_hz(pt.ftdl.clk_l_fmax_hz),
                 to_string(pt.ftdl.critical_net),
                 format_hz(pt.systolic.clk_h_fmax_hz)});
      csv.row({dev.name, strformat("%dx%dx%d", g.d1, g.d2, g.d3),
               std::to_string(pt.tpes), strformat("%.4f", pt.dsp_utilization),
               strformat("%.4f", pt.bram_utilization),
               strformat("%.1f", pt.ftdl.clk_h_fmax_hz / 1e6),
               strformat("%.1f", pt.ftdl.clk_l_fmax_hz / 1e6),
               to_string(pt.ftdl.critical_net),
               strformat("%.1f", pt.systolic.clk_h_fmax_hz / 1e6)});
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Paper claim: fmax stabilizes above 620 MHz on Virtex and 650 MHz on\n"
      "UltraScale across the scale-up, >88%% of the 740 MHz DSP ceiling,\n"
      "while ASIC-style boundary-fed designs fall into the 100-250 MHz\n"
      "regime of Table II's prior works. Series exported to fig6.csv.\n");
  return 0;
}
