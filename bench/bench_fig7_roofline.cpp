// Fig. 7: roofline-based visualization of the mapping-solution space.
//
// Top-200 solutions for Objective 1 (performance) and Objective 2 (balance)
// on a GoogLeNet conv2-class CONV layer (the regime the paper plots: Obj.1
// points crowd the roof at E_WBUF ~ 0.2; Obj.2 points keep E_WBUF ~ 1 with
// only a slight performance loss, saving ~5x WBUF). Exports fig7.csv.
#include <cstdio>

#include "arch/overlay_config.h"
#include "common/str_util.h"
#include "common/table.h"
#include "nn/layer.h"
#include "roofline/roofline.h"

int main() {
  using namespace ftdl;

  // GoogLeNet conv2/3x3: 64 -> 192 channels at 56x56.
  const nn::Layer layer = nn::make_conv("googlenet-conv2/3x3", 64, 56, 56,
                                        192, 3, 1, 1);
  const arch::OverlayConfig config = arch::paper_config();

  std::printf("=== Fig. 7: roofline study of %s on %s ===\n\n",
              layer.name.c_str(), config.to_string().c_str());

  const auto study = roofline::run_roofline_study(layer, config,
                                                  /*top_k=*/200,
                                                  /*max_candidates=*/150'000);
  std::printf("Compute roof: %.0f GOPS; memory roof slope: %.0f GB/s\n\n",
              study.peak_gops, study.dram_gbps);

  auto summarize = [](const char* tag,
                      const std::vector<roofline::RooflinePoint>& pts) {
    double best_gops = 0.0, mean_e = 0.0, min_e = 1.0, max_e = 0.0;
    for (const auto& p : pts) {
      best_gops = std::max(best_gops, p.gops);
      mean_e += p.e_wbuf;
      min_e = std::min(min_e, p.e_wbuf);
      max_e = std::max(max_e, p.e_wbuf);
    }
    mean_e /= double(pts.size());
    std::printf("%-22s %4zu solutions | best %.0f GOPS | E_WBUF mean %.2f "
                "(min %.2f, max %.2f)\n",
                tag, pts.size(), best_gops, mean_e, min_e, max_e);
  };
  summarize("Obj.1 (performance):", study.performance_points);
  summarize("Obj.2 (balance):", study.balance_points);

  std::printf("\nTop-5 points per objective:\n");
  AsciiTable table({"objective", "AI (ops/byte)", "GOPS", "E_WBUF",
                    "WBUF words/TPE", "C_exe"});
  for (auto [tag, pts] :
       {std::pair{"performance", &study.performance_points},
        std::pair{"balance", &study.balance_points}}) {
    for (std::size_t i = 0; i < std::min<std::size_t>(5, pts->size()); ++i) {
      const auto& p = (*pts)[i];
      table.row({tag, strformat("%.1f", p.arithmetic_intensity),
                 strformat("%.0f", p.gops), strformat("%.3f", p.e_wbuf),
                 std::to_string(p.wbuf_words_per_tpe),
                 std::to_string(p.c_exe)});
    }
  }
  table.print();

  std::printf("\nWBUF storage savings of Obj.2 over Obj.1: %.1fx (paper: ~5x)\n",
              study.wbuf_savings());
  std::printf("Performance retained by Obj.2: %.0f%%\n",
              100.0 * study.best_gops_balance() /
                  study.best_gops_performance());
  roofline::export_csv(study, "fig7.csv");
  std::printf("Scatter exported to fig7.csv\n");
  return 0;
}
