// Serving-runtime benchmarks (google-benchmark): closed-loop throughput of
// ftdl::serve::Server on a small conv network across worker counts
// {1, 2, 8}, dynamic batch sizes and admission queue depths, reporting
// requests/s and the p99 enqueue-to-complete latency per run. Outputs are
// bit-identical across every variant (pinned by tests/test_serve.cpp);
// these benchmarks measure only throughput and tail latency.
//
// Unless the caller passes --benchmark_out themselves, results are also
// written to BENCH_serve.json (google-benchmark's JSON reporter); CI
// uploads the file as a build artifact.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "nn/network.h"
#include "serve/serve.h"

namespace {

using namespace ftdl;

/// Workload: a conv -> conv -> fc chain costing ~1 M MACs per request on
/// the scalar reference path — large enough that batching and worker
/// scaling dominate queue overhead, small enough to iterate quickly.
const nn::Network& bench_net() {
  static const nn::Network net = [] {
    nn::Network n("serve-bench");
    n.add(nn::make_conv("c1", 3, 16, 16, 16, 3, 1, 1));
    n.add(nn::make_conv("c2", 16, 16, 16, 16, 3, 1, 1));
    n.add(nn::make_matmul("fc", 16 * 16 * 16, 10, 1));
    n.validate_graph();
    return n;
  }();
  return net;
}

const runtime::WeightStore& bench_weights() {
  static const runtime::WeightStore ws =
      runtime::WeightStore::random_for(bench_net(), 0x5e12e);
  return ws;
}

nn::Tensor16 request_input(std::uint64_t seed) {
  Rng rng(seed);
  nn::Tensor16 t({3, 16, 16});
  t.fill_random(rng);
  return t;
}

/// One closed-loop measurement: `clients` submitter threads push
/// `requests` total requests and wait for each result; rejected
/// submissions are not retried (the server's stats carry the accounting).
void drive(serve::Server& server, int requests, int clients) {
  std::atomic<int> next{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= requests) return;
        serve::Submission s =
            server.submit(request_input(static_cast<std::uint64_t>(i)));
        if (s.accepted) s.result.get();
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

void report(benchmark::State& state, const serve::ServerStats& st) {
  // Completed, not submitted: under a shallow queue most of a burst is
  // rejected, and served throughput is the honest number.
  state.counters["req/s"] = benchmark::Counter(
      static_cast<double>(st.completed),
      benchmark::Counter::kIsIterationInvariantRate);
  state.counters["p99_us"] = static_cast<double>(st.latency.percentile(99.0));
  state.counters["mean_batch"] = st.mean_batch_size();
}

/// Worker scaling at a fixed batch/queue shape: workers in {1, 2, 8} with
/// twice as many closed-loop clients as workers keeps the queue non-empty.
void BM_ServeWorkers(benchmark::State& state) {
  const int workers = static_cast<int>(state.range(0));
  constexpr int kRequests = 64;
  serve::ServerStats last;
  for (auto _ : state) {
    serve::ServerOptions opt;
    opt.workers = workers;
    opt.max_batch = 4;
    opt.batch_timeout_us = 200;
    serve::Server server(bench_net(), bench_weights(), opt);
    drive(server, kRequests, 2 * workers);
    server.stop();
    last = server.stats();
  }
  report(state, last);
}

/// Batch-size sweep at a fixed worker count: larger dynamic batches
/// amortize dispatch, at the cost of per-request wait.
void BM_ServeBatch(benchmark::State& state) {
  const int max_batch = static_cast<int>(state.range(0));
  constexpr int kRequests = 64;
  serve::ServerStats last;
  for (auto _ : state) {
    serve::ServerOptions opt;
    opt.workers = 2;
    opt.max_batch = max_batch;
    opt.batch_timeout_us = 500;
    serve::Server server(bench_net(), bench_weights(), opt);
    drive(server, kRequests, 8);
    server.stop();
    last = server.stats();
  }
  report(state, last);
}

/// Queue-depth sweep: a shallow queue rejects under burst (the rejected
/// requests are not retried), a deep one buffers and batches better.
void BM_ServeQueueDepth(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  constexpr int kRequests = 64;
  serve::ServerStats last;
  for (auto _ : state) {
    serve::ServerOptions opt;
    opt.workers = 2;
    opt.max_batch = 4;
    opt.batch_timeout_us = 200;
    opt.queue_depth = depth;
    serve::Server server(bench_net(), bench_weights(), opt);
    drive(server, kRequests, 8);
    server.stop();
    last = server.stats();
  }
  report(state, last);
  state.counters["rejected"] = static_cast<double>(last.rejected());
}

}  // namespace

BENCHMARK(BM_ServeWorkers)
    ->Arg(1)->Arg(2)->Arg(8)
    ->ArgName("workers")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ServeBatch)
    ->Arg(1)->Arg(4)->Arg(16)
    ->ArgName("batch")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ServeQueueDepth)
    ->Arg(2)->Arg(16)->Arg(64)
    ->ArgName("depth")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_serve.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
