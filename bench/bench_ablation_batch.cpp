// Ablation G: batching on the MM path.
//
// The introduction notes that increasing batch size can maintain high
// hardware efficiency but is infeasible for latency-bound edge inference.
// This bench quantifies the effect on FTDL: at batch 1 an FC/LSTM matrix has
// no activation-only reuse, the double pump starves the DSPs and efficiency
// halves; batch >= 2 restores it, and larger batches amortize the pipeline
// latency further.
#include <cstdio>

#include "arch/overlay_config.h"
#include "common/csv.h"
#include "common/str_util.h"
#include "common/table.h"
#include "compiler/codegen.h"

int main() {
  using namespace ftdl;

  const arch::OverlayConfig cfg = arch::paper_config();
  std::printf("=== Ablation G: MM batch size (FC 1024 -> 1000, LSTM gate "
              "2048 -> 4096) ===\n\n");

  CsvWriter csv("ablation_batch.csv",
                {"layer", "batch", "efficiency", "cycles_per_sample",
                 "weight_reuse_ok"});
  AsciiTable table({"Layer", "Batch", "Eff.", "Cycles/sample", "Reuse OK"});

  struct Case {
    const char* name;
    std::int64_t m, n;
  };
  for (const Case& c : {Case{"fc1024x1000", 1024, 1000},
                        Case{"lstm_gates", 2048, 4096}}) {
    for (std::int64_t batch : {1, 2, 4, 8, 16, 32}) {
      const nn::Layer layer = nn::make_matmul(c.name, c.m, c.n, batch);
      const auto prog =
          compiler::compile_layer(layer, cfg, compiler::Objective::Performance,
                                  30'000);
      const double per_sample = double(prog.total_cycles()) / double(batch);
      table.row({c.name, std::to_string(batch),
                 format_percent(prog.perf.hardware_efficiency),
                 strformat("%.0f", per_sample),
                 prog.perf.weight_reuse_ok ? "yes" : "NO"});
      csv.row({c.name, std::to_string(batch),
               strformat("%.4f", prog.perf.hardware_efficiency),
               strformat("%.0f", per_sample),
               prog.perf.weight_reuse_ok ? "1" : "0"});
    }
  }
  table.print();
  std::printf("\nBatch 1 pays the 2x double-pump starvation penalty on MM "
              "layers; batch >= 2\nrestores full rate — the architectural "
              "reason FTDL quotes CNN FPS at batch 1\nbut LSTM throughput "
              "favours batching. Exported to ablation_batch.csv.\n");
  return 0;
}
