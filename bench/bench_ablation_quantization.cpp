// Ablation K: quantization bit-width study (Sec. II-B1's 16-bit choice).
//
// Sweeps the quantizer from 4 to 16 bits on representative CONV and MM
// layers and reports output SQNR of the exact integer datapath against the
// float reference. The classic ~6 dB/bit law emerges; 16 bits is far past
// the accuracy-relevant regime, which is why the paper treats it as
// lossless — and why Table I sizes weights at 2 bytes each.
#include <cstdio>

#include "common/csv.h"
#include "common/str_util.h"
#include "common/table.h"
#include "nn/layer.h"
#include "quant/quantize.h"

int main() {
  using namespace ftdl;

  std::printf("=== Ablation K: quantization bit width vs SQNR ===\n\n");
  const nn::Layer conv = nn::make_conv("conv3x3", 64, 28, 28, 64, 3, 1, 1);
  const nn::Layer fc = nn::make_matmul("fc", 512, 256, 4);

  AsciiTable table({"Bits", "CONV out SQNR", "CONV weight SQNR",
                    "MM out SQNR"});
  CsvWriter csv("ablation_quantization.csv",
                {"bits", "conv_out_sqnr_db", "conv_weight_sqnr_db",
                 "mm_out_sqnr_db"});
  for (int bits : {4, 6, 8, 10, 12, 14, 16}) {
    const quant::LayerQuantStudy c = quant::study_layer(conv, bits, 17);
    const quant::LayerQuantStudy m = quant::study_layer(fc, bits, 23);
    table.row({std::to_string(bits), strformat("%.1f dB", c.output_sqnr_db),
               strformat("%.1f dB", c.weight_sqnr_db),
               strformat("%.1f dB", m.output_sqnr_db)});
    csv.row_numeric({double(bits), c.output_sqnr_db, c.weight_sqnr_db,
                     m.output_sqnr_db});
  }
  table.print();
  std::printf(
      "\n~6 dB per bit, as theory predicts. 8-bit (~40 dB) is where CNN "
      "accuracy studies\nstart reporting loss without retraining; 16-bit "
      "(>70 dB) is effectively lossless,\njustifying the paper's fixed "
      "choice. Exported to ablation_quantization.csv.\n");
  return 0;
}
