// Simulator-engine benchmarks (google-benchmark): wall-clock of
// simulate_layer on a ResNet50 layer sweep, comparing the scalar Reference
// interpreter against the fast engine at 1/2/8 jobs and the stats-only
// (functional = false) path, with MACCs/s reported per run.
//
// The sweep covers the shapes that stress different engine paths: the
// pad-heavy 7x7 stride-2 stem (guarded edge bursts), a 1x1 bottleneck
// reduce (pure dense interior), a 3x3 mid-stage conv (mixed), and the
// fc1000 matmul. Outputs are bit-identical across every variant (pinned by
// tests/test_sim_engine.cpp); these benchmarks measure only speed.
//
// Unless the caller passes --benchmark_out themselves, results are also
// written to BENCH_sim.json (google-benchmark's JSON reporter); CI uploads
// the file as a build artifact.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "compiler/codegen.h"
#include "nn/model_zoo.h"
#include "sim/ftdl_sim.h"

namespace {

using namespace ftdl;

/// Search budget per layer: the mapping search is not what is being
/// measured, it just has to produce the same program for every variant.
constexpr std::int64_t kBudget = 4'000;

struct LayerCase {
  std::string label;
  compiler::LayerProgram prog;
  nn::Tensor16 weights, input;
};

LayerCase make_case(const std::string& label, const nn::Layer& layer) {
  const arch::OverlayConfig cfg = arch::paper_config();
  LayerCase c;
  c.label = label;
  c.prog = compiler::compile_layer(layer, cfg, compiler::Objective::Performance,
                                   kBudget);
  Rng rng(0x5eedULL + std::hash<std::string>{}(label));
  if (layer.kind == nn::LayerKind::MatMul) {
    c.input = nn::Tensor16({static_cast<int>(layer.mm_m),
                            static_cast<int>(layer.mm_p)});
    c.weights = nn::Tensor16({static_cast<int>(layer.mm_n),
                              static_cast<int>(layer.mm_m)});
  } else {
    c.input = nn::Tensor16({layer.in_c, layer.in_h, layer.in_w});
    c.weights = nn::Tensor16({layer.out_c, layer.in_c, layer.kh, layer.kw});
  }
  c.input.fill_random(rng);
  c.weights.fill_random(rng);
  return c;
}

/// The sweep layers, pulled from the ResNet50 model zoo by name.
const std::vector<LayerCase>& cases() {
  static const std::vector<LayerCase> all = [] {
    const nn::Network& net = nn::model_by_name("ResNet50");
    auto layer = [&](const std::string& name) -> const nn::Layer& {
      for (const nn::Layer& l : net.layers())
        if (l.name == name) return l;
      throw Error("bench_sim: ResNet50 layer not found: " + name);
    };
    std::vector<LayerCase> v;
    v.push_back(make_case("conv1_7x7_s2", layer("conv1/7x7_s2")));
    v.push_back(make_case("res2_1_conv1_1x1", layer("res2_1/conv1_1x1")));
    v.push_back(make_case("res4_1_conv2_3x3", layer("res4_1/conv2_3x3")));
    v.push_back(make_case("fc1000", layer("fc1000")));
    return v;
  }();
  return all;
}

void report_rate(benchmark::State& state, std::int64_t padded,
                 std::int64_t valid) {
  state.counters["MACCs/s"] = benchmark::Counter(
      static_cast<double>(padded), benchmark::Counter::kIsIterationInvariantRate);
  state.counters["valid_MACCs/s"] = benchmark::Counter(
      static_cast<double>(valid), benchmark::Counter::kIsIterationInvariantRate);
}

void BM_SimReference(benchmark::State& state, std::size_t idx) {
  const LayerCase& c = cases()[idx];
  const arch::OverlayConfig cfg = arch::paper_config();
  sim::SimOptions opt;
  opt.engine = sim::SimEngine::Reference;
  std::int64_t padded = 0, valid = 0;
  for (auto _ : state) {
    const sim::SimResult r =
        sim::simulate_layer(c.prog, cfg, c.weights, c.input, opt);
    padded = r.stats.padded_maccs;
    valid = r.stats.valid_maccs;
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  report_rate(state, padded, valid);
}

void BM_SimEngine(benchmark::State& state, std::size_t idx) {
  const LayerCase& c = cases()[idx];
  const arch::OverlayConfig cfg = arch::paper_config();
  sim::SimOptions opt;
  opt.jobs = static_cast<int>(state.range(0));
  std::int64_t padded = 0, valid = 0;
  for (auto _ : state) {
    const sim::SimResult r =
        sim::simulate_layer(c.prog, cfg, c.weights, c.input, opt);
    padded = r.stats.padded_maccs;
    valid = r.stats.valid_maccs;
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  report_rate(state, padded, valid);
}

void BM_SimStatsOnly(benchmark::State& state, std::size_t idx) {
  const LayerCase& c = cases()[idx];
  const arch::OverlayConfig cfg = arch::paper_config();
  std::int64_t padded = 0, valid = 0;
  for (auto _ : state) {
    const sim::SimResult r = sim::simulate_layer_stats(c.prog, cfg);
    padded = r.stats.padded_maccs;
    valid = r.stats.valid_maccs;
    benchmark::DoNotOptimize(r.stats.cycles);
  }
  report_rate(state, padded, valid);
}

void register_benchmarks() {
  for (std::size_t i = 0; i < cases().size(); ++i) {
    const std::string& label = cases()[i].label;
    benchmark::RegisterBenchmark(("BM_SimReference/" + label).c_str(),
                                 BM_SimReference, i)
        ->Unit(benchmark::kMillisecond);
    for (int jobs : {1, 2, 8}) {
      benchmark::RegisterBenchmark(("BM_SimEngine/" + label).c_str(),
                                   BM_SimEngine, i)
          ->Arg(jobs)
          ->ArgName("jobs")
          ->Unit(benchmark::kMillisecond);
    }
    benchmark::RegisterBenchmark(("BM_SimStatsOnly/" + label).c_str(),
                                 BM_SimStatsOnly, i)
        ->Unit(benchmark::kMillisecond);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_sim.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  register_benchmarks();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
