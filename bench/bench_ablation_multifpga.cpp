// Ablation E: multi-FPGA weight residency and pipeline scaling (Sec. II-B1).
//
// A single vu125 holds 1.23 M WBUF words — GoogLeNet (~7 M unique words) and
// ResNet50 (~25.5 M) cannot be weight-stationary on one device. This bench
// shows the paper's multi-FPGA answer quantitatively: devices needed for
// full residency, and how throughput/latency scale with the pipeline depth.
#include <cstdio>

#include "common/str_util.h"
#include "common/table.h"
#include "compiler/session.h"
#include "ftdl/ftdl.h"

int main() {
  using namespace ftdl;

  const arch::OverlayConfig cfg = arch::paper_config();
  std::printf("=== Ablation E: multi-FPGA pipeline (per-device WBUF capacity "
              "%s words) ===\n\n",
              format_count(double(multifpga::device_weight_capacity(cfg)))
                  .c_str());

  for (const char* name : {"GoogLeNet", "ResNet50"}) {
    const nn::Network net = nn::model_by_name(name);
    // Balance objective: residency is the point, so minimize duplication.
    const auto sched = compiler::schedule_network(
        net, cfg, compiler::Objective::Balance, 20'000);

    const int need = multifpga::min_devices_for_residency(sched);
    std::printf("--- %s: %s unique weight words, resident from %d devices ---\n",
                name, format_count(double(net.stats().weight_words)).c_str(),
                need);

    AsciiTable table({"Devices", "FPS", "Latency", "Balance", "Resident",
                      "Bottleneck stage"});
    for (int d : {1, 2, 4, need, need + 2}) {
      const auto plan = multifpga::partition_pipeline(sched, d);
      int bottleneck = 0;
      double worst = 0.0;
      for (const auto& st : plan.stages) {
        const double t = st.compute_seconds(cfg.clocks.clk_h_hz);
        if (t > worst) {
          worst = t;
          bottleneck = st.device_index;
        }
      }
      table.row({std::to_string(d), strformat("%.1f", plan.fps),
                 strformat("%.2f ms", plan.latency_seconds * 1e3),
                 strformat("%.2f", plan.balance),
                 plan.weights_resident ? "yes" : "NO",
                 strformat("dev%d (layers %zu-%zu)", bottleneck,
                           plan.stages[static_cast<std::size_t>(bottleneck)]
                               .first_layer,
                           plan.stages[static_cast<std::size_t>(bottleneck)]
                               .last_layer)});
    }
    table.print();
    std::printf("\n");
  }
  std::printf("Residency makes the weight-stationary scheme of Sec. II-B1 "
              "hold for big models,\nand the pipeline adds near-linear "
              "throughput until stage imbalance dominates.\n");
  compiler::CompilerSession& session = compiler::CompilerSession::global();
  const compiler::SessionStats ss = session.stats();
  std::printf("compiler session: jobs=%d, %lld cache hits / %lld misses, "
              "%lld programs resident\n",
              session.jobs(), static_cast<long long>(ss.hits),
              static_cast<long long>(ss.misses),
              static_cast<long long>(ss.entries));
  return 0;
}
