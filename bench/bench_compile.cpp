// Compiler-session benchmarks (google-benchmark): wall-clock of
// schedule_network and find_best_hw_config on ResNet50 through a
// CompilerSession at 1/2/8 jobs, cold cache vs warm cache.
//
// The cold/warm split is the interesting axis: a cold session measures the
// mapping search itself (scaled by the worker pool), while a warm session
// measures the content-addressed cache — the case every driver above the
// scheduler (Objective 3 sweeps, DSE, repeated tool runs) actually hits.
// The serial cold number doubles as the pre-session baseline: before the
// session refactor every find_best_hw_config call recompiled all programs
// serially.
//
// The ColdProcess rows measure the persistent tier (compiler/
// program_store.h): a fresh session per iteration stands in for a fresh
// process (its memory cache is empty, exactly like a restarted tool), split
// by disk state — ColdDisk pays the mapping search plus write-through,
// WarmDisk loads and fully re-validates every entry published by an earlier
// "process". The WarmDisk/ColdDisk ratio is the paper-artifact claim: a
// rolling restart reschedules ResNet50 from disk ≥ 50x faster than
// compiling, bit-identical to a cacheless run (pinned in
// tests/test_program_store.cpp).
//
// Unless the caller passes --benchmark_out themselves, results are also
// written to BENCH_compile.json (google-benchmark's JSON reporter); CI
// uploads the file as a build artifact.
#include <unistd.h>

#include <benchmark/benchmark.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "compiler/program_store.h"
#include "compiler/session.h"
#include "fpga/device_zoo.h"
#include "nn/model_zoo.h"

namespace {

using namespace ftdl;

/// Search budget per layer: small enough that a cold ResNet50 pass stays in
/// benchmark territory, large enough that the search dominates cache lookups.
constexpr std::int64_t kBudget = 2'000;

const nn::Network& resnet50() {
  static const nn::Network net = nn::model_by_name("ResNet50");
  return net;
}

void BM_ScheduleNetworkCold(benchmark::State& state) {
  const arch::OverlayConfig cfg = arch::paper_config();
  compiler::CompilerSession session(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    session.clear_cache();
    benchmark::DoNotOptimize(session.schedule(
        resnet50(), cfg, compiler::Objective::Performance, kBudget));
  }
}
BENCHMARK(BM_ScheduleNetworkCold)
    ->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ScheduleNetworkWarm(benchmark::State& state) {
  const arch::OverlayConfig cfg = arch::paper_config();
  compiler::CompilerSession session(static_cast<int>(state.range(0)));
  session.schedule(resnet50(), cfg, compiler::Objective::Performance, kBudget);
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.schedule(
        resnet50(), cfg, compiler::Objective::Performance, kBudget));
  }
}
BENCHMARK(BM_ScheduleNetworkWarm)
    ->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Unique scratch store directory, removed on scope exit.
struct TempStoreDir {
  std::string path;
  TempStoreDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "ftdl_bench_store_XXXXXX")
                           .string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) != nullptr) path = buf.data();
  }
  ~TempStoreDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

// A restarted process with an empty cache directory: every layer runs the
// mapping search, then writes through to disk. This is the cold bound the
// WarmDisk row is measured against.
void BM_ScheduleColdProcessColdDisk(benchmark::State& state) {
  const arch::OverlayConfig cfg = arch::paper_config();
  for (auto _ : state) {
    state.PauseTiming();
    TempStoreDir dir;
    auto session =
        std::make_unique<compiler::CompilerSession>(static_cast<int>(state.range(0)));
    session->set_store(std::make_shared<compiler::ProgramStore>(dir.path));
    state.ResumeTiming();
    benchmark::DoNotOptimize(session->schedule(
        resnet50(), cfg, compiler::Objective::Performance, kBudget));
    state.PauseTiming();  // keep directory teardown out of the measurement
    session.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ScheduleColdProcessColdDisk)
    ->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// A restarted process against a directory a previous "process" populated:
// no mapping search runs — every program is loaded, integrity-checked and
// semantically re-validated from disk. The paper-artifact warm-start row.
void BM_ScheduleColdProcessWarmDisk(benchmark::State& state) {
  const arch::OverlayConfig cfg = arch::paper_config();
  TempStoreDir dir;
  {
    compiler::CompilerSession writer(static_cast<int>(state.range(0)));
    writer.set_store(std::make_shared<compiler::ProgramStore>(dir.path));
    writer.schedule(resnet50(), cfg, compiler::Objective::Performance,
                    kBudget);
  }
  for (auto _ : state) {
    state.PauseTiming();
    auto session =
        std::make_unique<compiler::CompilerSession>(static_cast<int>(state.range(0)));
    session->set_store(std::make_shared<compiler::ProgramStore>(dir.path));
    state.ResumeTiming();
    benchmark::DoNotOptimize(session->schedule(
        resnet50(), cfg, compiler::Objective::Performance, kBudget));
    state.PauseTiming();
    session.reset();
    state.ResumeTiming();
  }
}
BENCHMARK(BM_ScheduleColdProcessWarmDisk)
    ->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_FindBestHwConfigCold(benchmark::State& state) {
  const arch::OverlayConfig base = arch::paper_config();
  const fpga::Device dev = fpga::ultrascale_vu125();
  compiler::CompilerSession session(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    session.clear_cache();
    benchmark::DoNotOptimize(
        session.best_hw_config(resnet50(), base, dev, 1200, kBudget));
  }
}
BENCHMARK(BM_FindBestHwConfigCold)
    ->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_FindBestHwConfigWarm(benchmark::State& state) {
  const arch::OverlayConfig base = arch::paper_config();
  const fpga::Device dev = fpga::ultrascale_vu125();
  compiler::CompilerSession session(static_cast<int>(state.range(0)));
  session.best_hw_config(resnet50(), base, dev, 1200, kBudget);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        session.best_hw_config(resnet50(), base, dev, 1200, kBudget));
  }
}
BENCHMARK(BM_FindBestHwConfigWarm)
    ->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_compile.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
