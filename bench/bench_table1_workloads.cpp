// Table I: MLPerf benchmarks for DL systems (16-bit weight).
//
// Regenerates the op-class breakdown (CONV / MM / EWOP) and the 16-bit
// weight footprint for the five models, from the layer tables in src/nn.
#include <cstdio>

#include "common/str_util.h"
#include "common/table.h"
#include "nn/model_zoo.h"

int main() {
  using namespace ftdl;

  std::printf("=== Table I: MLPerf benchmarks (16-bit weights) ===\n\n");
  AsciiTable table({"DL Model", "Total Ops", "CONV", "MM", "EWOP",
                    "#Weight (bytes)"});

  for (const nn::Network& net : nn::mlperf_models()) {
    const nn::NetworkStats s = net.stats();
    table.row({net.name(), format_count(double(s.total_ops())),
               format_percent(s.conv_fraction(), 2),
               format_percent(s.mm_fraction(), 2),
               format_percent(s.ewop_fraction(), 2),
               s.weight_bytes() >= 1'000'000
                   ? strformat("%.1fM", double(s.weight_bytes()) / 1e6)
                   : strformat("%.2fK", double(s.weight_bytes()) / 1e3)});
  }
  table.print();

  std::printf(
      "\nPaper row reference: GoogLeNet 99.73/0.07/0.20 13.7M; ResNet50 "
      "99.67/0.05/0.27 51M;\nAlphaGoZero 99.86/0.08/0.06 2.08M; seqCNN "
      "89.86/0.15/9.99 345.06K; seqLSTM 0/99.89/0.11 39.9M\n");
  std::printf(
      "Conclusion (Sec. II-A): CONV+MM account for >90%% of every model's "
      "ops,\nso FTDL accelerates CONV and MM while EWOP runs on the host.\n");
  return 0;
}
