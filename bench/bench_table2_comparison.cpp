// Table II: overall performance of FTDL and comparison with related works.
//
// The FTDL row is *computed by this framework*: the compiler schedules
// every GoogLeNet / ResNet50 layer on the Table II configuration (D1=12,
// D2=5, D3=20 on xcvu125 at 650 MHz, 26 GB/s DRAM), giving the network
// hardware efficiency, FPS, and (with the DRAM + FPGA power models) the
// power efficiency. Prior-work columns use their published frequency and
// efficiency normalized to the same 1200 DSPs, exactly as the paper did.
#include <cstdio>

#include "baseline/prior_work.h"
#include "common/str_util.h"
#include "common/table.h"
#include "ftdl/ftdl.h"

int main() {
  using namespace ftdl;

  FrameworkOptions opts;  // Table II defaults
  opts.search_budget_per_layer = 60'000;
  Framework fw{opts};

  std::printf("=== Table II: FTDL vs prior works ===\n");
  std::printf("FTDL config: %s on %s, post-P&R fmax %s\n\n",
              fw.config().to_string().c_str(), fw.device().name.c_str(),
              format_hz(fw.timing().clk_h_fmax_hz).c_str());

  const nn::Network googlenet = nn::googlenet();
  const nn::Network resnet = nn::resnet50();
  const NetworkReport g = fw.evaluate(googlenet);
  const NetworkReport r = fw.evaluate(resnet);

  const double g_ops = double(googlenet.stats().total_ops());
  const double r_ops = double(resnet.stats().total_ops());
  const int ndsp = fw.config().tpes();

  AsciiTable table({"Work", "DSP freq", "HW eff.", "GoogLeNet FPS",
                    "ResNet50 FPS", "GOPS/W"});
  const double base_g = baseline::normalized_fps(
      baseline::table2_prior_works().front(), ndsp, g_ops);
  const double base_r = baseline::normalized_fps(
      baseline::table2_prior_works().front(), ndsp, r_ops);

  for (const auto& w : baseline::table2_prior_works()) {
    const double fps_g = baseline::normalized_fps(w, ndsp, g_ops);
    const double fps_r = baseline::normalized_fps(w, ndsp, r_ops);
    table.row({w.key, strformat("%.0f MHz", w.dsp_freq_mhz),
               format_percent(w.hardware_efficiency),
               strformat("%.1f (%.1fx)", fps_g, fps_g / base_g),
               strformat("%.1f (%.1fx)", fps_r, fps_r / base_r),
               w.power_eff_gops_per_w
                   ? strformat("%.1f", *w.power_eff_gops_per_w)
                   : std::string("N/A")});
  }
  table.row({"FTDL (this work)",
             format_hz(fw.config().clocks.clk_h_hz),
             strformat("%s / %s",
                       format_percent(g.schedule.hardware_efficiency).c_str(),
                       format_percent(r.schedule.hardware_efficiency).c_str()),
             strformat("%.1f (%.1fx)", g.fps(), g.fps() / base_g),
             strformat("%.1f (%.1fx)", r.fps(), r.fps() / base_r),
             strformat("%.1f", g.gops_per_w())});
  table.print();

  std::printf("\nFTDL detail:\n");
  std::printf("  GoogLeNet: %.1f FPS, %.0f effective GOPS, E_WBUF %.2f, "
              "%zu overlay layers\n",
              g.fps(), g.effective_gops(), g.schedule.mean_e_wbuf,
              g.schedule.layers.size());
  std::printf("  ResNet50:  %.1f FPS, %.0f effective GOPS, E_WBUF %.2f, "
              "%zu overlay layers\n",
              r.fps(), r.effective_gops(), r.schedule.mean_e_wbuf,
              r.schedule.layers.size());
  std::printf("  Power: %.1f W total (DSP %.1f, BRAM %.1f, CLB %.1f, clock "
              "%.1f, static %.1f, DRAM %.1f)\n",
              g.power.total_w(), g.power.dsp_w, g.power.bram_w, g.power.clb_w,
              g.power.clock_w, g.power.static_w, g.power.dram_w);
  std::printf("  Paper row: 650 MHz, 81.1%% / 74.8%%, 402.6 / 151.2 FPS "
              "(7.7x / 7.1x), 27.6 GOPS/W (1.9x)\n");
  return 0;
}
