// Ablation I: Winograd F(2x2, 3x3) on the overlay (the conclusion's
// algorithm-level acceleration; cf. prior work [4]).
//
// For every 3x3/stride-1 layer of GoogLeNet and ResNet50, schedules the
// direct convolution and the 16 transformed-domain MMs and reports the
// realized speedup against the theoretical 2.25x multiply reduction.
#include <cstdio>

#include "common/str_util.h"
#include "common/table.h"
#include "ftdl/ftdl.h"

int main() {
  using namespace ftdl;

  const arch::OverlayConfig cfg = arch::paper_config();
  std::printf("=== Ablation I: Winograd F(2x2,3x3) vs direct convolution ===\n\n");

  for (const char* name : {"GoogLeNet", "ResNet50"}) {
    const nn::Network net = nn::model_by_name(name);
    AsciiTable table({"Layer", "Direct cycles", "Winograd cycles", "Speedup",
                      "MAC cut", "Transform EWOP"});
    std::int64_t direct_total = 0, wino_total = 0;
    int shown = 0;
    for (const nn::Layer& l : net.overlay_layers()) {
      if (!winograd::is_winograd_eligible(l)) continue;
      // One representative per distinct shape keeps the table readable.
      const auto plan = winograd::plan_winograd(l);
      const auto cmp = winograd::compare_schedules(l, cfg, 12'000);
      direct_total += cmp.direct_cycles;
      wino_total += cmp.winograd_cycles;
      if (shown < 6) {
        table.row({l.name, std::to_string(cmp.direct_cycles),
                   std::to_string(cmp.winograd_cycles),
                   strformat("%.2fx", cmp.speedup()),
                   strformat("%.2fx", plan.mac_reduction()),
                   format_count(double(plan.transform_ewop_ops))});
        ++shown;
      }
    }
    std::printf("--- %s (first %d eligible layers shown) ---\n", name, shown);
    table.print();
    if (wino_total > 0) {
      std::printf("All eligible layers: %.2fx cycle reduction "
                  "(theoretical multiply cut: 2.25x)\n\n",
                  double(direct_total) / double(wino_total));
    }
  }
  std::printf("Winograd composes with the overlay by turning each 3x3 CONV "
              "into 16 MM\nworkloads FTDL already schedules; the transforms "
              "join the host EWOP class.\n");
  return 0;
}
