// Ablation J: depthwise-separable networks on the overlay.
//
// Depthwise layers have no weight-only loop, so FTDL's activation-sharing
// D2 columns cannot be split and the DSP cascade can absorb at most the
// kh*kw reduction — the architecture caps depthwise efficiency around
// (kh*kw / D1) / D2 (15% on the paper overlay). MobileNetV1 therefore runs
// far below its MAC-count promise: the pointwise (1x1) layers fly, the
// depthwise layers crawl, and the network's FPS advantage over GoogLeNet
// shrinks dramatically.
#include <cstdio>

#include "common/str_util.h"
#include "common/table.h"
#include "ftdl/ftdl.h"

int main() {
  using namespace ftdl;

  const arch::OverlayConfig cfg = arch::paper_config();
  std::printf("=== Ablation J: MobileNetV1 (depthwise) on the overlay ===\n\n");

  const nn::Network net = nn::mobilenet_v1();
  const auto sched = compiler::schedule_network(
      net, cfg, compiler::Objective::Performance, 25'000);

  // Split the cycle budget by layer class.
  std::int64_t dw_cycles = 0, dw_macs = 0, other_cycles = 0, other_macs = 0;
  for (const auto& lp : sched.layers) {
    if (lp.layer.kind == nn::LayerKind::Depthwise) {
      dw_cycles += lp.total_cycles();
      dw_macs += lp.layer.macs();
    } else {
      other_cycles += lp.total_cycles();
      other_macs += lp.layer.macs();
    }
  }

  AsciiTable table({"Layer class", "MACs", "Share of MACs", "Cycles",
                    "Share of cycles", "Efficiency"});
  const double total_macs = double(dw_macs + other_macs);
  const double total_cycles = double(dw_cycles + other_cycles);
  auto eff = [&](std::int64_t macs, std::int64_t cycles) {
    return double(macs) / (double(cycles) * cfg.tpes());
  };
  table.row({"depthwise (13 layers)", format_count(double(dw_macs)),
             format_percent(double(dw_macs) / total_macs),
             std::to_string(dw_cycles),
             format_percent(double(dw_cycles) / total_cycles),
             format_percent(eff(dw_macs, dw_cycles))});
  table.row({"pointwise/conv/fc", format_count(double(other_macs)),
             format_percent(double(other_macs) / total_macs),
             std::to_string(other_cycles),
             format_percent(double(other_cycles) / total_cycles),
             format_percent(eff(other_macs, other_cycles))});
  table.print();

  const auto googlenet = compiler::schedule_network(
      nn::googlenet(), cfg, compiler::Objective::Performance, 25'000);
  std::printf(
      "\nMobileNetV1: %.1f FPS at %s efficiency (%.2fx the MACs-implied "
      "speedup over\nGoogLeNet's %.1f FPS — the missing factor is the "
      "depthwise bottleneck).\n",
      sched.fps(), format_percent(sched.hardware_efficiency).c_str(),
      (sched.fps() / googlenet.fps()) /
          (double(googlenet.overlay_macs) / double(sched.overlay_macs)),
      googlenet.fps());
  std::printf(
      "\nArchitectural cap for 3x3 depthwise on D1=%d, D2=%d: (9/%d)/%d = "
      "%s.\nThis is the known weakness of activation-broadcast overlays on "
      "separable\nnetworks (and with ~18 MACs per activation word, the "
      "layers are also\nActBUS/DRAM-bound below that cap) — a result the "
      "FTDL paper's CONV/MM focus\nsidesteps by benchmark choice.\n",
      cfg.d1, cfg.d2, cfg.d1, cfg.d2,
      format_percent((9.0 / cfg.d1) / cfg.d2).c_str());
  return 0;
}
