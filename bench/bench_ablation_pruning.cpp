// Ablation H: structured channel pruning on the overlay (the conclusion's
// "model compression" combination).
//
// Prunes GoogLeNet's conv channels at several keep ratios and re-schedules
// each variant on the paper overlay: FPS scales superlinearly in the keep
// ratio (MACs fall quadratically) while hardware efficiency degrades only
// mildly — the structured variant keeps layers dense and overlay-friendly.
#include <cstdio>

#include "common/csv.h"
#include "common/str_util.h"
#include "common/table.h"
#include "ftdl/ftdl.h"
#include "prune/channel_prune.h"

int main() {
  using namespace ftdl;

  const arch::OverlayConfig cfg = arch::paper_config();
  std::printf("=== Ablation H: structured pruning of GoogLeNet ===\n\n");

  AsciiTable table({"Keep ratio", "MACs", "Weights", "HW eff.", "FPS",
                    "Speedup"});
  CsvWriter csv("ablation_pruning.csv",
                {"keep_ratio", "macs", "weight_bytes", "efficiency", "fps"});
  double base_fps = 0.0;

  for (double keep : {1.0, 0.75, 0.5, 0.375, 0.25}) {
    prune::PruneSpec spec;
    spec.conv_keep_ratio = keep;
    prune::PruneReport rep;
    const nn::Network pruned = prune::prune_channels(nn::googlenet(), spec, &rep);
    const auto sched = compiler::schedule_network(
        pruned, cfg, compiler::Objective::Performance, 25'000);
    if (base_fps == 0.0) base_fps = sched.fps();
    table.row({strformat("%.3f", keep),
               format_count(double(rep.macs_after)),
               format_bytes(2.0 * double(rep.weights_after)),
               format_percent(sched.hardware_efficiency),
               strformat("%.1f", sched.fps()),
               strformat("%.2fx", sched.fps() / base_fps)});
    csv.row_numeric({keep, double(rep.macs_after),
                     2.0 * double(rep.weights_after),
                     sched.hardware_efficiency, sched.fps()});
  }
  table.print();
  std::printf("\nStructured pruning keeps the layers dense, so the overlay "
              "converts the MAC\nreduction almost fully into FPS; exported "
              "to ablation_pruning.csv.\n");
  return 0;
}
