// Microbenchmarks of the framework's own hot paths (google-benchmark):
// analytical-model evaluation rate, mapping-search throughput, instruction
// encode/decode, cycle-level simulation MACC rate, and timing analysis.
//
// Unless the caller passes --benchmark_out themselves, results are also
// written to BENCH_micro.json (google-benchmark's JSON reporter) so every
// perf PR has a machine-readable baseline to diff against; CI uploads the
// file as a build artifact.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/isa.h"
#include "arch/overlay_config.h"
#include "common/arena.h"
#include "common/rng.h"
#include "common/simd.h"
#include "compiler/codegen.h"
#include "compiler/search.h"
#include "fpga/device_zoo.h"
#include "sim/ftdl_sim.h"
#include "frontend/spec_parser.h"
#include "nn/model_zoo.h"
#include "obs/stream_writer.h"
#include "prune/channel_prune.h"
#include "quant/quantize.h"
#include "rtlgen/verilog_gen.h"
#include "timing/scaling_study.h"
#include "winograd/winograd.h"

namespace {

using namespace ftdl;

const nn::Layer& bench_layer() {
  static const nn::Layer layer =
      nn::make_conv("bench", 160, 14, 14, 320, 3, 1, 1);
  return layer;
}

void BM_AnalyticalEvaluate(benchmark::State& state) {
  const auto w = compiler::Workload::from_layer(bench_layer());
  const arch::OverlayConfig cfg = arch::paper_config();
  const auto sol = compiler::best_mapping(w, cfg, compiler::Objective::Performance, 5'000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::evaluate(w, sol.mapping, cfg));
  }
}
BENCHMARK(BM_AnalyticalEvaluate);

void BM_MappingSearch(benchmark::State& state) {
  const auto w = compiler::Workload::from_layer(bench_layer());
  const arch::OverlayConfig cfg = arch::paper_config();
  compiler::SearchOptions opt;
  opt.max_candidates = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compiler::search_mappings(w, cfg, opt));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MappingSearch)->Arg(1000)->Arg(10000);

void BM_InstEncodeDecode(benchmark::State& state) {
  const arch::Instruction inst = arch::set_loop(arch::TemporalLevel::T, 12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(arch::decode(arch::encode(inst)));
  }
}
BENCHMARK(BM_InstEncodeDecode);

void BM_SimulateConvLayer(benchmark::State& state) {
  arch::OverlayConfig cfg = arch::paper_config();
  cfg.d1 = 4;
  cfg.d2 = 2;
  cfg.d3 = 3;
  const nn::Layer layer = nn::make_conv("c", 8, 10, 10, 12, 3, 1, 1);
  const auto prog = compiler::compile_layer(layer, cfg,
                                            compiler::Objective::Performance,
                                            4'000);
  Rng rng(1);
  nn::Tensor16 input({8, 10, 10});
  nn::Tensor16 weights({12, 8, 3, 3});
  input.fill_random(rng);
  weights.fill_random(rng);
  sim::SimOptions opt;
  opt.collect_trace = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate_layer(prog, cfg, weights, input, opt));
  }
  state.SetItemsProcessed(state.iterations() * layer.macs());
}
BENCHMARK(BM_SimulateConvLayer);

// The SIMD tentpole's before/after pair: the same dense-burst-heavy conv
// simulated with the vector dispatch forced off (scalar oracles) and on.
// The ratio of the two MACC rates is the kernel-level speedup; the
// BENCH_sim sweep reports the end-to-end layer numbers.
void bench_dense_burst(benchmark::State& state, bool simd_on) {
  const arch::OverlayConfig cfg = arch::paper_config();
  // A fully-connected layer (fc1000-shaped): its 2048-deep reduction
  // columns are the longest contiguous dot/axpy sweeps in the ResNet50
  // sweep, so this pair isolates the vector-dispatch win with the least
  // non-kernel engine overhead (BENCH_sim covers the conv shapes).
  const nn::Layer layer = nn::make_matmul("burst_fc", 2048, 1000, 1);
  // Budget matches bench_sim's: the 4k-candidate mapping routes the layer
  // through long Dot-plan columns, which is the shape being measured.
  const auto prog = compiler::compile_layer(layer, cfg,
                                            compiler::Objective::Performance,
                                            4'000);
  Rng rng(5);
  nn::Tensor16 input({2048, 1});
  nn::Tensor16 weights({1000, 2048});
  input.fill_random(rng);
  weights.fill_random(rng);
  sim::SimOptions opt;
  opt.collect_trace = false;
  opt.jobs = 1;
  simd::set_enabled(simd_on);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim::simulate_layer(prog, cfg, weights, input, opt));
  }
  simd::set_enabled(true);
  state.SetItemsProcessed(state.iterations() * layer.macs());
  state.SetLabel(simd_on ? simd::isa_name() : "scalar");
}

void BM_DenseBurstScalar(benchmark::State& state) {
  bench_dense_burst(state, /*simd_on=*/false);
}
BENCHMARK(BM_DenseBurstScalar);

void BM_DenseBurstSimd(benchmark::State& state) {
  bench_dense_burst(state, /*simd_on=*/true);
}
BENCHMARK(BM_DenseBurstSimd);

// Pool round-trip cost for a steady-state tensor shape: after the first
// (warm-up) iteration every acquire is a free-list pop, so this measures
// the mutex + size-class arithmetic the serving runtime pays per tensor.
void BM_ArenaAcquireRelease(benchmark::State& state) {
  TensorArena arena;
  TensorArena::Scope scope(arena);
  const std::int64_t n = state.range(0);
  for (auto _ : state) {
    ArenaVec<acc_t> v(n);
    benchmark::DoNotOptimize(v.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["fallback_allocs"] =
      static_cast<double>(arena.stats().fallback_allocs);
}
BENCHMARK(BM_ArenaAcquireRelease)->Arg(128)->Arg(4096)->Arg(65536);

void BM_TimingScalingStudy(benchmark::State& state) {
  const fpga::Device dev = fpga::ultrascale_vu125();
  for (auto _ : state) {
    benchmark::DoNotOptimize(timing::run_scaling_study(dev));
  }
}
BENCHMARK(BM_TimingScalingStudy);

void BM_WinogradTransformConv(benchmark::State& state) {
  const nn::Layer layer = nn::make_conv("c", 16, 16, 16, 16, 3, 1, 1);
  Rng rng(3);
  nn::Tensor16 in({16, 16, 16});
  nn::Tensor16 w({16, 16, 3, 3});
  in.fill_random(rng);
  w.fill_random(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(winograd::winograd_conv(layer, in, w));
  }
  state.SetItemsProcessed(state.iterations() * layer.macs());
}
BENCHMARK(BM_WinogradTransformConv);

void BM_QuantizeRoundTrip(benchmark::State& state) {
  quant::TensorF t({256, 64});
  quant::fill_random_float(t, 5);
  const quant::QuantParams p = quant::calibrate(t, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::dequantize(quant::quantize(t, p), p));
  }
  state.SetItemsProcessed(state.iterations() * t.size());
}
BENCHMARK(BM_QuantizeRoundTrip);

void BM_SpecParse(benchmark::State& state) {
  const std::string spec = R"(
network micro
input 3 32 32
conv c1 out=32 k=3 pad=1
pool p1 k=2
conv c2 out=64 k=3 pad=1
pool p2 k=2
fc f1 out=128 relu
fc f2 out=10
)";
  for (auto _ : state) {
    benchmark::DoNotOptimize(frontend::parse_network_spec(spec));
  }
}
BENCHMARK(BM_SpecParse);

void BM_PruneGoogLeNet(benchmark::State& state) {
  prune::PruneSpec spec;
  spec.conv_keep_ratio = 0.5;
  const nn::Network net = nn::googlenet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(prune::prune_channels(net, spec, nullptr));
  }
}
BENCHMARK(BM_PruneGoogLeNet);

void BM_RtlGenerate(benchmark::State& state) {
  const arch::OverlayConfig cfg = arch::paper_config();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtlgen::generate_overlay_rtl(cfg));
  }
}
BENCHMARK(BM_RtlGenerate);

// Publish fast path of the streaming event-log backend: one span
// (SpanBegin + SpanEnd group) per iteration into a per-thread chunk
// buffer, serializer flushing in the background. Guards the "recording
// never blocks a request path" claim of docs/obs-stream-format.md.
void BM_ObsStreamPublish(benchmark::State& state) {
  const std::string path = "bench_obs_stream.tmp";
  obs::stream::StreamWriter writer(path);
  obs::stream::Record r[2];
  r[0].kind = static_cast<std::uint8_t>(obs::stream::RecordKind::SpanBegin);
  r[0].name_id = writer.intern("bench_span");
  r[0].aux_id = writer.intern("bench");
  r[1].kind = static_cast<std::uint8_t>(obs::stream::RecordKind::SpanEnd);
  double ts = 0.0;
  for (auto _ : state) {
    r[0].payload = obs::stream::double_bits(ts);
    r[1].payload = obs::stream::double_bits(ts + 0.5);
    ts += 1.0;
    benchmark::DoNotOptimize(writer.publish(r, 2));
  }
  state.SetItemsProcessed(state.iterations());
  writer.finish();
  std::remove(path.c_str());
}
BENCHMARK(BM_ObsStreamPublish);

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
