// Tests for placement, the delay model, static timing analysis and the
// Fig. 6 scale-up study. These encode the paper's hardware claims as
// executable checks.
#include <gtest/gtest.h>

#include "common/error.h"
#include "fpga/device_zoo.h"
#include "timing/delay_model.h"
#include "timing/placement.h"
#include "timing/scaling_study.h"
#include "timing/timing_analyzer.h"

namespace ftdl::timing {
namespace {

using fpga::Device;
using fpga::ultrascale_vu125;
using fpga::virtex7_vx330t;

OverlayGeometry paper_geometry() {
  // Table II example configuration: D1=12, D2=5, D3=20 on vu125.
  OverlayGeometry g;
  g.d1 = 12;
  g.d2 = 5;
  g.d3 = 20;
  return g;
}

TEST(Placement, FtdlPaperConfigFitsVu125) {
  const Device d = ultrascale_vu125();
  const PlacementResult r = place_ftdl(d, paper_geometry());
  EXPECT_EQ(r.dsp_columns_used, 5);
  EXPECT_NEAR(r.dsp_utilization, 1200.0 / 1200.0, 1e-9);
  EXPECT_GT(r.bram_utilization, 0.0);
  EXPECT_LE(r.bram_utilization, 1.0);
  EXPECT_FALSE(r.nets.empty());
}

TEST(Placement, RejectsOversizedShapes) {
  const Device d = ultrascale_vu125();
  OverlayGeometry g = paper_geometry();
  g.d2 = d.dsp_columns + 1;
  EXPECT_THROW(place_ftdl(d, g), ConfigError);

  g = paper_geometry();
  g.d1 = 100;  // 100*20 > 120 per column
  EXPECT_THROW(place_ftdl(d, g), ConfigError);

  EXPECT_THROW(place_systolic(d, d.dsp_per_column + 1, 1), ConfigError);
  EXPECT_THROW(place_systolic(d, 1, d.dsp_columns + 1), ConfigError);
}

TEST(Placement, FtdlNetLengthsAreScaleInvariant) {
  // The layout-aware claim: intra-TPE net lengths do not grow with D2/D3.
  const Device d = ultrascale_vu125();
  OverlayGeometry small{.d1 = 12, .d2 = 1, .d3 = 2};
  OverlayGeometry large{.d1 = 12, .d2 = 5, .d3 = 20};
  auto weight_len = [&](const OverlayGeometry& g) {
    for (const Net& n : place_ftdl(d, g).nets) {
      if (n.kind == NetKind::WeightFetch) return n.length_um;
    }
    ADD_FAILURE() << "no weight-fetch net";
    return 0.0;
  };
  // Larger overlays may touch a slightly worse column but within 2x.
  EXPECT_LE(weight_len(large), 2.0 * weight_len(small) + 1.0);
}

TEST(Placement, SystolicMemFeedGrowsWithScale) {
  const Device d = ultrascale_vu125();
  auto feed_len = [&](int rows, int cols) {
    for (const Net& n : place_systolic(d, rows, cols).nets) {
      if (n.kind == NetKind::SystolicMemFeed) return n.length_um;
    }
    ADD_FAILURE() << "no mem-feed net";
    return 0.0;
  };
  EXPECT_GT(feed_len(240, 5), 1.5 * feed_len(48, 1));
}

TEST(Placement, AutoPipelineStagesClamped) {
  EXPECT_EQ(auto_pipeline_stages(100.0), 1);
  EXPECT_EQ(auto_pipeline_stages(1400.0), 2);
  EXPECT_EQ(auto_pipeline_stages(1e6), 4);
}

TEST(DelayModel, CascadeIgnoresCongestionAndDistance) {
  const DelayParams p = DelayParams::for_family(fpga::Family::UltraScale);
  const Net cascade{NetKind::DspCascade, ClockDomain::High, 5000.0, 1, 0};
  EXPECT_DOUBLE_EQ(net_delay_ps(cascade, p, 0.0), p.dsp_cascade_ps);
  EXPECT_DOUBLE_EQ(net_delay_ps(cascade, p, 1.0), p.dsp_cascade_ps);
}

TEST(DelayModel, DelayMonotoneInLengthAndUtilization) {
  const DelayParams p = DelayParams::for_family(fpga::Family::Virtex7);
  const Net short_net{NetKind::ControlHop, ClockDomain::High, 200.0, 1, 1};
  const Net long_net{NetKind::ControlHop, ClockDomain::High, 2000.0, 1, 1};
  EXPECT_LT(net_delay_ps(short_net, p, 0.5), net_delay_ps(long_net, p, 0.5));
  EXPECT_LT(net_delay_ps(long_net, p, 0.1), net_delay_ps(long_net, p, 0.9));
}

TEST(DelayModel, PipeliningReducesBindingDelay) {
  const DelayParams p = DelayParams::for_family(fpga::Family::Virtex7);
  const Net unpiped{NetKind::ActBusHop, ClockDomain::High, 2800.0, 1, 0};
  const Net piped{NetKind::ActBusHop, ClockDomain::High, 2800.0, 4, 0};
  EXPECT_GT(net_delay_ps(unpiped, p, 0.5), net_delay_ps(piped, p, 0.5));
}

TEST(Timing, PaperConfigReaches650OnVu125) {
  // Fig. 6(b): CLKh stabilizes above 650 MHz on the UltraScale device.
  const Device d = ultrascale_vu125();
  const TimingReport t = analyze_double_pump(d, place_ftdl(d, paper_geometry()));
  EXPECT_GE(t.clk_h_fmax_hz, 650e6);
  EXPECT_LE(t.clk_h_fmax_hz, d.timing.dsp_fmax_hz);
  EXPECT_DOUBLE_EQ(t.clk_l_fmax_hz, t.clk_h_fmax_hz / 2.0);
}

TEST(Timing, Fig6aVirtexStabilizesAbove620) {
  const auto pts = run_scaling_study(virtex7_vx330t());
  ASSERT_EQ(pts.size(), 7u);
  for (const auto& pt : pts) {
    EXPECT_GE(pt.ftdl.clk_h_fmax_hz, 620e6)
        << "config " << pt.geometry.d2 << " cols";
  }
  // Final point uses 100% of DSPs.
  EXPECT_NEAR(pts.back().dsp_utilization, 1.0, 1e-9);
}

TEST(Timing, Fig6bUltraScaleStabilizesAbove650) {
  const auto pts = run_scaling_study(ultrascale_vu125());
  ASSERT_EQ(pts.size(), 7u);
  for (const auto& pt : pts) {
    EXPECT_GE(pt.ftdl.clk_h_fmax_hz, 650e6);
  }
  EXPECT_NEAR(pts.back().dsp_utilization, 1.0, 1e-9);
}

TEST(Timing, FmaxIsFlatAcrossScaleUp) {
  // The scalability claim: <8% fmax spread between the smallest and the
  // full-device configuration (visually flat in Fig. 6).
  for (const Device& d : {virtex7_vx330t(), ultrascale_vu125()}) {
    const auto pts = run_scaling_study(d);
    double lo = pts[0].ftdl.clk_h_fmax_hz, hi = lo;
    for (const auto& pt : pts) {
      lo = std::min(lo, pt.ftdl.clk_h_fmax_hz);
      hi = std::max(hi, pt.ftdl.clk_h_fmax_hz);
    }
    EXPECT_LT((hi - lo) / hi, 0.08) << d.name;
  }
}

TEST(Timing, FtdlExceeds88PercentOfDspFmaxOnUltraScale) {
  // Abstract claim: post-P&R frequency exceeds 88% of the theoretical
  // maximum; on the UltraScale part the ratio is ~650/740.
  const Device d = ultrascale_vu125();
  for (const auto& pt : run_scaling_study(d)) {
    EXPECT_GE(pt.ftdl.clk_h_fmax_hz / 740e6, 0.88);
  }
}

TEST(Timing, SystolicBaselineDegradesWithScale) {
  // The architecture-layout mismatch: baseline fmax falls with scale while
  // FTDL stays flat; at full scale the baseline is far below FTDL.
  for (const Device& d : {virtex7_vx330t(), ultrascale_vu125()}) {
    const auto pts = run_scaling_study(d);
    EXPECT_LT(pts.back().systolic.clk_h_fmax_hz,
              0.6 * pts.front().systolic.clk_h_fmax_hz)
        << d.name;
    EXPECT_LT(pts.back().systolic.clk_h_fmax_hz,
              0.5 * pts.back().ftdl.clk_h_fmax_hz)
        << d.name;
    // Prior-art regime: below ~300 MHz at scale (Table II: 100-240 MHz).
    EXPECT_LT(pts.back().systolic.clk_h_fmax_hz, 300e6) << d.name;
  }
}

TEST(Timing, SingleClockIsBramBound) {
  // Without double pump, even a perfectly placed design cannot beat the
  // BRAM ceiling (ablation A's hardware side).
  const Device d = ultrascale_vu125();
  PlacementResult r = place_ftdl(d, paper_geometry());
  // Re-tag the BRAM access into the single clock domain by analyzing as
  // single clock: BRAM intrinsic is injected by the analyzer via nets.
  r.nets.push_back(Net{NetKind::BramInternal, ClockDomain::High, 0.0, 1, 0});
  const TimingReport t = analyze_single_clock(d, r);
  EXPECT_LE(t.clk_h_fmax_hz, d.timing.bram_fmax_hz + 1.0);
}

TEST(Timing, CriticalNetIsReported) {
  const Device d = ultrascale_vu125();
  const TimingReport t = analyze_double_pump(d, place_ftdl(d, paper_geometry()));
  EXPECT_GT(t.critical_path_ps, 0.0);
  // With a healthy overlay the binding path is DSP-side, not a bus hop.
  EXPECT_TRUE(t.critical_net == NetKind::DspInternal ||
              t.critical_net == NetKind::WeightFetch ||
              t.critical_net == NetKind::ActFetch)
      << to_string(t.critical_net);
}

TEST(ScalingStudy, GeometriesGrowAndRespectDevice) {
  for (const Device& d : {virtex7_vx330t(), ultrascale_vu125()}) {
    const auto gs = scaling_geometries(d);
    ASSERT_EQ(gs.size(), 7u);
    for (std::size_t i = 1; i < gs.size(); ++i) {
      EXPECT_GE(gs[i].d2, gs[i - 1].d2);
    }
    for (const auto& g : gs) {
      EXPECT_LE(g.d2, d.dsp_columns);
      EXPECT_LE(g.d1 * g.d3, d.dsp_per_column);
    }
    EXPECT_EQ(gs.back().d2, d.dsp_columns);
    EXPECT_EQ(gs.back().d1 * gs.back().d3, d.dsp_per_column);
  }
}

class AllDevicesScaling : public ::testing::TestWithParam<std::string> {};

TEST_P(AllDevicesScaling, EveryZooDeviceScalesSanely) {
  const Device d = fpga::device_by_name(GetParam());
  const auto pts = run_scaling_study(d);
  ASSERT_EQ(pts.size(), 7u);
  for (const auto& pt : pts) {
    // FTDL stays within the physically meaningful band on every device.
    EXPECT_GT(pt.ftdl.clk_h_fmax_hz, 500e6) << d.name;
    EXPECT_LE(pt.ftdl.clk_h_fmax_hz, d.timing.dsp_fmax_hz) << d.name;
    EXPECT_GT(pt.ftdl.clk_h_fmax_hz, pt.systolic.clk_h_fmax_hz) << d.name;
    EXPECT_GT(pt.dsp_utilization, 0.0);
    EXPECT_LE(pt.dsp_utilization, 1.0);
  }
  // The final point is the largest buildable overlay: 100% of the DSPs when
  // the device has a BRAM18 per DSP, else the BRAM-limited maximum (large
  // UltraScale parts have DSP:BRAM > 1).
  double max_util = 0.0;
  for (const auto& pt : pts) max_util = std::max(max_util, pt.dsp_utilization);
  EXPECT_NEAR(pts.back().dsp_utilization, max_util, 1e-9) << d.name;
  EXPECT_GE(pts.back().dsp_utilization, 0.5) << d.name;  // vu9p: BRAM-poor
}

INSTANTIATE_TEST_SUITE_P(Zoo, AllDevicesScaling,
                         ::testing::ValuesIn(fpga::device_names()));

}  // namespace
}  // namespace ftdl::timing
