// Unit tests for the common support library.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <atomic>
#include <limits>
#include <numeric>
#include <thread>
#include <vector>

#include "common/arena.h"
#include "common/csv.h"
#include "common/error.h"
#include "common/fixed_point.h"
#include "common/hash.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "common/str_util.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace ftdl {
namespace {

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 5), 2);
  EXPECT_EQ(ceil_div(11, 5), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
  EXPECT_EQ(ceil_div(5, 1), 5);
}

TEST(MathUtil, RoundUp) {
  EXPECT_EQ(round_up(10, 4), 12);
  EXPECT_EQ(round_up(12, 4), 12);
  EXPECT_EQ(round_up(1, 7), 7);
}

TEST(MathUtil, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(63));
  EXPECT_EQ(next_pow2(1), 1);
  EXPECT_EQ(next_pow2(5), 8);
  EXPECT_EQ(next_pow2(64), 64);
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(1024), 10);
  EXPECT_EQ(ilog2(1023), 9);
}

TEST(MathUtil, Divisors) {
  EXPECT_EQ(divisors(1), (std::vector<std::int64_t>{1}));
  EXPECT_EQ(divisors(12), (std::vector<std::int64_t>{1, 2, 3, 4, 6, 12}));
  EXPECT_EQ(divisors(7), (std::vector<std::int64_t>{1, 7}));
  EXPECT_EQ(divisors(36).size(), 9u);  // perfect square: no duplicate sqrt
}

TEST(MathUtil, TileCandidatesIncludePaddedDivisors) {
  // Trip count 7 is prime, but tile 4 (pad to 8) and 2 must be offered.
  const auto c = tile_candidates(7);
  EXPECT_NE(std::find(c.begin(), c.end(), 2), c.end());
  EXPECT_NE(std::find(c.begin(), c.end(), 4), c.end());
  EXPECT_NE(std::find(c.begin(), c.end(), 7), c.end());
  // Sorted and unique, all <= n.
  EXPECT_TRUE(std::is_sorted(c.begin(), c.end()));
  EXPECT_EQ(std::adjacent_find(c.begin(), c.end()), c.end());
  for (auto v : c) EXPECT_LE(v, 7);
}

TEST(MathUtil, ProductAndGcd) {
  EXPECT_EQ(product({}), 1);
  EXPECT_EQ(product({2, 3, 4}), 24);
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(7, 13), 1);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01Bounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(FixedPoint, MaccMatchesWideArithmetic) {
  EXPECT_EQ(macc(0, 100, 200), 20000);
  EXPECT_EQ(macc(-5, -3, 7), -26);
  EXPECT_EQ(macc(kAcc48Max, 0, 0), kAcc48Max);
}

TEST(FixedPoint, Saturate48) {
  EXPECT_EQ(saturate48(kAcc48Max + 10), kAcc48Max);
  EXPECT_EQ(saturate48(kAcc48Min - 10), kAcc48Min);
  EXPECT_EQ(saturate48(12345), 12345);
}

TEST(FixedPoint, Requantize) {
  EXPECT_EQ(requantize(1 << 10, 10), 1);
  EXPECT_EQ(requantize((acc_t{40000}) << 8, 8), 32767);   // saturates high
  EXPECT_EQ(requantize((acc_t{-40000}) << 8, 8), -32768); // saturates low
  EXPECT_EQ(relu(-5), 0);
  EXPECT_EQ(relu(5), 5);
}

TEST(StrUtil, Formatters) {
  EXPECT_EQ(format_hz(650e6), "650.0 MHz");
  EXPECT_EQ(format_hz(1.23e9), "1.23 GHz");
  EXPECT_EQ(format_bytes(13.7 * 1024 * 1024), "13.7 MB");
  EXPECT_EQ(format_percent(0.811), "81.1%");
  EXPECT_EQ(join_x({12, 5, 20}), "12 x 5 x 20");
  EXPECT_EQ(strformat("%d-%s", 7, "x"), "7-x");
}

// The strict CLI-flag parsers: everything std::atoi silently turns into 0
// must be a parse failure here (the tools hoisted onto these in PR 10).
TEST(StrUtil, ParseIntStrict) {
  std::int64_t v = -1;
  EXPECT_TRUE(parse_int_strict("8", 1, 100, &v));
  EXPECT_EQ(v, 8);
  EXPECT_TRUE(parse_int_strict("100", 1, 100, &v));
  EXPECT_EQ(v, 100);
  EXPECT_TRUE(parse_int_strict("-3", -10, 10, &v));
  EXPECT_EQ(v, -3);

  v = 42;
  EXPECT_FALSE(parse_int_strict("x8", 1, 100, &v));    // garbage prefix
  EXPECT_FALSE(parse_int_strict("8x", 1, 100, &v));    // trailing text
  EXPECT_FALSE(parse_int_strict("8 ", 1, 100, &v));    // trailing space
  EXPECT_FALSE(parse_int_strict("", 1, 100, &v));      // empty
  EXPECT_FALSE(parse_int_strict(nullptr, 1, 100, &v)); // absent
  EXPECT_FALSE(parse_int_strict("0", 1, 100, &v));     // below min
  EXPECT_FALSE(parse_int_strict("101", 1, 100, &v));   // above max
  EXPECT_FALSE(parse_int_strict("3.5", 1, 100, &v));   // not an integer
  EXPECT_FALSE(parse_int_strict("99999999999999999999", 1,
                                std::numeric_limits<std::int64_t>::max(),
                                &v));  // overflow
  EXPECT_EQ(v, 42) << "out must be untouched on failure";
}

TEST(StrUtil, ParseDoubleStrict) {
  double v = -1.0;
  EXPECT_TRUE(parse_double_strict("650", &v));
  EXPECT_EQ(v, 650.0);
  EXPECT_TRUE(parse_double_strict("0.5", &v));
  EXPECT_EQ(v, 0.5);
  EXPECT_TRUE(parse_double_strict("-2e3", &v));
  EXPECT_EQ(v, -2000.0);

  v = 42.0;
  EXPECT_FALSE(parse_double_strict("fast", &v));
  EXPECT_FALSE(parse_double_strict("1.5x", &v));
  EXPECT_FALSE(parse_double_strict("", &v));
  EXPECT_FALSE(parse_double_strict(nullptr, &v));
  EXPECT_FALSE(parse_double_strict("inf", &v));  // finite only
  EXPECT_FALSE(parse_double_strict("nan", &v));
  EXPECT_EQ(v, 42.0) << "out must be untouched on failure";
}

TEST(Csv, WritesEscapedRows) {
  const std::string path = "test_common_csv_tmp.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.row({"1", "has,comma"});
    w.row_numeric({2.5, 3.0});
  }
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "1,\"has,comma\"");
  EXPECT_EQ(l3, "2.5,3");
  std::filesystem::remove(path);
}

TEST(Csv, ArityMismatchThrows) {
  const std::string path = "test_common_csv_tmp2.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.row({"only-one"}), InternalError);
  std::filesystem::remove(path);
}

TEST(AsciiTable, RendersAligned) {
  AsciiTable t({"name", "val"});
  t.row({"x", "1"});
  t.row({"longer", "22"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| name   | val |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22  |"), std::string::npos);
}

TEST(Error, AssertThrowsInternalError) {
  EXPECT_THROW(FTDL_ASSERT(1 == 2), InternalError);
  EXPECT_NO_THROW(FTDL_ASSERT(1 == 1));
}

TEST(Hash64, KnownFnv1aVectors) {
  // FNV-1a reference values: empty input is the offset basis, "a" is the
  // published test vector.
  EXPECT_EQ(Hash64().digest(), 0xcbf29ce484222325ull);
  EXPECT_EQ(Hash64().bytes("a", 1).digest(), 0xaf63dc4c8601ec8cull);
}

TEST(Hash64, IntegersAreCanonicalizedLittleEndian) {
  EXPECT_EQ(Hash64().u64(0x0102030405060708ull).digest(),
            Hash64()
                .bytes("\x08\x07\x06\x05\x04\x03\x02\x01", 8)
                .digest());
  // i32 widens through i64, so the two feeders agree on common values.
  EXPECT_EQ(Hash64().i32(-7).digest(), Hash64().i64(-7).digest());
}

TEST(Hash64, StringsAreLengthPrefixed) {
  const auto h = [](const std::string& a, const std::string& b) {
    return Hash64().str(a).str(b).digest();
  };
  EXPECT_NE(h("ab", "c"), h("a", "bc"));
  EXPECT_EQ(h("ab", "c"), h("ab", "c"));
}

TEST(Hash64, DoublesHashByBitPattern) {
  EXPECT_NE(Hash64().f64(0.0).digest(), Hash64().f64(-0.0).digest());
  EXPECT_EQ(Hash64().f64(26e9).digest(), Hash64().f64(26e9).digest());
  EXPECT_NE(Hash64().f64(1.0).digest(), Hash64().i64(1).digest());
}

TEST(ThreadPool, RejectsNonPositiveJobs) {
  EXPECT_THROW(ThreadPool(0), ConfigError);
  EXPECT_THROW(ThreadPool(-3), ConfigError);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (int jobs : {1, 2, 8}) {
    ThreadPool pool(jobs);
    EXPECT_EQ(pool.jobs(), jobs);
    std::vector<std::atomic<int>> ran(257);
    for (auto& r : ran) r = 0;
    pool.parallel_for(ran.size(), [&](std::size_t i) { ran[i]++; });
    for (const auto& r : ran) EXPECT_EQ(r.load(), 1);
  }
}

TEST(ThreadPool, ZeroCountIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPool, FirstExceptionIsRethrownOnTheCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          if (i % 7 == 3) throw ConfigError("task failed");
                        }),
      ConfigError);
  // The pool survives a throwing batch and runs subsequent work.
  std::atomic<int> count{0};
  pool.parallel_for(16, [&](std::size_t) { count++; });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { inner_total++; });
  });
  EXPECT_EQ(inner_total.load(), 64);
}

TEST(ThreadPool, WorkerIndexIdentifiesPoolThreads) {
  EXPECT_EQ(ThreadPool::worker_index(), -1);
  ThreadPool pool(3);
  pool.parallel_for(64, [&](std::size_t) {
    const int wi = ThreadPool::worker_index();
    // Tasks run on the caller (-1) or on one of the jobs - 1 workers (0, 1).
    ASSERT_GE(wi, -1);
    ASSERT_LT(wi, 2);
  });
  EXPECT_EQ(ThreadPool::worker_index(), -1);  // caller never becomes a worker
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  std::vector<std::int64_t> values(1000);
  std::iota(values.begin(), values.end(), 1);
  const std::int64_t expect =
      std::accumulate(values.begin(), values.end(), std::int64_t{0});
  ThreadPool pool(8);
  std::vector<std::int64_t> out(values.size());
  pool.parallel_for(values.size(),
                    [&](std::size_t i) { out[i] = values[i]; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::int64_t{0}), expect);
}

TEST(ThreadPool, DefaultJobsHonorsFtdlJobsEnv) {
  EXPECT_GE(default_jobs(), 1);
  ::setenv("FTDL_JOBS", "5", 1);
  EXPECT_EQ(default_jobs(), 5);
  ::setenv("FTDL_JOBS", "not-a-number", 1);
  EXPECT_GE(default_jobs(), 1);  // unparseable values fall back
  ::unsetenv("FTDL_JOBS");
  EXPECT_GE(default_jobs(), 1);
}

// ---- TensorArena ----------------------------------------------------------

TEST(TensorArena, OutsideScopeFallsBackToHeap) {
  // With no arena installed, ArenaVec is a plain heap vector: its blocks
  // carry no owner and no arena counters move.
  TensorArena arena;
  {
    ArenaVec<std::int64_t> v(32);
    EXPECT_EQ(v.size(), 32);
    for (std::int64_t i = 0; i < 32; ++i) EXPECT_EQ(v[i], 0);
  }
  const ArenaStats s = arena.stats();
  EXPECT_EQ(s.fallback_allocs, 0);
  EXPECT_EQ(s.reuses, 0);
  EXPECT_EQ(s.bytes_allocated, 0);
}

TEST(TensorArena, BlocksRecycleWithinScope) {
  TensorArena arena;
  TensorArena::Scope scope(arena);
  { ArenaVec<std::int64_t> warm(100); }  // first acquire: heap fallback
  const ArenaStats after_warm = arena.stats();
  EXPECT_EQ(after_warm.fallback_allocs, 1);
  EXPECT_EQ(after_warm.bytes_in_use, 0);  // released back to the pool

  for (int round = 0; round < 5; ++round) {
    ArenaVec<std::int64_t> v(100);  // same size class: pooled reuse
    EXPECT_EQ(v[99], 0) << "pooled blocks must be re-zeroed";
    v[99] = 7;
  }
  const ArenaStats s = arena.stats();
  EXPECT_EQ(s.fallback_allocs, 1) << "steady-state rounds must not allocate";
  EXPECT_EQ(s.reuses, 5);
  EXPECT_EQ(s.bytes_allocated, after_warm.bytes_allocated);
  EXPECT_EQ(s.bytes_in_use, 0);
  EXPECT_GT(s.high_water_bytes, 0);
}

TEST(TensorArena, CopyAssignReusesCapacity) {
  TensorArena arena;
  TensorArena::Scope scope(arena);
  ArenaVec<std::int64_t> dst(64);
  const ArenaStats before = arena.stats();
  ArenaVec<std::int64_t> src(48);
  for (std::int64_t i = 0; i < 48; ++i) src[i] = i;
  dst = src;  // 48 <= capacity(64): block reused in place
  EXPECT_EQ(dst.size(), 48);
  EXPECT_EQ(dst[47], 47);
  EXPECT_EQ(arena.stats().fallback_allocs - before.fallback_allocs, 1)
      << "only src's own block may allocate";
}

TEST(TensorArena, BlocksEscapeScopeAndReturnFromOtherThreads) {
  TensorArena arena;
  ArenaVec<std::int64_t> escaped;
  {
    TensorArena::Scope scope(arena);
    escaped = ArenaVec<std::int64_t>(200);
  }
  // The scope is gone but the block still belongs to the arena.
  EXPECT_EQ(arena.stats().bytes_in_use, arena.stats().bytes_allocated);

  std::thread([v = std::move(escaped)]() mutable {
    v = ArenaVec<std::int64_t>();  // release on a foreign thread
  }).join();
  const ArenaStats s = arena.stats();
  EXPECT_EQ(s.bytes_in_use, 0) << "cross-thread release must reach the pool";

  // And the returned block is reusable from a fresh scope.
  TensorArena::Scope scope(arena);
  ArenaVec<std::int64_t> again(200);
  EXPECT_EQ(arena.stats().reuses, 1);
}

TEST(TensorArena, ScopesNestAndRestore) {
  TensorArena outer, inner;
  TensorArena::Scope outer_scope(outer);
  {
    TensorArena::Scope inner_scope(inner);
    ArenaVec<std::int64_t> v(16);
  }
  EXPECT_EQ(inner.stats().fallback_allocs, 1);
  EXPECT_EQ(outer.stats().fallback_allocs, 0);
  ArenaVec<std::int64_t> v(16);  // back on the outer arena
  EXPECT_EQ(outer.stats().fallback_allocs, 1);
  EXPECT_EQ(inner.stats().fallback_allocs, 1);
}

}  // namespace
}  // namespace ftdl
