// Tests for depthwise-convolution support across the stack: workload
// lowering, adjacency consequences (no D2 split), scheduling, simulation
// bit-exactness, runtime execution and the MobileNet model.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "compiler/adjacency.h"
#include "compiler/codegen.h"
#include "nn/model_zoo.h"
#include "nn/reference.h"
#include "runtime/executor.h"
#include "sim/ftdl_sim.h"

namespace ftdl {
namespace {

using compiler::HwLevel;
using compiler::Objective;
using compiler::Workload;

arch::OverlayConfig small_config() {
  arch::OverlayConfig c;
  c.d1 = 4;
  c.d2 = 2;
  c.d3 = 3;
  return c;
}

TEST(Depthwise, LayerAccounting) {
  const nn::Layer l = nn::make_depthwise("dw", 32, 14, 14, 3, 1, 1);
  EXPECT_EQ(l.out_c, 32);
  EXPECT_EQ(l.out_h(), 14);
  EXPECT_EQ(l.macs(), 32LL * 14 * 14 * 9);
  EXPECT_EQ(l.weight_count(), 32LL * 9);
  EXPECT_EQ(l.conv_ops(), 2 * l.macs());  // CONV class in Table I terms
  EXPECT_TRUE(l.on_overlay());
}

TEST(Depthwise, WorkloadHasNoWeightOnlyLoop) {
  const Workload w =
      Workload::from_layer(nn::make_depthwise("dw", 32, 14, 14, 3, 1, 1));
  EXPECT_EQ(w.kind, compiler::WorkloadKind::DepthwiseConv);
  ASSERT_EQ(w.k(), 5);
  for (int i = 0; i < w.k(); ++i) {
    // No loop is weight-only -> D2 is unusable.
    EXPECT_FALSE(adjacency_allows(w, HwLevel::D2, i)) << w.loops[i].tag;
  }
  // D1 only accepts the kernel reduction loops.
  EXPECT_FALSE(adjacency_allows(w, HwLevel::D1, w.loop_index('N')));
  EXPECT_TRUE(adjacency_allows(w, HwLevel::D1, w.loop_index('R')));
  EXPECT_TRUE(adjacency_allows(w, HwLevel::D1, w.loop_index('S')));
}

TEST(Depthwise, EfficiencyCappedByArchitecture) {
  // On the paper overlay (D2=5, D1=12), a depthwise layer can use neither
  // the D2 columns (no weight-only loop) nor more than kh*kw=9 of the 12
  // cascade slots: efficiency <= (9/12)/5 = 15%.
  const nn::Layer dw = nn::make_depthwise("dw", 256, 14, 14, 3, 1, 1);
  const auto prog = compiler::compile_layer(dw, arch::paper_config(),
                                            Objective::Performance, 20'000);
  EXPECT_LE(prog.perf.hardware_efficiency, 0.15 + 1e-9);
  EXPECT_GT(prog.perf.hardware_efficiency, 0.01);
  EXPECT_EQ(prog.mapping.level_product(HwLevel::D2), 1);
}

TEST(Depthwise, SimMatchesReferenceBitExact) {
  for (auto layer : {nn::make_depthwise("a", 8, 10, 10, 3, 1, 1),
                     nn::make_depthwise("b", 6, 12, 12, 3, 2, 1),
                     nn::make_depthwise("c", 12, 8, 8, 5, 1, 2)}) {
    const arch::OverlayConfig cfg = small_config();
    const auto prog =
        compiler::compile_layer(layer, cfg, Objective::Performance, 6'000);
    Rng rng(layer.in_c);
    nn::Tensor16 input({layer.in_c, layer.in_h, layer.in_w});
    nn::Tensor16 weights({layer.in_c, layer.kh, layer.kw});
    input.fill_random(rng);
    weights.fill_random(rng);
    const sim::SimResult r = sim::simulate_layer(prog, cfg, weights, input);
    EXPECT_EQ(r.output, nn::depthwise_reference(layer, input, weights))
        << layer.name;
  }
}

TEST(Depthwise, RuntimeExecutesSeparableBlock) {
  nn::Network net("separable");
  net.add(nn::make_depthwise("dw", 8, 12, 12, 3, 1, 1));
  net.add(nn::make_conv("pw", 8, 12, 12, 16, 1, 1, 0));
  net.validate_graph();
  const auto ws = runtime::WeightStore::random_for(net, 3);
  Rng rng(5);
  nn::Tensor16 input({8, 12, 12});
  input.fill_random(rng);

  const auto ref = runtime::run_network(net, input, ws, runtime::ExecOptions{});
  runtime::ExecOptions sim_opt;
  sim_opt.path = runtime::OverlayPath::CycleSim;
  sim_opt.config = small_config();
  const auto simd = runtime::run_network(net, input, ws, sim_opt);
  EXPECT_EQ(ref.output, simd.output);
  EXPECT_EQ(ref.output.dims(), (std::vector<int>{16, 12, 12}));
}

TEST(Depthwise, MobileNetModelIsConsistent) {
  const nn::Network net = nn::mobilenet_v1();
  EXPECT_NO_THROW(net.validate_graph());
  const nn::NetworkStats s = net.stats();
  // ~1.1 GOP, ~4.2M params at width 1.0.
  EXPECT_NEAR(double(s.total_ops()), 1.14e9, 0.1e9);
  EXPECT_NEAR(double(s.weight_bytes()) / 1e6, 8.4, 0.6);  // 16-bit
  int dw_layers = 0;
  for (const nn::Layer& l : net.layers()) {
    if (l.kind == nn::LayerKind::Depthwise) ++dw_layers;
  }
  EXPECT_EQ(dw_layers, 13);
}

}  // namespace
}  // namespace ftdl
