// Tests for the prior-work database (Table II normalization) and the
// roofline study tool (Fig. 7).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "arch/overlay_config.h"
#include "baseline/prior_work.h"
#include "roofline/roofline.h"

namespace ftdl {
namespace {

constexpr double kGoogLeNetOps = 3.14e9;  // 2 ops per MAC, 224x224
constexpr double kResNet50Ops = 7.72e9;

TEST(PriorWork, TableHasTenWorksInColumnOrder) {
  const auto& works = baseline::table2_prior_works();
  ASSERT_EQ(works.size(), 10u);
  EXPECT_EQ(works.front().key, "[10]");
  EXPECT_EQ(works.back().key, "[9]");
  for (const auto& w : works) {
    EXPECT_GT(w.dsp_freq_mhz, 0.0);
    EXPECT_GT(w.hardware_efficiency, 0.0);
    EXPECT_LE(w.hardware_efficiency, 1.0);
  }
}

TEST(PriorWork, NormalizationReproducesTable2Fps) {
  const auto& works = baseline::table2_prior_works();
  // Paper Table II GoogLeNet FPS per column at 1200 DSPs.
  const double expected_googlenet[] = {52.0, 55.7, 68.7, 86.1, 73.8,
                                       73.5, 82.3, 81.1, 99.3, 163.3};
  const double expected_resnet[] = {21.2, 22.7, 28.0, 35.0, 30.1,
                                    29.9, 33.5, 33.0, 40.4, 66.5};
  for (std::size_t i = 0; i < works.size(); ++i) {
    EXPECT_NEAR(baseline::normalized_fps(works[i], 1200, kGoogLeNetOps),
                expected_googlenet[i], expected_googlenet[i] * 0.03)
        << works[i].key;
    EXPECT_NEAR(baseline::normalized_fps(works[i], 1200, kResNet50Ops),
                expected_resnet[i], expected_resnet[i] * 0.03)
        << works[i].key;
  }
}

TEST(PriorWork, FtdlPointReproducesPaperFps) {
  // FTDL row: 650 MHz, 81.1% / 74.8% -> 402.6 / 151.2 FPS.
  EXPECT_NEAR(baseline::normalized_fps(650e6, 0.811, 1200, kGoogLeNetOps),
              402.6, 5.0);
  EXPECT_NEAR(baseline::normalized_fps(650e6, 0.748, 1200, kResNet50Ops),
              151.2, 3.0);
}

TEST(Roofline, StudyProducesBothScatters) {
  const nn::Layer layer = nn::make_conv("c", 160, 14, 14, 320, 3, 1, 1);
  const auto study = roofline::run_roofline_study(layer, arch::paper_config(),
                                                  /*top_k=*/50,
                                                  /*max_candidates=*/20'000);
  EXPECT_FALSE(study.performance_points.empty());
  EXPECT_FALSE(study.balance_points.empty());
  EXPECT_NEAR(study.peak_gops, 2.0 * 1200 * 0.65, 1e-6);  // 1560 GOPS

  for (const auto& p : study.performance_points) {
    EXPECT_GT(p.arithmetic_intensity, 0.0);
    EXPECT_GT(p.gops, 0.0);
    EXPECT_LE(p.gops, study.peak_gops * 1.001);
    // Attained perf respects the memory roof too.
    EXPECT_LE(p.gops,
              p.arithmetic_intensity * study.dram_gbps * 1.01 + 1e-6);
  }
}

TEST(Roofline, BalanceSavesWbufAtSlightPerfLoss) {
  // Fig. 7: for a CONV layer whose performance-optimal mappings duplicate
  // weights (GoogLeNet conv2-like), Obj.2 keeps E_WBUF near 1, saving
  // several x of WBUF storage at a modest performance loss.
  const nn::Layer layer = nn::make_conv("c", 64, 56, 56, 192, 3, 1, 1);
  const auto study = roofline::run_roofline_study(layer, arch::paper_config(),
                                                  /*top_k=*/100,
                                                  /*max_candidates=*/50'000);
  ASSERT_FALSE(study.balance_points.empty());
  ASSERT_FALSE(study.performance_points.empty());
  EXPECT_GT(study.balance_points.front().e_wbuf,
            2.0 * study.performance_points.front().e_wbuf);
  EXPECT_GT(study.balance_points.front().e_wbuf, 0.6);
  EXPECT_GT(study.wbuf_savings(), 2.0);
  EXPECT_GT(study.best_gops_balance(), 0.5 * study.best_gops_performance());
}

TEST(Roofline, CsvExport) {
  const nn::Layer layer = nn::make_conv("c", 32, 14, 14, 32, 3, 1, 1);
  const auto study = roofline::run_roofline_study(layer, arch::paper_config(),
                                                  10, 5'000);
  const std::string path =
      roofline::export_csv(study, "roofline_test_tmp.csv");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "objective,arithmetic_intensity,gops,e_wbuf,c_exe,wbuf_words_per_tpe");
  int lines = 0;
  for (std::string l; std::getline(in, l);) ++lines;
  EXPECT_EQ(lines, static_cast<int>(study.performance_points.size() +
                                    study.balance_points.size()));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ftdl
