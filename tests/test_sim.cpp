// Cycle-level simulator tests: functional bit-exactness against the scalar
// reference, timing consistency with the analytical model, and the
// double-buffering stall behaviour. Parameterized sweeps act as
// property-based tests over random layer shapes and mappings.
#include <gtest/gtest.h>

#include "arch/overlay_config.h"
#include "common/rng.h"
#include "nn/reference.h"
#include "sim/ftdl_sim.h"

namespace ftdl::sim {
namespace {

using compiler::Objective;
using compiler::Workload;

/// A small overlay so functional simulation stays fast in tests.
arch::OverlayConfig small_config() {
  arch::OverlayConfig c;
  c.d1 = 4;
  c.d2 = 2;
  c.d3 = 3;
  c.actbuf_words = 128;
  c.wbuf_words = 1024;
  c.psumbuf_words = 2048;
  c.clocks = fpga::ClockPair::from_high(650e6);
  return c;
}

SimResult run_conv(const nn::Layer& layer, const arch::OverlayConfig& cfg,
                   nn::AccTensor* reference_out, Objective obj,
                   std::uint64_t seed = 7) {
  const compiler::LayerProgram prog =
      compiler::compile_layer(layer, cfg, obj, 8'000);
  Rng rng(seed);
  nn::Tensor16 input({layer.in_c, layer.in_h, layer.in_w});
  nn::Tensor16 weights({layer.out_c, layer.in_c, layer.kh, layer.kw});
  input.fill_random(rng);
  weights.fill_random(rng);
  if (reference_out) *reference_out = nn::conv2d_reference(layer, input, weights);
  return simulate_layer(prog, cfg, weights, input);
}

SimResult run_mm(const nn::Layer& layer, const arch::OverlayConfig& cfg,
                 nn::AccTensor* reference_out, std::uint64_t seed = 11) {
  const compiler::LayerProgram prog =
      compiler::compile_layer(layer, cfg, Objective::Performance, 8'000);
  Rng rng(seed);
  nn::Tensor16 act({static_cast<int>(layer.mm_m), static_cast<int>(layer.mm_p)});
  nn::Tensor16 weights(
      {static_cast<int>(layer.mm_n), static_cast<int>(layer.mm_m)});
  act.fill_random(rng);
  weights.fill_random(rng);
  if (reference_out) *reference_out = nn::matmul_reference(layer, act, weights);
  return simulate_layer(prog, cfg, weights, act);
}

TEST(Sim, ConvMatchesReferenceBitExact) {
  const nn::Layer layer = nn::make_conv("c", 8, 10, 10, 12, 3, 1, 1);
  nn::AccTensor ref;
  const SimResult r = run_conv(layer, small_config(), &ref,
                               Objective::Performance);
  EXPECT_EQ(r.output, ref);
  EXPECT_EQ(r.stats.valid_maccs, layer.macs() - /*padding skips*/ 0 -
                                     (layer.macs() - r.stats.valid_maccs));
  EXPECT_GT(r.stats.cycles, 0);
}

TEST(Sim, StridedConvMatchesReference) {
  const nn::Layer layer = nn::make_conv("c", 6, 12, 12, 10, 3, 2, 1);
  nn::AccTensor ref;
  const SimResult r = run_conv(layer, small_config(), &ref,
                               Objective::Performance);
  EXPECT_EQ(r.output, ref);
}

TEST(Sim, NoPaddingConvMatchesReference) {
  const nn::Layer layer = nn::make_conv("c", 5, 9, 9, 7, 3, 1, 0);
  nn::AccTensor ref;
  const SimResult r = run_conv(layer, small_config(), &ref,
                               Objective::Performance);
  EXPECT_EQ(r.output, ref);
}

TEST(Sim, MatMulMatchesReferenceBitExact) {
  const nn::Layer layer = nn::make_matmul("fc", 32, 24, 8);
  nn::AccTensor ref;
  const SimResult r = run_mm(layer, small_config(), &ref);
  EXPECT_EQ(r.output, ref);
}

TEST(Sim, BalanceObjectiveMappingIsAlsoExact) {
  const nn::Layer layer = nn::make_conv("c", 8, 10, 10, 12, 3, 1, 1);
  nn::AccTensor ref;
  const SimResult r = run_conv(layer, small_config(), &ref, Objective::Balance);
  EXPECT_EQ(r.output, ref);
}

TEST(Sim, ValidMaccsEqualTrueMacs) {
  const nn::Layer layer = nn::make_conv("c", 7, 11, 11, 9, 3, 1, 1);
  const SimResult r =
      run_conv(layer, small_config(), nullptr, Objective::Performance);
  // Every true iteration executes exactly once; padded iterations are
  // dropped (conv padding skips are boundary zeros, not workload MACs,
  // so valid_maccs counts only in-bounds input positions).
  EXPECT_LE(r.stats.valid_maccs, layer.macs());
  EXPECT_GE(r.stats.padded_maccs, layer.macs());
}

TEST(Sim, CyclesTrackAnalyticalModelForComputeBound) {
  const nn::Layer layer = nn::make_conv("c", 16, 14, 14, 16, 3, 1, 1);
  const arch::OverlayConfig cfg = small_config();
  const compiler::LayerProgram prog =
      compiler::compile_layer(layer, cfg, Objective::Performance, 8'000);
  Rng rng(3);
  nn::Tensor16 input({16, 14, 14});
  nn::Tensor16 weights({16, 16, 3, 3});
  input.fill_random(rng);
  weights.fill_random(rng);
  const SimResult r = simulate_layer(prog, cfg, weights, input);
  // The simulated schedule can only be slower than the analytical max
  // (per-iteration maxima vs global maxima) but should stay close.
  EXPECT_GE(r.stats.cycles, prog.perf.c_exe * 95 / 100);
  EXPECT_LE(r.stats.cycles, prog.perf.c_exe * 135 / 100 +
                                2 * cfg.pipeline_latency() * prog.perf.x);
}

TEST(Sim, TraceRecordsAllTraffic) {
  const nn::Layer layer = nn::make_conv("c", 8, 10, 10, 8, 3, 1, 1);
  const SimResult r =
      run_conv(layer, small_config(), nullptr, Objective::Performance);
  EXPECT_FALSE(r.trace.events.empty());
  EXPECT_GT(r.trace.read_bytes(), 0u);
  EXPECT_GT(r.trace.write_bytes(), 0u);
  EXPECT_EQ(r.trace.total_cycles, static_cast<std::uint64_t>(r.stats.cycles));
  // Refill/drain counts match the mapping's loop structure.
  const compiler::LayerProgram prog = compiler::compile_layer(
      layer, small_config(), Objective::Performance, 8'000);
  EXPECT_EQ(r.stats.act_refills, prog.perf.x * prog.perf.l);
  EXPECT_EQ(r.stats.psum_drains, prog.perf.x);
}

TEST(Sim, LayoutMismatchThrows) {
  const nn::Layer layer = nn::make_conv("c", 8, 10, 10, 8, 3, 1, 1);
  const arch::OverlayConfig cfg = small_config();
  const compiler::LayerProgram prog =
      compiler::compile_layer(layer, cfg, Objective::Performance, 4'000);
  nn::Tensor16 bad_input({4, 10, 10});
  nn::Tensor16 weights({8, 8, 3, 3});
  EXPECT_THROW(simulate_layer(prog, cfg, weights, bad_input), ConfigError);
}

TEST(Sim, OversizedIterationSpaceRejected) {
  const nn::Layer layer = nn::make_conv("c", 8, 10, 10, 8, 3, 1, 1);
  const arch::OverlayConfig cfg = small_config();
  const compiler::LayerProgram prog =
      compiler::compile_layer(layer, cfg, Objective::Performance, 4'000);
  Rng rng(5);
  nn::Tensor16 input({8, 10, 10});
  nn::Tensor16 weights({8, 8, 3, 3});
  input.fill_random(rng);
  weights.fill_random(rng);
  SimOptions opt;
  opt.max_padded_macs = 10;  // absurdly small
  EXPECT_THROW(simulate_layer(prog, cfg, weights, input, opt), Error);
}

TEST(Sim, BufferFootprintsWithinModelBounds) {
  // check_buffers measures the true unique-word footprints; every one must
  // be bounded by the analytical model's buffer-sizing prediction — this is
  // the executable proof that the halo-aware ActBUF formula, the psum-tile
  // formula and the WBUF-tile formula are upper bounds of reality.
  for (auto layer : {nn::make_conv("c1", 8, 12, 12, 12, 3, 1, 1),
                     nn::make_conv("c2", 6, 10, 10, 8, 5, 2, 2),
                     nn::make_conv("c3", 16, 7, 7, 8, 1, 1, 0)}) {
    const arch::OverlayConfig cfg = small_config();
    const compiler::LayerProgram prog = compiler::compile_layer(
        layer, cfg, Objective::Performance, 6'000);
    Rng rng(31);
    nn::Tensor16 input({layer.in_c, layer.in_h, layer.in_w});
    nn::Tensor16 weights({layer.out_c, layer.in_c, layer.kh, layer.kw});
    input.fill_random(rng);
    weights.fill_random(rng);
    SimOptions opt;
    opt.check_buffers = true;
    const SimResult r = simulate_layer(prog, cfg, weights, input, opt);

    EXPECT_GT(r.stats.max_act_words_per_tpe, 0) << layer.name;
    EXPECT_LE(r.stats.max_act_words_per_tpe,
              prog.perf.buffers.actbuf_words_per_tpe)
        << layer.name;
    EXPECT_LE(r.stats.max_psum_words_per_sb,
              prog.perf.buffers.psum_words_per_superblock)
        << layer.name;
    EXPECT_LE(r.stats.max_wbuf_words_per_tpe,
              prog.perf.buffers.wbuf_words_per_tpe)
        << layer.name;
  }
}

TEST(Sim, BufferFootprintsMatMul) {
  const nn::Layer layer = nn::make_matmul("fc", 48, 20, 6);
  const arch::OverlayConfig cfg = small_config();
  const compiler::LayerProgram prog = compiler::compile_layer(
      layer, cfg, Objective::Performance, 6'000);
  Rng rng(33);
  nn::Tensor16 act({48, 6});
  nn::Tensor16 weights({20, 48});
  act.fill_random(rng);
  weights.fill_random(rng);
  SimOptions opt;
  opt.check_buffers = true;
  const SimResult r = simulate_layer(prog, cfg, weights, act, opt);
  EXPECT_LE(r.stats.max_act_words_per_tpe,
            prog.perf.buffers.actbuf_words_per_tpe);
  EXPECT_LE(r.stats.max_psum_words_per_sb,
            prog.perf.buffers.psum_words_per_superblock);
  EXPECT_LE(r.stats.max_wbuf_words_per_tpe,
            prog.perf.buffers.wbuf_words_per_tpe);
}

// ---- property sweep: random shapes, both kinds, bit-exactness --------------

struct SweepParam {
  int in_c, hw, out_c, k, stride, pad;
};

class ConvSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ConvSweep, SimEqualsReference) {
  const SweepParam p = GetParam();
  const nn::Layer layer =
      nn::make_conv("sweep", p.in_c, p.hw, p.hw, p.out_c, p.k, p.stride, p.pad);
  nn::AccTensor ref;
  const SimResult r = run_conv(layer, small_config(), &ref,
                               Objective::Performance,
                               /*seed=*/p.in_c * 131 + p.out_c);
  EXPECT_EQ(r.output, ref);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvSweep,
    ::testing::Values(SweepParam{3, 8, 4, 3, 1, 1},   // tiny
                      SweepParam{4, 16, 8, 5, 1, 2},  // 5x5 kernel
                      SweepParam{8, 12, 16, 3, 2, 1}, // strided
                      SweepParam{16, 7, 8, 1, 1, 0},  // pointwise
                      SweepParam{5, 10, 11, 3, 1, 0}, // prime-ish extents
                      SweepParam{12, 6, 20, 3, 1, 1},
                      SweepParam{2, 20, 3, 7, 2, 3},  // large kernel, stride
                      SweepParam{9, 9, 9, 3, 3, 0})); // stride 3

class MmSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MmSweep, SimEqualsReference) {
  const auto [m, n, p] = GetParam();
  const nn::Layer layer = nn::make_matmul("sweep", m, n, p);
  nn::AccTensor ref;
  const SimResult r = run_mm(layer, small_config(), &ref,
                             /*seed=*/std::uint64_t(m * 7 + n * 3 + p));
  EXPECT_EQ(r.output, ref);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MmSweep,
                         ::testing::Values(std::tuple{16, 16, 16},
                                           std::tuple{64, 10, 4},
                                           std::tuple{7, 13, 5},
                                           std::tuple{128, 3, 2},
                                           std::tuple{1, 32, 9},
                                           std::tuple{33, 1, 17}));

}  // namespace
}  // namespace ftdl::sim
