// Network-level scheduling sweeps across the whole model zoo, plus
// objective-comparison and timing-report checks that exercise the
// framework the way the benches do (at small budgets).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "arch/overlay_config.h"
#include "common/error.h"
#include "compiler/scheduler.h"
#include "fpga/device_zoo.h"
#include "nn/model_zoo.h"
#include "timing/timing_report.h"

namespace ftdl {
namespace {

using arch::paper_config;
using compiler::Objective;
using compiler::schedule_network;

class ZooScheduling : public ::testing::TestWithParam<const char*> {};

TEST_P(ZooScheduling, EveryModelSchedulesWithSaneNumbers) {
  const nn::Network net = nn::model_by_name(GetParam());
  const auto sched = schedule_network(net, paper_config(),
                                      Objective::Performance, 6'000);
  EXPECT_EQ(sched.layers.size(), net.overlay_layers().size());
  EXPECT_GT(sched.total_cycles, 0);
  EXPECT_GT(sched.hardware_efficiency, 0.01) << GetParam();
  EXPECT_LE(sched.hardware_efficiency, 1.0) << GetParam();
  EXPECT_GT(sched.mean_e_wbuf, 0.0);
  EXPECT_LE(sched.mean_e_wbuf, 1.0 + 1e-9);
  EXPECT_GT(sched.fps(), 0.0);
  // Per-layer invariants.
  std::int64_t macs = 0;
  for (const auto& lp : sched.layers) {
    EXPECT_TRUE(lp.perf.feasible) << lp.layer.name;
    EXPECT_GE(lp.weight_groups, 1);
    macs += lp.layer.macs() * lp.layer.repeat;
  }
  EXPECT_EQ(macs, sched.overlay_macs);
}

INSTANTIATE_TEST_SUITE_P(Models, ZooScheduling,
                         ::testing::Values("GoogLeNet", "ResNet50",
                                           "AlphaGoZero", "Sentimental-seqCNN",
                                           "Sentimental-seqLSTM",
                                           "MobileNetV1"));

TEST(SchedulerZoo, BalanceObjectiveImprovesEwbufOnGoogLeNet) {
  const nn::Network net = nn::googlenet();
  const auto perf = schedule_network(net, paper_config(),
                                     Objective::Performance, 8'000);
  const auto bal = schedule_network(net, paper_config(),
                                    Objective::Balance, 8'000);
  EXPECT_GT(bal.mean_e_wbuf, perf.mean_e_wbuf);
  // Eqn. 13 weighs E_WBUF equally with normalized speed, so layers whose
  // duplication-free mappings are slow (conv1: N=3) may trade a LOT of
  // speed for residency — the trade is real but must stay finite.
  EXPECT_GT(bal.fps(), 0.03 * perf.fps());
}

TEST(SchedulerZoo, MobileNetEfficiencyFarBelowGoogLeNet) {
  // The depthwise architecture-limit, at network level.
  const auto mb = schedule_network(nn::mobilenet_v1(), paper_config(),
                                   Objective::Performance, 6'000);
  const auto gn = schedule_network(nn::googlenet(), paper_config(),
                                   Objective::Performance, 6'000);
  EXPECT_LT(mb.hardware_efficiency, 0.6 * gn.hardware_efficiency);
}

TEST(SchedulerZoo, SeqLstmPaysTheBatchOnePenalty) {
  const auto sched = schedule_network(nn::sentimental_seqlstm(),
                                      paper_config(),
                                      Objective::Performance, 6'000);
  // Gate matrices at P=1 cannot reach 2-way weight reuse: <= ~50%.
  EXPECT_LT(sched.hardware_efficiency, 0.55);
  for (const auto& lp : sched.layers) {
    if (lp.layer.mm_p == 1) {
      EXPECT_FALSE(lp.perf.weight_reuse_ok);
    }
  }
}

TEST(SchedulerZoo, TimingReportRendersForPaperConfig) {
  timing::OverlayGeometry g;
  g.d1 = 12;
  g.d2 = 5;
  g.d3 = 20;
  const std::string report = timing::render_timing_report(
      fpga::ultrascale_vu125(), g, fpga::ClockPair::from_high(650e6));
  EXPECT_NE(report.find("Timing MET"), std::string::npos);
  EXPECT_NE(report.find("dsp-internal"), std::string::npos);
  EXPECT_NE(report.find("CLKl"), std::string::npos);
  EXPECT_EQ(report.find("VIOLATED"), std::string::npos);

  // An overclocked target must be flagged, not hidden.
  const std::string bad = timing::render_timing_report(
      fpga::ultrascale_vu125(), g, fpga::ClockPair::from_high(760e6));
  EXPECT_NE(bad.find("VIOLATED"), std::string::npos);
  EXPECT_NE(bad.find("NOT MET"), std::string::npos);
}

TEST(SchedulerZoo, ChargedReloadLowersFpsOnResNet) {
  arch::OverlayConfig charged = paper_config();
  charged.charge_weight_reload = true;
  const auto free_sched = schedule_network(nn::resnet50(), paper_config(),
                                           Objective::Performance, 6'000);
  const auto paid = schedule_network(nn::resnet50(), charged,
                                     Objective::Performance, 6'000);
  EXPECT_LT(paid.fps(), free_sched.fps());
}

TEST(SchedulerZoo, ScheduleCsvExport) {
  nn::Network net("csvnet");
  net.add(nn::make_conv("c1", 16, 14, 14, 16, 3, 1, 1));
  net.add(nn::make_matmul("fc", 16 * 14 * 14, 10, 1));
  const auto sched = schedule_network(net, paper_config(),
                                      Objective::Performance, 4'000);
  const std::string path =
      compiler::schedule_to_csv(sched, "schedule_test_tmp.csv");
  std::ifstream in(path);
  std::string header, l1, l2;
  std::getline(in, header);
  std::getline(in, l1);
  std::getline(in, l2);
  EXPECT_NE(header.find("e_wbuf"), std::string::npos);
  EXPECT_NE(l1.find("c1"), std::string::npos);
  EXPECT_NE(l2.find("fc"), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace ftdl
