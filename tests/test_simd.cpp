// SIMD kernel unit tests: the vector dot/axpy paths must be bit-identical
// to the scalar oracles for every width and every int16 value — including
// the (-32768)*(-32768) corner that overflows pairwise multiply-add
// instructions. Widths sweep 0..2*lanes+3 so every tail length of the
// widest implementation (16 int16 lanes on AVX2) is hit on both sides of
// the kInlineCutoff inline/dispatch boundary.
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/simd.h"

namespace ftdl::simd {
namespace {

std::vector<std::int16_t> random_i16(std::int64_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dist(-32768, 32767);
  std::vector<std::int16_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = static_cast<std::int16_t>(dist(rng));
  return v;
}

TEST(Simd, IsaReportIsConsistent) {
  const std::string isa = isa_name();
  EXPECT_TRUE(isa == "avx2" || isa == "neon" || isa == "scalar") << isa;
  if (active()) {
    EXPECT_NE(isa, "scalar");
    EXPECT_GT(lanes(), 1);
  } else {
    EXPECT_EQ(isa, "scalar");
    EXPECT_EQ(lanes(), 1);
  }
}

TEST(Simd, DotMatchesScalarAcrossWidths) {
  const std::int64_t max_n = 2 * std::int64_t{16} + 3;  // past any tail
  for (std::int64_t n = 0; n <= max_n; ++n) {
    const auto w = random_i16(n, 11 + static_cast<std::uint64_t>(n));
    const auto in = random_i16(n, 97 + static_cast<std::uint64_t>(n));
    EXPECT_EQ(dot_i16(w.data(), in.data(), n),
              dot_i16_scalar(w.data(), in.data(), n))
        << "width " << n;
  }
}

TEST(Simd, AxpyMatchesScalarAcrossWidths) {
  const std::int64_t max_n = 2 * std::int64_t{16} + 3;
  for (std::int64_t n = 0; n <= max_n; ++n) {
    const auto in = random_i16(n, 3 + static_cast<std::uint64_t>(n));
    for (std::int16_t w : {std::int16_t{-32768}, std::int16_t{-1},
                           std::int16_t{0}, std::int16_t{7},
                           std::int16_t{32767}}) {
      std::vector<acc_t> fast(static_cast<std::size_t>(n), 5);
      std::vector<acc_t> ref(static_cast<std::size_t>(n), 5);
      axpy_i16(fast.data(), in.data(), w, n);
      axpy_i16_scalar(ref.data(), in.data(), w, n);
      EXPECT_EQ(fast, ref) << "width " << n << " w " << w;
    }
  }
}

TEST(Simd, ExtremeValuesAreExact) {
  // All-(-32768) vectors: each product is 2^30; a 33-wide dot needs more
  // than 35 bits, and pairwise-madd-style instructions would saturate.
  const std::int64_t n = 33;
  std::vector<std::int16_t> lo(static_cast<std::size_t>(n), -32768);
  std::vector<std::int16_t> hi(static_cast<std::size_t>(n), 32767);
  EXPECT_EQ(dot_i16(lo.data(), lo.data(), n),
            n * (acc_t{1} << 30));
  EXPECT_EQ(dot_i16(lo.data(), hi.data(), n),
            n * (acc_t{-32768} * acc_t{32767}));
  EXPECT_EQ(dot_i16(hi.data(), hi.data(), n),
            n * (acc_t{32767} * acc_t{32767}));

  std::vector<acc_t> fast(static_cast<std::size_t>(n), 0);
  std::vector<acc_t> ref(static_cast<std::size_t>(n), 0);
  axpy_i16(fast.data(), lo.data(), std::int16_t{-32768}, n);
  axpy_i16_scalar(ref.data(), lo.data(), std::int16_t{-32768}, n);
  EXPECT_EQ(fast, ref);
  EXPECT_EQ(fast[0], acc_t{1} << 30);
}

TEST(Simd, SetEnabledForcesScalarAndRestores) {
  const bool was_active = active();
  set_enabled(false);
  EXPECT_FALSE(active());
  EXPECT_STREQ(isa_name(), "scalar");
  EXPECT_EQ(lanes(), 1);

  // Disabled dispatch still computes the oracle result.
  const auto w = random_i16(40, 123);
  const auto in = random_i16(40, 321);
  EXPECT_EQ(dot_i16(w.data(), in.data(), 40),
            dot_i16_scalar(w.data(), in.data(), 40));

  set_enabled(true);
  // Re-enabling restores the vector path only where one exists.
  EXPECT_EQ(active(), was_active);
  EXPECT_EQ(dot_i16(w.data(), in.data(), 40),
            dot_i16_scalar(w.data(), in.data(), 40));
}

TEST(Simd, LongRandomSweepsMatch) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const std::int64_t n = 64 + static_cast<std::int64_t>(seed) * 37;
    const auto w = random_i16(n, seed * 2 + 1);
    const auto in = random_i16(n, seed * 2 + 2);
    EXPECT_EQ(dot_i16(w.data(), in.data(), n),
              dot_i16_scalar(w.data(), in.data(), n))
        << "seed " << seed;

    std::vector<acc_t> fast(static_cast<std::size_t>(n), -7);
    std::vector<acc_t> ref(static_cast<std::size_t>(n), -7);
    axpy_i16(fast.data(), in.data(), w[0], n);
    axpy_i16_scalar(ref.data(), in.data(), w[0], n);
    EXPECT_EQ(fast, ref) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ftdl::simd
