// Tests for layers, networks, the model zoo (Table I numbers) and the
// reference executor.
#include <gtest/gtest.h>

#include "common/error.h"
#include "nn/model_zoo.h"
#include "nn/reference.h"

namespace ftdl::nn {
namespace {

TEST(Layer, ConvGeometry) {
  const Layer l = make_conv("c", 3, 224, 224, 64, 7, 2, 3);
  EXPECT_EQ(l.out_h(), 112);
  EXPECT_EQ(l.out_w(), 112);
  EXPECT_EQ(l.weight_count(), 64LL * 3 * 7 * 7);
  EXPECT_EQ(l.macs(), 64LL * 112 * 112 * 3 * 7 * 7);
  EXPECT_EQ(l.conv_ops(), 2 * l.macs());
  EXPECT_EQ(l.mm_ops(), 0);
  // Fused ReLU contributes one EWOP per output element.
  EXPECT_EQ(l.ewop_ops(), 64LL * 112 * 112);
}

TEST(Layer, MatMulAccounting) {
  const Layer l = make_matmul("fc", 1024, 1000, 1);
  EXPECT_EQ(l.macs(), 1024LL * 1000);
  EXPECT_EQ(l.weight_count(), 1024LL * 1000);
  EXPECT_EQ(l.mm_ops(), 2LL * 1024 * 1000);
  EXPECT_EQ(l.conv_ops(), 0);
}

TEST(Layer, RepeatScalesOpsNotWeights) {
  const Layer l = make_matmul("lstm", 2048, 4096, 1, false, 30);
  EXPECT_EQ(l.mm_ops(), 30 * 2LL * 2048 * 4096);
  EXPECT_EQ(l.weight_count(), 2048LL * 4096);  // weights shared across steps
}

TEST(Layer, PoolCountsEwop) {
  const Layer l = make_pool("p", 64, 112, 112, 3, 2, 1);
  EXPECT_EQ(l.out_h(), 56);
  EXPECT_EQ(l.ewop_ops(), 64LL * 56 * 56);  // one op per pooled output
  EXPECT_EQ(l.weight_count(), 0);
  EXPECT_FALSE(l.on_overlay());
}

TEST(Layer, FactoryValidation) {
  EXPECT_THROW(make_conv("bad", 0, 10, 10, 8, 3, 1, 1), ConfigError);
  EXPECT_THROW(make_conv("bad", 3, 2, 2, 8, 5, 1, 0), ConfigError);  // no fit
  EXPECT_THROW(make_matmul("bad", 0, 10, 1), ConfigError);
  EXPECT_THROW(make_ewop("bad", -1), ConfigError);
}

// ---- Table I: model statistics --------------------------------------------

TEST(ModelZoo, GoogLeNetMatchesTable1) {
  const NetworkStats s = googlenet().stats();
  // ~3.14 GOP total; the paper's row: 99.73% CONV / 0.07% MM / 0.20% EWOP,
  // 13.7 MB of 16-bit weights.
  EXPECT_NEAR(double(s.total_ops()), 3.14e9, 0.1e9);
  EXPECT_NEAR(s.conv_fraction(), 0.9973, 0.002);
  EXPECT_NEAR(s.mm_fraction(), 0.0007, 0.0004);
  EXPECT_NEAR(s.ewop_fraction(), 0.0020, 0.002);
  EXPECT_NEAR(double(s.weight_bytes()) / 1e6, 13.7, 0.7);
}

TEST(ModelZoo, ResNet50MatchesTable1) {
  const NetworkStats s = resnet50().stats();
  EXPECT_NEAR(double(s.total_ops()), 7.72e9, 0.2e9);
  EXPECT_NEAR(s.conv_fraction(), 0.9967, 0.002);
  EXPECT_NEAR(s.mm_fraction(), 0.0005, 0.0004);
  EXPECT_NEAR(s.ewop_fraction(), 0.0027, 0.002);
  EXPECT_NEAR(double(s.weight_bytes()) / 1e6, 51.0, 3.0);
}

TEST(ModelZoo, AlphaGoZeroMatchesWeightBudget) {
  const NetworkStats s = alphago_zero().stats();
  EXPECT_NEAR(double(s.weight_bytes()) / 1e6, 2.08, 0.15);
  EXPECT_GT(s.conv_fraction(), 0.99);
  EXPECT_LT(s.mm_fraction(), 0.003);
}

TEST(ModelZoo, SeqCnnMatchesTable1) {
  const NetworkStats s = sentimental_seqcnn().stats();
  EXPECT_NEAR(double(s.weight_bytes()) / 1e3, 345.06, 5.0);
  EXPECT_NEAR(s.conv_fraction(), 0.8986, 0.01);
  EXPECT_NEAR(s.mm_fraction(), 0.0015, 0.0005);
  EXPECT_NEAR(s.ewop_fraction(), 0.0999, 0.01);
}

TEST(ModelZoo, SeqLstmMatchesTable1) {
  const NetworkStats s = sentimental_seqlstm().stats();
  EXPECT_NEAR(double(s.weight_bytes()) / 1e6, 39.9, 1.0);
  EXPECT_EQ(s.conv_ops, 0);
  EXPECT_NEAR(s.mm_fraction(), 0.9989, 0.001);
  EXPECT_NEAR(s.ewop_fraction(), 0.0011, 0.001);
}

TEST(ModelZoo, AllModelsEnumerable) {
  const auto models = mlperf_models();
  ASSERT_EQ(models.size(), 5u);
  EXPECT_EQ(models[0].name(), "GoogLeNet");
  EXPECT_NO_THROW(model_by_name("ResNet50"));
  EXPECT_THROW(model_by_name("VGG16"), ConfigError);
}

TEST(ModelZoo, OverlayLayersAreOnlyConvAndMm) {
  for (const Network& net : mlperf_models()) {
    for (const Layer& l : net.overlay_layers()) {
      EXPECT_TRUE(l.kind == LayerKind::Conv || l.kind == LayerKind::MatMul);
    }
    EXPECT_FALSE(net.overlay_layers().empty()) << net.name();
  }
}

// ---- reference executor ----------------------------------------------------

TEST(Reference, Conv1x1IsChannelMix) {
  const Layer l = make_conv("c", 2, 2, 2, 1, 1, 1, 0);
  Tensor16 in({2, 2, 2});
  in.at(0, 0, 0) = 1; in.at(0, 0, 1) = 2; in.at(0, 1, 0) = 3; in.at(0, 1, 1) = 4;
  in.at(1, 0, 0) = 5; in.at(1, 0, 1) = 6; in.at(1, 1, 0) = 7; in.at(1, 1, 1) = 8;
  Tensor16 w({1, 2, 1, 1});
  w.at(0, 0, 0, 0) = 10;
  w.at(0, 1, 0, 0) = -1;
  const AccTensor out = conv2d_reference(l, in, w);
  EXPECT_EQ(out.at(0, 0, 0), 10 * 1 - 5);
  EXPECT_EQ(out.at(0, 1, 1), 10 * 4 - 8);
}

TEST(Reference, ConvPaddingContributesZeros) {
  const Layer l = make_conv("c", 1, 2, 2, 1, 3, 1, 1);
  Tensor16 in({1, 2, 2});
  in.at(0, 0, 0) = 1; in.at(0, 0, 1) = 1; in.at(0, 1, 0) = 1; in.at(0, 1, 1) = 1;
  Tensor16 w({1, 1, 3, 3});
  for (int r = 0; r < 3; ++r)
    for (int s = 0; s < 3; ++s) w.at(0, 0, r, s) = 1;
  const AccTensor out = conv2d_reference(l, in, w);
  // Corner output sees 4 valid inputs, all ones.
  EXPECT_EQ(out.at(0, 0, 0), 4);
}

TEST(Reference, MatMulMatchesManual) {
  const Layer l = make_matmul("fc", 3, 2, 2);
  Tensor16 w({2, 3});  // W[N][M]
  Tensor16 a({3, 2});  // act[M][P]
  int v = 1;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 3; ++j) w.at(i, j) = static_cast<std::int16_t>(v++);
  v = 1;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 2; ++j) a.at(i, j) = static_cast<std::int16_t>(v++);
  const AccTensor out = matmul_reference(l, a, w);
  // out[0][0] = 1*1 + 2*3 + 3*5 = 22 ; out[1][1] = 4*2+5*4+6*6 = 64
  EXPECT_EQ(out.at(0, 0), 22);
  EXPECT_EQ(out.at(1, 1), 64);
}

TEST(Reference, RequantizeAppliesShiftAndRelu) {
  Layer l = make_conv("c", 1, 1, 1, 1, 1, 1, 0, /*relu=*/true);
  AccTensor acc({1, 1, 1});
  acc.at(0, 0, 0) = -4096;
  const Tensor16 q_relu = requantize_output(l, acc, 8);
  EXPECT_EQ(q_relu.at(0, 0, 0), 0);  // negative clipped by ReLU
  l.relu = false;
  const Tensor16 q = requantize_output(l, acc, 8);
  EXPECT_EQ(q.at(0, 0, 0), -16);
}

TEST(Reference, MaxAndAvgPool) {
  const Layer l = make_pool("p", 1, 2, 2, 2, 2);
  Tensor16 in({1, 2, 2});
  in.at(0, 0, 0) = 1; in.at(0, 0, 1) = 8; in.at(0, 1, 0) = -3; in.at(0, 1, 1) = 2;
  EXPECT_EQ(maxpool_reference(l, in).at(0, 0, 0), 8);
  EXPECT_EQ(avgpool_reference(l, in).at(0, 0, 0), 2);  // (1+8-3+2)/4
}

TEST(Tensor, RandomFillDeterministicAndBounded) {
  Rng r1(9), r2(9);
  Tensor16 a({4, 4}), b({4, 4});
  a.fill_random(r1);
  b.fill_random(r2);
  EXPECT_EQ(a, b);
  for (std::int64_t i = 0; i < a.size(); ++i) {
    EXPECT_LE(std::abs(a[i]), 7);
  }
}

}  // namespace
}  // namespace ftdl::nn
