// Tests for structured channel pruning.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "nn/model_zoo.h"
#include "prune/channel_prune.h"
#include "runtime/executor.h"

namespace ftdl::prune {
namespace {

nn::Network chain() {
  nn::Network net("chain");
  net.add(nn::make_conv("c1", 8, 16, 16, 32, 3, 1, 1));
  net.add(nn::make_conv("c2", 32, 16, 16, 64, 3, 1, 1));
  net.add(nn::make_pool("p", 64, 16, 16, 2, 2));
  net.add(nn::make_matmul("fc", 64 * 8 * 8, 10, 1));
  net.validate_graph();
  return net;
}

TEST(Prune, HalfKeepPropagatesThroughChain) {
  PruneSpec spec;
  spec.conv_keep_ratio = 0.5;
  PruneReport rep;
  const nn::Network pruned = prune_channels(chain(), spec, &rep);

  const auto& ls = pruned.layers();
  EXPECT_EQ(ls[0].out_c, 16);
  EXPECT_EQ(ls[1].in_c, 16);   // consumer narrowed
  EXPECT_EQ(ls[1].out_c, 32);
  EXPECT_EQ(ls[2].in_c, 32);   // pool passes channels through
  EXPECT_EQ(ls[3].mm_m, 32LL * 8 * 8);  // fc flatten re-derived
  EXPECT_EQ(rep.layers_pruned, 2);
  // c1 MACs: out and in both ~halved elsewhere; total ~ 1/4 on c2.
  EXPECT_LT(rep.macs_after, rep.macs_before / 2);
  EXPECT_GT(rep.mac_reduction(), 0.5);
}

TEST(Prune, RoundsToChannelMultiple) {
  PruneSpec spec;
  spec.conv_keep_ratio = 0.4;  // 32 * 0.4 = 12.8 -> 13 -> round to 16
  spec.channel_multiple = 8;
  const nn::Network pruned = prune_channels(chain(), spec, nullptr);
  EXPECT_EQ(pruned.layers()[0].out_c, 16);
  EXPECT_EQ(pruned.layers()[0].out_c % 8, 0);
}

TEST(Prune, KeepRatioOneIsIdentity) {
  PruneSpec spec;
  PruneReport rep;
  const nn::Network pruned = prune_channels(chain(), spec, &rep);
  EXPECT_EQ(rep.macs_before, rep.macs_after);
  EXPECT_EQ(rep.layers_pruned, 0);
  for (std::size_t i = 0; i < pruned.layers().size(); ++i) {
    EXPECT_EQ(pruned.layers()[i].macs(), chain().layers()[i].macs());
  }
}

TEST(Prune, OverridesApplyPerLayer) {
  PruneSpec spec;
  spec.overrides["c1"] = 0.25;
  spec.channel_multiple = 1;
  const nn::Network pruned = prune_channels(chain(), spec, nullptr);
  EXPECT_EQ(pruned.layers()[0].out_c, 8);
  EXPECT_EQ(pruned.layers()[1].out_c, 64);  // default ratio 1.0
}

TEST(Prune, ResidualProducersAreProtected) {
  nn::Network net("res");
  net.add(nn::make_conv("stem", 3, 8, 8, 16, 3, 1, 1));
  net.add(nn::with_inputs(nn::make_conv("c1", 16, 8, 8, 16, 3, 1, 1), {"stem"}));
  net.add(nn::make_conv("c2", 16, 8, 8, 16, 3, 1, 1, false));
  net.add(nn::make_add_relu("add", 16 * 8 * 8, {"c2", "stem"}));
  net.validate_graph();

  PruneSpec spec;
  spec.conv_keep_ratio = 0.5;
  PruneReport rep;
  const nn::Network pruned = prune_channels(net, spec, &rep);
  // stem and c2 feed the residual add: both keep 16 channels.
  EXPECT_EQ(pruned.layers()[0].out_c, 16);
  EXPECT_EQ(pruned.layers()[2].out_c, 16);
  // c1 (inside the block) is prunable.
  EXPECT_EQ(pruned.layers()[1].out_c, 8);
  EXPECT_GE(rep.layers_protected, 2);
  EXPECT_NO_THROW(pruned.validate_graph());
}

TEST(Prune, InceptionConcatWidthsRecomputed) {
  PruneSpec spec;
  spec.conv_keep_ratio = 0.5;
  const nn::Network pruned = prune_channels(nn::googlenet(), spec, nullptr);
  EXPECT_NO_THROW(pruned.validate_graph());
  // The classifier input shrank along with inception_5b's concat width.
  const nn::Layer& fc = pruned.layers().back();
  EXPECT_LT(fc.mm_m, 1024);
  // Overall MACs roughly quartered (both in and out channels halved).
  EXPECT_LT(double(pruned.stats().total_ops()),
            0.45 * double(nn::googlenet().stats().total_ops()));
}

TEST(Prune, PrunedNetworkExecutesFunctionally) {
  PruneSpec spec;
  spec.conv_keep_ratio = 0.5;
  const nn::Network pruned = prune_channels(chain(), spec, nullptr);
  const auto ws = runtime::WeightStore::random_for(pruned, 3);
  Rng rng(1);
  nn::Tensor16 input({8, 16, 16});
  input.fill_random(rng);
  const auto r = runtime::run_network(pruned, input, ws, runtime::ExecOptions{});
  EXPECT_EQ(r.output.dims(), (std::vector<int>{10, 1}));
}

TEST(Prune, DepthwiseFollowsItsProducer) {
  nn::Network net("sep");
  net.add(nn::make_conv("pw0", 8, 16, 16, 32, 1, 1, 0));
  net.add(nn::make_depthwise("dw", 32, 16, 16, 3, 1, 1));
  net.add(nn::make_conv("pw1", 32, 16, 16, 64, 1, 1, 0));
  net.validate_graph();

  PruneSpec spec;
  spec.conv_keep_ratio = 0.5;
  const nn::Network pruned = prune_channels(net, spec, nullptr);
  EXPECT_EQ(pruned.layers()[0].out_c, 16);
  // The depthwise layer inherits the pruned width on both sides.
  EXPECT_EQ(pruned.layers()[1].in_c, 16);
  EXPECT_EQ(pruned.layers()[1].out_c, 16);
  EXPECT_EQ(pruned.layers()[2].in_c, 16);
  EXPECT_NO_THROW(pruned.validate_graph());
}

TEST(Prune, MobileNetPrunesEndToEnd) {
  PruneSpec spec;
  spec.conv_keep_ratio = 0.5;
  PruneReport rep;
  const nn::Network pruned =
      prune_channels(nn::mobilenet_v1(), spec, &rep);
  EXPECT_NO_THROW(pruned.validate_graph());
  EXPECT_GT(rep.mac_reduction(), 0.4);
}

TEST(Prune, InvalidSpecsThrow) {
  PruneSpec bad;
  bad.conv_keep_ratio = 0.0;
  EXPECT_THROW(prune_channels(chain(), bad, nullptr), ConfigError);
  bad.conv_keep_ratio = 1.5;
  EXPECT_THROW(prune_channels(chain(), bad, nullptr), ConfigError);
  PruneSpec unknown;
  unknown.overrides["ghost"] = 0.5;
  EXPECT_THROW(prune_channels(chain(), unknown, nullptr), ConfigError);
}

}  // namespace
}  // namespace ftdl::prune
