// Tests for the host EWOP kernels (fixed-point nonlinearities, saturating
// ops, LSTM cell update) and the host pipeline model.
#include <gtest/gtest.h>

#include <cmath>

#include "arch/overlay_config.h"
#include "compiler/scheduler.h"
#include "host/ewop_kernels.h"
#include "host/host_pipeline.h"
#include "nn/model_zoo.h"
#include "obs/obs.h"

namespace ftdl::host {
namespace {

std::int16_t to_q412(double x) {
  return static_cast<std::int16_t>(std::lround(x * 4096.0));
}
double from_q114(std::int16_t v) { return double(v) / 16384.0; }

TEST(EwopKernels, SatAdd) {
  EXPECT_EQ(sat_add(100, 200), 300);
  EXPECT_EQ(sat_add(32000, 32000), 32767);
  EXPECT_EQ(sat_add(-32000, -32000), -32768);
}

TEST(EwopKernels, SigmoidShape) {
  // sigmoid(0) = 0.5, saturates toward 0/1, monotone.
  EXPECT_NEAR(from_q114(sigmoid_q(0)), 0.5, 0.01);
  EXPECT_NEAR(from_q114(sigmoid_q(to_q412(4.0))), 1.0 / (1 + std::exp(-4.0)),
              0.01);
  EXPECT_NEAR(from_q114(sigmoid_q(to_q412(-4.0))), 1.0 / (1 + std::exp(4.0)),
              0.01);
  for (int x = -30000; x < 30000; x += 700) {
    EXPECT_LE(sigmoid_q(static_cast<std::int16_t>(x)),
              sigmoid_q(static_cast<std::int16_t>(x + 700)));
  }
}

TEST(EwopKernels, TanhShape) {
  EXPECT_NEAR(from_q114(tanh_q(0)), 0.0, 0.01);
  EXPECT_NEAR(from_q114(tanh_q(to_q412(2.0))), std::tanh(2.0), 0.01);
  // Odd symmetry within LUT quantization.
  for (double x : {0.5, 1.0, 3.0}) {
    EXPECT_NEAR(from_q114(tanh_q(to_q412(x))),
                -from_q114(tanh_q(to_q412(-x))), 0.02);
  }
}

TEST(EwopKernels, ReluAndAdd) {
  nn::Tensor16 a({4});
  nn::Tensor16 b({4});
  a[0] = -5; a[1] = 5; a[2] = 30000; a[3] = 0;
  b[0] = 2;  b[1] = 2; b[2] = 30000; b[3] = 0;
  nn::Tensor16 sum = add(a, b);
  EXPECT_EQ(sum[0], -3);
  EXPECT_EQ(sum[2], 32767);  // saturated
  relu_inplace(sum);
  EXPECT_EQ(sum[0], 0);
  EXPECT_EQ(sum[1], 7);
}

TEST(EwopKernels, LstmCellAgainstDoubleReference) {
  // One cell update compared against double-precision math.
  const double pi = 0.7, pf = -0.3, pg = 0.5, po = 1.2, c0 = 0.4;
  LstmCellState st{nn::Tensor16({1}), nn::Tensor16({1})};
  st.c[0] = to_q412(c0);
  nn::Tensor16 i({1}), f({1}), g({1}), o({1});
  i[0] = to_q412(pi); f[0] = to_q412(pf); g[0] = to_q412(pg); o[0] = to_q412(po);
  lstm_cell_update(i, f, g, o, st);

  auto sig = [](double x) { return 1.0 / (1.0 + std::exp(-x)); };
  const double c1 = sig(pf) * c0 + sig(pi) * std::tanh(pg);
  const double h1 = sig(po) * std::tanh(c1);
  EXPECT_NEAR(double(st.c[0]) / 4096.0, c1, 0.02);
  EXPECT_NEAR(double(st.h[0]) / 4096.0, h1, 0.02);
}

TEST(HostPipeline, PaperClaimHoldsOnGoogLeNet) {
  // "The performance was not bounded by these layers" — check it: at a
  // modest 20 Gops/s host, EWOP time is far below overlay time.
  const nn::Network net = nn::googlenet();
  const auto sched = compiler::schedule_network(net, arch::paper_config(),
                                                compiler::Objective::Performance,
                                                10'000);
  const PipelineReport r = evaluate_pipeline(net, sched, HostModel{});
  EXPECT_FALSE(r.ewop_bounds_throughput);
  EXPECT_LT(r.host_over_overlay, 0.25);
  EXPECT_DOUBLE_EQ(r.frame_seconds, r.overlay_seconds);
  EXPECT_GT(r.worst_stage_ratio, 0.0);
}

TEST(HostPipeline, SlowHostBreaksTheClaim) {
  const nn::Network net = nn::googlenet();
  const auto sched = compiler::schedule_network(net, arch::paper_config(),
                                                compiler::Objective::Performance,
                                                10'000);
  const double required = required_host_ops_per_sec(net, sched);
  EXPECT_GT(required, 0.0);

  HostModel slow;
  slow.ewop_ops_per_sec = required / 2.0;
  const PipelineReport r = evaluate_pipeline(net, sched, slow);
  EXPECT_TRUE(r.ewop_bounds_throughput);
  EXPECT_GT(r.frame_seconds, r.overlay_seconds);

  HostModel fast;
  fast.ewop_ops_per_sec = required * 2.0;
  EXPECT_FALSE(evaluate_pipeline(net, sched, fast).ewop_bounds_throughput);
}

TEST(HostPipeline, HostOnlyNetworkHasDefinedRatios) {
  // Regression: a network with no overlay layers has overlay_seconds == 0,
  // and the report used to divide straight through it — host_over_overlay
  // came out inf-by-accident and, with no host work either, NaN. The
  // defined values (host_pipeline.h): +inf when host work exists with no
  // overlay stage to hide behind, and every gauge stays finite.
  nn::Network net("host-only");
  net.add(nn::make_pool("pool", 8, 16, 16, 2, 2));
  net.add(nn::make_ewop("post", 10'000));
  net.validate_graph();
  compiler::NetworkSchedule sched;
  sched.config = arch::paper_config();

  obs::Registry::global().reset();
  obs::set_enabled(true);
  const PipelineReport r = evaluate_pipeline(net, sched, HostModel{});
  obs::set_enabled(false);

  EXPECT_DOUBLE_EQ(r.overlay_seconds, 0.0);
  EXPECT_GT(r.host_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.frame_seconds, r.host_seconds);
  EXPECT_TRUE(std::isinf(r.host_over_overlay));
  EXPECT_GT(r.host_over_overlay, 0.0);
  EXPECT_TRUE(r.ewop_bounds_throughput);
  // The hand-off queue gauge must stay finite for the metrics JSON: a
  // host-bound pipeline is fully occupied, not infinitely so.
  const double occupancy = obs::Registry::global().gauge("host/queue_occupancy");
  EXPECT_TRUE(std::isfinite(occupancy));
  EXPECT_DOUBLE_EQ(occupancy, 1.0);
  obs::Registry::global().reset();
}

TEST(HostPipeline, EmptyNetworkReportsZeros) {
  // Degenerate case of the same regression: no work anywhere must give
  // well-defined zeros, never 0/0 NaN.
  nn::Network net("empty");
  compiler::NetworkSchedule sched;
  sched.config = arch::paper_config();
  const PipelineReport r = evaluate_pipeline(net, sched, HostModel{});
  EXPECT_DOUBLE_EQ(r.overlay_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.host_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.frame_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.host_over_overlay, 0.0);
  EXPECT_FALSE(r.ewop_bounds_throughput);
  EXPECT_FALSE(std::isnan(r.host_over_overlay));
}

}  // namespace
}  // namespace ftdl::host
