// Tests for the FTDL compiler: workload lowering, mapping algebra,
// adjacency, the analytical model and the mapping search.
#include <gtest/gtest.h>

#include "arch/overlay_config.h"
#include "common/error.h"
#include "compiler/adjacency.h"
#include "compiler/codegen.h"
#include "compiler/scheduler.h"
#include "compiler/search.h"
#include "fpga/device_zoo.h"
#include "nn/model_zoo.h"

namespace ftdl::compiler {
namespace {

using arch::OverlayConfig;
using arch::paper_config;

nn::Layer example_conv() {
  // inception_4e/3x3-like layer: M=320, N=160, E=F=14, R=S=3.
  return nn::make_conv("conv", 160, 14, 14, 320, 3, 1, 1);
}

// ---- workload lowering ------------------------------------------------------

TEST(Workload, MatMulLowering) {
  const Workload w = Workload::from_layer(nn::make_matmul("fc", 1024, 1000, 8));
  EXPECT_EQ(w.kind, WorkloadKind::MatMul);
  ASSERT_EQ(w.k(), 3);
  EXPECT_EQ(w.loops[w.loop_index('M')].trip, 1024);
  EXPECT_TRUE(w.loops[w.loop_index('M')].is_reduction);
  EXPECT_TRUE(w.loops[w.loop_index('M')].indexes_weight);
  EXPECT_TRUE(w.loops[w.loop_index('M')].indexes_act);
  EXPECT_FALSE(w.loops[w.loop_index('N')].indexes_act);
  EXPECT_FALSE(w.loops[w.loop_index('P')].indexes_weight);
  EXPECT_EQ(w.macs(), 1024LL * 1000 * 8);
  EXPECT_EQ(w.weight_words(), 1024LL * 1000);
}

TEST(Workload, ConvLowering) {
  const Workload w = Workload::from_layer(example_conv());
  EXPECT_EQ(w.kind, WorkloadKind::Conv);
  ASSERT_EQ(w.k(), 6);
  EXPECT_EQ(w.loops[w.loop_index('M')].trip, 320);
  EXPECT_EQ(w.loops[w.loop_index('E')].trip, 14);
  EXPECT_TRUE(w.loops[w.loop_index('N')].is_reduction);
  EXPECT_TRUE(w.loops[w.loop_index('R')].is_reduction);
  EXPECT_FALSE(w.loops[w.loop_index('M')].indexes_act);
  EXPECT_FALSE(w.loops[w.loop_index('E')].indexes_weight);
  EXPECT_EQ(w.weight_words(), 320LL * 160 * 3 * 3);
}

TEST(Workload, HostLayersRejected) {
  EXPECT_THROW(Workload::from_layer(nn::make_ewop("e", 10)), ConfigError);
  EXPECT_THROW(Workload::from_layer(nn::make_pool("p", 8, 8, 8, 2, 2)),
               ConfigError);
}

// ---- mapping algebra --------------------------------------------------------

TEST(Mapping, ProductsAndCoverage) {
  const Workload w = Workload::from_layer(nn::make_matmul("fc", 12, 10, 8));
  Mapping m = Mapping::identity(w.k());
  m.tile(HwLevel::D1, w.loop_index('M')) = 4;
  m.tile(HwLevel::T, w.loop_index('M')) = 3;
  m.tile(HwLevel::D2, w.loop_index('N')) = 5;
  m.tile(HwLevel::X, w.loop_index('N')) = 2;
  m.tile(HwLevel::T, w.loop_index('P')) = 8;

  EXPECT_EQ(m.level_product(HwLevel::D1), 4);
  EXPECT_EQ(m.level_product(HwLevel::T), 24);
  EXPECT_EQ(m.loop_coverage(w.loop_index('M')), 12);
  EXPECT_EQ(m.temporal_extent(w.loop_index('M')), 3);
  EXPECT_EQ(m.spatial_extent(w.loop_index('M')), 4);
  EXPECT_EQ(m.padded_macs(), 12LL * 10 * 8);
}

TEST(Mapping, LogicalConstraints) {
  const Workload w = Workload::from_layer(nn::make_matmul("fc", 12, 10, 8));
  Mapping m = Mapping::identity(w.k());
  // Nothing covered yet: coverage 1 < trips.
  EXPECT_FALSE(satisfies_logical_constraints(m, w, 12, 5, 20));
  m.tile(HwLevel::D1, w.loop_index('M')) = 12;
  m.tile(HwLevel::D2, w.loop_index('N')) = 5;
  m.tile(HwLevel::X, w.loop_index('N')) = 2;
  m.tile(HwLevel::T, w.loop_index('P')) = 8;
  EXPECT_TRUE(satisfies_logical_constraints(m, w, 12, 5, 20));
  // Eqn. 10 violation: spatial product exceeds the extent.
  EXPECT_FALSE(satisfies_logical_constraints(m, w, 11, 5, 20));
  // Padding is allowed: coverage 16 >= 12 is fine.
  m.tile(HwLevel::X, w.loop_index('M')) = 2;
  m.tile(HwLevel::D1, w.loop_index('M')) = 8;
  EXPECT_TRUE(satisfies_logical_constraints(m, w, 12, 5, 20));
}

// ---- adjacency (Fig. 5) -----------------------------------------------------

TEST(Adjacency, MatMulMatrix) {
  const Workload w = Workload::from_layer(nn::make_matmul("fc", 64, 32, 16));
  const int m = w.loop_index('M'), n = w.loop_index('N'), p = w.loop_index('P');
  // D1: only the reduction loop M.
  EXPECT_TRUE(adjacency_allows(w, HwLevel::D1, m));
  EXPECT_FALSE(adjacency_allows(w, HwLevel::D1, n));
  EXPECT_FALSE(adjacency_allows(w, HwLevel::D1, p));
  // D2: only the weight-only loop N (shared ActBUS).
  EXPECT_FALSE(adjacency_allows(w, HwLevel::D2, m));
  EXPECT_TRUE(adjacency_allows(w, HwLevel::D2, n));
  EXPECT_FALSE(adjacency_allows(w, HwLevel::D2, p));
  // D3, X, T: everything.
  for (int i : {m, n, p}) {
    EXPECT_TRUE(adjacency_allows(w, HwLevel::D3, i));
    EXPECT_TRUE(adjacency_allows(w, HwLevel::X, i));
    EXPECT_TRUE(adjacency_allows(w, HwLevel::T, i));
  }
  // L: activation-indexing loops only (M, P).
  EXPECT_TRUE(adjacency_allows(w, HwLevel::L, m));
  EXPECT_FALSE(adjacency_allows(w, HwLevel::L, n));
  EXPECT_TRUE(adjacency_allows(w, HwLevel::L, p));
}

TEST(Adjacency, ConvMatrix) {
  const Workload w = Workload::from_layer(example_conv());
  const int m = w.loop_index('M'), n = w.loop_index('N');
  const int r = w.loop_index('R'), e = w.loop_index('E');
  EXPECT_FALSE(adjacency_allows(w, HwLevel::D1, m));
  EXPECT_TRUE(adjacency_allows(w, HwLevel::D1, n));
  EXPECT_TRUE(adjacency_allows(w, HwLevel::D1, r));
  EXPECT_TRUE(adjacency_allows(w, HwLevel::D2, m));
  EXPECT_FALSE(adjacency_allows(w, HwLevel::D2, n));
  EXPECT_FALSE(adjacency_allows(w, HwLevel::D2, e));
  EXPECT_FALSE(adjacency_allows(w, HwLevel::L, m));  // M does not index acts
  EXPECT_TRUE(adjacency_allows(w, HwLevel::L, e));
}

TEST(Adjacency, HostReductionDetected) {
  const Workload w = Workload::from_layer(example_conv());
  Mapping m = Mapping::identity(w.k());
  EXPECT_FALSE(needs_host_reduction(m, w));
  m.tile(HwLevel::D3, w.loop_index('N')) = 2;  // split reduction across rows
  EXPECT_TRUE(needs_host_reduction(m, w));
}

// ---- analytical model -------------------------------------------------------

/// A hand-built, fully feasible mapping of a small MM on the paper config:
/// M=96 -> D1=12 x T=8; N=100 -> D2=5 x D3=20; P=64 -> T=4 x L=16.
struct SmallMm {
  Workload w = Workload::from_layer(nn::make_matmul("fc", 96, 100, 64));
  Mapping m = Mapping::identity(3);
  OverlayConfig cfg = paper_config();

  SmallMm() {
    m.tile(HwLevel::D1, w.loop_index('M')) = 12;
    m.tile(HwLevel::T, w.loop_index('M')) = 8;
    m.tile(HwLevel::D2, w.loop_index('N')) = 5;
    m.tile(HwLevel::D3, w.loop_index('N')) = 20;
    m.tile(HwLevel::T, w.loop_index('P')) = 4;
    m.tile(HwLevel::L, w.loop_index('P')) = 16;
  }
};

TEST(AnalyticalModel, Eqn7ComputationTime) {
  SmallMm s;
  const Performance p = evaluate(s.w, s.m, s.cfg);
  // X = 1, L = 16, T = 8 * 4 = 32; C_comp = 1 * (16*32 + (12+6)).
  EXPECT_EQ(p.x, 1);
  EXPECT_EQ(p.l, 16);
  EXPECT_EQ(p.t, 32);
  EXPECT_EQ(p.c_comp, 16 * 32 + 18);
  EXPECT_TRUE(p.weight_reuse_ok);  // TT_P = 4 >= 2
}

TEST(AnalyticalModel, PerfectMappingHasUnitEwbuf) {
  SmallMm s;
  const Performance p = evaluate(s.w, s.m, s.cfg);
  // No loop is split spatially except weight loops -> no duplication.
  EXPECT_NEAR(p.e_wbuf, 1.0, 1e-12);
  EXPECT_TRUE(p.buffers_fit);
  // WBUF tile: temporal weight extents = 8 (M) x 1 (N) = 8 words.
  EXPECT_EQ(p.buffers.wbuf_words_per_tpe, 8);
  // ActBUF tile: TT_M * TT_P = 8 * 4 = 32 <= 64 usable words.
  EXPECT_EQ(p.buffers.actbuf_words_per_tpe, 32);
  // PSum tile: (TT*TL) over non-reduction loops = 1 (N) * 64 (P).
  EXPECT_EQ(p.buffers.psum_words_per_superblock, 64);
}

TEST(AnalyticalModel, DuplicationLowersEwbuf) {
  // Split the act-only loop P across D3: every row stores the same weights.
  Workload w = Workload::from_layer(nn::make_matmul("fc", 96, 5, 40));
  OverlayConfig cfg = paper_config();
  Mapping m = Mapping::identity(3);
  m.tile(HwLevel::D1, w.loop_index('M')) = 12;
  m.tile(HwLevel::T, w.loop_index('M')) = 8;
  m.tile(HwLevel::D2, w.loop_index('N')) = 5;
  m.tile(HwLevel::D3, w.loop_index('P')) = 20;
  m.tile(HwLevel::T, w.loop_index('P')) = 2;
  const Performance p = evaluate(w, m, cfg);
  EXPECT_NEAR(p.e_wbuf, 1.0 / 20.0, 1e-12);  // 20x duplication
}

TEST(AnalyticalModel, WeightReusePenaltyWithoutActOnlyInnerLoop) {
  // All of P spatial: no act-only loop remains in T -> the BRAM weight port
  // cannot feed the DSP every CLKh cycle.
  Workload w = Workload::from_layer(nn::make_matmul("fc", 96, 5, 20));
  OverlayConfig cfg = paper_config();
  Mapping m = Mapping::identity(3);
  m.tile(HwLevel::D1, w.loop_index('M')) = 12;
  m.tile(HwLevel::T, w.loop_index('M')) = 8;
  m.tile(HwLevel::D2, w.loop_index('N')) = 5;
  m.tile(HwLevel::D3, w.loop_index('P')) = 20;
  const Performance p = evaluate(w, m, cfg);
  EXPECT_FALSE(p.weight_reuse_ok);
  EXPECT_EQ(p.c_comp, 1 * (2 * 8 + 18));  // burst stretched 2x

  cfg.double_pump = false;  // single clock: no reuse requirement
  const Performance p2 = evaluate(w, m, cfg);
  EXPECT_TRUE(p2.weight_reuse_ok);
}

TEST(AnalyticalModel, MultiPassDoublesPsumTraffic) {
  Workload w = Workload::from_layer(nn::make_matmul("fc", 192, 100, 64));
  OverlayConfig cfg = paper_config();
  Mapping single = Mapping::identity(3);
  single.tile(HwLevel::D1, w.loop_index('M')) = 12;
  single.tile(HwLevel::T, w.loop_index('M')) = 16;
  single.tile(HwLevel::D2, w.loop_index('N')) = 5;
  single.tile(HwLevel::D3, w.loop_index('N')) = 20;
  single.tile(HwLevel::T, w.loop_index('P')) = 64;

  Mapping multi = single;
  multi.tile(HwLevel::T, w.loop_index('M')) = 8;
  multi.tile(HwLevel::X, w.loop_index('M')) = 2;  // reduction split at X

  const Performance ps = evaluate(w, single, cfg);
  const Performance pm = evaluate(w, multi, cfg);
  // Same psum tile, but two passes with store+reload = 4x bus cycles
  // (2x traffic x 2 X-iterations).
  EXPECT_EQ(pm.c_psum_bus, 4 * ps.c_psum_bus);
}

TEST(AnalyticalModel, ExeIsMaxOfChannels) {
  SmallMm s;
  const Performance p = evaluate(s.w, s.m, s.cfg);
  EXPECT_EQ(p.c_exe, std::max({p.c_comp, p.c_act_bus, p.c_psum_bus,
                               p.c_dram_rd, p.c_dram_wr}));
  EXPECT_GT(p.hardware_efficiency, 0.0);
  EXPECT_LE(p.hardware_efficiency, 1.0);
}

TEST(AnalyticalModel, BalanceScoreNormalization) {
  SmallMm s;
  const Performance p = evaluate(s.w, s.m, s.cfg);
  const std::int64_t cmin = min_execution_cycles(s.w, s.cfg);
  const double score = balance_score(p, cmin);
  // Score = Cmin/Cexe + E_WBUF, both terms in (0, 1].
  EXPECT_GT(score, 0.0);
  EXPECT_LE(score, 2.0 + 1e-9);
}

// ---- search -----------------------------------------------------------------

TEST(Search, FindsFeasibleMappingForConv) {
  const Workload w = Workload::from_layer(example_conv());
  SearchOptions opt;
  opt.max_candidates = 20'000;
  opt.top_k = 10;
  const SearchResult r = search_mappings(w, paper_config(), opt);
  ASSERT_FALSE(r.top.empty());
  EXPECT_GT(r.feasible, 0);
  for (const Solution& s : r.top) {
    EXPECT_TRUE(s.perf.feasible);
    EXPECT_TRUE(satisfies_adjacency(s.mapping, w));
    EXPECT_TRUE(satisfies_logical_constraints(s.mapping, w, 12, 5, 20));
  }
  // Sorted best-first.
  for (std::size_t i = 1; i < r.top.size(); ++i) {
    EXPECT_GE(r.top[i - 1].score, r.top[i].score);
  }
}

TEST(Search, ConvEfficiencyIsHigh) {
  // The compiler claim: >80% hardware efficiency on typical CONV layers.
  const Workload w = Workload::from_layer(example_conv());
  const Solution s = best_mapping(w, paper_config(), Objective::Performance,
                                  50'000);
  EXPECT_GT(s.perf.hardware_efficiency, 0.70) << s.mapping.to_string(w);
}

TEST(Search, BalanceObjectivePrefersHighEwbuf) {
  const Workload w = Workload::from_layer(example_conv());
  const Solution perf =
      best_mapping(w, paper_config(), Objective::Performance, 30'000);
  const Solution bal =
      best_mapping(w, paper_config(), Objective::Balance, 30'000);
  EXPECT_GE(bal.perf.e_wbuf, perf.perf.e_wbuf - 1e-9);
  // Balance trades at most a modest slowdown for the WBUF savings.
  EXPECT_LE(double(bal.perf.c_exe), 3.0 * double(perf.perf.c_exe));
}

TEST(Search, DeterministicForFixedSeed) {
  const Workload w = Workload::from_layer(example_conv());
  SearchOptions opt;
  opt.max_candidates = 5'000;
  const SearchResult a = search_mappings(w, paper_config(), opt);
  const SearchResult b = search_mappings(w, paper_config(), opt);
  ASSERT_FALSE(a.top.empty());
  EXPECT_EQ(a.top.front().perf.c_exe, b.top.front().perf.c_exe);
  EXPECT_EQ(a.evaluated, b.evaluated);
}

TEST(Search, TinyWorkloadDoesNotHang) {
  const Workload w = Workload::from_layer(nn::make_matmul("t", 2, 2, 2));
  SearchOptions opt;
  opt.max_candidates = 100'000;  // far more than the space size
  const SearchResult r = search_mappings(w, paper_config(), opt);
  EXPECT_FALSE(r.top.empty());
}

TEST(Search, MatMulLayerSchedules) {
  const Workload w =
      Workload::from_layer(nn::make_matmul("fc", 1024, 1000, 1));
  const Solution s = best_mapping(w, paper_config());
  EXPECT_TRUE(s.perf.feasible);
  // P=1 (batch 1 FC): weight reuse is impossible, the penalty must appear.
  EXPECT_FALSE(s.perf.weight_reuse_ok);
}

// ---- codegen ----------------------------------------------------------------

TEST(Codegen, StreamMatchesMapping) {
  const nn::Layer layer = example_conv();
  const LayerProgram prog = compile_layer(layer, paper_config(),
                                          Objective::Performance, 20'000);
  ASSERT_GE(prog.row_stream.size(), 8u);
  // The three SetLoop instructions carry X, L, T of the mapping.
  EXPECT_EQ(prog.row_stream[0].imm, static_cast<std::uint64_t>(prog.perf.x));
  EXPECT_EQ(prog.row_stream[1].imm, static_cast<std::uint64_t>(prog.perf.l));
  EXPECT_EQ(prog.row_stream[2].imm, static_cast<std::uint64_t>(prog.perf.t));
  EXPECT_EQ(prog.row_stream.back().op, arch::Opcode::Barrier);
  // Encoded stream decodes back to the same instructions.
  const auto words = prog.encoded_stream();
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(arch::decode(words[i]), prog.row_stream[i]);
  }
}

// ---- network scheduling -----------------------------------------------------

TEST(Scheduler, SmallNetworkEndToEnd) {
  nn::Network net("tiny");
  net.add(nn::make_conv("c1", 16, 28, 28, 32, 3, 1, 1));
  net.add(nn::make_pool("p1", 32, 28, 28, 2, 2));
  net.add(nn::make_conv("c2", 32, 14, 14, 64, 3, 1, 1));
  net.add(nn::make_matmul("fc", 64 * 14 * 14, 10, 1));

  const NetworkSchedule s =
      schedule_network(net, paper_config(), Objective::Performance, 10'000);
  EXPECT_EQ(s.layers.size(), 3u);  // pool excluded
  EXPECT_GT(s.total_cycles, 0);
  EXPECT_GT(s.fps(), 0.0);
  EXPECT_GT(s.hardware_efficiency, 0.0);
  EXPECT_GT(s.host_ewop_ops, 0);
  EXPECT_EQ(s.overlay_macs,
            net.layers()[0].macs() + net.layers()[2].macs() +
                net.layers()[3].macs());
}

TEST(Scheduler, RepeatedShapesShareOneSearch) {
  nn::Network net("repeat");
  for (int i = 0; i < 4; ++i) {
    net.add(nn::make_conv("c" + std::to_string(i), 32, 14, 14, 32, 3, 1, 1));
  }
  const NetworkSchedule s =
      schedule_network(net, paper_config(), Objective::Performance, 10'000);
  ASSERT_EQ(s.layers.size(), 4u);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(s.layers[i].perf.c_exe, s.layers[0].perf.c_exe);
  }
}

TEST(Scheduler, HwConfigSearchKeepsTpeBudget) {
  nn::Network net("tiny");
  net.add(nn::make_conv("c1", 64, 14, 14, 64, 3, 1, 1));
  const auto choice = find_best_hw_config(net, paper_config(),
                                          fpga::ultrascale_vu125(), 1200,
                                          3'000);
  EXPECT_EQ(choice.config.tpes(), 1200);
  EXPECT_LE(choice.config.d2, 5);
  EXPECT_LE(choice.config.d1 * choice.config.d3, 240);
  EXPECT_GT(choice.schedule.hardware_efficiency, 0.0);
}

TEST(Search, RefinementNeverHurtsAndOftenHelps) {
  const Workload w = Workload::from_layer(example_conv());
  SearchOptions base;
  base.max_candidates = 10'000;
  base.refine = false;
  const SearchResult plain = search_mappings(w, paper_config(), base);

  SearchOptions refined = base;
  refined.refine = true;
  const SearchResult better = search_mappings(w, paper_config(), refined);

  ASSERT_FALSE(plain.top.empty());
  ASSERT_FALSE(better.top.empty());
  EXPECT_GE(better.top.front().score, plain.top.front().score);
  EXPECT_GE(better.refinement_improvements, 0);
  EXPECT_EQ(plain.refinement_improvements, 0);
}

TEST(Codegen, WeightReloadChargedWhenEnabled) {
  // A big FC forces weight groups; with charge_weight_reload the total
  // cycles grow by the DRAM streaming time of each group's weights.
  const nn::Layer fc = nn::make_matmul("big", 2048, 4096, 2);
  OverlayConfig base = paper_config();
  const LayerProgram free_reload =
      compile_layer(fc, base, Objective::Performance, 5'000);
  ASSERT_GT(free_reload.weight_groups, 1);
  EXPECT_EQ(free_reload.reload_cycles_per_group, 0);

  OverlayConfig charged_cfg = base;
  charged_cfg.charge_weight_reload = true;
  const LayerProgram charged =
      compile_layer(fc, charged_cfg, Objective::Performance, 5'000);
  EXPECT_GT(charged.reload_cycles_per_group, 0);
  EXPECT_GT(charged.total_cycles(),
            charged.perf.c_exe * charged.weight_groups);
  // Reload time matches the group weight volume at the DRAM bandwidth.
  const double bytes = 2.0 * double(charged.perf.buffers.wbuf_words_per_tpe) *
                       charged_cfg.tpes();
  EXPECT_NEAR(double(charged.reload_cycles_per_group),
              bytes / charged_cfg.dram_rd_bytes_per_cycle(), 1.0);
}

}  // namespace
}  // namespace ftdl::compiler
