// End-to-end framework tests: device + overlay + compiler + power together.
#include <gtest/gtest.h>

#include "ftdl/ftdl.h"

namespace ftdl {
namespace {

TEST(Framework, ConstructsWithPaperDefaults) {
  Framework fw{FrameworkOptions{}};
  EXPECT_EQ(fw.device().name, "xcvu125");
  EXPECT_EQ(fw.config().tpes(), 1200);
  // 650 MHz is achievable post-P&R on the vu125 (Fig. 6b).
  EXPECT_GE(fw.timing().clk_h_fmax_hz, fw.config().clocks.clk_h_hz);
}

TEST(Framework, DeriveFloorClockPolicy) {
  FrameworkOptions opts;
  opts.clock_policy = ClockPolicy::DeriveFloor;
  Framework fw{opts};
  // The derived clock is a 50 MHz multiple at or below fmax.
  const double clk = fw.config().clocks.clk_h_hz;
  EXPECT_LE(clk, fw.timing().clk_h_fmax_hz);
  EXPECT_NEAR(std::fmod(clk, 50e6), 0.0, 1.0);
  EXPECT_GE(clk, 650e6);  // the paper's operating point
}

TEST(Framework, RejectsOverclockedConfig) {
  FrameworkOptions opts;
  opts.config.clocks = fpga::ClockPair::from_high(720e6);  // above fmax
  EXPECT_THROW(Framework{opts}, ConfigError);
}

TEST(Framework, RejectsOverlayThatDoesNotFit) {
  FrameworkOptions opts;
  opts.device_name = "xc7z020";  // small edge part
  opts.config.d1 = 12;
  opts.config.d2 = 5;
  opts.config.d3 = 20;  // 240 per column needed; 7z020 has 55
  EXPECT_THROW(Framework{opts}, ConfigError);
}

TEST(Framework, CompilesSingleLayer) {
  Framework fw{FrameworkOptions{}};
  const auto prog = fw.compile(nn::make_conv("c", 64, 28, 28, 64, 3, 1, 1));
  EXPECT_TRUE(prog.perf.feasible);
  EXPECT_FALSE(prog.row_stream.empty());
}

TEST(Framework, EvaluatesSmallNetworkEndToEnd) {
  FrameworkOptions opts;
  opts.search_budget_per_layer = 10'000;
  Framework fw{opts};

  nn::Network net("small");
  net.add(nn::make_conv("c1", 32, 28, 28, 64, 3, 1, 1));
  net.add(nn::make_pool("p1", 64, 28, 28, 2, 2));
  net.add(nn::make_conv("c2", 64, 14, 14, 128, 3, 1, 1));
  net.add(nn::make_matmul("fc", 128 * 14 * 14, 10, 1));

  const NetworkReport r = fw.evaluate(net);
  EXPECT_GT(r.fps(), 0.0);
  EXPECT_GT(r.effective_gops(), 0.0);
  EXPECT_GT(r.gops_per_w(), 0.0);
  EXPECT_GT(r.power.total_w(), 0.0);
  EXPECT_GT(r.dram.total_joules(), 0.0);
  EXPECT_EQ(r.schedule.layers.size(), 3u);
}

TEST(Framework, SmallerDeviceSmallerOverlay) {
  FrameworkOptions opts;
  opts.device_name = "xc7z020";
  opts.config.d1 = 5;
  opts.config.d2 = 4;
  opts.config.d3 = 9;             // 180 TPEs on the small edge part
  opts.config.psumbuf_words = 1024;  // 2 BRAM18 per SuperBlock fits the 280
  opts.config.clocks = fpga::ClockPair::from_high(600e6);
  Framework fw{opts};
  EXPECT_EQ(fw.config().tpes(), 180);
  const auto prog = fw.compile(nn::make_conv("c", 32, 14, 14, 32, 3, 1, 1));
  EXPECT_TRUE(prog.perf.feasible);
}

}  // namespace
}  // namespace ftdl
