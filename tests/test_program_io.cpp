// Tests for compiled-program serialization and the LSTM sequence runner.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "common/error.h"
#include "compiler/program_io.h"
#include "host/lstm_runner.h"

namespace ftdl {
namespace {

using compiler::LayerProgram;

arch::OverlayConfig cfg() { return arch::paper_config(); }

LayerProgram example_program() {
  return compiler::compile_layer(nn::make_conv("io_conv", 64, 14, 14, 96, 3, 1, 1),
                                 cfg(), compiler::Objective::Performance, 5'000);
}

TEST(ProgramIo, RoundTripPreservesEverything) {
  const LayerProgram orig = example_program();
  const std::string text = compiler::serialize_program(orig);
  const LayerProgram back = compiler::deserialize_program(text, cfg());

  EXPECT_EQ(back.layer.name, orig.layer.name);
  EXPECT_EQ(back.layer.out_c, orig.layer.out_c);
  EXPECT_EQ(back.weight_groups, orig.weight_groups);
  EXPECT_EQ(back.mapping.t, orig.mapping.t);
  EXPECT_EQ(back.perf.c_exe, orig.perf.c_exe);
  EXPECT_EQ(back.perf.hardware_efficiency, orig.perf.hardware_efficiency);
  EXPECT_EQ(back.encoded_stream(), orig.encoded_stream());
}

TEST(ProgramIo, RoundTripWithWeightGroups) {
  // Big FC: forced weight-group splitting must survive the round trip.
  const LayerProgram orig = compiler::compile_layer(
      nn::make_matmul("big_fc", 2048, 4096, 2), cfg(),
      compiler::Objective::Performance, 5'000);
  ASSERT_GT(orig.weight_groups, 1);
  const LayerProgram back =
      compiler::deserialize_program(compiler::serialize_program(orig), cfg());
  EXPECT_EQ(back.weight_groups, orig.weight_groups);
  EXPECT_EQ(back.total_cycles(), orig.total_cycles());
}

TEST(ProgramIo, DepthwiseRoundTrip) {
  const LayerProgram orig = compiler::compile_layer(
      nn::make_depthwise("dw", 64, 14, 14, 3, 1, 1), cfg(),
      compiler::Objective::Performance, 4'000);
  const LayerProgram back =
      compiler::deserialize_program(compiler::serialize_program(orig), cfg());
  EXPECT_EQ(back.layer.kind, nn::LayerKind::Depthwise);
  EXPECT_EQ(back.perf.c_exe, orig.perf.c_exe);
  EXPECT_EQ(back.mapping.t, orig.mapping.t);
}

TEST(ProgramIo, FileRoundTrip) {
  const std::string path = "program_io_tmp.ftdlprog";
  const LayerProgram orig = example_program();
  compiler::save_program(orig, path);
  const LayerProgram back = compiler::load_program(path, cfg());
  EXPECT_EQ(back.perf.c_exe, orig.perf.c_exe);
  std::filesystem::remove(path);
  EXPECT_THROW(compiler::load_program("missing.ftdlprog", cfg()), Error);
}

// Regression: save_program never checked the stream after writing, so a
// disk-full or I/O error published a silently truncated artifact.
TEST(ProgramIo, SaveToUnwritablePathThrows) {
  const LayerProgram orig = example_program();
  // A path under a file can never be opened for writing.
  EXPECT_THROW(compiler::save_program(orig, "/proc/self/cmdline/x.ftdlprog"),
               Error);
  // /dev/full opens fine but every write fails with ENOSPC — exactly the
  // silent-truncation case: without the flush+check the call "succeeds".
  if (std::filesystem::exists("/dev/full")) {
    EXPECT_THROW(compiler::save_program(orig, "/dev/full"), Error);
  }
}

TEST(ProgramIo, WrongConfigIsDetected) {
  const LayerProgram orig = example_program();
  const std::string text = compiler::serialize_program(orig);
  arch::OverlayConfig other = cfg();
  other.d3 = 10;  // different overlay: C_exe re-evaluation must disagree
  EXPECT_THROW(compiler::deserialize_program(text, other), Error);
}

TEST(ProgramIo, TamperedArtifactsRejected) {
  const std::string text = compiler::serialize_program(example_program());
  // Corrupt the header.
  EXPECT_THROW(compiler::deserialize_program("bogus v1\n" + text, cfg()), Error);
  // Corrupt the cross-check.
  std::string bad = text;
  const auto pos = bad.find("check.c_exe=");
  bad.replace(pos, std::string("check.c_exe=").size(), "check.c_exe=1");
  // "1=..." line also malformed -> any Error subtype is fine.
  EXPECT_THROW(compiler::deserialize_program(bad, cfg()), Error);
  // Corrupt the stream.
  std::string bad2 = text;
  const auto spos = bad2.find("stream=");
  bad2[spos + 8] = bad2[spos + 8] == '0' ? '1' : '0';
  EXPECT_THROW(compiler::deserialize_program(bad2, cfg()), Error);
}

// ---- LSTM sequence runner ----------------------------------------------------

TEST(LstmRunner, MatchesDoublePrecisionReference) {
  host::LstmSpec spec;
  spec.input_size = 8;
  spec.hidden_size = 6;
  const host::LstmWeights w = host::LstmWeights::random_for(spec, 42);

  // Small Q4.12 inputs keep every intermediate well inside LUT range.
  Rng rng(7);
  std::vector<nn::Tensor16> inputs;
  for (int t = 0; t < 4; ++t) {
    nn::Tensor16 x({spec.input_size});
    for (int i = 0; i < spec.input_size; ++i) {
      x[i] = static_cast<std::int16_t>(rng.uniform(-600, 600));  // ~±0.15
    }
    inputs.push_back(std::move(x));
  }
  const auto outputs = host::run_lstm_sequence(spec, w, inputs);
  ASSERT_EQ(outputs.size(), inputs.size());

  // Double-precision reference with the same quantized weights.
  auto sig = [](double v) { return 1.0 / (1.0 + std::exp(-v)); };
  std::vector<double> c(static_cast<std::size_t>(spec.hidden_size), 0.0);
  std::vector<double> h(static_cast<std::size_t>(spec.hidden_size), 0.0);
  for (std::size_t t = 0; t < inputs.size(); ++t) {
    std::vector<double> nh(static_cast<std::size_t>(spec.hidden_size));
    for (int n = 0; n < spec.hidden_size; ++n) {
      auto gate = [&](const nn::Tensor16& wt) {
        double acc = 0.0;
        for (int m = 0; m < spec.input_size; ++m) {
          acc += double(wt.at(n, m)) * double(inputs[t][m]) / 4096.0;
        }
        for (int m = 0; m < spec.hidden_size; ++m) {
          acc += double(wt.at(n, spec.input_size + m)) *
                 h[static_cast<std::size_t>(m)];
        }
        // Fixed-point path: acc_int = 4096*acc_real; pre = acc_int >> 8,
        // read as Q4.12 -> pre_real = acc_real / 256.
        return acc / double(1 << spec.pre_activation_shift);
      };
      const double gi = sig(gate(w.w_i));
      const double gf = sig(gate(w.w_f));
      const double gg = std::tanh(gate(w.w_g));
      const double go = sig(gate(w.w_o));
      c[static_cast<std::size_t>(n)] =
          gf * c[static_cast<std::size_t>(n)] + gi * gg;
      nh[static_cast<std::size_t>(n)] =
          go * std::tanh(c[static_cast<std::size_t>(n)]);
    }
    for (int n = 0; n < spec.hidden_size; ++n) {
      const double got = double(outputs[t][n]) / 4096.0;
      EXPECT_NEAR(got, nh[static_cast<std::size_t>(n)], 0.03)
          << "step " << t << " unit " << n;
      h[static_cast<std::size_t>(n)] = got;  // track the quantized trajectory
    }
  }
}

TEST(LstmRunner, ShapeChecks) {
  host::LstmSpec spec;
  spec.input_size = 4;
  spec.hidden_size = 4;
  const host::LstmWeights w = host::LstmWeights::random_for(spec, 1);
  std::vector<nn::Tensor16> bad = {nn::Tensor16({5})};
  EXPECT_THROW(host::run_lstm_sequence(spec, w, bad), ConfigError);

  host::LstmSpec mismatched = spec;
  mismatched.hidden_size = 8;
  std::vector<nn::Tensor16> ok = {nn::Tensor16({4})};
  EXPECT_THROW(host::run_lstm_sequence(mismatched, w, ok), ConfigError);
}

TEST(LstmRunner, DeterministicAndStateful) {
  host::LstmSpec spec;
  spec.input_size = 4;
  spec.hidden_size = 4;
  const host::LstmWeights w = host::LstmWeights::random_for(spec, 9);
  nn::Tensor16 x({4});
  x[0] = 800; x[1] = -400; x[2] = 200; x[3] = 1000;
  const std::vector<nn::Tensor16> seq = {x, x, x};
  const auto a = host::run_lstm_sequence(spec, w, seq);
  const auto b = host::run_lstm_sequence(spec, w, seq);
  EXPECT_EQ(a[2], b[2]);
  // With a nonzero input the state evolves: step outputs differ.
  EXPECT_NE(a[0], a[1]);
}

}  // namespace
}  // namespace ftdl
