// ftdl::obs — exporter schemas, round-tripping, and the zero-interference
// guarantee (observability on/off leaves simulator outputs bit-identical).
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.h"
#include "compiler/codegen.h"
#include "nn/layer.h"
#include "obs/obs.h"
#include "sim/ftdl_sim.h"

namespace {

using namespace ftdl;

/// Every test runs against the (shared) global registry: start clean, leave
/// collection off for the rest of the suite.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::Registry::global().reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Registry::global().reset();
  }
};

arch::OverlayConfig small_config() {
  arch::OverlayConfig c;
  c.d1 = 4;
  c.d2 = 2;
  c.d3 = 3;
  c.actbuf_words = 128;
  c.wbuf_words = 1024;
  c.psumbuf_words = 2048;
  c.clocks = fpga::ClockPair::from_high(650e6);
  return c;
}

sim::SimResult simulate_small_conv() {
  const nn::Layer layer = nn::make_conv("obs_conv", 8, 10, 10, 12, 3, 1, 1);
  const arch::OverlayConfig cfg = small_config();
  const compiler::LayerProgram prog =
      compiler::compile_layer(layer, cfg, compiler::Objective::Performance,
                              8'000);
  Rng rng(7);
  nn::Tensor16 input({8, 10, 10});
  nn::Tensor16 weights({12, 8, 3, 3});
  input.fill_random(rng);
  weights.fill_random(rng);
  return sim::simulate_layer(prog, cfg, weights, input);
}

/// Walks recorded events and checks the Chrome trace-event invariants: on
/// every track, timestamps are monotonic and B/E pairs nest and balance.
void expect_balanced_monotonic(const std::vector<obs::TraceEvent>& events) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> depth;
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> last_ts;
  for (const obs::TraceEvent& e : events) {
    const auto key = std::make_pair(e.pid, e.tid);
    if (last_ts.count(key)) {
      EXPECT_GE(e.ts, last_ts[key]) << "non-monotonic timestamp on track "
                                    << e.pid << "/" << e.tid;
    }
    last_ts[key] = e.ts;
    if (e.ph == 'B') {
      ++depth[key];
    } else {
      ASSERT_EQ(e.ph, 'E');
      ASSERT_GT(depth[key], 0) << "E without matching B";
      --depth[key];
    }
  }
  for (const auto& [key, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on track " << key.first << "/"
                    << key.second;
  }
}

TEST_F(ObsTest, CountersAccumulateAndGaugesOverwrite) {
  obs::Registry& r = obs::Registry::global();
  obs::set_enabled(true);
  obs::count("a/b", 2);
  obs::count("a/b", 3);
  obs::gauge("x/y", 1.5);
  obs::gauge("x/y", 2.5);
  EXPECT_EQ(r.counter("a/b"), 5);
  EXPECT_DOUBLE_EQ(r.gauge("x/y"), 2.5);
  EXPECT_EQ(r.counter("missing"), 0);
}

TEST_F(ObsTest, ConvenienceWrappersAreNoOpsWhenDisabled) {
  obs::count("a/b", 7);
  obs::gauge("x/y", 3.0);
  { obs::ScopedSpan span("test", "noop"); }
  obs::Registry& r = obs::Registry::global();
  EXPECT_EQ(r.counter("a/b"), 0);
  EXPECT_EQ(r.event_count(), 0u);
  EXPECT_TRUE(r.metrics().gauges.empty());
}

// Golden test: the exact trace-event document emitted for a small
// hand-built trace. Pins the ftdl-trace-v1 schema — field names, metadata
// records, B/E shape — so exporter changes are deliberate.
TEST_F(ObsTest, GoldenChromeTraceDocument) {
  obs::set_enabled(true);
  obs::Registry& r = obs::Registry::global();
  const std::uint32_t t = r.track("sim:layer0", "LoopT bursts");
  r.begin(t, "burst", 10.0, "sim", {{"layer", "conv1"}});
  r.end(t, 12.5);

  const char* expected =
      "{\n"
      "\"otherData\": {\"schema\": \"ftdl-trace-v1\"},\n"
      "\"displayTimeUnit\": \"ms\",\n"
      "\"traceEvents\": [\n"
      "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"sim:layer0\"}},\n"
      "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"LoopT bursts\"}},\n"
      "{\"ph\":\"B\",\"name\":\"burst\",\"cat\":\"sim\",\"ts\":10,\"pid\":1,"
      "\"tid\":1,\"args\":{\"layer\":\"conv1\"}},\n"
      "{\"ph\":\"E\",\"ts\":12.5,\"pid\":1,\"tid\":1}\n"
      "]\n"
      "}\n";
  EXPECT_EQ(r.chrome_trace_json(), expected);
}

// Golden test: the exact metrics document. Pins the ftdl-metrics-v1 schema.
TEST_F(ObsTest, GoldenMetricsDocument) {
  obs::set_enabled(true);
  obs::count("sim/cycles", 42);
  obs::gauge("host/frame_seconds", 0.25);

  const char* expected =
      "{\n"
      "\"schema\": \"ftdl-metrics-v1\",\n"
      "\"counters\": {\n"
      "  \"sim/cycles\": 42\n"
      "},\n"
      "\"gauges\": {\n"
      "  \"host/frame_seconds\": 0.25\n"
      "}\n"
      "}\n";
  EXPECT_EQ(obs::Registry::global().metrics_json(), expected);
}

TEST_F(ObsTest, MetricsJsonRoundTrips) {
  obs::set_enabled(true);
  obs::Registry& r = obs::Registry::global();
  obs::count("sim/cycles", 123456789012345LL);
  obs::count("compiler/layers_compiled", -3);  // negative stays exact
  obs::gauge("host/ratio", 0.1);               // not exactly representable
  obs::gauge("multifpga/tiny", 1.25e-9);
  obs::gauge("neg", -123.625);

  const obs::Metrics parsed = obs::parse_metrics_json(r.metrics_json());
  EXPECT_EQ(parsed.counters, r.metrics().counters);
  ASSERT_EQ(parsed.gauges.size(), r.metrics().gauges.size());
  for (const auto& [name, value] : r.metrics().gauges) {
    ASSERT_TRUE(parsed.gauges.count(name)) << name;
    EXPECT_EQ(parsed.gauges.at(name), value) << name;  // bit-exact round-trip
  }
}

TEST_F(ObsTest, ParseRejectsForeignDocuments) {
  EXPECT_THROW(obs::parse_metrics_json("{\"schema\": \"other\"}"), Error);
  EXPECT_THROW(obs::parse_metrics_json("not json"), Error);
}

TEST_F(ObsTest, SimulatorTraceIsBalancedAndMonotonic) {
  obs::set_enabled(true);
  simulate_small_conv();
  obs::Registry& r = obs::Registry::global();
  ASSERT_GT(r.event_count(), 0u);
  expect_balanced_monotonic(r.events());

  // The per-unit timelines and the summary counters both landed.
  EXPECT_GT(r.counter("sim/layers_simulated"), 0);
  EXPECT_GT(r.counter("sim/cycles"), 0);
  EXPECT_GT(r.counter("compiler/layers_compiled"), 0);
  const std::string json = r.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("LoopT bursts"), std::string::npos);
  EXPECT_NE(json.find("PSumBUF drains"), std::string::npos);
}

TEST_F(ObsTest, ResimulatingALayerKeepsTracksMonotonic) {
  obs::set_enabled(true);
  simulate_small_conv();
  simulate_small_conv();  // same layer name: must land on fresh tracks
  expect_balanced_monotonic(obs::Registry::global().events());
}

TEST_F(ObsTest, DisablingObservabilityLeavesSimOutputsBitIdentical) {
  const sim::SimResult off = simulate_small_conv();
  EXPECT_EQ(obs::Registry::global().event_count(), 0u);

  obs::set_enabled(true);
  const sim::SimResult on = simulate_small_conv();
  EXPECT_GT(obs::Registry::global().event_count(), 0u);

  ASSERT_EQ(off.output.size(), on.output.size());
  for (std::int64_t i = 0; i < off.output.size(); ++i) {
    ASSERT_EQ(off.output[i], on.output[i]) << "output diverges at " << i;
  }
  EXPECT_EQ(off.stats.cycles, on.stats.cycles);
  EXPECT_EQ(off.stats.compute_cycles, on.stats.compute_cycles);
  EXPECT_EQ(off.stats.act_stall_cycles, on.stats.act_stall_cycles);
  EXPECT_EQ(off.stats.psum_stall_cycles, on.stats.psum_stall_cycles);
  EXPECT_EQ(off.stats.valid_maccs, on.stats.valid_maccs);
  EXPECT_EQ(off.stats.padded_maccs, on.stats.padded_maccs);
}

TEST_F(ObsTest, CapacityDropsWholeSpansAndCountsThem) {
  obs::set_enabled(true);
  obs::Registry& r = obs::Registry::global();
  r.set_capacity(16);
  const std::uint32_t t = r.track("cap", "spans");
  for (int i = 0; i < 100; ++i) {
    r.begin(t, "s", double(i), "test");
    r.end(t, double(i));
  }
  expect_balanced_monotonic(r.events());
  EXPECT_LT(r.event_count(), 32u);
  EXPECT_GT(r.counter("obs/dropped_events"), 0);
  r.set_capacity(1u << 20);
}

TEST_F(ObsTest, UnmatchedEndIsDroppedAndCounted) {
  obs::set_enabled(true);
  obs::Registry& r = obs::Registry::global();
  const std::uint32_t t = r.track("p", "t");
  r.end(t, 1.0);
  EXPECT_EQ(r.event_count(), 0u);
  EXPECT_EQ(r.counter("obs/unbalanced_ends"), 1);
}

TEST_F(ObsTest, ScopedSpansNestOnTheHostTrack) {
  obs::set_enabled(true);
  {
    obs::ScopedSpan outer("compiler", "outer");
    obs::ScopedSpan inner("compiler", "inner");
  }
  obs::Registry& r = obs::Registry::global();
  ASSERT_EQ(r.event_count(), 4u);
  expect_balanced_monotonic(r.events());
  EXPECT_EQ(r.events()[0].name, "outer");
  EXPECT_EQ(r.events()[1].name, "inner");
}

}  // namespace
