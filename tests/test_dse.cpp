// Tests for the design-space explorer and the generated testbenches.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "dse/explorer.h"
#include "fpga/device_zoo.h"
#include "nn/model_zoo.h"
#include "rtlgen/testbench_gen.h"

namespace ftdl {
namespace {

nn::Network small_net() {
  nn::Network net("dse-net");
  net.add(nn::make_conv("c1", 64, 28, 28, 96, 3, 1, 1));
  net.add(nn::make_conv("c2", 96, 28, 28, 128, 3, 1, 1));
  net.validate_graph();
  return net;
}

dse::DseOptions fast_options() {
  dse::DseOptions opt;
  opt.d1_candidates = {8, 12, 16, 24};
  opt.search_budget_per_layer = 3'000;
  return opt;
}

TEST(Dse, ExploresAndRanksByFps) {
  const auto r = dse::explore(small_net(), fpga::ultrascale_vu125(),
                              arch::paper_config(), fast_options());
  ASSERT_GT(r.points.size(), 4u);
  for (std::size_t i = 1; i < r.points.size(); ++i) {
    EXPECT_GE(r.points[i - 1].fps, r.points[i].fps);
  }
  for (const auto& p : r.points) {
    EXPECT_GT(p.fps, 0.0);
    EXPECT_GT(p.power_w, 0.0);
    EXPECT_GT(p.efficiency, 0.0);
    EXPECT_LE(p.efficiency, 1.0);
    EXPECT_GE(double(p.tpes),
              0.5 * fpga::ultrascale_vu125().total_dsp());  // min util filter
    // Derived clock is on the 25 MHz grid and physically plausible.
    EXPECT_NEAR(std::fmod(p.clk_h_hz, 25e6), 0.0, 1.0);
    EXPECT_GT(p.clk_h_hz, 500e6);
  }
}

TEST(Dse, FrontierIsNonDominated) {
  const auto r = dse::explore(small_net(), fpga::ultrascale_vu125(),
                              arch::paper_config(), fast_options());
  const auto front = r.frontier();
  ASSERT_FALSE(front.empty());
  for (const auto& a : front) {
    for (const auto& b : r.points) {
      EXPECT_FALSE(b.fps > a.fps && b.power_w < a.power_w)
          << "frontier point dominated";
    }
  }
  // The fastest point is always on the frontier.
  EXPECT_TRUE(r.points.front().pareto);
}

TEST(Dse, CsvExport) {
  const auto r = dse::explore(small_net(), fpga::ultrascale_vu125(),
                              arch::paper_config(), fast_options());
  const std::string path = dse::export_csv(r, "dse_test_tmp.csv");
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_NE(header.find("gops_per_w"), std::string::npos);
  int rows = 0;
  for (std::string l; std::getline(in, l);) ++rows;
  EXPECT_EQ(rows, static_cast<int>(r.points.size()));
  std::filesystem::remove(path);
}

TEST(Dse, EmptyCandidatesThrow) {
  dse::DseOptions opt;
  opt.d1_candidates.clear();
  EXPECT_THROW(dse::explore(small_net(), fpga::ultrascale_vu125(),
                            arch::paper_config(), opt),
               ConfigError);
}

TEST(TestbenchGen, BundleContainsBenchesAndStimulus) {
  const arch::OverlayConfig cfg = arch::paper_config();
  const auto prog = compiler::compile_layer(
      nn::make_conv("c", 32, 14, 14, 32, 3, 1, 1), cfg,
      compiler::Objective::Performance, 3'000);
  const rtlgen::RtlBundle b = rtlgen::generate_testbenches(prog, cfg);
  EXPECT_TRUE(b.contains("tb_ftdl_controller.v"));
  EXPECT_TRUE(b.contains("tb_ftdl_tpe.v"));
  EXPECT_TRUE(b.contains("insts.hex"));
  EXPECT_TRUE(b.contains("weights.hex"));
  EXPECT_TRUE(b.contains("acts.hex"));
  EXPECT_TRUE(b.contains("ftdl_top.v"));  // the DUT RTL rides along

  // The instruction hex matches the program stream word for word.
  const auto words = prog.encoded_stream();
  std::istringstream in(b.at("insts.hex"));
  std::string line;
  std::size_t i = 0;
  while (std::getline(in, line)) {
    ASSERT_LT(i, words.size());
    EXPECT_EQ(std::stoull(line, nullptr, 16), words[i]);
    ++i;
  }
  EXPECT_EQ(i, words.size());
}

TEST(TestbenchGen, ControllerBenchChecksXLT) {
  const arch::OverlayConfig cfg = arch::paper_config();
  const auto prog = compiler::compile_layer(
      nn::make_conv("c", 32, 14, 14, 32, 3, 1, 1), cfg,
      compiler::Objective::Performance, 3'000);
  const auto b = rtlgen::generate_testbenches(prog, cfg);
  const long long xlt =
      static_cast<long long>(prog.perf.x) * prog.perf.l * prog.perf.t;
  EXPECT_NE(b.at("tb_ftdl_controller.v").find(std::to_string(xlt)),
            std::string::npos);
  EXPECT_NE(b.at("tb_ftdl_controller.v").find("$fatal"), std::string::npos);
}

TEST(TestbenchGen, TpeGoldenMatchesStimulus) {
  // Recompute the golden dot product from the emitted hex files and check
  // it appears in the bench's comparison.
  const arch::OverlayConfig cfg = arch::paper_config();
  const auto prog = compiler::compile_layer(
      nn::make_conv("c", 16, 8, 8, 16, 3, 1, 1), cfg,
      compiler::Objective::Performance, 3'000);
  const auto b = rtlgen::generate_testbenches(prog, cfg);

  auto parse_hex16 = [](const std::string& text) {
    std::vector<std::int16_t> out;
    std::istringstream in(text);
    for (std::string l; std::getline(in, l);) {
      out.push_back(static_cast<std::int16_t>(
          static_cast<std::uint16_t>(std::stoul(l, nullptr, 16))));
    }
    return out;
  };
  const auto weights = parse_hex16(b.at("weights.hex"));
  const auto acts = parse_hex16(b.at("acts.hex"));
  ASSERT_EQ(acts.size(), 2 * weights.size());
  long long golden = 0;
  for (std::size_t i = 0; i < acts.size(); ++i) {
    golden += static_cast<long long>(weights[i / 2]) * acts[i];
  }
  EXPECT_NE(b.at("tb_ftdl_tpe.v").find(std::to_string(golden)),
            std::string::npos);
}

}  // namespace
}  // namespace ftdl
