// CompilerSession tests: content-addressed cache keys, hit/miss accounting,
// and the determinism guarantee — schedules and hardware-config choices must
// be BIT-IDENTICAL for any jobs value and any cache state.
#include <gtest/gtest.h>

#include <latch>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/error.h"
#include "compiler/session.h"
#include "fpga/device_zoo.h"
#include "nn/model_zoo.h"
#include "obs/obs.h"

namespace ftdl::compiler {
namespace {

/// A small network exercising every overlay layer kind, with two layers
/// sharing one shape (conv3 repeats conv2's) so scheduling always has at
/// least one intra-call cache hit.
nn::Network mixed_net() {
  nn::Network net("session-mix");
  net.add(nn::make_conv("conv1", 8, 16, 16, 16, 3, 1, 1));
  net.add(nn::make_conv("conv2", 16, 16, 16, 16, 3, 1, 1));
  net.add(nn::make_conv("conv3", 16, 16, 16, 16, 3, 1, 1));  // repeats conv2
  net.add(nn::make_conv("reduce", 16, 16, 16, 8, 1, 1, 0));
  net.add(nn::make_matmul("fc", 2048, 64, 1));
  return net;
}

constexpr std::int64_t kBudget = 3'000;

/// Bit-exact schedule comparison: scalar roll-ups, per-layer metadata and
/// the encoded instruction streams.
void expect_identical(const NetworkSchedule& a, const NetworkSchedule& b) {
  EXPECT_EQ(a.network_name, b.network_name);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.overlay_macs, b.overlay_macs);
  EXPECT_EQ(a.host_ewop_ops, b.host_ewop_ops);
  EXPECT_EQ(a.hardware_efficiency, b.hardware_efficiency);  // bit-exact
  EXPECT_EQ(a.mean_e_wbuf, b.mean_e_wbuf);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    const LayerProgram& la = a.layers[i];
    const LayerProgram& lb = b.layers[i];
    EXPECT_EQ(la.layer.name, lb.layer.name);
    EXPECT_EQ(la.weight_groups, lb.weight_groups);
    EXPECT_EQ(la.reload_cycles_per_group, lb.reload_cycles_per_group);
    EXPECT_EQ(la.perf.c_exe, lb.perf.c_exe);
    EXPECT_EQ(la.perf.e_wbuf, lb.perf.e_wbuf);
    EXPECT_EQ(la.encoded_stream(), lb.encoded_stream());
  }
}

TEST(ProgramCacheKey, IgnoresWorkloadName) {
  const arch::OverlayConfig cfg = arch::paper_config();
  Workload a = Workload::from_layer(nn::make_conv("a", 8, 16, 16, 16, 3, 1, 1));
  Workload b = Workload::from_layer(nn::make_conv("b", 8, 16, 16, 16, 3, 1, 1));
  EXPECT_EQ(program_cache_key(a, cfg, Objective::Performance, kBudget),
            program_cache_key(b, cfg, Objective::Performance, kBudget));
}

// Regression for the scheduler's old LayerSignature, which memoized on
// (kind, trips, stride) alone: two workloads identical in all three but
// differing in a loop's dataflow flags would collide and share one program.
// The content key must keep them apart.
TEST(ProgramCacheKey, DistinguishesLoopDataflowFlags) {
  const arch::OverlayConfig cfg = arch::paper_config();
  const Workload base =
      Workload::from_layer(nn::make_conv("w", 8, 16, 16, 16, 3, 1, 1));

  Workload flipped_weight = base;
  flipped_weight.loops[1].indexes_weight = !flipped_weight.loops[1].indexes_weight;
  Workload flipped_reduction = base;
  flipped_reduction.loops[1].is_reduction = !flipped_reduction.loops[1].is_reduction;

  const std::uint64_t k0 =
      program_cache_key(base, cfg, Objective::Performance, kBudget);
  EXPECT_NE(k0, program_cache_key(flipped_weight, cfg, Objective::Performance,
                                  kBudget));
  EXPECT_NE(k0, program_cache_key(flipped_reduction, cfg,
                                  Objective::Performance, kBudget));
}

TEST(ProgramCacheKey, DistinguishesEveryCompilationInput) {
  const Workload w =
      Workload::from_layer(nn::make_conv("w", 8, 16, 16, 16, 3, 1, 1));
  const arch::OverlayConfig base = arch::paper_config();
  const std::uint64_t k0 =
      program_cache_key(w, base, Objective::Performance, kBudget);

  // Objective and budget are search inputs, so they are key material.
  EXPECT_NE(k0, program_cache_key(w, base, Objective::Balance, kBudget));
  EXPECT_NE(k0, program_cache_key(w, base, Objective::Performance, kBudget + 1));

  // A representative sample of OverlayConfig fields, including the
  // booleans and doubles the old trip-based signature never saw.
  arch::OverlayConfig c = base;
  c.d1 = base.d1 * 2;
  EXPECT_NE(k0, program_cache_key(w, c, Objective::Performance, kBudget));
  c = base;
  c.actbuf_words = 64;
  EXPECT_NE(k0, program_cache_key(w, c, Objective::Performance, kBudget));
  c = base;
  c.charge_weight_reload = true;
  EXPECT_NE(k0, program_cache_key(w, c, Objective::Performance, kBudget));
  c = base;
  c.dram_rd_bytes_per_sec = 13e9;
  EXPECT_NE(k0, program_cache_key(w, c, Objective::Performance, kBudget));
  c = base;
  c.clocks = fpga::ClockPair::from_high(600e6);
  EXPECT_NE(k0, program_cache_key(w, c, Objective::Performance, kBudget));
}

TEST(CompilerSession, ScheduleIsBitIdenticalAcrossJobsAndCacheState) {
  const nn::Network net = mixed_net();
  const arch::OverlayConfig cfg = arch::paper_config();

  CompilerSession serial(1);
  const NetworkSchedule golden =
      serial.schedule(net, cfg, Objective::Performance, kBudget);

  CompilerSession threaded(8);
  const NetworkSchedule cold =
      threaded.schedule(net, cfg, Objective::Performance, kBudget);
  const NetworkSchedule warm =
      threaded.schedule(net, cfg, Objective::Performance, kBudget);

  expect_identical(golden, cold);
  expect_identical(golden, warm);

  const SessionStats stats = threaded.stats();
  EXPECT_EQ(stats.misses, 4);     // conv1, conv2/conv3 shape, reduce, fc
  EXPECT_EQ(stats.hits, 1 + 5);   // conv3 on the cold run, every layer warm
  EXPECT_EQ(stats.entries, 4);
  EXPECT_GT(stats.program_bytes, 0);
}

TEST(CompilerSession, BestHwConfigIsBitIdenticalAcrossJobs) {
  nn::Network net("hwcfg-mix");
  net.add(nn::make_conv("conv", 8, 14, 14, 16, 3, 1, 1));
  net.add(nn::make_matmul("fc", 512, 32, 1));
  const fpga::Device dev = fpga::ultrascale_vu125();
  const arch::OverlayConfig base = arch::paper_config();

  CompilerSession serial(1);
  const HwConfigChoice golden =
      serial.best_hw_config(net, base, dev, 240, 1'500);

  CompilerSession threaded(8);
  const HwConfigChoice choice =
      threaded.best_hw_config(net, base, dev, 240, 1'500);

  EXPECT_EQ(golden.config.d1, choice.config.d1);
  EXPECT_EQ(golden.config.d2, choice.config.d2);
  EXPECT_EQ(golden.config.d3, choice.config.d3);
  expect_identical(golden.schedule, choice.schedule);
}

TEST(CompilerSession, BestHwConfigThrowsWhenNoSplitExists) {
  nn::Network net("prime");
  net.add(nn::make_conv("conv", 8, 14, 14, 16, 3, 1, 1));
  CompilerSession session(2);
  // 1201 is prime, so no d1 in [2, 64] divides the budget: no candidates.
  EXPECT_THROW(session.best_hw_config(net, arch::paper_config(),
                                      fpga::ultrascale_vu125(), 1201, 1'500),
               InfeasibleError);
}

TEST(CompilerSession, CacheCountsMatchOnResNet50) {
  const nn::Network net = nn::model_by_name("ResNet50");
  const arch::OverlayConfig cfg = arch::paper_config();

  // Expected counts from the key function itself: every overlay layer is
  // one lookup; the distinct keys are the compiles.
  std::int64_t overlay_layers = 0;
  std::set<std::uint64_t> distinct;
  for (const nn::Layer& layer : net.layers()) {
    if (!layer.on_overlay()) continue;
    ++overlay_layers;
    distinct.insert(program_cache_key(Workload::from_layer(layer), cfg,
                                      Objective::Performance, kBudget));
  }
  ASSERT_GT(overlay_layers, std::int64_t(distinct.size()));  // shapes repeat

  CompilerSession session(2);
  session.schedule(net, cfg, Objective::Performance, kBudget);
  SessionStats stats = session.stats();
  EXPECT_EQ(stats.misses, std::int64_t(distinct.size()));
  EXPECT_EQ(stats.hits, overlay_layers - std::int64_t(distinct.size()));
  EXPECT_EQ(stats.entries, std::int64_t(distinct.size()));

  // A warm re-schedule compiles nothing.
  session.schedule(net, cfg, Objective::Performance, kBudget);
  stats = session.stats();
  EXPECT_EQ(stats.misses, std::int64_t(distinct.size()));
  EXPECT_EQ(stats.hits, overlay_layers - std::int64_t(distinct.size()) +
                            overlay_layers);
}

TEST(CompilerSession, CacheSurvivesOverlayConfigSweeps) {
  const nn::Network net = mixed_net();
  arch::OverlayConfig a = arch::paper_config();
  arch::OverlayConfig b = a;
  b.d1 = 8;
  b.d3 = 30;  // same TPE count, different shape

  CompilerSession session(2);
  const NetworkSchedule first =
      session.schedule(net, a, Objective::Performance, kBudget);
  session.schedule(net, b, Objective::Performance, kBudget);
  const std::int64_t misses_after_sweep = session.stats().misses;

  // Returning to config `a` must hit for every layer — the sweep through
  // `b` must not have evicted or aliased a's programs.
  const NetworkSchedule again =
      session.schedule(net, a, Objective::Performance, kBudget);
  EXPECT_EQ(session.stats().misses, misses_after_sweep);
  expect_identical(first, again);
}

TEST(CompilerSession, CompileRestoresLayerIdentityOnHits) {
  CompilerSession session(1);
  const arch::OverlayConfig cfg = arch::paper_config();
  const LayerProgram p1 =
      session.compile(nn::make_conv("first", 8, 16, 16, 16, 3, 1, 1), cfg,
                      Objective::Performance, kBudget);
  const LayerProgram p2 =
      session.compile(nn::make_conv("second", 8, 16, 16, 16, 3, 1, 1), cfg,
                      Objective::Performance, kBudget);
  EXPECT_EQ(session.stats().hits, 1);
  EXPECT_EQ(p1.layer.name, "first");
  EXPECT_EQ(p2.layer.name, "second");
  EXPECT_EQ(p1.encoded_stream(), p2.encoded_stream());
}

// Regression: concurrent compiles of one uncached key used to each run the
// full mapping search and each count a miss (while only one entry's bytes
// were accounted). Single-flight pins the invariant: one search, one miss,
// one entry — the other callers wait and are accounted as hits.
TEST(CompilerSession, ConcurrentSameLayerCompilesSingleFlight) {
  CompilerSession session(8);
  const arch::OverlayConfig cfg = arch::paper_config();

  constexpr int kThreads = 8;
  std::latch start(kThreads);
  std::vector<LayerProgram> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      start.arrive_and_wait();  // maximize the same-key collision window
      results[static_cast<std::size_t>(t)] =
          session.compile(nn::make_conv("same-" + std::to_string(t), 8, 16,
                                        16, 16, 3, 1, 1),
                          cfg, Objective::Performance, kBudget);
    });
  }
  for (std::thread& th : threads) th.join();

  const SessionStats stats = session.stats();
  EXPECT_EQ(stats.misses, 1) << "the mapping search must run exactly once";
  EXPECT_EQ(stats.hits, kThreads - 1);
  EXPECT_EQ(stats.entries, 1);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[0].encoded_stream(),
              results[static_cast<std::size_t>(t)].encoded_stream());
  }
}

TEST(CompilerSession, ClearCacheDropsProgramsButKeepsTraffic) {
  CompilerSession session(1);
  const arch::OverlayConfig cfg = arch::paper_config();
  session.compile(nn::make_conv("c", 8, 16, 16, 16, 3, 1, 1), cfg,
                  Objective::Performance, kBudget);
  ASSERT_EQ(session.stats().entries, 1);
  session.clear_cache();
  EXPECT_EQ(session.stats().entries, 0);
  EXPECT_EQ(session.stats().program_bytes, 0);
  EXPECT_EQ(session.stats().misses, 1);  // cumulative traffic is kept
  session.compile(nn::make_conv("c", 8, 16, 16, 16, 3, 1, 1), cfg,
                  Objective::Performance, kBudget);
  EXPECT_EQ(session.stats().misses, 2);  // recompiled after the clear
}

TEST(CompilerSession, ObsCountersAndWorkerTracksStayConsistent) {
  obs::Registry& reg = obs::Registry::global();
  obs::set_enabled(true);
  reg.reset();

  const nn::Network net = mixed_net();
  CompilerSession session(4);
  session.schedule(net, arch::paper_config(), Objective::Performance, kBudget);

  EXPECT_EQ(reg.counter("session/cache_misses"), 4);
  EXPECT_EQ(reg.counter("session/cache_hits"), 1);
  EXPECT_EQ(reg.counter("compiler/schedule_cache_hits"), 1);
  EXPECT_GT(reg.counter("session/cache_bytes"), 0);
  EXPECT_EQ(reg.counter("compiler/networks_scheduled"), 1);

  // Every track's spans must be balanced with monotonic timestamps, even
  // with compile tasks running on pool workers.
  std::map<std::uint32_t, std::vector<const obs::TraceEvent*>> by_track;
  for (const obs::TraceEvent& e : reg.events()) {
    by_track[e.pid * 1000 + e.tid].push_back(&e);
  }
  for (const auto& [track, events] : by_track) {
    int depth = 0;
    double last_ts = -1.0;
    for (const obs::TraceEvent* e : events) {
      EXPECT_GE(e->ts, last_ts) << "track " << track;
      last_ts = e->ts;
      depth += e->ph == 'B' ? 1 : -1;
      EXPECT_GE(depth, 0) << "track " << track;
    }
    EXPECT_EQ(depth, 0) << "track " << track;
  }

  obs::set_enabled(false);
  reg.reset();
}

TEST(SchedulerFreeFunctions, DelegateToTheGlobalSession) {
  // The free functions must share CompilerSession::global()'s cache: a
  // second identical call compiles nothing new.
  const nn::Network net = mixed_net();
  const arch::OverlayConfig cfg = arch::paper_config();
  const NetworkSchedule first =
      schedule_network(net, cfg, Objective::Performance, kBudget);
  const std::int64_t misses = CompilerSession::global().stats().misses;
  const NetworkSchedule second =
      schedule_network(net, cfg, Objective::Performance, kBudget);
  EXPECT_EQ(CompilerSession::global().stats().misses, misses);
  expect_identical(first, second);
}

}  // namespace
}  // namespace ftdl::compiler
