// Tests for the C API surface.
#include <gtest/gtest.h>

#include <cstring>

#include "capi/ftdl_c.h"

namespace {

TEST(CApi, VersionString) {
  ASSERT_NE(ftdl_version(), nullptr);
  EXPECT_NE(std::strstr(ftdl_version(), "ftdl"), nullptr);
}

TEST(CApi, CreateEvaluateDestroy) {
  char err[256] = {0};
  ftdl_framework* fw =
      ftdl_framework_create("xcvu125", 0, 0, 0, 0.0, err, sizeof err);
  ASSERT_NE(fw, nullptr) << err;
  EXPECT_GT(ftdl_fmax_mhz(fw), 650.0);

  ftdl_report report{};
  ASSERT_EQ(ftdl_evaluate_model(fw, "Sentimental-seqCNN", 3000, &report, err,
                                sizeof err), 0)
      << err;
  EXPECT_GT(report.fps, 0.0);
  EXPECT_GT(report.hardware_efficiency, 0.0);
  EXPECT_LE(report.hardware_efficiency, 1.0);
  EXPECT_GT(report.power_watts, 0.0);
  EXPECT_GT(report.overlay_layers, 0);
  ftdl_framework_destroy(fw);
}

TEST(CApi, EvaluateSpecString) {
  char err[256] = {0};
  ftdl_framework* fw =
      ftdl_framework_create("xcvu125", 12, 5, 20, 650.0, err, sizeof err);
  ASSERT_NE(fw, nullptr) << err;

  const char* spec = R"(
network capi_toy
input 3 32 32
conv c1 out=16 k=3 pad=1
pool p1 k=2
fc f1 out=10
)";
  ftdl_report report{};
  ASSERT_EQ(ftdl_evaluate_spec(fw, spec, 3000, &report, err, sizeof err), 0)
      << err;
  EXPECT_EQ(report.overlay_layers, 2);
  EXPECT_GT(report.fps, 0.0);
  ftdl_framework_destroy(fw);
}

TEST(CApi, ErrorsAreReportedNotThrown) {
  char err[256] = {0};
  // Unknown device.
  EXPECT_EQ(ftdl_framework_create("xc_bogus", 0, 0, 0, 0.0, err, sizeof err),
            nullptr);
  EXPECT_NE(std::strlen(err), 0u);

  ftdl_framework* fw =
      ftdl_framework_create("xcvu125", 0, 0, 0, 0.0, err, sizeof err);
  ASSERT_NE(fw, nullptr);
  ftdl_report report{};
  // Unknown model.
  err[0] = '\0';
  EXPECT_EQ(ftdl_evaluate_model(fw, "VGG16", 1000, &report, err, sizeof err),
            -1);
  EXPECT_NE(std::strstr(err, "unknown model"), nullptr);
  // Malformed spec.
  err[0] = '\0';
  EXPECT_EQ(ftdl_evaluate_spec(fw, "garbage", 1000, &report, err, sizeof err),
            -1);
  EXPECT_NE(std::strlen(err), 0u);
  // Null arguments.
  EXPECT_EQ(ftdl_evaluate_model(nullptr, "GoogLeNet", 1, &report, err,
                                sizeof err), -1);
  ftdl_framework_destroy(fw);
  ftdl_framework_destroy(nullptr);  // must be safe
}

TEST(CApi, OverlayThatDoesNotFitFailsCleanly) {
  char err[256] = {0};
  EXPECT_EQ(ftdl_framework_create("xc7z020", 12, 5, 20, 650.0, err, sizeof err),
            nullptr);
  EXPECT_NE(std::strlen(err), 0u);
}

}  // namespace
