// Unit tests for the FPGA device model and double-pump clocking.
#include <gtest/gtest.h>

#include "common/error.h"
#include "fpga/clocking.h"
#include "fpga/device_zoo.h"

namespace ftdl::fpga {
namespace {

TEST(DeviceZoo, PaperDevicesHavePaperResourceCounts) {
  const Device v7 = virtex7_vx330t();
  EXPECT_EQ(v7.total_dsp(), 1120);   // xc7vx330t
  EXPECT_EQ(v7.total_bram18(), 1500);
  EXPECT_EQ(v7.family, Family::Virtex7);

  const Device vu = ultrascale_vu125();
  EXPECT_EQ(vu.total_dsp(), 1200);   // Table II: 1200 DSPs -> 1200 TPEs
  EXPECT_EQ(vu.family, Family::UltraScale);
}

TEST(DeviceZoo, AllDevicesValidate) {
  for (const auto& name : device_names()) {
    const Device d = device_by_name(name);
    EXPECT_NO_THROW(d.validate()) << name;
    EXPECT_GT(d.total_dsp(), 0) << name;
    EXPECT_LE(d.dsp_per_column, 240) << name;  // paper: 20..240 per column
    EXPECT_GE(d.dsp_per_column, 20) << name;
  }
}

TEST(DeviceZoo, UnknownDeviceThrows) {
  EXPECT_THROW(device_by_name("xc_nonexistent"), ConfigError);
}

TEST(Device, GeometryIsOnDie) {
  const Device d = ultrascale_vu125();
  for (int c = 0; c < d.dsp_columns; ++c) {
    const double x = d.dsp_col_x_um(c);
    EXPECT_GT(x, 0.0);
    EXPECT_LT(x, d.die_width_um());
  }
  const Point p = d.dsp_site(3, 7);
  EXPECT_GT(p.y_um, 0.0);
  EXPECT_LT(p.y_um, d.die_height_um());
}

TEST(Device, DspColumnsMonotoneInX) {
  const Device d = virtex7_vx330t();
  for (int c = 1; c < d.dsp_columns; ++c) {
    EXPECT_LT(d.dsp_col_x_um(c - 1), d.dsp_col_x_um(c));
  }
}

TEST(Device, NearestBramColumnIsActuallyNearest) {
  const Device d = virtex7_vx330t();
  for (int c = 0; c < d.dsp_columns; ++c) {
    const int best = d.nearest_bram_column(c);
    const double x = d.dsp_col_x_um(c);
    const double best_d = std::abs(d.bram_col_x_um(best) - x);
    for (int j = 0; j < d.bram18_columns; ++j) {
      EXPECT_LE(best_d, std::abs(d.bram_col_x_um(j) - x) + 1e-9);
    }
  }
}

TEST(Device, ManhattanDistance) {
  EXPECT_DOUBLE_EQ(manhattan_um({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(manhattan_um({-1, 2}, {1, -2}), 6.0);
}

TEST(Device, ValidateRejectsBadConfigs) {
  Device d = virtex7_vx330t();
  d.dsp_per_column = 0;
  EXPECT_THROW(d.validate(), ConfigError);

  d = virtex7_vx330t();
  d.dsp_per_column = 300;  // taller than any real device
  EXPECT_THROW(d.validate(), ConfigError);

  d = virtex7_vx330t();
  d.col_pitch_um = -1.0;
  EXPECT_THROW(d.validate(), ConfigError);
}

TEST(Clocking, DatasheetLimits) {
  const PrimitiveTiming t{740e6, 528e6, 740e6};
  // CLKh bounded by DSP (740) since 2 x BRAM = 1056 is higher.
  EXPECT_DOUBLE_EQ(datasheet_clk_h_limit(t), 740e6);
  // Single-clock design collapses to the BRAM ceiling.
  EXPECT_DOUBLE_EQ(single_clock_limit(t), 528e6);

  // A slow-BRAM part where the BRAM side binds CLKh.
  const PrimitiveTiming slow{740e6, 300e6, 740e6};
  EXPECT_DOUBLE_EQ(datasheet_clk_h_limit(slow), 600e6);
}

TEST(Clocking, ValidatePair) {
  const PrimitiveTiming t{740e6, 528e6, 740e6};
  EXPECT_NO_THROW(validate_clock_pair(ClockPair::from_high(650e6), t));
  // CLKh above DSP fmax.
  EXPECT_THROW(validate_clock_pair(ClockPair::from_high(800e6), t), ConfigError);
  // CLKl above BRAM fmax (CLKh = 1.2 GHz -> CLKl = 600 MHz > 528).
  EXPECT_THROW(validate_clock_pair(ClockPair::from_high(1.2e9), t), ConfigError);
  // Non-2x relationship.
  EXPECT_THROW(validate_clock_pair(ClockPair{300e6, 650e6}, t), ConfigError);
}

}  // namespace
}  // namespace ftdl::fpga
