// Cross-cutting property sweeps: for randomized layers and overlay shapes,
// the whole pipeline (search -> analytical model -> codegen -> cycle-level
// simulation) must uphold its invariants.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compiler/adjacency.h"
#include "compiler/codegen.h"
#include "nn/reference.h"
#include "sim/ftdl_sim.h"

namespace ftdl {
namespace {

using compiler::HwLevel;
using compiler::Objective;
using compiler::Workload;

/// Deterministic pseudo-random overlay shapes that always validate.
arch::OverlayConfig random_config(Rng& rng) {
  arch::OverlayConfig c;
  c.d1 = static_cast<int>(rng.uniform(2, 8));
  c.d2 = static_cast<int>(rng.uniform(1, 4));
  c.d3 = static_cast<int>(rng.uniform(1, 5));
  c.actbuf_words = 64 << rng.uniform(0, 2);   // 64/128/256
  c.psumbuf_words = 1024 << rng.uniform(0, 2);
  c.validate();
  return c;
}

nn::Layer random_conv(Rng& rng, int idx) {
  const int in_c = static_cast<int>(rng.uniform(1, 12));
  const int hw = static_cast<int>(rng.uniform(4, 14));
  const int out_c = static_cast<int>(rng.uniform(1, 16));
  const int k = static_cast<int>(rng.uniform(1, std::min(hw, 5)));
  const int stride = static_cast<int>(rng.uniform(1, 2));
  const int pad = static_cast<int>(rng.uniform(0, k / 2));
  return nn::make_conv("prop_conv_" + std::to_string(idx), in_c, hw, hw, out_c,
                       k, stride, pad);
}

nn::Layer random_mm(Rng& rng, int idx) {
  return nn::make_matmul("prop_mm_" + std::to_string(idx),
                         rng.uniform(1, 96), rng.uniform(1, 64),
                         rng.uniform(1, 24));
}

class PropertySweep : public ::testing::TestWithParam<int> {};

TEST_P(PropertySweep, PipelineInvariantsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  const arch::OverlayConfig cfg = random_config(rng);
  const bool conv = rng.uniform01() < 0.6;
  const nn::Layer layer =
      conv ? random_conv(rng, GetParam()) : random_mm(rng, GetParam());

  const compiler::LayerProgram prog = compiler::compile_layer(
      layer, cfg, Objective::Performance, 4'000);
  const Workload& w = prog.workload;
  const auto& perf = prog.perf;
  const auto& m = prog.mapping;

  // --- compiler invariants ---------------------------------------------------
  EXPECT_TRUE(compiler::satisfies_adjacency(m, w));
  EXPECT_TRUE(
      compiler::satisfies_logical_constraints(m, w, cfg.d1, cfg.d2, cfg.d3));
  EXPECT_TRUE(perf.feasible);
  EXPECT_GT(perf.e_wbuf, 0.0);
  EXPECT_LE(perf.e_wbuf, 1.0 + 1e-9);
  EXPECT_LE(perf.buffers.actbuf_words_per_tpe, cfg.actbuf_usable());
  EXPECT_LE(perf.buffers.wbuf_words_per_tpe, cfg.wbuf_words);
  EXPECT_LE(perf.buffers.psum_words_per_superblock, cfg.psumbuf_usable());
  // Eqn. 12 really is the max of its channels.
  EXPECT_EQ(perf.c_exe, std::max({perf.c_comp, perf.c_act_bus, perf.c_psum_bus,
                                  perf.c_dram_rd, perf.c_dram_wr}));
  // Eqn. 7 lower bound: padded work / array size.
  EXPECT_GE(perf.c_comp * cfg.tpes(), w.macs());

  // --- functional + timing cross-check on the simulator ----------------------
  Rng data_rng(static_cast<std::uint64_t>(GetParam()) + 5);
  nn::Tensor16 weights, input;
  nn::AccTensor expected;
  if (conv) {
    const nn::Layer& part = nn::LayerKind::Conv == prog.layer.kind
                                ? prog.layer
                                : layer;
    input = nn::Tensor16({part.in_c, part.in_h, part.in_w});
    weights = nn::Tensor16({part.out_c, part.in_c, part.kh, part.kw});
    input.fill_random(data_rng);
    weights.fill_random(data_rng);
    expected = nn::conv2d_reference(part, input, weights);
  } else {
    input = nn::Tensor16({static_cast<int>(layer.mm_m),
                          static_cast<int>(layer.mm_p)});
    weights = nn::Tensor16({static_cast<int>(layer.mm_n),
                            static_cast<int>(layer.mm_m)});
    input.fill_random(data_rng);
    weights.fill_random(data_rng);
    expected = nn::matmul_reference(layer, input, weights);
  }
  if (prog.weight_groups != 1) return;  // stitching covered in test_runtime

  const sim::SimResult r = sim::simulate_layer(prog, cfg, weights, input);
  EXPECT_EQ(r.output, expected) << m.to_string(w);
  // The simulated schedule is never faster than the analytical bound and
  // stays within a modest envelope above it.
  EXPECT_GE(r.stats.cycles, perf.c_comp * 9 / 10);
  // Upper bound: the simulated per-iteration max() can at worst sum the
  // channels the analytical model takes the max over.
  EXPECT_LE(r.stats.cycles,
            perf.c_comp + perf.c_act_bus + perf.c_psum_bus +
                std::max(perf.c_dram_rd, perf.c_dram_wr) +
                2 * cfg.pipeline_latency() * perf.x + 64);
  EXPECT_EQ(r.stats.padded_maccs, m.padded_macs());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PropertySweep, ::testing::Range(0, 24));

}  // namespace
}  // namespace ftdl
