// ProgramStore tests: the persistent content-addressed tier must round-trip
// programs byte-exactly, never trust a damaged entry (truncated, corrupted,
// wrong version, wrong config → evict and recompile), publish atomically
// under concurrent multi-session writers, and keep the session's determinism
// guarantee — warm-disk schedules bit-identical for any jobs value.
#include <unistd.h>

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "compiler/program_store.h"
#include "compiler/session.h"
#include "nn/model_zoo.h"

namespace ftdl::compiler {
namespace {

namespace fs = std::filesystem;

constexpr std::int64_t kBudget = 3'000;

/// Unique scratch directory per test, removed on scope exit (ctest runs
/// these binaries in parallel, so a fixed path would collide).
struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "ftdl_store_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    if (mkdtemp(buf.data()) == nullptr) throw Error("mkdtemp failed");
    path = buf.data();
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

nn::Layer small_conv() { return nn::make_conv("c", 8, 16, 16, 16, 3, 1, 1); }

/// Same network as test_session's fixture: every overlay kind, one repeated
/// shape.
nn::Network mixed_net() {
  nn::Network net("store-mix");
  net.add(nn::make_conv("conv1", 8, 16, 16, 16, 3, 1, 1));
  net.add(nn::make_conv("conv2", 16, 16, 16, 16, 3, 1, 1));
  net.add(nn::make_conv("conv3", 16, 16, 16, 16, 3, 1, 1));  // repeats conv2
  net.add(nn::make_conv("reduce", 16, 16, 16, 8, 1, 1, 0));
  net.add(nn::make_matmul("fc", 2048, 64, 1));
  return net;
}

void expect_identical(const NetworkSchedule& a, const NetworkSchedule& b) {
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.hardware_efficiency, b.hardware_efficiency);  // bit-exact
  EXPECT_EQ(a.mean_e_wbuf, b.mean_e_wbuf);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].layer.name, b.layers[i].layer.name);
    EXPECT_EQ(a.layers[i].weight_groups, b.layers[i].weight_groups);
    EXPECT_EQ(a.layers[i].encoded_stream(), b.layers[i].encoded_stream());
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string s((std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
  return s;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

TEST(ProgramStore, RoundTripsAProgramByteExactly) {
  TempDir dir;
  ProgramStore store(dir.path);
  const arch::OverlayConfig cfg = arch::paper_config();
  const nn::Layer layer = small_conv();
  const std::uint64_t key = program_cache_key(
      Workload::from_layer(layer), cfg, Objective::Performance, kBudget);

  const LayerProgram prog =
      compile_layer(layer, cfg, Objective::Performance, kBudget);
  store.put(key, cfg, prog);
  EXPECT_EQ(store.entry_count(), 1);
  EXPECT_TRUE(fs::exists(store.entry_path(key)));

  const auto loaded = store.load(key, cfg);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(serialize_program(*loaded), serialize_program(prog));

  const StoreStats st = store.stats();
  EXPECT_EQ(st.hits, 1);
  EXPECT_EQ(st.misses, 0);
  EXPECT_EQ(st.evictions, 0);
  EXPECT_GT(st.bytes_written, 0);
  EXPECT_GT(st.bytes_read, 0);
}

TEST(ProgramStore, MissingEntryIsAMiss) {
  TempDir dir;
  ProgramStore store(dir.path);
  EXPECT_FALSE(store.load(0xdeadbeef, arch::paper_config()).has_value());
  EXPECT_EQ(store.stats().misses, 1);
  EXPECT_EQ(store.stats().evictions, 0);
}

TEST(ProgramStore, ThrowsWhenDirectoryCannotBeCreated) {
  // /proc/self/cmdline is a file, so nothing can be created under it.
  EXPECT_THROW(ProgramStore("/proc/self/cmdline/sub"), Error);
}

class ProgramStoreDamage : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_ = arch::paper_config();
    const nn::Layer layer = small_conv();
    key_ = program_cache_key(Workload::from_layer(layer), cfg_,
                             Objective::Performance, kBudget);
    store_ = std::make_unique<ProgramStore>(dir_.path);
    store_->put(key_, cfg_,
                compile_layer(layer, cfg_, Objective::Performance, kBudget));
    entry_ = store_->entry_path(key_);
  }

  /// The damaged entry must never be returned: the load misses, the file is
  /// evicted, and a subsequent put + load works again.
  void expect_evicted() {
    EXPECT_FALSE(store_->load(key_, cfg_).has_value());
    EXPECT_EQ(store_->stats().evictions, 1);
    EXPECT_FALSE(fs::exists(entry_)) << "evicted entry must be removed";
  }

  TempDir dir_;
  arch::OverlayConfig cfg_;
  std::uint64_t key_ = 0;
  std::unique_ptr<ProgramStore> store_;
  std::string entry_;
};

TEST_F(ProgramStoreDamage, TruncatedEntryIsEvicted) {
  const std::string text = read_file(entry_);
  write_file(entry_, text.substr(0, text.size() / 2));
  expect_evicted();
}

TEST_F(ProgramStoreDamage, CorruptedPayloadByteIsEvicted) {
  std::string text = read_file(entry_);
  text[text.size() / 2] ^= 0x20;  // flip a payload bit, length unchanged
  write_file(entry_, text);
  expect_evicted();
}

TEST_F(ProgramStoreDamage, WrongStoreVersionIsEvicted) {
  std::string text = read_file(entry_);
  const std::string v1 = "ftdl-store v1 ";
  ASSERT_EQ(text.rfind(v1, 0), 0u);
  text.replace(0, v1.size(), "ftdl-store v9 ");
  write_file(entry_, text);
  expect_evicted();
}

TEST_F(ProgramStoreDamage, ConfigMismatchIsEvicted) {
  // Same key on disk, but the probing process runs a different overlay: the
  // header's config digest disagrees and the entry must not be trusted.
  arch::OverlayConfig other = cfg_;
  other.actbuf_words *= 2;
  EXPECT_FALSE(store_->load(key_, other).has_value());
  EXPECT_EQ(store_->stats().evictions, 1);
}

TEST_F(ProgramStoreDamage, TamperedPayloadFailsRevalidationAndIsEvicted) {
  // A consistently re-framed entry (valid header, footer recomputed over the
  // tampered payload) passes every integrity check — only the semantic
  // re-validation inside deserialize_program (analytical-model re-evaluation
  // against the stored check.c_exe) can catch it.
  std::string payload = serialize_program(
      compile_layer(small_conv(), cfg_, Objective::Performance, kBudget));
  const std::size_t pos = payload.find("check.c_exe=");
  ASSERT_NE(pos, std::string::npos);
  payload.insert(pos + std::string("check.c_exe=").size(), "9");
  const std::string text = read_file(entry_);
  const std::size_t header_end = text.find('\n');
  Hash64 h;
  h.bytes(payload.data(), payload.size());
  char footer[128];
  std::snprintf(footer, sizeof(footer), "footer bytes=%llu checksum=%016llx\n",
                static_cast<unsigned long long>(payload.size()),
                static_cast<unsigned long long>(h.digest()));
  write_file(entry_, text.substr(0, header_end + 1) + payload + footer);
  expect_evicted();
}

TEST(ProgramStoreSession, WriteThroughThenWarmStartsAFreshSession) {
  TempDir dir;
  const nn::Network net = mixed_net();
  const arch::OverlayConfig cfg = arch::paper_config();

  // Golden: no store anywhere near it.
  CompilerSession golden_session(2);
  const NetworkSchedule golden =
      golden_session.schedule(net, cfg, Objective::Performance, kBudget);

  CompilerSession writer(2);
  writer.set_store(std::make_shared<ProgramStore>(dir.path));
  writer.schedule(net, cfg, Objective::Performance, kBudget);
  const SessionStats ws = writer.stats();
  EXPECT_EQ(ws.misses, 4);            // distinct shapes compiled
  EXPECT_EQ(ws.disk_misses, 4);       // all probed the empty store first
  EXPECT_EQ(ws.disk_hits, 0);
  EXPECT_GT(ws.disk_bytes, 0);        // written through
  EXPECT_EQ(writer.store()->entry_count(), 4);

  // A fresh session (fresh memory cache, own store instance on the same
  // directory — the cross-process situation) compiles nothing.
  CompilerSession reader(2);
  reader.set_store(std::make_shared<ProgramStore>(dir.path));
  const NetworkSchedule warm =
      reader.schedule(net, cfg, Objective::Performance, kBudget);
  const SessionStats rs = reader.stats();
  EXPECT_EQ(rs.misses, 0) << "warm disk must not recompile";
  EXPECT_EQ(rs.disk_hits, 4);
  EXPECT_EQ(rs.disk_evictions, 0);
  expect_identical(golden, warm);
}

TEST(ProgramStoreSession, WarmDiskIsBitIdenticalAcrossJobs) {
  TempDir dir;
  const nn::Network net = mixed_net();
  const arch::OverlayConfig cfg = arch::paper_config();

  CompilerSession writer(2);
  writer.set_store(std::make_shared<ProgramStore>(dir.path));
  const NetworkSchedule golden =
      writer.schedule(net, cfg, Objective::Performance, kBudget);

  CompilerSession serial(1);
  serial.set_store(std::make_shared<ProgramStore>(dir.path));
  CompilerSession threaded(8);
  threaded.set_store(std::make_shared<ProgramStore>(dir.path));
  const NetworkSchedule warm1 =
      serial.schedule(net, cfg, Objective::Performance, kBudget);
  const NetworkSchedule warm8 =
      threaded.schedule(net, cfg, Objective::Performance, kBudget);
  EXPECT_EQ(serial.stats().misses, 0);
  EXPECT_EQ(threaded.stats().misses, 0);
  expect_identical(golden, warm1);
  expect_identical(golden, warm8);
}

TEST(ProgramStoreSession, CorruptedEntryIsRecompiledNotTrusted) {
  TempDir dir;
  const nn::Network net = mixed_net();
  const arch::OverlayConfig cfg = arch::paper_config();

  CompilerSession writer(2);
  writer.set_store(std::make_shared<ProgramStore>(dir.path));
  const NetworkSchedule golden =
      writer.schedule(net, cfg, Objective::Performance, kBudget);

  // Damage every entry in the directory.
  for (const auto& e : fs::directory_iterator(dir.path)) {
    std::string text = read_file(e.path().string());
    write_file(e.path().string(), text.substr(0, text.size() / 3));
  }

  CompilerSession reader(2);
  reader.set_store(std::make_shared<ProgramStore>(dir.path));
  const NetworkSchedule recompiled =
      reader.schedule(net, cfg, Objective::Performance, kBudget);
  const SessionStats rs = reader.stats();
  EXPECT_EQ(rs.disk_hits, 0);
  EXPECT_EQ(rs.disk_evictions, 4);
  EXPECT_EQ(rs.misses, 4) << "every damaged entry must recompile";
  expect_identical(golden, recompiled);  // never a wrong schedule

  // The recompiles wrote fresh entries; a third session warm-starts again.
  CompilerSession third(2);
  third.set_store(std::make_shared<ProgramStore>(dir.path));
  third.schedule(net, cfg, Objective::Performance, kBudget);
  EXPECT_EQ(third.stats().misses, 0);
  EXPECT_EQ(third.stats().disk_hits, 4);
}

TEST(ProgramStoreSession, ConcurrentMultiSessionWritersPublishCleanEntries) {
  TempDir dir;
  const nn::Network net = mixed_net();
  const arch::OverlayConfig cfg = arch::paper_config();

  // Several sessions, each with its own store instance on one directory,
  // schedule the same network at once — the worst-case publication race.
  constexpr int kSessions = 4;
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&dir, &net, &cfg] {
      CompilerSession s(2);
      s.set_store(std::make_shared<ProgramStore>(dir.path));
      s.schedule(net, cfg, Objective::Performance, kBudget);
    });
  }
  for (std::thread& t : threads) t.join();

  // No temp files left visible, and every entry loads clean.
  ProgramStore store(dir.path);
  EXPECT_EQ(store.entry_count(), 4);
  for (const auto& e : fs::directory_iterator(dir.path)) {
    EXPECT_EQ(e.path().extension(), ".ftdlprog")
        << "stray file: " << e.path();
  }
  CompilerSession reader(2);
  reader.set_store(std::make_shared<ProgramStore>(dir.path));
  reader.schedule(net, cfg, Objective::Performance, kBudget);
  EXPECT_EQ(reader.stats().misses, 0);
  EXPECT_EQ(reader.stats().disk_evictions, 0);
}

TEST(ProgramStoreResolve, FlagBeatsEnvBeatsEmpty) {
  ASSERT_EQ(unsetenv("FTDL_CACHE_DIR"), 0);
  EXPECT_EQ(resolve_cache_dir(""), "");
  EXPECT_EQ(resolve_cache_dir("/a"), "/a");
  ASSERT_EQ(setenv("FTDL_CACHE_DIR", "/from-env", 1), 0);
  EXPECT_EQ(resolve_cache_dir(""), "/from-env");
  EXPECT_EQ(resolve_cache_dir("/flag"), "/flag");
  ASSERT_EQ(unsetenv("FTDL_CACHE_DIR"), 0);
}

}  // namespace
}  // namespace ftdl::compiler
