// Tests for the Winograd F(2x2, 3x3) extension.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "nn/reference.h"
#include "winograd/winograd.h"

namespace ftdl::winograd {
namespace {

nn::AccTensor direct(const nn::Layer& l, const nn::Tensor16& in,
                     const nn::Tensor16& w) {
  return nn::conv2d_reference(l, in, w);
}

TEST(Winograd, Eligibility) {
  EXPECT_TRUE(is_winograd_eligible(nn::make_conv("c", 8, 8, 8, 8, 3, 1, 1)));
  EXPECT_FALSE(is_winograd_eligible(nn::make_conv("c", 8, 8, 8, 8, 3, 2, 1)));
  EXPECT_FALSE(is_winograd_eligible(nn::make_conv("c", 8, 8, 8, 8, 5, 1, 2)));
  EXPECT_FALSE(is_winograd_eligible(nn::make_conv("c", 8, 8, 8, 8, 1, 1, 0)));
  EXPECT_FALSE(is_winograd_eligible(nn::make_matmul("m", 8, 8, 8)));
  EXPECT_THROW(plan_winograd(nn::make_conv("c", 8, 8, 8, 8, 5, 1, 2)),
               ConfigError);
}

TEST(Winograd, BitExactAgainstDirectConv) {
  // Even and odd output extents, with and without padding.
  for (auto layer : {nn::make_conv("a", 4, 8, 8, 6, 3, 1, 1),    // even out
                     nn::make_conv("b", 3, 9, 9, 5, 3, 1, 1),    // odd out
                     nn::make_conv("c", 5, 10, 10, 4, 3, 1, 0),  // no pad
                     nn::make_conv("d", 2, 7, 11, 3, 3, 1, 1)}) {
    Rng rng(layer.in_c * 97 + layer.out_c);
    nn::Tensor16 in({layer.in_c, layer.in_h, layer.in_w});
    nn::Tensor16 w({layer.out_c, layer.in_c, 3, 3});
    in.fill_random(rng, 63);
    w.fill_random(rng, 63);
    EXPECT_EQ(winograd_conv(layer, in, w), direct(layer, in, w)) << layer.name;
  }
}

TEST(Winograd, ExactWithFullRangeValues) {
  // Extreme int16 values stress the scaled-transform arithmetic.
  const nn::Layer layer = nn::make_conv("x", 2, 6, 6, 2, 3, 1, 1);
  nn::Tensor16 in({2, 6, 6});
  nn::Tensor16 w({2, 2, 3, 3});
  Rng rng(1);
  for (std::int64_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<std::int16_t>(rng.uniform(-32768, 32767));
  }
  for (std::int64_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<std::int16_t>(rng.uniform(-32768, 32767));
  }
  EXPECT_EQ(winograd_conv(layer, in, w), direct(layer, in, w));
}

TEST(Winograd, PlanAccounting) {
  // 56x56 output: 28x28 tiles of 2x2.
  const nn::Layer layer = nn::make_conv("conv2", 64, 56, 56, 192, 3, 1, 1);
  const WinogradPlan plan = plan_winograd(layer);
  EXPECT_EQ(plan.num_mms, 16);
  EXPECT_EQ(plan.mm.mm_m, 64);
  EXPECT_EQ(plan.mm.mm_n, 192);
  EXPECT_EQ(plan.mm.mm_p, 28 * 28);
  EXPECT_EQ(plan.direct_macs, layer.macs());
  EXPECT_EQ(plan.winograd_macs, 16LL * 64 * 192 * 28 * 28);
  // 36C -> 16C multiplies per tile: exactly 2.25x for even extents.
  EXPECT_NEAR(plan.mac_reduction(), 2.25, 1e-9);
  EXPECT_GT(plan.transform_ewop_ops, 0);
}

TEST(Winograd, ScheduleComparisonOnOverlay) {
  const nn::Layer layer = nn::make_conv("conv", 64, 28, 28, 96, 3, 1, 1);
  const auto cmp = compare_schedules(layer, arch::paper_config(), 10'000);
  EXPECT_GT(cmp.direct_cycles, 0);
  EXPECT_GT(cmp.winograd_cycles, 0);
  // The transformed domain must realize a good share of the 2.25x MAC cut.
  EXPECT_GT(cmp.speedup(), 1.2);
  EXPECT_LT(cmp.speedup(), 2.5);
}

TEST(Winograd, InputLayoutChecked) {
  const nn::Layer layer = nn::make_conv("c", 4, 8, 8, 4, 3, 1, 1);
  nn::Tensor16 bad_in({3, 8, 8});
  nn::Tensor16 w({4, 4, 3, 3});
  EXPECT_THROW(winograd_conv(layer, bad_in, w), ConfigError);
}

}  // namespace
}  // namespace ftdl::winograd
