// Tests for ftdl::verify — golden streams from compile_layer must pass,
// and every check class must fire on a targeted mutation of one.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "compiler/program_verify.h"
#include "nn/model_zoo.h"
#include "verify/verifier.h"

namespace ftdl {
namespace {

using arch::Instruction;
using arch::InstStream;
using arch::Opcode;
using arch::TemporalLevel;
using compiler::LayerProgram;
using verify::Check;
using verify::Severity;
using verify::StreamExpectation;
using verify::VerifyResult;

arch::OverlayConfig cfg() { return arch::paper_config(); }

LayerProgram compile(const nn::Layer& layer) {
  return compiler::compile_layer(layer, cfg(),
                                 compiler::Objective::Performance, 5'000);
}

bool fires(const VerifyResult& r, Check check) {
  return std::any_of(r.diagnostics.begin(), r.diagnostics.end(),
                     [&](const verify::Diagnostic& d) { return d.check == check; });
}

int index_of(const InstStream& s, Opcode op, std::uint8_t field = 0) {
  for (int i = 0; i < static_cast<int>(s.size()); ++i) {
    const Instruction& inst = s[static_cast<std::size_t>(i)];
    if (inst.op == op && (op != Opcode::SetLoop || inst.field == field)) {
      return i;
    }
  }
  ADD_FAILURE() << "stream lacks opcode " << arch::to_string(op);
  return -1;
}

/// The golden program most mutation tests start from.
LayerProgram golden() {
  return compile(nn::make_conv("v_conv", 64, 14, 14, 96, 3, 1, 1));
}

// ---- golden streams ---------------------------------------------------------

TEST(Verify, GoldenConvStreamIsClean) {
  const LayerProgram p = golden();
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.errors(), 0);
  EXPECT_EQ(r.warnings(), 0) << r.to_string();
  EXPECT_TRUE(r.state.launched);
}

TEST(Verify, GoldenMatMulStreamIsClean) {
  const LayerProgram p = compile(nn::make_matmul("v_fc", 512, 1000, 1));
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(Verify, GoldenDepthwiseStreamIsClean) {
  const LayerProgram p = compile(nn::make_depthwise("v_dw", 64, 14, 14, 3, 1, 1));
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(Verify, GoldenWeightGroupedStreamIsClean) {
  const LayerProgram p = compile(nn::make_matmul("v_big_fc", 2048, 4096, 2));
  ASSERT_GT(p.weight_groups, 1);
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(Verify, ModelZooStreamsAreClean) {
  // Every overlay layer of a Table-I network compiles to a verifiable
  // stream (the acceptance bar for ftdlc --verify / ftdl-lint).
  const nn::Network net = nn::alphago_zero();
  int verified = 0;
  for (const nn::Layer& layer : net.overlay_layers()) {
    const LayerProgram p =
        compiler::compile_layer(layer, cfg(),
                                compiler::Objective::Performance, 2'000);
    const VerifyResult r = compiler::verify_program(p, cfg());
    EXPECT_TRUE(r.ok()) << layer.name << ":\n" << r.to_string();
    ++verified;
  }
  EXPECT_GT(verified, 0);
}

TEST(Verify, EncodedRoundTripStaysClean) {
  const LayerProgram p = golden();
  const StreamExpectation e = compiler::stream_expectation(
      p.workload, p.mapping, p.perf, p.weight_groups);
  const VerifyResult r = verify::verify_words(p.encoded_stream(), cfg(), &e);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

// ---- structural mutations ---------------------------------------------------

TEST(Verify, DroppedLaunchFires) {
  LayerProgram p = golden();
  p.row_stream.erase(p.row_stream.begin() + index_of(p.row_stream, Opcode::Launch));
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::MissingLaunch)) << r.to_string();
}

TEST(Verify, DroppedBarrierFires) {
  LayerProgram p = golden();
  p.row_stream.erase(p.row_stream.begin() +
                     index_of(p.row_stream, Opcode::Barrier));
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(fires(r, Check::MissingBarrier)) << r.to_string();
}

TEST(Verify, ConfigReorderedAfterLaunchFires) {
  LayerProgram p = golden();
  const int launch = index_of(p.row_stream, Opcode::Launch);
  const int act = index_of(p.row_stream, Opcode::SetActTile);
  std::rotate(p.row_stream.begin() + act, p.row_stream.begin() + act + 1,
              p.row_stream.begin() + launch + 1);  // move SetActTile past Launch
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::ConfigAfterLaunch)) << r.to_string();
  // The register was unset when Launch read it.
  EXPECT_TRUE(fires(r, Check::IncompleteConfig)) << r.to_string();
}

TEST(Verify, DoubleLaunchFires) {
  LayerProgram p = golden();
  const int launch = index_of(p.row_stream, Opcode::Launch);
  p.row_stream.insert(p.row_stream.begin() + launch, arch::launch());
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(fires(r, Check::DoubleLaunch)) << r.to_string();
}

TEST(Verify, CodeAfterBarrierFires) {
  LayerProgram p = golden();
  p.row_stream.push_back(arch::launch());
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(fires(r, Check::CodeAfterBarrier)) << r.to_string();
}

TEST(Verify, IncompleteConfigFires) {
  // A hand-written stream that launches without tile configuration.
  const InstStream s = {arch::set_loop(TemporalLevel::X, 4), arch::launch(),
                        arch::barrier()};
  const VerifyResult r = verify::verify_stream(s, cfg());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::IncompleteConfig)) << r.to_string();
}

TEST(Verify, UnknownFieldFires) {
  LayerProgram p = golden();
  p.row_stream[static_cast<std::size_t>(
                   index_of(p.row_stream, Opcode::SetLoop,
                            static_cast<std::uint8_t>(TemporalLevel::X)))]
      .field = 7;
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(fires(r, Check::UnknownField)) << r.to_string();
}

TEST(Verify, UnknownOpcodeFires) {
  const std::vector<std::uint64_t> words = {std::uint64_t{0xFF} << 56};
  const VerifyResult r = verify::verify_words(words, cfg());
  EXPECT_TRUE(fires(r, Check::UnknownOpcode)) << r.to_string();
}

// ---- resource mutations -----------------------------------------------------

TEST(Verify, InflatedActTileFires) {
  LayerProgram p = golden();
  const int i = index_of(p.row_stream, Opcode::SetActTile);
  p.row_stream[static_cast<std::size_t>(i)].imm =
      static_cast<std::uint64_t>(cfg().actbuf_usable()) + 1;
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(fires(r, Check::ActBufOverflow)) << r.to_string();
}

TEST(Verify, InflatedPsumTileFires) {
  LayerProgram p = golden();
  const int i = index_of(p.row_stream, Opcode::SetPsumTile);
  p.row_stream[static_cast<std::size_t>(i)].imm =
      static_cast<std::uint64_t>(cfg().psumbuf_usable()) + 1;
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(fires(r, Check::PsumBufOverflow)) << r.to_string();
}

TEST(Verify, WeightBasePastWbufFires) {
  LayerProgram p = golden();
  const int i = index_of(p.row_stream, Opcode::SetWeightBase);
  p.row_stream[static_cast<std::size_t>(i)].imm =
      static_cast<std::uint64_t>(cfg().wbuf_words);
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(fires(r, Check::WbufOverflow)) << r.to_string();
}

TEST(Verify, ZeroTripFires) {
  LayerProgram p = golden();
  const int i = index_of(p.row_stream, Opcode::SetLoop,
                         static_cast<std::uint8_t>(TemporalLevel::T));
  p.row_stream[static_cast<std::size_t>(i)].imm = 0;
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(fires(r, Check::ZeroTrip)) << r.to_string();
}

TEST(Verify, ImmOverflowFires) {
  LayerProgram p = golden();
  const int i = index_of(p.row_stream, Opcode::SetActTile);
  p.row_stream[static_cast<std::size_t>(i)].imm = std::uint64_t{1} << 50;
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(fires(r, Check::ImmOverflow)) << r.to_string();
}

// ---- semantic mutations -----------------------------------------------------

TEST(Verify, InflatedTripCountFires) {
  LayerProgram p = golden();
  const int i = index_of(p.row_stream, Opcode::SetLoop,
                         static_cast<std::uint8_t>(TemporalLevel::L));
  p.row_stream[static_cast<std::size_t>(i)].imm += 1;
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::TripMismatch)) << r.to_string();
}

TEST(Verify, TamperedPsumTileFires) {
  LayerProgram p = golden();
  const int i = index_of(p.row_stream, Opcode::SetPsumTile);
  p.row_stream[static_cast<std::size_t>(i)].imm += 1;
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(fires(r, Check::TileMismatch)) << r.to_string();
}

TEST(Verify, FlippedPsumModeFires) {
  LayerProgram p = golden();
  const int i = index_of(p.row_stream, Opcode::SetPsumMode);
  auto& field = p.row_stream[static_cast<std::size_t>(i)].field;
  field = field ? 0 : 1;
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(fires(r, Check::PsumModeMismatch)) << r.to_string();
}

TEST(Verify, AccumulateAcrossWeightGroupsFires) {
  // Multi-group program with a single psum pass: forcing accumulate mode
  // would fold group g's psums into group g-1's stale tile.
  LayerProgram p = compile(nn::make_matmul("v_big_fc", 2048, 4096, 2));
  ASSERT_GT(p.weight_groups, 1);
  const verify::StreamExpectation e = compiler::stream_expectation(
      p.workload, p.mapping, p.perf, p.weight_groups);
  if (e.psum_accumulate) GTEST_SKIP() << "mapping legitimately accumulates";
  const int i = index_of(p.row_stream, Opcode::SetPsumMode);
  p.row_stream[static_cast<std::size_t>(i)].field = 1;
  const VerifyResult r = compiler::verify_program(p, cfg());
  ASSERT_TRUE(fires(r, Check::PsumModeMismatch)) << r.to_string();
  EXPECT_NE(r.to_string().find("weight-group"), std::string::npos)
      << r.to_string();
}

TEST(Verify, DeadConfigWarns) {
  LayerProgram p = golden();
  const int i = index_of(p.row_stream, Opcode::SetActTile);
  const Instruction dup = p.row_stream[static_cast<std::size_t>(i)];
  p.row_stream.insert(p.row_stream.begin() + i, dup);
  const VerifyResult r = compiler::verify_program(p, cfg());
  EXPECT_TRUE(r.ok()) << r.to_string();  // warning, not error
  EXPECT_TRUE(fires(r, Check::DeadConfig)) << r.to_string();
  EXPECT_EQ(r.warnings(), 1);
}

// ---- diagnostics & helpers --------------------------------------------------

TEST(Verify, DiagnosticFormatting) {
  LayerProgram p = golden();
  p.row_stream.erase(p.row_stream.begin() +
                     index_of(p.row_stream, Opcode::Barrier));
  const VerifyResult r = compiler::verify_program(p, cfg());
  ASSERT_NE(r.first_error(), nullptr);
  const std::string text = r.first_error()->to_string();
  EXPECT_NE(text.find("error[missing-barrier]"), std::string::npos) << text;
}

TEST(Verify, AnnotateInterleavesDiagnostics) {
  LayerProgram p = golden();
  const int i = index_of(p.row_stream, Opcode::SetActTile);
  p.row_stream[static_cast<std::size_t>(i)].imm =
      static_cast<std::uint64_t>(cfg().actbuf_usable()) + 1;
  const VerifyResult r = compiler::verify_program(p, cfg());
  const std::string text = verify::annotate(p.row_stream, r);
  EXPECT_NE(text.find("set_act_tile"), std::string::npos) << text;
  EXPECT_NE(text.find("!! error[actbuf-overflow]"), std::string::npos) << text;
}

TEST(Verify, AssertProgramVerifiedThrowsWithDiagnostic) {
  LayerProgram p = golden();
  p.row_stream.erase(p.row_stream.begin() +
                     index_of(p.row_stream, Opcode::Launch));
  try {
    compiler::assert_program_verified(p, cfg());
    FAIL() << "expected InternalError";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("missing-launch"), std::string::npos)
        << e.what();
  }
}

TEST(Verify, VerifierNeverThrowsOnGarbage) {
  // Arbitrary word soup must come back as diagnostics, not exceptions.
  const std::vector<std::uint64_t> words = {
      0xFFFFFFFFFFFFFFFFull, 0x0000000000000000ull, 0x0700000000000000ull,
      0x0600000000000000ull, 0x01FF000000000000ull};
  const VerifyResult r = verify::verify_words(words, cfg());
  EXPECT_FALSE(r.ok());
  EXPECT_GT(r.errors(), 1);
}

}  // namespace
}  // namespace ftdl
