// End-to-end CLI tests driving the real tool binaries as child processes:
// strict flag parsing (a bad numeric flag must exit 2 with a diagnostic,
// never run with a silent 0), and the persistent program cache's
// cross-process behavior — compile in one ftdlc process, warm-load in the
// next, evict-and-recompile after on-disk corruption.
//
// Tool paths and the example spec directory are injected by CMake via
// FTDL_*_PATH compile definitions (tests/CMakeLists.txt).
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  ///< merged stdout+stderr
};

/// Runs `cmd` via popen with stderr folded into stdout.
RunResult run(const std::string& cmd) {
  RunResult r;
  FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (fs::temp_directory_path() / "ftdl_cli_XXXXXX").string();
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    EXPECT_NE(mkdtemp(buf.data()), nullptr);
    path = buf.data();
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
};

const std::string kSpec = std::string(FTDL_EXAMPLES_DIR) + "/specs/lenet.ftdl";

// ---- strict flag parsing: garbage must exit 2, never run as 0 -------------

TEST(ToolsCli, FtdlcRejectsGarbageNumericFlags) {
  for (const char* flags :
       {"--jobs x8", "--d1 12q", "--budget 1e4", "--clock fast",
        "--jobs 0"}) {
    const RunResult r = run(std::string(FTDL_FTDLC_PATH) + " " + kSpec + " " +
                            flags);
    EXPECT_EQ(r.exit_code, 2) << flags << "\n" << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos) << flags;
  }
}

TEST(ToolsCli, FtdlServeRejectsGarbageNumericFlags) {
  for (const char* flags :
       {"--workers x8", "--requests 4x", "--rate fast", "--batch 0"}) {
    const RunResult r = run(std::string(FTDL_SERVE_PATH) + " " + flags);
    EXPECT_EQ(r.exit_code, 2) << flags << "\n" << r.output;
  }
}

TEST(ToolsCli, FtdlProfRejectsGarbageNumericFlags) {
  for (const char* flags : {"--jobs x8", "--budget 8k", "--sim-macs-limit -1",
                            "--jobs 0"}) {
    const RunResult r = run(std::string(FTDL_PROF_PATH) + " " + flags);
    EXPECT_EQ(r.exit_code, 2) << flags << "\n" << r.output;
  }
}

TEST(ToolsCli, FtdlInfoRejectsGarbageConfigDims) {
  for (const char* dims : {"x12 5 20", "12 5x 20", "12 5 0"}) {
    const RunResult r = run(std::string(FTDL_INFO_PATH) + " config " +
                            std::string(dims) + " xcvu125");
    EXPECT_EQ(r.exit_code, 2) << dims << "\n" << r.output;
  }
}

TEST(ToolsCli, FtdlLintRejectsGarbageNumericFlags) {
  const RunResult r =
      run(std::string(FTDL_LINT_PATH) + " nonexistent.hex --d1 x12");
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

// ---- cross-process persistent cache ---------------------------------------

TEST(ToolsCli, FtdlcWarmStartsFromAnotherProcessesCache) {
  TempDir cache;
  const std::string base = std::string(FTDL_FTDLC_PATH) + " " + kSpec +
                           " --quiet --cache-dir " + cache.path;

  const RunResult cold = run(base);
  ASSERT_EQ(cold.exit_code, 0) << cold.output;
  EXPECT_NE(cold.output.find("disk_hits=0"), std::string::npos) << cold.output;
  EXPECT_EQ(cold.output.find("disk_misses=0"), std::string::npos)
      << "cold run must probe-miss: " << cold.output;

  // Entries were published; a second process compiles nothing.
  std::size_t entries = 0;
  for (const auto& e : fs::directory_iterator(cache.path)) {
    EXPECT_EQ(e.path().extension(), ".ftdlprog") << e.path();
    ++entries;
  }
  ASSERT_GT(entries, 0u);

  const RunResult warm = run(base);
  ASSERT_EQ(warm.exit_code, 0) << warm.output;
  EXPECT_NE(warm.output.find("disk_hits=" + std::to_string(entries)),
            std::string::npos)
      << warm.output;
  EXPECT_NE(warm.output.find("disk_misses=0"), std::string::npos)
      << warm.output;
}

TEST(ToolsCli, FtdlcEvictsCorruptedEntriesAndRecompiles) {
  TempDir cache;
  const std::string base = std::string(FTDL_FTDLC_PATH) + " " + kSpec +
                           " --quiet --cache-dir " + cache.path;
  ASSERT_EQ(run(base).exit_code, 0);

  // Truncate one published entry.
  const auto it = fs::directory_iterator(cache.path);
  ASSERT_NE(it, fs::directory_iterator{});
  const std::string victim = it->path().string();
  fs::resize_file(victim, fs::file_size(victim) / 2);

  const RunResult r = run(base);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("disk_evictions=1"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("disk_misses=1"), std::string::npos) << r.output;

  // The eviction recompiled and republished: a third run is fully warm.
  const RunResult again = run(base);
  EXPECT_NE(again.output.find("disk_misses=0"), std::string::npos)
      << again.output;
  EXPECT_NE(again.output.find("disk_evictions=0"), std::string::npos)
      << again.output;
}

TEST(ToolsCli, FtdlcHonorsCacheDirEnvVar) {
  TempDir cache;
  const RunResult r = run("FTDL_CACHE_DIR=" + cache.path + " " +
                          std::string(FTDL_FTDLC_PATH) + " " + kSpec +
                          " --quiet");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("cache " + cache.path), std::string::npos)
      << r.output;
  EXPECT_GT(std::distance(fs::directory_iterator(cache.path),
                          fs::directory_iterator{}),
            0);
}

// Warm-disk output must be byte-identical to a cacheless run (modulo the
// extra cache-stats line): the schedule table, roll-ups and analysis all
// come from the same programs whether compiled or loaded.
TEST(ToolsCli, WarmDiskOutputMatchesCachelessRun) {
  TempDir cache;
  const std::string cacheless_cmd =
      std::string(FTDL_FTDLC_PATH) + " " + kSpec;
  const std::string cached_cmd = cacheless_cmd + " --cache-dir " + cache.path;

  const RunResult cacheless = run(cacheless_cmd);
  ASSERT_EQ(cacheless.exit_code, 0);
  ASSERT_EQ(run(cached_cmd).exit_code, 0);  // populate
  const RunResult warm = run(cached_cmd);
  ASSERT_EQ(warm.exit_code, 0);

  // Strip the cache-stats line from the warm output; the rest must match.
  std::string warm_stripped;
  std::istringstream in(warm.output);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("cache ", 0) == 0) continue;
    warm_stripped += line + "\n";
  }
  EXPECT_EQ(warm_stripped, cacheless.output);
}

}  // namespace
