// Tests for the overlay configuration and the controller ISA.
#include <gtest/gtest.h>

#include "arch/isa.h"
#include "arch/overlay_config.h"
#include "common/error.h"
#include "fpga/device_zoo.h"

namespace ftdl::arch {
namespace {

TEST(OverlayConfig, PaperConfigIsValidOnVu125) {
  const OverlayConfig c = paper_config();
  EXPECT_EQ(c.tpes(), 1200);
  EXPECT_EQ(c.superblocks(), 100);
  EXPECT_EQ(c.pipeline_latency(), 12 + 6);
  EXPECT_NO_THROW(c.validate_for_device(fpga::ultrascale_vu125()));
}

TEST(OverlayConfig, DoubleBufferingHalvesUsableCapacity) {
  const OverlayConfig c = paper_config();
  EXPECT_EQ(c.actbuf_usable(), c.actbuf_words / 2);
  EXPECT_EQ(c.psumbuf_usable(), c.psumbuf_words / 2);
}

TEST(OverlayConfig, DramBandwidthPerCycle) {
  OverlayConfig c = paper_config();
  // 26 GB/s at 650 MHz -> 40 bytes per CLKh cycle.
  EXPECT_NEAR(c.dram_rd_bytes_per_cycle(), 40.0, 1e-9);
}

TEST(OverlayConfig, ValidationRejectsBadShapes) {
  OverlayConfig c = paper_config();
  c.actbuf_words = 32;  // below the distributed-RAM range
  EXPECT_THROW(c.validate(), ConfigError);

  c = paper_config();
  c.psumbuf_words = 512;
  EXPECT_THROW(c.validate(), ConfigError);

  c = paper_config();
  c.d2 = 99;
  EXPECT_THROW(c.validate_for_device(fpga::ultrascale_vu125()), ConfigError);

  c = paper_config();
  c.clocks = fpga::ClockPair::from_high(900e6);  // above DSP fmax
  EXPECT_THROW(c.validate_for_device(fpga::ultrascale_vu125()), ConfigError);
}

TEST(OverlayConfig, SingleClockModeBoundByBram) {
  OverlayConfig c = paper_config();
  c.double_pump = false;
  c.clocks = fpga::ClockPair::from_high(528e6);
  // validate_for_device only checks the BRAM ceiling in single-clock mode.
  EXPECT_NO_THROW(c.validate_for_device(fpga::ultrascale_vu125()));
  c.clocks = fpga::ClockPair::from_high(600e6);
  EXPECT_THROW(c.validate_for_device(fpga::ultrascale_vu125()), ConfigError);
}

TEST(Isa, EncodeDecodeRoundtrip) {
  const InstStream stream = {
      set_loop(TemporalLevel::X, 12),  set_loop(TemporalLevel::L, 34),
      set_loop(TemporalLevel::T, 56),  set_act_tile(128),
      set_psum_tile(1024),             set_psum_mode(true),
      set_weight_base(777),            launch(),
      barrier(),
  };
  for (const Instruction& inst : stream) {
    EXPECT_EQ(decode(encode(inst)), inst) << inst.to_string();
  }
}

TEST(Isa, ImmediateWidthIsChecked) {
  Instruction inst = set_act_tile((std::uint64_t{1} << 48));
  EXPECT_THROW(encode(inst), Error);
  inst = set_act_tile((std::uint64_t{1} << 48) - 1);
  EXPECT_NO_THROW(encode(inst));
}

TEST(Isa, DecodeRejectsUnknownOpcode) {
  EXPECT_THROW(decode(std::uint64_t{0xFF} << 56), Error);
}

TEST(Isa, EncodeRejectsOutOfRangeFields) {
  // SetLoop only defines temporal levels 0-2.
  EXPECT_THROW(encode(Instruction{Opcode::SetLoop, 3, 1}), Error);
  // SetPsumMode is a flag.
  EXPECT_THROW(encode(Instruction{Opcode::SetPsumMode, 2, 0}), Error);
  // Every other opcode requires field = 0.
  EXPECT_THROW(encode(Instruction{Opcode::SetActTile, 1, 8}), Error);
  EXPECT_THROW(encode(Instruction{Opcode::Launch, 9, 0}), Error);
  // The defined values still encode.
  EXPECT_NO_THROW(encode(Instruction{Opcode::SetLoop, 2, 1}));
  EXPECT_NO_THROW(encode(Instruction{Opcode::SetPsumMode, 1, 0}));
}

TEST(Isa, FieldValidityTable) {
  EXPECT_TRUE(field_is_valid(Opcode::SetLoop, 0));
  EXPECT_TRUE(field_is_valid(Opcode::SetLoop, 2));
  EXPECT_FALSE(field_is_valid(Opcode::SetLoop, 3));
  EXPECT_TRUE(field_is_valid(Opcode::SetPsumMode, 1));
  EXPECT_FALSE(field_is_valid(Opcode::SetPsumMode, 2));
  EXPECT_TRUE(field_is_valid(Opcode::Barrier, 0));
  EXPECT_FALSE(field_is_valid(Opcode::Barrier, 1));
}

TEST(Isa, FieldsSurviveEncoding) {
  const Instruction inst = set_loop(TemporalLevel::T, 123456789ULL);
  const Instruction back = decode(encode(inst));
  EXPECT_EQ(back.op, Opcode::SetLoop);
  EXPECT_EQ(back.field, static_cast<std::uint8_t>(TemporalLevel::T));
  EXPECT_EQ(back.imm, 123456789ULL);
}

TEST(Isa, InterpretStreamBuildsControllerState) {
  const InstStream stream = {
      set_loop(TemporalLevel::X, 7),  set_loop(TemporalLevel::L, 3),
      set_loop(TemporalLevel::T, 64), set_act_tile(48),
      set_psum_tile(512),             set_psum_mode(true),
      set_weight_base(128),           launch(),
      barrier(),
  };
  const ControllerState st = interpret_stream(stream);
  EXPECT_EQ(st.x_trip, 7u);
  EXPECT_EQ(st.l_trip, 3u);
  EXPECT_EQ(st.t_trip, 64u);
  EXPECT_EQ(st.act_tile_words, 48u);
  EXPECT_EQ(st.psum_tile_words, 512u);
  EXPECT_TRUE(st.psum_accumulate);
  EXPECT_EQ(st.weight_base, 128u);
  EXPECT_TRUE(st.launched);
}

TEST(Isa, InterpretStreamRejectsMalformedStreams) {
  // Missing Barrier.
  EXPECT_THROW(interpret_stream({set_loop(TemporalLevel::X, 1), launch()}),
               Error);
  // Barrier before Launch.
  EXPECT_THROW(interpret_stream({barrier()}), Error);
  // Configuration after Launch.
  EXPECT_THROW(
      interpret_stream({launch(), set_loop(TemporalLevel::X, 2), barrier()}),
      Error);
  // Zero trip count.
  EXPECT_THROW(
      interpret_stream({set_loop(TemporalLevel::T, 0), launch(), barrier()}),
      Error);
  // Double Launch.
  EXPECT_THROW(interpret_stream({launch(), launch(), barrier()}), Error);
  // Instructions after Barrier.
  EXPECT_THROW(interpret_stream({launch(), barrier(), launch()}), Error);
}

TEST(Isa, DecodeStreamAndDisassemble) {
  const InstStream stream = {set_act_tile(99), launch(), barrier()};
  std::vector<std::uint64_t> words;
  for (const auto& inst : stream) words.push_back(encode(inst));
  EXPECT_EQ(decode_stream(words), stream);
  const std::string text = disassemble(stream);
  EXPECT_NE(text.find("set_act_tile"), std::string::npos);
  EXPECT_NE(text.find("imm=99"), std::string::npos);
}

}  // namespace
}  // namespace ftdl::arch
