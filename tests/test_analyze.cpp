// Tests for ftdl::analyze — a cleanly scheduled network must pass, and
// every network-level check class must fire on a targeted mutation of one
// property (mirroring tests/test_verify.cpp for the per-stream checks).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analyze/analyze.h"
#include "analyze/network_io.h"
#include "arch/overlay_config.h"
#include "common/error.h"
#include "compiler/scheduler.h"
#include "multifpga/partition.h"
#include "nn/layer.h"
#include "nn/model_zoo.h"
#include "nn/network.h"

namespace ftdl {
namespace {

using analyze::AnalysisResult;
using analyze::Check;
using analyze::GraphStrictness;
using analyze::ScheduledNetwork;

arch::OverlayConfig cfg() { return arch::paper_config(); }

/// LeNet-style 4-layer chain: enough overlay layers to schedule, pool, and
/// partition, small enough to compile in milliseconds per test.
nn::Network tiny_net() {
  nn::Network net("t_net");
  net.add(nn::make_conv("c1", 1, 28, 28, 6, 5, 1, 2));
  net.add(nn::make_pool("p1", 6, 28, 28, 2, 2));
  net.add(nn::make_conv("c2", 6, 14, 14, 16, 5, 1, 0));
  net.add(nn::make_matmul("f1", 16 * 10 * 10, 10, 1));
  return net;
}

/// Compiles tiny_net and plans its memory (the global CompilerSession
/// caches the layer searches, so repeated calls are cheap).
ScheduledNetwork scheduled() {
  const nn::Network net = tiny_net();
  return analyze::make_scheduled(
      net, compiler::schedule_network(net, cfg(),
                                      compiler::Objective::Performance,
                                      2'000));
}

bool fires(const AnalysisResult& r, Check check) {
  return std::any_of(
      r.diagnostics.begin(), r.diagnostics.end(),
      [&](const analyze::Diagnostic& d) { return d.check == check; });
}

analyze::TensorPlan& tensor_of(ScheduledNetwork& sn,
                               const std::string& producer) {
  for (analyze::TensorPlan& t : sn.memory.tensors) {
    if (t.producer == producer) return t;
  }
  ADD_FAILURE() << "no planned tensor for " << producer;
  static analyze::TensorPlan dummy;
  return dummy;
}

// ---- golden artifacts -------------------------------------------------------

TEST(Analyze, CleanScheduledNetworkPasses) {
  const ScheduledNetwork sn = scheduled();
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_TRUE(r.ok()) << r.to_string();
  EXPECT_EQ(r.errors(), 0);
  EXPECT_EQ(r.warnings(), 0) << r.to_string();
  EXPECT_NO_THROW(analyze::assert_network_analyzed(sn));
}

TEST(Analyze, MemoryPlanReusesDeadRanges) {
  // The planner must alias disjoint-lifetime tensors (that is what makes
  // the overlap check meaningful): the image is smaller than the naive
  // no-reuse layout, yet the overlap check still passes.
  const ScheduledNetwork sn = scheduled();
  std::uint64_t naive = 0;
  for (const analyze::WeightPlan& w : sn.memory.weights) naive += w.range.words;
  for (const analyze::TensorPlan& t : sn.memory.tensors) naive += t.range.words;
  EXPECT_LT(sn.memory.image_words, naive);
  EXPECT_TRUE(analyze::analyze_network(sn).ok());
}

TEST(Analyze, TensorElemsDerivesThroughHostLayers) {
  nn::Network net("t_concat");
  net.add(nn::make_conv("a", 3, 8, 8, 4, 3, 1, 1));
  net.add(nn::with_inputs(nn::make_conv("b", 3, 8, 8, 4, 3, 1, 1),
                          {nn::kNetworkInput}));
  net.add(nn::make_concat("cat", {"a", "b"}));
  EXPECT_EQ(analyze::network_input_elems(net), 3 * 8 * 8);
  EXPECT_EQ(analyze::tensor_elems(net, 2),
            net.layers()[0].out_elems() + net.layers()[1].out_elems());
}

// ---- memory-family mutations ------------------------------------------------

TEST(Analyze, MissingTensorRangeFires) {
  ScheduledNetwork sn = scheduled();
  sn.memory.tensors.erase(sn.memory.tensors.begin());
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::MissingTensorRange)) << r.to_string();
  EXPECT_THROW(analyze::assert_network_analyzed(sn), InternalError);
}

TEST(Analyze, DuplicateTensorRangeFires) {
  ScheduledNetwork sn = scheduled();
  sn.memory.tensors.push_back(sn.memory.tensors.front());
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::DuplicateTensorRange)) << r.to_string();
}

TEST(Analyze, TensorOutOfImageFires) {
  ScheduledNetwork sn = scheduled();
  tensor_of(sn, "c1").range.base = sn.memory.image_words;
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::TensorOutOfImage)) << r.to_string();
}

TEST(Analyze, TensorRangeUnderflowFires) {
  ScheduledNetwork sn = scheduled();
  tensor_of(sn, "c2").range.words /= 2;
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::TensorRangeUnderflow)) << r.to_string();
}

TEST(Analyze, TensorOverlapFires) {
  // p1 consumes c1, so both are live at p1's step: same base must alias.
  ScheduledNetwork sn = scheduled();
  tensor_of(sn, "p1").range.base = tensor_of(sn, "c1").range.base;
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::TensorOverlap)) << r.to_string();
}

TEST(Analyze, DisjointLifetimeAliasIsLegal) {
  // @input dies once c1 ran; c2's tensor may (and in the planned layout
  // does) reuse that space without an overlap diagnostic.
  ScheduledNetwork sn = scheduled();
  EXPECT_EQ(tensor_of(sn, nn::kNetworkInput).range.base,
            tensor_of(sn, "c2").range.base);
  EXPECT_TRUE(analyze::analyze_network(sn).ok());
}

TEST(Analyze, DtypeMismatchFires) {
  ScheduledNetwork sn = scheduled();
  tensor_of(sn, "c1").elem_words = 2;
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::DtypeMismatch)) << r.to_string();
}

TEST(Analyze, WeightFootprintMismatchFires) {
  ScheduledNetwork sn = scheduled();
  ASSERT_FALSE(sn.memory.weights.empty());
  sn.memory.weights.front().range.words -= 1;
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::WeightFootprintMismatch)) << r.to_string();
}

TEST(Analyze, WbufResidencyOverflowFires) {
  ScheduledNetwork sn = scheduled();
  sn.schedule.config.wbuf_words = 0;  // no WBUF capacity at all
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::WbufResidencyOverflow)) << r.to_string();
}

TEST(Analyze, DramOverreadFires) {
  // c1's stream reads the whole padded input window; shrinking the @input
  // range below that read footprint must be reported.
  ScheduledNetwork sn = scheduled();
  tensor_of(sn, nn::kNetworkInput).range.words = 10;
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::DramOverread)) << r.to_string();
}

// ---- graph-family mutations -------------------------------------------------

TEST(Analyze, DuplicateLayerFires) {
  nn::Network net("t_dup");
  net.add(nn::make_conv("c1", 1, 8, 8, 4, 3, 1, 1));
  net.add(nn::with_inputs(nn::make_conv("c1", 1, 8, 8, 4, 3, 1, 1),
                          {nn::kNetworkInput}));
  const AnalysisResult r = analyze::analyze_graph(net);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::DuplicateLayer)) << r.to_string();
}

TEST(Analyze, MissingProducerFires) {
  nn::Network net("t_missing");
  net.add(nn::with_inputs(nn::make_conv("c1", 1, 8, 8, 4, 3, 1, 1),
                          {"no_such_layer"}));
  const AnalysisResult r = analyze::analyze_graph(net);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::MissingProducer)) << r.to_string();
}

TEST(Analyze, GraphCycleFires) {
  nn::Network net("t_cycle");
  net.add(nn::with_inputs(nn::make_pool("p1", 4, 8, 8, 2, 2), {"c1"}));
  net.add(nn::with_inputs(nn::make_conv("c1", 1, 8, 8, 4, 3, 1, 1),
                          {nn::kNetworkInput}));
  const AnalysisResult r = analyze::analyze_graph(net);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::GraphCycle)) << r.to_string();
}

TEST(Analyze, ShapeMismatchFires) {
  nn::Network net("t_shape");
  net.add(nn::make_conv("c1", 1, 8, 8, 4, 3, 1, 1));  // 4x8x8 = 256 out
  net.add(nn::make_matmul("f1", 100, 10, 1));         // expects 100 in
  const AnalysisResult r = analyze::analyze_graph(net);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::ShapeMismatch)) << r.to_string();
}

TEST(Analyze, SinkMultiplicityDependsOnStrictness) {
  nn::Network net("t_heads");
  net.add(nn::make_conv("c1", 1, 8, 8, 4, 3, 1, 1));
  net.add(nn::with_inputs(nn::make_pool("h1", 4, 8, 8, 2, 2), {"c1"}));
  net.add(nn::with_inputs(nn::make_pool("h2", 4, 8, 8, 2, 2), {"c1"}));
  // A compiled artifact may ship several heads: warning only, h1 flagged
  // as an unconsumed non-final output.
  const AnalysisResult artifact =
      analyze::analyze_graph(net, GraphStrictness::Artifact);
  EXPECT_TRUE(artifact.ok()) << artifact.to_string();
  EXPECT_TRUE(fires(artifact, Check::MultipleSinks)) << artifact.to_string();
  EXPECT_TRUE(fires(artifact, Check::DeadLayer)) << artifact.to_string();
  // The feed-forward serving runtime needs exactly one sink: error.
  const AnalysisResult serving =
      analyze::analyze_graph(net, GraphStrictness::Serving);
  EXPECT_FALSE(serving.ok());
  EXPECT_TRUE(fires(serving, Check::MultipleSinks)) << serving.to_string();
}

TEST(Analyze, MissingProgramFires) {
  ScheduledNetwork sn = scheduled();
  sn.schedule.layers.pop_back();  // drop f1's program
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::MissingProgram)) << r.to_string();
}

TEST(Analyze, OrphanProgramFires) {
  ScheduledNetwork sn = scheduled();
  sn.schedule.layers.front().layer.name = "ghost";
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::OrphanProgram)) << r.to_string();
}

TEST(Analyze, ProgramOrderMismatchFires) {
  ScheduledNetwork sn = scheduled();
  ASSERT_GE(sn.schedule.layers.size(), 2u);
  std::swap(sn.schedule.layers[0], sn.schedule.layers[1]);
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::ProgramOrderMismatch)) << r.to_string();
}

TEST(Analyze, StaleProgramFires) {
  ScheduledNetwork sn = scheduled();
  sn.schedule.layers.front().layer.out_c += 1;  // recompiled net, old program
  const AnalysisResult r = analyze::analyze_network(sn);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::StaleProgram)) << r.to_string();
}

// ---- partition-family mutations ---------------------------------------------

struct PartitionFixture {
  ScheduledNetwork sn = scheduled();
  multifpga::MultiFpgaPlan plan =
      multifpga::partition_pipeline(sn.schedule, 2);
};

TEST(Analyze, CleanPartitionPasses) {
  PartitionFixture f;
  const AnalysisResult r = analyze::analyze_partition(f.sn.schedule, f.plan);
  EXPECT_TRUE(r.ok()) << r.to_string();
}

TEST(Analyze, StageCoverageFires) {
  PartitionFixture f;
  f.plan.stages.pop_back();
  const AnalysisResult r = analyze::analyze_partition(f.sn.schedule, f.plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::StageCoverage)) << r.to_string();
}

TEST(Analyze, StageCostMismatchFires) {
  PartitionFixture f;
  f.plan.stages.front().cycles += 1;
  const AnalysisResult r = analyze::analyze_partition(f.sn.schedule, f.plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::StageCostMismatch)) << r.to_string();
}

TEST(Analyze, StageResidencyMismatchFires) {
  PartitionFixture f;
  f.plan.stages.front().resident_weight_words += 1;
  const AnalysisResult r = analyze::analyze_partition(f.sn.schedule, f.plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::StageResidencyMismatch)) << r.to_string();
}

TEST(Analyze, StageResidencyOverflowFires) {
  // Residency is recomputed from the schedule's layers; a plan claiming
  // full residency on a device with no WBUF capacity cannot hold them.
  PartitionFixture f;
  f.plan.weights_resident = true;
  f.sn.schedule.config.wbuf_words = 0;
  const AnalysisResult r = analyze::analyze_partition(f.sn.schedule, f.plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::StageResidencyOverflow)) << r.to_string();
}

TEST(Analyze, CutTransferMismatchFires) {
  PartitionFixture f;
  f.plan.stages.front().egress_bytes += 64.0;
  const AnalysisResult r = analyze::analyze_partition(f.sn.schedule, f.plan);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(fires(r, Check::CutTransferMismatch)) << r.to_string();
}

// ---- bundle round-trip and the untrusted load gate --------------------------

TEST(Analyze, NetworkBundleRoundTrips) {
  const ScheduledNetwork sn = scheduled();
  const std::string text = analyze::serialize_network(sn);
  EXPECT_EQ(text.rfind("ftdl-network", 0), 0u);
  const ScheduledNetwork back = analyze::deserialize_network(text, cfg());
  EXPECT_EQ(back.net.name(), sn.net.name());
  EXPECT_EQ(back.net.layers().size(), sn.net.layers().size());
  EXPECT_EQ(back.schedule.layers.size(), sn.schedule.layers.size());
  EXPECT_EQ(back.schedule.total_cycles, sn.schedule.total_cycles);
  EXPECT_EQ(back.memory.image_words, sn.memory.image_words);
  // Serializing the reloaded artifact is byte-identical (stable format).
  EXPECT_EQ(analyze::serialize_network(back), text);
}

TEST(Analyze, CorruptedBundleLoadThrowsConfigError) {
  // The load path must surface network-level diagnostics as ConfigError:
  // inject overlapping tensor ranges (simultaneously-live c1/p1), then load.
  ScheduledNetwork sn = scheduled();
  tensor_of(sn, "p1").range.base = tensor_of(sn, "c1").range.base;
  const std::string text = analyze::serialize_network(sn);
  try {
    analyze::deserialize_network(text, cfg());
    FAIL() << "corrupted bundle must not load";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("tensor-overlap"), std::string::npos)
        << e.what();
  }
}

TEST(Analyze, ResNet50BundlePassesAndCorruptionIsCaught) {
  // The acceptance bar: an unmodified zoo artifact analyzes clean and
  // round-trips; the same bundle with overlapping tensor ranges injected
  // reports exactly the overlap diagnostic and fails its load.
  const nn::Network net = nn::resnet50();
  ScheduledNetwork sn = analyze::make_scheduled(
      net, compiler::schedule_network(net, cfg(),
                                      compiler::Objective::Performance,
                                      6'000));
  const AnalysisResult clean = analyze::analyze_network(sn);
  EXPECT_TRUE(clean.ok()) << clean.to_string();
  EXPECT_EQ(clean.warnings(), 0) << clean.to_string();
  const std::string good = analyze::serialize_network(sn);
  EXPECT_NO_THROW(analyze::deserialize_network(good, cfg()));

  // Overlap two simultaneously-live activation ranges (a layer and its
  // consumer: resolved_inputs of layer 1 includes layer 0's output).
  analyze::TensorPlan& victim = tensor_of(sn, net.layers()[0].name);
  analyze::TensorPlan& aggressor = tensor_of(sn, net.layers()[1].name);
  aggressor.range.base = victim.range.base;
  const AnalysisResult bad = analyze::analyze_network(sn);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(fires(bad, Check::TensorOverlap)) << bad.to_string();
  try {
    analyze::deserialize_network(analyze::serialize_network(sn), cfg());
    FAIL() << "corrupted ResNet50 bundle must not load";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("tensor-overlap"), std::string::npos)
        << e.what();
  }
}

TEST(Analyze, TruncatedBundleIsRejected) {
  const std::string text = analyze::serialize_network(scheduled());
  EXPECT_THROW(
      analyze::deserialize_network(text.substr(0, text.size() / 2), cfg()),
      Error);
}

}  // namespace
}  // namespace ftdl
