// Pins the fast simulation engine to the reference scalar interpreter:
// bit-identical outputs, identical SimStats and DRAM traces across odd
// strides / pads / tail sizes, at every jobs count, and on the stats-only
// (functional = false) path (docs/simulator.md).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/simd.h"
#include "compiler/codegen.h"
#include "nn/reference.h"
#include "sim/ftdl_sim.h"

namespace ftdl {
namespace {

using compiler::Objective;

arch::OverlayConfig random_config(Rng& rng) {
  arch::OverlayConfig c;
  c.d1 = static_cast<int>(rng.uniform(2, 8));
  c.d2 = static_cast<int>(rng.uniform(1, 4));
  c.d3 = static_cast<int>(rng.uniform(1, 5));
  c.actbuf_words = 64 << rng.uniform(0, 2);
  c.psumbuf_words = 1024 << rng.uniform(0, 2);
  c.validate();
  return c;
}

/// Odd extents, strides and pads on purpose: the engine's dense/guarded
/// split is exercised hardest when trip counts spill past the padded tiles
/// and pad clipping cuts into edge bursts.
nn::Layer random_layer(Rng& rng, int idx) {
  const double pick = rng.uniform01();
  if (pick < 0.45) {
    const int in_c = static_cast<int>(rng.uniform(1, 13));
    const int hw = static_cast<int>(rng.uniform(5, 17));
    const int out_c = static_cast<int>(rng.uniform(1, 17));
    const int k = static_cast<int>(rng.uniform(1, std::min(hw, 5)));
    const int stride = static_cast<int>(rng.uniform(1, 3));
    const int pad = static_cast<int>(rng.uniform(0, k - 1 > 0 ? k - 1 : 0));
    return nn::make_conv("eng_conv_" + std::to_string(idx), in_c, hw, hw,
                         out_c, k, stride, pad);
  }
  if (pick < 0.65) {
    const int ch = static_cast<int>(rng.uniform(2, 24));
    const int hw = static_cast<int>(rng.uniform(5, 15));
    const int k = static_cast<int>(rng.uniform(2, std::min(hw, 4)));
    const int stride = static_cast<int>(rng.uniform(1, 2));
    return nn::make_depthwise("eng_dw_" + std::to_string(idx), ch, hw, hw, k,
                              stride, k / 2);
  }
  return nn::make_matmul("eng_mm_" + std::to_string(idx), rng.uniform(1, 97),
                         rng.uniform(1, 65), rng.uniform(1, 25));
}

struct LayerData {
  nn::Tensor16 weights, input;
};

LayerData make_data(const nn::Layer& layer, std::uint64_t seed) {
  Rng rng(seed);
  LayerData d;
  if (layer.kind == nn::LayerKind::Conv) {
    d.input = nn::Tensor16({layer.in_c, layer.in_h, layer.in_w});
    d.weights = nn::Tensor16({layer.out_c, layer.in_c, layer.kh, layer.kw});
  } else if (layer.kind == nn::LayerKind::Depthwise) {
    d.input = nn::Tensor16({layer.in_c, layer.in_h, layer.in_w});
    d.weights = nn::Tensor16({layer.in_c, layer.kh, layer.kw});
  } else {
    d.input = nn::Tensor16({static_cast<int>(layer.mm_m),
                            static_cast<int>(layer.mm_p)});
    d.weights = nn::Tensor16({static_cast<int>(layer.mm_n),
                              static_cast<int>(layer.mm_m)});
  }
  d.input.fill_random(rng);
  d.weights.fill_random(rng);
  return d;
}

void expect_same_stats(const sim::SimStats& a, const sim::SimStats& b,
                       const char* what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.compute_cycles, b.compute_cycles) << what;
  EXPECT_EQ(a.act_stall_cycles, b.act_stall_cycles) << what;
  EXPECT_EQ(a.psum_stall_cycles, b.psum_stall_cycles) << what;
  EXPECT_EQ(a.valid_maccs, b.valid_maccs) << what;
  EXPECT_EQ(a.padded_maccs, b.padded_maccs) << what;
  EXPECT_EQ(a.act_refills, b.act_refills) << what;
  EXPECT_EQ(a.psum_drains, b.psum_drains) << what;
}

class EngineSweep : public ::testing::TestWithParam<int> {};

TEST_P(EngineSweep, EngineMatchesReferenceBitExactly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const arch::OverlayConfig cfg = random_config(rng);
  const nn::Layer layer = random_layer(rng, GetParam());
  const compiler::LayerProgram prog =
      compiler::compile_layer(layer, cfg, Objective::Performance, 4'000);
  if (prog.weight_groups != 1) return;  // stitching covered in test_runtime

  const LayerData data =
      make_data(layer, static_cast<std::uint64_t>(GetParam()) + 11);

  sim::SimOptions ref_opt;
  ref_opt.engine = sim::SimEngine::Reference;
  const sim::SimResult ref =
      sim::simulate_layer(prog, cfg, data.weights, data.input, ref_opt);

  // (a) fast engine vs the reference scalar path: bit-identical outputs,
  // identical SimStats and traces.
  sim::SimOptions fast_opt;
  fast_opt.jobs = 1;
  const sim::SimResult fast =
      sim::simulate_layer(prog, cfg, data.weights, data.input, fast_opt);
  EXPECT_EQ(fast.output, ref.output) << prog.mapping.to_string(prog.workload);
  expect_same_stats(fast.stats, ref.stats, "fast vs reference");
  EXPECT_EQ(fast.trace, ref.trace);

  // (b) jobs = 8 vs jobs = 1: bit-identical (each accumulator is owned by
  // exactly one worker; integer sums are associative).
  sim::SimOptions par_opt;
  par_opt.jobs = 8;
  const sim::SimResult par =
      sim::simulate_layer(prog, cfg, data.weights, data.input, par_opt);
  EXPECT_EQ(par.output, fast.output);
  expect_same_stats(par.stats, fast.stats, "jobs=8 vs jobs=1");
  EXPECT_EQ(par.trace, fast.trace);

  // (c) stats-only: SimStats + trace identical to the functional run, no
  // output tensor.
  const sim::SimResult stats = sim::simulate_layer_stats(prog, cfg);
  expect_same_stats(stats.stats, ref.stats, "stats-only vs functional");
  EXPECT_EQ(stats.trace, ref.trace);
  EXPECT_TRUE(stats.output.dims().empty());

  // The reference output itself stays pinned to the nn:: golden kernels.
  if (layer.kind == nn::LayerKind::Conv) {
    EXPECT_EQ(ref.output,
              nn::conv2d_reference(layer, data.input, data.weights));
  } else if (layer.kind == nn::LayerKind::MatMul) {
    EXPECT_EQ(ref.output,
              nn::matmul_reference(layer, data.input, data.weights));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EngineSweep, ::testing::Range(0, 48));

/// Forces the scalar oracles for its lifetime; restores the vector path on
/// exit (set_enabled(true) is a no-op where no vector path exists).
struct ScopedScalarOnly {
  ScopedScalarOnly() { simd::set_enabled(false); }
  ~ScopedScalarOnly() { simd::set_enabled(true); }
};

/// Runs the fast engine twice — vector dispatch vs forced-scalar — and once
/// on the reference interpreter; all three must agree bit-exactly.
void expect_simd_scalar_reference_agree(const compiler::LayerProgram& prog,
                                        const arch::OverlayConfig& cfg,
                                        const LayerData& data, int jobs) {
  sim::SimOptions fast_opt;
  fast_opt.jobs = jobs;
  const sim::SimResult vec =
      sim::simulate_layer(prog, cfg, data.weights, data.input, fast_opt);

  sim::SimResult sca;
  {
    ScopedScalarOnly scalar_only;
    sca = sim::simulate_layer(prog, cfg, data.weights, data.input, fast_opt);
  }
  EXPECT_EQ(vec.output, sca.output)
      << "SIMD vs scalar, jobs=" << jobs << ": "
      << prog.mapping.to_string(prog.workload);
  expect_same_stats(vec.stats, sca.stats, "SIMD vs scalar");

  sim::SimOptions ref_opt;
  ref_opt.engine = sim::SimEngine::Reference;
  const sim::SimResult ref =
      sim::simulate_layer(prog, cfg, data.weights, data.input, ref_opt);
  EXPECT_EQ(vec.output, ref.output)
      << "SIMD vs reference, jobs=" << jobs;
}

// The randomized sweep again, now pinning the vector dispatch against the
// forced-scalar engine (simd::set_enabled test hook). One extra seed past
// the Fast≡Reference sweep keeps the two suites from sharing every case.
class SimdSweep : public ::testing::TestWithParam<int> {};

TEST_P(SimdSweep, SimdMatchesScalarBitExactly) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const arch::OverlayConfig cfg = random_config(rng);
  const nn::Layer layer = random_layer(rng, GetParam());
  const compiler::LayerProgram prog =
      compiler::compile_layer(layer, cfg, Objective::Performance, 4'000);
  if (prog.weight_groups != 1) return;
  const LayerData data =
      make_data(layer, static_cast<std::uint64_t>(GetParam()) + 11);
  expect_simd_scalar_reference_agree(prog, cfg, data, /*jobs=*/1);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimdSweep, ::testing::Range(0, 49));

// Kernel edge geometry: burst/tail widths that straddle the inline cutoff
// and every vector tail length (1..2*lanes for the widest 16-lane AVX2
// path), at jobs = 1 and jobs = 8. MatMul column length m is the dot/axpy
// sweep width, so it is the direct lever on kernel width.
TEST(SimEngine, EdgeTailWidthsSimdMatchesScalar) {
  const arch::OverlayConfig cfg = arch::paper_config();
  for (int m : {1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33}) {
    const nn::Layer layer =
        nn::make_matmul("eng_tail_mm_" + std::to_string(m), 5, m, 3);
    const compiler::LayerProgram prog =
        compiler::compile_layer(layer, cfg, Objective::Performance, 4'000);
    ASSERT_EQ(prog.weight_groups, 1) << "m=" << m;
    const LayerData data = make_data(layer, static_cast<std::uint64_t>(m));
    for (int jobs : {1, 8})
      expect_simd_scalar_reference_agree(prog, cfg, data, jobs);
  }
}

// Single-element temporal runs (1x1 outputs, unit matmuls) and narrow
// bursts (single-column images, 1-wide kernels): the degenerate loop trips
// where a vector path must fall through to scalar tails cleanly.
TEST(SimEngine, SingleElementRunsAndNarrowBursts) {
  const arch::OverlayConfig cfg = arch::paper_config();
  const nn::Layer cases[] = {
      // k == hw, pad 0: exactly one output pixel per channel.
      nn::make_conv("eng_edge_1x1out", 4, 3, 3, 6, 3, 1, 0),
      // 1x1 kernel on a single-column image: narrow burst per row.
      nn::make_conv("eng_edge_col", 5, 9, 1, 7, 1, 1, 0),
      // Depthwise with k == hw: one output element per channel.
      nn::make_depthwise("eng_edge_dw", 6, 4, 4, 4, 1, 0),
      // Fully degenerate matmul.
      nn::make_matmul("eng_edge_unit_mm", 1, 1, 1),
  };
  for (const nn::Layer& layer : cases) {
    const compiler::LayerProgram prog =
        compiler::compile_layer(layer, cfg, Objective::Performance, 4'000);
    ASSERT_EQ(prog.weight_groups, 1) << layer.name;
    const LayerData data = make_data(layer, 31);
    for (int jobs : {1, 8})
      expect_simd_scalar_reference_agree(prog, cfg, data, jobs);
  }
}

TEST(SimEngine, SharedPoolAndTransientPoolAgree) {
  Rng rng(2026);
  const arch::OverlayConfig cfg = arch::paper_config();
  const nn::Layer layer = nn::make_conv("eng_pool_conv", 16, 14, 14, 32, 3,
                                        /*stride=*/1, /*pad=*/1);
  const compiler::LayerProgram prog =
      compiler::compile_layer(layer, cfg, Objective::Performance, 4'000);
  ASSERT_EQ(prog.weight_groups, 1);
  const LayerData data = make_data(layer, 99);

  sim::SimOptions shared;  // jobs = 0: CompilerSession pool
  sim::SimOptions serial;
  serial.jobs = 1;
  const sim::SimResult a =
      sim::simulate_layer(prog, cfg, data.weights, data.input, shared);
  const sim::SimResult b =
      sim::simulate_layer(prog, cfg, data.weights, data.input, serial);
  EXPECT_EQ(a.output, b.output);
  expect_same_stats(a.stats, b.stats, "shared pool vs serial");
  EXPECT_EQ(a.trace, b.trace);
}

TEST(SimEngine, CheckBuffersRunsOnAnyEngineSetting) {
  Rng rng(7);
  const arch::OverlayConfig cfg = arch::paper_config();
  const nn::Layer layer =
      nn::make_conv("eng_cb_conv", 8, 10, 10, 12, 3, 1, 1);
  const compiler::LayerProgram prog =
      compiler::compile_layer(layer, cfg, Objective::Performance, 4'000);
  ASSERT_EQ(prog.weight_groups, 1);
  const LayerData data = make_data(layer, 3);

  sim::SimOptions ref_cb;
  ref_cb.engine = sim::SimEngine::Reference;
  ref_cb.check_buffers = true;
  sim::SimOptions fast_cb;  // Fast + check_buffers falls back to Reference
  fast_cb.check_buffers = true;
  const sim::SimResult a =
      sim::simulate_layer(prog, cfg, data.weights, data.input, ref_cb);
  const sim::SimResult b =
      sim::simulate_layer(prog, cfg, data.weights, data.input, fast_cb);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(a.stats.max_act_words_per_tpe, b.stats.max_act_words_per_tpe);
  EXPECT_EQ(a.stats.max_psum_words_per_sb, b.stats.max_psum_words_per_sb);
  EXPECT_EQ(a.stats.max_wbuf_words_per_tpe, b.stats.max_wbuf_words_per_tpe);
  EXPECT_GT(b.stats.max_wbuf_words_per_tpe, 0);
}

TEST(SimEngine, StatsOnlyRejectsCheckBuffers) {
  const arch::OverlayConfig cfg = arch::paper_config();
  const nn::Layer layer = nn::make_matmul("eng_mm_reject", 8, 8, 8);
  const compiler::LayerProgram prog =
      compiler::compile_layer(layer, cfg, Objective::Performance, 4'000);
  const LayerData data = make_data(layer, 1);
  sim::SimOptions opt;
  opt.functional = false;
  opt.check_buffers = true;
  EXPECT_THROW(sim::simulate_layer(prog, cfg, data.weights, data.input, opt),
               ConfigError);
}

TEST(SimEngine, HardwareEfficiencyGuardsDegenerateInputs) {
  sim::SimStats st;
  EXPECT_EQ(st.hardware_efficiency(1200), 0.0);  // cycles == 0
  st.cycles = 100;
  st.valid_maccs = 50;
  EXPECT_EQ(st.hardware_efficiency(0), 0.0);  // tpes == 0
  EXPECT_EQ(st.hardware_efficiency(-3), 0.0);
  EXPECT_DOUBLE_EQ(st.hardware_efficiency(1), 0.5);
}

TEST(SimEngine, MaxPaddedMacsErrorNamesTheCounts) {
  const arch::OverlayConfig cfg = arch::paper_config();
  const nn::Layer layer = nn::make_matmul("eng_mm_limit", 32, 32, 32);
  const compiler::LayerProgram prog =
      compiler::compile_layer(layer, cfg, Objective::Performance, 4'000);
  const LayerData data = make_data(layer, 2);
  sim::SimOptions opt;
  opt.max_padded_macs = 1;
  try {
    sim::simulate_layer(prog, cfg, data.weights, data.input, opt);
    FAIL() << "expected ftdl::Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(std::to_string(prog.mapping.padded_macs())),
              std::string::npos)
        << msg;
    EXPECT_NE(msg.find("max_padded_macs = 1"), std::string::npos) << msg;
  }
}

}  // namespace
}  // namespace ftdl
