// Counting global allocator for the zero-alloc steady-state serving test.
//
// Linked into test_serve only: replaces ::operator new/delete with malloc
// wrappers that report every allocation to ftdl::alloc_stats (which counts
// it only while the calling thread is inside an ArmScope — the serve
// worker's per-request window). Sanitizer builds own the allocator, so the
// replacements are compiled out there and the test skips via
// alloc_stats::hook_installed().
#include "common/alloc_stats.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define FTDL_ALLOC_HOOK_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define FTDL_ALLOC_HOOK_DISABLED 1
#endif
#endif

#ifndef FTDL_ALLOC_HOOK_DISABLED

#include <cstdlib>
#include <new>

namespace {

const bool g_hook_registered = [] {
  ftdl::alloc_stats::set_hook_installed();
  return true;
}();

void* checked_alloc(std::size_t n) {
  ftdl::alloc_stats::note_alloc();
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* checked_aligned_alloc(std::size_t n, std::align_val_t al) {
  ftdl::alloc_stats::note_alloc();
  std::size_t align = static_cast<std::size_t>(al);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n == 0 ? 1 : n) != 0) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return checked_alloc(n); }
void* operator new[](std::size_t n) { return checked_alloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return checked_aligned_alloc(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return checked_aligned_alloc(n, al);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

#endif  // FTDL_ALLOC_HOOK_DISABLED
