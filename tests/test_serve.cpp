// Tests for ftdl::serve — the batched, concurrent inference serving
// runtime: bit-identical results at any worker count (the determinism
// contract of docs/serving.md), exact admission/rejection accounting,
// dynamic-batcher behavior, latency-histogram boundaries, and balanced +
// monotonic obs instrumentation.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/alloc_stats.h"
#include "common/error.h"
#include "common/rng.h"
#include "nn/model_zoo.h"
#include "obs/obs.h"
#include "runtime/executor.h"
#include "serve/serve.h"

namespace ftdl::serve {
namespace {

/// Small conv -> pool -> fc network: a request costs tens of microseconds
/// on the reference path, so serving tests finish instantly.
nn::Network tiny_net() {
  nn::Network net("tiny-serve");
  net.add(nn::make_conv("c1", 3, 12, 12, 8, 3, 1, 1));
  net.add(nn::make_pool("pool", 8, 12, 12, 2, 2));
  net.add(nn::make_matmul("fc", 8 * 6 * 6, 5, 1));
  net.validate_graph();
  return net;
}

nn::Tensor16 seeded_input(std::uint64_t seed) {
  Rng rng(seed);
  nn::Tensor16 t({3, 12, 12});
  t.fill_random(rng);
  return t;
}

/// Runs `n` distinctly-seeded requests through a server and returns the
/// outputs keyed by seed. Submission is closed-loop per client thread.
std::map<std::uint64_t, nn::Tensor16> serve_all(Server& server, int n,
                                                int clients) {
  std::map<std::uint64_t, nn::Tensor16> out;
  std::mutex out_mu;
  std::atomic<int> next{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      obs::set_thread_track_name("client-" + std::to_string(c));
      for (;;) {
        const int i = next.fetch_add(1);
        if (i >= n) return;
        const auto seed = static_cast<std::uint64_t>(i);
        Submission s = server.submit(seeded_input(seed));
        ASSERT_TRUE(s.accepted) << to_string(s.reject_reason);
        InferenceResult r = s.result.get();
        std::lock_guard<std::mutex> lock(out_mu);
        out.emplace(seed, std::move(r.output));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return out;
}

class ServeObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::global().reset();
    obs::set_enabled(false);
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Registry::global().reset();
  }
};

/// Chrome trace-event invariants: per-track monotonic timestamps and
/// balanced, nesting B/E pairs (same walk as tests/test_obs.cpp).
void expect_balanced_monotonic(const std::vector<obs::TraceEvent>& events) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> depth;
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> last_ts;
  for (const obs::TraceEvent& e : events) {
    const auto key = std::make_pair(e.pid, e.tid);
    if (last_ts.count(key)) {
      EXPECT_GE(e.ts, last_ts[key])
          << "non-monotonic timestamp on track " << e.pid << "/" << e.tid;
    }
    last_ts[key] = e.ts;
    if (e.ph == 'B') {
      ++depth[key];
    } else {
      ASSERT_EQ(e.ph, 'E');
      ASSERT_GT(depth[key], 0) << "E without matching B";
      --depth[key];
    }
  }
  for (const auto& [key, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on track " << key.first << "/"
                    << key.second;
  }
}

// ---- latency histogram ----------------------------------------------------

TEST(LatencyHistogram, EmptyIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.percentile(50.0), 0.0);
  EXPECT_EQ(h.mean_us(), 0.0);
  EXPECT_EQ(h.min_us(), 0.0);
  EXPECT_EQ(h.max_us(), 0.0);
}

TEST(LatencyHistogram, ConstantSamplesAreExact) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(250.0);
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.mean_us(), 250.0);
  // The [min, max] clamp makes every percentile of a constant sample exact
  // despite the ~19 % bucket width.
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 250.0);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 250.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 250.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 250.0);
}

TEST(LatencyHistogram, PercentilesAreMonotonicAndBounded) {
  LatencyHistogram h;
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    h.record(1.0 + double(rng.next_u64() % 1'000'000));
  }
  double prev = 0.0;
  for (double p : {0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, prev) << "p" << p;
    EXPECT_GE(v, h.min_us());
    EXPECT_LE(v, h.max_us());
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.percentile(100.0), h.max_us());
}

TEST(LatencyHistogram, TwoPointSpread) {
  LatencyHistogram h;
  for (int i = 0; i < 50; ++i) h.record(100.0);
  for (int i = 0; i < 50; ++i) h.record(10'000.0);
  // Bucketed estimates stay within one quarter-octave (~19 %) of the exact
  // sample at the extremes.
  EXPECT_NEAR(h.percentile(1.0), 100.0, 20.0);
  EXPECT_NEAR(h.percentile(99.0), 10'000.0, 2'000.0);
  EXPECT_DOUBLE_EQ(h.mean_us(), 5'050.0);
}

TEST(LatencyHistogram, OutOfRangeValuesClampToEdgeBuckets) {
  LatencyHistogram h;
  h.record(-5.0);  // clamped to 0 before bucketing
  h.record(0.25);
  h.record(1e30);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.min_us(), 0.0);
  EXPECT_DOUBLE_EQ(h.max_us(), 1e30);
  EXPECT_GE(h.percentile(50.0), 0.0);
}

// ---- server construction --------------------------------------------------

TEST(Server, RejectsInvalidOptions) {
  ServerOptions bad;
  bad.workers = 0;
  EXPECT_THROW(
      Server(tiny_net(), runtime::WeightStore::random_for(tiny_net(), 1), bad),
      ConfigError);
  bad = ServerOptions{};
  bad.max_batch = 0;
  EXPECT_THROW(
      Server(tiny_net(), runtime::WeightStore::random_for(tiny_net(), 1), bad),
      ConfigError);
  bad = ServerOptions{};
  bad.queue_depth = 0;
  EXPECT_THROW(
      Server(tiny_net(), runtime::WeightStore::random_for(tiny_net(), 1), bad),
      ConfigError);
  bad = ServerOptions{};
  bad.batch_timeout_us = -1;
  EXPECT_THROW(
      Server(tiny_net(), runtime::WeightStore::random_for(tiny_net(), 1), bad),
      ConfigError);
}

TEST(Server, RejectsAmbiguousAndEmptyGraphs) {
  // Two unconsumed heads: no unique sink to serve.
  nn::Network multi("two-heads");
  multi.add(nn::make_conv("stem", 3, 8, 8, 4, 3, 1, 1));
  multi.add(nn::with_inputs(nn::make_conv("h1", 4, 8, 8, 2, 1, 1, 0), {"stem"}));
  multi.add(nn::with_inputs(nn::make_conv("h2", 4, 8, 8, 2, 1, 1, 0), {"stem"}));
  EXPECT_THROW(
      Server(multi, runtime::WeightStore::random_for(multi, 1), ServerOptions{}),
      ConfigError);

  nn::Network empty("empty");
  EXPECT_THROW(Server(empty, runtime::WeightStore{}, ServerOptions{}),
               ConfigError);
}

// ---- determinism ----------------------------------------------------------

TEST(Server, EightWorkersBitIdenticalToOneWorkerAndSerialRun) {
  const nn::Network net = tiny_net();
  const runtime::WeightStore ws = runtime::WeightStore::random_for(net, 7);
  constexpr int kRequests = 24;

  // Ground truth: serial one-at-a-time run_network.
  std::map<std::uint64_t, nn::Tensor16> serial;
  for (int i = 0; i < kRequests; ++i) {
    const auto seed = static_cast<std::uint64_t>(i);
    serial.emplace(seed, runtime::run_network(net, seeded_input(seed), ws,
                                              runtime::ExecOptions{})
                             .output);
  }

  ServerOptions one;
  one.workers = 1;
  one.max_batch = 1;
  one.batch_timeout_us = 0;
  Server s1(net, ws, one);
  const auto out1 = serve_all(s1, kRequests, 1);
  s1.stop();

  ServerOptions eight;
  eight.workers = 8;
  eight.max_batch = 4;
  eight.batch_timeout_us = 200;
  Server s8(net, ws, eight);
  const auto out8 = serve_all(s8, kRequests, 8);
  s8.stop();

  ASSERT_EQ(out1.size(), serial.size());
  ASSERT_EQ(out8.size(), serial.size());
  for (const auto& [seed, expect] : serial) {
    EXPECT_EQ(out1.at(seed), expect) << "workers=1, seed " << seed;
    EXPECT_EQ(out8.at(seed), expect) << "workers=8, seed " << seed;
  }
}

TEST(Server, CycleSimPathIsDeterministicAcrossWorkers) {
  nn::Network net("serve-sim");
  net.add(nn::make_conv("c", 6, 8, 8, 8, 3, 1, 1));
  net.validate_graph();
  const runtime::WeightStore ws = runtime::WeightStore::random_for(net, 21);

  runtime::ExecOptions exec;
  exec.path = runtime::OverlayPath::CycleSim;
  exec.config.d1 = 4;
  exec.config.d2 = 2;
  exec.config.d3 = 3;

  std::map<std::uint64_t, nn::Tensor16> serial;
  for (int i = 0; i < 6; ++i) {
    const auto seed = static_cast<std::uint64_t>(i);
    Rng rng(seed);
    nn::Tensor16 in({6, 8, 8});
    in.fill_random(rng);
    serial.emplace(seed, runtime::run_network(net, in, ws, exec).output);
  }

  ServerOptions opt;
  opt.workers = 4;
  opt.max_batch = 2;
  opt.exec = exec;
  Server server(net, ws, opt);
  std::map<std::uint64_t, nn::Tensor16> served;
  std::vector<std::pair<std::uint64_t, std::future<InferenceResult>>> pending;
  for (int i = 0; i < 6; ++i) {
    const auto seed = static_cast<std::uint64_t>(i);
    Rng rng(seed);
    nn::Tensor16 in({6, 8, 8});
    in.fill_random(rng);
    Submission s = server.submit(std::move(in));
    ASSERT_TRUE(s.accepted);
    pending.emplace_back(seed, std::move(s.result));
  }
  for (auto& [seed, fut] : pending) served.emplace(seed, fut.get().output);
  server.stop();

  for (const auto& [seed, expect] : serial) {
    EXPECT_EQ(served.at(seed), expect) << "seed " << seed;
  }
}

// ---- admission control / rejection accounting -----------------------------

TEST(Server, RejectionAccountingIsExact) {
  const nn::Network net = tiny_net();
  const runtime::WeightStore ws = runtime::WeightStore::random_for(net, 3);
  ServerOptions opt;
  opt.workers = 2;
  opt.queue_depth = 4;
  Server server(net, ws, opt);

  // Dispatch suspended: admission outcomes are exact, not racy.
  server.pause();
  std::vector<std::future<InferenceResult>> accepted;
  for (int i = 0; i < 4; ++i) {
    Submission s = server.submit(seeded_input(static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(s.accepted);
    accepted.push_back(std::move(s.result));
  }
  EXPECT_EQ(server.queue_depth(), 4u);
  for (int i = 0; i < 3; ++i) {
    Submission s = server.submit(seeded_input(99));
    ASSERT_FALSE(s.accepted);
    EXPECT_EQ(s.reject_reason, RejectReason::QueueFull);
    EXPECT_STREQ(to_string(s.reject_reason), "queue_full");
  }
  // Shape mismatch is rejected before touching the queue.
  Submission bad = server.submit(nn::Tensor16({1, 2, 3}));
  ASSERT_FALSE(bad.accepted);
  EXPECT_EQ(bad.reject_reason, RejectReason::BadRequest);

  server.resume();
  for (auto& f : accepted) EXPECT_EQ(f.get().batch_size, 4);
  server.stop();

  Submission late = server.submit(seeded_input(0));
  ASSERT_FALSE(late.accepted);
  EXPECT_EQ(late.reject_reason, RejectReason::Stopped);

  const ServerStats st = server.stats();
  EXPECT_EQ(st.accepted, 4);
  EXPECT_EQ(st.completed, 4);
  EXPECT_EQ(st.failed, 0);
  EXPECT_EQ(st.rejected_queue_full, 3);
  EXPECT_EQ(st.rejected_bad_request, 1);
  EXPECT_EQ(st.rejected_stopped, 1);
  EXPECT_EQ(st.rejected(), 5);
  EXPECT_EQ(st.peak_queue_depth, 4);
  EXPECT_EQ(st.latency.count(), st.completed);
}

TEST(Server, ExecutionFailureSurfacesThroughFuture) {
  // seqLSTM passes admission (shape matches) but run_network rejects
  // recurrent layers — the error must come back via the future and be
  // counted as failed, never wedging a worker.
  const nn::Network net = nn::sentimental_seqlstm();
  const runtime::WeightStore ws = runtime::WeightStore::random_for(net, 1);
  Server server(net, ws, ServerOptions{});
  Submission s = server.submit(nn::Tensor16({2048, 1}));
  ASSERT_TRUE(s.accepted);
  EXPECT_THROW(s.result.get(), ConfigError);
  server.stop();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.accepted, 1);
  EXPECT_EQ(st.failed, 1);
  EXPECT_EQ(st.completed, 0);
  EXPECT_EQ(st.latency.count(), 0);
}

// ---- zero-alloc steady state ----------------------------------------------

TEST(Server, SteadyStateServesWithoutHeapAllocations) {
  // The memory-discipline contract of docs/serving.md: once a worker's
  // ExecContext and arena are warm, a request executes with ZERO heap
  // allocations. alloc_hook.cpp (linked into this binary) counts operator
  // new calls inside the worker's per-request ArmScope window.
  if (!alloc_stats::hook_installed())
    GTEST_SKIP() << "counting allocator not linked (sanitizer build)";

  nn::Network net("serve-zero-alloc");
  net.add(nn::make_conv("c", 6, 8, 8, 8, 3, 1, 1));
  net.validate_graph();
  const runtime::WeightStore ws = runtime::WeightStore::random_for(net, 7);

  ServerOptions opt;
  opt.workers = 1;
  opt.batch_timeout_us = 0;
  opt.exec.path = runtime::OverlayPath::CycleSim;
  opt.exec.config.d1 = 4;
  opt.exec.config.d2 = 2;
  opt.exec.config.d3 = 3;
  opt.exec.sim_jobs = 1;  // serial bursts: no pool scheduling in the window
  Server server(net, ws, opt);

  auto infer = [&](std::uint64_t seed) {
    Rng rng(seed);
    nn::Tensor16 in({6, 8, 8});
    in.fill_random(rng);
    Submission s = server.submit(std::move(in));
    EXPECT_TRUE(s.accepted);
    return s.result.get();
  };

  // Warm-up: populate the compile caches, the tensor map and the arena
  // pools (a couple of rounds lets every free list reach steady capacity).
  for (std::uint64_t seed = 0; seed < 3; ++seed) infer(seed);

  // References computed up front so the measured loop does nothing but
  // serve. Each result is compared and DROPPED before the next submit:
  // a steady-state client returns its buffers, which is what lets the
  // arena free lists cycle instead of draining (retaining every output
  // would force a fresh pool block per request by design).
  std::vector<nn::Tensor16> refs;
  for (std::uint64_t seed = 3; seed < 8; ++seed) {
    Rng rng(seed);
    nn::Tensor16 in({6, 8, 8});
    in.fill_random(rng);
    refs.push_back(
        runtime::run_network(net, in, ws, runtime::ExecOptions{}).output);
  }

  const std::int64_t before = alloc_stats::armed();
  for (std::uint64_t seed = 3; seed < 8; ++seed) {
    const InferenceResult res = infer(seed);
    EXPECT_EQ(res.output, refs[static_cast<std::size_t>(seed - 3)])
        << "request seed " << seed;
  }
  EXPECT_EQ(alloc_stats::armed() - before, 0)
      << "steady-state requests allocated on the worker thread";
  server.stop();
}

// ---- dynamic batcher ------------------------------------------------------

TEST(Server, ZeroTimeoutClosedLoopDispatchesSingletons) {
  const nn::Network net = tiny_net();
  const runtime::WeightStore ws = runtime::WeightStore::random_for(net, 5);
  ServerOptions opt;
  opt.workers = 2;
  opt.max_batch = 8;
  opt.batch_timeout_us = 0;
  Server server(net, ws, opt);
  constexpr int kRequests = 10;
  for (int i = 0; i < kRequests; ++i) {
    Submission s = server.submit(seeded_input(static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(s.accepted);
    // Closed loop with one client: at most one request is ever pending.
    EXPECT_EQ(s.result.get().request_id, static_cast<std::uint64_t>(i + 1));
  }
  server.stop();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.batches, kRequests);
  EXPECT_EQ(st.batched_requests, kRequests);
  EXPECT_EQ(st.max_batch_observed, 1);
  EXPECT_DOUBLE_EQ(st.mean_batch_size(), 1.0);
}

TEST(Server, PausedBacklogCoalescesIntoOneFullBatch) {
  const nn::Network net = tiny_net();
  const runtime::WeightStore ws = runtime::WeightStore::random_for(net, 9);
  ServerOptions opt;
  opt.workers = 2;
  opt.max_batch = 8;
  opt.batch_timeout_us = 1'000'000;  // irrelevant: the batch fills instantly
  opt.queue_depth = 8;
  Server server(net, ws, opt);
  server.pause();
  std::vector<std::future<InferenceResult>> futs;
  for (int i = 0; i < 8; ++i) {
    Submission s = server.submit(seeded_input(static_cast<std::uint64_t>(i)));
    ASSERT_TRUE(s.accepted);
    futs.push_back(std::move(s.result));
  }
  server.resume();
  for (auto& f : futs) {
    const InferenceResult r = f.get();
    EXPECT_EQ(r.batch_size, 8);
    EXPECT_EQ(r.batch_id, 1u);
    EXPECT_GE(r.latency_us, r.execute_us);
    EXPECT_GE(r.latency_us, r.queue_us);
  }
  server.stop();
  const ServerStats st = server.stats();
  EXPECT_EQ(st.batches, 1);
  EXPECT_EQ(st.max_batch_observed, 8);
  EXPECT_DOUBLE_EQ(st.mean_batch_size(), 8.0);
}

// ---- observability --------------------------------------------------------

TEST_F(ServeObsTest, CountersBalanceAndTracksNest) {
  obs::set_enabled(true);
  const nn::Network net = tiny_net();
  const runtime::WeightStore ws = runtime::WeightStore::random_for(net, 13);
  ServerOptions opt;
  opt.workers = 3;
  opt.max_batch = 4;
  opt.batch_timeout_us = 200;
  Server server(net, ws, opt);
  constexpr int kRequests = 16;
  const auto out = serve_all(server, kRequests, 4);
  server.stop();
  EXPECT_EQ(out.size(), static_cast<std::size_t>(kRequests));

  obs::Registry& r = obs::Registry::global();
  EXPECT_EQ(r.counter("serve/requests_accepted"), kRequests);
  EXPECT_EQ(r.counter("serve/requests_completed"), kRequests);
  EXPECT_EQ(r.counter("serve/requests_rejected"), 0);
  EXPECT_EQ(r.counter("serve/requests_failed"), 0);
  EXPECT_EQ(r.counter("serve/batched_requests"), kRequests);
  EXPECT_GE(r.counter("serve/batches"), 1);
  EXPECT_LE(r.counter("serve/batches"), kRequests);
  EXPECT_EQ(r.gauge("serve/queue_depth"), 0.0);
  // stop() published the latency percentiles for the metrics JSON.
  EXPECT_GT(r.gauge("serve/latency_p50_us"), 0.0);
  EXPECT_LE(r.gauge("serve/latency_p50_us"), r.gauge("serve/latency_p95_us"));
  EXPECT_LE(r.gauge("serve/latency_p95_us"), r.gauge("serve/latency_p99_us"));
  EXPECT_LE(r.gauge("serve/latency_p99_us"), r.gauge("serve/latency_max_us"));

  expect_balanced_monotonic(r.events());
  // Per-worker serve tracks and the metrics export both exist.
  const std::string trace = r.chrome_trace_json();
  EXPECT_NE(trace.find("serve-0"), std::string::npos);
  const obs::Metrics parsed = obs::parse_metrics_json(r.metrics_json());
  EXPECT_EQ(parsed.counters.at("serve/requests_completed"), kRequests);
}

TEST_F(ServeObsTest, DisabledObsLeavesResultsIdentical) {
  const nn::Network net = tiny_net();
  const runtime::WeightStore ws = runtime::WeightStore::random_for(net, 17);

  obs::set_enabled(false);
  ServerOptions opt;
  opt.workers = 2;
  Server off(net, ws, opt);
  const auto out_off = serve_all(off, 6, 2);
  off.stop();
  EXPECT_EQ(obs::Registry::global().event_count(), 0u);

  obs::set_enabled(true);
  Server on(net, ws, opt);
  const auto out_on = serve_all(on, 6, 2);
  on.stop();

  for (const auto& [seed, expect] : out_off) {
    EXPECT_EQ(out_on.at(seed), expect) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ftdl::serve
