// Tests for the functional end-to-end runtime: graph execution, reference
// vs cycle-sim equivalence (including weight-group stitching), host EWOP
// kernels and quantization calibration.
#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "common/rng.h"
#include "nn/model_zoo.h"
#include "runtime/executor.h"

namespace ftdl::runtime {
namespace {

arch::OverlayConfig small_config() {
  arch::OverlayConfig c;
  c.d1 = 4;
  c.d2 = 2;
  c.d3 = 3;
  return c;
}

/// A tiny branching network: conv -> {1x1 branch, 3x3 branch} -> concat ->
/// pool -> fc. Exercises graph resolution, concat, pooling and MM flatten.
nn::Network tiny_inception() {
  nn::Network net("tiny-inception");
  net.add(nn::make_conv("stem", 3, 12, 12, 8, 3, 1, 1));
  net.add(nn::with_inputs(nn::make_conv("b1", 8, 12, 12, 4, 1, 1, 0), {"stem"}));
  net.add(nn::with_inputs(nn::make_conv("b3", 8, 12, 12, 6, 3, 1, 1), {"stem"}));
  net.add(nn::make_concat("cat", {"b1", "b3"}));
  net.add(nn::make_pool("pool", 10, 12, 12, 2, 2));
  net.add(nn::make_matmul("fc", 10 * 6 * 6, 5, 1));
  net.validate_graph();
  return net;
}

/// A tiny residual network exercising AddRelu and projection shortcuts.
nn::Network tiny_resnet() {
  nn::Network net("tiny-resnet");
  net.add(nn::make_conv("stem", 3, 8, 8, 8, 3, 1, 1));
  net.add(nn::with_inputs(nn::make_conv("c1", 8, 8, 8, 8, 3, 1, 1), {"stem"}));
  net.add(nn::make_conv("c2", 8, 8, 8, 8, 3, 1, 1, /*relu=*/false));
  net.add(nn::make_add_relu("add", 8 * 8 * 8, {"c2", "stem"}));
  net.add(nn::make_matmul("fc", 8 * 8 * 8, 4, 1));
  net.validate_graph();
  return net;
}

TEST(WeightStore, RandomForCoversAllWeightedLayers) {
  const nn::Network net = tiny_inception();
  const WeightStore ws = WeightStore::random_for(net, 1);
  EXPECT_EQ(ws.size(), 4u);  // stem, b1, b3, fc
  EXPECT_TRUE(ws.contains("stem"));
  EXPECT_FALSE(ws.contains("cat"));
  EXPECT_GT(ws.total_words(), 0);
}

TEST(WeightStore, ShapeMismatchThrows) {
  WeightStore ws;
  ws.set("c", nn::Tensor16({2, 2}));
  const nn::Layer conv = nn::make_conv("c", 3, 8, 8, 4, 3, 1, 1);
  EXPECT_THROW(ws.get(conv), ConfigError);
  const nn::Layer missing = nn::make_conv("other", 3, 8, 8, 4, 3, 1, 1);
  EXPECT_THROW(ws.get(missing), ConfigError);
}

TEST(Executor, BranchingNetworkRunsOnReferencePath) {
  const nn::Network net = tiny_inception();
  const WeightStore ws = WeightStore::random_for(net, 7);
  Rng rng(3);
  nn::Tensor16 input({3, 12, 12});
  input.fill_random(rng);

  ExecOptions opt;
  const ExecResult r = run_network(net, input, ws, opt);
  EXPECT_EQ(r.output.dims(), (std::vector<int>{5, 1}));
  EXPECT_EQ(r.runs.size(), net.layers().size());
  // Concat output is 4 + 6 = 10 channels (checked implicitly by fc shape).
}

TEST(Executor, ResidualNetworkRunsAndAppliesRelu) {
  const nn::Network net = tiny_resnet();
  const WeightStore ws = WeightStore::random_for(net, 11);
  Rng rng(5);
  nn::Tensor16 input({3, 8, 8});
  input.fill_random(rng);

  const ExecResult r = run_network(net, input, ws, ExecOptions{});
  EXPECT_EQ(r.output.dims(), (std::vector<int>{4, 1}));
  // The add_relu stage output (intermediate) is non-negative by definition;
  // check via re-running with the same seed and inspecting the fc input is
  // not exposed, so assert on run records instead.
  EXPECT_EQ(r.runs[3].kind, nn::LayerKind::Ewop);
}

TEST(Executor, CycleSimPathMatchesReferencePath) {
  const nn::Network net = tiny_inception();
  const WeightStore ws = WeightStore::random_for(net, 21);
  Rng rng(9);
  nn::Tensor16 input({3, 12, 12});
  input.fill_random(rng);

  ExecOptions ref_opt;
  const ExecResult ref = run_network(net, input, ws, ref_opt);

  ExecOptions sim_opt;
  sim_opt.path = OverlayPath::CycleSim;
  sim_opt.config = small_config();
  const ExecResult simd = run_network(net, input, ws, sim_opt);

  EXPECT_EQ(ref.output, simd.output);  // bit-exact end to end
  EXPECT_GT(simd.total_sim_cycles, 0);
  for (std::size_t i = 0; i < ref.runs.size(); ++i) {
    EXPECT_EQ(ref.runs[i].requant_shift, simd.runs[i].requant_shift);
  }
}

TEST(Executor, WeightGroupStitchingIsExact) {
  // A layer whose weights exceed one WBUF per TPE on a tiny overlay, so the
  // compiler must split into groups; outputs must still be bit-exact.
  arch::OverlayConfig cfg = small_config();
  cfg.wbuf_words = 256;  // force splitting
  nn::Network net("wide");
  net.add(nn::make_conv("wide_conv", 16, 6, 6, 48, 3, 1, 1));
  net.validate_graph();
  const WeightStore ws = WeightStore::random_for(net, 33);
  Rng rng(13);
  nn::Tensor16 input({16, 6, 6});
  input.fill_random(rng);

  ExecOptions sim_opt;
  sim_opt.path = OverlayPath::CycleSim;
  sim_opt.config = cfg;
  const ExecResult simd = run_network(net, input, ws, sim_opt);
  const ExecResult ref = run_network(net, input, ws, ExecOptions{});
  EXPECT_EQ(ref.output, simd.output);
  EXPECT_GT(simd.runs[0].weight_groups, 1);
}

TEST(Executor, CalibrationKeepsOutputsInRange) {
  const nn::Network net = tiny_resnet();
  const WeightStore ws = WeightStore::random_for(net, 17, /*magnitude=*/31);
  Rng rng(19);
  nn::Tensor16 input({3, 8, 8});
  input.fill_random(rng, 31);

  ExecOptions opt;
  opt.target_magnitude_bits = 7;
  const ExecResult r = run_network(net, input, ws, opt);
  for (std::int64_t i = 0; i < r.output.size(); ++i) {
    EXPECT_LE(std::abs(r.output[i]), 255);  // 2^(7+1) headroom bound
  }
  // Conv layers with large accumulators must have received nonzero shifts.
  bool any_shift = false;
  for (const LayerRun& run : r.runs) any_shift |= run.requant_shift > 0;
  EXPECT_TRUE(any_shift);
}

TEST(Executor, RejectsRecurrentNetworks) {
  const nn::Network lstm = nn::sentimental_seqlstm();
  const WeightStore ws = WeightStore::random_for(lstm, 1);
  nn::Tensor16 input({2048, 1});
  EXPECT_THROW(run_network(lstm, input, ws, ExecOptions{}), ConfigError);
}

TEST(Executor, RejectsShapeMismatch) {
  const nn::Network net = tiny_inception();
  const WeightStore ws = WeightStore::random_for(net, 1);
  nn::Tensor16 wrong({3, 10, 10});
  EXPECT_THROW(run_network(net, wrong, ws, ExecOptions{}), ConfigError);
}

TEST(Executor, OutputComesFromGraphSinkNotLastDeclaredLayer) {
  // Regression: the executor used to return layers().back()'s tensor as
  // "the" output. In this DAG representation the last layer is always *a*
  // sink, but a multi-headed network has several — returning one silently
  // truncates the rest. The executor must resolve the unique sink and
  // refuse ambiguous graphs by name.
  nn::Network multi("two-heads");
  multi.add(nn::make_conv("stem", 3, 8, 8, 4, 3, 1, 1));
  multi.add(nn::with_inputs(nn::make_conv("head_a", 4, 8, 8, 2, 1, 1, 0),
                            {"stem"}));
  multi.add(nn::with_inputs(nn::make_conv("head_b", 4, 8, 8, 2, 1, 1, 0),
                            {"stem"}));
  multi.validate_graph();
  EXPECT_EQ(multi.sink_names(), (std::vector<std::string>{"head_a", "head_b"}));

  const WeightStore ws = WeightStore::random_for(multi, 29);
  Rng rng(31);
  nn::Tensor16 input({3, 8, 8});
  input.fill_random(rng);
  try {
    run_network(multi, input, ws, ExecOptions{});
    FAIL() << "ambiguous sinks must be rejected";
  } catch (const ConfigError& e) {
    // The error names the offending sinks so the fix is obvious.
    EXPECT_NE(std::string(e.what()).find("head_a"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("head_b"), std::string::npos);
  }

  // Single-sink branching graphs (concat rejoins both branches) still
  // resolve: the sink is the last layer here, and execution is unchanged.
  const nn::Network net = tiny_inception();
  EXPECT_EQ(net.sink_names(), std::vector<std::string>{"fc"});
  EXPECT_EQ(nn::googlenet().sink_names().size(), 1u);
}

TEST(Executor, CalibrateShiftBoundariesAreExact) {
  // Regression: calibrate_shift used std::abs on acc_t (UB at the most
  // negative accumulator) and its shift landed one off around the
  // 2^target_bits boundary. The contract is the smallest shift s >= 0 with
  // (max |acc| >> s) <= 2^target_bits.
  const int t = 7;
  const auto shift_for = [&](acc_t v) {
    nn::AccTensor acc({1});
    acc[0] = v;
    return calibrate_shift(acc, t);
  };
  EXPECT_EQ(shift_for(0), 0);
  EXPECT_EQ(shift_for(127), 0);
  EXPECT_EQ(shift_for(128), 0);       // exactly 2^t: already in range
  EXPECT_EQ(shift_for(129), 1);       // one past: one shift
  EXPECT_EQ(shift_for(-129), 1);      // symmetric for negatives
  EXPECT_EQ(shift_for(256), 1);       // 2^(t+1) >> 1 == 2^t: in range
  EXPECT_EQ(shift_for(257), 1);       // floor(257 >> 1) == 128: still in range
  EXPECT_EQ(shift_for(259), 2);       // 259 >> 1 == 129 > 128: one more
  EXPECT_EQ(shift_for(3 * 128), 2);   // 384 >> 1 = 192 > 128; >> 2 = 96
  // Most negative accumulator: |INT64_MIN| overflows std::abs; the shift
  // must still be exact: 2^63 >> 56 == 2^7 == 256.
  EXPECT_EQ(shift_for(std::numeric_limits<acc_t>::min()), 64 - 1 - t);
  for (const acc_t v : {acc_t{1} << 20, (acc_t{1} << 20) + 1}) {
    const int s = shift_for(v);
    // Minimality: s keeps the value in range, s - 1 would not.
    EXPECT_LE(std::uint64_t(v) >> s, std::uint64_t{1} << t);
    ASSERT_GT(s, 0);
    EXPECT_GT(std::uint64_t(v) >> (s - 1), std::uint64_t{1} << t);
  }
}

TEST(Executor, GoogLeNetGraphExecutesEndToEnd) {
  // Full GoogLeNet on the reference path: exercises every inception module,
  // avg pooling and the classifier flatten (~1.6 G MACs, a few seconds).
  const nn::Network net = nn::googlenet();
  const WeightStore ws = WeightStore::random_for(net, 5, /*magnitude=*/3);
  Rng rng(23);
  nn::Tensor16 input({3, 224, 224});
  input.fill_random(rng, 3);

  const ExecResult r = run_network(net, input, ws, ExecOptions{});
  EXPECT_EQ(r.output.dims(), (std::vector<int>{1000, 1}));
  EXPECT_EQ(r.runs.size(), net.layers().size());
}

TEST(Graph, ValidateCatchesBadReferences) {
  nn::Network net("bad");
  net.add(nn::make_conv("a", 3, 8, 8, 4, 3, 1, 1));
  net.add(nn::with_inputs(nn::make_conv("b", 4, 8, 8, 4, 3, 1, 1), {"nope"}));
  EXPECT_THROW(net.validate_graph(), ConfigError);

  nn::Network dup("dup");
  dup.add(nn::make_conv("a", 3, 8, 8, 4, 3, 1, 1));
  dup.add(nn::make_conv("a", 4, 8, 8, 4, 3, 1, 1));
  EXPECT_THROW(dup.validate_graph(), ConfigError);
}

TEST(Graph, AllZooModelsValidate) {
  for (const nn::Network& net : nn::mlperf_models()) {
    EXPECT_NO_THROW(net.validate_graph()) << net.name();
  }
}

}  // namespace
}  // namespace ftdl::runtime
