// Tests for the multi-FPGA pipeline partitioner.
#include <gtest/gtest.h>

#include "arch/overlay_config.h"
#include "common/error.h"
#include "compiler/scheduler.h"
#include "multifpga/partition.h"
#include "nn/model_zoo.h"

namespace ftdl::multifpga {
namespace {

compiler::NetworkSchedule small_schedule() {
  nn::Network net("chain");
  net.add(nn::make_conv("c1", 16, 28, 28, 32, 3, 1, 1));
  net.add(nn::make_conv("c2", 32, 28, 28, 32, 3, 1, 1));
  net.add(nn::make_conv("c3", 32, 28, 28, 64, 3, 1, 1));
  net.add(nn::make_conv("c4", 64, 28, 28, 64, 3, 1, 1));
  net.validate_graph();
  return compiler::schedule_network(net, arch::paper_config(),
                                    compiler::Objective::Performance, 8'000);
}

TEST(MultiFpga, DeviceCapacityIsTpesTimesWbuf) {
  EXPECT_EQ(device_weight_capacity(arch::paper_config()), 1200LL * 1024);
}

TEST(MultiFpga, SingleDeviceIsOneStage) {
  const auto sched = small_schedule();
  const MultiFpgaPlan plan = partition_pipeline(sched, 1);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].first_layer, 0u);
  EXPECT_EQ(plan.stages[0].last_layer, sched.layers.size() - 1);
  // One stage, no link: FPS equals the schedule's own rate.
  EXPECT_NEAR(plan.fps, sched.fps(), sched.fps() * 1e-9);
  EXPECT_NEAR(plan.balance, 1.0, 1e-9);
}

TEST(MultiFpga, MoreDevicesNeverSlower) {
  const auto sched = small_schedule();
  double prev_fps = 0.0;
  for (int d = 1; d <= 4; ++d) {
    const MultiFpgaPlan plan = partition_pipeline(sched, d);
    EXPECT_GE(plan.fps, prev_fps * 0.999) << d << " devices";
    prev_fps = plan.fps;
    // Stages are contiguous and cover all layers exactly once.
    std::size_t expect_first = 0;
    for (const StagePlan& st : plan.stages) {
      EXPECT_EQ(st.first_layer, expect_first);
      expect_first = st.last_layer + 1;
    }
    EXPECT_EQ(expect_first, sched.layers.size());
  }
}

TEST(MultiFpga, PipeliningImprovesThroughputNotLatency) {
  const auto sched = small_schedule();
  const MultiFpgaPlan one = partition_pipeline(sched, 1);
  const MultiFpgaPlan four = partition_pipeline(sched, 4);
  EXPECT_GT(four.fps, 1.5 * one.fps);  // 4 near-equal stages
  // Latency includes every stage plus link hops: never below 1-device.
  EXPECT_GE(four.latency_seconds, one.latency_seconds * 0.99);
}

TEST(MultiFpga, GoogLeNetNeedsMultipleDevicesForResidency) {
  // GoogLeNet has ~7 M unique weight words (plus duplication); one vu125
  // holds 1.23 M. The paper's multi-FPGA answer should land at a handful
  // of devices.
  const auto sched = compiler::schedule_network(
      nn::googlenet(), arch::paper_config(),
      compiler::Objective::Balance, 10'000);
  const MultiFpgaPlan single = partition_pipeline(sched, 1);
  EXPECT_FALSE(single.weights_resident);

  const int need = min_devices_for_residency(sched);
  EXPECT_GE(need, 5);
  EXPECT_LE(need, 24);
  const MultiFpgaPlan plan = partition_pipeline(sched, need);
  EXPECT_TRUE(plan.weights_resident);
  EXPECT_GT(plan.fps, sched.fps());  // pipelining also buys throughput
}

TEST(MultiFpga, SlowLinkShiftsBottleneck) {
  const auto sched = small_schedule();
  LinkModel slow;
  slow.bytes_per_sec = 1e6;  // pathological 1 MB/s
  const MultiFpgaPlan fast = partition_pipeline(sched, 4);
  const MultiFpgaPlan choked = partition_pipeline(sched, 4, slow);
  EXPECT_LT(choked.fps, fast.fps);
}

TEST(MultiFpga, NoPhantomEgressOnFinalStage) {
  // Regression: the DP used to mark a stage ending at layer n as "last"
  // only when it also used all k devices, so every fewer-stage candidate
  // was charged a phantom egress transfer of the *network output* and
  // best_s was biased toward k stages. With the last layer's output much
  // bigger than the only interior cut and a pathologically slow link, the
  // buggy partitioner split into 2 stages; the correct answer is 1 stage
  // (any cut costs seconds of link time, staying fused costs none).
  nn::Network net("tail-heavy");
  net.add(nn::make_conv("c1", 16, 28, 28, 4, 3, 1, 1));   // tiny boundary
  net.add(nn::make_conv("c2", 4, 28, 28, 64, 3, 1, 1));   // huge output
  net.validate_graph();
  const auto sched = compiler::schedule_network(
      net, arch::paper_config(), compiler::Objective::Performance, 8'000);

  LinkModel glacial;
  glacial.bytes_per_sec = 1.0;  // any transferred byte dominates compute
  const MultiFpgaPlan plan = partition_pipeline(sched, 2, glacial);
  ASSERT_EQ(plan.stages.size(), 1u);
  // And the fused plan is charged no link time at all: it runs at the
  // schedule's own frame rate.
  EXPECT_NEAR(plan.fps, sched.fps(), sched.fps() * 1e-9);
}

TEST(MultiFpga, InvalidInputsThrow) {
  const auto sched = small_schedule();
  EXPECT_THROW(partition_pipeline(sched, 0), ConfigError);
  compiler::NetworkSchedule empty;
  empty.config = arch::paper_config();
  EXPECT_THROW(partition_pipeline(empty, 2), ConfigError);
}

}  // namespace
}  // namespace ftdl::multifpga
