// ftdl-stream-v1 — writer/reader round trips, crash-truncation recovery,
// CRC rejection, invariant checking, and the two guarantees the format
// spec makes: exports reconstructed from a log are byte-identical to the
// live registry's, and the spec's worked hex dump is exactly what the
// writer emits (docs/obs-stream-format.md).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "obs/obs.h"
#include "obs/stream_reader.h"
#include "obs/stream_writer.h"

namespace {

using namespace ftdl;
using namespace ftdl::obs::stream;

/// Start from a clean global registry with collection off; leave it that
/// way for the rest of the suite. Log files are written into the build
/// dir (the ctest working directory) and removed on teardown.
class ObsStreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(false);
    obs::Registry::global().reset();
  }
  void TearDown() override {
    obs::set_enabled(false);
    obs::Registry::global().reset();
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string log_path(const std::string& name) {
    cleanup_.push_back(name);
    return name;
  }
  std::vector<std::string> cleanup_;
};

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.good());
  out << bytes;
}

/// Deterministic writer: no periodic sweeps, so the file contents depend
/// only on the publish calls (used by the golden-bytes tests).
StreamWriterOptions deterministic_options(std::size_t chunk_records = 2048) {
  StreamWriterOptions opt;
  opt.chunk_records = chunk_records;
  opt.flush_period_ms = 0;
  return opt;
}

/// The spec's canonical two-span log (docs/obs-stream-format.md "Worked
/// example"): one track, an `enqueue` span carrying one arg, then an
/// `execute` span, all on fixed timestamps from a single thread.
std::string write_canonical_two_span_log(const std::string& path) {
  StreamWriter w(path, deterministic_options());
  Record r[6];
  r[0].kind = static_cast<std::uint8_t>(RecordKind::TrackDef);
  r[0].track = 0;
  r[0].name_id = w.intern("host");
  r[0].aux_id = w.intern("main");
  r[0].payload = (std::uint64_t(1) << 32) | 1;  // pid 1, tid 1
  r[1].kind = static_cast<std::uint8_t>(RecordKind::SpanBegin);
  r[1].argc = 1;
  r[1].track = 0;
  r[1].payload = double_bits(10.0);
  r[1].aux_id = w.intern("serve");
  r[1].name_id = w.intern("enqueue");
  r[2].kind = static_cast<std::uint8_t>(RecordKind::SpanArg);
  r[2].name_id = w.intern("request");
  r[2].aux_id = w.intern("1");
  r[3].kind = static_cast<std::uint8_t>(RecordKind::SpanEnd);
  r[3].track = 0;
  r[3].payload = double_bits(12.5);
  r[4].kind = static_cast<std::uint8_t>(RecordKind::SpanBegin);
  r[4].track = 0;
  r[4].payload = double_bits(20.0);
  r[4].aux_id = w.intern("serve");  // already interned: same id
  r[4].name_id = w.intern("execute");
  r[5].kind = static_cast<std::uint8_t>(RecordKind::SpanEnd);
  r[5].track = 0;
  r[5].payload = double_bits(25.0);
  w.publish(r, 6);
  w.finish();
  return read_file_bytes(path);
}

/// A small multi-chunk log: `groups` publishes of `per_chunk` CounterAdd
/// records each, with chunk_records == per_chunk so every publish seals
/// exactly one data chunk. Chunk 0 is the string table.
std::string write_chunked_counter_log(const std::string& path, int groups,
                                      std::size_t per_chunk) {
  StreamWriter w(path, deterministic_options(per_chunk));
  const std::uint32_t name = w.intern("test/adds");
  for (int g = 0; g < groups; ++g) {
    std::vector<Record> recs(per_chunk);
    for (Record& r : recs) {
      r.kind = static_cast<std::uint8_t>(RecordKind::CounterAdd);
      r.name_id = name;
      r.payload = i64_bits(1);
    }
    w.publish(recs.data(), recs.size());
  }
  w.finish();
  return read_file_bytes(path);
}

TEST_F(ObsStreamTest, EmptyLogIsJustTheFileHeader) {
  const std::string path = log_path("obs_stream_empty.stream");
  {
    StreamWriter w(path, deterministic_options());
    w.finish();
  }
  const LoadedLog log = load_stream(path);
  EXPECT_EQ(log.file_bytes, kFileHeaderBytes);
  EXPECT_EQ(log.version, kFormatVersion);
  EXPECT_TRUE(log.chunks.empty());
  EXPECT_TRUE(log.records.empty());
  EXPECT_FALSE(log.truncated);
  EXPECT_TRUE(check_log(log).ok());
}

TEST_F(ObsStreamTest, WriterRoundTripPreservesRecordsAndStrings) {
  const std::string path = log_path("obs_stream_roundtrip.stream");
  write_canonical_two_span_log(path);
  const LoadedLog log = load_stream(path);

  EXPECT_FALSE(log.truncated);
  EXPECT_TRUE(log.errors.empty());
  ASSERT_EQ(log.records.size(), 6u);
  ASSERT_EQ(log.chunks.size(), 2u);  // strings, then one data chunk
  EXPECT_EQ(log.chunks[0].header.kind,
            static_cast<std::uint32_t>(ChunkKind::Strings));
  EXPECT_EQ(log.chunks[1].header.kind,
            static_cast<std::uint32_t>(ChunkKind::Data));
  EXPECT_EQ(log.chunks[0].header.chunk_seq, 0u);
  EXPECT_EQ(log.chunks[1].header.chunk_seq, 1u);
  ASSERT_EQ(log.strings.size(), 7u);
  EXPECT_EQ(log.strings.at(1), "host");
  EXPECT_EQ(log.strings.at(7), "execute");
  for (std::size_t i = 0; i < log.records.size(); ++i)
    EXPECT_EQ(log.records[i].seq, i);
  EXPECT_TRUE(check_log(log).ok());

  const ReconstructedLog r = reconstruct(log);
  ASSERT_EQ(r.tracks.size(), 1u);
  EXPECT_EQ(r.tracks[0].process, "host");
  EXPECT_EQ(r.tracks[0].thread, "main");
  ASSERT_EQ(r.events.size(), 4u);  // B E B E (args folded into their B)
  EXPECT_EQ(r.events[0].name, "enqueue");
  ASSERT_EQ(r.events[0].args.size(), 1u);
  EXPECT_EQ(r.events[0].args[0].first, "request");
  EXPECT_EQ(r.events[0].args[0].second, "1");
  EXPECT_DOUBLE_EQ(r.events[1].ts, 12.5);
  EXPECT_EQ(r.events[2].name, "execute");
}

// The format spec's worked example is not prose that can drift: this test
// regenerates the canonical log and requires the hex dump embedded in
// docs/obs-stream-format.md to match it byte for byte.
TEST_F(ObsStreamTest, SpecWorkedExampleMatchesWriterBytes) {
  const std::string path = log_path("obs_stream_golden.stream");
  const std::string bytes = write_canonical_two_span_log(path);
  const std::string dump = format_hex_dump(bytes);

  const std::string doc =
      read_file_bytes(std::string(FTDL_DOCS_DIR) + "/obs-stream-format.md");
  const std::string marker = "<!-- worked-example-hex-dump -->";
  const std::size_t at = doc.find(marker);
  ASSERT_NE(at, std::string::npos)
      << "docs/obs-stream-format.md lost its worked-example marker";
  const std::size_t fence_open = doc.find("```\n", at);
  ASSERT_NE(fence_open, std::string::npos);
  const std::size_t body = fence_open + 4;
  const std::size_t fence_close = doc.find("```", body);
  ASSERT_NE(fence_close, std::string::npos);
  EXPECT_EQ(doc.substr(body, fence_close - body), dump)
      << "the spec's worked example no longer matches the writer's bytes; "
         "regenerate it with: ftdl-obsq <canonical log> --hexdump";
}

TEST_F(ObsStreamTest, TruncationMidChunkHeaderKeepsCompleteChunks) {
  const std::string path = log_path("obs_stream_trunc1.stream");
  const std::string bytes = write_chunked_counter_log(path, 3, 4);
  const LoadedLog full = load_stream(path);
  ASSERT_EQ(full.chunks.size(), 4u);  // strings + 3 data chunks
  ASSERT_EQ(full.records.size(), 12u);
  ASSERT_TRUE(check_log(full).ok());

  // Cut 16 bytes into the last chunk's header: everything before it must
  // still load, and the reported truncation offset is exactly the first
  // byte of the unrecoverable tail (that chunk's header).
  const std::uint64_t tail = full.chunks.back().file_offset;
  const std::string cut_path = log_path("obs_stream_trunc1_cut.stream");
  write_bytes(cut_path, bytes.substr(0, tail + 16));
  const LoadedLog cut = load_stream(cut_path);
  EXPECT_TRUE(cut.truncated);
  EXPECT_EQ(cut.truncation_offset, tail);
  EXPECT_EQ(cut.chunks.size(), 3u);
  EXPECT_EQ(cut.records.size(), 8u);

  const CheckReport rep = check_log(cut);
  EXPECT_FALSE(rep.ok());
  bool found = false;
  for (const CheckProblem& p : rep.problems) {
    if (p.kind == "truncated") {
      found = true;
      // Records 0..7 survive; the first unrecovered sequence is 8.
      EXPECT_EQ(p.seq, 8u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(rep.to_string().find("8"), std::string::npos);
}

TEST_F(ObsStreamTest, TruncationMidPayloadKeepsCompleteChunks) {
  const std::string path = log_path("obs_stream_trunc2.stream");
  const std::string bytes = write_chunked_counter_log(path, 3, 4);
  const LoadedLog full = load_stream(path);
  const std::uint64_t tail = full.chunks.back().file_offset;

  // Header complete, payload short: the whole tail chunk is unrecoverable
  // and the truncation offset still points at its header.
  const std::string cut_path = log_path("obs_stream_trunc2_cut.stream");
  write_bytes(cut_path, bytes.substr(0, tail + kChunkHeaderBytes + 10));
  const LoadedLog cut = load_stream(cut_path);
  EXPECT_TRUE(cut.truncated);
  EXPECT_EQ(cut.truncation_offset, tail);
  EXPECT_EQ(cut.records.size(), 8u);
  EXPECT_FALSE(check_log(cut).ok());
}

TEST_F(ObsStreamTest, CrcCorruptionRejectsOnlyThatChunk) {
  const std::string path = log_path("obs_stream_crc.stream");
  std::string bytes = write_chunked_counter_log(path, 3, 4);
  const LoadedLog full = load_stream(path);
  ASSERT_EQ(full.chunks.size(), 4u);

  // Flip one payload byte of the middle data chunk (records 4..7).
  const std::uint64_t off =
      full.chunks[2].file_offset + kChunkHeaderBytes + 5;
  bytes[off] = static_cast<char>(bytes[off] ^ 0x40);
  const std::string bad_path = log_path("obs_stream_crc_bad.stream");
  write_bytes(bad_path, bytes);

  const LoadedLog bad = load_stream(bad_path);
  EXPECT_FALSE(bad.truncated);  // framing intact, later chunks still load
  ASSERT_EQ(bad.errors.size(), 1u);
  EXPECT_NE(bad.errors[0].find("CRC mismatch"), std::string::npos);
  EXPECT_EQ(bad.chunks.size(), 3u);
  EXPECT_EQ(bad.records.size(), 8u);

  const CheckReport rep = check_log(bad);
  EXPECT_FALSE(rep.ok());
  bool damage = false, gap = false;
  for (const CheckProblem& p : rep.problems) {
    if (p.kind == "chunk_damage") damage = true;
    if (p.kind == "missing_record_seq") {
      gap = true;
      EXPECT_EQ(p.seq, 4u);  // first record of the rejected chunk
    }
  }
  EXPECT_TRUE(damage);
  EXPECT_TRUE(gap);
}

TEST_F(ObsStreamTest, NotAStreamFileThrows) {
  const std::string path = log_path("obs_stream_not_a_log.stream");
  write_bytes(path, "definitely not a stream file");
  EXPECT_THROW(load_stream(path), Error);
  EXPECT_THROW(load_stream("obs_stream_does_not_exist.stream"), Error);
}

TEST_F(ObsStreamTest, PublishAfterFinishDropsAndCounts) {
  const std::string path = log_path("obs_stream_after_finish.stream");
  StreamWriter w(path, deterministic_options());
  Record r;
  r.kind = static_cast<std::uint8_t>(RecordKind::CounterAdd);
  r.name_id = w.intern("x");
  r.payload = i64_bits(1);
  w.publish(&r, 1);
  w.finish();
  w.publish(&r, 1);
  w.finish();  // idempotent
  const StreamStats s = w.stats();
  EXPECT_EQ(s.records, 1u);
  EXPECT_EQ(s.dropped_after_finish, 1u);
  EXPECT_EQ(load_stream(path).records.size(), 1u);
}

TEST_F(ObsStreamTest, ConcurrentPublishersKeepSequencesContiguous) {
  const std::string path = log_path("obs_stream_threads.stream");
  {
    StreamWriterOptions opt;
    opt.chunk_records = 16;  // force many chunks and periodic sweeps
    opt.flush_period_ms = 1;
    StreamWriter w(path, opt);
    const std::uint32_t name = w.intern("thread/adds");
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&w, name] {
        for (int i = 0; i < 500; ++i) {
          Record r;
          r.kind = static_cast<std::uint8_t>(RecordKind::CounterAdd);
          r.name_id = name;
          r.payload = i64_bits(1);
          w.publish(&r, 1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    w.finish();
  }
  const LoadedLog log = load_stream(path);
  ASSERT_EQ(log.records.size(), 2000u);
  EXPECT_TRUE(check_log(log).ok()) << check_log(log).to_string();
  std::set<std::uint64_t> seqs;
  for (const Record& r : log.records) seqs.insert(r.seq);
  EXPECT_EQ(seqs.size(), 2000u);
  EXPECT_EQ(*seqs.rbegin(), 1999u);
  EXPECT_EQ(reconstruct(log).metrics.counters.at("thread/adds"), 2000);
}

// ---- registry integration ----

/// Records a small instrumented workload: two tracks, nested spans with
/// args and post-construction annotations, counters, gauges.
void record_workload(obs::Registry& r) {
  const std::uint32_t t0 = r.track("host", "main");
  const std::uint32_t t1 = r.track("sim:layer0", "LoopT bursts");
  r.begin(t0, "compile", 10.0, "compiler", {{"layer", "conv1"}});
  obs::count("compiler/layers", 2);
  r.begin(t0, "schedule", 11.0, "compiler");
  r.annotate(t0, "budget", "8000");
  r.end(t0, 14.0);
  r.end(t0, 15.5);
  r.begin(t1, "burst", 100.0, "sim");
  obs::count("sim/bursts");
  r.end(t1, 140.0);
  obs::gauge("host/frame_seconds", 0.25);
  {
    // Own track: wall-clock timestamps must not interleave with the fixed
    // virtual timestamps the explicit begin()/end() calls above use.
    obs::ScopedSpan span("serve", "enqueue", {}, "client-0");
    span.add_arg("request", "7");
  }
}

TEST_F(ObsStreamTest, LogDerivedExportsAreByteIdenticalToLiveOnes) {
  const std::string path = log_path("obs_stream_registry.stream");
  obs::set_enabled(true, path);
  obs::Registry& r = obs::Registry::global();
  record_workload(r);

  // Live exports from the in-memory backend (still recording alongside).
  const std::string live_trace = r.chrome_trace_json();
  const std::string live_metrics = r.metrics_json();

  const StreamStats s = r.detach_stream();
  EXPECT_GT(s.records, 0u);
  EXPECT_GT(s.bytes_written, 0u);

  const LoadedLog log = load_stream(path);
  EXPECT_TRUE(check_log(log).ok()) << check_log(log).to_string();
  const ReconstructedLog rec = reconstruct(log);
  EXPECT_EQ(obs::render_chrome_trace(rec.tracks, rec.events), live_trace);
  EXPECT_EQ(obs::render_metrics_json(rec.metrics), live_metrics);

  // Detaching recorded the writer-side accounting as registry counters
  // (memory-only: the log was already closed when they were written).
  EXPECT_EQ(r.counter("obs/stream_records"),
            static_cast<std::int64_t>(s.records));
  EXPECT_GT(r.counter("obs/stream_bytes"), 0);
}

TEST_F(ObsStreamTest, SetEnabledOverloadAttachesAndDetaches) {
  const std::string path = log_path("obs_stream_enable.stream");
  obs::Registry& r = obs::Registry::global();
  EXPECT_FALSE(r.stream_attached());
  obs::set_enabled(true, path);
  EXPECT_TRUE(r.stream_attached());
  obs::count("x/y");
  obs::set_enabled(false);  // detaches and finishes the log
  EXPECT_FALSE(r.stream_attached());
  const LoadedLog log = load_stream(path);
  EXPECT_TRUE(check_log(log).ok());
  EXPECT_EQ(reconstruct(log).metrics.counters.at("x/y"), 1);

  // Empty path = in-memory fallback only, exactly like set_enabled(on).
  obs::set_enabled(true, "");
  EXPECT_FALSE(r.stream_attached());
}

TEST_F(ObsStreamTest, AttachmentSnapshotsExistingScalarState) {
  const std::string path = log_path("obs_stream_snapshot.stream");
  obs::set_enabled(true);
  obs::Registry& r = obs::Registry::global();
  const std::uint32_t t = r.track("host", "main");
  obs::count("pre/existing", 5);
  obs::gauge("pre/gauge", 1.5);

  obs::set_enabled(true, path);  // attach mid-run
  r.begin(t, "late", 50.0, "test");
  r.end(t, 60.0);
  r.detach_stream();

  const ReconstructedLog rec = reconstruct(load_stream(path));
  EXPECT_EQ(rec.metrics.counters.at("pre/existing"), 5);
  EXPECT_DOUBLE_EQ(rec.metrics.gauges.at("pre/gauge"), 1.5);
  ASSERT_EQ(rec.tracks.size(), 1u);  // pre-registered track replayed
  EXPECT_EQ(rec.tracks[0].process, "host");
  ASSERT_EQ(rec.events.size(), 2u);  // but pre-attachment events are not
  EXPECT_EQ(rec.events[0].name, "late");
}

TEST_F(ObsStreamTest, ConcurrentScopedSpansThroughRegistryCheckClean) {
  const std::string path = log_path("obs_stream_registry_mt.stream");
  obs::set_enabled(true, path);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t] {
      obs::set_thread_track_name("worker-" + std::to_string(t));
      for (int i = 0; i < 200; ++i) {
        obs::ScopedSpan span("test", "tick");
        span.add_arg("i", std::to_string(i));
        obs::count("mt/ticks");
      }
    });
  }
  for (std::thread& t : threads) t.join();

  obs::Registry& r = obs::Registry::global();
  const std::string live_trace = r.chrome_trace_json();
  r.detach_stream();

  const LoadedLog log = load_stream(path);
  const CheckReport rep = check_log(log);
  EXPECT_TRUE(rep.ok()) << rep.to_string();
  const ReconstructedLog rec = reconstruct(log);
  EXPECT_EQ(obs::render_chrome_trace(rec.tracks, rec.events), live_trace);
  EXPECT_EQ(rec.metrics.counters.at("mt/ticks"), 800);
}

TEST_F(ObsStreamTest, TransactionsReconstructFromServeShapedSpans) {
  const std::string path = log_path("obs_stream_txn.stream");
  obs::set_enabled(true, path);
  obs::Registry& r = obs::Registry::global();
  const std::uint32_t client = r.track("host", "client-0");
  const std::uint32_t worker = r.track("host", "serve-0");

  r.begin(client, "enqueue", 10.0, "serve");
  r.annotate(client, "request", "1");
  r.end(client, 12.0);
  r.begin(client, "enqueue", 13.0, "serve");
  r.annotate(client, "request", "2");
  r.annotate(client, "rejected", "queue_full");
  r.end(client, 13.5);

  r.begin(worker, "batch", 20.0, "serve",
          {{"batch", "1"}, {"size", "1"}});
  r.begin(worker, "execute", 21.0, "serve", {{"request", "1"}});
  r.end(worker, 30.0);
  r.end(worker, 31.0);
  r.detach_stream();

  const std::vector<Transaction> txns =
      reconstruct_transactions(reconstruct(load_stream(path)));
  ASSERT_EQ(txns.size(), 2u);
  const Transaction& ok = txns[0].request == 1 ? txns[0] : txns[1];
  EXPECT_TRUE(ok.has_enqueue);
  EXPECT_TRUE(ok.has_execute);
  EXPECT_DOUBLE_EQ(ok.enqueue_ts, 10.0);
  EXPECT_DOUBLE_EQ(ok.enqueue_dur, 2.0);
  EXPECT_DOUBLE_EQ(ok.execute_ts, 21.0);
  EXPECT_DOUBLE_EQ(ok.execute_dur, 9.0);
  EXPECT_EQ(ok.batch, 1u);
  EXPECT_EQ(ok.batch_size, 1);
  EXPECT_TRUE(ok.reject_reason.empty());
  const Transaction& rej = txns[0].request == 2 ? txns[0] : txns[1];
  EXPECT_EQ(rej.request, 2u);
  EXPECT_EQ(rej.reject_reason, "queue_full");
  EXPECT_FALSE(rej.has_execute);
}

TEST_F(ObsStreamTest, HexDumpFormatsOffsetsBytesAndAscii) {
  std::string bytes = "FTDLSTRM";
  bytes.push_back('\x01');
  bytes.push_back('\x00');
  const std::string dump = format_hex_dump(bytes);
  EXPECT_EQ(dump,
            "00000000  46 54 44 4c 53 54 52 4d  01 00                    "
            "|FTDLSTRM..|\n");
}

}  // namespace
