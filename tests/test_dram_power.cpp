// Tests for the DRAM model and the FPGA/system power model.
#include <gtest/gtest.h>

#include "arch/overlay_config.h"
#include "common/error.h"
#include "dram/bank_sim.h"
#include "dram/dram_power.h"
#include "fpga/device_zoo.h"
#include "power/fpga_power.h"

namespace ftdl {
namespace {

TEST(DramSpec, Ddr4IsValid) {
  const dram::DramSpec s = dram::DramSpec::ddr4_2400();
  EXPECT_NO_THROW(s.validate());
  EXPECT_GT(s.peak_bytes_per_sec, 19e9);
}

TEST(DramTrace, ByteAccounting) {
  dram::AccessTrace t;
  t.add(0, dram::AccessKind::Read, 100);
  t.add(10, dram::AccessKind::Write, 50);
  t.add(20, dram::AccessKind::Read, 25);
  EXPECT_EQ(t.read_bytes(), 125u);
  EXPECT_EQ(t.write_bytes(), 50u);
  EXPECT_EQ(t.total_bytes(), 175u);
}

TEST(DramPower, EnergyScalesWithVolume) {
  const dram::DramSpec spec = dram::DramSpec::ddr4_2400();
  const auto small = dram::evaluate_volume(1 << 20, 1 << 20, 0.01, spec);
  const auto big = dram::evaluate_volume(1 << 24, 1 << 24, 0.01, spec);
  EXPECT_GT(big.total_joules(), small.total_joules());
  // Access-proportional components scale 16x; background does not.
  EXPECT_NEAR(big.io_joules / small.io_joules, 16.0, 1e-6);
  // Background energy depends only weakly on volume (standby blend).
  EXPECT_GT(big.background_joules, 0.0);
  EXPECT_LT(std::abs(big.background_joules - small.background_joules),
            big.background_joules);
}

TEST(DramPower, TransferTimeMatchesPeakBandwidth) {
  const dram::DramSpec spec = dram::DramSpec::ddr4_2400();
  const std::uint64_t bytes = 1 << 30;
  const auto r = dram::evaluate_volume(bytes, 0, 1.0, spec, /*channels=*/1);
  EXPECT_NEAR(r.transfer_seconds, double(bytes) / spec.peak_bytes_per_sec, 1e-9);
  const auto r2 = dram::evaluate_volume(bytes, 0, 1.0, spec, /*channels=*/2);
  EXPECT_NEAR(r2.transfer_seconds, r.transfer_seconds / 2.0, 1e-9);
}

TEST(DramPower, TraceEvaluationUsesClock) {
  dram::AccessTrace t;
  t.add(0, dram::AccessKind::Read, 1 << 20);
  t.total_cycles = 650'000'000;  // one second at 650 MHz
  const auto r = dram::evaluate_trace(t, dram::DramSpec::ddr4_2400(), 650e6);
  EXPECT_NEAR(r.span_seconds, 1.0, 1e-9);
  EXPECT_GT(r.average_watts(), 0.0);
  EXPECT_THROW(dram::evaluate_trace(t, dram::DramSpec::ddr4_2400(), 0.0),
               ConfigError);
}

TEST(DramPower, IdleTraceStillBurnsBackground) {
  const auto r = dram::evaluate_volume(0, 0, 1.0, dram::DramSpec::ddr4_2400());
  EXPECT_GT(r.background_joules, 0.0);
  EXPECT_DOUBLE_EQ(r.io_joules, 0.0);
  EXPECT_DOUBLE_EQ(r.rw_joules, 0.0);
}

TEST(FpgaPower, PaperConfigLandsNearReportedPower) {
  // Table II: ~45.8 W for the 1200-TPE design at 650 MHz, ~81% activity.
  const auto b = power::estimate_power(fpga::ultrascale_vu125(),
                                       arch::paper_config(), 0.811,
                                       /*dram_avg_w=*/3.5);
  EXPECT_GT(b.total_w(), 38.0);
  EXPECT_LT(b.total_w(), 54.0);
  EXPECT_GT(b.dsp_w, b.clock_w);  // the datapath dominates
}

TEST(FpgaPower, PowerScalesWithActivityAndClock) {
  const fpga::Device dev = fpga::ultrascale_vu125();
  arch::OverlayConfig cfg = arch::paper_config();
  const auto busy = power::estimate_power(dev, cfg, 0.9, 0.0);
  const auto idle = power::estimate_power(dev, cfg, 0.1, 0.0);
  EXPECT_GT(busy.total_w(), idle.total_w());
  EXPECT_DOUBLE_EQ(busy.static_w, idle.static_w);  // leakage is constant

  arch::OverlayConfig slow = cfg;
  slow.clocks = fpga::ClockPair::from_high(325e6);
  const auto half = power::estimate_power(dev, slow, 0.9, 0.0);
  EXPECT_NEAR(half.dsp_w, busy.dsp_w / 2.0, 1e-9);
}

TEST(FpgaPower, GopsPerWatt) {
  power::PowerBreakdown b;
  b.dsp_w = 40.0;
  b.static_w = 5.8;
  EXPECT_NEAR(power::power_efficiency_gops_per_w(1264.9, b), 27.6, 0.1);
}

TEST(BankSim, SequentialStreamsAreMostlyRowHits) {
  dram::AccessTrace t;
  for (int i = 0; i < 64; ++i) {
    t.add(static_cast<std::uint64_t>(i), dram::AccessKind::Read, 16384);
  }
  const auto r = dram::replay_trace(t, dram::DramSpec::ddr4_2400());
  // 16 KB events over 1 KB rows in 64 B bursts: ~15 of every 16 bursts
  // hit the open row.
  EXPECT_GT(r.bursts, 0u);
  EXPECT_GT(r.row_hit_rate(), 0.9);
  // Achieved bandwidth close to (but below) the pin peak.
  const double bw = r.achieved_bytes_per_sec(64ull * 16384);
  EXPECT_LT(bw, dram::DramSpec::ddr4_2400().peak_bytes_per_sec);
  EXPECT_GT(bw, 0.7 * dram::DramSpec::ddr4_2400().peak_bytes_per_sec);
}

TEST(BankSim, SmallScatteredEventsPayActivates) {
  // Alternating tiny read/write events ping-pong between regions: every
  // burst opens a new row in its bank far more often.
  dram::AccessTrace t;
  for (int i = 0; i < 256; ++i) {
    t.add(static_cast<std::uint64_t>(i),
          i % 2 ? dram::AccessKind::Write : dram::AccessKind::Read, 64);
  }
  const auto scattered = dram::replay_trace(t, dram::DramSpec::ddr4_2400());
  const double bw = scattered.achieved_bytes_per_sec(256 * 64);
  // Far below peak: activate/precharge dominate 64-byte transfers.
  EXPECT_LT(bw, 0.5 * dram::DramSpec::ddr4_2400().peak_bytes_per_sec);
}

TEST(BankSim, EffectiveBandwidthSupportsThePaperSetting) {
  // Two DDR4-2400 channels with the overlay's long tile bursts sustain
  // more than the paper's 26 GB/s assumption.
  const double one_channel = dram::effective_bandwidth(dram::DramSpec::ddr4_2400());
  EXPECT_GT(2.0 * one_channel, 26e9);
  EXPECT_LT(one_channel, dram::DramSpec::ddr4_2400().peak_bytes_per_sec);
}

TEST(BankSim, InvalidTimingRejected) {
  dram::BankTiming bad;
  bad.banks = 0;
  EXPECT_THROW(dram::replay_trace(dram::AccessTrace{},
                                  dram::DramSpec::ddr4_2400(), bad),
               ConfigError);
}

}  // namespace
}  // namespace ftdl
