// Tests for the network-spec parser.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "frontend/spec_parser.h"

namespace ftdl::frontend {
namespace {

constexpr const char* kTinySpec = R"(
# a LeNet-ish toy
network toy
input 1 28 28
conv c1 out=6 k=5 pad=2
pool p1 k=2
conv c2 out=16 k=5
pool p2 k=2
fc f1 out=120 relu
fc f2 out=10
)";

TEST(SpecParser, ParsesSequentialNetwork) {
  const nn::Network net = parse_network_spec(kTinySpec);
  EXPECT_EQ(net.name(), "toy");
  ASSERT_EQ(net.layers().size(), 6u);
  const nn::Layer& c1 = net.layers()[0];
  EXPECT_EQ(c1.in_c, 1);
  EXPECT_EQ(c1.out_c, 6);
  EXPECT_EQ(c1.kh, 5);
  EXPECT_EQ(c1.pad, 2);
  EXPECT_TRUE(c1.relu);
  // Shapes inferred through the chain: 28 -> 28 -> 14 -> 10 -> 5.
  const nn::Layer& c2 = net.layers()[2];
  EXPECT_EQ(c2.in_c, 6);
  EXPECT_EQ(c2.in_h, 14);
  EXPECT_EQ(c2.out_h(), 10);
  const nn::Layer& f1 = net.layers()[4];
  EXPECT_EQ(f1.mm_m, 16 * 5 * 5);
  EXPECT_EQ(f1.mm_n, 120);
  EXPECT_TRUE(f1.relu);
  const nn::Layer& f2 = net.layers()[5];
  EXPECT_EQ(f2.mm_m, 120);
  EXPECT_FALSE(f2.relu);
}

TEST(SpecParser, ParsesBranchingGraph) {
  const nn::Network net = parse_network_spec(R"(
network branchy
input 8 16 16
conv stem out=16 k=3 pad=1
conv a out=8 k=1 from=stem
conv b out=8 k=3 pad=1 from=stem
concat cat from=a,b
conv tail out=4 k=1
)");
  ASSERT_EQ(net.layers().size(), 5u);
  EXPECT_EQ(net.layers()[3].kind, nn::LayerKind::Concat);
  // tail sees 16 concatenated channels.
  EXPECT_EQ(net.layers()[4].in_c, 16);
  EXPECT_NO_THROW(net.validate_graph());
}

TEST(SpecParser, DefaultsAndFlags) {
  const nn::Network net = parse_network_spec(R"(
network d
input 4 8 8
conv c out=4 norelu        # k defaults to 3, stride 1, pad 0
pool p k=2 avg
)");
  EXPECT_EQ(net.layers()[0].kh, 3);
  EXPECT_EQ(net.layers()[0].stride, 1);
  EXPECT_FALSE(net.layers()[0].relu);
  EXPECT_EQ(net.layers()[1].pool_op, nn::PoolOp::Avg);
  EXPECT_EQ(net.layers()[1].stride, 2);  // stride defaults to k
}

TEST(SpecParser, DepthwiseStatement) {
  const nn::Network net = parse_network_spec(R"(
network sep
input 8 16 16
depthwise dw k=3 stride=2 pad=1
conv pw out=16 k=1
)");
  ASSERT_EQ(net.layers().size(), 2u);
  const nn::Layer& dw = net.layers()[0];
  EXPECT_EQ(dw.kind, nn::LayerKind::Depthwise);
  EXPECT_EQ(dw.in_c, 8);
  EXPECT_EQ(dw.out_h(), 8);  // stride 2
  EXPECT_EQ(net.layers()[1].in_c, 8);  // channels pass through
  EXPECT_EQ(net.layers()[1].in_h, 8);
}

TEST(SpecParser, NonSquareKernel) {
  const nn::Network net = parse_network_spec(R"(
network seq
input 64 50 1
conv c out=32 kh=5 kw=1 k=5
)");
  EXPECT_EQ(net.layers()[0].kh, 5);
  EXPECT_EQ(net.layers()[0].kw, 1);
}

TEST(SpecParser, ErrorsCarryLineNumbers) {
  try {
    parse_network_spec("network x\ninput 3 8 8\nconv c k=3\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("out="), std::string::npos);
  }
}

TEST(SpecParser, RejectsMalformedSpecs) {
  EXPECT_THROW(parse_network_spec(""), ConfigError);
  EXPECT_THROW(parse_network_spec("input 3 8 8\n"), ConfigError);  // no network
  EXPECT_THROW(parse_network_spec("network x\nconv c out=4\n"),
               ConfigError);  // no input
  EXPECT_THROW(parse_network_spec("network x\ninput 3 8 8\nwarp c out=4\n"),
               ConfigError);  // unknown keyword
  EXPECT_THROW(
      parse_network_spec("network x\ninput 3 8 8\nconv c out=4 from=ghost\n"),
      ConfigError);  // unknown producer
  EXPECT_THROW(
      parse_network_spec("network x\ninput 3 8 8\nconv c out=zz\n"),
      ConfigError);  // non-integer option
}

TEST(SpecParser, FileRoundtrip) {
  const std::string path = "spec_tmp.ftdl";
  {
    std::ofstream out(path);
    out << kTinySpec;
  }
  const nn::Network net = parse_network_file(path);
  EXPECT_EQ(net.layers().size(), 6u);
  std::filesystem::remove(path);
  EXPECT_THROW(parse_network_file("nonexistent.ftdl"), ConfigError);
}

}  // namespace
}  // namespace ftdl::frontend
