// Tests for the quantization study module.
#include <gtest/gtest.h>

#include "common/error.h"
#include "quant/quantize.h"

namespace ftdl::quant {
namespace {

TEST(Quant, CalibrationMapsMaxAbsToTopCode) {
  TensorF t({4});
  t[0] = 0.5f; t[1] = -2.0f; t[2] = 1.0f; t[3] = 0.0f;
  const QuantParams p = calibrate(t, 8);
  EXPECT_EQ(p.bits, 8);
  EXPECT_NEAR(p.scale, 2.0f / 127.0f, 1e-7);
  const nn::Tensor16 q = quantize(t, p);
  EXPECT_EQ(q[1], -127);  // max magnitude hits (almost) the top code
  EXPECT_EQ(q[3], 0);
}

TEST(Quant, QuantizeSaturatesAtRange) {
  TensorF t({2});
  t[0] = 1.0f; t[1] = -1.0f;
  QuantParams p;
  p.bits = 4;           // codes -8..7
  p.scale = 0.01f;      // deliberately too small: 1.0/0.01 = 100 >> 7
  const nn::Tensor16 q = quantize(t, p);
  EXPECT_EQ(q[0], 7);
  EXPECT_EQ(q[1], -8);
}

TEST(Quant, RoundTripErrorBoundedByHalfLsb) {
  TensorF t({64});
  fill_random_float(t, 11);
  const QuantParams p = calibrate(t, 12);
  const TensorF back = dequantize(quantize(t, p), p);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_LE(std::abs(back[i] - t[i]), 0.5f * p.scale + 1e-7f);
  }
}

TEST(Quant, SqnrBehaviour) {
  TensorF a({3});
  a[0] = 1.0f; a[1] = 2.0f; a[2] = -1.0f;
  EXPECT_DOUBLE_EQ(sqnr_db(a, a), 200.0);  // exact match
  TensorF b = a;
  b[0] += 0.1f;
  const double s = sqnr_db(a, b);
  EXPECT_GT(s, 20.0);
  EXPECT_LT(s, 40.0);
  TensorF wrong({2});
  EXPECT_THROW(sqnr_db(a, wrong), ConfigError);
  EXPECT_THROW(calibrate(a, 1), ConfigError);
  EXPECT_THROW(calibrate(a, 17), ConfigError);
}

TEST(Quant, SqnrImprovesSixDbPerBit) {
  // The classic quantization law: ~6 dB per extra bit.
  const nn::Layer layer = nn::make_conv("c", 8, 10, 10, 8, 3, 1, 1);
  double prev = 0.0;
  for (int bits : {6, 8, 10, 12}) {
    const LayerQuantStudy s = study_layer(layer, bits, 5);
    if (prev > 0.0) {
      EXPECT_GT(s.output_sqnr_db, prev + 8.0);   // 2 bits => ~12 dB
      EXPECT_LT(s.output_sqnr_db, prev + 16.0);
    }
    prev = s.output_sqnr_db;
  }
}

TEST(Quant, SixteenBitIsEffectivelyLossless) {
  // The paper's operating point: >= 70 dB output SQNR on CONV and MM —
  // far beyond any accuracy-relevant threshold (8-bit sits near 40 dB).
  const LayerQuantStudy conv =
      study_layer(nn::make_conv("c", 16, 14, 14, 16, 3, 1, 1), 16, 7);
  EXPECT_GT(conv.output_sqnr_db, 70.0);
  EXPECT_GT(conv.weight_sqnr_db, 80.0);
  const LayerQuantStudy mm =
      study_layer(nn::make_matmul("fc", 128, 64, 4), 16, 9);
  EXPECT_GT(mm.output_sqnr_db, 70.0);

  const LayerQuantStudy conv8 =
      study_layer(nn::make_conv("c", 16, 14, 14, 16, 3, 1, 1), 8, 7);
  EXPECT_LT(conv8.output_sqnr_db, conv.output_sqnr_db - 30.0);
}

TEST(Quant, StudyRejectsHostLayers) {
  EXPECT_THROW(study_layer(nn::make_ewop("e", 5), 8, 1), ConfigError);
}

}  // namespace
}  // namespace ftdl::quant
