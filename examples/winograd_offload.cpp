// Winograd offload example: take one GoogLeNet 3x3 layer, verify the exact
// integer F(2x2,3x3) transform functionally, and compare the direct vs
// transformed-domain schedules on the paper overlay.
//
//   $ ./examples/winograd_offload
#include <cstdio>

#include "common/rng.h"
#include "common/str_util.h"
#include "ftdl/ftdl.h"

using namespace ftdl;

int main() {
  const nn::Layer layer = nn::make_conv("inception_3b/3x3", 128, 28, 28, 192,
                                        3, 1, 1);
  const arch::OverlayConfig cfg = arch::paper_config();

  // 1. Functional proof on a scaled-down sibling: the scaled-integer
  //    Winograd transform is *bit-identical* to direct convolution.
  const nn::Layer tiny = nn::make_conv("tiny", 8, 12, 12, 8, 3, 1, 1);
  Rng rng(2);
  nn::Tensor16 in({8, 12, 12});
  nn::Tensor16 w({8, 8, 3, 3});
  in.fill_random(rng, 127);
  w.fill_random(rng, 127);
  const bool exact =
      winograd::winograd_conv(tiny, in, w) == nn::conv2d_reference(tiny, in, w);
  std::printf("Functional check (%s): Winograd %s direct convolution.\n",
              tiny.name.c_str(), exact ? "bit-matches" : "DIFFERS FROM");

  // 2. Scheduling comparison on the real layer.
  const winograd::WinogradPlan plan = winograd::plan_winograd(layer);
  std::printf("\n%s: %s direct MACs -> 16 MMs of [%lld x %lld] x %lld tiles "
              "(%s MACs, %.2fx fewer)\n",
              layer.name.c_str(), format_count(double(plan.direct_macs)).c_str(),
              static_cast<long long>(plan.mm.mm_n),
              static_cast<long long>(plan.mm.mm_m),
              static_cast<long long>(plan.mm.mm_p),
              format_count(double(plan.winograd_macs)).c_str(),
              plan.mac_reduction());
  std::printf("Host-side transforms: %s EWOP ops (joins the pipelined host "
              "class)\n",
              format_count(double(plan.transform_ewop_ops)).c_str());

  const auto cmp = winograd::compare_schedules(layer, cfg, 30'000);
  std::printf("\nDirect schedule:   %lld cycles\n",
              static_cast<long long>(cmp.direct_cycles));
  std::printf("Winograd schedule: %lld cycles (16 MMs)\n",
              static_cast<long long>(cmp.winograd_cycles));
  std::printf("Realized speedup:  %.2fx of the 2.25x multiply cut\n",
              cmp.speedup());
  return exact ? 0 : 1;
}
