// Edge deployment: FTDL on a small Zynq-7020 (220 DSPs) running the two
// sequence-analysis workloads of Table I — demonstrating that the same
// parameterized overlay and compiler scale down (Sec. III-C's portability
// claim) and that the MM path (LSTM gates) schedules alongside CONV.
//
//   $ ./examples/edge_deploy
#include <cstdio>

#include "common/str_util.h"
#include "common/table.h"
#include "ftdl/ftdl.h"

using namespace ftdl;

int main() {
  FrameworkOptions opts;
  opts.device_name = "xc7z020";
  opts.config.d1 = 5;
  opts.config.d2 = 4;
  opts.config.d3 = 9;                // 180 TPEs
  opts.config.psumbuf_words = 1024;  // fit the part's 280 BRAM18
  opts.clock_policy = ClockPolicy::DeriveFloor;  // let timing pick the clock
  opts.search_budget_per_layer = 25'000;
  Framework fw{opts};

  std::printf("Edge overlay: %s on %s\n", fw.config().to_string().c_str(),
              fw.device().name.c_str());
  std::printf("Post-P&R fmax %s -> operating CLKh %s\n\n",
              format_hz(fw.timing().clk_h_fmax_hz).c_str(),
              format_hz(fw.config().clocks.clk_h_hz).c_str());

  AsciiTable table({"Model", "Overlay ops", "HW eff.", "Inferences/s",
                    "GOPS", "GOPS/W"});
  for (const char* name : {"Sentimental-seqCNN", "Sentimental-seqLSTM",
                           "AlphaGoZero"}) {
    const nn::Network net = nn::model_by_name(name);
    const NetworkReport r = fw.evaluate(net);
    table.row({name,
               format_count(double(net.stats().conv_ops + net.stats().mm_ops)),
               format_percent(r.schedule.hardware_efficiency),
               strformat("%.1f", r.fps()),
               strformat("%.1f", r.effective_gops()),
               strformat("%.1f", r.gops_per_w())});
  }
  table.print();

  std::printf(
      "\nNote: seqLSTM runs batch-1 gate matrices (P=1), so no activation\n"
      "reuse exists for the double pump and the weight port halves the MACC\n"
      "rate — the architectural reason LSTMs favour batching on FTDL.\n");
  return 0;
}
