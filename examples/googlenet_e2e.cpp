// End-to-end GoogLeNet inference study: schedules all 58 overlay layers on
// the Table II configuration, prints the per-layer breakdown, and rolls up
// FPS / efficiency / power — the paper's headline experiment.
//
//   $ ./examples/googlenet_e2e [search_budget_per_layer]
#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"
#include "common/table.h"
#include "ftdl/ftdl.h"

using namespace ftdl;

int main(int argc, char** argv) {
  FrameworkOptions opts;
  opts.search_budget_per_layer = argc > 1 ? std::atoll(argv[1]) : 60'000;
  Framework fw{opts};

  const nn::Network net = nn::googlenet();
  std::printf("GoogLeNet on %s: %s total ops, %s weights (16-bit)\n\n",
              fw.config().to_string().c_str(),
              format_count(double(net.stats().total_ops())).c_str(),
              format_bytes(double(net.stats().weight_bytes())).c_str());

  const NetworkReport report = fw.evaluate(net);

  AsciiTable table({"Layer", "MACs", "Groups", "C_exe", "Eff.", "E_WBUF",
                    "Bound"});
  for (const compiler::LayerProgram& lp : report.schedule.layers) {
    const auto& p = lp.perf;
    const char* bound = "compute";
    if (p.c_exe == p.c_dram_rd || p.c_exe == p.c_dram_wr) bound = "DRAM";
    else if (p.c_exe == p.c_act_bus) bound = "ActBUS";
    else if (p.c_exe == p.c_psum_bus) bound = "PSumBUS";
    table.row({lp.layer.name, format_count(double(lp.layer.macs())),
               std::to_string(lp.weight_groups),
               std::to_string(lp.total_cycles()),
               format_percent(p.hardware_efficiency),
               strformat("%.2f", p.e_wbuf), bound});
  }
  table.print();

  std::printf("\n=== Network roll-up ===\n");
  std::printf("  hardware efficiency: %s (paper: 81.1%%)\n",
              format_percent(report.schedule.hardware_efficiency).c_str());
  std::printf("  throughput:          %.1f FPS (paper: 402.6)\n", report.fps());
  std::printf("  effective GOPS:      %.0f\n", report.effective_gops());
  std::printf("  total power:         %.1f W (paper: 45.8)\n",
              report.power.total_w());
  std::printf("  power efficiency:    %.1f GOPS/W (paper: 27.6)\n",
              report.gops_per_w());
  std::printf("  host EWOP (pipelined, not in FPS): %s ops/frame\n",
              format_count(double(report.schedule.host_ewop_ops)).c_str());
  compiler::schedule_to_csv(report.schedule, "googlenet_schedule.csv");
  std::printf("  per-layer schedule exported to googlenet_schedule.csv\n");
  return 0;
}
