// Design-space exploration example: sweep overlay shapes for GoogLeNet on
// the vu125 and print the throughput/power Pareto frontier.
//
//   $ ./examples/dse_pareto [budget_per_layer]
#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"
#include "common/table.h"
#include "ftdl/ftdl.h"

using namespace ftdl;

int main(int argc, char** argv) {
  dse::DseOptions opt;
  opt.search_budget_per_layer = argc > 1 ? std::atoll(argv[1]) : 6'000;
  opt.sweep_actbuf = true;

  const fpga::Device dev = fpga::ultrascale_vu125();
  std::printf("Exploring overlay shapes for GoogLeNet on %s "
              "(%zu D1 candidates x %d columns x 3 ActBUF sizes)...\n\n",
              dev.name.c_str(), opt.d1_candidates.size(), dev.dsp_columns);

  const dse::DseResult r =
      dse::explore(nn::googlenet(), dev, arch::paper_config(), opt);

  AsciiTable table({"D1xD2xD3", "ActBUF", "CLKh", "FPS", "Eff.", "Power",
                    "GOPS/W", "Pareto"});
  for (const dse::DsePoint& p : r.points) {
    table.row({strformat("%dx%dx%d", p.config.d1, p.config.d2, p.config.d3),
               std::to_string(p.config.actbuf_words),
               format_hz(p.clk_h_hz), strformat("%.1f", p.fps),
               format_percent(p.efficiency), strformat("%.1f W", p.power_w),
               strformat("%.1f", p.gops_per_w), p.pareto ? "*" : ""});
  }
  table.print();

  const auto front = r.frontier();
  std::printf("\n%zu candidates evaluated, %zu on the {FPS, power} frontier.\n",
              r.points.size(), front.size());
  if (!front.empty()) {
    std::printf("Fastest: %dx%dx%d at %.1f FPS / %.1f W; most frugal "
                "frontier point: %dx%dx%d at %.1f FPS / %.1f W\n",
                front.front().config.d1, front.front().config.d2,
                front.front().config.d3, front.front().fps,
                front.front().power_w, front.back().config.d1,
                front.back().config.d2, front.back().config.d3,
                front.back().fps, front.back().power_w);
  }
  dse::export_csv(r, "dse_pareto.csv");
  std::printf("Full sweep exported to dse_pareto.csv\n");
  return 0;
}
