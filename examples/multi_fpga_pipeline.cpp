// Multi-FPGA pipeline example: make ResNet50 fully weight-stationary by
// partitioning it across vu125 devices (Sec. II-B1), then inspect the
// stage plan.
//
//   $ ./examples/multi_fpga_pipeline [num_devices]
#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"
#include "common/table.h"
#include "ftdl/ftdl.h"

using namespace ftdl;

int main(int argc, char** argv) {
  const arch::OverlayConfig cfg = arch::paper_config();
  const nn::Network net = nn::resnet50();

  std::printf("Scheduling %s on %s (Objective 2 minimizes WBUF duplication "
              "for residency)...\n",
              net.name().c_str(), cfg.to_string().c_str());
  const auto sched = compiler::schedule_network(
      net, cfg, compiler::Objective::Balance, 30'000);

  const int need = multifpga::min_devices_for_residency(sched);
  const int devices = argc > 1 ? std::atoi(argv[1]) : need;
  std::printf("Unique weights: %s words; per-device WBUF capacity: %s words; "
              "full residency needs %d devices.\n\n",
              format_count(double(net.stats().weight_words)).c_str(),
              format_count(double(multifpga::device_weight_capacity(cfg)))
                  .c_str(),
              need);

  const auto plan = multifpga::partition_pipeline(sched, devices);
  AsciiTable table({"Stage", "Layers", "First..Last", "Cycles", "Resident words",
                    "Egress"});
  for (const auto& st : plan.stages) {
    table.row({std::to_string(st.device_index),
               std::to_string(st.last_layer - st.first_layer + 1),
               strformat("%s .. %s",
                         sched.layers[st.first_layer].layer.name.c_str(),
                         sched.layers[st.last_layer].layer.name.c_str()),
               std::to_string(st.cycles),
               format_count(double(st.resident_weight_words)),
               format_bytes(st.egress_bytes)});
  }
  table.print();

  std::printf("\n%d-device pipeline: %.1f FPS (single device: %.1f), latency "
              "%.2f ms, balance %.2f, weights %s\n",
              devices, plan.fps, sched.fps(), plan.latency_seconds * 1e3,
              plan.balance, plan.weights_resident ? "resident" : "NOT resident");
  return 0;
}
