// Design-space explorer: for a user-specified CONV layer, compare overlay
// shapes (Objective 3) and scheduling objectives (Obj.1 vs Obj.2), and show
// where each solution sits on the roofline.
//
//   $ ./examples/design_explorer [in_c in_hw out_c k stride pad]
// Defaults to a GoogLeNet inception_4e/3x3-class layer.
#include <cstdio>
#include <cstdlib>

#include "common/str_util.h"
#include "common/table.h"
#include "ftdl/ftdl.h"

using namespace ftdl;

int main(int argc, char** argv) {
  const int in_c = argc > 1 ? std::atoi(argv[1]) : 160;
  const int hw = argc > 2 ? std::atoi(argv[2]) : 14;
  const int out_c = argc > 3 ? std::atoi(argv[3]) : 320;
  const int k = argc > 4 ? std::atoi(argv[4]) : 3;
  const int stride = argc > 5 ? std::atoi(argv[5]) : 1;
  const int pad = argc > 6 ? std::atoi(argv[6]) : 1;

  const nn::Layer layer =
      nn::make_conv("explored", in_c, hw, hw, out_c, k, stride, pad);
  std::printf("Exploring CONV %dx%dx%d -> %d (k=%d s=%d p=%d): %s MACs\n\n",
              in_c, hw, hw, out_c, k, stride, pad,
              format_count(double(layer.macs())).c_str());

  // --- Objective comparison on the paper overlay --------------------------
  const arch::OverlayConfig base = arch::paper_config();
  AsciiTable obj_table({"Objective", "C_exe", "us", "Eff.", "E_WBUF",
                        "WBUF/TPE"});
  for (auto obj : {compiler::Objective::Performance,
                   compiler::Objective::Balance}) {
    const auto prog = compiler::compile_layer(layer, base, obj, 60'000);
    obj_table.row({to_string(obj), std::to_string(prog.perf.c_exe),
                   strformat("%.1f", prog.perf.seconds(base) * 1e6),
                   format_percent(prog.perf.hardware_efficiency),
                   strformat("%.2f", prog.perf.e_wbuf),
                   std::to_string(prog.perf.buffers.wbuf_words_per_tpe)});
  }
  std::printf("--- Objectives on %s ---\n", base.to_string().c_str());
  obj_table.print();

  // --- Objective 3: overlay shapes at equal TPE cost ----------------------
  std::printf("\n--- Overlay shapes at 1200 TPEs (Objective 3) ---\n");
  nn::Network net("explored");
  net.add(layer);
  const auto choice = compiler::find_best_hw_config(
      net, base, fpga::ultrascale_vu125(), base.tpes(), 15'000);
  std::printf("Best shape: D1=%d D2=%d D3=%d -> %lld cycles (%.1f%% eff.)\n",
              choice.config.d1, choice.config.d2, choice.config.d3,
              static_cast<long long>(choice.schedule.total_cycles),
              100.0 * choice.schedule.hardware_efficiency);

  // --- Roofline ------------------------------------------------------------
  const auto study = roofline::run_roofline_study(layer, base, 25, 40'000);
  std::printf("\n--- Roofline (roof %.0f GOPS, %.0f GB/s) ---\n",
              study.peak_gops, study.dram_gbps);
  std::printf("Obj.1 best: %.0f GOPS | Obj.2 best: %.0f GOPS | WBUF savings "
              "%.1fx\n",
              study.best_gops_performance(), study.best_gops_balance(),
              study.wbuf_savings());
  roofline::export_csv(study, "design_explorer_roofline.csv");
  std::printf("Scatter written to design_explorer_roofline.csv\n");
  return 0;
}
