// Quickstart: compile one CONV layer onto the paper's overlay, inspect the
// schedule, and verify it functionally on the cycle-level simulator.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "common/str_util.h"
#include "ftdl/ftdl.h"

using namespace ftdl;

int main() {
  // 1. Build the framework: UltraScale vu125 with the Table II overlay
  //    (D1=12, D2=5, D3=20 -> 1200 TPEs at 650 MHz).
  Framework fw{FrameworkOptions{}};
  std::printf("Overlay: %s on %s (post-P&R fmax %s)\n\n",
              fw.config().to_string().c_str(), fw.device().name.c_str(),
              format_hz(fw.timing().clk_h_fmax_hz).c_str());

  // 2. Compile a GoogLeNet-class CONV layer.
  const nn::Layer layer = nn::make_conv("my_conv", 160, 14, 14, 320, 3, 1, 1);
  const compiler::LayerProgram prog = fw.compile(layer);
  std::printf("Layer %s: %s MACs\n", layer.name.c_str(),
              format_count(double(layer.macs())).c_str());
  std::printf("  mapping: %s\n",
              prog.mapping.to_string(prog.workload).c_str());
  std::printf("  C_exe = %lld cycles -> %.1f us at CLKh, efficiency %.1f%%, "
              "E_WBUF %.2f\n",
              static_cast<long long>(prog.perf.c_exe),
              prog.perf.seconds(fw.config()) * 1e6,
              100.0 * prog.perf.hardware_efficiency, prog.perf.e_wbuf);
  std::printf("  controller stream: %zu instructions, e.g. %s\n\n",
              prog.row_stream.size(), prog.row_stream[0].to_string().c_str());

  // 3. Functional check on a scaled-down sibling of the same layer, using
  //    a small overlay so the cycle-level simulation is instant.
  arch::OverlayConfig small = fw.config();
  small.d1 = 4;
  small.d2 = 2;
  small.d3 = 3;
  const nn::Layer tiny = nn::make_conv("tiny", 8, 10, 10, 12, 3, 1, 1);
  const compiler::LayerProgram tiny_prog =
      compiler::compile_layer(tiny, small);

  Rng rng(42);
  nn::Tensor16 input({tiny.in_c, tiny.in_h, tiny.in_w});
  nn::Tensor16 weights({tiny.out_c, tiny.in_c, tiny.kh, tiny.kw});
  input.fill_random(rng);
  weights.fill_random(rng);

  const sim::SimResult simulated =
      sim::simulate_layer(tiny_prog, small, weights, input);
  const nn::AccTensor expected = nn::conv2d_reference(tiny, input, weights);
  std::printf("Cycle-level simulation of %s: %lld cycles, %lld MACCs, "
              "output %s the scalar reference.\n",
              tiny.name.c_str(), static_cast<long long>(simulated.stats.cycles),
              static_cast<long long>(simulated.stats.valid_maccs),
              simulated.output == expected ? "bit-matches" : "DIFFERS FROM");
  return simulated.output == expected ? 0 : 1;
}
