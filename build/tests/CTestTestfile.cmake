# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_fpga[1]_include.cmake")
include("/root/repo/build/tests/test_timing[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_arch[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_dram_power[1]_include.cmake")
include("/root/repo/build/tests/test_baseline_roofline[1]_include.cmake")
include("/root/repo/build/tests/test_framework[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_host[1]_include.cmake")
include("/root/repo/build/tests/test_multifpga[1]_include.cmake")
include("/root/repo/build/tests/test_frontend[1]_include.cmake")
include("/root/repo/build/tests/test_prune[1]_include.cmake")
include("/root/repo/build/tests/test_rtlgen[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_dse[1]_include.cmake")
include("/root/repo/build/tests/test_program_io[1]_include.cmake")
include("/root/repo/build/tests/test_winograd[1]_include.cmake")
include("/root/repo/build/tests/test_depthwise[1]_include.cmake")
include("/root/repo/build/tests/test_quant[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler_zoo[1]_include.cmake")
include("/root/repo/build/tests/test_capi[1]_include.cmake")
