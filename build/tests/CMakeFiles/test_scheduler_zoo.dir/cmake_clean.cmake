file(REMOVE_RECURSE
  "CMakeFiles/test_scheduler_zoo.dir/test_scheduler_zoo.cpp.o"
  "CMakeFiles/test_scheduler_zoo.dir/test_scheduler_zoo.cpp.o.d"
  "test_scheduler_zoo"
  "test_scheduler_zoo.pdb"
  "test_scheduler_zoo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scheduler_zoo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
