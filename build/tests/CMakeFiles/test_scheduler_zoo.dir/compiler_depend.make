# Empty compiler generated dependencies file for test_scheduler_zoo.
# This may be replaced when dependencies are built.
