
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_scheduler_zoo.cpp" "tests/CMakeFiles/test_scheduler_zoo.dir/test_scheduler_zoo.cpp.o" "gcc" "tests/CMakeFiles/test_scheduler_zoo.dir/test_scheduler_zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compiler/CMakeFiles/ftdl_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/ftdl_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ftdl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/ftdl_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/ftdl_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ftdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
