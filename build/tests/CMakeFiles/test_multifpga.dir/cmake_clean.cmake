file(REMOVE_RECURSE
  "CMakeFiles/test_multifpga.dir/test_multifpga.cpp.o"
  "CMakeFiles/test_multifpga.dir/test_multifpga.cpp.o.d"
  "test_multifpga"
  "test_multifpga.pdb"
  "test_multifpga[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multifpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
