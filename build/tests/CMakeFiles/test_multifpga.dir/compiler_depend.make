# Empty compiler generated dependencies file for test_multifpga.
# This may be replaced when dependencies are built.
