# Empty dependencies file for test_dram_power.
# This may be replaced when dependencies are built.
