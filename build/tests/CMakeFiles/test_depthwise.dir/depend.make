# Empty dependencies file for test_depthwise.
# This may be replaced when dependencies are built.
