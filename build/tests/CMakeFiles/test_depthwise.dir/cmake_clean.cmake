file(REMOVE_RECURSE
  "CMakeFiles/test_depthwise.dir/test_depthwise.cpp.o"
  "CMakeFiles/test_depthwise.dir/test_depthwise.cpp.o.d"
  "test_depthwise"
  "test_depthwise.pdb"
  "test_depthwise[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_depthwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
