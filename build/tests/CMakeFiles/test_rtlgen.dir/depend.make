# Empty dependencies file for test_rtlgen.
# This may be replaced when dependencies are built.
