file(REMOVE_RECURSE
  "CMakeFiles/test_rtlgen.dir/test_rtlgen.cpp.o"
  "CMakeFiles/test_rtlgen.dir/test_rtlgen.cpp.o.d"
  "test_rtlgen"
  "test_rtlgen.pdb"
  "test_rtlgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rtlgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
