# Empty dependencies file for test_baseline_roofline.
# This may be replaced when dependencies are built.
