file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_roofline.dir/test_baseline_roofline.cpp.o"
  "CMakeFiles/test_baseline_roofline.dir/test_baseline_roofline.cpp.o.d"
  "test_baseline_roofline"
  "test_baseline_roofline.pdb"
  "test_baseline_roofline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
