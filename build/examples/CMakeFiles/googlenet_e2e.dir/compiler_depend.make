# Empty compiler generated dependencies file for googlenet_e2e.
# This may be replaced when dependencies are built.
