file(REMOVE_RECURSE
  "CMakeFiles/googlenet_e2e.dir/googlenet_e2e.cpp.o"
  "CMakeFiles/googlenet_e2e.dir/googlenet_e2e.cpp.o.d"
  "googlenet_e2e"
  "googlenet_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/googlenet_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
