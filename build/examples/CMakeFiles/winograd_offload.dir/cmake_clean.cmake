file(REMOVE_RECURSE
  "CMakeFiles/winograd_offload.dir/winograd_offload.cpp.o"
  "CMakeFiles/winograd_offload.dir/winograd_offload.cpp.o.d"
  "winograd_offload"
  "winograd_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/winograd_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
