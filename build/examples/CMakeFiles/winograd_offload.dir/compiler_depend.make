# Empty compiler generated dependencies file for winograd_offload.
# This may be replaced when dependencies are built.
