file(REMOVE_RECURSE
  "CMakeFiles/multi_fpga_pipeline.dir/multi_fpga_pipeline.cpp.o"
  "CMakeFiles/multi_fpga_pipeline.dir/multi_fpga_pipeline.cpp.o.d"
  "multi_fpga_pipeline"
  "multi_fpga_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_fpga_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
