# Empty compiler generated dependencies file for multi_fpga_pipeline.
# This may be replaced when dependencies are built.
