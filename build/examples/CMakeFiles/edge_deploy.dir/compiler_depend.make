# Empty compiler generated dependencies file for edge_deploy.
# This may be replaced when dependencies are built.
