file(REMOVE_RECURSE
  "CMakeFiles/edge_deploy.dir/edge_deploy.cpp.o"
  "CMakeFiles/edge_deploy.dir/edge_deploy.cpp.o.d"
  "edge_deploy"
  "edge_deploy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
