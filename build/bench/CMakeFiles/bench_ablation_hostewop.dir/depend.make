# Empty dependencies file for bench_ablation_hostewop.
# This may be replaced when dependencies are built.
