file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hostewop.dir/bench_ablation_hostewop.cpp.o"
  "CMakeFiles/bench_ablation_hostewop.dir/bench_ablation_hostewop.cpp.o.d"
  "bench_ablation_hostewop"
  "bench_ablation_hostewop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hostewop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
