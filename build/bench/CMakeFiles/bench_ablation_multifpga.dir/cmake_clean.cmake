file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_multifpga.dir/bench_ablation_multifpga.cpp.o"
  "CMakeFiles/bench_ablation_multifpga.dir/bench_ablation_multifpga.cpp.o.d"
  "bench_ablation_multifpga"
  "bench_ablation_multifpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_multifpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
