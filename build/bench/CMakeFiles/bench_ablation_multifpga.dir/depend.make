# Empty dependencies file for bench_ablation_multifpga.
# This may be replaced when dependencies are built.
