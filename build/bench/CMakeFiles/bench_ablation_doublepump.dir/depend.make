# Empty dependencies file for bench_ablation_doublepump.
# This may be replaced when dependencies are built.
