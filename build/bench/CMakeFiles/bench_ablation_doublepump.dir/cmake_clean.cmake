file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_doublepump.dir/bench_ablation_doublepump.cpp.o"
  "CMakeFiles/bench_ablation_doublepump.dir/bench_ablation_doublepump.cpp.o.d"
  "bench_ablation_doublepump"
  "bench_ablation_doublepump.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_doublepump.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
