file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fmax.dir/bench_fig6_fmax.cpp.o"
  "CMakeFiles/bench_fig6_fmax.dir/bench_fig6_fmax.cpp.o.d"
  "bench_fig6_fmax"
  "bench_fig6_fmax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fmax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
