# Empty dependencies file for bench_fig6_fmax.
# This may be replaced when dependencies are built.
