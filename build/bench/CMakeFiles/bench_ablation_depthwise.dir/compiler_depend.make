# Empty compiler generated dependencies file for bench_ablation_depthwise.
# This may be replaced when dependencies are built.
