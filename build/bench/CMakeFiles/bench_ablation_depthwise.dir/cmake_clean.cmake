file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_depthwise.dir/bench_ablation_depthwise.cpp.o"
  "CMakeFiles/bench_ablation_depthwise.dir/bench_ablation_depthwise.cpp.o.d"
  "bench_ablation_depthwise"
  "bench_ablation_depthwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_depthwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
