file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_roofline.dir/bench_fig7_roofline.cpp.o"
  "CMakeFiles/bench_fig7_roofline.dir/bench_fig7_roofline.cpp.o.d"
  "bench_fig7_roofline"
  "bench_fig7_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
