file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_winograd.dir/bench_ablation_winograd.cpp.o"
  "CMakeFiles/bench_ablation_winograd.dir/bench_ablation_winograd.cpp.o.d"
  "bench_ablation_winograd"
  "bench_ablation_winograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_winograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
