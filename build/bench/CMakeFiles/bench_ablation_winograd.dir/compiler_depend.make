# Empty compiler generated dependencies file for bench_ablation_winograd.
# This may be replaced when dependencies are built.
