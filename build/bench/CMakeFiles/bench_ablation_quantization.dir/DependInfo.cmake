
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_quantization.cpp" "bench/CMakeFiles/bench_ablation_quantization.dir/bench_ablation_quantization.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_quantization.dir/bench_ablation_quantization.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ftdl/CMakeFiles/ftdl_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/ftdl_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ftdl_host.dir/DependInfo.cmake"
  "/root/repo/build/src/multifpga/CMakeFiles/ftdl_multifpga.dir/DependInfo.cmake"
  "/root/repo/build/src/prune/CMakeFiles/ftdl_prune.dir/DependInfo.cmake"
  "/root/repo/build/src/rtlgen/CMakeFiles/ftdl_rtlgen.dir/DependInfo.cmake"
  "/root/repo/build/src/dse/CMakeFiles/ftdl_dse.dir/DependInfo.cmake"
  "/root/repo/build/src/winograd/CMakeFiles/ftdl_winograd.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/ftdl_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/ftdl_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/ftdl_power.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/ftdl_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/ftdl_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ftdl_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/ftdl_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/ftdl_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ftdl_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ftdl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/ftdl_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ftdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
