file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hwconfig.dir/bench_ablation_hwconfig.cpp.o"
  "CMakeFiles/bench_ablation_hwconfig.dir/bench_ablation_hwconfig.cpp.o.d"
  "bench_ablation_hwconfig"
  "bench_ablation_hwconfig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hwconfig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
