# Empty dependencies file for bench_ablation_hwconfig.
# This may be replaced when dependencies are built.
