file(REMOVE_RECURSE
  "CMakeFiles/ftdl_common.dir/csv.cpp.o"
  "CMakeFiles/ftdl_common.dir/csv.cpp.o.d"
  "CMakeFiles/ftdl_common.dir/logging.cpp.o"
  "CMakeFiles/ftdl_common.dir/logging.cpp.o.d"
  "CMakeFiles/ftdl_common.dir/math_util.cpp.o"
  "CMakeFiles/ftdl_common.dir/math_util.cpp.o.d"
  "CMakeFiles/ftdl_common.dir/str_util.cpp.o"
  "CMakeFiles/ftdl_common.dir/str_util.cpp.o.d"
  "CMakeFiles/ftdl_common.dir/table.cpp.o"
  "CMakeFiles/ftdl_common.dir/table.cpp.o.d"
  "libftdl_common.a"
  "libftdl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
