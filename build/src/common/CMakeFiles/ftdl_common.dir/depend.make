# Empty dependencies file for ftdl_common.
# This may be replaced when dependencies are built.
