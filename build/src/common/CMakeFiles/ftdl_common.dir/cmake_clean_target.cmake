file(REMOVE_RECURSE
  "libftdl_common.a"
)
