file(REMOVE_RECURSE
  "CMakeFiles/ftdl_fpga.dir/clocking.cpp.o"
  "CMakeFiles/ftdl_fpga.dir/clocking.cpp.o.d"
  "CMakeFiles/ftdl_fpga.dir/device.cpp.o"
  "CMakeFiles/ftdl_fpga.dir/device.cpp.o.d"
  "CMakeFiles/ftdl_fpga.dir/device_zoo.cpp.o"
  "CMakeFiles/ftdl_fpga.dir/device_zoo.cpp.o.d"
  "libftdl_fpga.a"
  "libftdl_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
