
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/clocking.cpp" "src/fpga/CMakeFiles/ftdl_fpga.dir/clocking.cpp.o" "gcc" "src/fpga/CMakeFiles/ftdl_fpga.dir/clocking.cpp.o.d"
  "/root/repo/src/fpga/device.cpp" "src/fpga/CMakeFiles/ftdl_fpga.dir/device.cpp.o" "gcc" "src/fpga/CMakeFiles/ftdl_fpga.dir/device.cpp.o.d"
  "/root/repo/src/fpga/device_zoo.cpp" "src/fpga/CMakeFiles/ftdl_fpga.dir/device_zoo.cpp.o" "gcc" "src/fpga/CMakeFiles/ftdl_fpga.dir/device_zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
