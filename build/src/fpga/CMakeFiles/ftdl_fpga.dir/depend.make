# Empty dependencies file for ftdl_fpga.
# This may be replaced when dependencies are built.
