file(REMOVE_RECURSE
  "libftdl_fpga.a"
)
