file(REMOVE_RECURSE
  "CMakeFiles/ftdl_framework.dir/framework.cpp.o"
  "CMakeFiles/ftdl_framework.dir/framework.cpp.o.d"
  "libftdl_framework.a"
  "libftdl_framework.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
