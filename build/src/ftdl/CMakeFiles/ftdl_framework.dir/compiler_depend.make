# Empty compiler generated dependencies file for ftdl_framework.
# This may be replaced when dependencies are built.
