file(REMOVE_RECURSE
  "libftdl_framework.a"
)
