
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/delay_model.cpp" "src/timing/CMakeFiles/ftdl_timing.dir/delay_model.cpp.o" "gcc" "src/timing/CMakeFiles/ftdl_timing.dir/delay_model.cpp.o.d"
  "/root/repo/src/timing/placement.cpp" "src/timing/CMakeFiles/ftdl_timing.dir/placement.cpp.o" "gcc" "src/timing/CMakeFiles/ftdl_timing.dir/placement.cpp.o.d"
  "/root/repo/src/timing/scaling_study.cpp" "src/timing/CMakeFiles/ftdl_timing.dir/scaling_study.cpp.o" "gcc" "src/timing/CMakeFiles/ftdl_timing.dir/scaling_study.cpp.o.d"
  "/root/repo/src/timing/timing_analyzer.cpp" "src/timing/CMakeFiles/ftdl_timing.dir/timing_analyzer.cpp.o" "gcc" "src/timing/CMakeFiles/ftdl_timing.dir/timing_analyzer.cpp.o.d"
  "/root/repo/src/timing/timing_report.cpp" "src/timing/CMakeFiles/ftdl_timing.dir/timing_report.cpp.o" "gcc" "src/timing/CMakeFiles/ftdl_timing.dir/timing_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fpga/CMakeFiles/ftdl_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ftdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
