# Empty compiler generated dependencies file for ftdl_timing.
# This may be replaced when dependencies are built.
