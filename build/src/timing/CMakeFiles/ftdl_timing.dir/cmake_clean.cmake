file(REMOVE_RECURSE
  "CMakeFiles/ftdl_timing.dir/delay_model.cpp.o"
  "CMakeFiles/ftdl_timing.dir/delay_model.cpp.o.d"
  "CMakeFiles/ftdl_timing.dir/placement.cpp.o"
  "CMakeFiles/ftdl_timing.dir/placement.cpp.o.d"
  "CMakeFiles/ftdl_timing.dir/scaling_study.cpp.o"
  "CMakeFiles/ftdl_timing.dir/scaling_study.cpp.o.d"
  "CMakeFiles/ftdl_timing.dir/timing_analyzer.cpp.o"
  "CMakeFiles/ftdl_timing.dir/timing_analyzer.cpp.o.d"
  "CMakeFiles/ftdl_timing.dir/timing_report.cpp.o"
  "CMakeFiles/ftdl_timing.dir/timing_report.cpp.o.d"
  "libftdl_timing.a"
  "libftdl_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
