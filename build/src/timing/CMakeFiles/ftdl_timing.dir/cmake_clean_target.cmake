file(REMOVE_RECURSE
  "libftdl_timing.a"
)
