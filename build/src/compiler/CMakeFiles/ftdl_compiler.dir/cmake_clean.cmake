file(REMOVE_RECURSE
  "CMakeFiles/ftdl_compiler.dir/adjacency.cpp.o"
  "CMakeFiles/ftdl_compiler.dir/adjacency.cpp.o.d"
  "CMakeFiles/ftdl_compiler.dir/analytical_model.cpp.o"
  "CMakeFiles/ftdl_compiler.dir/analytical_model.cpp.o.d"
  "CMakeFiles/ftdl_compiler.dir/codegen.cpp.o"
  "CMakeFiles/ftdl_compiler.dir/codegen.cpp.o.d"
  "CMakeFiles/ftdl_compiler.dir/mapping.cpp.o"
  "CMakeFiles/ftdl_compiler.dir/mapping.cpp.o.d"
  "CMakeFiles/ftdl_compiler.dir/program_io.cpp.o"
  "CMakeFiles/ftdl_compiler.dir/program_io.cpp.o.d"
  "CMakeFiles/ftdl_compiler.dir/scheduler.cpp.o"
  "CMakeFiles/ftdl_compiler.dir/scheduler.cpp.o.d"
  "CMakeFiles/ftdl_compiler.dir/search.cpp.o"
  "CMakeFiles/ftdl_compiler.dir/search.cpp.o.d"
  "CMakeFiles/ftdl_compiler.dir/workload.cpp.o"
  "CMakeFiles/ftdl_compiler.dir/workload.cpp.o.d"
  "libftdl_compiler.a"
  "libftdl_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
