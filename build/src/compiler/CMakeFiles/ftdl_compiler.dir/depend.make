# Empty dependencies file for ftdl_compiler.
# This may be replaced when dependencies are built.
