file(REMOVE_RECURSE
  "libftdl_compiler.a"
)
