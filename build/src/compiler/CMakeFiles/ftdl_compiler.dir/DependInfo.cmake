
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/adjacency.cpp" "src/compiler/CMakeFiles/ftdl_compiler.dir/adjacency.cpp.o" "gcc" "src/compiler/CMakeFiles/ftdl_compiler.dir/adjacency.cpp.o.d"
  "/root/repo/src/compiler/analytical_model.cpp" "src/compiler/CMakeFiles/ftdl_compiler.dir/analytical_model.cpp.o" "gcc" "src/compiler/CMakeFiles/ftdl_compiler.dir/analytical_model.cpp.o.d"
  "/root/repo/src/compiler/codegen.cpp" "src/compiler/CMakeFiles/ftdl_compiler.dir/codegen.cpp.o" "gcc" "src/compiler/CMakeFiles/ftdl_compiler.dir/codegen.cpp.o.d"
  "/root/repo/src/compiler/mapping.cpp" "src/compiler/CMakeFiles/ftdl_compiler.dir/mapping.cpp.o" "gcc" "src/compiler/CMakeFiles/ftdl_compiler.dir/mapping.cpp.o.d"
  "/root/repo/src/compiler/program_io.cpp" "src/compiler/CMakeFiles/ftdl_compiler.dir/program_io.cpp.o" "gcc" "src/compiler/CMakeFiles/ftdl_compiler.dir/program_io.cpp.o.d"
  "/root/repo/src/compiler/scheduler.cpp" "src/compiler/CMakeFiles/ftdl_compiler.dir/scheduler.cpp.o" "gcc" "src/compiler/CMakeFiles/ftdl_compiler.dir/scheduler.cpp.o.d"
  "/root/repo/src/compiler/search.cpp" "src/compiler/CMakeFiles/ftdl_compiler.dir/search.cpp.o" "gcc" "src/compiler/CMakeFiles/ftdl_compiler.dir/search.cpp.o.d"
  "/root/repo/src/compiler/workload.cpp" "src/compiler/CMakeFiles/ftdl_compiler.dir/workload.cpp.o" "gcc" "src/compiler/CMakeFiles/ftdl_compiler.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/ftdl_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ftdl_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ftdl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/ftdl_fpga.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
