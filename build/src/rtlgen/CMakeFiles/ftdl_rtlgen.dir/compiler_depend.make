# Empty compiler generated dependencies file for ftdl_rtlgen.
# This may be replaced when dependencies are built.
