file(REMOVE_RECURSE
  "CMakeFiles/ftdl_rtlgen.dir/testbench_gen.cpp.o"
  "CMakeFiles/ftdl_rtlgen.dir/testbench_gen.cpp.o.d"
  "CMakeFiles/ftdl_rtlgen.dir/verilog_gen.cpp.o"
  "CMakeFiles/ftdl_rtlgen.dir/verilog_gen.cpp.o.d"
  "libftdl_rtlgen.a"
  "libftdl_rtlgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_rtlgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
