file(REMOVE_RECURSE
  "libftdl_rtlgen.a"
)
