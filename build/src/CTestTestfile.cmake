# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("fpga")
subdirs("timing")
subdirs("nn")
subdirs("arch")
subdirs("compiler")
subdirs("dram")
subdirs("sim")
subdirs("runtime")
subdirs("host")
subdirs("multifpga")
subdirs("frontend")
subdirs("prune")
subdirs("rtlgen")
subdirs("dse")
subdirs("winograd")
subdirs("quant")
subdirs("power")
subdirs("baseline")
subdirs("roofline")
subdirs("ftdl")
subdirs("capi")
