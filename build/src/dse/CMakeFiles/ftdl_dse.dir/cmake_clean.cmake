file(REMOVE_RECURSE
  "CMakeFiles/ftdl_dse.dir/explorer.cpp.o"
  "CMakeFiles/ftdl_dse.dir/explorer.cpp.o.d"
  "libftdl_dse.a"
  "libftdl_dse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_dse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
