# Empty dependencies file for ftdl_dse.
# This may be replaced when dependencies are built.
