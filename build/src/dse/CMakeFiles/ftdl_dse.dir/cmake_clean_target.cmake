file(REMOVE_RECURSE
  "libftdl_dse.a"
)
