# Empty compiler generated dependencies file for ftdl_capi.
# This may be replaced when dependencies are built.
