file(REMOVE_RECURSE
  "libftdl_capi.a"
)
