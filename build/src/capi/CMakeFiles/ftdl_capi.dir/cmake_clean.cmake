file(REMOVE_RECURSE
  "CMakeFiles/ftdl_capi.dir/ftdl_c.cpp.o"
  "CMakeFiles/ftdl_capi.dir/ftdl_c.cpp.o.d"
  "libftdl_capi.a"
  "libftdl_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
