file(REMOVE_RECURSE
  "CMakeFiles/ftdl_prune.dir/channel_prune.cpp.o"
  "CMakeFiles/ftdl_prune.dir/channel_prune.cpp.o.d"
  "libftdl_prune.a"
  "libftdl_prune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
