file(REMOVE_RECURSE
  "libftdl_prune.a"
)
