# Empty dependencies file for ftdl_prune.
# This may be replaced when dependencies are built.
