file(REMOVE_RECURSE
  "CMakeFiles/ftdl_power.dir/fpga_power.cpp.o"
  "CMakeFiles/ftdl_power.dir/fpga_power.cpp.o.d"
  "libftdl_power.a"
  "libftdl_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
