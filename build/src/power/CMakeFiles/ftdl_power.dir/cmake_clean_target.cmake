file(REMOVE_RECURSE
  "libftdl_power.a"
)
