# Empty dependencies file for ftdl_power.
# This may be replaced when dependencies are built.
