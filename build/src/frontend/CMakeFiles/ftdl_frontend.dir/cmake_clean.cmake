file(REMOVE_RECURSE
  "CMakeFiles/ftdl_frontend.dir/spec_parser.cpp.o"
  "CMakeFiles/ftdl_frontend.dir/spec_parser.cpp.o.d"
  "libftdl_frontend.a"
  "libftdl_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
