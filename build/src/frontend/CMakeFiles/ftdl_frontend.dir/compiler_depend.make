# Empty compiler generated dependencies file for ftdl_frontend.
# This may be replaced when dependencies are built.
