file(REMOVE_RECURSE
  "libftdl_frontend.a"
)
