file(REMOVE_RECURSE
  "CMakeFiles/ftdl_quant.dir/quantize.cpp.o"
  "CMakeFiles/ftdl_quant.dir/quantize.cpp.o.d"
  "libftdl_quant.a"
  "libftdl_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
