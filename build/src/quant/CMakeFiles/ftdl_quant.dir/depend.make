# Empty dependencies file for ftdl_quant.
# This may be replaced when dependencies are built.
