file(REMOVE_RECURSE
  "libftdl_quant.a"
)
