file(REMOVE_RECURSE
  "libftdl_arch.a"
)
