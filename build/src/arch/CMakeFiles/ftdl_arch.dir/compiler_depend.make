# Empty compiler generated dependencies file for ftdl_arch.
# This may be replaced when dependencies are built.
