file(REMOVE_RECURSE
  "CMakeFiles/ftdl_arch.dir/isa.cpp.o"
  "CMakeFiles/ftdl_arch.dir/isa.cpp.o.d"
  "CMakeFiles/ftdl_arch.dir/overlay_config.cpp.o"
  "CMakeFiles/ftdl_arch.dir/overlay_config.cpp.o.d"
  "libftdl_arch.a"
  "libftdl_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
