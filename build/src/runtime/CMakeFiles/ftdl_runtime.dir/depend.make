# Empty dependencies file for ftdl_runtime.
# This may be replaced when dependencies are built.
