file(REMOVE_RECURSE
  "CMakeFiles/ftdl_runtime.dir/executor.cpp.o"
  "CMakeFiles/ftdl_runtime.dir/executor.cpp.o.d"
  "CMakeFiles/ftdl_runtime.dir/weight_store.cpp.o"
  "CMakeFiles/ftdl_runtime.dir/weight_store.cpp.o.d"
  "libftdl_runtime.a"
  "libftdl_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
