file(REMOVE_RECURSE
  "libftdl_runtime.a"
)
