# Empty dependencies file for ftdl_sim.
# This may be replaced when dependencies are built.
