file(REMOVE_RECURSE
  "CMakeFiles/ftdl_sim.dir/ftdl_sim.cpp.o"
  "CMakeFiles/ftdl_sim.dir/ftdl_sim.cpp.o.d"
  "libftdl_sim.a"
  "libftdl_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
