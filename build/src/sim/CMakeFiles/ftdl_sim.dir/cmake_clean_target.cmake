file(REMOVE_RECURSE
  "libftdl_sim.a"
)
