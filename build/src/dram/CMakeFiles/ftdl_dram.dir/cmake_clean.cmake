file(REMOVE_RECURSE
  "CMakeFiles/ftdl_dram.dir/bank_sim.cpp.o"
  "CMakeFiles/ftdl_dram.dir/bank_sim.cpp.o.d"
  "CMakeFiles/ftdl_dram.dir/dram_power.cpp.o"
  "CMakeFiles/ftdl_dram.dir/dram_power.cpp.o.d"
  "CMakeFiles/ftdl_dram.dir/dram_spec.cpp.o"
  "CMakeFiles/ftdl_dram.dir/dram_spec.cpp.o.d"
  "libftdl_dram.a"
  "libftdl_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
