
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/bank_sim.cpp" "src/dram/CMakeFiles/ftdl_dram.dir/bank_sim.cpp.o" "gcc" "src/dram/CMakeFiles/ftdl_dram.dir/bank_sim.cpp.o.d"
  "/root/repo/src/dram/dram_power.cpp" "src/dram/CMakeFiles/ftdl_dram.dir/dram_power.cpp.o" "gcc" "src/dram/CMakeFiles/ftdl_dram.dir/dram_power.cpp.o.d"
  "/root/repo/src/dram/dram_spec.cpp" "src/dram/CMakeFiles/ftdl_dram.dir/dram_spec.cpp.o" "gcc" "src/dram/CMakeFiles/ftdl_dram.dir/dram_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
