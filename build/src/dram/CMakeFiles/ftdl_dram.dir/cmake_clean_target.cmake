file(REMOVE_RECURSE
  "libftdl_dram.a"
)
