# Empty dependencies file for ftdl_dram.
# This may be replaced when dependencies are built.
