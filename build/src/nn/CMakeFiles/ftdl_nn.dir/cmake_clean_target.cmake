file(REMOVE_RECURSE
  "libftdl_nn.a"
)
