# Empty compiler generated dependencies file for ftdl_nn.
# This may be replaced when dependencies are built.
