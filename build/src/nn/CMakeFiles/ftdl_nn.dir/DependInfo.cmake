
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/ftdl_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/ftdl_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/model_googlenet.cpp" "src/nn/CMakeFiles/ftdl_nn.dir/model_googlenet.cpp.o" "gcc" "src/nn/CMakeFiles/ftdl_nn.dir/model_googlenet.cpp.o.d"
  "/root/repo/src/nn/model_misc.cpp" "src/nn/CMakeFiles/ftdl_nn.dir/model_misc.cpp.o" "gcc" "src/nn/CMakeFiles/ftdl_nn.dir/model_misc.cpp.o.d"
  "/root/repo/src/nn/model_resnet50.cpp" "src/nn/CMakeFiles/ftdl_nn.dir/model_resnet50.cpp.o" "gcc" "src/nn/CMakeFiles/ftdl_nn.dir/model_resnet50.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/nn/CMakeFiles/ftdl_nn.dir/network.cpp.o" "gcc" "src/nn/CMakeFiles/ftdl_nn.dir/network.cpp.o.d"
  "/root/repo/src/nn/reference.cpp" "src/nn/CMakeFiles/ftdl_nn.dir/reference.cpp.o" "gcc" "src/nn/CMakeFiles/ftdl_nn.dir/reference.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/ftdl_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/ftdl_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftdl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
