file(REMOVE_RECURSE
  "CMakeFiles/ftdl_nn.dir/layer.cpp.o"
  "CMakeFiles/ftdl_nn.dir/layer.cpp.o.d"
  "CMakeFiles/ftdl_nn.dir/model_googlenet.cpp.o"
  "CMakeFiles/ftdl_nn.dir/model_googlenet.cpp.o.d"
  "CMakeFiles/ftdl_nn.dir/model_misc.cpp.o"
  "CMakeFiles/ftdl_nn.dir/model_misc.cpp.o.d"
  "CMakeFiles/ftdl_nn.dir/model_resnet50.cpp.o"
  "CMakeFiles/ftdl_nn.dir/model_resnet50.cpp.o.d"
  "CMakeFiles/ftdl_nn.dir/network.cpp.o"
  "CMakeFiles/ftdl_nn.dir/network.cpp.o.d"
  "CMakeFiles/ftdl_nn.dir/reference.cpp.o"
  "CMakeFiles/ftdl_nn.dir/reference.cpp.o.d"
  "CMakeFiles/ftdl_nn.dir/tensor.cpp.o"
  "CMakeFiles/ftdl_nn.dir/tensor.cpp.o.d"
  "libftdl_nn.a"
  "libftdl_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
