
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/prior_work.cpp" "src/baseline/CMakeFiles/ftdl_baseline.dir/prior_work.cpp.o" "gcc" "src/baseline/CMakeFiles/ftdl_baseline.dir/prior_work.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ftdl_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ftdl_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
