file(REMOVE_RECURSE
  "libftdl_baseline.a"
)
