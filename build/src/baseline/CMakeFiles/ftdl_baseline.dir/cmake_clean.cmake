file(REMOVE_RECURSE
  "CMakeFiles/ftdl_baseline.dir/prior_work.cpp.o"
  "CMakeFiles/ftdl_baseline.dir/prior_work.cpp.o.d"
  "libftdl_baseline.a"
  "libftdl_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
