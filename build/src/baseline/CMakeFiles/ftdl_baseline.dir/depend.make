# Empty dependencies file for ftdl_baseline.
# This may be replaced when dependencies are built.
