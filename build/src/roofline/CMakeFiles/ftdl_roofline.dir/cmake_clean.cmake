file(REMOVE_RECURSE
  "CMakeFiles/ftdl_roofline.dir/roofline.cpp.o"
  "CMakeFiles/ftdl_roofline.dir/roofline.cpp.o.d"
  "libftdl_roofline.a"
  "libftdl_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
