file(REMOVE_RECURSE
  "libftdl_roofline.a"
)
