# Empty compiler generated dependencies file for ftdl_roofline.
# This may be replaced when dependencies are built.
