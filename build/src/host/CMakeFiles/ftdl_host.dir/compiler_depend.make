# Empty compiler generated dependencies file for ftdl_host.
# This may be replaced when dependencies are built.
