file(REMOVE_RECURSE
  "CMakeFiles/ftdl_host.dir/ewop_kernels.cpp.o"
  "CMakeFiles/ftdl_host.dir/ewop_kernels.cpp.o.d"
  "CMakeFiles/ftdl_host.dir/host_pipeline.cpp.o"
  "CMakeFiles/ftdl_host.dir/host_pipeline.cpp.o.d"
  "CMakeFiles/ftdl_host.dir/lstm_runner.cpp.o"
  "CMakeFiles/ftdl_host.dir/lstm_runner.cpp.o.d"
  "libftdl_host.a"
  "libftdl_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
