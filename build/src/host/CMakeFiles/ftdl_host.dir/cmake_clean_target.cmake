file(REMOVE_RECURSE
  "libftdl_host.a"
)
