# Empty compiler generated dependencies file for ftdl_winograd.
# This may be replaced when dependencies are built.
