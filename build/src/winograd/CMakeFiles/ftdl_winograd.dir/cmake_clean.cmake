file(REMOVE_RECURSE
  "CMakeFiles/ftdl_winograd.dir/winograd.cpp.o"
  "CMakeFiles/ftdl_winograd.dir/winograd.cpp.o.d"
  "libftdl_winograd.a"
  "libftdl_winograd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_winograd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
