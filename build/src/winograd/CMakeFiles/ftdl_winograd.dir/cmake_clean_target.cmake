file(REMOVE_RECURSE
  "libftdl_winograd.a"
)
