# Empty dependencies file for ftdl_multifpga.
# This may be replaced when dependencies are built.
