file(REMOVE_RECURSE
  "CMakeFiles/ftdl_multifpga.dir/partition.cpp.o"
  "CMakeFiles/ftdl_multifpga.dir/partition.cpp.o.d"
  "libftdl_multifpga.a"
  "libftdl_multifpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_multifpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
