file(REMOVE_RECURSE
  "libftdl_multifpga.a"
)
