file(REMOVE_RECURSE
  "CMakeFiles/ftdlc.dir/ftdlc.cpp.o"
  "CMakeFiles/ftdlc.dir/ftdlc.cpp.o.d"
  "ftdlc"
  "ftdlc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdlc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
