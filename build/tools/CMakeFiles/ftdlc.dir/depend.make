# Empty dependencies file for ftdlc.
# This may be replaced when dependencies are built.
