# Empty compiler generated dependencies file for ftdlc.
# This may be replaced when dependencies are built.
