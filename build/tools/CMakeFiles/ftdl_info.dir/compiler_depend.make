# Empty compiler generated dependencies file for ftdl_info.
# This may be replaced when dependencies are built.
