file(REMOVE_RECURSE
  "CMakeFiles/ftdl_info.dir/ftdl_info.cpp.o"
  "CMakeFiles/ftdl_info.dir/ftdl_info.cpp.o.d"
  "ftdl_info"
  "ftdl_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftdl_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
