// Instruction-stream generation.
//
// After the search fixes a mapping, codegen lowers it to the configuration
// instructions every SuperBlock-row Controller consumes over the InstBUS
// before Launch (Sec. V-A: "the compiler also dumps the control
// instructions for all Controllers"). Rows run in SIMD so one stream
// serves every row; the stream plus the mapping metadata is everything the
// cycle-level simulator needs.
#pragma once

#include "arch/isa.h"
#include "compiler/analytical_model.h"
#include "compiler/search.h"
#include "nn/layer.h"

namespace ftdl::compiler {

/// A fully compiled overlay layer.
struct LayerProgram {
  nn::Layer layer;
  Workload workload;   ///< workload of ONE weight group (== layer if 1 group)
  Mapping mapping;
  Performance perf;    ///< performance of one weight group
  arch::InstStream row_stream;  ///< per-row controller configuration

  /// Layers whose weights exceed the total WBUF capacity are executed as
  /// `weight_groups` sequential groups along the weight-only dimension
  /// (output channels / output features), each with its weights preloaded
  /// in turn — the paper's weight-stationary methodology applied piecewise.
  int weight_groups = 1;

  /// DRAM-fed weight-reload cycles per group (0 unless the overlay charges
  /// reload; see OverlayConfig::charge_weight_reload).
  std::int64_t reload_cycles_per_group = 0;

  /// Execution cycles for the whole layer (all groups, incl. any charged
  /// reload time; the first group's preload is charged too when enabled —
  /// conservative for back-to-back frames where no idle preload slot
  /// exists).
  std::int64_t total_cycles() const {
    return (perf.c_exe + reload_cycles_per_group) * weight_groups;
  }

  /// Encoded 64-bit InstBUS words (what the hardware would receive).
  std::vector<std::uint64_t> encoded_stream() const;
};

/// Lowers a solved mapping to its instruction stream.
arch::InstStream generate_row_stream(const Workload& w, const Mapping& m,
                                     const Performance& perf);

/// Searches for the best mapping of `layer` under `objective` and lowers it.
/// When the layer's weights exceed the WBUF capacity for any mapping, the
/// layer is split into weight groups (doubling the group count until a
/// feasible mapping exists). Throws ftdl::InfeasibleError only when even a
/// maximally split layer has no feasible mapping.
LayerProgram compile_layer(const nn::Layer& layer,
                           const arch::OverlayConfig& config,
                           Objective objective = Objective::Performance,
                           std::int64_t max_candidates = 200'000);

/// Lowers an explicit solution (used by tests and the simulator harness).
LayerProgram lower_solution(const nn::Layer& layer, const Workload& w,
                            const Solution& solution);

}  // namespace ftdl::compiler
