// Mapping-aware static verification of compiled layer programs.
//
// The core analyzer (verify/verifier.h) only knows the ISA and the overlay
// contract; this bridge derives the mapping-side truth — trip counts, tile
// sizes, accumulate mode, weight footprint — from the solved (Workload,
// Mapping, Performance) triple and hands both to the analyzer. It is the
// single diagnostic path shared by compile_layer's post-condition, the
// program_io load path, and the ftdlc --verify / ftdl-lint tools, so a
// stream rejected at load time fails with exactly the diagnostic the
// compiler would have produced.
#pragma once

#include "compiler/codegen.h"
#include "verify/verifier.h"

namespace ftdl::compiler {

/// The stream-visible facts generate_row_stream must encode for this
/// solved mapping (what the verifier's semantic checks compare against).
verify::StreamExpectation stream_expectation(const Workload& w,
                                             const Mapping& m,
                                             const Performance& perf,
                                             int weight_groups = 1);

/// Statically verifies `program.row_stream` against the overlay contract
/// and the program's own mapping (structural + resource + semantic).
verify::VerifyResult verify_program(const LayerProgram& program,
                                    const arch::OverlayConfig& config);

/// compile_layer's post-condition: throws ftdl::InternalError carrying the
/// first diagnostic when verify_program reports errors.
void assert_program_verified(const LayerProgram& program,
                             const arch::OverlayConfig& config);

}  // namespace ftdl::compiler
