#include "compiler/workload.h"

#include "common/error.h"

namespace ftdl::compiler {

const char* to_string(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::MatMul: return "MM";
    case WorkloadKind::Conv: return "CONV";
    case WorkloadKind::DepthwiseConv: return "DWCONV";
  }
  return "?";
}

int Workload::loop_index(char tag) const {
  for (int i = 0; i < k(); ++i) {
    if (loops[i].tag == tag) return i;
  }
  throw InternalError(std::string("workload has no loop '") + tag + "'");
}

std::int64_t Workload::macs() const {
  std::int64_t m = 1;
  for (const WorkloadLoop& l : loops) m *= l.trip;
  return m;
}

std::int64_t Workload::weight_words() const {
  std::int64_t w = 1;
  for (const WorkloadLoop& l : loops) {
    if (l.indexes_weight) w *= l.trip;
  }
  return w;
}

Workload Workload::from_layer(const nn::Layer& layer) {
  Workload w;
  w.name = layer.name;
  switch (layer.kind) {
    case nn::LayerKind::MatMul:
      w.kind = WorkloadKind::MatMul;
      w.loops = {
          // M: reduction over input features — in both W and act.
          {'M', layer.mm_m, /*weight=*/true, /*act=*/true, /*red=*/true},
          // N: output features — weight-only.
          {'N', layer.mm_n, /*weight=*/true, /*act=*/false, /*red=*/false},
          // P: output columns / batch — act-only.
          {'P', layer.mm_p, /*weight=*/false, /*act=*/true, /*red=*/false},
      };
      break;
    case nn::LayerKind::Conv:
      w.kind = WorkloadKind::Conv;
      w.stride = layer.stride;
      w.loops = {
          {'M', layer.out_c, /*weight=*/true, /*act=*/false, /*red=*/false},
          {'N', layer.in_c, /*weight=*/true, /*act=*/true, /*red=*/true},
          {'E', layer.out_h(), /*weight=*/false, /*act=*/true, /*red=*/false},
          {'F', layer.out_w(), /*weight=*/false, /*act=*/true, /*red=*/false},
          {'R', layer.kh, /*weight=*/true, /*act=*/true, /*red=*/true},
          {'S', layer.kw, /*weight=*/true, /*act=*/true, /*red=*/true},
      };
      break;
    case nn::LayerKind::Depthwise:
      w.kind = WorkloadKind::DepthwiseConv;
      w.stride = layer.stride;
      w.loops = {
          // Channel loop: indexes BOTH tensors, independent (not reduction).
          {'N', layer.in_c, /*weight=*/true, /*act=*/true, /*red=*/false},
          {'E', layer.out_h(), /*weight=*/false, /*act=*/true, /*red=*/false},
          {'F', layer.out_w(), /*weight=*/false, /*act=*/true, /*red=*/false},
          {'R', layer.kh, /*weight=*/true, /*act=*/true, /*red=*/true},
          {'S', layer.kw, /*weight=*/true, /*act=*/true, /*red=*/true},
      };
      break;
    default:
      throw ConfigError(layer.name + ": only CONV/DWCONV and MM run on the overlay");
  }
  return w;
}

}  // namespace ftdl::compiler
