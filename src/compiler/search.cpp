#include "compiler/search.h"

#include <algorithm>
#include <array>
#include <optional>
#include <queue>
#include <unordered_set>

#include "common/error.h"
#include "common/math_util.h"
#include "common/rng.h"
#include "compiler/adjacency.h"

namespace ftdl::compiler {

const char* to_string(Objective o) {
  switch (o) {
    case Objective::Performance: return "Obj1-performance";
    case Objective::Balance: return "Obj2-balance";
  }
  return "?";
}

double objective_score(const Performance& p, Objective objective,
                       std::int64_t c_exe_min) {
  switch (objective) {
    case Objective::Performance:
      // Minimize C_exe; E_WBUF only breaks exact ties.
      return -double(p.c_exe) + 1e-7 * p.e_wbuf;
    case Objective::Balance:
      return balance_score(p, c_exe_min);
  }
  throw InternalError("unknown objective");
}

const Solution& SearchResult::best() const {
  if (top.empty()) throw InfeasibleError("no feasible mapping found");
  return top.front();
}

namespace {

std::uint64_t mapping_hash(const Mapping& m) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
  for (const auto& level : m.t) {
    for (std::int64_t v : level) {
      h ^= static_cast<std::uint64_t>(v);
      h *= 1099511628211ULL;
    }
  }
  return h;
}

/// Keeps `all` down to at most `cap` values, always retaining the smallest
/// and largest, thinning geometrically in between.
std::vector<std::int64_t> thin(std::vector<std::int64_t> all, std::size_t cap) {
  if (all.size() <= cap) return all;
  std::vector<std::int64_t> out;
  out.push_back(all.front());
  const double step = double(all.size() - 1) / double(cap - 1);
  for (std::size_t i = 1; i + 1 < cap; ++i) {
    const auto idx = static_cast<std::size_t>(i * step);
    if (all[idx] != out.back()) out.push_back(all[idx]);
  }
  if (all.back() != out.back()) out.push_back(all.back());
  return out;
}

/// Tile candidates for one loop at one level, capped by `limit` (the
/// remaining hardware extent) and thinned to `cap` entries.
std::vector<std::int64_t> level_cands(std::int64_t trip, std::int64_t limit,
                                      std::size_t cap) {
  std::vector<std::int64_t> out;
  for (std::int64_t c : tile_candidates(trip)) {
    if (c <= limit) out.push_back(c);
  }
  if (out.empty()) out.push_back(1);
  return thin(std::move(out), cap);
}

class SearchEngine {
 public:
  SearchEngine(const Workload& w, const arch::OverlayConfig& cfg,
               const SearchOptions& opt)
      : w_(w), cfg_(cfg), opt_(opt), c_min_(min_execution_cycles(w, cfg)) {}

  SearchResult run() {
    run_canonicals();
    result_.dfs_exhausted = run_dfs();
    run_sampling();
    if (opt_.refine) run_refinement();

    // Drain the heap into best-first order.
    std::vector<Solution> sorted;
    sorted.reserve(heap_.size());
    while (!heap_.empty()) {
      sorted.push_back(heap_.top());
      heap_.pop();
    }
    std::reverse(sorted.begin(), sorted.end());
    result_.top = std::move(sorted);
    return std::move(result_);
  }

 private:
  struct WorseScore {
    bool operator()(const Solution& a, const Solution& b) const {
      return a.score > b.score;  // min-heap on score
    }
  };

  bool budget_left() const { return result_.evaluated < opt_.max_candidates; }

  /// Evaluates one candidate mapping and feeds the top-k heap.
  void consider(const Mapping& m) {
    if (!seen_.insert(mapping_hash(m)).second) return;
    if (!satisfies_adjacency(m, w_)) return;
    if (!satisfies_logical_constraints(m, w_, cfg_.d1, cfg_.d2, cfg_.d3)) return;
    ++result_.evaluated;

    Solution s;
    s.mapping = m;
    s.perf = evaluate(w_, m, cfg_);
    if (s.perf.feasible) ++result_.feasible;
    if (!s.perf.feasible && !opt_.keep_infeasible) return;
    s.score = objective_score(s.perf, opt_.objective, c_min_);

    if (static_cast<int>(heap_.size()) < opt_.top_k) {
      heap_.push(std::move(s));
    } else if (s.score > heap_.top().score) {
      heap_.pop();
      heap_.push(std::move(s));
    }
  }

  // ---- generator 1: canonical greedy constructions -------------------------

  /// Greedy fill of one spatial level: assign each loop (in the given
  /// order) the largest candidate tile that fits the remaining extent.
  void greedy_fill(Mapping& m, HwLevel level, const std::vector<int>& order,
                   std::int64_t extent) {
    std::int64_t left = extent;
    for (int loop : order) {
      if (!adjacency_allows(w_, level, loop)) continue;
      const std::int64_t covered = m.spatial_extent(loop);
      const std::int64_t rem =
          ceil_div(w_.loops[static_cast<std::size_t>(loop)].trip, covered);
      std::int64_t best = 1;
      for (std::int64_t c : tile_candidates(rem)) {
        if (c <= left && c > best) best = c;
      }
      m.tile(level, loop) = best;
      left /= best;
      if (left <= 1) break;
    }
  }

  void run_canonicals() {
    // Loop-priority orders. Reduction loops feed D1; the weight-only loop
    // feeds D2; output loops feed D3. Enumerate every non-empty subset of
    // the D1 and D3 candidate loop sets as a fill order.
    std::vector<int> reduction, output, weight_only;
    for (int i = 0; i < w_.k(); ++i) {
      const WorkloadLoop& l = w_.loops[static_cast<std::size_t>(i)];
      if (l.is_reduction) reduction.push_back(i);
      if (!l.is_reduction) output.push_back(i);
      if (l.indexes_weight && !l.indexes_act) weight_only.push_back(i);
    }

    auto subsets = [](const std::vector<int>& v) {
      std::vector<std::vector<int>> out;
      const int n = static_cast<int>(v.size());
      for (int mask = 1; mask < (1 << n); ++mask) {
        std::vector<int> s;
        for (int b = 0; b < n; ++b) {
          if (mask & (1 << b)) s.push_back(v[static_cast<std::size_t>(b)]);
        }
        out.push_back(std::move(s));
      }
      return out;
    };

    for (const auto& d1_set : subsets(reduction)) {
      for (const auto& d3_set : subsets(output)) {
        if (!budget_left()) return;
        Mapping m = Mapping::identity(w_.k());
        greedy_fill(m, HwLevel::D1, d1_set, cfg_.d1);
        greedy_fill(m, HwLevel::D2, weight_only, cfg_.d2);
        greedy_fill(m, HwLevel::D3, d3_set, cfg_.d3);
        fill_temporal_greedy(m);
        consider(m);
      }
    }
  }

  /// Completes a spatial assignment with a greedy temporal schedule:
  /// T takes activation-only loops first (double-pump weight reuse) within
  /// the ActBUF budget, L absorbs activation loops within the PSumBUF
  /// budget, X takes the remainder. WBUF feasibility is not enforced here;
  /// infeasible mappings are filtered by consider().
  void fill_temporal_greedy(Mapping& m) {
    // T level: activation-only loops, largest tiles first.
    std::int64_t act_budget = cfg_.actbuf_usable();
    for (int i = 0; i < w_.k(); ++i) {
      const WorkloadLoop& l = w_.loops[static_cast<std::size_t>(i)];
      if (!(l.indexes_act && !l.indexes_weight)) continue;
      const std::int64_t rem = ceil_div(l.trip, m.spatial_extent(i));
      std::int64_t best = 1;
      for (std::int64_t c : tile_candidates(rem)) {
        if (c <= act_budget && c > best) best = c;
      }
      m.tile(HwLevel::T, i) = best;
      act_budget /= best;
    }
    // T level: small kernel reduction loops ride along (they are cheap in
    // ActBUF halo and avoid multi-pass psum traffic).
    for (int i = 0; i < w_.k(); ++i) {
      const WorkloadLoop& l = w_.loops[static_cast<std::size_t>(i)];
      if (!l.is_reduction || l.indexes_weight == false) continue;
      const std::int64_t rem = ceil_div(l.trip, m.spatial_extent(i));
      if (rem <= 8) m.tile(HwLevel::T, i) = rem;
    }
    // L level: remaining activation loops within the psum budget.
    std::int64_t psum_budget = cfg_.psumbuf_usable();
    std::int64_t psum_now = 1;
    for (int i = 0; i < w_.k(); ++i) {
      if (!w_.loops[static_cast<std::size_t>(i)].is_reduction) {
        psum_now *= m.tile(HwLevel::T, i);
      }
    }
    for (int i = 0; i < w_.k(); ++i) {
      const WorkloadLoop& l = w_.loops[static_cast<std::size_t>(i)];
      if (!adjacency_allows(w_, HwLevel::L, i)) continue;
      const std::int64_t rem = ceil_div(
          l.trip, m.spatial_extent(i) * m.tile(HwLevel::T, i));
      std::int64_t best = 1;
      for (std::int64_t c : tile_candidates(rem)) {
        const bool widens = !l.is_reduction;
        if ((!widens || psum_now * c <= psum_budget) && c > best) best = c;
      }
      m.tile(HwLevel::L, i) = best;
      if (!l.is_reduction) psum_now *= best;
    }
    // X level: whatever is left.
    for (int i = 0; i < w_.k(); ++i) {
      const std::int64_t covered = m.spatial_extent(i) *
                                   m.tile(HwLevel::T, i) *
                                   m.tile(HwLevel::L, i);
      m.tile(HwLevel::X, i) =
          ceil_div(w_.loops[static_cast<std::size_t>(i)].trip, covered);
    }
  }

  // ---- generator 2: structured DFS -----------------------------------------

  bool run_dfs() {
    const std::int64_t dfs_budget =
        result_.evaluated + (opt_.max_candidates * 3) / 10;
    Mapping m = Mapping::identity(w_.k());
    return dfs_loop(m, 0, cfg_.d1, cfg_.d2, cfg_.d3, dfs_budget);
  }

  /// DFS over loops; per loop enumerate (D1, D2, D3, T, L) tiles from thin
  /// candidate lists; X is the determined remainder. Returns false when the
  /// budget cut enumeration short.
  bool dfs_loop(Mapping& m, int loop, std::int64_t d1_left,
                std::int64_t d2_left, std::int64_t d3_left,
                std::int64_t budget) {
    if (loop == w_.k()) {
      consider(m);
      return true;
    }
    if (result_.evaluated >= budget || !budget_left()) return false;

    const std::int64_t trip = w_.loops[static_cast<std::size_t>(loop)].trip;
    const auto s1s = adjacency_allows(w_, HwLevel::D1, loop)
                         ? level_cands(trip, d1_left, 3)
                         : std::vector<std::int64_t>{1};
    bool complete = true;
    for (std::int64_t s1 : s1s) {
      const std::int64_t rem1 = ceil_div(trip, s1);
      const auto s2s = adjacency_allows(w_, HwLevel::D2, loop)
                           ? level_cands(rem1, d2_left, 3)
                           : std::vector<std::int64_t>{1};
      for (std::int64_t s2 : s2s) {
        const std::int64_t rem2 = ceil_div(rem1, s2);
        const auto s3s = adjacency_allows(w_, HwLevel::D3, loop)
                             ? level_cands(rem2, d3_left, 3)
                             : std::vector<std::int64_t>{1};
        for (std::int64_t s3 : s3s) {
          const std::int64_t rem3 = ceil_div(rem2, s3);
          const auto tts = level_cands(rem3, rem3, 4);
          for (std::int64_t tt : tts) {
            const std::int64_t rem4 = ceil_div(rem3, tt);
            const auto tls = adjacency_allows(w_, HwLevel::L, loop)
                                 ? level_cands(rem4, rem4, 3)
                                 : std::vector<std::int64_t>{1};
            for (std::int64_t tl : tls) {
              m.tile(HwLevel::D1, loop) = s1;
              m.tile(HwLevel::D2, loop) = s2;
              m.tile(HwLevel::D3, loop) = s3;
              m.tile(HwLevel::T, loop) = tt;
              m.tile(HwLevel::L, loop) = tl;
              m.tile(HwLevel::X, loop) = ceil_div(rem4, tl);
              complete &= dfs_loop(m, loop + 1, d1_left / s1, d2_left / s2,
                                   d3_left / s3, budget);
              if (result_.evaluated >= budget || !budget_left()) {
                reset_loop(m, loop);
                return false;
              }
            }
          }
        }
      }
    }
    reset_loop(m, loop);
    return complete;
  }

  void reset_loop(Mapping& m, int loop) {
    for (HwLevel level : kAllLevels) m.tile(level, loop) = 1;
  }

  // ---- generator 3: biased random sampling ----------------------------------

  void run_sampling() {
    Rng rng(opt_.seed);
    // Duplicate samples do not consume budget, so bound raw attempts too
    // (tiny workloads can exhaust their whole mapping space).
    std::int64_t attempts = 0;
    const std::int64_t max_attempts = opt_.max_candidates * 4;
    while (budget_left() && attempts++ < max_attempts) {
      consider(sample_mapping(rng));
    }
  }

  Mapping sample_mapping(Rng& rng) {
    Mapping m = Mapping::identity(w_.k());
    std::int64_t d1_left = cfg_.d1, d2_left = cfg_.d2, d3_left = cfg_.d3;

    // Visit loops in a random order so spatial budget is shared fairly.
    std::vector<int> order(static_cast<std::size_t>(w_.k()));
    for (int i = 0; i < w_.k(); ++i) order[static_cast<std::size_t>(i)] = i;
    for (int i = w_.k() - 1; i > 0; --i) {
      std::swap(order[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(rng.uniform(0, i))]);
    }

    auto pick = [&rng](const std::vector<std::int64_t>& cands,
                       double max_bias) {
      if (cands.empty()) return std::int64_t{1};
      if (rng.uniform01() < max_bias) return cands.back();
      return cands[static_cast<std::size_t>(
          rng.uniform(0, static_cast<std::int64_t>(cands.size()) - 1))];
    };

    for (int loop : order) {
      std::int64_t rem = w_.loops[static_cast<std::size_t>(loop)].trip;
      if (adjacency_allows(w_, HwLevel::D1, loop) && d1_left > 1) {
        const std::int64_t s = pick(level_cands(rem, d1_left, 8), 0.5);
        m.tile(HwLevel::D1, loop) = s;
        d1_left /= s;
        rem = ceil_div(rem, s);
      }
      if (adjacency_allows(w_, HwLevel::D2, loop) && d2_left > 1) {
        const std::int64_t s = pick(level_cands(rem, d2_left, 8), 0.6);
        m.tile(HwLevel::D2, loop) = s;
        d2_left /= s;
        rem = ceil_div(rem, s);
      }
      if (adjacency_allows(w_, HwLevel::D3, loop) && d3_left > 1) {
        const std::int64_t s = pick(level_cands(rem, d3_left, 8), 0.35);
        m.tile(HwLevel::D3, loop) = s;
        d3_left /= s;
        rem = ceil_div(rem, s);
      }
      const std::int64_t tt = pick(level_cands(rem, rem, 8), 0.3);
      m.tile(HwLevel::T, loop) = tt;
      rem = ceil_div(rem, tt);
      if (adjacency_allows(w_, HwLevel::L, loop)) {
        const std::int64_t tl = pick(level_cands(rem, rem, 8), 0.3);
        m.tile(HwLevel::L, loop) = tl;
        rem = ceil_div(rem, tl);
      }
      m.tile(HwLevel::X, loop) = rem;
    }
    return m;
  }

  // ---- generator 4: hill-climbing refinement --------------------------------

  /// Score of a mapping regardless of the dedup set; nullopt when illegal
  /// or infeasible. Counts toward the evaluation budget via consider().
  std::optional<double> score_of(const Mapping& m) {
    if (!satisfies_adjacency(m, w_)) return std::nullopt;
    if (!satisfies_logical_constraints(m, w_, cfg_.d1, cfg_.d2, cfg_.d3))
      return std::nullopt;
    const Performance p = evaluate(w_, m, cfg_);
    if (!p.feasible) return std::nullopt;
    return objective_score(p, opt_.objective, c_min_);
  }

  /// Recomputes loop k's X tile as the minimal cover remainder.
  void fix_x(Mapping& m, int k) const {
    const std::int64_t covered = m.spatial_extent(k) * m.tile(HwLevel::L, k) *
                                 m.tile(HwLevel::T, k);
    m.tile(HwLevel::X, k) =
        ceil_div(w_.loops[static_cast<std::size_t>(k)].trip, covered);
  }

  void run_refinement() {
    // Snapshot the current heap as seeds (best-first).
    std::vector<Solution> seeds;
    {
      auto heap_copy = heap_;
      while (!heap_copy.empty()) {
        seeds.push_back(heap_copy.top());
        heap_copy.pop();
      }
      std::reverse(seeds.begin(), seeds.end());
    }
    if (seeds.size() > 8) seeds.resize(8);

    constexpr std::array<std::int64_t, 4> kPrimes = {2, 3, 5, 7};
    const std::array<HwLevel, 5> targets = {HwLevel::D1, HwLevel::D2,
                                            HwLevel::D3, HwLevel::L,
                                            HwLevel::T};

    for (const Solution& seed : seeds) {
      Mapping cur = seed.mapping;
      double cur_score = seed.score;
      bool improved = true;
      while (improved && budget_left()) {
        improved = false;
        for (int k = 0; k < w_.k() && !improved; ++k) {
          for (HwLevel to : targets) {
            if (!adjacency_allows(w_, to, k)) continue;
            for (HwLevel from :
                 {HwLevel::X, HwLevel::D1, HwLevel::D2, HwLevel::D3,
                  HwLevel::L, HwLevel::T}) {
              if (from == to) continue;
              for (std::int64_t p : kPrimes) {
                Mapping cand = cur;
                if (from != HwLevel::X) {
                  if (cand.tile(from, k) % p != 0) continue;
                  cand.tile(from, k) /= p;
                }
                cand.tile(to, k) *= p;
                fix_x(cand, k);
                const auto s = score_of(cand);
                ++result_.evaluated;
                if (s && *s > cur_score) {
                  cur = cand;
                  cur_score = *s;
                  ++result_.refinement_improvements;
                  consider(cur);  // feed the heap (dedup-protected)
                  improved = true;
                  break;
                }
              }
              if (improved) break;
            }
            if (improved) break;
          }
        }
      }
    }
  }

  const Workload& w_;
  const arch::OverlayConfig& cfg_;
  const SearchOptions& opt_;
  const std::int64_t c_min_;

  SearchResult result_;
  std::priority_queue<Solution, std::vector<Solution>, WorseScore> heap_;
  std::unordered_set<std::uint64_t> seen_;
};

}  // namespace

SearchResult search_mappings(const Workload& w,
                             const arch::OverlayConfig& config,
                             const SearchOptions& options) {
  FTDL_ASSERT(options.top_k >= 1);
  config.validate();
  SearchEngine engine(w, config, options);
  return engine.run();
}

Solution best_mapping(const Workload& w, const arch::OverlayConfig& config,
                      Objective objective, std::int64_t max_candidates) {
  SearchOptions opt;
  opt.objective = objective;
  opt.top_k = 1;
  opt.max_candidates = max_candidates;
  SearchResult r = search_mappings(w, config, opt);
  if (r.top.empty()) {
    throw InfeasibleError("no feasible mapping for workload " + w.name);
  }
  return r.top.front();
}

}  // namespace ftdl::compiler
