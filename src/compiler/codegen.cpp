#include "compiler/codegen.h"

#include "common/error.h"
#include <cmath>

#include "common/math_util.h"
#include "compiler/program_verify.h"
#include "obs/obs.h"

namespace ftdl::compiler {

std::vector<std::uint64_t> LayerProgram::encoded_stream() const {
  std::vector<std::uint64_t> words;
  words.reserve(row_stream.size());
  for (const arch::Instruction& inst : row_stream) {
    words.push_back(arch::encode(inst));
  }
  return words;
}

arch::InstStream generate_row_stream(const Workload& w, const Mapping& m,
                                     const Performance& perf) {
  using arch::TemporalLevel;
  arch::InstStream s;
  s.push_back(arch::set_loop(TemporalLevel::X, static_cast<std::uint64_t>(perf.x)));
  s.push_back(arch::set_loop(TemporalLevel::L, static_cast<std::uint64_t>(perf.l)));
  s.push_back(arch::set_loop(TemporalLevel::T, static_cast<std::uint64_t>(perf.t)));
  s.push_back(arch::set_act_tile(
      static_cast<std::uint64_t>(perf.buffers.actbuf_words_per_tpe)));
  s.push_back(arch::set_psum_tile(
      static_cast<std::uint64_t>(perf.buffers.psum_words_per_superblock)));

  // Multi-pass accumulation: a reduction loop tiled at LoopX means the psum
  // tile is reloaded and accumulated instead of overwritten.
  std::int64_t passes = 1;
  for (int i = 0; i < w.k(); ++i) {
    if (w.loops[static_cast<std::size_t>(i)].is_reduction) {
      passes *= m.tile(HwLevel::X, i);
    }
  }
  s.push_back(arch::set_psum_mode(passes > 1));
  s.push_back(arch::set_weight_base(0));
  s.push_back(arch::launch());
  s.push_back(arch::barrier());
  return s;
}

LayerProgram lower_solution(const nn::Layer& layer, const Workload& w,
                            const Solution& solution) {
  LayerProgram p;
  p.layer = layer;
  p.workload = w;
  p.mapping = solution.mapping;
  p.perf = solution.perf;
  p.row_stream = generate_row_stream(w, solution.mapping, solution.perf);
  return p;
}

namespace {

/// The layer restricted to one of `groups` slices of its weight-only
/// dimension (conv output channels / MM output features).
nn::Layer weight_group_slice(const nn::Layer& layer, int groups) {
  nn::Layer part = layer;
  switch (layer.kind) {
    case nn::LayerKind::Conv:
      part.out_c = static_cast<int>(ceil_div(layer.out_c, groups));
      break;
    case nn::LayerKind::Depthwise:
      part.in_c = static_cast<int>(ceil_div(layer.in_c, groups));
      part.out_c = part.in_c;
      break;
    default:
      part.mm_n = ceil_div(layer.mm_n, groups);
  }
  return part;
}

int weight_only_extent(const nn::Layer& layer) {
  switch (layer.kind) {
    case nn::LayerKind::Conv: return layer.out_c;
    case nn::LayerKind::Depthwise: return layer.in_c;
    default: return static_cast<int>(layer.mm_n);
  }
}

}  // namespace

LayerProgram compile_layer(const nn::Layer& layer,
                           const arch::OverlayConfig& config,
                           Objective objective, std::int64_t max_candidates) {
  obs::ScopedSpan span("compiler", "compile_layer",
                       {{"layer", layer.name}});
  const int max_groups = weight_only_extent(layer);
  for (int groups = 1; groups <= max_groups; groups *= 2) {
    const nn::Layer part = weight_group_slice(layer, groups);
    const Workload w = Workload::from_layer(part);
    try {
      Solution s;
      {
        obs::ScopedSpan search_span("compiler", "search",
                                    {{"groups", std::to_string(groups)}});
        s = best_mapping(w, config, objective, max_candidates);
      }
      LayerProgram prog;
      {
        obs::ScopedSpan lower_span("compiler", "codegen");
        prog = lower_solution(part, w, s);
        prog.layer = layer;  // programs carry the original layer identity
        prog.weight_groups = groups;
        if (config.charge_weight_reload) {
          // One group's weights stream in from DRAM (2 bytes/word) over the
          // read channel, duplication included.
          const double group_bytes =
              2.0 * double(prog.perf.buffers.wbuf_words_per_tpe) *
              double(config.tpes());
          prog.reload_cycles_per_group = static_cast<std::int64_t>(
              std::ceil(group_bytes / config.dram_rd_bytes_per_cycle()));
        }
      }
      {
        obs::ScopedSpan verify_span("compiler", "verify");
        assert_program_verified(prog, config);
      }
      obs::count("compiler/layers_compiled");
      obs::count("compiler/programs_verified");
      if (groups > 1) obs::count("compiler/group_split_layers");
      return prog;
    } catch (const InfeasibleError&) {
      obs::count("compiler/infeasible_retries");
      continue;  // halve the weight tile and retry
    }
  }
  throw InfeasibleError("no feasible mapping for layer " + layer.name +
                        " at any weight-group split");
}

}  // namespace ftdl::compiler
