// Mapping vectors (Sec. IV-A, Eqns. 2-6).
//
// A mapping assigns every workload loop a tile size at each of the six
// hardware levels (D1, D2, D3, X, L, T): the matrix T of Eqn. 4. Spatial
// levels run in parallel on the overlay; temporal levels are the Listing-1
// control flow. The product of a loop's tiles across all levels covers its
// trip count (padding allowed, Eqn. 11).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "compiler/workload.h"

namespace ftdl::compiler {

enum class HwLevel : int { D1 = 0, D2 = 1, D3 = 2, X = 3, L = 4, T = 5 };
inline constexpr int kHwLevels = 6;
inline constexpr std::array<HwLevel, kHwLevels> kAllLevels = {
    HwLevel::D1, HwLevel::D2, HwLevel::D3, HwLevel::X, HwLevel::L, HwLevel::T};

const char* to_string(HwLevel level);

struct Mapping {
  /// t[level][k]: tile size of workload loop k at hardware level `level`.
  std::array<std::vector<std::int64_t>, kHwLevels> t;

  /// Identity mapping (all tiles 1) for a K-loop workload.
  static Mapping identity(int k);

  int k() const { return static_cast<int>(t[0].size()); }

  std::int64_t tile(HwLevel level, int loop) const {
    return t[static_cast<int>(level)][static_cast<std::size_t>(loop)];
  }
  std::int64_t& tile(HwLevel level, int loop) {
    return t[static_cast<int>(level)][static_cast<std::size_t>(loop)];
  }

  /// Product of the mapping vector at `level` (Eqn. 6 for X/L/T; the
  /// spatial-resource demand for D1/D2/D3, Eqn. 10 left-hand sides).
  std::int64_t level_product(HwLevel level) const;

  /// Product of all levels' tiles for workload loop k (Eqn. 11 LHS).
  std::int64_t loop_coverage(int loop) const;

  /// Tile product across the *temporal* levels (X*L*T) for loop k — the
  /// per-TPE workload extent used by buffer sizing and E_WBUF.
  std::int64_t temporal_extent(int loop) const;

  /// Tile product across the *spatial* levels (D1*D2*D3) for loop k.
  std::int64_t spatial_extent(int loop) const;

  /// Padded MACs implied by this mapping (>= workload.macs()).
  std::int64_t padded_macs() const;

  std::string to_string(const Workload& w) const;
};

/// Checks Eqns. 10-11 against a hardware shape: spatial products within
/// (d1, d2, d3) and every loop fully covered. Returns false (never throws)
/// so the search can use it as a filter.
bool satisfies_logical_constraints(const Mapping& m, const Workload& w, int d1,
                                   int d2, int d3);

}  // namespace ftdl::compiler
