#include "compiler/analytical_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"
#include "compiler/adjacency.h"

namespace ftdl::compiler {

/// Activation words a single TPE consumes from its ActBUF during one LoopT
/// burst (halo-aware for CONV: a tile of TT_E outputs with TT_R kernel rows
/// needs (TT_E-1)*stride + TT_R input rows).
std::int64_t act_tile_words_per_tpe(const Workload& w, const Mapping& m) {
  // Conv and depthwise share the halo-tile geometry (tags N/E/F/R/S).
  if (w.kind == WorkloadKind::MatMul) {
    const int idx_m = w.loop_index('M'), idx_p = w.loop_index('P');
    return m.tile(HwLevel::T, idx_m) * m.tile(HwLevel::T, idx_p);
  }
  const int idx_n = w.loop_index('N'), idx_e = w.loop_index('E'),
            idx_f = w.loop_index('F'), idx_r = w.loop_index('R'),
            idx_s = w.loop_index('S');
  const std::int64_t h =
      (m.tile(HwLevel::T, idx_e) - 1) * w.stride + m.tile(HwLevel::T, idx_r);
  const std::int64_t ww =
      (m.tile(HwLevel::T, idx_f) - 1) * w.stride + m.tile(HwLevel::T, idx_s);
  return m.tile(HwLevel::T, idx_n) * h * ww;
}

/// Activation words one SuperBlock *row* receives per LoopL refill: the D1
/// TPEs of a SuperBlock hold different reduction slices, so the row traffic
/// multiplies the per-TPE tile by the D1 splits of activation loops
/// (f_act of Eqn. 8).
std::int64_t act_refill_words(const Workload& w, const Mapping& m) {
  if (w.kind == WorkloadKind::MatMul) {
    const int idx_m = w.loop_index('M'), idx_p = w.loop_index('P');
    return m.tile(HwLevel::D1, idx_m) * m.tile(HwLevel::T, idx_m) *
           m.tile(HwLevel::T, idx_p);
  }
  const int idx_n = w.loop_index('N'), idx_e = w.loop_index('E'),
            idx_f = w.loop_index('F'), idx_r = w.loop_index('R'),
            idx_s = w.loop_index('S');
  const std::int64_t ch = m.tile(HwLevel::D1, idx_n) * m.tile(HwLevel::T, idx_n);
  const std::int64_t h = (m.tile(HwLevel::T, idx_e) - 1) * w.stride +
                         m.tile(HwLevel::D1, idx_r) * m.tile(HwLevel::T, idx_r);
  const std::int64_t ww = (m.tile(HwLevel::T, idx_f) - 1) * w.stride +
                          m.tile(HwLevel::D1, idx_s) * m.tile(HwLevel::T, idx_s);
  return ch * h * ww;
}

/// Live partial-sum entries per SuperBlock during one LoopX iteration:
/// the output (non-reduction) loop extents at the T and L levels
/// (f_psum of Eqn. 9). Reduction loops do not widen the psum tile — they
/// accumulate into it.
std::int64_t psum_tile_words(const Workload& w, const Mapping& m) {
  std::int64_t words = 1;
  for (int i = 0; i < w.k(); ++i) {
    if (w.loops[static_cast<std::size_t>(i)].is_reduction) continue;
    words *= m.tile(HwLevel::T, i) * m.tile(HwLevel::L, i);
  }
  return words;
}

/// Number of passes over the psum tile: reduction loops tiled at LoopX force
/// intermediate results through the PSumBUS (multi-pass, Sec. III-B).
std::int64_t psum_passes(const Workload& w, const Mapping& m) {
  std::int64_t passes = 1;
  for (int i = 0; i < w.k(); ++i) {
    if (w.loops[static_cast<std::size_t>(i)].is_reduction) {
      passes *= m.tile(HwLevel::X, i);
    }
  }
  return passes;
}

/// Weight reuse available to the double pump: the product of the T-level
/// tiles of activation-only loops. Each WBUF word is read once per CLKl
/// cycle and must serve two CLKh MACCs.
std::int64_t weight_reuse_at_t(const Workload& w, const Mapping& m) {
  std::int64_t reuse = 1;
  for (int i = 0; i < w.k(); ++i) {
    const WorkloadLoop& l = w.loops[static_cast<std::size_t>(i)];
    if (l.indexes_act && !l.indexes_weight) reuse *= m.tile(HwLevel::T, i);
  }
  return reuse;
}

Performance evaluate(const Workload& w, const Mapping& m,
                     const arch::OverlayConfig& config) {
  FTDL_ASSERT(m.k() == w.k());
  Performance p;

  p.x = m.level_product(HwLevel::X);
  p.l = m.level_product(HwLevel::L);
  p.t = m.level_product(HwLevel::T);

  // --- Eqn. 7: computation time with the TPE-chain pipeline latency.
  const std::int64_t lat = config.pipeline_latency();
  p.weight_reuse_ok =
      !config.double_pump || weight_reuse_at_t(w, m) >= 2;
  const std::int64_t burst = p.l * p.t * (p.weight_reuse_ok ? 1 : 2);
  p.c_comp = p.x * (burst + lat);

  // --- Eqn. 8: ActBUS cycles = f_act(TT) * X * L.
  const std::int64_t act_refill_cycles =
      ceil_div(act_refill_words(w, m), config.actbus_words_per_cycle);
  p.c_act_bus = act_refill_cycles * p.x * p.l;

  // --- Eqn. 9: PSumBUS cycles = f_psum(TT, TL) * X * D3 (one bus per
  // SuperBlock column, shared by the D3 rows).
  const std::int64_t psum_words = psum_tile_words(w, m);
  const std::int64_t passes = psum_passes(w, m);
  // Multi-pass: intermediate tiles are stored *and* reloaded (2x traffic);
  // single-pass stores only the final results.
  const std::int64_t psum_traffic = passes > 1 ? 2 * psum_words : psum_words;
  p.c_psum_bus =
      ceil_div(psum_traffic, config.psumbus_words_per_cycle) * p.x * config.d3;

  // --- DRAM (Sec. IV-B2): activations in, partial sums / results out.
  const double act_bytes = 2.0 * double(act_refill_words(w, m)) *
                           double(p.x) * double(p.l) * config.d3;
  const double psum_wr_bytes = double(config.psum_bytes) * double(psum_words) *
                               double(p.x) * config.d2 * config.d3;
  // Multi-pass reloads come back in through the read channel.
  const double psum_rd_bytes =
      passes > 1 ? psum_wr_bytes * double(passes - 1) / double(passes) : 0.0;
  p.dram_rd_bytes = act_bytes + psum_rd_bytes;
  p.dram_wr_bytes = psum_wr_bytes;
  p.c_dram_rd = static_cast<std::int64_t>(
      std::ceil(p.dram_rd_bytes / config.dram_rd_bytes_per_cycle()));
  p.c_dram_wr = static_cast<std::int64_t>(
      std::ceil(p.dram_wr_bytes / config.dram_wr_bytes_per_cycle()));

  // --- Eqn. 12.
  p.c_exe = std::max({p.c_comp, p.c_act_bus, p.c_psum_bus, p.c_dram_rd,
                      p.c_dram_wr});

  // --- WBUF efficiency (Sec. IV-B3 / DESIGN.md §4.3).
  std::int64_t wbuf_per_tpe = 1;
  for (int i = 0; i < w.k(); ++i) {
    if (w.loops[static_cast<std::size_t>(i)].indexes_weight) {
      wbuf_per_tpe *= m.temporal_extent(i);
    }
  }
  std::int64_t used_tpes = 1;
  for (HwLevel level : {HwLevel::D1, HwLevel::D2, HwLevel::D3}) {
    used_tpes *= m.level_product(level);
  }
  p.e_wbuf = double(w.weight_words()) / (double(wbuf_per_tpe) * double(used_tpes));
  FTDL_ASSERT(p.e_wbuf <= 1.0 + 1e-9);

  // --- Buffers.
  p.buffers.wbuf_words_per_tpe = wbuf_per_tpe;
  p.buffers.actbuf_words_per_tpe = act_tile_words_per_tpe(w, m);
  p.buffers.psum_words_per_superblock = psum_words;
  p.buffers_fit = p.buffers.fits(config);

  p.host_reduction = needs_host_reduction(m, w);
  p.feasible = p.buffers_fit;

  p.hardware_efficiency =
      double(w.macs()) / (double(p.c_exe) * double(config.tpes()));
  return p;
}

std::int64_t min_execution_cycles(const Workload& w,
                                  const arch::OverlayConfig& config) {
  return ceil_div(w.macs(), config.tpes());
}

double balance_score(const Performance& p, std::int64_t c_exe_min) {
  FTDL_ASSERT(c_exe_min > 0 && p.c_exe > 0);
  return double(c_exe_min) / double(p.c_exe) + p.e_wbuf;
}

}  // namespace ftdl::compiler
