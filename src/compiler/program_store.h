// ProgramStore — persistent, content-addressed, cross-process LayerProgram
// storage (the on-disk tier below CompilerSession's in-memory cache).
//
// FTDL's scalability story (Sec. II) is that the overlay bitstream never
// changes — only the controller instruction streams do — so compiled
// programs are small, deployable artifacts. The in-memory session cache
// dies with the process, which made every `ftdl-serve` / `ftdl-prof`
// restart recompile the whole zoo from scratch. The store keeps those
// artifacts on disk, keyed by the same `program_cache_key` content hash, so
// a fleet of processes sharing one `--cache-dir` warm-starts in
// milliseconds instead of re-running the mapping search.
//
// Entry format (one file per key, `<key>.ftdlprog` in the store directory):
//
//   ftdl-store v1 config=<16-hex digest> key=<16-hex key>      (header)
//   <serialize_program text — the already-versioned artifact>  (payload)
//   footer bytes=<payload size> checksum=<16-hex FNV-1a>       (footer)
//
// The header pins the store format version and the overlay-config digest
// (belt and braces on top of the config's presence in the key); the footer
// makes truncation detectable — a file missing its footer, or whose payload
// disagrees with the recorded length or checksum, is corrupt by definition.
//
// Durability contract:
//   * Publication is ATOMIC: entries are written to a unique temp file in
//     the store directory and renamed into place, so concurrent writers and
//     crashed processes can never leave a half-written entry visible under
//     its final name. Racing writers of one key both publish identical
//     content (the key is a content hash of the full compilation input);
//     last rename wins.
//   * Loads NEVER trust the disk: after the header/footer integrity checks,
//     the payload goes through `deserialize_program`, which re-evaluates
//     the analytical model on the stored mapping and statically verifies
//     the stored stream against it. A corrupted, stale, tampered or
//     wrong-version entry is EVICTED (the file is removed) and reported as
//     a miss — the caller recompiles; a wrong schedule is never returned.
//
// Obs counters (docs/observability.md): session/disk_hits,
// session/disk_misses, session/disk_evictions, session/disk_bytes, plus
// session/disk_write_failures from the session's write-through path.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "common/hash.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "compiler/program_io.h"

namespace ftdl::compiler {

/// Cumulative traffic of one ProgramStore instance. Shared by every session
/// attached to the same instance; a separate instance on the same directory
/// (another process, or another in-process store object) keeps its own.
struct StoreStats {
  std::int64_t hits = 0;           ///< entries loaded and fully re-validated
  std::int64_t misses = 0;         ///< probes that found no entry
  std::int64_t evictions = 0;      ///< corrupt/stale entries removed on load
  std::int64_t bytes_written = 0;  ///< entry bytes published by this instance
  std::int64_t bytes_read = 0;     ///< entry bytes of successful loads
};

/// Feeds every OverlayConfig field into `h` in the store/key canonical
/// order. Shared by `program_cache_key` and the entry-header digest so the
/// two can never drift apart.
Hash64& hash_overlay_config(Hash64& h, const arch::OverlayConfig& config);

/// 64-bit digest of every OverlayConfig field (the entry-header `config=`
/// value).
std::uint64_t overlay_config_digest(const arch::OverlayConfig& config);

class ProgramStore {
 public:
  /// Opens the store rooted at `dir`, creating the directory (and parents)
  /// if needed. Throws ftdl::Error when the directory cannot be created.
  explicit ProgramStore(std::string dir);
  ProgramStore(const ProgramStore&) = delete;
  ProgramStore& operator=(const ProgramStore&) = delete;

  const std::string& dir() const { return dir_; }

  /// Probes the store for `key`. A valid entry is re-validated end to end
  /// (header, footer, checksum, then `deserialize_program` against
  /// `config`) and returned; a missing entry returns nullopt; a corrupted,
  /// truncated, wrong-version or config-mismatched entry is evicted and
  /// nullopt is returned.
  std::optional<LayerProgram> load(std::uint64_t key,
                                   const arch::OverlayConfig& config);

  /// Publishes `program` under `key` via temp-file + atomic rename. Throws
  /// ftdl::Error when the entry cannot be written (disk full, permissions);
  /// the final path is never left half-written.
  void put(std::uint64_t key, const arch::OverlayConfig& config,
           const LayerProgram& program);

  /// Final on-disk path of `key`'s entry.
  std::string entry_path(std::uint64_t key) const;

  /// Number of published entries currently in the directory.
  std::int64_t entry_count() const;

  StoreStats stats() const;

 private:
  void evict(std::uint64_t key, const std::string& why);

  std::string dir_;
  std::atomic<std::uint64_t> temp_seq_{0};
  mutable Mutex mu_;
  StoreStats stats_ FTDL_GUARDED_BY(mu_);
};

/// Cache-directory resolution shared by the tools: the `--cache-dir` flag
/// value when non-empty, else the FTDL_CACHE_DIR environment variable, else
/// "" (persistent caching disabled).
std::string resolve_cache_dir(const std::string& flag_value);

}  // namespace ftdl::compiler
