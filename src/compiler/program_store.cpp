#include "compiler/program_store.h"

#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>
#include <utility>

#include "common/error.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "obs/obs.h"

namespace ftdl::compiler {

namespace {

namespace fs = std::filesystem;

/// Bumped whenever the entry layout (header/footer grammar, payload
/// framing) changes; older entries then evict-and-recompile instead of
/// being misparsed. The payload itself carries its own `ftdl-program`
/// version on top.
constexpr int kStoreVersion = 1;

constexpr const char* kEntryExtension = ".ftdlprog";

std::uint64_t payload_checksum(const std::string& payload) {
  Hash64 h;
  h.bytes(payload.data(), payload.size());
  return h.digest();
}

std::string header_line(std::uint64_t key, const arch::OverlayConfig& config) {
  return strformat("ftdl-store v%d config=%016llx key=%016llx\n", kStoreVersion,
                   static_cast<unsigned long long>(overlay_config_digest(config)),
                   static_cast<unsigned long long>(key));
}

std::string footer_line(const std::string& payload) {
  return strformat("footer bytes=%llu checksum=%016llx\n",
                   static_cast<unsigned long long>(payload.size()),
                   static_cast<unsigned long long>(payload_checksum(payload)));
}

/// Reads a whole file; false when it does not exist or cannot be read.
bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) return false;
  *out = std::move(text);
  return true;
}

}  // namespace

Hash64& hash_overlay_config(Hash64& h, const arch::OverlayConfig& config) {
  // Every field the analytical model or codegen can read, in the key's
  // canonical order (session.cpp hashed these inline before the store
  // existed — the order must never change without bumping the key salt).
  h.i32(config.d1).i32(config.d2).i32(config.d3);
  h.i64(config.actbuf_words).i64(config.wbuf_words).i64(config.psumbuf_words);
  h.i32(config.actbus_words_per_cycle).i32(config.psumbus_words_per_cycle);
  h.f64(config.dram_rd_bytes_per_sec).f64(config.dram_wr_bytes_per_sec);
  h.i32(config.psum_bytes);
  h.f64(config.clocks.clk_l_hz).f64(config.clocks.clk_h_hz);
  h.boolean(config.double_pump);
  h.boolean(config.charge_weight_reload);
  return h;
}

std::uint64_t overlay_config_digest(const arch::OverlayConfig& config) {
  Hash64 h;
  return hash_overlay_config(h, config).digest();
}

ProgramStore::ProgramStore(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) throw Error("program store: empty cache directory");
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec || !fs::is_directory(dir_)) {
    throw Error("program store: cannot create cache directory " + dir_ +
                (ec ? ": " + ec.message() : ""));
  }
}

std::string ProgramStore::entry_path(std::uint64_t key) const {
  return dir_ + "/" +
         strformat("%016llx%s", static_cast<unsigned long long>(key),
                   kEntryExtension);
}

void ProgramStore::evict(std::uint64_t key, const std::string& why) {
  std::error_code ec;
  fs::remove(entry_path(key), ec);  // best effort; a racing evict is fine
  log_warn(strformat("program store: evicting %s: %s",
                     entry_path(key).c_str(), why.c_str()));
  {
    MutexLock lock(mu_);
    ++stats_.evictions;
  }
  obs::count("session/disk_evictions");
}

std::optional<LayerProgram> ProgramStore::load(
    std::uint64_t key, const arch::OverlayConfig& config) {
  std::string text;
  if (!read_file(entry_path(key), &text)) {
    MutexLock lock(mu_);
    ++stats_.misses;
    obs::count("session/disk_misses");
    return std::nullopt;
  }

  // A present-but-invalid entry is evicted and reported as a miss — callers
  // recompile; a wrong program is never returned. Integrity is checked
  // outside-in: header (format + provenance), footer (truncation), checksum
  // (bit rot), then the full semantic re-validation in deserialize_program.
  const auto invalid = [&](const std::string& why) -> std::optional<LayerProgram> {
    evict(key, why);
    MutexLock lock(mu_);
    ++stats_.misses;
    obs::count("session/disk_misses");
    return std::nullopt;
  };

  const std::size_t header_end = text.find('\n');
  if (header_end == std::string::npos) return invalid("no header line");
  if (text.substr(0, header_end) + "\n" != header_line(key, config)) {
    return invalid("header/version/config mismatch");
  }

  // The footer is the last line; everything between header and footer is
  // the payload. A file that lost its tail has no footer and fails here.
  const std::size_t footer_start = text.rfind("\nfooter ");
  if (footer_start == std::string::npos || footer_start < header_end) {
    return invalid("no footer (truncated entry)");
  }
  const std::string payload =
      text.substr(header_end + 1, footer_start + 1 - (header_end + 1));
  if (text.substr(footer_start + 1) != footer_line(payload)) {
    return invalid("footer length/checksum mismatch (corrupted entry)");
  }

  LayerProgram prog;
  try {
    prog = deserialize_program(payload, config);
  } catch (const Error& e) {
    return invalid(std::string("stored program failed re-validation: ") +
                   e.what());
  }

  {
    MutexLock lock(mu_);
    ++stats_.hits;
    stats_.bytes_read += static_cast<std::int64_t>(text.size());
  }
  obs::count("session/disk_hits");
  return prog;
}

void ProgramStore::put(std::uint64_t key, const arch::OverlayConfig& config,
                       const LayerProgram& program) {
  const std::string payload = serialize_program(program);
  const std::string content =
      header_line(key, config) + payload + footer_line(payload);

  // Unique temp name per (process, call): concurrent writers — including
  // other processes sharing the directory — never collide before the
  // atomic rename, and a crashed writer leaves only a stray .tmp file.
  const std::string temp = strformat(
      "%s.tmp.%d.%llu", entry_path(key).c_str(), static_cast<int>(::getpid()),
      static_cast<unsigned long long>(
          temp_seq_.fetch_add(1, std::memory_order_relaxed)));

  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("program store: cannot write " + temp);
    out << content;
    out.flush();
    if (!out) {
      std::error_code ec;
      fs::remove(temp, ec);
      throw Error("program store: error writing " + temp +
                  " (disk full or I/O error)");
    }
  }

  std::error_code ec;
  fs::rename(temp, entry_path(key), ec);
  if (ec) {
    std::error_code rm;
    fs::remove(temp, rm);
    throw Error("program store: cannot publish " + entry_path(key) + ": " +
                ec.message());
  }

  {
    MutexLock lock(mu_);
    stats_.bytes_written += static_cast<std::int64_t>(content.size());
  }
  obs::count("session/disk_bytes", static_cast<std::int64_t>(content.size()));
}

std::int64_t ProgramStore::entry_count() const {
  std::int64_t n = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(dir_, ec)) {
    if (e.path().extension() == kEntryExtension) ++n;
  }
  return n;
}

StoreStats ProgramStore::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

std::string resolve_cache_dir(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  const char* env = std::getenv("FTDL_CACHE_DIR");
  return env ? env : "";
}

}  // namespace ftdl::compiler
