// CompilerSession — shared, parallel, content-addressed compilation.
//
// The mapping search of Sec. IV-D is the expensive step of every paper
// artifact: scheduling a network runs it per distinct layer shape, and the
// drivers above the scheduler (Objective 3's (D1,D2,D3) sweep, the DSE
// explorer, the multi-FPGA partitioner, the runtime's per-group compiles)
// re-run it for the same (workload, overlay) pairs over and over. A
// CompilerSession hoists the two pieces of state those call paths can
// legitimately share out of the individual calls:
//
//   * a process-lifetime, content-addressed LayerProgram cache, keyed by a
//     stable 64-bit hash of the FULL compilation input — every Workload
//     field (kind, stride, and each loop's tag/trip/dataflow flags; layer
//     names are excluded so identical shapes share one entry), every
//     OverlayConfig field, the Objective and the candidate budget. Keys
//     collide only if the inputs are bytewise identical modulo hash
//     collisions (2^-64-scale); the previous scheduler memoized on loop
//     trips + stride alone, which conflates workloads that differ in any
//     other field.
//   * a ThreadPool (src/common/thread_pool.h) that compiles distinct layer
//     shapes of one network in parallel and evaluates (D1,D2,D3) split
//     candidates concurrently.
//
// Two refinements on top of the memory cache:
//
//   * SINGLE-FLIGHT: concurrent compilations of one uncached key run the
//     mapping search exactly once — the first thread to claim the key
//     compiles while the others wait for its result, so neither the work
//     nor the miss/byte accounting is duplicated (previously both threads
//     searched and both counted a miss).
//   * an optional PERSISTENT second tier (compiler/program_store.h),
//     attached with set_store(): a memory miss probes the on-disk
//     content-addressed store before compiling, and every fresh compile is
//     written through, so a new process — or a fleet of them sharing one
//     --cache-dir — warm-starts from disk in milliseconds. Disk hits are
//     fully re-validated on load (analytical-model re-evaluation plus the
//     static stream verifier); a corrupted or stale entry is evicted and
//     recompiled, never trusted.
//
// Determinism guarantee: compile_layer is a deterministic function of
// (layer shape, config, objective, budget) — the search is seeded and the
// generators are ordered — and every parallel region here merges results
// in a serial pass over the original enumeration order. Schedules and
// hardware-config choices are therefore BIT-IDENTICAL for any jobs value
// and any cache state (pinned by tests/test_session.cpp).
//
// The free functions schedule_network() / find_best_hw_config()
// (compiler/scheduler.h) delegate to CompilerSession::global(), so every
// existing consumer shares one cache and one pool. Parallelism defaults to
// the FTDL_JOBS environment variable (else the hardware thread count);
// tools expose it as --jobs N.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "compiler/scheduler.h"

namespace ftdl::compiler {

class ProgramStore;

/// Cumulative cache traffic of one session (obs mirrors: session/*). The
/// disk_* fields mirror the attached ProgramStore (zero when none is
/// attached); they cover every session sharing that store instance.
struct SessionStats {
  std::int64_t hits = 0;           ///< compiles served from the memory cache
  std::int64_t misses = 0;         ///< compiles that ran the mapping search
  std::int64_t entries = 0;        ///< programs currently resident
  std::int64_t program_bytes = 0;  ///< approximate resident bytes

  std::int64_t disk_hits = 0;       ///< memory misses served from disk
  std::int64_t disk_misses = 0;     ///< disk probes that found no entry
  std::int64_t disk_evictions = 0;  ///< corrupt/stale entries evicted on load
  std::int64_t disk_bytes = 0;      ///< entry bytes written through to disk
};

/// Content-addressed cache key of one layer compilation: a Hash64 digest of
/// every Workload field except the name, every OverlayConfig field, the
/// objective and the search budget (plus a format-version salt).
std::uint64_t program_cache_key(const Workload& w,
                                const arch::OverlayConfig& config,
                                Objective objective,
                                std::int64_t max_candidates);

/// Names the calling pool worker's obs track "jobs-N" (no-op on threads the
/// pool does not own). Call at the top of every parallel_for task body that
/// emits spans, so per-task spans land on per-worker tracks and keep the
/// per-track nesting invariant; the calling thread keeps its own track.
void name_worker_track();

class CompilerSession {
 public:
  /// `jobs` <= 0 resolves through ftdl::default_jobs() (FTDL_JOBS env, else
  /// the hardware thread count).
  explicit CompilerSession(int jobs = 0);
  ~CompilerSession();
  CompilerSession(const CompilerSession&) = delete;
  CompilerSession& operator=(const CompilerSession&) = delete;

  /// The process-wide session behind schedule_network / find_best_hw_config
  /// and every tool. Lives for the process; its cache is never evicted.
  static CompilerSession& global();

  /// Rebuilds the pool at a new parallelism (<= 0 resolves defaults). Must
  /// not be called while a compilation is in flight on this session.
  void set_jobs(int jobs);
  int jobs() const;

  /// The session's worker pool, for consumers that parallelize their own
  /// enumeration (DSE candidates, multi-FPGA device sweeps) and want to
  /// share one set of threads with the compiler.
  ThreadPool& pool();

  /// Attaches a persistent on-disk tier (compiler/program_store.h): memory
  /// miss -> disk probe -> compile -> write-through. Several sessions (or
  /// processes) may share one store directory. nullptr detaches. Write
  /// failures during write-through are logged and counted
  /// (session/disk_write_failures), never fatal and never silent.
  void set_store(std::shared_ptr<ProgramStore> store);
  std::shared_ptr<ProgramStore> store() const;

  /// Cached equivalent of compile_layer(): returns the cached program for
  /// the content key when present (with `layer`'s identity restored),
  /// otherwise compiles and caches. Throws exactly like compile_layer.
  LayerProgram compile(const nn::Layer& layer,
                       const arch::OverlayConfig& config,
                       Objective objective = Objective::Performance,
                       std::int64_t max_candidates = 200'000);

  /// Cached, parallel equivalent of schedule_network(): distinct uncached
  /// layer shapes compile across the pool, then a serial pass merges the
  /// programs in layer order — output is bit-identical to a serial,
  /// cache-cold run.
  NetworkSchedule schedule(const nn::Network& net,
                           const arch::OverlayConfig& config,
                           Objective objective = Objective::Performance,
                           std::int64_t max_candidates_per_layer = 200'000);

  /// Cached, parallel equivalent of find_best_hw_config(): every legal
  /// (D1,D2,D3) split of `tpe_budget` is scheduled concurrently; a serial
  /// pass picks the fastest (first enumerated wins ties, matching the
  /// serial loop). Splits that do not fit the device (ConfigError) or have
  /// no feasible mapping (InfeasibleError) are skipped; any other error —
  /// notably InternalError from the verifier post-condition — propagates.
  HwConfigChoice best_hw_config(const nn::Network& net,
                                const arch::OverlayConfig& base,
                                const fpga::Device& device, int tpe_budget,
                                std::int64_t max_candidates_per_layer = 20'000);

  SessionStats stats() const;

  /// Drops every cached program (cumulative hit/miss counts are kept).
  void clear_cache();

 private:
  /// The single entry point for producing a program: memory lookup ->
  /// single-flight claim -> disk probe -> compile -> write-through ->
  /// insert. Concurrent callers of one uncached key compile exactly once;
  /// the losers wait and are accounted as hits. Throws exactly like
  /// compile_layer (every waiter retries after a failed owner, so each
  /// caller observes its own exception).
  std::shared_ptr<const LayerProgram> obtain(std::uint64_t key,
                                             const nn::Layer& layer,
                                             const arch::OverlayConfig& config,
                                             Objective objective,
                                             std::int64_t max_candidates)
      FTDL_EXCLUDES(mu_);

  mutable Mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const LayerProgram>>
      cache_ FTDL_GUARDED_BY(mu_);
  /// Keys whose compile (or disk load) is in flight; owners never wait, so
  /// every waiter waits on a thread that is making progress.
  std::unordered_set<std::uint64_t> inflight_ FTDL_GUARDED_BY(mu_);
  CondVar inflight_cv_;
  SessionStats stats_ FTDL_GUARDED_BY(mu_);
  std::shared_ptr<ProgramStore> store_ FTDL_GUARDED_BY(mu_);
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace ftdl::compiler
