// Adjacency matrix for workload mapping (Sec. IV-C1, Fig. 5).
//
// A(level, loop) = 1 iff workload loop `loop` may be tiled at hardware level
// `level`; where it is 0 the mapping-vector entry is pinned to 1. The matrix
// is derived from the hardware semantics rather than tabulated per kind:
//   D1 — the DSP cascade *forcibly accumulates* the D1 TPEs of a SuperBlock,
//        so only reduction loops may map there;
//   D2 — SuperBlocks in a row share the ActBUS data and differ only in WBUF
//        content, so only weight-only loops may map there;
//   D3 — rows are independent; any loop, but splitting a reduction loop
//        across rows requires a host-side EWOP to fold partial sums (the *
//        entries of Fig. 5);
//   X  — outermost temporal level: any loop;
//   L  — ActBUF is reloaded each LoopL iteration, so only loops that change
//        the activation tile are mapped there;
//   T  — innermost temporal level: any loop.
#pragma once

#include "compiler/mapping.h"
#include "compiler/workload.h"

namespace ftdl::compiler {

/// True iff `loop` of `w` may have a tile > 1 at `level`.
bool adjacency_allows(const Workload& w, HwLevel level, int loop);

/// True iff the mapping respects the adjacency matrix (every disallowed
/// entry is 1).
bool satisfies_adjacency(const Mapping& m, const Workload& w);

/// True iff the mapping splits a reduction loop across D3 rows, requiring
/// host-side EWOP accumulation of the per-row partial sums (Fig. 5's *).
bool needs_host_reduction(const Mapping& m, const Workload& w);

}  // namespace ftdl::compiler
