#include "compiler/session.h"

#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/error.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "compiler/program_store.h"
#include "obs/obs.h"

namespace ftdl::compiler {

namespace {

/// Bumped whenever the meaning of any hashed field changes, so stale keys
/// from an older layout can never alias a new one.
constexpr std::uint64_t kKeyFormatVersion = 1;

/// Approximate resident size of a cached program (heap payloads + struct).
std::int64_t approx_program_bytes(const LayerProgram& p) {
  std::int64_t b = static_cast<std::int64_t>(sizeof(LayerProgram));
  b += static_cast<std::int64_t>(p.row_stream.size() * sizeof(arch::Instruction));
  for (const auto& level : p.mapping.t)
    b += static_cast<std::int64_t>(level.size() * sizeof(std::int64_t));
  b += static_cast<std::int64_t>(p.workload.loops.size() * sizeof(WorkloadLoop));
  b += static_cast<std::int64_t>(p.layer.name.size() + p.workload.name.size());
  return b;
}

}  // namespace

std::uint64_t program_cache_key(const Workload& w,
                                const arch::OverlayConfig& config,
                                Objective objective,
                                std::int64_t max_candidates) {
  Hash64 h;
  h.u64(kKeyFormatVersion);

  // Workload content. The name is identity, not content — GoogLeNet's many
  // identically-shaped inception branches must share one entry.
  h.i32(static_cast<int>(w.kind));
  h.i32(w.stride);
  h.u64(w.loops.size());
  for (const WorkloadLoop& loop : w.loops) {
    h.i32(loop.tag);
    h.i64(loop.trip);
    h.boolean(loop.indexes_weight);
    h.boolean(loop.indexes_act);
    h.boolean(loop.is_reduction);
  }

  // Every OverlayConfig field: the session cache is shared across config
  // sweeps (Objective 3, DSE, ablations), so any field the analytical model
  // or codegen can read must be part of the key. The field walk lives in
  // program_store.cpp so the key and the store's entry-header config digest
  // can never drift apart.
  hash_overlay_config(h, config);

  h.i32(static_cast<int>(objective));
  h.i64(max_candidates);
  return h.digest();
}

void name_worker_track() {
  // The calling thread (worker_index() == -1) keeps whatever track it
  // already has, so its share of the batch nests under its own open spans.
  const int wi = ThreadPool::worker_index();
  if (wi >= 0) obs::set_thread_track_name("jobs-" + std::to_string(wi));
}

CompilerSession::CompilerSession(int jobs)
    : pool_(std::make_unique<ThreadPool>(jobs > 0 ? jobs : default_jobs())) {}

CompilerSession::~CompilerSession() = default;

CompilerSession& CompilerSession::global() {
  static CompilerSession* session = new CompilerSession();  // never destroyed
  return *session;
}

void CompilerSession::set_jobs(int jobs) {
  const int resolved = jobs > 0 ? jobs : default_jobs();
  if (pool_ && pool_->jobs() == resolved) return;
  pool_ = std::make_unique<ThreadPool>(resolved);
}

int CompilerSession::jobs() const { return pool_->jobs(); }

ThreadPool& CompilerSession::pool() { return *pool_; }

void CompilerSession::set_store(std::shared_ptr<ProgramStore> store) {
  MutexLock lock(mu_);
  store_ = std::move(store);
}

std::shared_ptr<ProgramStore> CompilerSession::store() const {
  MutexLock lock(mu_);
  return store_;
}

std::shared_ptr<const LayerProgram> CompilerSession::obtain(
    std::uint64_t key, const nn::Layer& layer,
    const arch::OverlayConfig& config, Objective objective,
    std::int64_t max_candidates) {
  std::shared_ptr<ProgramStore> store;
  {
    MutexLock lock(mu_);
    for (;;) {
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        ++stats_.hits;
        if (obs::enabled()) obs::Registry::global().add("session/cache_hits");
        return it->second;
      }
      if (inflight_.insert(key).second) break;  // this thread produces it
      // Single-flight: another thread is already compiling (or disk-loading)
      // this key. Wait for it instead of duplicating the mapping search —
      // the owner runs on its own thread, so waiting cannot deadlock.
      inflight_cv_.wait(mu_);
    }
    store = store_;
  }

  // Owner path, no lock held: disk probe, then compile + write-through.
  std::shared_ptr<const LayerProgram> prog;
  bool compiled = false;
  try {
    if (store) {
      if (std::optional<LayerProgram> disk = store->load(key, config)) {
        prog = std::make_shared<const LayerProgram>(*std::move(disk));
      }
    }
    if (!prog) {
      prog = std::make_shared<const LayerProgram>(
          compile_layer(layer, config, objective, max_candidates));
      compiled = true;
      if (store) {
        // Write-through failure (disk full, permissions) must not take down
        // a compile that already succeeded — log and count, never silent.
        try {
          store->put(key, config, *prog);
        } catch (const Error& e) {
          log_warn(std::string("program cache write-through failed: ") +
                   e.what());
          obs::count("session/disk_write_failures");
        }
      }
    }
  } catch (...) {
    // Release the claim so waiters can retry (and observe their own
    // exception) instead of blocking forever.
    MutexLock lock(mu_);
    inflight_.erase(key);
    inflight_cv_.notify_all();
    throw;
  }

  MutexLock lock(mu_);
  inflight_.erase(key);
  if (compiled) {
    ++stats_.misses;
    if (obs::enabled()) obs::Registry::global().add("session/cache_misses");
  }
  auto [it, inserted] = cache_.try_emplace(key, prog);
  if (inserted) {
    ++stats_.entries;
    stats_.program_bytes += approx_program_bytes(*prog);
    if (obs::enabled()) {
      obs::Registry::global().add("session/cache_bytes",
                                  approx_program_bytes(*prog));
    }
  }
  inflight_cv_.notify_all();
  return it->second;
}

LayerProgram CompilerSession::compile(const nn::Layer& layer,
                                      const arch::OverlayConfig& config,
                                      Objective objective,
                                      std::int64_t max_candidates) {
  const std::uint64_t key = program_cache_key(Workload::from_layer(layer),
                                              config, objective,
                                              max_candidates);
  LayerProgram prog = *obtain(key, layer, config, objective, max_candidates);
  prog.layer = layer;  // restore this instance's identity
  return prog;
}

NetworkSchedule CompilerSession::schedule(const nn::Network& net,
                                          const arch::OverlayConfig& config,
                                          Objective objective,
                                          std::int64_t max_candidates_per_layer) {
  config.validate();

  obs::ScopedSpan span("compiler", "schedule_network", {{"network", net.name()}});

  // Pass 1 (serial): key every overlay layer and split the call into cache
  // hits and the first instance of each distinct uncached key.
  struct Item {
    const nn::Layer* layer = nullptr;
    std::uint64_t key = 0;
  };
  std::vector<Item> items;
  for (const nn::Layer& layer : net.layers()) {
    if (!layer.on_overlay()) continue;
    items.push_back({&layer, program_cache_key(Workload::from_layer(layer),
                                               config, objective,
                                               max_candidates_per_layer)});
  }
  if (items.empty())
    throw ConfigError(net.name() + ": no overlay layers to schedule");

  std::vector<Item> to_compile;
  {
    MutexLock lock(mu_);
    std::unordered_set<std::uint64_t> claimed;
    for (const Item& item : items) {
      if (cache_.count(item.key) != 0 || !claimed.insert(item.key).second) {
        ++stats_.hits;
        if (obs::enabled()) {
          obs::Registry::global().add("session/cache_hits");
          obs::Registry::global().add("compiler/schedule_cache_hits");
        }
        continue;
      }
      to_compile.push_back(item);
    }
  }

  // Pass 2 (parallel): produce the distinct misses across the pool via
  // obtain() — disk probe first when a store is attached, else the mapping
  // search; single-flight dedups against concurrent schedules on other
  // threads. Each task is a pure function of its (layer, config) pair; a
  // failure (no feasible mapping) is rethrown here after the batch drains.
  if (!to_compile.empty()) {
    obs::gauge("session/pool_queue_depth", double(pool_->queue_depth() + 1));
    pool_->parallel_for(to_compile.size(), [&](std::size_t i) {
      name_worker_track();
      const nn::Layer& layer = *to_compile[i].layer;
      obs::ScopedSpan task_span("session", "compile_task",
                                {{"layer", layer.name}});
      const std::shared_ptr<const LayerProgram> prog =
          obtain(to_compile[i].key, layer, config, objective,
                 max_candidates_per_layer);
      log_debug(strformat("%s: C_exe=%lld x%d eff=%.1f%% E_WBUF=%.2f",
                          layer.name.c_str(),
                          static_cast<long long>(prog->perf.c_exe),
                          prog->weight_groups,
                          100.0 * prog->perf.hardware_efficiency,
                          prog->perf.e_wbuf));
    });
    obs::gauge("session/pool_queue_depth", double(pool_->queue_depth()));
  }

  // Pass 3 (serial): merge in the network's layer order with the exact
  // accumulation sequence of the old serial scheduler, so the result is
  // bit-identical for any jobs value and any prior cache state.
  NetworkSchedule sched;
  sched.network_name = net.name();
  sched.config = config;
  sched.objective = objective;

  double e_wbuf_weighted = 0.0;
  std::int64_t weight_words = 0;
  std::size_t next_item = 0;
  for (const nn::Layer& layer : net.layers()) {
    sched.host_ewop_ops += layer.ewop_ops();  // EWOP, or a fused ReLU part
    if (!layer.on_overlay()) continue;

    std::shared_ptr<const LayerProgram> cached;
    {
      MutexLock lock(mu_);
      cached = cache_.at(items[next_item].key);
    }
    ++next_item;

    LayerProgram prog = *cached;
    prog.layer = layer;  // restore this instance's identity
    sched.total_cycles += prog.total_cycles() * layer.repeat;
    sched.overlay_macs += layer.macs() * layer.repeat;
    e_wbuf_weighted += prog.perf.e_wbuf * double(layer.weight_count());
    weight_words += layer.weight_count();
    sched.layers.push_back(std::move(prog));
  }

  sched.hardware_efficiency =
      double(sched.overlay_macs) /
      (double(sched.total_cycles) * double(config.tpes()));
  sched.mean_e_wbuf = weight_words > 0 ? e_wbuf_weighted / double(weight_words) : 0.0;
  if (obs::enabled()) {
    obs::count("compiler/networks_scheduled");
    obs::gauge("compiler/last_schedule_efficiency", sched.hardware_efficiency);
    obs::gauge("compiler/last_schedule_fps", sched.fps());
  }
  return sched;
}

HwConfigChoice CompilerSession::best_hw_config(
    const nn::Network& net, const arch::OverlayConfig& base,
    const fpga::Device& device, int tpe_budget,
    std::int64_t max_candidates_per_layer) {
  FTDL_ASSERT(tpe_budget > 0);

  obs::ScopedSpan span("compiler", "find_best_hw_config",
                       {{"network", net.name()},
                        {"tpes", std::to_string(tpe_budget)}});

  // Enumerate candidate splits serially, in the order the serial loop
  // visited them — ties below resolve to the lowest enumeration index.
  std::vector<arch::OverlayConfig> candidates;
  for (int d1 = 2; d1 <= 64; ++d1) {
    if (tpe_budget % d1 != 0) continue;
    const int rows_budget = tpe_budget / d1;
    for (int d2 = 1; d2 <= device.dsp_columns; ++d2) {
      if (rows_budget % d2 != 0) continue;
      const int d3 = rows_budget / d2;
      if (d1 * d3 > device.dsp_per_column) continue;

      arch::OverlayConfig cand = base;
      cand.d1 = d1;
      cand.d2 = d2;
      cand.d3 = d3;
      candidates.push_back(cand);
    }
  }

  // Evaluate concurrently. Infeasible candidates (the split does not fit
  // the device, or some layer has no feasible mapping) score as absent;
  // anything else — notably InternalError from the stream verifier — is a
  // compiler bug and must propagate, not silently discard a candidate.
  std::vector<std::unique_ptr<NetworkSchedule>> scheduled(candidates.size());
  pool_->parallel_for(candidates.size(), [&](std::size_t i) {
    name_worker_track();
    const arch::OverlayConfig& cand = candidates[i];
    obs::ScopedSpan task_span(
        "session", "hw_config_candidate",
        {{"split", strformat("%dx%dx%d", cand.d1, cand.d2, cand.d3)}});
    try {
      cand.validate_for_device(device);
      scheduled[i] = std::make_unique<NetworkSchedule>(
          schedule(net, cand, Objective::Performance,
                   max_candidates_per_layer));
    } catch (const ConfigError&) {
      // split does not fit the device / config invalid
    } catch (const InfeasibleError&) {
      // some layer has no feasible mapping at this split
    }
  });

  // Serial selection in enumeration order (strict < keeps the first best,
  // matching the serial loop exactly).
  bool found = false;
  HwConfigChoice best;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (!scheduled[i]) continue;
    if (!found || scheduled[i]->total_cycles < best.schedule.total_cycles) {
      best.config = candidates[i];
      best.schedule = std::move(*scheduled[i]);
      found = true;
    }
  }
  if (!found) {
    throw InfeasibleError(
        strformat("no (D1,D2,D3) split of %d TPEs fits %s", tpe_budget,
                  device.name.c_str()));
  }
  return best;
}

SessionStats CompilerSession::stats() const {
  MutexLock lock(mu_);
  SessionStats s = stats_;
  if (store_) {
    const StoreStats d = store_->stats();
    s.disk_hits = d.hits;
    s.disk_misses = d.misses;
    s.disk_evictions = d.evictions;
    s.disk_bytes = d.bytes_written;
  }
  return s;
}

void CompilerSession::clear_cache() {
  MutexLock lock(mu_);
  cache_.clear();
  stats_.entries = 0;
  stats_.program_bytes = 0;
}

}  // namespace ftdl::compiler
