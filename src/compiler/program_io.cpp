#include "compiler/program_io.h"

#include <fstream>
#include <map>
#include <sstream>

#include "common/error.h"
#include "common/str_util.h"
#include "compiler/program_verify.h"

namespace ftdl::compiler {

namespace {

constexpr const char* kMagic = "ftdl-program";
constexpr int kVersion = 1;

std::string serialize_layer(const nn::Layer& l) {
  std::string out;
  out += strformat("layer.name=%s\n", l.name.c_str());
  out += strformat("layer.kind=%d\n", static_cast<int>(l.kind));
  out += strformat("layer.geom=%d %d %d %d %d %d %d %d\n", l.in_c, l.in_h,
                   l.in_w, l.out_c, l.kh, l.kw, l.stride, l.pad);
  out += strformat("layer.mm=%lld %lld %lld\n",
                   static_cast<long long>(l.mm_m),
                   static_cast<long long>(l.mm_n),
                   static_cast<long long>(l.mm_p));
  out += strformat("layer.relu=%d\n", l.relu ? 1 : 0);
  out += strformat("layer.repeat=%d\n", l.repeat);
  return out;
}

/// key=value map of one serialized program (last write wins is rejected).
std::map<std::string, std::string> parse_lines(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) throw Error("malformed program line: " + line);
    if (!kv.emplace(line.substr(0, eq), line.substr(eq + 1)).second)
      throw Error("duplicate key in program: " + line.substr(0, eq));
  }
  return kv;
}

const std::string& require(const std::map<std::string, std::string>& kv,
                           const std::string& key) {
  auto it = kv.find(key);
  if (it == kv.end()) throw Error("program missing key " + key);
  return it->second;
}

std::vector<std::int64_t> parse_ints(const std::string& s) {
  std::vector<std::int64_t> out;
  std::istringstream in(s);
  std::int64_t v;
  while (in >> v) out.push_back(v);
  return out;
}

std::vector<std::uint64_t> parse_hex_words(const std::string& s) {
  std::vector<std::uint64_t> out;
  std::istringstream in(s);
  std::string tok;
  while (in >> tok) {
    std::size_t pos = 0;
    std::uint64_t word = 0;
    try {
      word = std::stoull(tok, &pos, 16);
    } catch (const std::exception&) {
      throw Error("malformed InstBUS word in program: " + tok);
    }
    if (pos != tok.size())
      throw Error("malformed InstBUS word in program: " + tok);
    out.push_back(word);
  }
  return out;
}

}  // namespace

std::string serialize_program(const LayerProgram& program) {
  std::string out;
  out += strformat("%s v%d\n", kMagic, kVersion);
  out += serialize_layer(program.layer);
  out += strformat("groups=%d\n", program.weight_groups);
  // The mapping: one line per hardware level, K tiles each.
  for (HwLevel level : kAllLevels) {
    out += strformat("map.%s=", to_string(level));
    for (int k = 0; k < program.mapping.k(); ++k) {
      if (k) out += ' ';
      out += std::to_string(program.mapping.tile(level, k));
    }
    out += '\n';
  }
  // Cross-check values.
  out += strformat("check.c_exe=%lld\n",
                   static_cast<long long>(program.perf.c_exe));
  std::string words;
  for (std::uint64_t w : program.encoded_stream()) {
    if (!words.empty()) words += ' ';
    words += strformat("%016llx", static_cast<unsigned long long>(w));
  }
  out += "stream=" + words + "\n";
  return out;
}

LayerProgram deserialize_program(const std::string& text,
                                 const arch::OverlayConfig& config) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  if (header != strformat("%s v%d", kMagic, kVersion))
    throw Error("not a v" + std::to_string(kVersion) + " ftdl program: " + header);

  const auto kv = parse_lines(text.substr(header.size()));

  // ---- layer ----------------------------------------------------------------
  nn::Layer layer;
  layer.name = require(kv, "layer.name");
  layer.kind = static_cast<nn::LayerKind>(std::stoi(require(kv, "layer.kind")));
  const auto geom = parse_ints(require(kv, "layer.geom"));
  if (geom.size() != 8) throw Error("bad layer.geom");
  layer.in_c = static_cast<int>(geom[0]);
  layer.in_h = static_cast<int>(geom[1]);
  layer.in_w = static_cast<int>(geom[2]);
  layer.out_c = static_cast<int>(geom[3]);
  layer.kh = static_cast<int>(geom[4]);
  layer.kw = static_cast<int>(geom[5]);
  layer.stride = static_cast<int>(geom[6]);
  layer.pad = static_cast<int>(geom[7]);
  const auto mm = parse_ints(require(kv, "layer.mm"));
  if (mm.size() != 3) throw Error("bad layer.mm");
  layer.mm_m = mm[0];
  layer.mm_n = mm[1];
  layer.mm_p = mm[2];
  layer.relu = require(kv, "layer.relu") == "1";
  layer.repeat = std::stoi(require(kv, "layer.repeat"));

  LayerProgram prog;
  prog.layer = layer;
  prog.weight_groups = std::stoi(require(kv, "groups"));
  if (prog.weight_groups < 1) throw Error("bad weight group count");

  // The stored mapping describes ONE weight group: rebuild the group slice
  // the same way compile_layer does.
  nn::Layer part = layer;
  if (prog.weight_groups > 1) {
    switch (layer.kind) {
      case nn::LayerKind::Conv:
        part.out_c = static_cast<int>(
            (layer.out_c + prog.weight_groups - 1) / prog.weight_groups);
        break;
      case nn::LayerKind::Depthwise:
        part.in_c = static_cast<int>(
            (layer.in_c + prog.weight_groups - 1) / prog.weight_groups);
        part.out_c = part.in_c;
        break;
      default:
        part.mm_n = (layer.mm_n + prog.weight_groups - 1) / prog.weight_groups;
    }
  }
  prog.workload = Workload::from_layer(part);

  prog.mapping = Mapping::identity(prog.workload.k());
  for (HwLevel level : kAllLevels) {
    const auto tiles =
        parse_ints(require(kv, std::string("map.") + to_string(level)));
    if (static_cast<int>(tiles.size()) != prog.workload.k())
      throw Error("mapping arity mismatch");
    for (int k = 0; k < prog.workload.k(); ++k) {
      prog.mapping.tile(level, k) = tiles[static_cast<std::size_t>(k)];
    }
  }

  // ---- re-validate everything -------------------------------------------------
  if (!satisfies_logical_constraints(prog.mapping, prog.workload, config.d1,
                                     config.d2, config.d3))
    throw ConfigError("stored mapping violates the overlay constraints");
  prog.perf = evaluate(prog.workload, prog.mapping, config);
  if (!prog.perf.feasible)
    throw ConfigError("stored mapping is infeasible on this overlay");

  const std::int64_t stored_cexe = std::stoll(require(kv, "check.c_exe"));
  if (stored_cexe != prog.perf.c_exe)
    throw ConfigError(strformat(
        "stored C_exe %lld disagrees with re-evaluation %lld (wrong overlay "
        "config?)",
        static_cast<long long>(stored_cexe),
        static_cast<long long>(prog.perf.c_exe)));

  // The stored stream is the artifact that ships to hardware: decode it and
  // hand it to the static verifier, so a tampered or stale artifact fails
  // with exactly the diagnostic compile_layer would produce for that stream.
  try {
    prog.row_stream = arch::decode_stream(parse_hex_words(require(kv, "stream")));
  } catch (const ConfigError&) {
    throw;
  } catch (const Error& e) {
    throw ConfigError(std::string("stored instruction stream does not decode: ") +
                      e.what());
  }
  const verify::VerifyResult vr = verify_program(prog, config);
  if (const verify::Diagnostic* d = vr.first_error())
    throw ConfigError("stored instruction stream disagrees with the mapping: " +
                      d->to_string());

  return prog;
}

void save_program(const LayerProgram& program, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write program file " + path);
  out << serialize_program(program);
  // A full disk or I/O error only shows up on the stream state; without this
  // check a truncated artifact is published silently and fails much later,
  // at load time, with a confusing parse error.
  out.flush();
  if (!out) {
    throw Error("error writing program file " + path +
                " (disk full or I/O error)");
  }
}

LayerProgram load_program(const std::string& path,
                          const arch::OverlayConfig& config) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open program file " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize_program(buf.str(), config);
}

}  // namespace ftdl::compiler
