#include "compiler/scheduler.h"

#include "common/csv.h"
#include "common/str_util.h"
#include "compiler/session.h"

namespace ftdl::compiler {

// Both entry points delegate to the process-wide CompilerSession, which
// adds the content-addressed program cache and the worker pool; outputs are
// bit-identical to the historical serial implementations (see
// compiler/session.h for the determinism argument).

NetworkSchedule schedule_network(const nn::Network& net,
                                 const arch::OverlayConfig& config,
                                 Objective objective,
                                 std::int64_t max_candidates_per_layer) {
  return CompilerSession::global().schedule(net, config, objective,
                                            max_candidates_per_layer);
}

HwConfigChoice find_best_hw_config(const nn::Network& net,
                                   const arch::OverlayConfig& base,
                                   const fpga::Device& device, int tpe_budget,
                                   std::int64_t max_candidates_per_layer) {
  return CompilerSession::global().best_hw_config(net, base, device,
                                                  tpe_budget,
                                                  max_candidates_per_layer);
}

std::string schedule_to_csv(const NetworkSchedule& schedule,
                            const std::string& path) {
  CsvWriter csv(path, {"layer", "kind", "macs", "weight_groups", "cycles",
                       "efficiency", "e_wbuf", "bound"});
  for (const LayerProgram& lp : schedule.layers) {
    const Performance& p = lp.perf;
    const char* bound = "compute";
    if (p.c_exe == p.c_dram_rd || p.c_exe == p.c_dram_wr) bound = "dram";
    else if (p.c_exe == p.c_act_bus) bound = "actbus";
    else if (p.c_exe == p.c_psum_bus) bound = "psumbus";
    csv.row({lp.layer.name, nn::to_string(lp.layer.kind),
             std::to_string(lp.layer.macs()),
             std::to_string(lp.weight_groups),
             std::to_string(lp.total_cycles()),
             strformat("%.4f", p.hardware_efficiency),
             strformat("%.4f", p.e_wbuf), bound});
  }
  return path;
}

}  // namespace ftdl::compiler
