#include "compiler/scheduler.h"

#include <array>
#include <map>
#include <tuple>

#include "common/error.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/str_util.h"
#include "obs/obs.h"

namespace ftdl::compiler {

namespace {

/// Shape signature for layer-level search memoization.
using LayerSignature =
    std::tuple<int, std::int64_t, std::int64_t, std::int64_t, std::int64_t,
               std::int64_t, std::int64_t, int>;

LayerSignature signature(const Workload& w) {
  std::array<std::int64_t, 6> trips{1, 1, 1, 1, 1, 1};
  for (int i = 0; i < w.k(); ++i) {
    trips[static_cast<std::size_t>(i)] = w.loops[static_cast<std::size_t>(i)].trip;
  }
  return {static_cast<int>(w.kind), trips[0], trips[1], trips[2],
          trips[3],                 trips[4], trips[5], w.stride};
}

}  // namespace

NetworkSchedule schedule_network(const nn::Network& net,
                                 const arch::OverlayConfig& config,
                                 Objective objective,
                                 std::int64_t max_candidates_per_layer) {
  config.validate();

  obs::ScopedSpan span("compiler", "schedule_network", {{"network", net.name()}});

  NetworkSchedule sched;
  sched.network_name = net.name();
  sched.config = config;
  sched.objective = objective;

  std::map<LayerSignature, LayerProgram> cache;
  double e_wbuf_weighted = 0.0;
  std::int64_t weight_words = 0;

  for (const nn::Layer& layer : net.layers()) {
    if (!layer.on_overlay()) {
      sched.host_ewop_ops += layer.ewop_ops();
      continue;
    }
    sched.host_ewop_ops += layer.ewop_ops();  // fused ReLU part

    const LayerSignature sig = signature(Workload::from_layer(layer));
    auto it = cache.find(sig);
    if (it == cache.end()) {
      LayerProgram prog = compile_layer(layer, config, objective,
                                        max_candidates_per_layer);
      log_debug(strformat("%s: C_exe=%lld x%d eff=%.1f%% E_WBUF=%.2f",
                          layer.name.c_str(),
                          static_cast<long long>(prog.perf.c_exe),
                          prog.weight_groups,
                          100.0 * prog.perf.hardware_efficiency,
                          prog.perf.e_wbuf));
      it = cache.emplace(sig, std::move(prog)).first;
    } else {
      obs::count("compiler/schedule_cache_hits");
    }

    LayerProgram prog = it->second;
    prog.layer = layer;  // restore this instance's identity
    sched.total_cycles += prog.total_cycles() * layer.repeat;
    sched.overlay_macs += layer.macs() * layer.repeat;
    e_wbuf_weighted += prog.perf.e_wbuf * double(layer.weight_count());
    weight_words += layer.weight_count();
    sched.layers.push_back(std::move(prog));
  }

  if (sched.layers.empty())
    throw ConfigError(net.name() + ": no overlay layers to schedule");

  sched.hardware_efficiency =
      double(sched.overlay_macs) /
      (double(sched.total_cycles) * double(config.tpes()));
  sched.mean_e_wbuf = weight_words > 0 ? e_wbuf_weighted / double(weight_words) : 0.0;
  if (obs::enabled()) {
    obs::count("compiler/networks_scheduled");
    obs::gauge("compiler/last_schedule_efficiency", sched.hardware_efficiency);
    obs::gauge("compiler/last_schedule_fps", sched.fps());
  }
  return sched;
}

std::string schedule_to_csv(const NetworkSchedule& schedule,
                            const std::string& path) {
  CsvWriter csv(path, {"layer", "kind", "macs", "weight_groups", "cycles",
                       "efficiency", "e_wbuf", "bound"});
  for (const LayerProgram& lp : schedule.layers) {
    const Performance& p = lp.perf;
    const char* bound = "compute";
    if (p.c_exe == p.c_dram_rd || p.c_exe == p.c_dram_wr) bound = "dram";
    else if (p.c_exe == p.c_act_bus) bound = "actbus";
    else if (p.c_exe == p.c_psum_bus) bound = "psumbus";
    csv.row({lp.layer.name, nn::to_string(lp.layer.kind),
             std::to_string(lp.layer.macs()),
             std::to_string(lp.weight_groups),
             std::to_string(lp.total_cycles()),
             strformat("%.4f", p.hardware_efficiency),
             strformat("%.4f", p.e_wbuf), bound});
  }
  return path;
}

HwConfigChoice find_best_hw_config(const nn::Network& net,
                                   const arch::OverlayConfig& base,
                                   const fpga::Device& device, int tpe_budget,
                                   std::int64_t max_candidates_per_layer) {
  FTDL_ASSERT(tpe_budget > 0);

  bool found = false;
  HwConfigChoice best;
  for (int d1 = 2; d1 <= 64; ++d1) {
    if (tpe_budget % d1 != 0) continue;
    const int rows_budget = tpe_budget / d1;
    for (int d2 = 1; d2 <= device.dsp_columns; ++d2) {
      if (rows_budget % d2 != 0) continue;
      const int d3 = rows_budget / d2;
      if (d1 * d3 > device.dsp_per_column) continue;

      arch::OverlayConfig cand = base;
      cand.d1 = d1;
      cand.d2 = d2;
      cand.d3 = d3;
      try {
        cand.validate_for_device(device);
        NetworkSchedule s = schedule_network(net, cand, Objective::Performance,
                                             max_candidates_per_layer);
        if (!found || s.total_cycles < best.schedule.total_cycles) {
          best.config = cand;
          best.schedule = std::move(s);
          found = true;
        }
      } catch (const Error&) {
        continue;  // shape does not fit or has no feasible mapping
      }
    }
  }
  if (!found) {
    throw InfeasibleError(
        strformat("no (D1,D2,D3) split of %d TPEs fits %s", tpe_budget,
                  device.name.c_str()));
  }
  return best;
}

}  // namespace ftdl::compiler
