// Ahead-of-time compilation artifacts: save/load compiled layer programs.
//
// A deployed FTDL system compiles once and ships the controller instruction
// streams plus the mapping metadata. The text format is line-based
// (key=value), human-diffable, and versioned. Loading re-runs the
// analytical model on the stored mapping, then statically verifies the
// stored stream against it (compiler/program_verify.h) — a corrupted or
// hand-edited artifact cannot silently disagree with itself, and it fails
// with the same diagnostics compile_layer would emit.
#pragma once

#include <string>

#include "compiler/codegen.h"

namespace ftdl::compiler {

/// Serializes a program to its text form.
std::string serialize_program(const LayerProgram& program);

/// Parses a serialized program and re-validates it against `config`
/// (re-evaluates the analytical model, regenerates and compares the
/// instruction stream). Throws ftdl::Error on version/format problems and
/// ftdl::ConfigError on semantic mismatches.
LayerProgram deserialize_program(const std::string& text,
                                 const arch::OverlayConfig& config);

/// File convenience wrappers.
void save_program(const LayerProgram& program, const std::string& path);
LayerProgram load_program(const std::string& path,
                          const arch::OverlayConfig& config);

}  // namespace ftdl::compiler
