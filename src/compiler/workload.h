// Workload abstraction: a CONV or MM layer as a K-level nested loop
// (Sec. IV-A; K = 3 for MM, K = 6 for CONV).
//
// Loop conventions (DESIGN.md §4):
//   MM   (M, N, P):            out[N][P] += W[N][M] * act[M][P]
//   CONV (M, N, E, F, R, S):   out[M][E][F] += W[M][N][R][S]
//                                        * act[N][E*stride+R][F*stride+S]
//   DWCONV (N, E, F, R, S):    out[N][E][F] += W[N][R][S]
//                                        * act[N][E*stride+R][F*stride+S]
//   (depthwise has NO weight-only loop: the channel loop indexes both
//   tensors, so the D2 level is unusable — the architectural reason
//   depthwise layers schedule poorly on FTDL.)
// Each loop carries the dataflow facts the adjacency matrix and the
// analytical model are derived from: whether it indexes the weight tensor,
// the activation tensor, and whether it is a reduction loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace ftdl::compiler {

enum class WorkloadKind { MatMul, Conv, DepthwiseConv };

const char* to_string(WorkloadKind k);

struct WorkloadLoop {
  char tag = '?';               ///< 'M','N','P' or 'M','N','E','F','R','S'
  std::int64_t trip = 1;        ///< W_k, the full trip count
  bool indexes_weight = false;
  bool indexes_act = false;
  bool is_reduction = false;    ///< accumulated dimension
};

/// A CONV/MM layer lowered to its loop-nest form.
struct Workload {
  WorkloadKind kind = WorkloadKind::MatMul;
  std::string name;
  std::vector<WorkloadLoop> loops;  ///< K entries

  // CONV-only geometry needed for activation-halo computation.
  int stride = 1;

  int k() const { return static_cast<int>(loops.size()); }

  /// Index of the loop with `tag`; throws ftdl::InternalError if absent.
  int loop_index(char tag) const;

  /// Total true MAC count = product of all trip counts.
  std::int64_t macs() const;

  /// Unique weight words = product of weight-indexing trips.
  std::int64_t weight_words() const;

  /// Lowers an overlay layer (CONV or MM); throws ftdl::ConfigError for
  /// host-side layer kinds.
  static Workload from_layer(const nn::Layer& layer);
};

}  // namespace ftdl::compiler
