// Network-level scheduling.
//
// Schedules every overlay layer of a network (CONV and MM; EWOP runs on
// the host CPU, pipelined, per Sec. V-A) and aggregates the end-to-end
// figures the paper reports: per-network hardware efficiency (MAC-weighted),
// frames per second at the configured CLKh, and the WBUF picture.
// Also implements Objective 3 (Sec. IV-D3): the best (D1, D2, D3) split at
// a fixed TPE budget.
#pragma once

#include <vector>

#include "compiler/codegen.h"
#include "fpga/device.h"
#include "nn/network.h"

namespace ftdl::compiler {

struct NetworkSchedule {
  std::string network_name;
  arch::OverlayConfig config;
  Objective objective = Objective::Performance;

  std::vector<LayerProgram> layers;  ///< overlay layers, execution order

  std::int64_t total_cycles = 0;     ///< sum of per-layer C_exe (x repeats)
  std::int64_t overlay_macs = 0;     ///< true MACs on the overlay
  std::int64_t host_ewop_ops = 0;    ///< pipelined host work (not in FPS)

  /// MAC-weighted network hardware efficiency (Table II row).
  double hardware_efficiency = 0.0;
  /// Weight-weighted mean WBUF efficiency.
  double mean_e_wbuf = 0.0;

  double seconds_per_frame() const {
    return double(total_cycles) / config.clocks.clk_h_hz;
  }
  double fps() const { return 1.0 / seconds_per_frame(); }

  /// Effective throughput in GOPS (2 ops per MAC at the achieved rate).
  double effective_gops() const {
    return 2.0 * double(overlay_macs) / seconds_per_frame() / 1e9;
  }
};

/// Compiles and schedules every overlay layer. Identical layer shapes share
/// one search (GoogLeNet repeats many shapes). Throws InfeasibleError if any
/// layer cannot be mapped.
NetworkSchedule schedule_network(const nn::Network& net,
                                 const arch::OverlayConfig& config,
                                 Objective objective = Objective::Performance,
                                 std::int64_t max_candidates_per_layer = 200'000);

/// Writes the per-layer schedule as CSV (layer, kind, macs, groups, cycles,
/// efficiency, e_wbuf, bound-channel); returns the path.
std::string schedule_to_csv(const NetworkSchedule& schedule,
                            const std::string& path);

/// Objective 3: enumerate (D1, D2, D3) splits of `tpe_budget` that fit
/// `device`, schedule `net` on each, and return the fastest schedule.
struct HwConfigChoice {
  arch::OverlayConfig config;
  NetworkSchedule schedule;
};
HwConfigChoice find_best_hw_config(const nn::Network& net,
                                   const arch::OverlayConfig& base,
                                   const fpga::Device& device, int tpe_budget,
                                   std::int64_t max_candidates_per_layer = 20'000);

}  // namespace ftdl::compiler
