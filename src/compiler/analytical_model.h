// Analytical performance model (Sec. IV-B, Eqns. 7-9; objectives Eqns. 12-13).
//
// Given a workload, a mapping and an overlay configuration it produces the
// per-channel cycle counts (computation, ActBUS, PSumBUS, DRAM read/write),
// the buffer demands, the WBUF efficiency, and the Eqn. 12 execution time.
// All cycle counts are in CLKh cycles.
#pragma once

#include <cstdint>
#include <string>

#include "arch/overlay_config.h"
#include "compiler/mapping.h"
#include "compiler/workload.h"

namespace ftdl::compiler {

/// On-chip buffer demand implied by a mapping.
struct BufferUsage {
  std::int64_t wbuf_words_per_tpe = 0;      ///< whole-layer weight tile
  std::int64_t actbuf_words_per_tpe = 0;    ///< activation tile per LoopL refill
  std::int64_t psum_words_per_superblock = 0;  ///< live psum entries per LoopX

  bool fits(const arch::OverlayConfig& c) const {
    return wbuf_words_per_tpe <= c.wbuf_words &&
           actbuf_words_per_tpe <= c.actbuf_usable() &&
           psum_words_per_superblock <= c.psumbuf_usable();
  }
};

/// Full evaluation of one mapping.
struct Performance {
  // Temporal trip products (Eqn. 6).
  std::int64_t x = 0, l = 0, t = 0;

  // Cycle counts per channel.
  std::int64_t c_comp = 0;      ///< Eqn. 7 (incl. pipeline latency, Lat = D1+6)
  std::int64_t c_act_bus = 0;   ///< Eqn. 8
  std::int64_t c_psum_bus = 0;  ///< Eqn. 9
  std::int64_t c_dram_rd = 0;
  std::int64_t c_dram_wr = 0;
  std::int64_t c_exe = 0;       ///< Eqn. 12: max over all channels

  // Off-chip traffic volumes (roofline arithmetic intensity, DRAM energy).
  double dram_rd_bytes = 0.0;
  double dram_wr_bytes = 0.0;

  double e_wbuf = 0.0;          ///< WBUF efficiency (Sec. IV-B3)
  BufferUsage buffers;

  bool buffers_fit = false;
  /// Weight reuse >= 2 on the innermost axis — required for the double pump
  /// to feed the DSP every CLKh cycle; otherwise compute stretches 2x.
  bool weight_reuse_ok = true;
  /// A reduction loop is split across D3 rows (host EWOP folds the rows).
  bool host_reduction = false;

  /// A mapping is feasible when it is legal and its buffers fit.
  bool feasible = false;

  /// MAC-efficiency of the whole array: true MACs / (C_exe * #TPE).
  double hardware_efficiency = 0.0;

  /// Wall-clock seconds at the configured CLKh.
  double seconds(const arch::OverlayConfig& c) const {
    return double(c_exe) / c.clocks.clk_h_hz;
  }
};

/// Tile-geometry helpers shared with the cycle-level simulator. All are
/// pure functions of (workload, mapping).
/// Activation words one SuperBlock row receives per LoopL refill (f_act).
std::int64_t act_refill_words(const Workload& w, const Mapping& m);
/// Activation words a single TPE holds per refill (ActBUF demand).
std::int64_t act_tile_words_per_tpe(const Workload& w, const Mapping& m);
/// Live psum entries per SuperBlock during one LoopX iteration (f_psum).
std::int64_t psum_tile_words(const Workload& w, const Mapping& m);
/// Passes over the psum tile (reduction loops tiled at LoopX).
std::int64_t psum_passes(const Workload& w, const Mapping& m);
/// T-level reuse available to the double pump (>= 2 required).
std::int64_t weight_reuse_at_t(const Workload& w, const Mapping& m);

/// Evaluates a mapping (assumed adjacency- and logically-valid; callers use
/// satisfies_adjacency / satisfies_logical_constraints first — evaluate()
/// re-derives only what it needs and never throws on infeasible mappings,
/// it reports them via the flags).
Performance evaluate(const Workload& w, const Mapping& m,
                     const arch::OverlayConfig& config);

/// Theoretical minimum execution time for the workload on this overlay
/// (perfect efficiency): ceil(MACs / #TPE) CLKh cycles. Used to normalize
/// Objective 2 (Eqn. 13).
std::int64_t min_execution_cycles(const Workload& w,
                                  const arch::OverlayConfig& config);

/// Eqn. 13 balance score (with the normalization direction corrected:
/// Score = Cexe_min / Cexe + E_WBUF, so faster and less duplicated is
/// better; the paper's printed Cexe/Cexe_min would reward slow mappings).
double balance_score(const Performance& p, std::int64_t c_exe_min);

}  // namespace ftdl::compiler
