#include "compiler/mapping.h"

#include "common/error.h"
#include "common/str_util.h"

namespace ftdl::compiler {

const char* to_string(HwLevel level) {
  switch (level) {
    case HwLevel::D1: return "D1";
    case HwLevel::D2: return "D2";
    case HwLevel::D3: return "D3";
    case HwLevel::X: return "X";
    case HwLevel::L: return "L";
    case HwLevel::T: return "T";
  }
  return "?";
}

Mapping Mapping::identity(int k) {
  FTDL_ASSERT(k > 0);
  Mapping m;
  for (auto& v : m.t) v.assign(static_cast<std::size_t>(k), 1);
  return m;
}

std::int64_t Mapping::level_product(HwLevel level) const {
  std::int64_t p = 1;
  for (std::int64_t v : t[static_cast<int>(level)]) p *= v;
  return p;
}

std::int64_t Mapping::loop_coverage(int loop) const {
  std::int64_t p = 1;
  for (const auto& level : t) p *= level[static_cast<std::size_t>(loop)];
  return p;
}

std::int64_t Mapping::temporal_extent(int loop) const {
  return tile(HwLevel::X, loop) * tile(HwLevel::L, loop) * tile(HwLevel::T, loop);
}

std::int64_t Mapping::spatial_extent(int loop) const {
  return tile(HwLevel::D1, loop) * tile(HwLevel::D2, loop) *
         tile(HwLevel::D3, loop);
}

std::int64_t Mapping::padded_macs() const {
  std::int64_t p = 1;
  for (int i = 0; i < k(); ++i) p *= loop_coverage(i);
  return p;
}

std::string Mapping::to_string(const Workload& w) const {
  std::string out;
  for (HwLevel level : kAllLevels) {
    out += ftdl::compiler::to_string(level);
    out += ":(";
    for (int i = 0; i < k(); ++i) {
      if (i) out += ",";
      out += strformat("%c=%lld", w.loops[i].tag,
                       static_cast<long long>(tile(level, i)));
    }
    out += ") ";
  }
  return out;
}

bool satisfies_logical_constraints(const Mapping& m, const Workload& w, int d1,
                                   int d2, int d3) {
  if (m.k() != w.k()) return false;
  // Eqn. 10: spatial products bounded by the hardware extents.
  if (m.level_product(HwLevel::D1) > d1) return false;
  if (m.level_product(HwLevel::D2) > d2) return false;
  if (m.level_product(HwLevel::D3) > d3) return false;
  // Eqn. 11: every workload loop fully covered (padding allowed).
  for (int i = 0; i < w.k(); ++i) {
    if (m.loop_coverage(i) < w.loops[i].trip) return false;
  }
  // Tiles are positive by construction; reject degenerate values anyway.
  for (const auto& level : m.t) {
    for (std::int64_t v : level) {
      if (v < 1) return false;
    }
  }
  return true;
}

}  // namespace ftdl::compiler
