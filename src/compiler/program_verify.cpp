#include "compiler/program_verify.h"

#include "common/error.h"

namespace ftdl::compiler {

verify::StreamExpectation stream_expectation(const Workload& w,
                                             const Mapping& m,
                                             const Performance& perf,
                                             int weight_groups) {
  verify::StreamExpectation e;
  e.x_trip = static_cast<std::uint64_t>(perf.x);
  e.l_trip = static_cast<std::uint64_t>(perf.l);
  e.t_trip = static_cast<std::uint64_t>(perf.t);
  e.act_tile_words =
      static_cast<std::uint64_t>(perf.buffers.actbuf_words_per_tpe);
  e.psum_tile_words =
      static_cast<std::uint64_t>(perf.buffers.psum_words_per_superblock);
  e.psum_accumulate = psum_passes(w, m) > 1;
  e.weight_footprint_words =
      static_cast<std::uint64_t>(perf.buffers.wbuf_words_per_tpe);
  e.weight_groups = weight_groups;
  return e;
}

verify::VerifyResult verify_program(const LayerProgram& program,
                                    const arch::OverlayConfig& config) {
  const verify::StreamExpectation expected = stream_expectation(
      program.workload, program.mapping, program.perf, program.weight_groups);
  return verify::verify_stream(program.row_stream, config, &expected);
}

void assert_program_verified(const LayerProgram& program,
                             const arch::OverlayConfig& config) {
  const verify::VerifyResult result = verify_program(program, config);
  if (const verify::Diagnostic* d = result.first_error()) {
    throw InternalError("compile_layer emitted an unverifiable stream for " +
                        program.layer.name + ": " + d->to_string());
  }
}

}  // namespace ftdl::compiler
