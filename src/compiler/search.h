// Mapping-vector search (Sec. IV-C/D).
//
// The feasible set is the integer hull of a non-convex polytope (Sec.
// IV-D4), so the compiler enumerates candidates under the guidance of the
// adjacency matrix, rejects those violating the logical and buffer
// constraints, and keeps the top-k by the requested objective. Because full
// enumeration is intractable for large layers, candidates come from three
// complementary generators (all deterministic):
//   1. canonical constructions — greedy dataflow-aware fills that guarantee
//      a good solution exists in the pool;
//   2. a structured DFS over per-loop tile candidates with inline
//      constraint pruning;
//   3. biased random sampling for diversity (fills the Fig. 7 scatter).
// The evaluation budget caps total work; the result reports whether the
// structured enumeration ran to completion.
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/analytical_model.h"

namespace ftdl::compiler {

/// Objectives of Sec. IV-D.
enum class Objective {
  Performance,  ///< Obj.1: minimize C_exe (Eqn. 12)
  Balance,      ///< Obj.2: maximize Cexe_min/Cexe + E_WBUF (Eqn. 13)
};

const char* to_string(Objective o);

struct Solution {
  Mapping mapping;
  Performance perf;
  double score = 0.0;  ///< objective value; larger is better
};

struct SearchOptions {
  Objective objective = Objective::Performance;
  int top_k = 1;
  /// Evaluation budget across all three generators.
  std::int64_t max_candidates = 200'000;
  /// Keep infeasible (buffer-violating) solutions in the pool (debugging).
  bool keep_infeasible = false;
  /// Seed for the sampling generator (results are deterministic per seed).
  std::uint64_t seed = 1;
  /// Run the hill-climbing refinement stage on the best solutions found by
  /// the generators (moves prime factors between hardware levels).
  bool refine = true;
};

struct SearchResult {
  std::vector<Solution> top;     ///< best-first
  std::int64_t evaluated = 0;    ///< total mappings evaluated
  std::int64_t feasible = 0;     ///< mappings passing every constraint
  bool dfs_exhausted = false;    ///< structured DFS ran to completion
  std::int64_t refinement_improvements = 0;  ///< accepted hill-climb moves

  const Solution& best() const;  ///< throws ftdl::InfeasibleError when empty
};

/// Runs the search. Never throws for "no solution" — check result.top.
SearchResult search_mappings(const Workload& w,
                             const arch::OverlayConfig& config,
                             const SearchOptions& options);

/// Convenience: best mapping under Obj.1/Obj.2 (throws InfeasibleError when
/// the feasible set is empty).
Solution best_mapping(const Workload& w, const arch::OverlayConfig& config,
                      Objective objective = Objective::Performance,
                      std::int64_t max_candidates = 200'000);

/// Objective score of an evaluated mapping (larger = better).
double objective_score(const Performance& p, Objective objective,
                       std::int64_t c_exe_min);

}  // namespace ftdl::compiler
