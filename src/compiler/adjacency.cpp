#include "compiler/adjacency.h"

#include "common/error.h"

namespace ftdl::compiler {

bool adjacency_allows(const Workload& w, HwLevel level, int loop) {
  FTDL_ASSERT(loop >= 0 && loop < w.k());
  const WorkloadLoop& l = w.loops[static_cast<std::size_t>(loop)];
  switch (level) {
    case HwLevel::D1:
      return l.is_reduction;
    case HwLevel::D2:
      return l.indexes_weight && !l.indexes_act;
    case HwLevel::D3:
    case HwLevel::X:
    case HwLevel::T:
      return true;
    case HwLevel::L:
      return l.indexes_act;
  }
  return false;
}

bool satisfies_adjacency(const Mapping& m, const Workload& w) {
  if (m.k() != w.k()) return false;
  for (HwLevel level : kAllLevels) {
    for (int i = 0; i < w.k(); ++i) {
      if (m.tile(level, i) > 1 && !adjacency_allows(w, level, i)) return false;
    }
  }
  return true;
}

bool needs_host_reduction(const Mapping& m, const Workload& w) {
  for (int i = 0; i < w.k(); ++i) {
    if (w.loops[static_cast<std::size_t>(i)].is_reduction &&
        m.tile(HwLevel::D3, i) > 1) {
      return true;
    }
  }
  return false;
}

}  // namespace ftdl::compiler
