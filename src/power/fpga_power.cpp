#include "power/fpga_power.h"

#include <algorithm>

#include "common/error.h"

namespace ftdl::power {

PowerParams PowerParams::for_family(fpga::Family family) {
  switch (family) {
    case fpga::Family::Virtex7:
      return PowerParams{
          .dsp_mw_per_mhz = 0.034,
          .bram18_mw_per_mhz = 0.028,
          .clb_mw_per_mhz = 0.0009,
          .clock_tree_w = 2.8,
          .static_w = 3.2,
      };
    case fpga::Family::UltraScale:
      return PowerParams{
          .dsp_mw_per_mhz = 0.030,
          .bram18_mw_per_mhz = 0.025,
          .clb_mw_per_mhz = 0.0008,
          .clock_tree_w = 2.5,
          .static_w = 3.5,
      };
  }
  throw InternalError("unknown family");
}

PowerBreakdown estimate_power(const fpga::Device& device,
                              const arch::OverlayConfig& config,
                              double activity, double dram_avg_w) {
  FTDL_ASSERT(activity >= 0.0 && activity <= 1.0);
  const PowerParams p = PowerParams::for_family(device.family);

  const double clk_h_mhz = config.clocks.clk_h_hz / 1e6;
  const double clk_l_mhz = config.clocks.clk_l_hz / 1e6;

  // Resource counts mirror the placement model: one DSP + one WBUF BRAM18
  // per TPE, PSumBUF BRAMs per SuperBlock, ~14 CLBs per TPE (ActBUF +
  // pipeline registers) plus a controller block per SuperBlock row.
  const double tpes = config.tpes();
  const std::int64_t psum_brams =
      (config.psumbuf_words * config.psum_bytes * 8 + 18 * 1024 - 1) /
      (18 * 1024);
  const double brams = tpes + double(config.superblocks() * psum_brams);
  const double clbs = 14.0 * tpes + 80.0 * config.d3;

  PowerBreakdown b;
  b.dsp_w = tpes * clk_h_mhz * p.dsp_mw_per_mhz * activity * 1e-3;
  // WBUF/PSumBUF run on the slow clock in a double-pumped design.
  const double bram_mhz = config.double_pump ? clk_l_mhz : clk_h_mhz;
  b.bram_w = brams * bram_mhz * p.bram18_mw_per_mhz * activity * 1e-3;
  b.clb_w = clbs * clk_h_mhz * p.clb_mw_per_mhz * activity * 1e-3;
  // Clock tree scales with the fabric fraction in use and the frequency.
  const double fabric_fraction =
      std::min(1.0, tpes / double(device.total_dsp()));
  b.clock_w = p.clock_tree_w * fabric_fraction *
              (config.clocks.clk_h_hz / device.timing.dsp_fmax_hz);
  b.static_w = p.static_w;
  b.dram_w = dram_avg_w;
  return b;
}

double power_efficiency_gops_per_w(double effective_gops,
                                   const PowerBreakdown& power) {
  FTDL_ASSERT(power.total_w() > 0.0);
  return effective_gops / power.total_w();
}

}  // namespace ftdl::power
