// FPGA + system power model.
//
// Per-primitive dynamic power scales as count x frequency x toggle activity
// (CV^2 f), plus clock-network and static components, plus the DRAM power
// from the dram module. Coefficients are calibrated so the paper's example
// design (1200 TPEs at 650 MHz, ~81% activity) lands in the reported
// 45.8 W envelope, giving 27.6 GOPS/W (Table II).
#pragma once

#include "arch/overlay_config.h"
#include "dram/dram_power.h"
#include "fpga/device.h"

namespace ftdl::power {

/// Per-family dynamic coefficients (mW per instance per MHz at activity 1).
struct PowerParams {
  double dsp_mw_per_mhz = 0.0;
  double bram18_mw_per_mhz = 0.0;   ///< at its own (CLKl) clock
  double clb_mw_per_mhz = 0.0;      ///< per occupied CLB
  double clock_tree_w = 0.0;        ///< distribution network at full fabric
  double static_w = 0.0;            ///< device leakage

  static PowerParams for_family(fpga::Family family);
};

struct PowerBreakdown {
  double dsp_w = 0.0;
  double bram_w = 0.0;
  double clb_w = 0.0;
  double clock_w = 0.0;
  double static_w = 0.0;
  double dram_w = 0.0;

  double total_w() const {
    return dsp_w + bram_w + clb_w + clock_w + static_w + dram_w;
  }
};

/// Estimates the power of an overlay running at `activity` (the fraction of
/// cycles the datapath toggles — the hardware efficiency is the natural
/// choice) with `dram_avg_w` from the DRAM model.
PowerBreakdown estimate_power(const fpga::Device& device,
                              const arch::OverlayConfig& config,
                              double activity, double dram_avg_w);

/// GOPS/W figure of merit (Table II bottom row).
double power_efficiency_gops_per_w(double effective_gops,
                                   const PowerBreakdown& power);

}  // namespace ftdl::power
