#include "analyze/network_io.h"

#include <fstream>
#include <map>
#include <sstream>

#include "common/error.h"
#include "common/str_util.h"
#include "compiler/program_io.h"

namespace ftdl::analyze {

namespace {

constexpr const char* kMagic = "ftdl-network";
constexpr int kVersion = 1;
constexpr const char* kProgramMarker = "%% program ";

std::string serialize_layer(std::size_t i, const nn::Layer& l) {
  const std::string p = strformat("layer.%zu.", i);
  std::string out;
  out += p + "name=" + l.name + "\n";
  out += p + strformat("kind=%d\n", static_cast<int>(l.kind));
  out += p + strformat("geom=%d %d %d %d %d %d %d %d\n", l.in_c, l.in_h,
                       l.in_w, l.out_c, l.kh, l.kw, l.stride, l.pad);
  out += p + strformat("mm=%lld %lld %lld\n", static_cast<long long>(l.mm_m),
                       static_cast<long long>(l.mm_n),
                       static_cast<long long>(l.mm_p));
  out += p + strformat("relu=%d\n", l.relu ? 1 : 0);
  out += p + strformat("repeat=%d\n", l.repeat);
  out += p + strformat("pool_op=%d\n", static_cast<int>(l.pool_op));
  out += p + strformat("ewop_op=%d\n", static_cast<int>(l.ewop_op));
  out += p + strformat("ewop_ops=%lld\n",
                       static_cast<long long>(l.explicit_ewop_ops));
  std::string inputs;
  for (const std::string& in : l.input_names) {
    if (!inputs.empty()) inputs += ',';
    inputs += in;
  }
  out += p + "inputs=" + inputs + "\n";
  return out;
}

std::map<std::string, std::string> parse_kv(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos)
      throw Error("malformed network bundle line: " + line);
    if (!kv.emplace(line.substr(0, eq), line.substr(eq + 1)).second)
      throw Error("duplicate key in network bundle: " + line.substr(0, eq));
  }
  return kv;
}

const std::string& require(const std::map<std::string, std::string>& kv,
                           const std::string& key) {
  auto it = kv.find(key);
  if (it == kv.end()) throw Error("network bundle missing key " + key);
  return it->second;
}

std::vector<std::int64_t> parse_ints(const std::string& s,
                                     const std::string& key,
                                     std::size_t expect) {
  std::vector<std::int64_t> out;
  std::istringstream in(s);
  std::int64_t v;
  while (in >> v) out.push_back(v);
  if (out.size() != expect)
    throw Error("network bundle: bad value for " + key);
  return out;
}

std::int64_t parse_int(const std::string& s, const std::string& key) {
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(s, &pos);
    if (pos != s.size()) throw Error("");
    return v;
  } catch (const std::exception&) {
    throw Error("network bundle: bad integer for " + key + ": " + s);
  }
}

/// "<base> <words> ... <name>": numbers first so names may contain spaces.
struct RangeLine {
  std::vector<std::int64_t> nums;
  std::string name;
};

RangeLine parse_range_line(const std::string& s, const std::string& key,
                           std::size_t num_count) {
  RangeLine out;
  std::istringstream in(s);
  for (std::size_t i = 0; i < num_count; ++i) {
    std::int64_t v;
    if (!(in >> v) || v < 0)
      throw Error("network bundle: bad value for " + key);
    out.nums.push_back(v);
  }
  std::getline(in, out.name);
  const auto start = out.name.find_first_not_of(' ');
  out.name = start == std::string::npos ? "" : out.name.substr(start);
  if (out.name.empty())
    throw Error("network bundle: missing name in " + key);
  return out;
}

nn::Layer parse_layer(const std::map<std::string, std::string>& kv,
                      std::size_t i) {
  const std::string p = strformat("layer.%zu.", i);
  nn::Layer l;
  l.name = require(kv, p + "name");
  l.kind = static_cast<nn::LayerKind>(
      static_cast<int>(parse_int(require(kv, p + "kind"), p + "kind")));
  const auto geom = parse_ints(require(kv, p + "geom"), p + "geom", 8);
  l.in_c = static_cast<int>(geom[0]);
  l.in_h = static_cast<int>(geom[1]);
  l.in_w = static_cast<int>(geom[2]);
  l.out_c = static_cast<int>(geom[3]);
  l.kh = static_cast<int>(geom[4]);
  l.kw = static_cast<int>(geom[5]);
  l.stride = static_cast<int>(geom[6]);
  l.pad = static_cast<int>(geom[7]);
  const auto mm = parse_ints(require(kv, p + "mm"), p + "mm", 3);
  l.mm_m = mm[0];
  l.mm_n = mm[1];
  l.mm_p = mm[2];
  l.relu = require(kv, p + "relu") == "1";
  l.repeat =
      static_cast<int>(parse_int(require(kv, p + "repeat"), p + "repeat"));
  l.pool_op = static_cast<nn::PoolOp>(
      static_cast<int>(parse_int(require(kv, p + "pool_op"), p + "pool_op")));
  l.ewop_op = static_cast<nn::EwopOp>(
      static_cast<int>(parse_int(require(kv, p + "ewop_op"), p + "ewop_op")));
  l.explicit_ewop_ops = parse_int(require(kv, p + "ewop_ops"), p + "ewop_ops");
  const std::string& inputs = require(kv, p + "inputs");
  std::size_t pos = 0;
  while (pos < inputs.size()) {
    const std::size_t comma = inputs.find(',', pos);
    const std::size_t end = comma == std::string::npos ? inputs.size() : comma;
    if (end > pos) l.input_names.push_back(inputs.substr(pos, end - pos));
    pos = end + 1;
  }
  return l;
}

}  // namespace

std::string serialize_network(const ScheduledNetwork& sn) {
  std::string out;
  out += strformat("%s v%d\n", kMagic, kVersion);
  out += "name=" + sn.net.name() + "\n";
  out += strformat("objective=%d\n", static_cast<int>(sn.schedule.objective));
  out += strformat("layers=%zu\n", sn.net.layers().size());
  for (std::size_t i = 0; i < sn.net.layers().size(); ++i) {
    out += serialize_layer(i, sn.net.layers()[i]);
  }
  out += strformat("image_words=%llu\n",
                   static_cast<unsigned long long>(sn.memory.image_words));
  out += strformat("tensors=%zu\n", sn.memory.tensors.size());
  for (std::size_t i = 0; i < sn.memory.tensors.size(); ++i) {
    const TensorPlan& t = sn.memory.tensors[i];
    out += strformat("tensor.%zu=%llu %llu %d %s\n", i,
                     static_cast<unsigned long long>(t.range.base),
                     static_cast<unsigned long long>(t.range.words),
                     t.elem_words, t.producer.c_str());
  }
  out += strformat("weights=%zu\n", sn.memory.weights.size());
  for (std::size_t i = 0; i < sn.memory.weights.size(); ++i) {
    const WeightPlan& w = sn.memory.weights[i];
    out += strformat("weight.%zu=%llu %llu %s\n", i,
                     static_cast<unsigned long long>(w.range.base),
                     static_cast<unsigned long long>(w.range.words),
                     w.layer.c_str());
  }
  out += strformat("programs=%zu\n", sn.schedule.layers.size());
  for (std::size_t k = 0; k < sn.schedule.layers.size(); ++k) {
    out += strformat("%s%zu\n", kProgramMarker, k);
    out += compiler::serialize_program(sn.schedule.layers[k]);
  }
  return out;
}

ScheduledNetwork parse_network_bundle(const std::string& text,
                                      const arch::OverlayConfig& config) {
  std::istringstream in(text);
  std::string header;
  std::getline(in, header);
  if (header != strformat("%s v%d", kMagic, kVersion))
    throw Error("not a v" + std::to_string(kVersion) +
                " ftdl network bundle: " + header);

  // Split the remainder into the key=value section and the embedded
  // program sections.
  std::string head_text;
  std::vector<std::string> program_texts;
  std::string line;
  std::string* current = &head_text;
  while (std::getline(in, line)) {
    if (line.rfind(kProgramMarker, 0) == 0) {
      program_texts.emplace_back();
      current = &program_texts.back();
      continue;
    }
    *current += line;
    *current += '\n';
  }

  const auto kv = parse_kv(head_text);

  nn::Network net(require(kv, "name"));
  const std::int64_t n_layers = parse_int(require(kv, "layers"), "layers");
  if (n_layers < 0) throw Error("network bundle: bad layer count");
  for (std::int64_t i = 0; i < n_layers; ++i) {
    net.add(parse_layer(kv, static_cast<std::size_t>(i)));
  }

  MemoryPlan memory;
  memory.image_words = static_cast<std::uint64_t>(
      parse_int(require(kv, "image_words"), "image_words"));
  const std::int64_t n_tensors = parse_int(require(kv, "tensors"), "tensors");
  for (std::int64_t i = 0; i < n_tensors; ++i) {
    const std::string key = strformat("tensor.%lld", static_cast<long long>(i));
    const RangeLine rl = parse_range_line(require(kv, key), key, 3);
    memory.tensors.push_back(TensorPlan{
        rl.name,
        MemRange{static_cast<std::uint64_t>(rl.nums[0]),
                 static_cast<std::uint64_t>(rl.nums[1])},
        static_cast<int>(rl.nums[2])});
  }
  const std::int64_t n_weights = parse_int(require(kv, "weights"), "weights");
  for (std::int64_t i = 0; i < n_weights; ++i) {
    const std::string key = strformat("weight.%lld", static_cast<long long>(i));
    const RangeLine rl = parse_range_line(require(kv, key), key, 2);
    memory.weights.push_back(WeightPlan{
        rl.name, MemRange{static_cast<std::uint64_t>(rl.nums[0]),
                          static_cast<std::uint64_t>(rl.nums[1])}});
  }

  const std::int64_t n_programs =
      parse_int(require(kv, "programs"), "programs");
  if (n_programs != static_cast<std::int64_t>(program_texts.size()))
    throw Error(strformat("network bundle: %lld programs declared, %zu "
                          "embedded",
                          static_cast<long long>(n_programs),
                          program_texts.size()));

  // Per-program validation first (analytical model + stream verifier),
  // exactly as loading each .ftdlprog individually would.
  compiler::NetworkSchedule sched;
  sched.network_name = net.name();
  sched.config = config;
  sched.objective = static_cast<compiler::Objective>(
      static_cast<int>(parse_int(require(kv, "objective"), "objective")));
  double e_wbuf_weighted = 0.0;
  std::int64_t weight_words = 0;
  for (const std::string& ptext : program_texts) {
    compiler::LayerProgram prog = compiler::deserialize_program(ptext, config);
    sched.total_cycles += prog.total_cycles() * prog.layer.repeat;
    sched.overlay_macs += prog.layer.macs() * prog.layer.repeat;
    e_wbuf_weighted += prog.perf.e_wbuf * double(prog.layer.weight_count());
    weight_words += prog.layer.weight_count();
    sched.layers.push_back(std::move(prog));
  }
  for (const nn::Layer& l : net.layers()) sched.host_ewop_ops += l.ewop_ops();
  if (sched.total_cycles > 0) {
    sched.hardware_efficiency =
        double(sched.overlay_macs) /
        (double(sched.total_cycles) * double(config.tpes()));
  }
  sched.mean_e_wbuf =
      weight_words > 0 ? e_wbuf_weighted / double(weight_words) : 0.0;

  return ScheduledNetwork(std::move(net), std::move(sched),
                          std::move(memory));
}

ScheduledNetwork deserialize_network(const std::string& text,
                                     const arch::OverlayConfig& config) {
  ScheduledNetwork sn = parse_network_bundle(text, config);
  const AnalysisResult r = analyze_network(sn);
  if (const Diagnostic* d = r.first_error()) {
    throw ConfigError("network bundle fails static analysis: " +
                      d->to_string());
  }
  return sn;
}

void save_network(const ScheduledNetwork& sn, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write network bundle " + path);
  out << serialize_network(sn);
}

ScheduledNetwork load_network(const std::string& path,
                              const arch::OverlayConfig& config) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open network bundle " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize_network(buf.str(), config);
}

}  // namespace ftdl::analyze
