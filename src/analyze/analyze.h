// ftdl::analyze — whole-network static analysis of compiled artifacts.
//
// ftdl::verify checks ONE controller instruction stream at a time; what a
// deployment actually ships (Sec. V-A) is a *scheduled network*: many layer
// programs sharing a DRAM address space, a weight store, and — multi-FPGA —
// a pipeline of devices. This pass runs after per-stream verification and
// checks everything that only exists at that level, reporting a typed
// diagnostic catalog mirroring ftdl::verify's. Three check families:
//
//   memory    — every tensor has exactly one DRAM range, ranges stay inside
//     the planned image, hold the tensor they claim to, and no two
//     *simultaneously live* tensors (liveness intervals derived from the
//     dataflow graph; weights are persistent) alias; per-layer weight-store
//     footprints agree with the layer and fit WBUF residency; the DRAM
//     reads a stream will issue — reconstructed from its tile/stride
//     configuration — stay inside the producer's range;
//   graph     — producer/consumer shape+dtype agreement across layer
//     boundaries, dead layers and unconsumed outputs, unique-sink and
//     acyclicity re-checked on the compiled artifact rather than the
//     frontend graph;
//   partition — a multi-FPGA plan covers the schedule with contiguous
//     stages, every cut edge has a matching activation transfer, no stage
//     exceeds device weight residency, and stage costs agree with the
//     schedule.
//
// Everything is a diagnostic, never a throw (assert_network_analyzed wraps
// the error case for pipelines that want an exception). The analyzer runs
// in the ftdlc post-schedule path, on every network-bundle load
// (analyze/network_io.h), and at serve::Server startup.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/scheduler.h"
#include "multifpga/partition.h"
#include "nn/network.h"
#include "verify/verifier.h"

namespace ftdl::analyze {

/// The network-level check catalog (docs/verification.md lists it with
/// examples). Grouped by family; the slug of each value is its kebab-case
/// name via to_string().
enum class Check {
  // memory
  MissingTensorRange,      ///< a produced tensor has no planned DRAM range
  DuplicateTensorRange,    ///< two ranges planned for one tensor
  TensorOutOfImage,        ///< range ends beyond the planned DRAM image
  TensorRangeUnderflow,    ///< range smaller than the tensor it holds
  TensorOverlap,           ///< simultaneously-live ranges alias
  DtypeMismatch,           ///< element width disagrees with the int16 flow
  WeightFootprintMismatch, ///< weight range size != layer weight words
  WbufResidencyOverflow,   ///< resident weight words exceed device WBUFs
  DramOverread,            ///< stream reads past the producer's range
  // graph
  DuplicateLayer,          ///< two layers share a name
  MissingProducer,         ///< input references an unknown layer
  GraphCycle,              ///< input references itself or a later layer
  ShapeMismatch,           ///< consumer input shape != producer output
  MultipleSinks,           ///< more than one unconsumed output
  DeadLayer,               ///< output never consumed and not the sink
  MissingProgram,          ///< overlay layer absent from the schedule
  OrphanProgram,           ///< program for a layer the network lacks
  ProgramOrderMismatch,    ///< programs not in network execution order
  StaleProgram,            ///< program geometry != network layer geometry
  // partition
  StageCoverage,           ///< stages not contiguous / not covering
  StageResidencyMismatch,  ///< stage resident words != sum of its layers
  StageResidencyOverflow,  ///< resident stage exceeds device capacity
  CutTransferMismatch,     ///< cut-edge transfer != boundary tensor bytes
  StageCostMismatch,       ///< stage cycles != sum of its layer cycles
};

/// Stable kebab-case slug, e.g. "tensor-overlap".
const char* to_string(Check c);

/// One network-level finding. `where` names the offending entity (a layer,
/// a tensor's producer, or "stage N"); empty means the whole artifact.
struct Diagnostic {
  verify::Severity severity = verify::Severity::Error;
  Check check = Check::MissingTensorRange;
  std::string where;
  std::string message;

  /// "error[tensor-overlap] conv1: ..." (where omitted when empty).
  std::string to_string() const;
};

struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;

  bool ok() const { return errors() == 0; }
  int errors() const;
  int warnings() const;
  /// First error diagnostic, or nullptr when ok().
  const Diagnostic* first_error() const;
  /// All diagnostics, one per line.
  std::string to_string() const;
};

// ---- the analyzed artifact --------------------------------------------------

/// Half-open DRAM word range [base, base + words).
struct MemRange {
  std::uint64_t base = 0;
  std::uint64_t words = 0;

  std::uint64_t end() const { return base + words; }
  bool overlaps(const MemRange& o) const {
    return words > 0 && o.words > 0 && base < o.end() && o.base < end();
  }
};

/// DRAM backing range of one activation tensor, keyed by its producer
/// layer (nn::kNetworkInput for the network input tensor).
struct TensorPlan {
  std::string producer;
  MemRange range;
  int elem_words = 1;  ///< words per element (int16 activations = 1)
};

/// DRAM backing range of one layer's (unique) weights.
struct WeightPlan {
  std::string layer;
  MemRange range;
};

/// The DRAM image layout a deployment ships alongside the programs.
struct MemoryPlan {
  std::uint64_t image_words = 0;  ///< planned DRAM image size
  std::vector<TensorPlan> tensors;
  std::vector<WeightPlan> weights;
};

/// A deployable artifact: the dataflow graph, its compiled schedule, and
/// the DRAM layout. This is what analyze_network checks and what
/// analyze/network_io.h serializes as a `ftdl-network v1` bundle.
struct ScheduledNetwork {
  nn::Network net;
  compiler::NetworkSchedule schedule;
  MemoryPlan memory;

  ScheduledNetwork() : net("") {}
  ScheduledNetwork(nn::Network n, compiler::NetworkSchedule s, MemoryPlan m)
      : net(std::move(n)), schedule(std::move(s)), memory(std::move(m)) {}
};

// ---- tensor geometry helpers ------------------------------------------------

/// Output elements of layer `i`, deriving through producers for layers
/// whose own geometry does not determine it (Ewop is element-wise identity
/// on its first input; Concat sums its inputs). Returns 0 when the graph
/// is too broken to tell (missing producer, cycle) — the graph checks
/// report that separately.
std::int64_t tensor_elems(const nn::Network& net, std::size_t i);

/// Elements of the network input tensor, from the first consumer's
/// declared input geometry (0 when no layer consumes it).
std::int64_t network_input_elems(const nn::Network& net);

// ---- passes -----------------------------------------------------------------

/// How strict the graph checks are about sink multiplicity: a compiled
/// artifact may legitimately ship several output heads (warning), but the
/// feed-forward serving runtime needs exactly one (error).
enum class GraphStrictness { Artifact, Serving };

/// Plans a deterministic DRAM layout for `net`'s tensors and `schedule`'s
/// weight stores: weights first (persistent), then activations through a
/// liveness-driven first-fit allocator that reuses the ranges of dead
/// tensors — disjoint-lifetime aliasing is legal and exercised, which is
/// what makes the overlap check meaningful.
MemoryPlan plan_memory(const nn::Network& net,
                       const compiler::NetworkSchedule& schedule);

/// Convenience: bundle net + schedule with a freshly planned memory layout.
ScheduledNetwork make_scheduled(nn::Network net,
                                compiler::NetworkSchedule schedule);

/// Graph-family checks only (no schedule needed): shape/dtype agreement,
/// duplicate names, unknown producers, cycles, sinks, dead layers. Usable
/// on a frontend graph before compilation (serve::Server does).
AnalysisResult analyze_graph(const nn::Network& net,
                             GraphStrictness strictness =
                                 GraphStrictness::Artifact);

/// The full network-level analysis: graph family, schedule/graph
/// cross-checks, and the memory family over `sn.memory`. Per-stream
/// verification (compiler/program_verify.h) is NOT repeated here — run it
/// first; network_io's loader does.
AnalysisResult analyze_network(const ScheduledNetwork& sn);

/// Partition-family checks of a multi-FPGA plan against its schedule.
AnalysisResult analyze_partition(const compiler::NetworkSchedule& schedule,
                                 const multifpga::MultiFpgaPlan& plan);

/// Post-condition form: throws ftdl::InternalError carrying the first
/// error diagnostic if analyze_network finds any (mirrors
/// compiler::assert_program_verified).
void assert_network_analyzed(const ScheduledNetwork& sn);

}  // namespace ftdl::analyze
