#include "analyze/analyze.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/error.h"
#include "common/str_util.h"
#include "obs/obs.h"

namespace ftdl::analyze {

const char* to_string(Check c) {
  switch (c) {
    case Check::MissingTensorRange: return "missing-tensor-range";
    case Check::DuplicateTensorRange: return "duplicate-tensor-range";
    case Check::TensorOutOfImage: return "tensor-out-of-image";
    case Check::TensorRangeUnderflow: return "tensor-range-underflow";
    case Check::TensorOverlap: return "tensor-overlap";
    case Check::DtypeMismatch: return "dtype-mismatch";
    case Check::WeightFootprintMismatch: return "weight-footprint-mismatch";
    case Check::WbufResidencyOverflow: return "wbuf-residency-overflow";
    case Check::DramOverread: return "dram-overread";
    case Check::DuplicateLayer: return "duplicate-layer";
    case Check::MissingProducer: return "missing-producer";
    case Check::GraphCycle: return "graph-cycle";
    case Check::ShapeMismatch: return "shape-mismatch";
    case Check::MultipleSinks: return "multiple-sinks";
    case Check::DeadLayer: return "dead-layer";
    case Check::MissingProgram: return "missing-program";
    case Check::OrphanProgram: return "orphan-program";
    case Check::ProgramOrderMismatch: return "program-order-mismatch";
    case Check::StaleProgram: return "stale-program";
    case Check::StageCoverage: return "stage-coverage";
    case Check::StageResidencyMismatch: return "stage-residency-mismatch";
    case Check::StageResidencyOverflow: return "stage-residency-overflow";
    case Check::CutTransferMismatch: return "cut-transfer-mismatch";
    case Check::StageCostMismatch: return "stage-cost-mismatch";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::string out = verify::to_string(severity);
  out += '[';
  out += analyze::to_string(check);
  out += ']';
  if (!where.empty()) out += ' ' + where;
  out += ": " + message;
  return out;
}

int AnalysisResult::errors() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == verify::Severity::Error) ++n;
  return n;
}

int AnalysisResult::warnings() const {
  int n = 0;
  for (const Diagnostic& d : diagnostics)
    if (d.severity == verify::Severity::Warning) ++n;
  return n;
}

const Diagnostic* AnalysisResult::first_error() const {
  for (const Diagnostic& d : diagnostics)
    if (d.severity == verify::Severity::Error) return &d;
  return nullptr;
}

std::string AnalysisResult::to_string() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) out += d.to_string() + "\n";
  return out;
}

namespace {

using verify::Severity;

void report(AnalysisResult& r, Severity sev, Check check, std::string where,
            std::string message) {
  r.diagnostics.push_back(
      Diagnostic{sev, check, std::move(where), std::move(message)});
}

/// Elements a consumer's declared geometry expects from one input tensor,
/// or 0 when its kind does not constrain it (Concat, generic Ewop).
std::int64_t expected_input_elems(const nn::Layer& l) {
  switch (l.kind) {
    case nn::LayerKind::Conv:
    case nn::LayerKind::Depthwise:
    case nn::LayerKind::Pool:
      return std::int64_t{l.in_c} * l.in_h * l.in_w;
    case nn::LayerKind::MatMul:
      return l.mm_m * l.mm_p;
    case nn::LayerKind::Ewop:
      // AddRelu counts 2 ops per element over inputs of `elems` each.
      if (l.ewop_op == nn::EwopOp::AddRelu) return l.explicit_ewop_ops / 2;
      return 0;
    case nn::LayerKind::Concat:
      return 0;
  }
  return 0;
}

}  // namespace

std::int64_t tensor_elems(const nn::Network& net, std::size_t i) {
  const std::vector<nn::Layer>& layers = net.layers();
  if (i >= layers.size()) return 0;
  const nn::Layer& l = layers[i];
  switch (l.kind) {
    case nn::LayerKind::Conv:
    case nn::LayerKind::Depthwise:
    case nn::LayerKind::MatMul:
    case nn::LayerKind::Pool:
      return l.out_elems();
    case nn::LayerKind::Ewop:
    case nn::LayerKind::Concat:
      break;
  }
  // Element-wise layers pass their (first) input through; concat stacks all
  // of them. Only follow references to EARLIER layers so a cyclic graph
  // terminates (the graph checks flag the cycle itself).
  std::int64_t total = 0;
  for (const std::string& name : net.resolved_inputs(i)) {
    std::int64_t elems = 0;
    if (name == nn::kNetworkInput) {
      elems = network_input_elems(net);
    } else {
      const int j = net.find(name);
      if (j >= 0 && static_cast<std::size_t>(j) < i)
        elems = tensor_elems(net, static_cast<std::size_t>(j));
    }
    if (l.kind == nn::LayerKind::Ewop) return elems;
    if (elems <= 0) return 0;  // concat of an unknown part is unknown
    total += elems;
  }
  return total;
}

std::int64_t network_input_elems(const nn::Network& net) {
  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    for (const std::string& name : net.resolved_inputs(i)) {
      if (name != nn::kNetworkInput) continue;
      const std::int64_t e = expected_input_elems(net.layers()[i]);
      if (e > 0) return e;
    }
  }
  return 0;
}

AnalysisResult analyze_graph(const nn::Network& net,
                             GraphStrictness strictness) {
  AnalysisResult r;
  const std::vector<nn::Layer>& layers = net.layers();

  // Duplicate names (first declaration wins for every lookup below).
  std::set<std::string> seen;
  for (const nn::Layer& l : layers) {
    if (!seen.insert(l.name).second) {
      report(r, Severity::Error, Check::DuplicateLayer, l.name,
             "two layers share this name; references are ambiguous");
    }
  }

  // Producer resolution, acyclicity, and shape agreement per edge.
  for (std::size_t i = 0; i < layers.size(); ++i) {
    const nn::Layer& l = layers[i];
    const std::vector<std::string> inputs = net.resolved_inputs(i);
    std::vector<std::int64_t> input_elems;
    for (const std::string& name : inputs) {
      if (name == nn::kNetworkInput) {
        input_elems.push_back(network_input_elems(net));
        continue;
      }
      const int j = net.find(name);
      if (j < 0) {
        report(r, Severity::Error, Check::MissingProducer, l.name,
               "input '" + name + "' names no layer in the network");
        input_elems.push_back(0);
        continue;
      }
      if (static_cast<std::size_t>(j) >= i) {
        report(r, Severity::Error, Check::GraphCycle, l.name,
               "input '" + name +
                   "' references itself or a later layer; the artifact is "
                   "not executable in declaration order");
        input_elems.push_back(0);
        continue;
      }
      // A Generic Ewop declares only a host-side op count; its output
      // geometry is unconstrained (e.g. an LSTM cell update emitting the
      // state vector, not its gate pre-activations), so it cannot anchor a
      // shape check. AddRelu and Concat have defined semantics and can.
      const nn::Layer& producer = net.layers()[static_cast<std::size_t>(j)];
      if (producer.kind == nn::LayerKind::Ewop &&
          producer.ewop_op == nn::EwopOp::Generic) {
        input_elems.push_back(0);
        continue;
      }
      input_elems.push_back(tensor_elems(net, static_cast<std::size_t>(j)));
    }

    // Shape agreement: the consumer's declared input geometry must match
    // what its producer actually emits. Element-wise adds additionally
    // need BOTH operands the same size.
    const std::int64_t expected = expected_input_elems(l);
    if (expected > 0) {
      for (std::size_t k = 0; k < inputs.size(); ++k) {
        // Conv/MM/Pool consume one tensor; only the add checks every input.
        if (k > 0 && !(l.kind == nn::LayerKind::Ewop &&
                       l.ewop_op == nn::EwopOp::AddRelu))
          break;
        if (input_elems[k] > 0 && input_elems[k] != expected) {
          report(r, Severity::Error, Check::ShapeMismatch, l.name,
                 strformat("input '%s' has %lld elements but this layer's "
                           "geometry expects %lld",
                           inputs[k].c_str(),
                           static_cast<long long>(input_elems[k]),
                           static_cast<long long>(expected)));
        }
      }
    }
  }

  // Sinks: outputs nothing consumes. The artifact's output is the
  // last-declared sink; any other unconsumed output is dead work.
  std::set<std::string> consumed;
  for (std::size_t i = 0; i < layers.size(); ++i) {
    for (const std::string& name : net.resolved_inputs(i)) consumed.insert(name);
  }
  std::vector<std::string> sinks;
  for (const nn::Layer& l : layers) {
    if (consumed.count(l.name) == 0) sinks.push_back(l.name);
  }
  if (sinks.size() > 1) {
    std::string list;
    for (const std::string& s : sinks) list += (list.empty() ? "" : ", ") + s;
    report(r,
           strictness == GraphStrictness::Serving ? Severity::Error
                                                  : Severity::Warning,
           Check::MultipleSinks, net.name(),
           std::to_string(sinks.size()) + " unconsumed outputs (" + list +
               "); the feed-forward runtime needs exactly one");
    for (std::size_t s = 0; s + 1 < sinks.size(); ++s) {
      report(r, Severity::Warning, Check::DeadLayer, sinks[s],
             "output is never consumed and is not the network output; the "
             "layer computes dead work");
    }
  }
  return r;
}

namespace {

/// True when a program's stored layer no longer matches the network's
/// layer of the same name (recompiled graph shipped with stale programs).
bool geometry_differs(const nn::Layer& a, const nn::Layer& b) {
  return a.kind != b.kind || a.in_c != b.in_c || a.in_h != b.in_h ||
         a.in_w != b.in_w || a.out_c != b.out_c || a.kh != b.kh ||
         a.kw != b.kw || a.stride != b.stride || a.pad != b.pad ||
         a.mm_m != b.mm_m || a.mm_n != b.mm_n || a.mm_p != b.mm_p ||
         a.repeat != b.repeat;
}

/// DRAM words the stream will read for its activations, reconstructed from
/// the workload's (stream-verified) trip counts plus the layer's
/// stride/padding: a CONV output row E needs input rows E*s .. E*s+R-1 of
/// the padded image, so (E_trip-1)*s + R - 2*pad real DRAM rows cover the
/// whole sweep. 0 when the workload is too damaged to reconstruct.
std::int64_t stream_act_read_words(const compiler::LayerProgram& prog) {
  const compiler::Workload& w = prog.workload;
  try {
    auto trip = [&](char tag) {
      return w.loops[static_cast<std::size_t>(w.loop_index(tag))].trip;
    };
    switch (w.kind) {
      case compiler::WorkloadKind::MatMul:
        // act[M][P]; weight groups split N, which never indexes act.
        return trip('M') * trip('P');
      case compiler::WorkloadKind::Conv:
      case compiler::WorkloadKind::DepthwiseConv: {
        const std::int64_t rows =
            (trip('E') - 1) * w.stride + trip('R') - 2 * prog.layer.pad;
        const std::int64_t cols =
            (trip('F') - 1) * w.stride + trip('S') - 2 * prog.layer.pad;
        // Depthwise splits its channel loop across weight groups; the
        // union of all groups' reads spans the layer's full channel count.
        const std::int64_t channels =
            w.kind == compiler::WorkloadKind::DepthwiseConv
                ? prog.layer.in_c
                : trip('N');
        return std::max<std::int64_t>(rows, 0) *
               std::max<std::int64_t>(cols, 0) * channels;
      }
    }
  } catch (const Error&) {
    // loop_index: expected tag absent — the per-stream checks own this.
  }
  return 0;
}

/// Inclusive liveness interval in execution steps: [definition step, last
/// consuming step]. Unconsumed outputs (sinks) and unknown producers run
/// to step n — a sink must survive the frame for readback.
struct Interval {
  std::int64_t def = 0;
  std::int64_t last = 0;
  bool intersects(const Interval& o) const {
    return def <= o.last && o.def <= last;
  }
};

Interval liveness_of(const nn::Network& net, const std::string& producer) {
  const std::int64_t n = static_cast<std::int64_t>(net.layers().size());
  std::int64_t def = 0;  // the input tensor exists before step 0
  if (producer != nn::kNetworkInput) {
    const int j = net.find(producer);
    if (j < 0) return Interval{0, n};  // unknown: pessimistically always live
    def = j;
  }
  std::int64_t last = -1;
  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    for (const std::string& name : net.resolved_inputs(i)) {
      if (name == producer) last = std::max(last, static_cast<std::int64_t>(i));
    }
  }
  return Interval{def, last < 0 ? n : std::max(last, def)};
}

}  // namespace

MemoryPlan plan_memory(const nn::Network& net,
                       const compiler::NetworkSchedule& schedule) {
  MemoryPlan plan;

  // Weights first: persistent for the whole frame, packed back to back.
  std::uint64_t top = 0;
  for (const compiler::LayerProgram& p : schedule.layers) {
    const std::uint64_t words =
        static_cast<std::uint64_t>(std::max<std::int64_t>(
            p.layer.weight_count(), 0));
    plan.weights.push_back(WeightPlan{p.layer.name, MemRange{top, words}});
    top += words;
  }

  // Activations: liveness-driven first-fit with reuse of dead tensors'
  // ranges. Deterministic: tensors are defined in execution order and the
  // free list is kept sorted by base.
  struct Live {
    std::string producer;
    MemRange range;
    std::int64_t last = 0;
  };
  std::vector<Live> live;
  std::vector<MemRange> free_list;  // sorted by base, coalesced

  auto release = [&](const MemRange& range) {
    if (range.words == 0) return;
    auto it = std::upper_bound(
        free_list.begin(), free_list.end(), range,
        [](const MemRange& a, const MemRange& b) { return a.base < b.base; });
    it = free_list.insert(it, range);
    // Coalesce with the next and previous holes.
    if (it + 1 != free_list.end() && it->end() == (it + 1)->base) {
      it->words += (it + 1)->words;
      free_list.erase(it + 1);
    }
    if (it != free_list.begin() && (it - 1)->end() == it->base) {
      (it - 1)->words += it->words;
      free_list.erase(it);
    }
  };

  auto allocate = [&](std::uint64_t words) {
    if (words == 0) return MemRange{top, 0};
    for (auto it = free_list.begin(); it != free_list.end(); ++it) {
      if (it->words < words) continue;
      const MemRange got{it->base, words};
      it->base += words;
      it->words -= words;
      if (it->words == 0) free_list.erase(it);
      return got;
    }
    const MemRange got{top, words};
    top += words;
    return got;
  };

  const std::int64_t n = static_cast<std::int64_t>(net.layers().size());
  auto place = [&](const std::string& producer, std::int64_t elems,
                   std::int64_t last) {
    const MemRange range =
        allocate(static_cast<std::uint64_t>(std::max<std::int64_t>(elems, 0)));
    plan.tensors.push_back(TensorPlan{producer, range, 1});
    live.push_back(Live{producer, range, last});
  };

  place(nn::kNetworkInput, network_input_elems(net),
        liveness_of(net, nn::kNetworkInput).last);
  for (std::int64_t i = 0; i < n; ++i) {
    // Free everything whose last use is strictly before this step.
    for (std::size_t k = live.size(); k-- > 0;) {
      if (live[k].last < i) {
        release(live[k].range);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(k));
      }
    }
    const nn::Layer& l = net.layers()[static_cast<std::size_t>(i)];
    place(l.name, tensor_elems(net, static_cast<std::size_t>(i)),
          liveness_of(net, l.name).last);
  }

  plan.image_words = top;
  return plan;
}

ScheduledNetwork make_scheduled(nn::Network net,
                                compiler::NetworkSchedule schedule) {
  MemoryPlan memory = plan_memory(net, schedule);
  return ScheduledNetwork(std::move(net), std::move(schedule),
                          std::move(memory));
}

AnalysisResult analyze_network(const ScheduledNetwork& sn) {
  obs::ScopedSpan span("analyze", "analyze_network",
                       {{"network", sn.net.name()}});
  AnalysisResult r = analyze_graph(sn.net, GraphStrictness::Artifact);
  const nn::Network& net = sn.net;
  const compiler::NetworkSchedule& sched = sn.schedule;
  const MemoryPlan& mem = sn.memory;

  // ---- schedule / graph cross-checks ---------------------------------------

  std::vector<std::string> overlay_names;
  for (const nn::Layer& l : net.layers()) {
    if (l.on_overlay()) overlay_names.push_back(l.name);
  }
  std::vector<std::string> program_names;
  for (const compiler::LayerProgram& p : sched.layers) {
    program_names.push_back(p.layer.name);
    const int j = net.find(p.layer.name);
    if (j < 0) {
      report(r, Severity::Error, Check::OrphanProgram, p.layer.name,
             "compiled program for a layer the network does not contain");
      continue;
    }
    const nn::Layer& l = net.layers()[static_cast<std::size_t>(j)];
    if (!l.on_overlay()) {
      report(r, Severity::Error, Check::OrphanProgram, p.layer.name,
             "compiled program for a host-side (EWOP-class) layer");
      continue;
    }
    if (geometry_differs(p.layer, l)) {
      report(r, Severity::Error, Check::StaleProgram, p.layer.name,
             "program geometry disagrees with the network's layer — the "
             "artifact mixes a recompiled graph with stale programs");
    }
  }
  for (const std::string& name : overlay_names) {
    const auto cnt = std::count(program_names.begin(), program_names.end(),
                                name);
    if (cnt == 0) {
      report(r, Severity::Error, Check::MissingProgram, name,
             "overlay layer has no compiled program in the schedule");
    } else if (cnt > 1) {
      report(r, Severity::Error, Check::ProgramOrderMismatch, name,
             "overlay layer is scheduled more than once");
    }
  }
  {
    // Order: the programs present must appear in network execution order.
    std::vector<std::string> expected;
    for (const std::string& name : overlay_names) {
      if (std::find(program_names.begin(), program_names.end(), name) !=
          program_names.end())
        expected.push_back(name);
    }
    std::vector<std::string> actual;
    for (const std::string& name : program_names) {
      if (std::find(overlay_names.begin(), overlay_names.end(), name) !=
          overlay_names.end())
        actual.push_back(name);
    }
    if (expected != actual &&
        std::is_permutation(expected.begin(), expected.end(), actual.begin(),
                            actual.end())) {
      report(r, Severity::Error, Check::ProgramOrderMismatch, net.name(),
             "schedule order disagrees with the network's execution order");
    }
  }

  // ---- memory family -------------------------------------------------------

  // Tensor ranges: exactly one per produced tensor (plus the input).
  std::map<std::string, const TensorPlan*> tensor_by_producer;
  for (const TensorPlan& t : mem.tensors) {
    if (!tensor_by_producer.emplace(t.producer, &t).second) {
      report(r, Severity::Error, Check::DuplicateTensorRange, t.producer,
             "two DRAM ranges planned for one tensor");
    }
  }
  auto check_range = [&](const std::string& where, const MemRange& range) {
    if (range.end() > mem.image_words) {
      report(r, Severity::Error, Check::TensorOutOfImage, where,
             strformat("range [%llu, %llu) ends beyond the %llu-word DRAM "
                       "image",
                       static_cast<unsigned long long>(range.base),
                       static_cast<unsigned long long>(range.end()),
                       static_cast<unsigned long long>(mem.image_words)));
    }
  };

  std::vector<std::string> expected_tensors{nn::kNetworkInput};
  for (const nn::Layer& l : net.layers()) expected_tensors.push_back(l.name);
  for (const std::string& name : expected_tensors) {
    auto it = tensor_by_producer.find(name);
    if (it == tensor_by_producer.end()) {
      report(r, Severity::Error, Check::MissingTensorRange, name,
             "tensor has no planned DRAM range");
      continue;
    }
    const TensorPlan& t = *it->second;
    if (t.elem_words != 1) {
      report(r, Severity::Error, Check::DtypeMismatch, name,
             strformat("%d words/element, but the int16 dataflow stores 1",
                       t.elem_words));
    }
    check_range(name, t.range);
    const std::int64_t elems =
        name == nn::kNetworkInput
            ? network_input_elems(net)
            : tensor_elems(net,
                           static_cast<std::size_t>(std::max(net.find(name), 0)));
    const std::int64_t need =
        elems * std::max(t.elem_words, 1);
    if (elems > 0 && t.range.words < static_cast<std::uint64_t>(need)) {
      report(r, Severity::Error, Check::TensorRangeUnderflow, name,
             strformat("range holds %llu words but the tensor needs %lld",
                       static_cast<unsigned long long>(t.range.words),
                       static_cast<long long>(need)));
    }
  }

  // Weight stores: one per scheduled program, sized to the layer.
  std::map<std::string, const WeightPlan*> weight_by_layer;
  for (const WeightPlan& w : mem.weights) {
    if (!weight_by_layer.emplace(w.layer, &w).second) {
      report(r, Severity::Error, Check::DuplicateTensorRange,
             "weights/" + w.layer, "two DRAM ranges planned for one store");
    }
    check_range("weights/" + w.layer, w.range);
  }
  const std::int64_t capacity =
      multifpga::device_weight_capacity(sched.config);
  for (const compiler::LayerProgram& p : sched.layers) {
    auto it = weight_by_layer.find(p.layer.name);
    if (it == weight_by_layer.end()) {
      report(r, Severity::Error, Check::MissingTensorRange,
             "weights/" + p.layer.name,
             "scheduled layer's weight store has no planned DRAM range");
    } else if (it->second->range.words !=
               static_cast<std::uint64_t>(p.layer.weight_count())) {
      report(r, Severity::Error, Check::WeightFootprintMismatch, p.layer.name,
             strformat("weight range holds %llu words but the layer has %lld",
                       static_cast<unsigned long long>(it->second->range.words),
                       static_cast<long long>(p.layer.weight_count())));
    }
    const std::int64_t resident = multifpga::resident_words(p);
    if (resident > capacity) {
      report(r, Severity::Error, Check::WbufResidencyOverflow, p.layer.name,
             strformat("one weight group needs %lld resident WBUF words but "
                       "the %dx%dx%d overlay holds %lld",
                       static_cast<long long>(resident), sched.config.d1,
                       sched.config.d2, sched.config.d3,
                       static_cast<long long>(capacity)));
    }
  }

  // Aliasing between simultaneously-live ranges. Weights are persistent;
  // activation liveness comes from the dataflow graph. Ranges of tensors
  // with disjoint lifetimes MAY alias (the planner reuses them on purpose).
  struct Entry {
    std::string label;
    MemRange range;
    Interval live;
  };
  std::vector<Entry> entries;
  for (const TensorPlan& t : mem.tensors) {
    entries.push_back(Entry{t.producer, t.range, liveness_of(net, t.producer)});
  }
  const std::int64_t always = static_cast<std::int64_t>(net.layers().size());
  for (const WeightPlan& w : mem.weights) {
    entries.push_back(
        Entry{"weights/" + w.layer, w.range, Interval{0, always}});
  }
  for (std::size_t a = 0; a < entries.size(); ++a) {
    for (std::size_t b = a + 1; b < entries.size(); ++b) {
      if (!entries[a].range.overlaps(entries[b].range)) continue;
      if (!entries[a].live.intersects(entries[b].live)) continue;
      report(r, Severity::Error, Check::TensorOverlap, entries[a].label,
             strformat("range [%llu, %llu) aliases '%s' [%llu, %llu) while "
                       "both are live",
                       static_cast<unsigned long long>(entries[a].range.base),
                       static_cast<unsigned long long>(entries[a].range.end()),
                       entries[b].label.c_str(),
                       static_cast<unsigned long long>(entries[b].range.base),
                       static_cast<unsigned long long>(entries[b].range.end())));
    }
  }

  // Out-of-image DRAM reads reconstructed from each stream's tile/stride
  // configuration: the words a layer's launches will fetch must fit the
  // producer tensor's planned range.
  for (const compiler::LayerProgram& p : sched.layers) {
    const int j = net.find(p.layer.name);
    if (j < 0) continue;
    const std::vector<std::string> inputs =
        net.resolved_inputs(static_cast<std::size_t>(j));
    if (inputs.empty()) continue;
    auto it = tensor_by_producer.find(inputs.front());
    if (it == tensor_by_producer.end()) continue;  // reported above
    const std::int64_t required = stream_act_read_words(p);
    if (required > 0 &&
        static_cast<std::uint64_t>(required) > it->second->range.words) {
      report(r, Severity::Error, Check::DramOverread, p.layer.name,
             strformat("stream's tile/stride configuration reads %lld words "
                       "of '%s' but its DRAM range holds %llu",
                       static_cast<long long>(required),
                       inputs.front().c_str(),
                       static_cast<unsigned long long>(
                           it->second->range.words)));
    }
  }

  obs::count("analyze/networks_analyzed");
  obs::count("analyze/diagnostics",
             static_cast<std::int64_t>(r.diagnostics.size()));
  return r;
}

AnalysisResult analyze_partition(const compiler::NetworkSchedule& schedule,
                                 const multifpga::MultiFpgaPlan& plan) {
  obs::ScopedSpan span("analyze", "analyze_partition",
                       {{"network", schedule.network_name}});
  AnalysisResult r;
  const std::size_t n = schedule.layers.size();
  if (plan.stages.empty()) {
    report(r, Severity::Error, Check::StageCoverage, "",
           "plan has no stages");
    return r;
  }

  const std::int64_t capacity =
      multifpga::device_weight_capacity(schedule.config);
  std::size_t expect_first = 0;
  for (std::size_t s = 0; s < plan.stages.size(); ++s) {
    const multifpga::StagePlan& st = plan.stages[s];
    const std::string where = "stage " + std::to_string(s);

    if (st.first_layer != expect_first || st.last_layer < st.first_layer ||
        st.last_layer >= n) {
      report(r, Severity::Error, Check::StageCoverage, where,
             strformat("covers layers [%zu, %zu] but the pipeline is at "
                       "layer %zu of %zu — stages must tile the schedule "
                       "contiguously",
                       st.first_layer, st.last_layer, expect_first, n));
      return r;  // downstream per-stage sums would all be noise
    }
    expect_first = st.last_layer + 1;

    std::int64_t cycles = 0, words = 0;
    for (std::size_t i = st.first_layer; i <= st.last_layer; ++i) {
      const compiler::LayerProgram& p = schedule.layers[i];
      cycles += p.total_cycles() * p.layer.repeat;
      words += multifpga::resident_words(p);
    }
    if (cycles != st.cycles) {
      report(r, Severity::Error, Check::StageCostMismatch, where,
             strformat("stage claims %lld cycles but its layers sum to %lld",
                       static_cast<long long>(st.cycles),
                       static_cast<long long>(cycles)));
    }
    if (words != st.resident_weight_words) {
      report(r, Severity::Error, Check::StageResidencyMismatch, where,
             strformat("stage claims %lld resident weight words but its "
                       "layers sum to %lld",
                       static_cast<long long>(st.resident_weight_words),
                       static_cast<long long>(words)));
    }
    if (plan.weights_resident && words > capacity) {
      report(r, Severity::Error, Check::StageResidencyOverflow, where,
             strformat("plan claims full residency but the stage needs %lld "
                       "of %lld device WBUF words",
                       static_cast<long long>(words),
                       static_cast<long long>(capacity)));
    }

    // Every cut edge ships exactly the boundary layer's activation tensor
    // (2 bytes per int16 element); the final stage ships nothing.
    const bool last_stage = s + 1 == plan.stages.size();
    const double expected_egress =
        last_stage
            ? 0.0
            : 2.0 * double(schedule.layers[st.last_layer].layer.out_elems());
    if (st.egress_bytes != expected_egress) {
      report(r, Severity::Error, Check::CutTransferMismatch, where,
             strformat("cut edge ships %.0f bytes but the boundary tensor "
                       "is %.0f bytes",
                       st.egress_bytes, expected_egress));
    }
  }
  if (expect_first != n) {
    report(r, Severity::Error, Check::StageCoverage, "",
           strformat("stages cover %zu of %zu scheduled layers",
                     expect_first, n));
  }
  obs::count("analyze/partitions_analyzed");
  return r;
}

void assert_network_analyzed(const ScheduledNetwork& sn) {
  const AnalysisResult r = analyze_network(sn);
  if (const Diagnostic* d = r.first_error()) {
    throw InternalError("network-level static analysis failed: " +
                        d->to_string());
  }
}

}  // namespace ftdl::analyze
