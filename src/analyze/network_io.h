// Whole-network deployment bundles: save/load a ScheduledNetwork.
//
// The per-layer `.ftdlprog` format (compiler/program_io.h) ships one
// stream; a deployment ships the whole artifact — the dataflow graph, the
// DRAM memory plan, and every compiled layer program — as one `ftdl-network
// v1` text bundle. The header section is line-based key=value like the
// program format; the programs follow verbatim as embedded `ftdl-program
// v1` sections delimited by `%% program <k>` lines, so a bundle is
// self-contained and human-diffable.
//
// Loading is the untrusted path the ROADMAP's persistent program cache and
// multi-tenant serving will lean on, so it re-validates everything:
// deserialize_program re-runs the analytical model and the per-stream
// verifier on every embedded program, then deserialize_network runs the
// whole-network analyzer (analyze.h) and throws ftdl::ConfigError carrying
// the first network-level diagnostic. parse_network_bundle stops after the
// per-program checks for tools (ftdl-lint --network) that want to report
// ALL network-level diagnostics instead of throwing on the first.
#pragma once

#include <string>

#include "analyze/analyze.h"

namespace ftdl::analyze {

/// Serializes a scheduled network to its `ftdl-network v1` text form.
std::string serialize_network(const ScheduledNetwork& sn);

/// Parses a bundle and re-validates every embedded program against
/// `config` (analytical model + per-stream verification — exactly what
/// compiler::deserialize_program does). Throws ftdl::Error on format
/// problems and ftdl::ConfigError on per-program semantic mismatches; does
/// NOT run the network-level analyzer.
ScheduledNetwork parse_network_bundle(const std::string& text,
                                      const arch::OverlayConfig& config);

/// parse_network_bundle + analyze_network: the full untrusted-load gate.
/// Any network-level error diagnostic becomes a ftdl::ConfigError.
ScheduledNetwork deserialize_network(const std::string& text,
                                     const arch::OverlayConfig& config);

/// File convenience wrappers (load_network = deserialize_network).
void save_network(const ScheduledNetwork& sn, const std::string& path);
ScheduledNetwork load_network(const std::string& path,
                              const arch::OverlayConfig& config);

}  // namespace ftdl::analyze
