#include "capi/ftdl_c.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "frontend/spec_parser.h"
#include "ftdl/framework.h"
#include "nn/model_zoo.h"

namespace {

void write_err(char* err, size_t err_len, const std::string& msg) {
  if (!err || err_len == 0) return;
  const size_t n = std::min(err_len - 1, msg.size());
  std::memcpy(err, msg.data(), n);
  err[n] = '\0';
}

void fill_report(const ftdl::NetworkReport& r, ftdl_report* out) {
  out->fps = r.fps();
  out->hardware_efficiency = r.schedule.hardware_efficiency;
  out->power_watts = r.power.total_w();
  out->gops_per_watt = r.gops_per_w();
  out->total_cycles = r.schedule.total_cycles;
  out->overlay_layers = static_cast<int>(r.schedule.layers.size());
}

}  // namespace

struct ftdl_framework {
  ftdl::Framework fw;
  explicit ftdl_framework(ftdl::FrameworkOptions opts) : fw(std::move(opts)) {}
};

extern "C" {

const char* ftdl_version(void) { return "ftdl 1.0 (DAC'20 reproduction)"; }

ftdl_framework* ftdl_framework_create(const char* device, int d1, int d2,
                                      int d3, double clk_mhz, char* err,
                                      size_t err_len) {
  try {
    ftdl::FrameworkOptions opts;
    if (device && *device) opts.device_name = device;
    if (d1 > 0) {
      opts.config.d1 = d1;
      opts.config.d2 = d2;
      opts.config.d3 = d3;
    }
    if (clk_mhz > 0) {
      opts.config.clocks = ftdl::fpga::ClockPair::from_high(clk_mhz * 1e6);
    }
    return new ftdl_framework(std::move(opts));
  } catch (const std::exception& e) {
    write_err(err, err_len, e.what());
    return nullptr;
  }
}

void ftdl_framework_destroy(ftdl_framework* fw) { delete fw; }

int ftdl_evaluate_model(ftdl_framework* fw, const char* model_name,
                        long long budget, ftdl_report* out, char* err,
                        size_t err_len) {
  if (!fw || !model_name || !out) {
    write_err(err, err_len, "null argument");
    return -1;
  }
  try {
    ftdl::FrameworkOptions opts = fw->fw.options();
    opts.search_budget_per_layer = budget > 0 ? budget : 20'000;
    ftdl::Framework scoped{std::move(opts)};
    fill_report(scoped.evaluate(ftdl::nn::model_by_name(model_name)), out);
    return 0;
  } catch (const std::exception& e) {
    write_err(err, err_len, e.what());
    return -1;
  }
}

int ftdl_evaluate_spec(ftdl_framework* fw, const char* spec_text,
                       long long budget, ftdl_report* out, char* err,
                       size_t err_len) {
  if (!fw || !spec_text || !out) {
    write_err(err, err_len, "null argument");
    return -1;
  }
  try {
    const ftdl::nn::Network net =
        ftdl::frontend::parse_network_spec(spec_text);
    ftdl::FrameworkOptions opts = fw->fw.options();
    opts.search_budget_per_layer = budget > 0 ? budget : 20'000;
    ftdl::Framework scoped{std::move(opts)};
    fill_report(scoped.evaluate(net), out);
    return 0;
  } catch (const std::exception& e) {
    write_err(err, err_len, e.what());
    return -1;
  }
}

double ftdl_fmax_mhz(const ftdl_framework* fw) {
  return fw ? fw->fw.timing().clk_h_fmax_hz / 1e6 : 0.0;
}

}  // extern "C"
