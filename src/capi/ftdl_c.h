/* ftdl_c.h — C API of the FTDL framework.
 *
 * A minimal, stable-ABI surface for non-C++ consumers (FFI bindings,
 * embedding in C tools): create a framework on a device + overlay shape,
 * evaluate a zoo model or a network-spec string, read back the headline
 * numbers. All functions return 0 on success and -1 on failure, writing a
 * NUL-terminated message into the caller's error buffer.
 */
#ifndef FTDL_C_H
#define FTDL_C_H

#include <stddef.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct ftdl_framework ftdl_framework;

typedef struct ftdl_report {
  double fps;
  double hardware_efficiency; /* 0..1 */
  double power_watts;
  double gops_per_watt;
  long long total_cycles;
  int overlay_layers;
} ftdl_report;

/* Library version string, e.g. "ftdl 1.0 (DAC'20 reproduction)". */
const char* ftdl_version(void);

/* Creates a framework on `device` (e.g. "xcvu125") with overlay shape
 * (d1, d2, d3) at clk_mhz (CLKh). Pass d1 = 0 to use the paper defaults
 * (12 x 5 x 20 at 650 MHz). Returns NULL on failure. */
ftdl_framework* ftdl_framework_create(const char* device, int d1, int d2,
                                      int d3, double clk_mhz, char* err,
                                      size_t err_len);

void ftdl_framework_destroy(ftdl_framework* fw);

/* Evaluates a model-zoo network by name ("GoogLeNet", "ResNet50",
 * "AlphaGoZero", "Sentimental-seqCNN", "Sentimental-seqLSTM",
 * "MobileNetV1") with `budget` mapping-search candidates per layer. */
int ftdl_evaluate_model(ftdl_framework* fw, const char* model_name,
                        long long budget, ftdl_report* out, char* err,
                        size_t err_len);

/* Parses a network-spec string (the ftdlc grammar) and evaluates it. */
int ftdl_evaluate_spec(ftdl_framework* fw, const char* spec_text,
                       long long budget, ftdl_report* out, char* err,
                       size_t err_len);

/* Post-place-and-route fmax of the created overlay, in MHz. */
double ftdl_fmax_mhz(const ftdl_framework* fw);

#ifdef __cplusplus
}
#endif

#endif /* FTDL_C_H */
