// Distance-based post-place-and-route delay model.
//
// Delays are composed as: source clock-to-out + LUT levels + routed wire
// delay (linear in Manhattan length, inflated by a congestion factor that
// grows with device utilization) + destination setup. The coefficients are
// calibrated per family against the datasheet numbers the paper quotes
// (DSP/CLB ~740 MHz, BRAM ~528 MHz) and against the paper's observed
// post-P&R plateaus (>620 MHz Virtex-7, >650 MHz UltraScale).
#pragma once

#include "fpga/device.h"
#include "timing/net.h"

namespace ftdl::timing {

/// Family-specific delay coefficients (picoseconds / micrometres).
struct DelayParams {
  double route_ps_per_um = 0.0;   ///< wire delay slope
  double route_base_ps = 0.0;     ///< fixed switch-box entry/exit cost per hop
  double ff_clk_to_q_ps = 0.0;
  double ff_setup_ps = 0.0;
  double lut_level_ps = 0.0;      ///< one LUT + local route
  double bram_clk_to_q_ps = 0.0;  ///< with output register enabled
  double lutram_clk_to_q_ps = 0.0;
  double dsp_input_mux_ps = 0.0;  ///< double-pump operand mux in front of DSP
  double dsp_cascade_ps = 0.0;    ///< dedicated PCOUT->PCIN hop, no fabric route
  double dsp_setup_ps = 0.0;
  double congestion_coef = 0.0;   ///< route inflation at 100% utilization

  static DelayParams for_family(fpga::Family family);
};

/// Path delay of one representative net in picoseconds, at the given device
/// utilization in [0,1]. For pipelined nets the returned value is the
/// per-stage (i.e. timing-binding) delay.
double net_delay_ps(const Net& net, const DelayParams& p, double utilization);

}  // namespace ftdl::timing
