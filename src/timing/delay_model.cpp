#include "timing/delay_model.h"

#include "common/error.h"

namespace ftdl::timing {

DelayParams DelayParams::for_family(fpga::Family family) {
  // Calibration: the coefficients reproduce (i) the datasheet primitive
  // ceilings quoted by the paper, (ii) the Fig. 6 post-P&R plateaus
  // (Virtex-7 > 620 MHz, UltraScale > 650 MHz at full device utilization),
  // and (iii) the sub-250 MHz figures typical of boundary-fed designs that
  // the paper's introduction cites.
  switch (family) {
    case fpga::Family::Virtex7:
      return DelayParams{
          .route_ps_per_um = 0.58,
          .route_base_ps = 90.0,
          .ff_clk_to_q_ps = 350.0,
          .ff_setup_ps = 150.0,
          .lut_level_ps = 250.0,
          .bram_clk_to_q_ps = 630.0,
          .lutram_clk_to_q_ps = 450.0,
          .dsp_input_mux_ps = 200.0,
          .dsp_cascade_ps = 1060.0,
          .dsp_setup_ps = 170.0,
          .congestion_coef = 0.18,
      };
    case fpga::Family::UltraScale:
      return DelayParams{
          .route_ps_per_um = 0.46,
          .route_base_ps = 80.0,
          .ff_clk_to_q_ps = 300.0,
          .ff_setup_ps = 130.0,
          .lut_level_ps = 210.0,
          .bram_clk_to_q_ps = 560.0,
          .lutram_clk_to_q_ps = 380.0,
          .dsp_input_mux_ps = 170.0,
          .dsp_cascade_ps = 950.0,
          .dsp_setup_ps = 150.0,
          .congestion_coef = 0.15,
      };
  }
  throw InternalError("unknown family");
}

namespace {

/// Routed wire delay over `length_um` with congestion inflation.
double route_ps(double length_um, const DelayParams& p, double utilization) {
  const double congestion = 1.0 + p.congestion_coef * utilization;
  return p.route_base_ps + length_um * p.route_ps_per_um * congestion;
}

/// Source clock-to-out delay by net class.
double source_q_ps(NetKind kind, const DelayParams& p) {
  switch (kind) {
    case NetKind::WeightFetch:
      return p.bram_clk_to_q_ps;
    case NetKind::ActFetch:
      return p.lutram_clk_to_q_ps;
    default:
      return p.ff_clk_to_q_ps;
  }
}

/// Destination setup delay by net class.
double dest_setup_ps(NetKind kind, const DelayParams& p) {
  switch (kind) {
    case NetKind::WeightFetch:
    case NetKind::ActFetch:
    case NetKind::DspInputMux:
      return p.dsp_setup_ps;
    default:
      return p.ff_setup_ps;
  }
}

}  // namespace

double net_delay_ps(const Net& net, const DelayParams& p, double utilization) {
  FTDL_ASSERT(net.pipeline_stages >= 1);
  FTDL_ASSERT(utilization >= 0.0 && utilization <= 1.0);

  if (net.kind == NetKind::DspCascade) {
    // Dedicated silicon: no fabric routing, no congestion exposure.
    return p.dsp_cascade_ps;
  }

  // Pipeline registers split the route into equal segments; the binding
  // delay is one segment (source q + segment route + LUT levels + setup).
  const double seg_len = net.length_um / net.pipeline_stages;
  double delay = source_q_ps(net.kind, p) + route_ps(seg_len, p, utilization) +
                 dest_setup_ps(net.kind, p);
  delay += net.lut_levels * p.lut_level_ps;

  // Operand-select mux of the double pump sits in front of the DSP register.
  if (net.kind == NetKind::ActFetch || net.kind == NetKind::DspInputMux) {
    delay += p.dsp_input_mux_ps;
  }
  return delay;
}

const char* to_string(NetKind k) {
  switch (k) {
    case NetKind::DspInternal: return "dsp-internal";
    case NetKind::DspInputMux: return "dsp-input-mux";
    case NetKind::WeightFetch: return "weight-fetch";
    case NetKind::ActFetch: return "act-fetch";
    case NetKind::DspCascade: return "dsp-cascade";
    case NetKind::PsumWriteback: return "psum-writeback";
    case NetKind::ControlHop: return "control-hop";
    case NetKind::ActBusHop: return "actbus-hop";
    case NetKind::PsumBusHop: return "psumbus-hop";
    case NetKind::BramInternal: return "bram-internal";
    case NetKind::SystolicPeLink: return "systolic-pe-link";
    case NetKind::SystolicMemFeed: return "systolic-mem-feed";
    case NetKind::SystolicDrain: return "systolic-drain";
  }
  return "?";
}

}  // namespace ftdl::timing
