// Scale-up study driver (Fig. 6 and the layout ablation).
//
// Generates the seven scale-up configurations evaluated per device (growing
// D2 toward 100% DSP-column usage at fixed D1 x D3 = full column height),
// runs placement + timing for the FTDL overlay and for the boundary-fed
// systolic baseline at the same DSP count, and returns one row per point.
#pragma once

#include <string>
#include <vector>

#include "fpga/device.h"
#include "timing/timing_analyzer.h"

namespace ftdl::timing {

struct ScalePoint {
  OverlayGeometry geometry;        ///< FTDL shape at this scale
  int tpes = 0;
  double dsp_utilization = 0.0;
  double bram_utilization = 0.0;
  TimingReport ftdl;               ///< double-pumped overlay timing
  TimingReport systolic;           ///< baseline at the same PE count
};

/// The per-device scale-up sweep. `points` configurations are generated
/// (default 7, as in Fig. 6), the last one using 100% of the DSPs.
std::vector<ScalePoint> run_scaling_study(const fpga::Device& device,
                                          int points = 7);

/// The seven overlay geometries for a device without running timing
/// (exposed so benches/tests can reuse the exact Fig. 6 configurations).
std::vector<OverlayGeometry> scaling_geometries(const fpga::Device& device,
                                                int points = 7);

}  // namespace ftdl::timing
