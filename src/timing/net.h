// Net taxonomy of the placed overlay.
//
// The timing model does not route individual wires; instead the placement
// step enumerates the *worst-case representative net* of each structural
// class (the timing-critical one), and static timing analysis takes the max
// over classes per clock domain. This mirrors how the paper argues about
// timing: every net class of the FTDL overlay has O(1) length in design
// scale, while the boundary-fed baseline has nets that grow with scale.
#pragma once

namespace ftdl::timing {

enum class NetKind {
  DspInternal,       ///< registered multiply-accumulate path inside the DSP
  DspInputMux,       ///< double-pump operand select in front of the DSP
  WeightFetch,       ///< WBUF BRAM -> DSP B-operand (crosses CLKl -> CLKh)
  ActFetch,          ///< ActBUF LUTRAM -> DSP A-operand
  DspCascade,        ///< dedicated PCOUT->PCIN chain between stacked DSPs
  PsumWriteback,     ///< last TPE -> PSumBUF BRAM write
  ControlHop,        ///< pipelined controller broadcast between SuperBlocks
  ActBusHop,         ///< pipelined ActBUS spine segment
  PsumBusHop,        ///< vertical PSumBUS segment between SuperBlocks (CLKl)
  BramInternal,      ///< BRAM array access path (bounds CLKl)
  SystolicPeLink,    ///< baseline: PE-to-PE link of a systolic array
  SystolicMemFeed,   ///< baseline: BRAM bank -> boundary PE feed
  SystolicDrain,     ///< baseline: accumulator drain from array to memory
};

const char* to_string(NetKind k);

/// Which clock the net's endpoints run on.
enum class ClockDomain {
  High,  ///< CLKh (DSP, LUTRAM, control)
  Low,   ///< CLKl (BRAM side)
};

/// One representative net with its physical route length and the number of
/// pipeline register stages the designer inserted along it (stage count 1
/// means a plain reg-to-reg path).
struct Net {
  NetKind kind{};
  ClockDomain domain = ClockDomain::High;
  double length_um = 0.0;
  int pipeline_stages = 1;
  int lut_levels = 0;  ///< combinational LUT levels on the path (decoders etc.)
};

}  // namespace ftdl::timing
