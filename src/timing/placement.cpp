#include "timing/placement.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/str_util.h"

namespace ftdl::timing {

double PlacementResult::utilization() const {
  // DSP occupancy dominates routing pressure for MACC-dense designs; BRAM
  // occupancy contributes through the weight/psum fetch wiring.
  return std::clamp(0.7 * dsp_utilization + 0.3 * bram_utilization, 0.0, 1.0);
}

int auto_pipeline_stages(double length_um) {
  const int stages = static_cast<int>(std::ceil(length_um / 700.0));
  return std::clamp(stages, 1, 4);
}

PlacementResult place_ftdl(const fpga::Device& device, const OverlayGeometry& g) {
  if (g.d1 <= 0 || g.d2 <= 0 || g.d3 <= 0)
    throw ConfigError("overlay extents must be positive");
  if (g.d2 > device.dsp_columns)
    throw ConfigError(strformat("D2=%d exceeds %d DSP columns on %s", g.d2,
                                device.dsp_columns, device.name.c_str()));
  if (g.d1 * g.d3 > device.dsp_per_column)
    throw ConfigError(strformat("D1*D3=%d exceeds %d DSPs per column on %s",
                                g.d1 * g.d3, device.dsp_per_column,
                                device.name.c_str()));

  // One BRAM18 (WBUF) per TPE + PSumBUF BRAMs per SuperBlock.
  const int bram_needed =
      g.tpes() + g.superblocks() * g.psum_bram18_per_superblock;
  if (bram_needed > device.total_bram18())
    throw ConfigError(strformat("overlay needs %d BRAM18 but %s has %d",
                                bram_needed, device.name.c_str(),
                                device.total_bram18()));

  PlacementResult r;
  r.dsp_utilization = double(g.tpes()) / device.total_dsp();
  r.bram_utilization = double(bram_needed) / device.total_bram18();
  r.dsp_columns_used = g.d2;
  // ActBUF LUTRAM + control + pipeline registers; ~14 CLBs per TPE plus a
  // controller block per SuperBlock row.
  r.clbs_used = 14L * g.tpes() + 80L * g.d3;

  // Use the D2 DSP columns closest to the die centre (the mapper groups the
  // overlay compactly); the worst WBUF fetch is the used DSP column that is
  // farthest from its nearest BRAM column.
  const int first_col = std::max(0, (device.dsp_columns - g.d2) / 2);
  double worst_weight_um = 0.0;
  for (int c = first_col; c < first_col + g.d2; ++c) {
    const int b = device.nearest_bram_column(c);
    const double dx =
        std::abs(device.dsp_col_x_um(c) - device.bram_col_x_um(b));
    worst_weight_um = std::max(worst_weight_um, dx);
  }
  // Vertical offset: a TPE's WBUF sits within a few BRAM rows of its DSP.
  // Vendor fabrics interleave BRAM columns within a few pitches of every DSP
  // column (the uniform-spread abstraction of Device overestimates on parts
  // with few, tall columns), and the TPE macro constrains the mapper to pick
  // the local BRAM — so the fetch is capped at a handful of column pitches.
  const double bram_y_pitch = device.die_height_um() / device.bram18_per_column;
  const double weight_len =
      std::min(worst_weight_um, 4.0 * device.col_pitch_um) + 2.0 * bram_y_pitch;

  const double dsp_y_pitch = device.die_height_um() / device.dsp_per_column;
  const double dsp_col_spacing = device.die_width_um() / device.dsp_columns;

  auto add = [&r](NetKind kind, ClockDomain dom, double len, int stages,
                  int luts) {
    r.nets.push_back(Net{kind, dom, len, stages, luts});
  };

  // Intra-TPE nets: O(1) length regardless of design scale — the heart of
  // the layout-aware argument.
  add(NetKind::WeightFetch, ClockDomain::High, weight_len, 1, 0);
  add(NetKind::ActFetch, ClockDomain::High, 3.0 * device.col_pitch_um, 1, 0);
  add(NetKind::PsumWriteback, ClockDomain::High, weight_len, 1, 0);

  // Cascade between vertically adjacent DSPs: dedicated wiring.
  add(NetKind::DspCascade, ClockDomain::High, dsp_y_pitch, 1, 0);

  // Control broadcast: one pipelined hop per SuperBlock column (Fig. 2);
  // hop length = spacing between adjacent used DSP columns.
  add(NetKind::ControlHop, ClockDomain::High, dsp_col_spacing,
      auto_pipeline_stages(dsp_col_spacing), 1);
  add(NetKind::ActBusHop, ClockDomain::High, dsp_col_spacing,
      auto_pipeline_stages(dsp_col_spacing), 0);

  // PSumBUS: vertical hop spanning one SuperBlock (D1 TPEs) on CLKl.
  const double psum_hop = g.d1 * dsp_y_pitch;
  add(NetKind::PsumBusHop, ClockDomain::Low, psum_hop,
      auto_pipeline_stages(psum_hop), 0);

  return r;
}

PlacementResult place_systolic(const fpga::Device& device, int rows, int cols) {
  if (rows <= 0 || cols <= 0) throw ConfigError("systolic extents must be positive");
  if (cols > device.dsp_columns)
    throw ConfigError(strformat("systolic cols=%d exceeds %d DSP columns", cols,
                                device.dsp_columns));
  if (rows > device.dsp_per_column)
    throw ConfigError(strformat("systolic rows=%d exceeds %d DSPs per column",
                                rows, device.dsp_per_column));

  PlacementResult r;
  const int pes = rows * cols;
  r.dsp_utilization = double(pes) / device.total_dsp();
  // The baseline also keeps weights on chip; BRAM demand mirrors FTDL's.
  r.bram_utilization =
      std::min(1.0, double(pes) / device.total_bram18());
  r.dsp_columns_used = cols;
  r.clbs_used = 22L * pes;  // PE control + accumulation fabric logic

  const double dsp_col_spacing = device.die_width_um() / device.dsp_columns;
  const double dsp_y_pitch = device.die_height_um() / device.dsp_per_column;
  const double array_width = cols * dsp_col_spacing;
  const double array_height = rows * dsp_y_pitch;

  auto add = [&r](NetKind kind, ClockDomain dom, double len, int stages,
                  int luts) {
    r.nets.push_back(Net{kind, dom, len, stages, luts});
  };

  // Horizontal PE-to-PE link crosses to the neighbouring DSP column through
  // general fabric routing, with accumulate/select logic in LUTs. The
  // ASIC-oriented design assumes this is a short local wire, so it is not
  // pipelined — the architecture-layout mismatch.
  add(NetKind::SystolicPeLink, ClockDomain::High, dsp_col_spacing, 1, 2);

  // Memory feed: BRAM banks sit at the array boundary, so the feed net
  // spans from the BRAM region to the array interior and grows with the
  // array extent. Designers typically afford a single re-timing register.
  const double feed_len = device.die_width_um() / 8.0 + array_width / 2.0 +
                          array_height / 4.0;
  add(NetKind::SystolicMemFeed, ClockDomain::High, feed_len, 2, 1);

  // Result drain from the far edge of the array back to memory.
  const double drain_len = array_height / 2.0 + device.die_width_um() / 8.0;
  add(NetKind::SystolicDrain, ClockDomain::High, drain_len, 2, 1);

  // Single-clock design: the BRAMs run on the same clock as the PEs, so the
  // BRAM array access is a High-domain constraint here (no double pump).
  add(NetKind::BramInternal, ClockDomain::High, 0.0, 1, 0);

  return r;
}

}  // namespace ftdl::timing
