// Vivado-style text timing report for a placed overlay.
//
// Lists every representative net class with its path delay, clock domain,
// pipeline depth and slack against the target clock pair, plus the resource
// utilization summary — the artifact a hardware engineer would skim after
// place-and-route.
#pragma once

#include <string>

#include "fpga/clocking.h"
#include "timing/timing_analyzer.h"

namespace ftdl::timing {

/// Renders a full report for an FTDL placement at `target` clocks.
/// The report never throws on negative slack — failing paths are marked
/// "(VIOLATED)" the way vendor tools do.
std::string render_timing_report(const fpga::Device& device,
                                 const OverlayGeometry& geometry,
                                 const fpga::ClockPair& target);

}  // namespace ftdl::timing
