// Static timing analysis over the representative nets of a placement.
//
// Produces the achievable CLKh / CLKl of the double-pumped overlay (or the
// single achievable clock of the baseline), plus the critical path and the
// net class that binds it — the data behind Fig. 6.
#pragma once

#include "fpga/device.h"
#include "timing/delay_model.h"
#include "timing/placement.h"

namespace ftdl::timing {

struct TimingReport {
  double clk_h_fmax_hz = 0.0;      ///< achievable fast clock
  double clk_l_fmax_hz = 0.0;      ///< achievable slow (BRAM) clock
  double critical_path_ps = 0.0;   ///< binding path delay
  NetKind critical_net{};          ///< class of the binding path
  ClockDomain critical_domain = ClockDomain::High;
  double utilization = 0.0;        ///< routing-pressure proxy used

  /// clk_h as a fraction of the theoretical DSP fmax (the paper's >88% metric).
  double fraction_of_dsp_fmax(const fpga::Device& d) const {
    return clk_h_fmax_hz / d.timing.dsp_fmax_hz;
  }
};

/// Analyzes a double-pumped FTDL placement: CLKh bound by High-domain paths
/// and by 2x the Low-domain bound.
TimingReport analyze_double_pump(const fpga::Device& device,
                                 const PlacementResult& placement);

/// Analyzes a single-clock design (the systolic baseline): every path,
/// including BRAM access, must meet the one clock; clk_l == clk_h.
TimingReport analyze_single_clock(const fpga::Device& device,
                                  const PlacementResult& placement);

}  // namespace ftdl::timing
