// Placement of an overlay (or the baseline systolic array) onto a device.
//
// FTDL placement (Sec. III-A1): each TPE groups one DSP, one BRAM18 and a
// handful of CLBs in a local fabric area; D2 SuperBlock columns occupy D2
// adjacent DSP columns around the die centre, each holding D1 x D3 TPEs.
// The placement emits the worst-case representative net of every class
// together with resource-utilization figures.
//
// Baseline placement: an ASIC-style output/weight-stationary systolic array
// whose activation and weight memories sit at the array boundary — the
// architecture-layout mismatch the paper's introduction describes. Its
// memory-feed nets grow with array extent.
#pragma once

#include <vector>

#include "fpga/device.h"
#include "timing/net.h"

namespace ftdl::timing {

/// Overlay shape as seen by the physical model (the full OverlayConfig
/// lives in src/arch; timing only needs the spatial extents).
struct OverlayGeometry {
  int d1 = 0;  ///< TPEs per SuperBlock (cascade length)
  int d2 = 0;  ///< SuperBlock columns
  int d3 = 0;  ///< SuperBlock rows
  int psum_bram18_per_superblock = 2;

  int tpes() const { return d1 * d2 * d3; }
  int superblocks() const { return d2 * d3; }
};

/// Result of placing a design: representative nets + utilization.
struct PlacementResult {
  std::vector<Net> nets;
  double dsp_utilization = 0.0;    ///< fraction of device DSPs in use
  double bram_utilization = 0.0;   ///< fraction of device BRAM18s in use
  long clbs_used = 0;
  int dsp_columns_used = 0;

  /// Overall routing-pressure proxy used for congestion inflation.
  double utilization() const;
};

/// Places the FTDL overlay. Throws ftdl::ConfigError if the shape does not
/// fit the device (D2 exceeding DSP columns, D1*D3 exceeding column height,
/// or BRAM demand exceeding the device).
PlacementResult place_ftdl(const fpga::Device& device, const OverlayGeometry& g);

/// Places the baseline systolic array with `rows` x `cols` PEs (one PE per
/// DSP; cols maps to DSP columns). Memories at the array boundary.
PlacementResult place_systolic(const fpga::Device& device, int rows, int cols);

/// Auto pipeline depth for a long broadcast/spine net: one register every
/// ~700 um, between 1 and 4 stages (the pipeline registers of Fig. 2).
int auto_pipeline_stages(double length_um);

}  // namespace ftdl::timing
