#include "timing/timing_report.h"

#include "common/str_util.h"
#include "common/table.h"
#include "timing/delay_model.h"
#include "timing/placement.h"

namespace ftdl::timing {

std::string render_timing_report(const fpga::Device& device,
                                 const OverlayGeometry& geometry,
                                 const fpga::ClockPair& target) {
  const PlacementResult placement = place_ftdl(device, geometry);
  const TimingReport sta = analyze_double_pump(device, placement);
  const DelayParams params = DelayParams::for_family(device.family);
  const double util = placement.utilization();

  std::string out;
  out += strformat("Timing report: FTDL %dx%dx%d on %s (%s)\n", geometry.d1,
                   geometry.d2, geometry.d3, device.name.c_str(),
                   to_string(device.family));
  out += strformat("Target clocks: CLKh %s / CLKl %s | post-P&R fmax: %s\n",
                   format_hz(target.clk_h_hz).c_str(),
                   format_hz(target.clk_l_hz).c_str(),
                   format_hz(sta.clk_h_fmax_hz).c_str());
  out += strformat("Routing pressure: %.0f%% (congestion factor %.3f)\n\n",
                   100.0 * util, 1.0 + params.congestion_coef * util);

  // Per-net table, including the implicit primitive paths the analyzer adds.
  std::vector<Net> nets = placement.nets;
  nets.push_back(Net{NetKind::DspInternal, ClockDomain::High, 0.0, 1, 0});
  nets.push_back(Net{NetKind::BramInternal, ClockDomain::Low, 0.0, 1, 0});

  AsciiTable table({"Net class", "Clock", "Length (um)", "Stages", "Delay (ps)",
                    "Period (ps)", "Slack (ps)"});
  for (const Net& n : nets) {
    double delay_ps;
    switch (n.kind) {
      case NetKind::BramInternal:
        delay_ps = 1e12 / device.timing.bram_fmax_hz;
        break;
      case NetKind::DspInternal:
        delay_ps = 1e12 / device.timing.dsp_fmax_hz +
                   params.dsp_input_mux_ps * (1.0 + params.congestion_coef * util);
        break;
      default:
        delay_ps = net_delay_ps(n, params, util);
    }
    const double period_ps =
        1e12 / (n.domain == ClockDomain::High ? target.clk_h_hz
                                              : target.clk_l_hz);
    const double slack = period_ps - delay_ps;
    table.row({to_string(n.kind),
               n.domain == ClockDomain::High ? "CLKh" : "CLKl",
               strformat("%.0f", n.length_um), std::to_string(n.pipeline_stages),
               strformat("%.0f", delay_ps), strformat("%.0f", period_ps),
               strformat("%.0f%s", slack, slack < 0 ? " (VIOLATED)" : "")});
  }
  out += table.render();

  out += strformat(
      "\nCritical path: %s (%s domain), %.0f ps\n",
      to_string(sta.critical_net),
      sta.critical_domain == ClockDomain::High ? "CLKh" : "CLKl",
      sta.critical_path_ps);
  out += strformat(
      "Utilization: DSP %.1f%% (%d TPEs), BRAM18 %.1f%%, ~%ld CLBs\n",
      100.0 * placement.dsp_utilization, geometry.tpes(),
      100.0 * placement.bram_utilization, placement.clbs_used);
  out += strformat("Timing %s at the target clocks.\n",
                   target.clk_h_hz <= sta.clk_h_fmax_hz + 1.0 ? "MET"
                                                              : "NOT MET");
  return out;
}

}  // namespace ftdl::timing
