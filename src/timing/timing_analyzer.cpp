#include "timing/timing_analyzer.h"

#include <algorithm>

#include "common/error.h"

namespace ftdl::timing {

namespace {

/// Path delay of a net, including the intrinsic-primitive special cases.
double path_ps(const Net& net, const fpga::Device& device, const DelayParams& p,
               double util) {
  switch (net.kind) {
    case NetKind::BramInternal:
      return 1e12 / device.timing.bram_fmax_hz;
    case NetKind::DspInternal:
      // Registered multiply-accumulate inside the DSP plus the double-pump
      // operand mux that sits in front of the input register.
      return 1e12 / device.timing.dsp_fmax_hz +
             p.dsp_input_mux_ps * (1.0 + p.congestion_coef * util);
    default:
      return net_delay_ps(net, p, util);
  }
}

struct DomainWorst {
  double ps = 0.0;
  NetKind kind{};
  bool seen = false;
};

TimingReport analyze(const fpga::Device& device, const PlacementResult& placement,
                     bool double_pump) {
  const DelayParams p = DelayParams::for_family(device.family);
  const double util = placement.utilization();

  // Every design implicitly contains the DSP MACC path and the BRAM array
  // access, even if the placement did not enumerate them.
  std::vector<Net> nets = placement.nets;
  nets.push_back(Net{NetKind::DspInternal, ClockDomain::High, 0.0, 1, 0});
  if (double_pump) {
    nets.push_back(Net{NetKind::BramInternal, ClockDomain::Low, 0.0, 1, 0});
  }

  DomainWorst high, low;
  for (const Net& n : nets) {
    const double d = path_ps(n, device, p, util);
    DomainWorst& w = (n.domain == ClockDomain::High) ? high : low;
    if (!w.seen || d > w.ps) {
      w.ps = d;
      w.kind = n.kind;
      w.seen = true;
    }
  }
  FTDL_ASSERT(high.seen);

  TimingReport r;
  r.utilization = util;

  const double fmax_from_high = 1e12 / high.ps;
  if (!double_pump) {
    r.clk_h_fmax_hz = fmax_from_high;
    r.clk_l_fmax_hz = fmax_from_high;
    r.critical_path_ps = high.ps;
    r.critical_net = high.kind;
    r.critical_domain = ClockDomain::High;
    return r;
  }

  FTDL_ASSERT(low.seen);
  const double fmax_from_low = 2.0 * (1e12 / low.ps);
  if (fmax_from_high <= fmax_from_low) {
    r.clk_h_fmax_hz = fmax_from_high;
    r.critical_path_ps = high.ps;
    r.critical_net = high.kind;
    r.critical_domain = ClockDomain::High;
  } else {
    r.clk_h_fmax_hz = fmax_from_low;
    r.critical_path_ps = low.ps;
    r.critical_net = low.kind;
    r.critical_domain = ClockDomain::Low;
  }
  r.clk_l_fmax_hz = r.clk_h_fmax_hz / 2.0;
  return r;
}

}  // namespace

TimingReport analyze_double_pump(const fpga::Device& device,
                                 const PlacementResult& placement) {
  return analyze(device, placement, /*double_pump=*/true);
}

TimingReport analyze_single_clock(const fpga::Device& device,
                                  const PlacementResult& placement) {
  return analyze(device, placement, /*double_pump=*/false);
}

}  // namespace ftdl::timing
