#include "timing/scaling_study.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/math_util.h"

namespace ftdl::timing {

std::vector<OverlayGeometry> scaling_geometries(const fpga::Device& device,
                                                int points) {
  FTDL_ASSERT(points >= 2);

  // Fill a full DSP column with D1 x D3 TPEs: pick the largest D1 <= 16 that
  // divides the column height (keeping SuperBlocks a practical cascade
  // length), then scale D2 from 1 to the full column count.
  int d1 = 0;
  for (int cand = 16; cand >= 4; --cand) {
    if (device.dsp_per_column % cand == 0) {
      d1 = cand;
      break;
    }
  }
  if (d1 == 0) d1 = 10;
  int d3 = device.dsp_per_column / d1;

  // BRAM feasibility cap: every TPE needs a WBUF BRAM18 and every
  // SuperBlock a PSumBUF; devices with a DSP:BRAM ratio above ~1 (large
  // UltraScale parts) cannot host a TPE on every DSP, so the sweep tops
  // out at the largest buildable overlay instead of 100% of the DSPs.
  OverlayGeometry probe;
  probe.d1 = d1;
  const int psum = probe.psum_bram18_per_superblock;
  const std::int64_t tpe_cap =
      device.total_bram18() * std::int64_t{d1} / (d1 + psum);
  while (d3 > 1 &&
         std::int64_t{d1} * d3 * device.dsp_columns > tpe_cap) {
    --d3;
  }

  std::vector<OverlayGeometry> out;
  for (int i = 0; i < points; ++i) {
    // Grow the TPE count toward the full device, widening D2 and deepening
    // D3 together ("scale-up fashion").
    const double frac = double(i + 1) / points;
    const double target = frac * device.total_dsp();
    OverlayGeometry g;
    g.d1 = d1;
    g.d2 = std::clamp<int>(static_cast<int>(std::ceil(frac * device.dsp_columns)),
                           1, device.dsp_columns);
    g.d3 = std::clamp<int>(
        static_cast<int>(std::lround(target / (double(d1) * g.d2))), 1, d3);
    out.push_back(g);
  }
  // The final point uses every DSP on the device (100% utilization, Fig. 6).
  out.back().d2 = device.dsp_columns;
  out.back().d3 = d3;
  return out;
}

std::vector<ScalePoint> run_scaling_study(const fpga::Device& device, int points) {
  std::vector<ScalePoint> out;
  for (const OverlayGeometry& g : scaling_geometries(device, points)) {
    ScalePoint pt;
    pt.geometry = g;
    pt.tpes = g.tpes();

    const PlacementResult ftdl_place = place_ftdl(device, g);
    pt.dsp_utilization = ftdl_place.dsp_utilization;
    pt.bram_utilization = ftdl_place.bram_utilization;
    pt.ftdl = analyze_double_pump(device, ftdl_place);

    // Baseline at the same PE count: near-square array, columns bounded by
    // the device's DSP columns.
    const int pes = g.tpes();
    int cols = std::min<int>(device.dsp_columns,
                             std::max<int>(1, static_cast<int>(std::lround(
                                                  std::sqrt(double(pes) / 24.0)))));
    int rows = std::min<int>(device.dsp_per_column, ceil_div(pes, cols));
    // Grow columns until the array holds the PE count.
    while (rows * cols < pes && cols < device.dsp_columns) {
      ++cols;
      rows = std::min<int>(device.dsp_per_column, ceil_div(pes, cols));
    }
    const PlacementResult sys_place = place_systolic(device, rows, cols);
    pt.systolic = analyze_single_clock(device, sys_place);

    out.push_back(pt);
  }
  return out;
}

}  // namespace ftdl::timing
