#include "frontend/spec_parser.h"

#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_map>

#include "common/error.h"
#include "common/str_util.h"

namespace ftdl::frontend {

namespace {

struct Shape {
  int c = 0, h = 0, w = 0;
  std::int64_t elems() const { return std::int64_t{c} * h * w; }
};

[[noreturn]] void fail(int line, const std::string& msg) {
  throw ConfigError(strformat("spec line %d: %s", line, msg.c_str()));
}

/// One statement: a keyword, a positional name, key=value options and flags.
struct Statement {
  std::string keyword;
  std::string name;
  std::unordered_map<std::string, std::string> options;

  bool flag(const std::string& f) const { return options.contains(f); }

  std::optional<std::int64_t> get_int(const std::string& key, int line) const {
    auto it = options.find(key);
    if (it == options.end()) return std::nullopt;
    try {
      return std::stoll(it->second);
    } catch (const std::exception&) {
      fail(line, "option " + key + " is not an integer: " + it->second);
    }
  }

  std::int64_t require_int(const std::string& key, int line) const {
    auto v = get_int(key, line);
    if (!v) fail(line, "missing required option " + key + "=");
    return *v;
  }
};

Statement tokenize(const std::string& line, int line_no) {
  std::istringstream in(line);
  Statement st;
  in >> st.keyword;
  std::string tok;
  bool first = true;
  while (in >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      if (first && st.keyword != "network" && st.keyword != "input") {
        st.name = tok;
      } else if (st.keyword == "network" && st.name.empty()) {
        st.name = tok;
      } else {
        st.options.emplace(tok, "");  // flag
      }
    } else {
      st.options.emplace(tok.substr(0, eq), tok.substr(eq + 1));
    }
    first = false;
  }
  // `input C H W` uses positional integers.
  if (st.keyword == "input") {
    std::istringstream again(line);
    std::string kw;
    int c = 0, h = 0, w = 0;
    again >> kw >> c >> h >> w;
    if (!again && !(c > 0 && h > 0 && w > 0))
      fail(line_no, "input expects: input C H W");
    st.options["c"] = std::to_string(c);
    st.options["h"] = std::to_string(h);
    st.options["w"] = std::to_string(w);
  }
  return st;
}

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : csv) {
    if (ch == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

class Parser {
 public:
  nn::Network parse(const std::string& text) {
    std::istringstream in(text);
    std::string raw;
    int line_no = 0;
    std::optional<nn::Network> net;

    while (std::getline(in, raw)) {
      ++line_no;
      const auto hash = raw.find('#');
      std::string line = hash == std::string::npos ? raw : raw.substr(0, hash);
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

      const Statement st = tokenize(line, line_no);
      if (st.keyword == "network") {
        if (net) fail(line_no, "duplicate network statement");
        if (st.name.empty()) fail(line_no, "network needs a name");
        net.emplace(st.name);
        continue;
      }
      if (!net) fail(line_no, "first statement must be: network NAME");

      if (st.keyword == "input") {
        if (shapes_.contains(nn::kNetworkInput))
          fail(line_no, "duplicate input statement");
        Shape s{static_cast<int>(st.require_int("c", line_no)),
                static_cast<int>(st.require_int("h", line_no)),
                static_cast<int>(st.require_int("w", line_no))};
        shapes_[nn::kNetworkInput] = s;
        continue;
      }
      if (!shapes_.contains(nn::kNetworkInput))
        fail(line_no, "input C H W must come before layers");
      if (st.name.empty()) fail(line_no, st.keyword + " needs a layer name");

      if (st.keyword == "conv") add_conv(*net, st, line_no);
      else if (st.keyword == "depthwise") add_depthwise(*net, st, line_no);
      else if (st.keyword == "pool") add_pool(*net, st, line_no);
      else if (st.keyword == "fc") add_fc(*net, st, line_no);
      else if (st.keyword == "concat") add_concat(*net, st, line_no);
      else if (st.keyword == "ewop") add_ewop(*net, st, line_no);
      else fail(line_no, "unknown statement: " + st.keyword);
    }

    if (!net) throw ConfigError("spec has no network statement");
    if (net->layers().empty()) throw ConfigError("spec defines no layers");
    net->validate_graph();
    return std::move(*net);
  }

 private:
  /// Producers of this statement: explicit from= or the last layer added.
  std::vector<std::string> producers(const nn::Network& net,
                                     const Statement& st, int line) const {
    auto it = st.options.find("from");
    if (it != st.options.end()) {
      const auto names = split_names(it->second);
      if (names.empty()) fail(line, "empty from= list");
      return names;
    }
    if (net.layers().empty()) return {nn::kNetworkInput};
    return {net.layers().back().name};
  }

  Shape shape_of(const std::string& name, int line) const {
    auto it = shapes_.find(name);
    if (it == shapes_.end()) fail(line, "unknown producer: " + name);
    return it->second;
  }

  void add_conv(nn::Network& net, const Statement& st, int line) {
    const auto from = producers(net, st, line);
    if (from.size() != 1) fail(line, "conv takes exactly one input");
    const Shape in = shape_of(from[0], line);
    const int out_c = static_cast<int>(st.require_int("out", line));
    const int k = static_cast<int>(st.get_int("k", line).value_or(3));
    const int kh = static_cast<int>(st.get_int("kh", line).value_or(k));
    const int kw = static_cast<int>(st.get_int("kw", line).value_or(k));
    const int stride = static_cast<int>(st.get_int("stride", line).value_or(1));
    const int pad = static_cast<int>(st.get_int("pad", line).value_or(0));
    nn::Layer l = nn::make_conv2(st.name, in.c, in.h, in.w, out_c, kh, kw,
                                 stride, pad, !st.flag("norelu"));
    l.input_names = from;
    shapes_[st.name] = Shape{out_c, l.out_h(), l.out_w()};
    net.add(std::move(l));
  }

  void add_depthwise(nn::Network& net, const Statement& st, int line) {
    const auto from = producers(net, st, line);
    if (from.size() != 1) fail(line, "depthwise takes exactly one input");
    const Shape in = shape_of(from[0], line);
    const int k = static_cast<int>(st.get_int("k", line).value_or(3));
    const int stride = static_cast<int>(st.get_int("stride", line).value_or(1));
    const int pad = static_cast<int>(st.get_int("pad", line).value_or(0));
    nn::Layer l = nn::make_depthwise(st.name, in.c, in.h, in.w, k, stride, pad,
                                     !st.flag("norelu"));
    l.input_names = from;
    shapes_[st.name] = Shape{in.c, l.out_h(), l.out_w()};
    net.add(std::move(l));
  }

  void add_pool(nn::Network& net, const Statement& st, int line) {
    const auto from = producers(net, st, line);
    if (from.size() != 1) fail(line, "pool takes exactly one input");
    const Shape in = shape_of(from[0], line);
    const int k = static_cast<int>(st.require_int("k", line));
    const int stride = static_cast<int>(st.get_int("stride", line).value_or(k));
    const int pad = static_cast<int>(st.get_int("pad", line).value_or(0));
    nn::Layer l = nn::make_pool(st.name, in.c, in.h, in.w, k, stride, pad);
    if (st.flag("avg")) l.pool_op = nn::PoolOp::Avg;
    l.input_names = from;
    shapes_[st.name] = Shape{in.c, l.out_h(), l.out_w()};
    net.add(std::move(l));
  }

  void add_fc(nn::Network& net, const Statement& st, int line) {
    const auto from = producers(net, st, line);
    if (from.size() != 1) fail(line, "fc takes exactly one input");
    const Shape in = shape_of(from[0], line);
    const std::int64_t out = st.require_int("out", line);
    nn::Layer l =
        nn::make_matmul(st.name, in.elems(), out, 1, st.flag("relu"));
    l.input_names = from;
    shapes_[st.name] = Shape{static_cast<int>(out), 1, 1};
    net.add(std::move(l));
  }

  void add_concat(nn::Network& net, const Statement& st, int line) {
    auto it = st.options.find("from");
    if (it == st.options.end()) fail(line, "concat requires from=A,B[,..]");
    const auto from = split_names(it->second);
    if (from.size() < 2) fail(line, "concat needs >= 2 inputs");
    int c = 0;
    const Shape first = shape_of(from[0], line);
    for (const std::string& f : from) {
      const Shape s = shape_of(f, line);
      if (s.h != first.h || s.w != first.w)
        fail(line, "concat spatial shape mismatch at " + f);
      c += s.c;
    }
    net.add(nn::make_concat(st.name, from));
    shapes_[st.name] = Shape{c, first.h, first.w};
  }

  void add_ewop(nn::Network& net, const Statement& st, int line) {
    const auto from = producers(net, st, line);
    nn::Layer l = nn::make_ewop(st.name, st.require_int("ops", line));
    l.input_names = from;
    shapes_[st.name] = shape_of(from[0], line);
    net.add(std::move(l));
  }

  std::unordered_map<std::string, Shape> shapes_;
};

}  // namespace

nn::Network parse_network_spec(const std::string& text) {
  return Parser{}.parse(text);
}

nn::Network parse_network_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open spec file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_network_spec(buf.str());
}

}  // namespace ftdl::frontend
