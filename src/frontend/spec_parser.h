// Text front-end: a line-based network description language for the ftdlc
// command-line compiler.
//
// Grammar (one statement per line; '#' starts a comment):
//
//   network NAME
//   input C H W
//   conv   NAME out=N k=K [kh=K kw=K] [stride=S] [pad=P] [norelu] [from=X]
//   depthwise NAME [k=K] [stride=S] [pad=P] [norelu] [from=X]
//   pool   NAME k=K [stride=S] [pad=P] [avg] [from=X]
//   fc     NAME out=N [relu] [from=X]
//   concat NAME from=A,B[,C...]
//   ewop   NAME ops=N [from=X]
//
// Layers chain sequentially unless `from=` names explicit producers
// (`@input` refers to the network input). Input channel counts and spatial
// extents are inferred from the producer's output shape, so a spec never
// repeats geometry.
#pragma once

#include <string>

#include "nn/network.h"

namespace ftdl::frontend {

/// Parses a network spec; throws ftdl::ConfigError with a line-numbered
/// message on any syntax or shape error. The returned network's dataflow
/// graph is validated.
nn::Network parse_network_spec(const std::string& text);

/// Reads `path` and parses it.
nn::Network parse_network_file(const std::string& path);

}  // namespace ftdl::frontend
