// Memory access trace (the interface the paper feeds to DRAMPower [20]).
//
// The overlay simulator emits one event per buffer refill / drain; the DRAM
// model consumes the trace to produce transfer time and energy.
#pragma once

#include <cstdint>
#include <vector>

namespace ftdl::dram {

enum class AccessKind { Read, Write };

struct AccessEvent {
  std::uint64_t cycle = 0;   ///< CLKh cycle the transfer is issued
  AccessKind kind = AccessKind::Read;
  std::uint64_t bytes = 0;

  bool operator==(const AccessEvent&) const = default;
};

struct AccessTrace {
  std::vector<AccessEvent> events;
  std::uint64_t total_cycles = 0;  ///< span of the traced execution

  std::uint64_t read_bytes() const;
  std::uint64_t write_bytes() const;
  std::uint64_t total_bytes() const { return read_bytes() + write_bytes(); }

  void add(std::uint64_t cycle, AccessKind kind, std::uint64_t bytes) {
    events.push_back({cycle, kind, bytes});
  }

  bool operator==(const AccessTrace&) const = default;
};

}  // namespace ftdl::dram
