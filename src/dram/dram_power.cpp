#include "dram/dram_power.h"

#include "common/error.h"

namespace ftdl::dram {

std::uint64_t AccessTrace::read_bytes() const {
  std::uint64_t n = 0;
  for (const AccessEvent& e : events) {
    if (e.kind == AccessKind::Read) n += e.bytes;
  }
  return n;
}

std::uint64_t AccessTrace::write_bytes() const {
  std::uint64_t n = 0;
  for (const AccessEvent& e : events) {
    if (e.kind == AccessKind::Write) n += e.bytes;
  }
  return n;
}

DramReport evaluate_volume(std::uint64_t read_bytes, std::uint64_t write_bytes,
                           double span_seconds, const DramSpec& spec,
                           int channels) {
  spec.validate();
  FTDL_ASSERT(channels >= 1);
  FTDL_ASSERT(span_seconds >= 0.0);

  DramReport r;
  r.span_seconds = span_seconds;

  const double total_bytes = double(read_bytes) + double(write_bytes);
  r.transfer_seconds = total_bytes / (spec.peak_bytes_per_sec * channels);

  // Background: blend of active and precharge standby across all devices.
  const double devices = double(spec.devices_per_rank * channels);
  const double utilization =
      span_seconds > 0 ? std::min(1.0, r.transfer_seconds / span_seconds) : 0.0;
  const double standby_ma =
      spec.idd3n_ma * utilization + spec.idd2n_ma * (1.0 - utilization);
  r.background_joules = standby_ma * 1e-3 * spec.vdd * devices * span_seconds;

  // Activates: one row activate per row_bytes of streamed data (sequential
  // streaming — the overlay's tiled transfers are long bursts).
  const double activates = total_bytes / double(spec.row_bytes);
  const double act_energy_per =
      (spec.idd0_ma - spec.idd3n_ma) * 1e-3 * spec.vdd * spec.t_rc_ns * 1e-9;
  r.activate_joules = activates * act_energy_per * spec.devices_per_rank;

  // Burst read/write core energy: the current delta over active standby for
  // the duration each byte occupies the bus.
  const double rd_seconds =
      double(read_bytes) / (spec.peak_bytes_per_sec * channels);
  const double wr_seconds =
      double(write_bytes) / (spec.peak_bytes_per_sec * channels);
  r.rw_joules = ((spec.idd4r_ma - spec.idd3n_ma) * rd_seconds +
                 (spec.idd4w_ma - spec.idd3n_ma) * wr_seconds) *
                1e-3 * spec.vdd * devices;

  // I/O and termination.
  r.io_joules = (double(read_bytes) * 8.0 * spec.io_pj_per_bit_rd +
                 double(write_bytes) * 8.0 * spec.io_pj_per_bit_wr) *
                1e-12;
  return r;
}

DramReport evaluate_trace(const AccessTrace& trace, const DramSpec& spec,
                          double clk_hz, int channels) {
  if (clk_hz <= 0) throw ConfigError("DRAM evaluation needs a positive clock");
  const double span = double(trace.total_cycles) / clk_hz;
  return evaluate_volume(trace.read_bytes(), trace.write_bytes(), span, spec,
                         channels);
}

}  // namespace ftdl::dram
