// DDR4 device parameters for the DRAMPower-style energy model.
//
// The model follows the standard IDD-current methodology (Micron datasheet
// style, as used by DRAMPower [20]): background power from the active/idle
// currents, plus per-access energy derived from the activate/read/write
// current deltas and the I/O termination energy.
#pragma once

#include <cstdint>
#include <string>

namespace ftdl::dram {

struct DramSpec {
  std::string name;

  double vdd = 1.2;              ///< core supply (V)
  double idd0_ma = 0.0;          ///< activate-precharge current, one bank
  double idd2n_ma = 0.0;         ///< precharge standby
  double idd3n_ma = 0.0;         ///< active standby
  double idd4r_ma = 0.0;         ///< burst read
  double idd4w_ma = 0.0;         ///< burst write

  double io_pj_per_bit_rd = 0.0; ///< I/O + termination energy, read
  double io_pj_per_bit_wr = 0.0; ///< I/O + termination (ODT) energy, write

  int devices_per_rank = 8;      ///< x8 devices on a 64-bit channel
  double peak_bytes_per_sec = 0.0;  ///< channel peak bandwidth

  int row_bytes = 1024;          ///< bytes per activated row (per device page x8)
  double t_rc_ns = 45.0;         ///< row cycle time (activate energy scale)

  /// A DDR4-2400 x64 channel (19.2 GB/s peak) — the 26 GB/s the paper
  /// assumes corresponds to slightly above one such channel; systems use
  /// one-two channels. Scale `channels` in the power model accordingly.
  static DramSpec ddr4_2400();

  /// Validates positivity of all parameters; throws ftdl::ConfigError.
  void validate() const;
};

}  // namespace ftdl::dram
