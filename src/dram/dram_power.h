// DRAMPower-style energy/time model over an access trace (Sec. V-A: "the
// data access trace was dumped and sent to the DRAMPower, an accurate model
// that supplies the DRAM performance").
#pragma once

#include "dram/dram_spec.h"
#include "dram/trace.h"

namespace ftdl::dram {

struct DramReport {
  double transfer_seconds = 0.0;   ///< pure data-movement time at peak bw
  double background_joules = 0.0;  ///< standby energy over the span
  double activate_joules = 0.0;    ///< row activate/precharge energy
  double rw_joules = 0.0;          ///< burst read/write core energy
  double io_joules = 0.0;          ///< I/O + termination energy

  double total_joules() const {
    return background_joules + activate_joules + rw_joules + io_joules;
  }
  /// Average power over `span_seconds` recorded in the report.
  double span_seconds = 0.0;
  double average_watts() const {
    return span_seconds > 0 ? total_joules() / span_seconds : 0.0;
  }
};

/// Evaluates a trace against a DRAM spec. `clk_hz` converts trace cycles to
/// time; `channels` scales the channel count (bandwidth and background
/// power). Throws ftdl::ConfigError on a non-positive clock.
DramReport evaluate_trace(const AccessTrace& trace, const DramSpec& spec,
                          double clk_hz, int channels = 2);

/// Convenience: energy/time for an aggregate byte count without a full
/// trace (used by the analytical path where only totals are known).
DramReport evaluate_volume(std::uint64_t read_bytes, std::uint64_t write_bytes,
                           double span_seconds, const DramSpec& spec,
                           int channels = 2);

}  // namespace ftdl::dram
