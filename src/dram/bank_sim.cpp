#include "dram/bank_sim.h"

#include <vector>

#include "common/error.h"
#include "common/math_util.h"

namespace ftdl::dram {

namespace {

struct BankState {
  std::int64_t open_row = -1;  ///< -1 = precharged
};

}  // namespace

BankSimResult replay_trace(const AccessTrace& trace, const DramSpec& spec,
                           const BankTiming& timing) {
  spec.validate();
  if (timing.banks <= 0 || timing.burst_bytes <= 0 || timing.t_rp_ns <= 0 ||
      timing.t_rcd_ns <= 0 || timing.t_rc_ns <= 0)
    throw ConfigError("bank timing parameters must be positive");

  std::vector<BankState> banks(static_cast<std::size_t>(timing.banks));
  BankSimResult r;

  // Sequential address cursors per stream: the overlay streams activation
  // reads and psum writes from/to disjoint, contiguous regions.
  std::int64_t rd_cursor = 0;
  std::int64_t wr_cursor = std::int64_t{1} << 40;  // far-apart region

  const double burst_seconds =
      double(timing.burst_bytes) / spec.peak_bytes_per_sec;

  for (const AccessEvent& ev : trace.events) {
    std::int64_t& cursor = ev.kind == AccessKind::Read ? rd_cursor : wr_cursor;
    const std::int64_t n_bursts = ceil_div(
        static_cast<std::int64_t>(ev.bytes), timing.burst_bytes);
    for (std::int64_t b = 0; b < n_bursts; ++b) {
      const std::int64_t row = cursor / spec.row_bytes;
      // Rows interleave across banks (standard controller mapping).
      BankState& bank =
          banks[static_cast<std::size_t>(row % timing.banks)];
      const std::int64_t bank_row = row / timing.banks;
      if (bank.open_row == bank_row) {
        ++r.row_hits;
      } else {
        ++r.row_misses;
        // Precharge (if a row was open) + activate. With many banks the
        // controller overlaps part of this with the previous burst; a
        // half-overlap is the standard first-order model.
        const double penalty_ns =
            0.5 * ((bank.open_row >= 0 ? timing.t_rp_ns : 0.0) +
                   timing.t_rcd_ns);
        r.busy_seconds += penalty_ns * 1e-9;
        bank.open_row = bank_row;
      }
      r.busy_seconds += burst_seconds;
      ++r.bursts;
      cursor += timing.burst_bytes;
    }
    // Partial last burst still occupies a full burst window; rewind the
    // cursor to the true end so the next event continues contiguously.
    cursor -= n_bursts * timing.burst_bytes;
    cursor += static_cast<std::int64_t>(ev.bytes);
  }

  r.busy_seconds *= 1.0 + timing.refresh_overhead;
  return r;
}

double effective_bandwidth(const DramSpec& spec, const BankTiming& timing,
                           std::uint64_t burst_bytes, int bursts) {
  AccessTrace t;
  std::uint64_t total = 0;
  for (int i = 0; i < bursts; ++i) {
    t.add(static_cast<std::uint64_t>(i), AccessKind::Read, burst_bytes);
    total += burst_bytes;
  }
  const BankSimResult r = replay_trace(t, spec, timing);
  return r.achieved_bytes_per_sec(total);
}

}  // namespace ftdl::dram
