// Bank-state DRAM trace replay — the timing half of DRAMPower [20].
//
// The volume model (dram_power.h) integrates energy from byte counts; this
// module replays the access trace event by event against per-bank row
// state: a row hit streams at the bus rate, a row miss pays precharge +
// activate before the burst, and interleaving across banks hides part of
// that latency. It reports the achieved (not peak) bandwidth and the
// row-hit rate — letting tests quantify how far the paper's flat
// 26 GB/s assumption is from a timing-accurate DDR4 channel for the
// overlay's long, sequential tile transfers.
#pragma once

#include <cstdint>

#include "dram/dram_spec.h"
#include "dram/trace.h"

namespace ftdl::dram {

/// Timing parameters of the bank machine (DDR4-class defaults).
struct BankTiming {
  int banks = 16;
  int burst_bytes = 64;     ///< BL8 on a x64 channel
  double t_rp_ns = 14.0;    ///< precharge
  double t_rcd_ns = 14.0;   ///< activate-to-access
  double t_rc_ns = 45.0;    ///< activate-to-activate, same bank
  double refresh_overhead = 0.05;  ///< tREFI/tRFC derating (~5%)
};

struct BankSimResult {
  double busy_seconds = 0.0;      ///< time the channel needed for the trace
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t bursts = 0;

  double row_hit_rate() const {
    const double total = double(row_hits + row_misses);
    return total > 0 ? double(row_hits) / total : 0.0;
  }
  /// Achieved bandwidth over the busy time.
  double achieved_bytes_per_sec(std::uint64_t bytes) const {
    return busy_seconds > 0 ? double(bytes) / busy_seconds : 0.0;
  }
};

/// Replays `trace` against the bank machine. Each event is split into
/// row-sized bursts laid out sequentially in the address space per stream
/// (reads and writes use disjoint regions, as the overlay's act and psum
/// buffers do). Throws ftdl::ConfigError on non-positive parameters.
BankSimResult replay_trace(const AccessTrace& trace, const DramSpec& spec,
                           const BankTiming& timing = {});

/// Effective sustainable bandwidth for the overlay's access pattern:
/// replays a synthetic long-burst trace and returns achieved bytes/s.
/// Used to sanity-check the 26 GB/s configuration value.
double effective_bandwidth(const DramSpec& spec, const BankTiming& timing = {},
                           std::uint64_t burst_bytes = 1 << 14,
                           int bursts = 256);

}  // namespace ftdl::dram
