#include "dram/dram_spec.h"

#include "common/error.h"

namespace ftdl::dram {

DramSpec DramSpec::ddr4_2400() {
  DramSpec s;
  s.name = "DDR4-2400-x64";
  s.vdd = 1.2;
  // Micron 8Gb x8 DDR4-2400 datasheet-class currents (per device).
  s.idd0_ma = 58.0;
  s.idd2n_ma = 34.0;
  s.idd3n_ma = 44.0;
  s.idd4r_ma = 150.0;
  s.idd4w_ma = 140.0;
  s.io_pj_per_bit_rd = 4.5;
  s.io_pj_per_bit_wr = 6.0;
  s.devices_per_rank = 8;
  s.peak_bytes_per_sec = 19.2e9;
  s.row_bytes = 1024;
  s.t_rc_ns = 45.0;
  s.validate();
  return s;
}

void DramSpec::validate() const {
  if (name.empty()) throw ConfigError("DRAM spec has no name");
  if (vdd <= 0 || idd0_ma <= 0 || idd2n_ma <= 0 || idd3n_ma <= 0 ||
      idd4r_ma <= 0 || idd4w_ma <= 0)
    throw ConfigError(name + ": currents must be positive");
  if (io_pj_per_bit_rd < 0 || io_pj_per_bit_wr < 0)
    throw ConfigError(name + ": I/O energies must be non-negative");
  if (devices_per_rank <= 0 || peak_bytes_per_sec <= 0 || row_bytes <= 0 ||
      t_rc_ns <= 0)
    throw ConfigError(name + ": geometry must be positive");
}

}  // namespace ftdl::dram
