// Cycle-level, functionally-exact simulator of the FTDL overlay.
//
// Executes a compiled LayerProgram the way the hardware would:
//   * the iteration space is the padded 6-level x K-loop nest of Eqn. 2
//     (spatial D3/D2/D1 in parallel, temporal X/L/T in sequence);
//   * every valid iteration performs one int16 x int16 MACC into the wide
//     DSP accumulator of the owning output element;
//   * the Listing-1 control flow is timed: LoopT bursts overlap ActBUF
//     refills (double buffering), LoopX overlaps PSumBUF drains, and the
//     slower side stalls the machine — reproducing Eqn. 12's max() as an
//     emergent per-iteration behaviour rather than a formula;
//   * every off-chip transfer is logged to a dram::AccessTrace.
//
// The output accumulators are bit-compared against nn::conv2d_reference /
// nn::matmul_reference in the test suite.
#pragma once

#include <memory>

#include "arch/overlay_config.h"
#include "compiler/codegen.h"
#include "dram/trace.h"
#include "nn/tensor.h"

namespace ftdl {
class ThreadPool;
}

namespace ftdl::sim {

/// Functional-simulation implementation (docs/simulator.md).
enum class SimEngine {
  /// Tiled engine: per-layer index/offset precomputation, dense
  /// auto-vectorizable MACC kernels on interior bursts, guarded table-driven
  /// loop on edge bursts, ThreadPool fan-out over output-disjoint spatial
  /// chunks. Bit-identical to Reference at any jobs count (pinned by
  /// tests/test_sim_engine.cpp). The default.
  Fast,
  /// The original scalar interpreter: per-MACC odometer arithmetic and
  /// bounds-checked tensor accessors. An order of magnitude slower; kept as
  /// the executable specification the engine is tested against (and the
  /// baseline bench_sim measures speedup from).
  Reference,
};

// Field-by-field units and paper mappings: docs/observability.md
// ("SimStats <-> paper quantities").
struct SimOptions {
  /// Log every off-chip transfer into SimResult::trace (a dram::AccessTrace
  /// of {cycle, kind, bytes} records) — the input of the DRAM power model
  /// and the Fig. 7 roofline's traffic axis. On by default; turn off for
  /// microbenchmarks where the trace allocation would dominate.
  bool collect_trace = true;
  /// Track the true buffer footprints (unique activation words per TPE per
  /// LoopL phase, psum entries per SuperBlock per LoopX phase, weight words
  /// per TPE over the layer) and report them in SimStats — lets tests prove
  /// the analytical buffer-sizing formulas (Eqns. 10-11 tile bounds) are
  /// upper bounds of reality. Costs memory/time; off by default.
  bool check_buffers = false;
  /// Guard for accidental huge functional runs, in padded MACCs (the Eqn. 2
  /// iteration space, Mapping::padded_macs): the simulator executes every
  /// padded iteration, so runtime is linear in this quantity. Runs larger
  /// than the limit throw ftdl::Error instead of hanging.
  std::int64_t max_padded_macs = std::int64_t{1} << 33;
  /// Functional engine selection (see SimEngine). check_buffers always runs
  /// the Reference interpreter: the footprint sets are tied to its serial
  /// walk and the mode exists for verification, not speed.
  SimEngine engine = SimEngine::Fast;
  /// When false, skip the functional bursts entirely: no tensor is read or
  /// written (SimResult::output stays empty) and valid_maccs is counted by
  /// interval arithmetic on the loop bounds instead. SimStats and the DRAM
  /// trace are bit-identical to a functional run — the cheap path for
  /// Table II / Fig. 7 / roofline sweeps that never look at the output.
  /// Incompatible with check_buffers (throws ftdl::ConfigError).
  bool functional = true;
  /// Worker-pool parallelism of the Fast engine's functional bursts:
  /// 0 uses the shared CompilerSession pool (FTDL_JOBS / hardware threads),
  /// 1 runs serially on the caller, N > 1 runs on a transient pool of N.
  /// Outputs and SimStats are bit-identical at every value — each output
  /// accumulator is owned by exactly one worker.
  int jobs = 0;
};

struct SimStats {
  /// Total execution time in CLKh cycles — the measured C_exe of the layer,
  /// the simulator's emergent counterpart of Eqn. 12's
  /// max(C_comp, C_actbus, C_psumbus, C_dram).
  std::int64_t cycles = 0;
  /// CLKh cycles spent in LoopT bursts (the Eqn. 7 compute term, including
  /// the 2x stretch when the double pump lacks T-level weight reuse).
  std::int64_t compute_cycles = 0;
  /// CLKh cycles of ActBUF refill time NOT hidden by compute — the Eqn. 12
  /// slack on the ActBUS / DRAM-read side.
  std::int64_t act_stall_cycles = 0;
  /// CLKh cycles of PSumBUF drain time NOT hidden by compute — the Eqn. 12
  /// slack on the PSumBUS / DRAM-write side.
  std::int64_t psum_stall_cycles = 0;
  /// MACCs on real (unpadded) iterations — the layer's true MAC count.
  std::int64_t valid_maccs = 0;
  /// MACCs issued including padding (== Mapping::padded_macs, Eqn. 2).
  std::int64_t padded_maccs = 0;
  /// ActBUF sub-buffer swaps executed (one per LoopL iteration).
  std::int64_t act_refills = 0;
  /// PSumBUF drains executed (one per LoopX iteration).
  std::int64_t psum_drains = 0;

  // Measured buffer footprints (only when SimOptions::check_buffers),
  // in 16-bit words (psums: accumulator entries).
  std::int64_t max_act_words_per_tpe = 0;   ///< worst LoopL phase
  std::int64_t max_psum_words_per_sb = 0;   ///< worst LoopX phase
  std::int64_t max_wbuf_words_per_tpe = 0;  ///< whole layer; with
                                            ///< valid_maccs gives the
                                            ///< measured E_WBUF of Fig. 7

  /// Hardware efficiency as defined for Table II: true MACs over issued
  /// MACC slots, valid_maccs / (cycles * #TPE). Dimensionless, in [0, 1];
  /// 0.0 when cycles or tpes is not positive (nothing was issued).
  double hardware_efficiency(int tpes) const {
    if (cycles <= 0 || tpes <= 0) return 0.0;
    return double(valid_maccs) / (double(cycles) * double(tpes));
  }
};

struct SimResult {
  nn::AccTensor output;   ///< wide accumulators (pre-requantization)
  SimStats stats;
  dram::AccessTrace trace;
};

/// Simulates one compiled layer. `weights` / `input` use the reference
/// layouts (conv: {out_c, in_c, kh, kw} and {in_c, h, w}; MM: {N, M} and
/// {M, P}). Throws ftdl::ConfigError on layout mismatch and ftdl::Error when
/// the padded iteration space exceeds options.max_padded_macs.
SimResult simulate_layer(const compiler::LayerProgram& program,
                         const arch::OverlayConfig& config,
                         const nn::Tensor16& weights, const nn::Tensor16& input,
                         const SimOptions& options = {});

/// Stats-only simulation (SimOptions::functional = false) without tensors:
/// produces SimStats and the DRAM AccessTrace bit-identical to a functional
/// run of the same program, with SimResult::output left empty. The
/// `functional` and `check_buffers` fields of `options` are ignored (forced
/// to false).
SimResult simulate_layer_stats(const compiler::LayerProgram& program,
                               const arch::OverlayConfig& config,
                               const SimOptions& options = {});

/// Reusable functional runner for one compiled layer — the steady-state
/// path of the serving runtime. All input-independent work (instruction
/// stream decode and cross-check, engine tables, the timing pass, the
/// valid-MACC count) happens once at construction; run() executes only the
/// functional bursts, so a warm runner performs no heap allocations of its
/// own. SimStats are input-independent, hence cached and identical to what
/// simulate_layer would report on every call.
class CachedLayerSim {
 public:
  /// Analyses `program` as simulate_layer would (same validation and
  /// throwing behaviour). `options.functional` / `check_buffers` are
  /// ignored; the runner always executes the Fast functional engine.
  CachedLayerSim(const compiler::LayerProgram& program,
                 const arch::OverlayConfig& config,
                 const SimOptions& options = {});
  ~CachedLayerSim();
  CachedLayerSim(CachedLayerSim&&) noexcept;
  CachedLayerSim& operator=(CachedLayerSim&&) noexcept;

  /// The cached per-run statistics (cycles, MACC counts, refills/drains).
  const SimStats& stats() const;

  /// Functional pass: validates layouts, reshapes `out` to the layer's
  /// output shape if it does not already match (the only potential
  /// allocation — pooled under an installed TensorArena), zeroes it and
  /// accumulates the layer. `pool` as in SimOptions::jobs: nullptr runs
  /// serially on the caller. Bit-identical to simulate_layer's output.
  void run(const nn::Tensor16& weights, const nn::Tensor16& input,
           nn::AccTensor& out, ThreadPool* pool = nullptr) const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ftdl::sim
