// Cycle-level, functionally-exact simulator of the FTDL overlay.
//
// Executes a compiled LayerProgram the way the hardware would:
//   * the iteration space is the padded 6-level x K-loop nest of Eqn. 2
//     (spatial D3/D2/D1 in parallel, temporal X/L/T in sequence);
//   * every valid iteration performs one int16 x int16 MACC into the wide
//     DSP accumulator of the owning output element;
//   * the Listing-1 control flow is timed: LoopT bursts overlap ActBUF
//     refills (double buffering), LoopX overlaps PSumBUF drains, and the
//     slower side stalls the machine — reproducing Eqn. 12's max() as an
//     emergent per-iteration behaviour rather than a formula;
//   * every off-chip transfer is logged to a dram::AccessTrace.
//
// The output accumulators are bit-compared against nn::conv2d_reference /
// nn::matmul_reference in the test suite.
#pragma once

#include "arch/overlay_config.h"
#include "compiler/codegen.h"
#include "dram/trace.h"
#include "nn/tensor.h"

namespace ftdl::sim {

struct SimOptions {
  bool collect_trace = true;
  /// Track the true buffer footprints (unique activation words per TPE per
  /// LoopL phase, psum entries per SuperBlock per LoopX phase, weight words
  /// per TPE over the layer) and report them in SimStats — lets tests prove
  /// the analytical buffer-sizing formulas are upper bounds of reality.
  /// Costs memory/time; off by default.
  bool check_buffers = false;
  /// Guard for accidental huge functional runs (padded MACs).
  std::int64_t max_padded_macs = std::int64_t{1} << 33;
};

struct SimStats {
  std::int64_t cycles = 0;           ///< total CLKh cycles
  std::int64_t compute_cycles = 0;   ///< LoopT bursts
  std::int64_t act_stall_cycles = 0; ///< refill time not hidden by compute
  std::int64_t psum_stall_cycles = 0;
  std::int64_t valid_maccs = 0;      ///< MACCs on real (unpadded) iterations
  std::int64_t padded_maccs = 0;     ///< total issued including padding
  std::int64_t act_refills = 0;
  std::int64_t psum_drains = 0;

  // Measured buffer footprints (only when SimOptions::check_buffers).
  std::int64_t max_act_words_per_tpe = 0;   ///< worst LoopL phase
  std::int64_t max_psum_words_per_sb = 0;   ///< worst LoopX phase
  std::int64_t max_wbuf_words_per_tpe = 0;  ///< whole layer

  double hardware_efficiency(int tpes) const {
    return double(valid_maccs) / (double(cycles) * double(tpes));
  }
};

struct SimResult {
  nn::AccTensor output;   ///< wide accumulators (pre-requantization)
  SimStats stats;
  dram::AccessTrace trace;
};

/// Simulates one compiled layer. `weights` / `input` use the reference
/// layouts (conv: {out_c, in_c, kh, kw} and {in_c, h, w}; MM: {N, M} and
/// {M, P}). Throws ftdl::ConfigError on layout mismatch and ftdl::Error when
/// the padded iteration space exceeds options.max_padded_macs.
SimResult simulate_layer(const compiler::LayerProgram& program,
                         const arch::OverlayConfig& config,
                         const nn::Tensor16& weights, const nn::Tensor16& input,
                         const SimOptions& options = {});

}  // namespace ftdl::sim
