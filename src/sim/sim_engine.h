// Internal engine of the fast cycle-level simulator (ftdl_sim.cpp).
//
// The reference interpreter in ftdl_sim.cpp re-derives the full Eqn. 2
// index nest per padded MACC; this layer replaces that arithmetic with
// tables computed once per layer:
//
//   * every workload loop's global index decomposes positionally over the
//     hardware levels, gidx_k = sp_k*(TX*TL*TT)_k + (x_k*TL_k + l_k)*TT_k
//     + t_k, so the per-state contributions of each level are precomputed
//     into flat digit arrays (the spatial levels D3/D2/D1 flatten into one
//     contiguous array instead of enumerate_spatial's vector-per-TPE);
//   * the flat tensor offsets (weight / activation / output) are linear in
//     the global loop indices, so they decompose into per-level
//     contribution arrays too — the inner loop is lookups and adds only;
//   * bursts whose whole (spatial, t) sub-space is in-trip and free of pad
//     clipping are detected by interval arithmetic on the precomputed
//     digit ranges and run through a branch-free dense MACC kernel; edge
//     bursts fall back to a guarded (but still table-driven) loop;
//   * both kernels restructure around a *vector plan* (EngineTables docs
//     below): a unit-coefficient column loop — fused with its contiguous
//     spatial digits when possible — turns the inner sweep into one long
//     contiguous dot/axpy fed to the runtime-dispatched SIMD kernels of
//     common/simd.h, with the scalar oracles as the exactness baseline;
//   * the spatial states are regrouped by their output-projection digits
//     (the loops with a non-zero output-offset coefficient), so each group
//     writes a disjoint set of output accumulators — the unit of parallel
//     fan-out across the ThreadPool, deterministic at any jobs count;
//   * the same interval arithmetic counts valid MACCs per burst without
//     touching tensors — the stats-only path (SimOptions::functional =
//     false).
//
// Everything here is deterministic and bit-identical to the reference
// interpreter (pinned by tests/test_sim_engine.cpp). Internal header: only
// ftdl_sim.cpp and the tests include it.
#pragma once

#include <cstdint>
#include <vector>

#include "common/fixed_point.h"
#include "common/thread_pool.h"
#include "compiler/codegen.h"

namespace ftdl::sim::detail {

/// Per-layer precomputed index/offset tables (see file comment).
struct EngineTables {
  int k = 0;  ///< workload loop count (3 for MM, 5/6 for conv)

  // Level state counts: spatial (D3*D2*D1 combined), T, X, L trip products.
  std::int64_t S = 0, T = 0, X = 0, L = 0;

  // Per-loop geometry.
  std::vector<std::int64_t> trip;     ///< workload trip counts W_k
  std::vector<std::int64_t> sp_ext;   ///< spatial extent per loop (D3*D2*D1)
  std::vector<std::int64_t> t_ext;    ///< T-level tile per loop
  std::vector<std::int64_t> sp_stride;  ///< (TX*TL*TT)_k: weight of one
                                        ///< spatial digit in gidx_k

  // Digit-contribution tables, k-major and contiguous:
  //   gidx_k(sp, x, l, t) = spd[k*S+sp] + xb[k*X+x] + lb[k*L+l] + td[k*T+t]
  std::vector<std::int64_t> spd;  ///< k*S: spatial digit * sp_stride_k
  std::vector<std::int64_t> xb;   ///< k*X: x digit * (TL*TT)_k
  std::vector<std::int64_t> lb;   ///< k*L: l digit * TT_k
  std::vector<std::int64_t> td;   ///< k*T: t digit

  // Flat tensor-offset contributions (sum of coeff_k * digit contribution
  // over all loops): offset = const + _sp[sp] + _x[x] + _l[l] + _t[t].
  std::int64_t in_const = 0;  ///< conv: -pad*in_w - pad
  std::vector<std::int64_t> in_sp, w_sp, out_sp;  ///< length S
  std::vector<std::int64_t> in_x, w_x, out_x;     ///< length X
  std::vector<std::int64_t> in_l, w_l, out_l;     ///< length L
  std::vector<std::int64_t> in_t, w_t, out_t;     ///< length T

  // T-level run structure: the fastest-varying T-level loop with a tile
  // > 1 (t_run_loop) sweeps its digit 0..t_run_len-1 across consecutive t,
  // so every tensor offset advances by a constant delta inside a run —
  // in_t[r*len + j] = in_t[r*len] + j*din, and likewise dw/dout/dry/dcx.
  // The kernels iterate (spatial, run, j) with the j loop branch-free.
  // (Used by the legacy kernels when no vector plan applies.)
  std::int64_t t_run_len = 1;
  int t_run_loop = 0;
  std::int64_t din = 0, dw = 0, dout = 0;
  std::int64_t dry = 0, dcx = 0;  ///< conv only

  // Tensor-offset coefficients per workload loop, in gidx space: one unit
  // step of gidx_k moves the input / weight / output offsets by
  // c_in/c_w/c_out[k] (and the conv image row/col by c_ry/c_cx[k]).
  std::vector<std::int64_t> c_in, c_w, c_out;
  std::vector<std::int64_t> c_ry, c_cx;  ///< conv only

  // ---- vector plan ------------------------------------------------------
  // The kernels pick one *column loop* ℓc whose unit coefficients make
  // consecutive gidx steps contiguous in memory, so a whole sweep feeds one
  // SIMD kernel (common/simd.h):
  //   Dot  (c_in=1, c_w=1, c_out=0): reduction — the sweep folds into a
  //        single accumulator via simd::dot_i16;
  //   Axpy (c_in=1, c_w=0, c_out=1): broadcast weight — the sweep streams
  //        into consecutive accumulators via simd::axpy_i16.
  // The column sweep is ℓc's T tile, and when ℓc's spatial digits are
  // contiguous in gidx too (sp_stride == t_ext, i.e. its X/L tiles are 1),
  // `block` whole spatial states fuse into one sweep of `cols` steps. The
  // group permutation sorts ℓc's spatial digit innermost (full mixed-radix
  // key) to make those states adjacent; build_tables verifies the fused
  // digit layout and falls back to block=1 — or no plan — if it does not
  // hold. The *row loop* ℓr (largest remaining T tile) is hoisted above the
  // sweep with constant per-row deltas; plan_t0 lists the T states where
  // both ℓc's and ℓr's digits are zero, so (t0, row, col) enumerates every
  // T state exactly once. Integer accumulation is exact and associative, so
  // the reordered/reassociated sums stay bit-identical to the reference
  // interpreter (and the SIMD kernels are bit-identical to their scalar
  // oracles by construction).
  enum class PlanKind : std::uint8_t { None, Dot, Axpy };
  PlanKind plan_kind = PlanKind::None;
  int col_loop = -1;       ///< ℓc (-1: no plan, legacy kernels)
  std::int64_t block = 1;  ///< spatial states fused into one column sweep
  std::int64_t cols = 1;   ///< sweep length = block * t_ext[col_loop]
  int row_loop = -1;       ///< ℓr (-1: single row)
  std::int64_t rows = 1;
  std::int64_t row_din = 0, row_dw = 0, row_dout = 0;
  std::int64_t row_dry = 0, row_dcx = 0;  ///< conv only
  std::int64_t col_dry = 0, col_dcx = 0;  ///< conv only
  std::vector<std::int64_t> plan_t0;  ///< T states with ℓc/ℓr digits zero

  // Conv-only: input row/col indices, y = stride*E + R - pad and
  // xc = stride*F + S - pad, decomposed the same way. Empty for MM.
  bool conv = false;
  std::int64_t in_h = 0, in_w = 0;
  std::int64_t ry_const = 0, cx_const = 0;  ///< -pad
  std::vector<std::int64_t> ry_sp, ry_x, ry_l, ry_t;
  std::vector<std::int64_t> cx_sp, cx_x, cx_l, cx_t;
  std::int64_t ry_t_max = 0, cx_t_max = 0;  ///< max over t of ry_t / cx_t

  /// A contiguous range [begin, end) of the (group-reordered) spatial
  /// arrays whose output accumulators are disjoint from every other
  /// chunk's — the unit of parallel work.
  struct Chunk {
    std::int64_t begin = 0, end = 0;
    // Per-loop max of spd over the range (dense-burst detection; the min is
    // not needed for the trip check because every contribution is >= 0).
    std::vector<std::int64_t> sp_max;
    std::int64_t ry_sp_min = 0, ry_sp_max = 0;  ///< conv only
    std::int64_t cx_sp_min = 0, cx_sp_max = 0;
  };
  std::vector<Chunk> chunks;

  // Stats-only helpers: loops free of pad coupling, and the coupled
  // (index loop, kernel loop, bound) pairs — (E, R, in_h) and (F, S, in_w)
  // for conv, none for MM.
  std::vector<int> free_loops;
  struct CoupledPair {
    int outer = 0;   ///< E or F
    int kernel = 0;  ///< R or S
    std::int64_t bound = 0;  ///< in_h / in_w
  };
  std::vector<CoupledPair> pairs;
  std::int64_t conv_stride = 1, pad = 0;
};

/// Builds the tables for one compiled layer. `max_chunks` bounds the
/// parallel fan-out granularity (chunk boundaries never split an
/// output-projection group, so any value is deterministic-safe).
EngineTables build_tables(const compiler::LayerProgram& program,
                          int max_chunks = 64);

/// Runs the functional bursts over every (x, l) tile: dense kernel on
/// interior bursts, guarded loop on edge bursts, fanned across `pool`
/// (nullptr or jobs()==1 runs serially on the caller). Accumulates into
/// `out` (raw pointer to the layer's AccTensor storage, zero-initialized by
/// the caller) and returns the number of valid MACCs executed. Output
/// writes are chunk-disjoint, so the result is bit-identical at any jobs
/// count.
std::int64_t run_functional(const EngineTables& tables,
                            const std::int16_t* weights,
                            const std::int16_t* input, acc_t* out,
                            ThreadPool* pool);

/// Counts the valid MACCs of every burst by interval arithmetic on the loop
/// bounds without touching tensors — exactly the count run_functional would
/// produce (stats-only path).
std::int64_t count_valid_maccs(const EngineTables& tables);

}  // namespace ftdl::sim::detail
