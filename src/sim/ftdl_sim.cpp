#include "sim/ftdl_sim.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <unordered_set>

#include "arch/isa.h"
#include "common/error.h"
#include "common/math_util.h"
#include "common/thread_pool.h"
#include "compiler/session.h"
#include "obs/obs.h"
#include "sim/sim_engine.h"

namespace ftdl::sim {

namespace {

using compiler::HwLevel;
using compiler::Mapping;
using compiler::Workload;
using compiler::WorkloadKind;

/// Mixed-radix odometer over the per-loop tiles of one hardware level.
/// digits()[k] is the current sub-index of workload loop k at this level.
class Odometer {
 public:
  Odometer(const Mapping& m, HwLevel level)
      : radix_(m.t[static_cast<int>(level)]),
        digits_(radix_.size(), 0) {}

  const std::vector<std::int64_t>& digits() const { return digits_; }

  /// Total number of states (the level product).
  std::int64_t states() const {
    std::int64_t p = 1;
    for (std::int64_t r : radix_) p *= r;
    return p;
  }

  /// Advances to the next state; returns false on wrap-around to zero.
  bool advance() {
    for (std::size_t k = digits_.size(); k-- > 0;) {
      if (++digits_[k] < radix_[k]) return true;
      digits_[k] = 0;
    }
    return false;
  }

  void reset() { std::fill(digits_.begin(), digits_.end(), 0); }

 private:
  std::vector<std::int64_t> radix_;
  std::vector<std::int64_t> digits_;
};

/// Per-TPE spatial digits, enumerated once (the hardware runs these in
/// parallel every cycle). Only the Reference interpreter walks these
/// vectors; the Fast engine flattens them into the contiguous tables of
/// sim_engine.h.
std::vector<std::vector<std::int64_t>> enumerate_spatial(const Mapping& m,
                                                         int k) {
  Odometer d3(m, HwLevel::D3), d2(m, HwLevel::D2), d1(m, HwLevel::D1);
  std::vector<std::vector<std::int64_t>> out;
  do {
    do {
      do {
        // Combined spatial digit per loop: ((d3 * TD2 + d2) * TD1 + d1),
        // matching the H-matrix nesting of Eqn. 5.
        std::vector<std::int64_t> digit(static_cast<std::size_t>(k));
        for (int i = 0; i < k; ++i) {
          const auto iu = static_cast<std::size_t>(i);
          digit[iu] = (d3.digits()[iu] * m.tile(HwLevel::D2, i) +
                       d2.digits()[iu]) *
                          m.tile(HwLevel::D1, i) +
                      d1.digits()[iu];
        }
        out.push_back(std::move(digit));
      } while (d1.advance());
    } while (d2.advance());
  } while (d3.advance());
  return out;
}

struct Shape {
  // Conv fields.
  int in_c = 0, in_h = 0, in_w = 0, out_c = 0, kh = 0, kw = 0, stride = 1,
      pad = 0, oh = 0, ow = 0;
  // MM fields.
  int mm_m = 0, mm_n = 0, mm_p = 0;
};

Shape shape_from_layer(const nn::Layer& layer) {
  Shape s;
  if (layer.kind == nn::LayerKind::Depthwise) {
    s.in_c = layer.in_c;
    s.in_h = layer.in_h;
    s.in_w = layer.in_w;
    s.out_c = layer.in_c;
    s.kh = layer.kh;
    s.kw = layer.kw;
    s.stride = layer.stride;
    s.pad = layer.pad;
    s.oh = layer.out_h();
    s.ow = layer.out_w();
  } else if (layer.kind == nn::LayerKind::Conv) {
    s.in_c = layer.in_c;
    s.in_h = layer.in_h;
    s.in_w = layer.in_w;
    s.out_c = layer.out_c;
    s.kh = layer.kh;
    s.kw = layer.kw;
    s.stride = layer.stride;
    s.pad = layer.pad;
    s.oh = layer.out_h();
    s.ow = layer.out_w();
  } else {
    s.mm_m = static_cast<int>(layer.mm_m);
    s.mm_n = static_cast<int>(layer.mm_n);
    s.mm_p = static_cast<int>(layer.mm_p);
  }
  return s;
}

void check_tensors(const nn::Layer& layer, const Shape& s,
                   const nn::Tensor16& weights, const nn::Tensor16& input) {
  if (layer.kind == nn::LayerKind::Depthwise) {
    if (input.dims() != std::vector<int>{s.in_c, s.in_h, s.in_w})
      throw ConfigError(layer.name + ": input tensor layout mismatch");
    if (weights.dims() != std::vector<int>{s.in_c, s.kh, s.kw})
      throw ConfigError(layer.name + ": weight tensor layout mismatch");
  } else if (layer.kind == nn::LayerKind::Conv) {
    if (input.dims() != std::vector<int>{s.in_c, s.in_h, s.in_w})
      throw ConfigError(layer.name + ": input tensor layout mismatch");
    if (weights.dims() != std::vector<int>{s.out_c, s.in_c, s.kh, s.kw})
      throw ConfigError(layer.name + ": weight tensor layout mismatch");
  } else {
    if (input.dims() != std::vector<int>{s.mm_m, s.mm_p})
      throw ConfigError(layer.name + ": input tensor layout mismatch");
    if (weights.dims() != std::vector<int>{s.mm_n, s.mm_m})
      throw ConfigError(layer.name + ": weight tensor layout mismatch");
  }
}

/// DRAM transfer time in whole CLKh cycles, in exact integer arithmetic:
/// ceil(bytes / (bytes_per_sec / clk_hz)) == ceil(bytes * clk_hz /
/// bytes_per_sec). The rates are configured as whole numbers (26e9, 650e6),
/// so rounding them to integers is lossless and the gcd reduction keeps the
/// product far from overflow (paper config reduces to ceil_div(bytes, 40)).
std::int64_t dram_cycles(std::int64_t bytes, double bytes_per_sec,
                         double clk_hz) {
  std::int64_t bps = std::llround(bytes_per_sec);
  std::int64_t hz = std::llround(clk_hz);
  FTDL_ASSERT(bps > 0 && hz > 0);
  const std::int64_t g = std::gcd(bps, hz);
  bps /= g;
  hz /= g;
  return ceil_div(bytes * hz, bps);
}

/// Per-layer timing ingredients (shared with the analytical model so the
/// two agree on tile geometry; the *schedule* in run_timing is simulated,
/// not formulaic). Everything here is independent of the tensor data, which
/// is what makes the stats-only path exact: timing, trace and obs spans are
/// produced by the same code on every path.
struct Timing {
  std::int64_t t_trip = 0, l_trip = 0, x_trip = 0;
  std::int64_t burst_cycles = 0;
  std::int64_t refill_cycles = 0;
  std::int64_t drain_cycles = 0;
  std::int64_t act_bytes_per_refill = 0;
  std::int64_t psum_bytes_per_x = 0;
  std::int64_t dram_rd_per_refill = 0;
  std::int64_t dram_wr_per_x = 0;
  std::int64_t pipeline_latency = 0;
};

Timing make_timing(const compiler::LayerProgram& program,
                   const arch::OverlayConfig& config) {
  const Workload& w = program.workload;
  const Mapping& m = program.mapping;
  Timing tm;
  tm.t_trip = m.level_product(HwLevel::T);
  tm.l_trip = m.level_product(HwLevel::L);
  tm.x_trip = m.level_product(HwLevel::X);
  const bool reuse_ok =
      !config.double_pump || compiler::weight_reuse_at_t(w, m) >= 2;
  tm.burst_cycles = tm.t_trip * (reuse_ok ? 1 : 2);
  tm.refill_cycles = ceil_div(compiler::act_refill_words(w, m),
                              config.actbus_words_per_cycle);
  const std::int64_t psum_words = compiler::psum_tile_words(w, m);
  const std::int64_t passes = compiler::psum_passes(w, m);
  const std::int64_t psum_traffic = passes > 1 ? 2 * psum_words : psum_words;
  tm.drain_cycles =
      ceil_div(psum_traffic, config.psumbus_words_per_cycle) * config.d3;
  tm.act_bytes_per_refill = 2 * compiler::act_refill_words(w, m) * config.d3;
  tm.psum_bytes_per_x =
      std::int64_t{config.psum_bytes} * psum_words * config.d2 * config.d3;
  tm.dram_rd_per_refill = dram_cycles(
      tm.act_bytes_per_refill, config.dram_rd_bytes_per_sec, config.clocks.clk_h_hz);
  tm.dram_wr_per_x = dram_cycles(
      tm.psum_bytes_per_x, config.dram_wr_bytes_per_sec, config.clocks.clk_h_hz);
  tm.pipeline_latency = config.pipeline_latency();
  return tm;
}

/// Simulates the Listing-1 control schedule: LoopT bursts overlapping ActBUF
/// refills, LoopX overlapping PSumBUF drains, the slower side stalling —
/// Eqn. 12's max() as emergent per-iteration behaviour. Fills the cycle /
/// stall / refill / drain fields of `st`, the DRAM trace, and the obs
/// timelines. Runs the same way on every engine / functional setting, so
/// stats and trace are bit-identical across them by construction.
void run_timing(const Timing& tm, const SimOptions& options,
                const std::string& layer_name, SimStats& st,
                dram::AccessTrace& trace) {
  // Observability: one virtual-clock timeline per hardware unit for this
  // layer, timestamped in CLKh cycles (docs/observability.md). Tracks are
  // only registered when collection is on; when it is off the cost is one
  // predicted branch per LoopL / LoopX iteration, far outside the MACC loop.
  const bool obs_on = obs::enabled();
  std::uint32_t tr_burst = 0, tr_refill = 0, tr_drain = 0, tr_stall = 0;
  if (obs_on) {
    obs::Registry& reg = obs::Registry::global();
    // A fresh process per simulation instance: re-simulating a layer (weight
    // groups, repeated runs, cached warm-up passes) must not append
    // earlier-than-last timestamps to an existing track. The disambiguator
    // is a dedicated counter this function owns — tying it to a caller-side
    // counter breaks as soon as a caller (CachedLayerSim warm-up) runs
    // several timing passes before any of its own counts.
    const std::int64_t inst = reg.counter("sim/timing_passes");
    obs::count("sim/timing_passes");
    std::string proc = "sim:" + layer_name;
    if (inst > 0) proc += " #" + std::to_string(inst);
    tr_burst = reg.track(proc, "LoopT bursts");
    tr_refill = reg.track(proc, "ActBUF refills");
    tr_drain = reg.track(proc, "PSumBUF drains");
    tr_stall = reg.track(proc, "stalls");
  }

  std::int64_t pending_drain = 0;  // previous LoopX's psum drain in flight
  for (std::int64_t x = 0; x < tm.x_trip; ++x) {
    std::int64_t x_compute = 0;
    for (std::int64_t l = 0; l < tm.l_trip; ++l) {
      // ActBUF refill (double-buffered): overlaps this burst.
      const std::int64_t fetch =
          std::max(tm.refill_cycles, tm.dram_rd_per_refill);
      const std::int64_t step = std::max(tm.burst_cycles, fetch);
      if (obs_on) {
        obs::Registry& reg = obs::Registry::global();
        const double t0 = double(st.cycles + x_compute);
        reg.begin(tr_burst, "burst", t0, "sim");
        reg.end(tr_burst, t0 + double(tm.burst_cycles));
        reg.begin(tr_refill, "act_refill", t0, "sim");
        reg.end(tr_refill, t0 + double(fetch));
        if (step > tm.burst_cycles) {
          reg.begin(tr_stall, "act_stall", t0 + double(tm.burst_cycles), "sim");
          reg.end(tr_stall, t0 + double(step));
        }
      }
      st.act_stall_cycles += step - tm.burst_cycles;
      st.compute_cycles += tm.burst_cycles;
      x_compute += step;
      ++st.act_refills;
      if (options.collect_trace) {
        trace.add(static_cast<std::uint64_t>(st.cycles + x_compute),
                  dram::AccessKind::Read,
                  static_cast<std::uint64_t>(tm.act_bytes_per_refill));
      }
    }

    // Pipeline latency of the TPE chain per LoopX iteration (Eqn. 7).
    x_compute += tm.pipeline_latency;

    // The previous LoopX's psum drain must have finished before this one's
    // results need the other sub-buffer (double buffering, depth 1).
    const std::int64_t advance = std::max(x_compute, pending_drain);
    st.psum_stall_cycles += advance - x_compute;
    st.cycles += advance;
    if (obs_on && advance > x_compute) {
      obs::Registry& reg = obs::Registry::global();
      reg.begin(tr_stall, "psum_stall",
                double(st.cycles - (advance - x_compute)), "sim");
      reg.end(tr_stall, double(st.cycles));
    }

    pending_drain = std::max(tm.drain_cycles, tm.dram_wr_per_x);
    if (obs_on) {
      obs::Registry& reg = obs::Registry::global();
      reg.begin(tr_drain, "psum_drain", double(st.cycles), "sim");
      reg.end(tr_drain, double(st.cycles + pending_drain));
    }
    ++st.psum_drains;
    if (options.collect_trace) {
      trace.add(static_cast<std::uint64_t>(st.cycles),
                dram::AccessKind::Write,
                static_cast<std::uint64_t>(tm.psum_bytes_per_x));
    }
  }
  // The final drain is not hidden by any compute.
  st.cycles += pending_drain;
  trace.total_cycles = static_cast<std::uint64_t>(st.cycles);
}

/// The original scalar interpreter, now functional-only: walks every padded
/// Eqn. 2 iteration with per-MACC odometer arithmetic and bounds-checked
/// tensor accessors. Kept as the executable specification the Fast engine is
/// pinned against, and as the only path that can measure true buffer
/// footprints (check_buffers).
void run_reference(const compiler::LayerProgram& program, const Shape& shape,
                   const nn::Tensor16& weights, const nn::Tensor16& input,
                   const SimOptions& options, SimStats& st,
                   nn::AccTensor& output) {
  const Workload& w = program.workload;
  const Mapping& m = program.mapping;

  // Loop indices within the workload vector.
  const bool conv_like = w.kind != WorkloadKind::MatMul;
  const bool is_dw = w.kind == WorkloadKind::DepthwiseConv;
  const int iM = (w.kind == WorkloadKind::MatMul ||
                  w.kind == WorkloadKind::Conv)
                     ? w.loop_index('M')
                     : -1;
  const int iN = conv_like || w.kind == WorkloadKind::MatMul
                     ? w.loop_index('N')
                     : -1;
  const int iE = conv_like ? w.loop_index('E') : -1;
  const int iF = conv_like ? w.loop_index('F') : -1;
  const int iR = conv_like ? w.loop_index('R') : -1;
  const int iS = conv_like ? w.loop_index('S') : -1;
  const int iNmm = (w.kind == WorkloadKind::MatMul) ? w.loop_index('N') : -1;
  const int iP = (w.kind == WorkloadKind::MatMul) ? w.loop_index('P') : -1;

  const auto spatial = enumerate_spatial(m, w.k());

  // Buffer-footprint tracking (check_buffers): one activation set per TPE
  // (reset per LoopL phase), one psum set per SuperBlock (reset per LoopX
  // phase), one weight set per TPE (whole layer).
  const std::size_t n_tpes = spatial.size();
  const std::int64_t d1_prod = m.level_product(HwLevel::D1);
  const std::size_t n_sbs = n_tpes / static_cast<std::size_t>(d1_prod);
  std::vector<std::unordered_set<std::int64_t>> act_sets, psum_sets, wbuf_sets;
  if (options.check_buffers) {
    act_sets.resize(n_tpes);
    psum_sets.resize(n_sbs);
    wbuf_sets.resize(n_tpes);
  }
  auto flush_act_sets = [&] {
    for (auto& set : act_sets) {
      st.max_act_words_per_tpe = std::max<std::int64_t>(
          st.max_act_words_per_tpe, static_cast<std::int64_t>(set.size()));
      set.clear();
    }
  };
  auto flush_psum_sets = [&] {
    for (auto& set : psum_sets) {
      st.max_psum_words_per_sb = std::max<std::int64_t>(
          st.max_psum_words_per_sb, static_cast<std::int64_t>(set.size()));
      set.clear();
    }
  };

  const std::int64_t t_trip = m.level_product(HwLevel::T);
  const std::int64_t l_trip = m.level_product(HwLevel::L);
  const std::int64_t x_trip = m.level_product(HwLevel::X);

  Odometer x_od(m, HwLevel::X), l_od(m, HwLevel::L), t_od(m, HwLevel::T);
  std::vector<std::int64_t> gidx(static_cast<std::size_t>(w.k()));

  for (std::int64_t x = 0; x < x_trip; ++x) {
    l_od.reset();
    for (std::int64_t l = 0; l < l_trip; ++l) {
      // ---- functional burst: every TPE, every LoopT state ----
      t_od.reset();
      for (std::int64_t t = 0; t < t_trip; ++t) {
        for (std::size_t sp_idx = 0; sp_idx < spatial.size(); ++sp_idx) {
          const auto& sp = spatial[sp_idx];
          bool valid = true;
          for (int k = 0; k < w.k(); ++k) {
            const auto ku = static_cast<std::size_t>(k);
            // Eqn. 2 nesting: ((spatial * TX + x) * TL + l) * TT + t.
            std::int64_t v = sp[ku];
            v = v * m.tile(HwLevel::X, k) + x_od.digits()[ku];
            v = v * m.tile(HwLevel::L, k) + l_od.digits()[ku];
            v = v * m.tile(HwLevel::T, k) + t_od.digits()[ku];
            if (v >= w.loops[ku].trip) {
              valid = false;
              break;
            }
            gidx[ku] = v;
          }
          ++st.padded_maccs;
          if (!valid) continue;

          if (conv_like) {
            const int y = static_cast<int>(gidx[static_cast<std::size_t>(iE)]) *
                              shape.stride +
                          static_cast<int>(gidx[static_cast<std::size_t>(iR)]) -
                          shape.pad;
            const int xc = static_cast<int>(gidx[static_cast<std::size_t>(iF)]) *
                               shape.stride +
                           static_cast<int>(gidx[static_cast<std::size_t>(iS)]) -
                           shape.pad;
            if (y < 0 || y >= shape.in_h || xc < 0 || xc >= shape.in_w) continue;
            const auto n = static_cast<int>(gidx[static_cast<std::size_t>(iN)]);
            const auto mo =
                is_dw ? n : static_cast<int>(gidx[static_cast<std::size_t>(iM)]);
            const auto e = static_cast<int>(gidx[static_cast<std::size_t>(iE)]);
            const auto f = static_cast<int>(gidx[static_cast<std::size_t>(iF)]);
            const auto r = static_cast<int>(gidx[static_cast<std::size_t>(iR)]);
            const auto sIdx = static_cast<int>(gidx[static_cast<std::size_t>(iS)]);
            const std::int16_t wv = is_dw ? weights.at(n, r, sIdx)
                                          : weights.at(mo, n, r, sIdx);
            output.at(mo, e, f) =
                macc(output.at(mo, e, f), wv, input.at(n, y, xc));
            if (options.check_buffers) {
              const std::int64_t act_id =
                  (std::int64_t{n} * shape.in_h + y) * shape.in_w + xc;
              act_sets[sp_idx].insert(act_id);
              const std::int64_t w_id =
                  ((std::int64_t{mo} * shape.in_c + n) * shape.kh + r) *
                      shape.kw + sIdx;
              wbuf_sets[sp_idx].insert(w_id);
              const std::int64_t out_id =
                  (std::int64_t{mo} * shape.oh + e) * shape.ow + f;
              psum_sets[sp_idx / static_cast<std::size_t>(d1_prod)].insert(
                  out_id);
            }
          } else {
            const auto mm = static_cast<int>(gidx[static_cast<std::size_t>(iM)]);
            const auto n = static_cast<int>(gidx[static_cast<std::size_t>(iNmm)]);
            const auto pp = static_cast<int>(gidx[static_cast<std::size_t>(iP)]);
            output.at(n, pp) =
                macc(output.at(n, pp), weights.at(n, mm), input.at(mm, pp));
            if (options.check_buffers) {
              act_sets[sp_idx].insert(std::int64_t{mm} * shape.mm_p + pp);
              wbuf_sets[sp_idx].insert(std::int64_t{n} * shape.mm_m + mm);
              psum_sets[sp_idx / static_cast<std::size_t>(d1_prod)].insert(
                  std::int64_t{n} * shape.mm_p + pp);
            }
          }
          ++st.valid_maccs;
        }
        t_od.advance();
      }
      if (options.check_buffers) flush_act_sets();
      l_od.advance();
    }
    if (options.check_buffers) flush_psum_sets();
    x_od.advance();
  }

  if (options.check_buffers) {
    for (const auto& set : wbuf_sets) {
      st.max_wbuf_words_per_tpe = std::max<std::int64_t>(
          st.max_wbuf_words_per_tpe, static_cast<std::int64_t>(set.size()));
    }
  }
}

/// Fast-engine functional pass: precomputed tables + dense/guarded kernels,
/// fanned across the resolved worker pool (SimOptions::jobs).
void run_engine(const compiler::LayerProgram& program,
                const nn::Tensor16& weights, const nn::Tensor16& input,
                const SimOptions& options, SimStats& st,
                nn::AccTensor& output) {
  const detail::EngineTables tables = detail::build_tables(program);
  const std::int16_t* wp = weights.data();
  const std::int16_t* ip = input.data();
  acc_t* op = output.data();
  std::int64_t valid = 0;
  if (options.jobs == 1) {
    valid = detail::run_functional(tables, wp, ip, op, nullptr);
  } else if (options.jobs == 0) {
    valid = detail::run_functional(tables, wp, ip, op,
                                   &compiler::CompilerSession::global().pool());
  } else {
    ThreadPool pool(options.jobs);
    valid = detail::run_functional(tables, wp, ip, op, &pool);
  }
  st.valid_maccs = valid;
  st.padded_maccs = program.mapping.padded_macs();
}

SimResult simulate_impl(const compiler::LayerProgram& program,
                        const arch::OverlayConfig& config,
                        const nn::Tensor16* weights, const nn::Tensor16* input,
                        const SimOptions& options) {
  const Workload& w = program.workload;
  const Mapping& m = program.mapping;
  FTDL_ASSERT(m.k() == w.k());

  if (!options.functional && options.check_buffers)
    throw ConfigError(w.name +
                      ": check_buffers needs a functional run "
                      "(functional = false skips the bursts the footprints "
                      "are measured on)");
  if (m.padded_macs() > options.max_padded_macs)
    throw Error(w.name + ": padded iteration space too large to simulate (" +
                std::to_string(m.padded_macs()) + " padded MACCs > " +
                "max_padded_macs = " +
                std::to_string(options.max_padded_macs) + ")");

  const Shape shape = shape_from_layer(program.layer);
  if (options.functional) {
    FTDL_ASSERT(weights != nullptr && input != nullptr);
    check_tensors(program.layer, shape, *weights, *input);
  }

  // Consume the controller's instruction stream the way the hardware
  // would: decode the encoded InstBUS words and take the temporal
  // configuration from the resulting controller state, cross-checking it
  // against the mapping the compiler claims to have lowered.
  const arch::ControllerState ctrl =
      arch::interpret_stream(arch::decode_stream(program.encoded_stream()));
  if (ctrl.x_trip != static_cast<std::uint64_t>(m.level_product(HwLevel::X)) ||
      ctrl.l_trip != static_cast<std::uint64_t>(m.level_product(HwLevel::L)) ||
      ctrl.t_trip != static_cast<std::uint64_t>(m.level_product(HwLevel::T))) {
    throw Error(w.name + ": instruction stream disagrees with the mapping");
  }

  SimResult result;
  SimStats& st = result.stats;

  // ---- functional pass (or interval-arithmetic stand-in) ----
  if (options.functional) {
    result.output = (w.kind == WorkloadKind::MatMul)
                        ? nn::AccTensor({shape.mm_n, shape.mm_p})
                        : nn::AccTensor({shape.out_c, shape.oh, shape.ow});
    // check_buffers is tied to the reference walk: the footprint sets track
    // its serial LoopL/LoopX phases and the mode exists for verification,
    // not speed.
    if (options.engine == SimEngine::Reference || options.check_buffers)
      run_reference(program, shape, *weights, *input, options, st,
                    result.output);
    else
      run_engine(program, *weights, *input, options, st, result.output);
  } else {
    const detail::EngineTables tables = detail::build_tables(program);
    st.valid_maccs = detail::count_valid_maccs(tables);
    st.padded_maccs = m.padded_macs();
  }

  // ---- timing pass: identical on every path by construction ----
  run_timing(make_timing(program, config), options, program.layer.name, st,
             result.trace);

  // valid_maccs counts per-TPE operations; padded_maccs should equal the
  // mapping's padded space.
  FTDL_ASSERT(st.padded_maccs == m.padded_macs());

  if (obs::enabled()) {
    obs::count("sim/layers_simulated");
    obs::count("sim/cycles", st.cycles);
    obs::count("sim/compute_cycles", st.compute_cycles);
    obs::count("sim/act_stall_cycles", st.act_stall_cycles);
    obs::count("sim/psum_stall_cycles", st.psum_stall_cycles);
    obs::count("sim/valid_maccs", st.valid_maccs);
    obs::count("sim/padded_maccs", st.padded_maccs);
    obs::count("sim/act_refills", st.act_refills);
    obs::count("sim/psum_drains", st.psum_drains);
  }
  return result;
}

}  // namespace

SimResult simulate_layer(const compiler::LayerProgram& program,
                         const arch::OverlayConfig& config,
                         const nn::Tensor16& weights, const nn::Tensor16& input,
                         const SimOptions& options) {
  return simulate_impl(program, config, &weights, &input, options);
}

SimResult simulate_layer_stats(const compiler::LayerProgram& program,
                               const arch::OverlayConfig& config,
                               const SimOptions& options) {
  SimOptions opt = options;
  opt.functional = false;
  opt.check_buffers = false;
  return simulate_impl(program, config, nullptr, nullptr, opt);
}

// ---------------------------------------------------------------------------
// CachedLayerSim
// ---------------------------------------------------------------------------

struct CachedLayerSim::Impl {
  detail::EngineTables tables;
  SimStats stats;
  std::string name;
  nn::Dims w_dims, in_dims, out_dims;
};

CachedLayerSim::CachedLayerSim(const compiler::LayerProgram& program,
                               const arch::OverlayConfig& config,
                               const SimOptions& options)
    : impl_(std::make_unique<Impl>()) {
  const Workload& w = program.workload;
  const Mapping& m = program.mapping;
  FTDL_ASSERT(m.k() == w.k());
  if (m.padded_macs() > options.max_padded_macs)
    throw Error(w.name + ": padded iteration space too large to simulate (" +
                std::to_string(m.padded_macs()) + " padded MACCs > " +
                "max_padded_macs = " +
                std::to_string(options.max_padded_macs) + ")");

  // Same controller-stream cross-check as simulate_layer: the cached runner
  // must refuse exactly the programs the one-shot path refuses.
  const arch::ControllerState ctrl =
      arch::interpret_stream(arch::decode_stream(program.encoded_stream()));
  if (ctrl.x_trip != static_cast<std::uint64_t>(m.level_product(HwLevel::X)) ||
      ctrl.l_trip != static_cast<std::uint64_t>(m.level_product(HwLevel::L)) ||
      ctrl.t_trip != static_cast<std::uint64_t>(m.level_product(HwLevel::T))) {
    throw Error(w.name + ": instruction stream disagrees with the mapping");
  }

  impl_->name = program.layer.name;
  const Shape s = shape_from_layer(program.layer);
  if (program.layer.kind == nn::LayerKind::Depthwise) {
    impl_->in_dims = nn::Dims{s.in_c, s.in_h, s.in_w};
    impl_->w_dims = nn::Dims{s.in_c, s.kh, s.kw};
    impl_->out_dims = nn::Dims{s.out_c, s.oh, s.ow};
  } else if (program.layer.kind == nn::LayerKind::Conv) {
    impl_->in_dims = nn::Dims{s.in_c, s.in_h, s.in_w};
    impl_->w_dims = nn::Dims{s.out_c, s.in_c, s.kh, s.kw};
    impl_->out_dims = nn::Dims{s.out_c, s.oh, s.ow};
  } else {
    impl_->in_dims = nn::Dims{s.mm_m, s.mm_p};
    impl_->w_dims = nn::Dims{s.mm_n, s.mm_m};
    impl_->out_dims = nn::Dims{s.mm_n, s.mm_p};
  }

  impl_->tables = detail::build_tables(program);
  impl_->stats.valid_maccs = detail::count_valid_maccs(impl_->tables);
  impl_->stats.padded_maccs = m.padded_macs();

  // Timing is input-independent: simulate the schedule once and cache it.
  SimOptions topt = options;
  topt.collect_trace = false;
  dram::AccessTrace trace;
  run_timing(make_timing(program, config), topt, impl_->name, impl_->stats,
             trace);
}

CachedLayerSim::~CachedLayerSim() = default;
CachedLayerSim::CachedLayerSim(CachedLayerSim&&) noexcept = default;
CachedLayerSim& CachedLayerSim::operator=(CachedLayerSim&&) noexcept = default;

const SimStats& CachedLayerSim::stats() const { return impl_->stats; }

void CachedLayerSim::run(const nn::Tensor16& weights, const nn::Tensor16& input,
                         nn::AccTensor& out, ThreadPool* pool) const {
  const Impl& im = *impl_;
  // Layout checks against the cached Dims: allocation-free on success.
  if (input.dims() != im.in_dims)
    throw ConfigError(im.name + ": input tensor layout mismatch");
  if (weights.dims() != im.w_dims)
    throw ConfigError(im.name + ": weight tensor layout mismatch");

  if (out.dims() != im.out_dims)
    out = nn::AccTensor(im.out_dims);  // pooled under an installed arena
  else
    std::fill(out.data(), out.data() + out.size(), acc_t{0});

  const std::int64_t valid =
      detail::run_functional(im.tables, weights.data(), input.data(),
                             out.data(), pool);
  FTDL_ASSERT(valid == im.stats.valid_maccs);

  if (obs::enabled()) {
    const SimStats& st = im.stats;
    obs::count("sim/layers_simulated");
    obs::count("sim/cycles", st.cycles);
    obs::count("sim/compute_cycles", st.compute_cycles);
    obs::count("sim/act_stall_cycles", st.act_stall_cycles);
    obs::count("sim/psum_stall_cycles", st.psum_stall_cycles);
    obs::count("sim/valid_maccs", st.valid_maccs);
    obs::count("sim/padded_maccs", st.padded_maccs);
    obs::count("sim/act_refills", st.act_refills);
    obs::count("sim/psum_drains", st.psum_drains);
  }
}

}  // namespace ftdl::sim
