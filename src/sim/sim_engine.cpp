#include "sim/sim_engine.h"

#include <algorithm>
#include <array>
#include <numeric>

#include "common/error.h"
#include "common/math_util.h"
#include "common/simd.h"

// The dense kernel reads four precomputed int64 offset arrays and writes
// int64 accumulators; telling the compiler the tables never alias the
// output is what lets it drop the reload-per-iteration and vectorize.
#if defined(__GNUC__) || defined(__clang__)
#define FTDL_RESTRICT __restrict__
#else
#define FTDL_RESTRICT
#endif

namespace ftdl::sim::detail {

namespace {

using compiler::HwLevel;
using compiler::Mapping;
using compiler::Workload;
using compiler::WorkloadKind;

/// Maximum workload loop count (CONV has 6); lets per-burst scratch live in
/// fixed-size stack arrays.
constexpr int kMaxLoops = 8;

/// Mixed-radix digits of every state of one hardware level, k-major:
/// out[k * states + s] = digit of workload loop k in state s, enumerated in
/// the same order as the reference interpreter's Odometer (loop 0 is the
/// most significant digit, the last loop advances fastest).
std::vector<std::int64_t> level_digits(const Mapping& m, HwLevel level,
                                       std::int64_t states) {
  const auto& radix = m.t[static_cast<int>(level)];
  const int k = static_cast<int>(radix.size());
  std::vector<std::int64_t> out(static_cast<std::size_t>(k) *
                                static_cast<std::size_t>(states));
  for (std::int64_t s = 0; s < states; ++s) {
    std::int64_t rem = s;
    for (int i = k; i-- > 0;) {
      const std::int64_t r = radix[static_cast<std::size_t>(i)];
      out[static_cast<std::size_t>(i) * static_cast<std::size_t>(states) +
          static_cast<std::size_t>(s)] = rem % r;
      rem /= r;
    }
  }
  return out;
}

/// Weighted sum of per-loop contribution tables: for every state s,
/// out[s] = sum_k coeff[k] * contrib[k * states + s].
std::vector<std::int64_t> project(const std::vector<std::int64_t>& contrib,
                                  const std::vector<std::int64_t>& coeff,
                                  std::int64_t states) {
  const int k = static_cast<int>(coeff.size());
  std::vector<std::int64_t> out(static_cast<std::size_t>(states), 0);
  for (int i = 0; i < k; ++i) {
    if (coeff[static_cast<std::size_t>(i)] == 0) continue;
    const std::int64_t c = coeff[static_cast<std::size_t>(i)];
    const std::int64_t* src =
        contrib.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(states);
    for (std::int64_t s = 0; s < states; ++s) out[static_cast<std::size_t>(s)] += c * src[s];
  }
  return out;
}

}  // namespace

EngineTables build_tables(const compiler::LayerProgram& program,
                          int max_chunks) {
  const Workload& w = program.workload;
  const Mapping& m = program.mapping;
  const nn::Layer& layer = program.layer;
  const int k = w.k();
  FTDL_ASSERT(k <= kMaxLoops);

  EngineTables tb;
  tb.k = k;
  tb.S = m.level_product(HwLevel::D3) * m.level_product(HwLevel::D2) *
         m.level_product(HwLevel::D1);
  tb.X = m.level_product(HwLevel::X);
  tb.L = m.level_product(HwLevel::L);
  tb.T = m.level_product(HwLevel::T);

  tb.trip.resize(static_cast<std::size_t>(k));
  tb.sp_ext.resize(static_cast<std::size_t>(k));
  tb.t_ext.resize(static_cast<std::size_t>(k));
  tb.sp_stride.resize(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    tb.trip[iu] = w.loops[iu].trip;
    tb.sp_ext[iu] = m.tile(HwLevel::D3, i) * m.tile(HwLevel::D2, i) *
                    m.tile(HwLevel::D1, i);
    tb.t_ext[iu] = m.tile(HwLevel::T, i);
    tb.sp_stride[iu] =
        m.tile(HwLevel::X, i) * m.tile(HwLevel::L, i) * m.tile(HwLevel::T, i);
  }

  // ---- raw digits per level --------------------------------------------
  // Combined spatial digit per loop: ((d3 * TD2 + d2) * TD1 + d1), the
  // Eqn. 5 H-matrix nesting, flattened over the D3-major enumeration the
  // reference interpreter uses.
  const std::int64_t n3 = m.level_product(HwLevel::D3);
  const std::int64_t n2 = m.level_product(HwLevel::D2);
  const std::int64_t n1 = m.level_product(HwLevel::D1);
  const std::vector<std::int64_t> d3 = level_digits(m, HwLevel::D3, n3);
  const std::vector<std::int64_t> d2 = level_digits(m, HwLevel::D2, n2);
  const std::vector<std::int64_t> d1 = level_digits(m, HwLevel::D1, n1);
  // sp_dig[k*S + sp]: raw combined spatial digit (before stride weighting).
  std::vector<std::int64_t> sp_dig(static_cast<std::size_t>(k) *
                                   static_cast<std::size_t>(tb.S));
  {
    std::int64_t sp = 0;
    for (std::int64_t i3 = 0; i3 < n3; ++i3)
      for (std::int64_t i2 = 0; i2 < n2; ++i2)
        for (std::int64_t i1 = 0; i1 < n1; ++i1, ++sp)
          for (int i = 0; i < k; ++i) {
            const auto iu = static_cast<std::size_t>(i);
            const std::int64_t dig =
                (d3[iu * static_cast<std::size_t>(n3) + static_cast<std::size_t>(i3)] *
                     m.tile(HwLevel::D2, i) +
                 d2[iu * static_cast<std::size_t>(n2) + static_cast<std::size_t>(i2)]) *
                    m.tile(HwLevel::D1, i) +
                d1[iu * static_cast<std::size_t>(n1) + static_cast<std::size_t>(i1)];
            sp_dig[iu * static_cast<std::size_t>(tb.S) + static_cast<std::size_t>(sp)] =
                dig;
          }
  }
  const std::vector<std::int64_t> x_dig = level_digits(m, HwLevel::X, tb.X);
  const std::vector<std::int64_t> l_dig = level_digits(m, HwLevel::L, tb.L);
  const std::vector<std::int64_t> t_dig = level_digits(m, HwLevel::T, tb.T);

  // Contribution tables: digit * positional weight within gidx_k.
  tb.xb.resize(x_dig.size());
  for (int i = 0; i < k; ++i) {
    const std::int64_t wgt = m.tile(HwLevel::L, i) * m.tile(HwLevel::T, i);
    for (std::int64_t s = 0; s < tb.X; ++s) {
      const auto idx = static_cast<std::size_t>(i) * static_cast<std::size_t>(tb.X) +
                       static_cast<std::size_t>(s);
      tb.xb[idx] = x_dig[idx] * wgt;
    }
  }
  tb.lb.resize(l_dig.size());
  for (int i = 0; i < k; ++i) {
    const std::int64_t wgt = m.tile(HwLevel::T, i);
    for (std::int64_t s = 0; s < tb.L; ++s) {
      const auto idx = static_cast<std::size_t>(i) * static_cast<std::size_t>(tb.L) +
                       static_cast<std::size_t>(s);
      tb.lb[idx] = l_dig[idx] * wgt;
    }
  }
  tb.td = t_dig;  // T-level digits carry weight 1

  // ---- tensor-offset coefficients per workload loop --------------------
  std::vector<std::int64_t> cin(static_cast<std::size_t>(k), 0);
  std::vector<std::int64_t> cw(static_cast<std::size_t>(k), 0);
  std::vector<std::int64_t> cout(static_cast<std::size_t>(k), 0);
  std::vector<std::int64_t> cry(static_cast<std::size_t>(k), 0);
  std::vector<std::int64_t> ccx(static_cast<std::size_t>(k), 0);

  if (w.kind == WorkloadKind::MatMul) {
    const auto iM = static_cast<std::size_t>(w.loop_index('M'));
    const auto iN = static_cast<std::size_t>(w.loop_index('N'));
    const auto iP = static_cast<std::size_t>(w.loop_index('P'));
    const std::int64_t mm_m = layer.mm_m, mm_p = layer.mm_p;
    cin[iM] = mm_p;
    cin[iP] = 1;
    cw[iN] = mm_m;
    cw[iM] = 1;
    cout[iN] = mm_p;
    cout[iP] = 1;
  } else {
    tb.conv = true;
    const bool dw = w.kind == WorkloadKind::DepthwiseConv;
    const auto iN = static_cast<std::size_t>(w.loop_index('N'));
    const auto iE = static_cast<std::size_t>(w.loop_index('E'));
    const auto iF = static_cast<std::size_t>(w.loop_index('F'));
    const auto iR = static_cast<std::size_t>(w.loop_index('R'));
    const auto iS = static_cast<std::size_t>(w.loop_index('S'));
    const std::int64_t in_h = layer.in_h, in_w = layer.in_w;
    const std::int64_t kh = layer.kh, kw = layer.kw;
    const std::int64_t oh = layer.out_h(), ow = layer.out_w();
    const std::int64_t stride = layer.stride, pad = layer.pad;
    tb.in_h = in_h;
    tb.in_w = in_w;
    tb.conv_stride = stride;
    tb.pad = pad;

    // in_off = n*(IH*IW) + y*IW + xc with y = e*stride + r - pad and
    // xc = f*stride + s - pad.
    cin[iN] = in_h * in_w;
    cin[iE] = stride * in_w;
    cin[iR] = in_w;
    cin[iF] = stride;
    cin[iS] = 1;
    tb.in_const = -pad * in_w - pad;
    if (dw) {
      // weights {in_c, kh, kw} indexed (n, r, s); output channel is n.
      cw[iN] = kh * kw;
      cw[iR] = kw;
      cw[iS] = 1;
      cout[iN] = oh * ow;
    } else {
      const auto iM = static_cast<std::size_t>(w.loop_index('M'));
      cw[iM] = layer.in_c * kh * kw;
      cw[iN] = kh * kw;
      cw[iR] = kw;
      cw[iS] = 1;
      cout[iM] = oh * ow;
    }
    cout[iE] = ow;
    cout[iF] = 1;
    cry[iE] = stride;
    cry[iR] = 1;
    ccx[iF] = stride;
    ccx[iS] = 1;
    tb.ry_const = -pad;
    tb.cx_const = -pad;

    tb.free_loops.clear();
    if (!dw) tb.free_loops.push_back(w.loop_index('M'));
    tb.free_loops.push_back(w.loop_index('N'));
    tb.pairs.push_back({w.loop_index('E'), w.loop_index('R'), in_h});
    tb.pairs.push_back({w.loop_index('F'), w.loop_index('S'), in_w});
  }
  if (w.kind == WorkloadKind::MatMul) {
    tb.free_loops = {w.loop_index('M'), w.loop_index('N'), w.loop_index('P')};
  }

  // T-level run structure: the fastest-varying non-trivial T loop (the last
  // one with a tile > 1; the odometer advances trailing loops fastest).
  tb.t_run_loop = k - 1;
  tb.t_run_len = 1;
  for (int i = k; i-- > 0;) {
    if (tb.t_ext[static_cast<std::size_t>(i)] > 1) {
      tb.t_run_loop = i;
      tb.t_run_len = tb.t_ext[static_cast<std::size_t>(i)];
      break;
    }
  }
  const auto jf = static_cast<std::size_t>(tb.t_run_loop);
  tb.din = cin[jf];
  tb.dw = cw[jf];
  tb.dout = cout[jf];
  if (tb.conv) {
    tb.dry = cry[jf];
    tb.dcx = ccx[jf];
  }
  tb.c_in = cin;
  tb.c_w = cw;
  tb.c_out = cout;
  if (tb.conv) {
    tb.c_ry = cry;
    tb.c_cx = ccx;
  }

  // ---- vector-plan selection -------------------------------------------
  // Pick the unit-coefficient loop with the longest contiguous sweep (see
  // the header): its T tile, times its spatial extent when the spatial
  // digits are gidx-contiguous (sp_stride == t_ext <=> X/L tiles are 1).
  for (int i = 0; i < k; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    EngineTables::PlanKind kind = EngineTables::PlanKind::None;
    if (cin[iu] == 1 && cw[iu] == 1 && cout[iu] == 0) {
      kind = EngineTables::PlanKind::Dot;
    } else if (cin[iu] == 1 && cw[iu] == 0 && cout[iu] == 1) {
      kind = EngineTables::PlanKind::Axpy;
    }
    if (kind == EngineTables::PlanKind::None) continue;
    const std::int64_t nb =
        (tb.sp_ext[iu] > 1 && tb.sp_stride[iu] == tb.t_ext[iu]) ? tb.sp_ext[iu]
                                                                : 1;
    const std::int64_t cols = nb * tb.t_ext[iu];
    if (cols < 2) continue;  // nothing to sweep; legacy kernels are fine
    if (tb.plan_kind == EngineTables::PlanKind::None || cols > tb.cols) {
      tb.plan_kind = kind;
      tb.col_loop = i;
      tb.block = nb;
      tb.cols = cols;
    }
  }

  // ---- group-reordered spatial tables ----------------------------------
  // Group key: mixed radix over the OUTPUT-mapped loops' spatial digits.
  // Two valid iterations can only write the same output accumulator when
  // their output loops' digits agree at every level; grouping by the
  // spatial digits therefore makes groups pairwise write-disjoint within
  // any burst — the safety argument for the parallel fan-out. The column
  // loop is excluded from the group key (its sweep stays inside one burst
  // slice, and for Axpy its digit only offsets the output within the
  // group's disjoint range), and the sort key is extended to a total mixed
  // radix with the column digit innermost so fused spatial states land
  // adjacent and in sweep order.
  std::vector<std::int64_t> key(static_cast<std::size_t>(tb.S), 0);
  for (int i = 0; i < k; ++i) {
    if (cout[static_cast<std::size_t>(i)] == 0 || i == tb.col_loop) continue;
    const std::int64_t* dig =
        sp_dig.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(tb.S);
    const std::int64_t ext = tb.sp_ext[static_cast<std::size_t>(i)];
    for (std::int64_t s = 0; s < tb.S; ++s)
      key[static_cast<std::size_t>(s)] = key[static_cast<std::size_t>(s)] * ext + dig[s];
  }
  std::vector<std::int64_t> sort_key = key;
  if (tb.col_loop >= 0) {
    for (int i = 0; i < k; ++i) {
      if (cout[static_cast<std::size_t>(i)] != 0 || i == tb.col_loop) continue;
      const std::int64_t* dig =
          sp_dig.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(tb.S);
      const std::int64_t ext = tb.sp_ext[static_cast<std::size_t>(i)];
      for (std::int64_t s = 0; s < tb.S; ++s)
        sort_key[static_cast<std::size_t>(s)] =
            sort_key[static_cast<std::size_t>(s)] * ext + dig[s];
    }
    const auto lcu = static_cast<std::size_t>(tb.col_loop);
    const std::int64_t* dig =
        sp_dig.data() + lcu * static_cast<std::size_t>(tb.S);
    for (std::int64_t s = 0; s < tb.S; ++s)
      sort_key[static_cast<std::size_t>(s)] =
          sort_key[static_cast<std::size_t>(s)] * tb.sp_ext[lcu] + dig[s];
  }
  std::vector<std::int64_t> perm(static_cast<std::size_t>(tb.S));
  std::iota(perm.begin(), perm.end(), std::int64_t{0});
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::int64_t a, std::int64_t b) {
                     return sort_key[static_cast<std::size_t>(a)] <
                            sort_key[static_cast<std::size_t>(b)];
                   });

  // Weighted spatial contributions, in permuted (group-major) order.
  tb.spd.resize(sp_dig.size());
  for (int i = 0; i < k; ++i) {
    const std::int64_t* dig =
        sp_dig.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(tb.S);
    std::int64_t* dst =
        tb.spd.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(tb.S);
    const std::int64_t str = tb.sp_stride[static_cast<std::size_t>(i)];
    for (std::int64_t s = 0; s < tb.S; ++s)
      dst[s] = dig[static_cast<std::size_t>(perm[static_cast<std::size_t>(s)])] * str;
  }
  auto permuted_project = [&](const std::vector<std::int64_t>& coeff) {
    std::vector<std::int64_t> out(static_cast<std::size_t>(tb.S), 0);
    for (int i = 0; i < k; ++i) {
      const std::int64_t c = coeff[static_cast<std::size_t>(i)];
      if (c == 0) continue;
      const std::int64_t* src =
          tb.spd.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(tb.S);
      // spd already carries sp_stride; coefficients apply to gidx, whose
      // spatial part is exactly spd.
      for (std::int64_t s = 0; s < tb.S; ++s) out[static_cast<std::size_t>(s)] += c * src[s];
    }
    return out;
  };
  tb.in_sp = permuted_project(cin);
  tb.w_sp = permuted_project(cw);
  tb.out_sp = permuted_project(cout);
  if (tb.conv) {
    tb.ry_sp = permuted_project(cry);
    tb.cx_sp = permuted_project(ccx);
  }

  // Temporal projections (enumeration order; no reordering needed).
  tb.in_x = project(tb.xb, cin, tb.X);
  tb.w_x = project(tb.xb, cw, tb.X);
  tb.out_x = project(tb.xb, cout, tb.X);
  tb.in_l = project(tb.lb, cin, tb.L);
  tb.w_l = project(tb.lb, cw, tb.L);
  tb.out_l = project(tb.lb, cout, tb.L);
  tb.in_t = project(tb.td, cin, tb.T);
  tb.w_t = project(tb.td, cw, tb.T);
  tb.out_t = project(tb.td, cout, tb.T);
  if (tb.conv) {
    tb.ry_x = project(tb.xb, cry, tb.X);
    tb.cx_x = project(tb.xb, ccx, tb.X);
    tb.ry_l = project(tb.lb, cry, tb.L);
    tb.cx_l = project(tb.lb, ccx, tb.L);
    tb.ry_t = project(tb.td, cry, tb.T);
    tb.cx_t = project(tb.td, ccx, tb.T);
    tb.ry_t_max = *std::max_element(tb.ry_t.begin(), tb.ry_t.end());
    tb.cx_t_max = *std::max_element(tb.cx_t.begin(), tb.cx_t.end());
  }

  // ---- vector-plan verification and completion -------------------------
  if (tb.plan_kind != EngineTables::PlanKind::None) {
    const auto lcu = static_cast<std::size_t>(tb.col_loop);
    if (tb.block > 1) {
      // Verify the fused layout the innermost-ℓc sort was meant to produce:
      // every aligned block holds a single group-key value, constant digits
      // on every other loop, and ℓc's weighted digit sweeping 0, stride,
      // 2*stride, ... — exactly the precondition for gidx_ℓc advancing by 1
      // per column across the whole fused sweep.
      bool ok = tb.S % tb.block == 0;
      const std::int64_t* lcd = tb.spd.data() + lcu * static_cast<std::size_t>(tb.S);
      for (std::int64_t s0 = 0; ok && s0 < tb.S; s0 += tb.block) {
        for (std::int64_t j = 0; ok && j < tb.block; ++j) {
          const auto s = static_cast<std::size_t>(s0 + j);
          ok &= key[static_cast<std::size_t>(perm[s])] ==
                key[static_cast<std::size_t>(
                    perm[static_cast<std::size_t>(s0)])];
          ok &= lcd[s0 + j] == j * tb.sp_stride[lcu];
          for (int i = 0; ok && i < k; ++i) {
            if (i == tb.col_loop) continue;
            const std::int64_t* src =
                tb.spd.data() +
                static_cast<std::size_t>(i) * static_cast<std::size_t>(tb.S);
            ok &= src[s0 + j] == src[s0];
          }
        }
      }
      if (!ok) {
        tb.block = 1;
        tb.cols = tb.t_ext[lcu];
      }
    }
    if (tb.cols < 2) {
      // Nothing left to sweep; the legacy kernels handle any permutation.
      tb.plan_kind = EngineTables::PlanKind::None;
      tb.col_loop = -1;
      tb.block = 1;
      tb.cols = 1;
    }
  }
  if (tb.plan_kind != EngineTables::PlanKind::None) {
    const auto lcu = static_cast<std::size_t>(tb.col_loop);
    // Row loop: the largest remaining T tile, hoisted above the sweep with
    // constant per-row offset deltas.
    for (int i = 0; i < k; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      if (i == tb.col_loop || tb.t_ext[iu] <= 1) continue;
      if (tb.row_loop < 0 || tb.t_ext[iu] > tb.rows) {
        tb.row_loop = i;
        tb.rows = tb.t_ext[iu];
      }
    }
    if (tb.row_loop >= 0) {
      const auto lru = static_cast<std::size_t>(tb.row_loop);
      tb.row_din = cin[lru];
      tb.row_dw = cw[lru];
      tb.row_dout = cout[lru];
      if (tb.conv) {
        tb.row_dry = cry[lru];
        tb.row_dcx = ccx[lru];
      }
    }
    if (tb.conv) {
      tb.col_dry = cry[lcu];
      tb.col_dcx = ccx[lcu];
    }
    // T states with the ℓc/ℓr digits zero: (t0, row, col) then enumerates
    // every (spatial-in-block, t) iteration exactly once.
    for (std::int64_t t = 0; t < tb.T; ++t) {
      if (tb.td[lcu * static_cast<std::size_t>(tb.T) +
                static_cast<std::size_t>(t)] != 0)
        continue;
      if (tb.row_loop >= 0 &&
          tb.td[static_cast<std::size_t>(tb.row_loop) *
                    static_cast<std::size_t>(tb.T) +
                static_cast<std::size_t>(t)] != 0)
        continue;
      tb.plan_t0.push_back(t);
    }
  }

  // ---- chunks: contiguous runs of whole groups -------------------------
  std::vector<std::int64_t> group_start;  // first permuted index per group
  for (std::int64_t s = 0; s < tb.S; ++s) {
    if (s == 0 || key[static_cast<std::size_t>(perm[static_cast<std::size_t>(s)])] !=
                      key[static_cast<std::size_t>(perm[static_cast<std::size_t>(s - 1)])])
      group_start.push_back(s);
  }
  const std::int64_t n_groups = static_cast<std::int64_t>(group_start.size());
  const std::int64_t n_chunks =
      std::max<std::int64_t>(1, std::min<std::int64_t>(n_groups, max_chunks));
  for (std::int64_t c = 0; c < n_chunks; ++c) {
    const std::int64_t g0 = c * n_groups / n_chunks;
    const std::int64_t g1 = (c + 1) * n_groups / n_chunks;
    if (g0 == g1) continue;
    EngineTables::Chunk ch;
    ch.begin = group_start[static_cast<std::size_t>(g0)];
    ch.end = g1 < n_groups ? group_start[static_cast<std::size_t>(g1)] : tb.S;
    ch.sp_max.assign(static_cast<std::size_t>(k), 0);
    for (int i = 0; i < k; ++i) {
      const std::int64_t* src =
          tb.spd.data() + static_cast<std::size_t>(i) * static_cast<std::size_t>(tb.S);
      std::int64_t mx = 0;
      for (std::int64_t s = ch.begin; s < ch.end; ++s) mx = std::max(mx, src[s]);
      ch.sp_max[static_cast<std::size_t>(i)] = mx;
    }
    if (tb.conv) {
      ch.ry_sp_min = *std::min_element(tb.ry_sp.begin() + ch.begin,
                                       tb.ry_sp.begin() + ch.end);
      ch.ry_sp_max = *std::max_element(tb.ry_sp.begin() + ch.begin,
                                       tb.ry_sp.begin() + ch.end);
      ch.cx_sp_min = *std::min_element(tb.cx_sp.begin() + ch.begin,
                                       tb.cx_sp.begin() + ch.end);
      ch.cx_sp_max = *std::max_element(tb.cx_sp.begin() + ch.begin,
                                       tb.cx_sp.begin() + ch.end);
    }
    tb.chunks.push_back(std::move(ch));
  }
  return tb;
}

namespace {

/// Per-(x, l) burst state shared by the dense check, the kernels and the
/// stats-only counter.
struct BurstBases {
  std::array<std::int64_t, kMaxLoops> base{};  ///< per-loop (x, l) offset
  std::int64_t in_b = 0, w_b = 0, out_b = 0;
  std::int64_t ry_b = 0, cx_b = 0;
};

BurstBases burst_bases(const EngineTables& tb, std::int64_t x, std::int64_t l) {
  BurstBases b;
  for (int i = 0; i < tb.k; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    b.base[iu] = tb.xb[iu * static_cast<std::size_t>(tb.X) + static_cast<std::size_t>(x)] +
                 tb.lb[iu * static_cast<std::size_t>(tb.L) + static_cast<std::size_t>(l)];
  }
  b.in_b = tb.in_const + tb.in_x[static_cast<std::size_t>(x)] +
           tb.in_l[static_cast<std::size_t>(l)];
  b.w_b = tb.w_x[static_cast<std::size_t>(x)] + tb.w_l[static_cast<std::size_t>(l)];
  b.out_b = tb.out_x[static_cast<std::size_t>(x)] + tb.out_l[static_cast<std::size_t>(l)];
  if (tb.conv) {
    b.ry_b = tb.ry_const + tb.ry_x[static_cast<std::size_t>(x)] +
             tb.ry_l[static_cast<std::size_t>(l)];
    b.cx_b = tb.cx_const + tb.cx_x[static_cast<std::size_t>(x)] +
             tb.cx_l[static_cast<std::size_t>(l)];
  }
  return b;
}

/// True when every (spatial in [begin,end), t) iteration of the burst is
/// in-trip and (conv) inside the input image — the dense interior case.
bool burst_is_dense(const EngineTables& tb, const BurstBases& b,
                    const std::int64_t* sp_max, std::int64_t ry_sp_min,
                    std::int64_t ry_sp_max, std::int64_t cx_sp_min,
                    std::int64_t cx_sp_max) {
  for (int i = 0; i < tb.k; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    if (b.base[iu] + sp_max[iu] + tb.t_ext[iu] - 1 >= tb.trip[iu]) return false;
  }
  if (tb.conv) {
    if (b.ry_b + ry_sp_min < 0) return false;
    if (b.ry_b + ry_sp_max + tb.ry_t_max >= tb.in_h) return false;
    if (b.cx_b + cx_sp_min < 0) return false;
    if (b.cx_b + cx_sp_max + tb.cx_t_max >= tb.in_w) return false;
  }
  return true;
}

/// Innermost strided MACC over one T-run slice [jlo, jhi): the only
/// per-MACC work is two strided loads and one widening multiply-add. When
/// the run loop is a reduction loop (dout == 0) the whole slice folds into
/// one accumulator — the vectorizable dot-product shape.
inline void run_slice(const std::int16_t* FTDL_RESTRICT weights,
                      const std::int16_t* FTDL_RESTRICT input, acc_t* out,
                      std::int64_t i0, std::int64_t w0, std::int64_t o0,
                      std::int64_t din, std::int64_t dw, std::int64_t dout,
                      std::int64_t jlo, std::int64_t jhi) {
  if (dout == 0) {
    acc_t acc = 0;
    for (std::int64_t j = jlo; j < jhi; ++j)
      acc += static_cast<acc_t>(weights[w0 + j * dw]) *
             static_cast<acc_t>(input[i0 + j * din]);
    out[o0] += acc;
  } else {
    for (std::int64_t j = jlo; j < jhi; ++j)
      out[o0 + j * dout] += static_cast<acc_t>(weights[w0 + j * dw]) *
                            static_cast<acc_t>(input[i0 + j * din]);
  }
}

/// Branch-free interior kernel over [begin, end) x [0, T): per spatial
/// state, walk the T-runs with constant per-j offset deltas — no validity
/// work at all.
void dense_burst(const EngineTables& tb, const BurstBases& b,
                 std::int64_t begin, std::int64_t end,
                 const std::int16_t* FTDL_RESTRICT weights,
                 const std::int16_t* FTDL_RESTRICT input, acc_t* out) {
  const std::int64_t* FTDL_RESTRICT in_sp = tb.in_sp.data();
  const std::int64_t* FTDL_RESTRICT w_sp = tb.w_sp.data();
  const std::int64_t* FTDL_RESTRICT out_sp = tb.out_sp.data();
  const std::int64_t* FTDL_RESTRICT in_t = tb.in_t.data();
  const std::int64_t* FTDL_RESTRICT w_t = tb.w_t.data();
  const std::int64_t* FTDL_RESTRICT out_t = tb.out_t.data();
  const std::int64_t len = tb.t_run_len;
  const std::int64_t n_runs = tb.T / len;
  const std::int64_t din = tb.din, dw = tb.dw, dout = tb.dout;
  for (std::int64_t s = begin; s < end; ++s) {
    const std::int64_t in_s = b.in_b + in_sp[s];
    const std::int64_t w_s = b.w_b + w_sp[s];
    const std::int64_t out_s = b.out_b + out_sp[s];
    for (std::int64_t r = 0; r < n_runs; ++r) {
      const std::int64_t t0 = r * len;
      run_slice(weights, input, out, in_s + in_t[t0], w_s + w_t[t0],
                out_s + out_t[t0], din, dw, dout, 0, len);
    }
  }
}

/// Guarded edge kernel: clips each T-run to its valid [jlo, jhi) slice by
/// interval arithmetic (trip spill per loop, pad clipping per image axis)
/// and feeds the same strided inner loop — validity costs O(k) per run, not
/// per MACC. Returns the number of valid MACCs executed.
std::int64_t guarded_burst(const EngineTables& tb, const BurstBases& b,
                           std::int64_t begin, std::int64_t end,
                           const std::int16_t* weights,
                           const std::int16_t* input, acc_t* out) {
  const int k = tb.k;
  const std::int64_t S = tb.S;
  const std::int64_t len = tb.t_run_len;
  const std::int64_t n_runs = tb.T / len;
  const auto jf = static_cast<std::size_t>(tb.t_run_loop);
  std::int64_t valid = 0;
  std::array<std::int64_t, kMaxLoops> slack{};
  for (std::int64_t s = begin; s < end; ++s) {
    // Per-loop digit headroom at this spatial state: a t digit d_i is
    // in-trip iff d_i < slack_i.
    bool dead = false;
    for (int i = 0; i < k; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      slack[iu] =
          tb.trip[iu] - b.base[iu] -
          tb.spd[iu * static_cast<std::size_t>(S) + static_cast<std::size_t>(s)];
      dead |= slack[iu] <= 0;
    }
    if (dead) continue;  // digit 0 already spills: no valid t at all
    const std::int64_t in_s = b.in_b + tb.in_sp[static_cast<std::size_t>(s)];
    const std::int64_t w_s = b.w_b + tb.w_sp[static_cast<std::size_t>(s)];
    const std::int64_t out_s = b.out_b + tb.out_sp[static_cast<std::size_t>(s)];
    const std::int64_t ry_s =
        tb.conv ? b.ry_b + tb.ry_sp[static_cast<std::size_t>(s)] : 0;
    const std::int64_t cx_s =
        tb.conv ? b.cx_b + tb.cx_sp[static_cast<std::size_t>(s)] : 0;
    for (std::int64_t r = 0; r < n_runs; ++r) {
      const auto t0 = static_cast<std::size_t>(r * len);
      // Constant digits of this run (the run loop's own digit is 0 at t0;
      // its sweep is covered by the jhi clip below).
      bool ok = true;
      for (int i = 0; i < k; ++i) {
        const auto iu = static_cast<std::size_t>(i);
        ok &= tb.td[iu * static_cast<std::size_t>(tb.T) + t0] < slack[iu];
      }
      if (!ok) continue;
      std::int64_t jlo = 0;
      std::int64_t jhi = std::min(len, slack[jf]);
      if (tb.conv) {
        // Image clipping: at most one of ry/cx varies inside a run (the run
        // loop is a single workload loop), the other is constant. The
        // varying one advances by dry/dcx > 0 per j, so each bound is one
        // integer-division clip.
        const std::int64_t ry0 = ry_s + tb.ry_t[t0];
        if (tb.dry == 0) {
          if (ry0 < 0 || ry0 >= tb.in_h) continue;
        } else {
          if (ry0 < 0) jlo = std::max(jlo, ceil_div(-ry0, tb.dry));
          jhi = std::min(jhi, ceil_div(tb.in_h - ry0, tb.dry));
        }
        const std::int64_t cx0 = cx_s + tb.cx_t[t0];
        if (tb.dcx == 0) {
          if (cx0 < 0 || cx0 >= tb.in_w) continue;
        } else {
          if (cx0 < 0) jlo = std::max(jlo, ceil_div(-cx0, tb.dcx));
          jhi = std::min(jhi, ceil_div(tb.in_w - cx0, tb.dcx));
        }
      }
      if (jhi <= jlo) continue;
      run_slice(weights, input, out, in_s + tb.in_t[t0], w_s + tb.w_t[t0],
                out_s + tb.out_t[t0], tb.din, tb.dw, tb.dout, jlo, jhi);
      valid += jhi - jlo;
    }
  }
  return valid;
}

/// Interior kernel when a vector plan is set: every (block, t0, row) slice
/// is one contiguous sweep of tb.cols MACCs handed to the runtime-dispatched
/// SIMD kernels — a single dot reduction (kDot) or weight-broadcast axpy.
template <bool kDot>
void dense_burst_plan(const EngineTables& tb, const BurstBases& b,
                      std::int64_t begin, std::int64_t end,
                      const std::int16_t* FTDL_RESTRICT weights,
                      const std::int16_t* FTDL_RESTRICT input, acc_t* out) {
  const std::int64_t* FTDL_RESTRICT in_sp = tb.in_sp.data();
  const std::int64_t* FTDL_RESTRICT w_sp = tb.w_sp.data();
  const std::int64_t* FTDL_RESTRICT out_sp = tb.out_sp.data();
  const std::int64_t* FTDL_RESTRICT in_t = tb.in_t.data();
  const std::int64_t* FTDL_RESTRICT w_t = tb.w_t.data();
  const std::int64_t* FTDL_RESTRICT out_t = tb.out_t.data();
  const std::int64_t cols = tb.cols;
  const std::int64_t rows = tb.rows;
  for (std::int64_t s0 = begin; s0 < end; s0 += tb.block) {
    const std::int64_t in_s = b.in_b + in_sp[s0];
    const std::int64_t w_s = b.w_b + w_sp[s0];
    const std::int64_t out_s = b.out_b + out_sp[s0];
    for (const std::int64_t t0 : tb.plan_t0) {
      const auto t0u = static_cast<std::size_t>(t0);
      std::int64_t i0 = in_s + in_t[t0u];
      std::int64_t w0 = w_s + w_t[t0u];
      std::int64_t o0 = out_s + out_t[t0u];
      for (std::int64_t r = 0; r < rows;
           ++r, i0 += tb.row_din, w0 += tb.row_dw, o0 += tb.row_dout) {
        if constexpr (kDot) {
          out[o0] += simd::dot_i16(weights + w0, input + i0, cols);
        } else {
          simd::axpy_i16(out + o0, input + i0, weights[w0], cols);
        }
      }
    }
  }
}

/// Guarded edge kernel under a vector plan: the trip clip on ℓc is one
/// contiguous [clo, chi) slice of the column sweep (gidx_ℓc advances by 1
/// per column), the row clip bounds ℓr, and the conv image clips stay
/// integer divisions — so even edge bursts feed long SIMD sweeps. Returns
/// the number of valid MACCs executed.
template <bool kDot>
std::int64_t guarded_burst_plan(const EngineTables& tb, const BurstBases& b,
                                std::int64_t begin, std::int64_t end,
                                const std::int16_t* weights,
                                const std::int16_t* input, acc_t* out) {
  const int k = tb.k;
  const std::int64_t S = tb.S;
  const auto lcu = static_cast<std::size_t>(tb.col_loop);
  std::int64_t valid = 0;
  std::array<std::int64_t, kMaxLoops> slack{};
  for (std::int64_t s0 = begin; s0 < end; s0 += tb.block) {
    // Per-loop digit headroom at the block start; within the block only
    // ℓc's digit varies and its sweep is clipped by chi_all below.
    bool dead = false;
    for (int i = 0; i < k; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      slack[iu] =
          tb.trip[iu] - b.base[iu] -
          tb.spd[iu * static_cast<std::size_t>(S) + static_cast<std::size_t>(s0)];
      if (i != tb.col_loop) dead |= slack[iu] <= 0;
    }
    const std::int64_t chi_all = std::min(tb.cols, slack[lcu]);
    if (dead || chi_all <= 0) continue;
    const std::int64_t in_s = b.in_b + tb.in_sp[static_cast<std::size_t>(s0)];
    const std::int64_t w_s = b.w_b + tb.w_sp[static_cast<std::size_t>(s0)];
    const std::int64_t out_s = b.out_b + tb.out_sp[static_cast<std::size_t>(s0)];
    const std::int64_t ry_s =
        tb.conv ? b.ry_b + tb.ry_sp[static_cast<std::size_t>(s0)] : 0;
    const std::int64_t cx_s =
        tb.conv ? b.cx_b + tb.cx_sp[static_cast<std::size_t>(s0)] : 0;
    for (const std::int64_t t0 : tb.plan_t0) {
      const auto t0u = static_cast<std::size_t>(t0);
      // Constant digits of this t0 (the ℓc/ℓr digits are 0 by plan_t0
      // construction, so their checks are vacuous given slack > 0).
      bool ok = true;
      for (int i = 0; i < k; ++i) {
        const auto iu = static_cast<std::size_t>(i);
        ok &= tb.td[iu * static_cast<std::size_t>(tb.T) + t0u] <
              slack[iu];
      }
      if (!ok) continue;
      std::int64_t rhi = tb.rows;
      if (tb.row_loop >= 0)
        rhi = std::min(rhi, slack[static_cast<std::size_t>(tb.row_loop)]);
      std::int64_t i0 = in_s + tb.in_t[t0u];
      std::int64_t w0 = w_s + tb.w_t[t0u];
      std::int64_t o0 = out_s + tb.out_t[t0u];
      std::int64_t ry0 = tb.conv ? ry_s + tb.ry_t[t0u] : 0;
      std::int64_t cx0 = tb.conv ? cx_s + tb.cx_t[t0u] : 0;
      for (std::int64_t r = 0; r < rhi;
           ++r, i0 += tb.row_din, w0 += tb.row_dw, o0 += tb.row_dout,
                ry0 += tb.row_dry, cx0 += tb.row_dcx) {
        std::int64_t clo = 0;
        std::int64_t chi = chi_all;
        if (tb.conv) {
          // Image clipping: per column at most one of ry/cx varies (ℓc is a
          // single workload loop); the other is row-constant and checked
          // outright.
          if (tb.col_dry == 0) {
            if (ry0 < 0 || ry0 >= tb.in_h) continue;
          } else {
            if (ry0 < 0) clo = std::max(clo, ceil_div(-ry0, tb.col_dry));
            chi = std::min(chi, ceil_div(tb.in_h - ry0, tb.col_dry));
          }
          if (tb.col_dcx == 0) {
            if (cx0 < 0 || cx0 >= tb.in_w) continue;
          } else {
            if (cx0 < 0) clo = std::max(clo, ceil_div(-cx0, tb.col_dcx));
            chi = std::min(chi, ceil_div(tb.in_w - cx0, tb.col_dcx));
          }
        }
        if (chi <= clo) continue;
        if constexpr (kDot) {
          out[o0] += simd::dot_i16(weights + w0 + clo, input + i0 + clo,
                                   chi - clo);
        } else {
          simd::axpy_i16(out + o0 + clo, input + i0 + clo, weights[w0],
                         chi - clo);
        }
        valid += chi - clo;
      }
    }
  }
  return valid;
}

}  // namespace

std::int64_t run_functional(const EngineTables& tb, const std::int16_t* weights,
                            const std::int16_t* input, acc_t* out,
                            ThreadPool* pool) {
  const std::size_t n_chunks = tb.chunks.size();
  auto run_chunk = [&](std::size_t ci) -> std::int64_t {
    const EngineTables::Chunk& c = tb.chunks[ci];
    std::int64_t v = 0;
    for (std::int64_t x = 0; x < tb.X; ++x) {
      for (std::int64_t l = 0; l < tb.L; ++l) {
        const BurstBases b = burst_bases(tb, x, l);
        if (burst_is_dense(tb, b, c.sp_max.data(), c.ry_sp_min, c.ry_sp_max,
                           c.cx_sp_min, c.cx_sp_max)) {
          switch (tb.plan_kind) {
            case EngineTables::PlanKind::Dot:
              dense_burst_plan<true>(tb, b, c.begin, c.end, weights, input,
                                     out);
              break;
            case EngineTables::PlanKind::Axpy:
              dense_burst_plan<false>(tb, b, c.begin, c.end, weights, input,
                                      out);
              break;
            case EngineTables::PlanKind::None:
              dense_burst(tb, b, c.begin, c.end, weights, input, out);
              break;
          }
          v += (c.end - c.begin) * tb.T;
        } else {
          switch (tb.plan_kind) {
            case EngineTables::PlanKind::Dot:
              v += guarded_burst_plan<true>(tb, b, c.begin, c.end, weights,
                                            input, out);
              break;
            case EngineTables::PlanKind::Axpy:
              v += guarded_burst_plan<false>(tb, b, c.begin, c.end, weights,
                                             input, out);
              break;
            case EngineTables::PlanKind::None:
              v += guarded_burst(tb, b, c.begin, c.end, weights, input, out);
              break;
          }
        }
      }
    }
    return v;
  };
  if (pool != nullptr && pool->jobs() > 1 && n_chunks > 1) {
    std::vector<std::int64_t> valid(n_chunks, 0);
    pool->parallel_for(n_chunks,
                       [&](std::size_t ci) { valid[ci] = run_chunk(ci); });
    // Deterministic (and associative-integer) merge.
    std::int64_t total = 0;
    for (std::int64_t v : valid) total += v;
    return total;
  }
  // Serial path stays heap-free: it runs inside the serving steady state,
  // where per-request allocations are pinned to zero.
  std::int64_t total = 0;
  for (std::size_t ci = 0; ci < n_chunks; ++ci) total += run_chunk(ci);
  return total;
}

std::int64_t count_valid_maccs(const EngineTables& tb) {
  const int k = tb.k;
  // Full-space spatial maxima for the dense shortcut.
  std::array<std::int64_t, kMaxLoops> sp_max{};
  for (int i = 0; i < k; ++i) {
    const auto iu = static_cast<std::size_t>(i);
    sp_max[iu] = (tb.sp_ext[iu] - 1) * tb.sp_stride[iu];
  }
  std::int64_t ry_sp_min = 0, ry_sp_max = 0, cx_sp_min = 0, cx_sp_max = 0;
  if (tb.conv) {
    ry_sp_min = *std::min_element(tb.ry_sp.begin(), tb.ry_sp.end());
    ry_sp_max = *std::max_element(tb.ry_sp.begin(), tb.ry_sp.end());
    cx_sp_min = *std::min_element(tb.cx_sp.begin(), tb.cx_sp.end());
    cx_sp_max = *std::max_element(tb.cx_sp.begin(), tb.cx_sp.end());
  }

  std::int64_t total = 0;
  for (std::int64_t x = 0; x < tb.X; ++x) {
    for (std::int64_t l = 0; l < tb.L; ++l) {
      const BurstBases b = burst_bases(tb, x, l);
      if (burst_is_dense(tb, b, sp_max.data(), ry_sp_min, ry_sp_max, cx_sp_min,
                         cx_sp_max)) {
        total += tb.S * tb.T;
        continue;
      }
      // The burst iteration space is the cross product over loops of their
      // (spatial digit, t digit) pairs, so the valid count factorizes into
      // per-loop counts — with the (E, R) and (F, S) image-bound couplings
      // counted pairwise.
      std::int64_t burst = 1;
      for (int idx : tb.free_loops) {
        const auto iu = static_cast<std::size_t>(idx);
        std::int64_t cnt = 0;
        for (std::int64_t i = 0; i < tb.sp_ext[iu] && burst != 0; ++i) {
          const std::int64_t v0 = b.base[iu] + i * tb.sp_stride[iu];
          cnt += std::clamp<std::int64_t>(tb.trip[iu] - v0, 0, tb.t_ext[iu]);
        }
        burst *= cnt;
        if (burst == 0) break;
      }
      for (std::size_t p = 0; p < tb.pairs.size() && burst != 0; ++p) {
        const EngineTables::CoupledPair& cp = tb.pairs[p];
        const auto ie = static_cast<std::size_t>(cp.outer);
        const auto ir = static_cast<std::size_t>(cp.kernel);
        std::int64_t cnt = 0;
        for (std::int64_t i = 0; i < tb.sp_ext[ie]; ++i) {
          for (std::int64_t j = 0; j < tb.t_ext[ie]; ++j) {
            const std::int64_t v = b.base[ie] + i * tb.sp_stride[ie] + j;
            if (v >= tb.trip[ie]) break;  // j ascending: rest of block too
            // Kernel index range keeping the image coordinate in
            // [0, bound): r in [pad - stride*v, pad + bound - stride*v).
            const std::int64_t lo = tb.pad - tb.conv_stride * v;
            const std::int64_t hi =
                std::min(tb.trip[ir], tb.pad + cp.bound - tb.conv_stride * v);
            for (std::int64_t i2 = 0; i2 < tb.sp_ext[ir]; ++i2) {
              const std::int64_t b0 = b.base[ir] + i2 * tb.sp_stride[ir];
              const std::int64_t lo2 = std::max(b0, lo);
              const std::int64_t hi2 =
                  std::min({b0 + tb.t_ext[ir], hi, tb.trip[ir]});
              if (hi2 > lo2) cnt += hi2 - lo2;
            }
          }
        }
        burst *= cnt;
      }
      total += burst;
    }
  }
  return total;
}

}  // namespace ftdl::sim::detail
