// Design-space exploration across overlay configurations.
//
// Objective 3 (Sec. IV-D3) fixes the TPE count and searches (D1, D2, D3);
// this module generalizes it into a full DSE driver: it sweeps overlay
// shapes (optionally buffer sizes) on a device, evaluates each candidate's
// timing (achievable clock), network schedule (cycles, efficiency) and
// power, and returns the Pareto-optimal set over {throughput, power,
// resources}.
#pragma once

#include <vector>

#include "compiler/scheduler.h"
#include "fpga/device.h"
#include "power/fpga_power.h"

namespace ftdl::dse {

struct DseOptions {
  /// Candidate cascade lengths; 0 entries means a built-in default sweep.
  std::vector<int> d1_candidates = {4, 6, 8, 10, 12, 16, 20, 24};
  /// Sweep ActBUF capacities too (64/128/256) instead of keeping the base.
  bool sweep_actbuf = false;
  /// Derive each candidate's clock from its own placement timing (floored
  /// to a 25 MHz grid); otherwise all candidates run at the base clock.
  bool derive_clock = true;
  std::int64_t search_budget_per_layer = 8'000;
  /// Skip candidates using fewer than this fraction of the device's DSPs.
  double min_dsp_utilization = 0.5;
  /// Parallelism for candidate evaluation: > 0 resizes the shared compiler
  /// session's pool; 0 keeps the session default (FTDL_JOBS env, else the
  /// hardware thread count). The evaluated point set is identical for any
  /// value — candidates are collected back in enumeration order.
  int jobs = 0;
};

struct DsePoint {
  arch::OverlayConfig config;
  double clk_h_hz = 0.0;        ///< operating CLKh after the clock policy
  double fps = 0.0;
  double efficiency = 0.0;      ///< MAC-weighted network efficiency
  double power_w = 0.0;
  double gops_per_w = 0.0;
  int tpes = 0;
  int bram18_used = 0;
  bool pareto = false;          ///< on the {fps max, power min} frontier
};

struct DseResult {
  std::vector<DsePoint> points;       ///< all evaluated, fps-descending
  std::vector<DsePoint> frontier() const;  ///< pareto-only, fps-descending
};

/// Sweeps overlay shapes of `net` on `device`. Throws ftdl::ConfigError only
/// for empty candidate lists; individual infeasible candidates are skipped.
DseResult explore(const nn::Network& net, const fpga::Device& device,
                  const arch::OverlayConfig& base, const DseOptions& options);

/// Writes points as CSV (returns the path).
std::string export_csv(const DseResult& result, const std::string& path);

}  // namespace ftdl::dse
