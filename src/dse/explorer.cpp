#include "dse/explorer.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/csv.h"
#include "common/error.h"
#include "common/str_util.h"
#include "compiler/session.h"
#include "dram/dram_power.h"
#include "obs/obs.h"
#include "timing/placement.h"
#include "timing/timing_analyzer.h"

namespace ftdl::dse {

namespace {

/// Evaluates one candidate end to end; returns false when it is infeasible
/// (does not fit the device / no feasible mapping / timing below base clock).
bool evaluate_candidate(const nn::Network& net, const fpga::Device& device,
                        arch::OverlayConfig cfg, const DseOptions& opt,
                        DsePoint& out) {
  try {
    timing::OverlayGeometry g;
    g.d1 = cfg.d1;
    g.d2 = cfg.d2;
    g.d3 = cfg.d3;
    const timing::PlacementResult placement = timing::place_ftdl(device, g);
    const timing::TimingReport sta = timing::analyze_double_pump(device, placement);
    if (opt.derive_clock) {
      const double grid = 25e6;
      cfg.clocks = fpga::ClockPair::from_high(
          std::floor(sta.clk_h_fmax_hz / grid) * grid);
    } else if (cfg.clocks.clk_h_hz > sta.clk_h_fmax_hz) {
      return false;  // candidate cannot run at the requested clock
    }
    cfg.validate_for_device(device);

    const compiler::NetworkSchedule sched = compiler::schedule_network(
        net, cfg, compiler::Objective::Performance,
        opt.search_budget_per_layer);

    // DRAM + FPGA power at this candidate's activity.
    double rd = 0.0, wr = 0.0;
    for (const compiler::LayerProgram& p : sched.layers) {
      rd += p.perf.dram_rd_bytes * p.layer.repeat;
      wr += p.perf.dram_wr_bytes * p.layer.repeat;
    }
    const dram::DramReport dr = dram::evaluate_volume(
        static_cast<std::uint64_t>(rd), static_cast<std::uint64_t>(wr),
        sched.seconds_per_frame(), dram::DramSpec::ddr4_2400());
    const power::PowerBreakdown pw = power::estimate_power(
        device, cfg, sched.hardware_efficiency, dr.average_watts());

    out.config = cfg;
    out.clk_h_hz = cfg.clocks.clk_h_hz;
    out.fps = sched.fps();
    out.efficiency = sched.hardware_efficiency;
    out.power_w = pw.total_w();
    out.gops_per_w =
        power::power_efficiency_gops_per_w(sched.effective_gops(), pw);
    out.tpes = cfg.tpes();
    const std::int64_t psum_brams =
        (cfg.psumbuf_words * cfg.psum_bytes * 8 + 18 * 1024 - 1) / (18 * 1024);
    out.bram18_used =
        cfg.tpes() + static_cast<int>(cfg.superblocks() * psum_brams);
    return true;
  } catch (const Error&) {
    return false;
  }
}

void mark_pareto(std::vector<DsePoint>& pts) {
  for (DsePoint& a : pts) {
    a.pareto = true;
    for (const DsePoint& b : pts) {
      // b dominates a: at least as fast AND at most as power-hungry,
      // strictly better in one dimension.
      if (b.fps >= a.fps && b.power_w <= a.power_w &&
          (b.fps > a.fps || b.power_w < a.power_w)) {
        a.pareto = false;
        break;
      }
    }
  }
}

}  // namespace

DseResult explore(const nn::Network& net, const fpga::Device& device,
                  const arch::OverlayConfig& base, const DseOptions& options) {
  if (options.d1_candidates.empty())
    throw ConfigError("DSE needs at least one D1 candidate");

  std::vector<std::int64_t> actbufs =
      options.sweep_actbuf ? std::vector<std::int64_t>{64, 128, 256}
                           : std::vector<std::int64_t>{base.actbuf_words};

  // Enumerate candidates serially, then evaluate them concurrently through
  // the shared compiler session (its program cache makes overlapping
  // candidates cheap) and collect survivors back in enumeration order, so
  // the point set is identical to a serial sweep.
  std::vector<arch::OverlayConfig> candidates;
  for (int d1 : options.d1_candidates) {
    for (int d2 = 1; d2 <= device.dsp_columns; ++d2) {
      // Per (d1, d2): deepest D3 that fits the column height.
      const int d3 = device.dsp_per_column / d1;
      if (d3 < 1) continue;
      for (std::int64_t actbuf : actbufs) {
        arch::OverlayConfig cfg = base;
        cfg.d1 = d1;
        cfg.d2 = d2;
        cfg.d3 = d3;
        cfg.actbuf_words = actbuf;
        if (double(cfg.tpes()) <
            options.min_dsp_utilization * device.total_dsp())
          continue;
        candidates.push_back(cfg);
      }
    }
  }

  compiler::CompilerSession& session = compiler::CompilerSession::global();
  if (options.jobs > 0) session.set_jobs(options.jobs);

  obs::ScopedSpan span("dse", "explore",
                       {{"network", net.name()},
                        {"candidates", std::to_string(candidates.size())}});

  std::vector<std::unique_ptr<DsePoint>> evaluated(candidates.size());
  session.pool().parallel_for(candidates.size(), [&](std::size_t i) {
    compiler::name_worker_track();
    obs::ScopedSpan task_span(
        "dse", "candidate",
        {{"split", strformat("%dx%dx%d", candidates[i].d1, candidates[i].d2,
                             candidates[i].d3)}});
    DsePoint pt;
    if (evaluate_candidate(net, device, candidates[i], options, pt)) {
      evaluated[i] = std::make_unique<DsePoint>(pt);
    }
  });

  DseResult result;
  for (const auto& pt : evaluated) {
    if (pt) result.points.push_back(*pt);
  }

  mark_pareto(result.points);
  std::sort(result.points.begin(), result.points.end(),
            [](const DsePoint& a, const DsePoint& b) { return a.fps > b.fps; });
  return result;
}

std::vector<DsePoint> DseResult::frontier() const {
  std::vector<DsePoint> out;
  for (const DsePoint& p : points) {
    if (p.pareto) out.push_back(p);
  }
  return out;
}

std::string export_csv(const DseResult& result, const std::string& path) {
  CsvWriter csv(path, {"d1", "d2", "d3", "actbuf", "clk_mhz", "fps",
                       "efficiency", "power_w", "gops_per_w", "tpes",
                       "bram18", "pareto"});
  for (const DsePoint& p : result.points) {
    csv.row({std::to_string(p.config.d1), std::to_string(p.config.d2),
             std::to_string(p.config.d3),
             std::to_string(p.config.actbuf_words),
             strformat("%.0f", p.clk_h_hz / 1e6), strformat("%.2f", p.fps),
             strformat("%.4f", p.efficiency), strformat("%.2f", p.power_w),
             strformat("%.2f", p.gops_per_w), std::to_string(p.tpes),
             std::to_string(p.bram18_used), p.pareto ? "1" : "0"});
  }
  return path;
}

}  // namespace ftdl::dse
