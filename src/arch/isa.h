// Controller instruction set.
//
// Before a layer executes, the compiler streams configuration instructions
// over the InstBUS to every SuperBlock-row Controller (Sec. III-B). The
// Controller decodes them into loop trip counts and buffer tile sizes, then
// a Launch instruction starts the periodic control flow of Listing 1.
//
// Encoding: one 64-bit word per instruction —
//   [63:56] opcode | [55:48] field | [47:0] immediate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftdl::arch {

enum class Opcode : std::uint8_t {
  Nop = 0,
  SetLoop = 1,       ///< field = temporal level (0=X,1=L,2=T), imm = trip count
  SetActTile = 2,    ///< imm = ActBUF words loaded per LoopL refill
  SetPsumTile = 3,   ///< imm = PSumBUF entries written back per LoopX step
  SetPsumMode = 4,   ///< field: 0 = overwrite, 1 = accumulate (multi-pass)
  SetWeightBase = 5, ///< imm = WBUF base address for this layer's tile
  Launch = 6,        ///< start execution with the configured state
  Barrier = 7,       ///< wait until all SuperBlocks in the row drain
};

const char* to_string(Opcode op);

/// Temporal-loop selector for SetLoop.
enum class TemporalLevel : std::uint8_t { X = 0, L = 1, T = 2 };

struct Instruction {
  Opcode op = Opcode::Nop;
  std::uint8_t field = 0;
  std::uint64_t imm = 0;  ///< 48-bit immediate

  bool operator==(const Instruction&) const = default;

  std::string to_string() const;
};

/// True when `field` is a defined value for `op`: SetLoop takes a
/// TemporalLevel (0-2), SetPsumMode a flag (0/1), every other opcode
/// requires field = 0.
bool field_is_valid(Opcode op, std::uint8_t field);

/// Packs an instruction into its 64-bit InstBUS word; throws ftdl::Error on
/// an immediate exceeding 48 bits or a field value undefined for the
/// opcode (see field_is_valid).
std::uint64_t encode(const Instruction& inst);

/// Decodes an InstBUS word; throws ftdl::Error on an unknown opcode. An
/// oversize immediate is impossible by construction here — the word only
/// carries 48 immediate bits — so that check lives in encode() instead.
/// Undefined field values decode verbatim; ftdl::verify flags them.
Instruction decode(std::uint64_t word);

/// Convenience builders.
Instruction set_loop(TemporalLevel level, std::uint64_t trip);
Instruction set_act_tile(std::uint64_t words);
Instruction set_psum_tile(std::uint64_t words);
Instruction set_psum_mode(bool accumulate);
Instruction set_weight_base(std::uint64_t addr);
Instruction launch();
Instruction barrier();

/// A per-row instruction stream.
using InstStream = std::vector<Instruction>;

/// Decodes a whole stream of InstBUS words.
InstStream decode_stream(const std::vector<std::uint64_t>& words);

/// Human-readable disassembly, one instruction per line.
std::string disassemble(const InstStream& stream);

/// The controller's architectural state after consuming a configuration
/// stream (what the Launch instruction will execute).
struct ControllerState {
  std::uint64_t x_trip = 1, l_trip = 1, t_trip = 1;
  std::uint64_t act_tile_words = 0;
  std::uint64_t psum_tile_words = 0;
  bool psum_accumulate = false;
  std::uint64_t weight_base = 0;
  bool launched = false;
};

/// Decodes and applies a stream; throws ftdl::Error on malformed streams
/// (Launch before configuration, unknown fields, missing Barrier).
ControllerState interpret_stream(const InstStream& stream);

}  // namespace ftdl::arch
