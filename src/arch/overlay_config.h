// Parameterized FTDL overlay configuration (Fig. 3).
//
// D1 = TPEs per SuperBlock (cascade length), D2 = SuperBlock columns,
// D3 = SuperBlock rows. Buffer capacities and bus widths complete the
// hardware contract the compiler schedules against:
//   * ActBUF — distributed RAM per TPE (64-256 words), double-buffered;
//   * WBUF   — one BRAM18 per TPE (1024 x 16-bit words), weight-stationary;
//   * PSumBUF — BRAM per SuperBlock (1024-4096 words), double-buffered.
#pragma once

#include <cstdint>
#include <string>

#include "fpga/clocking.h"
#include "fpga/device.h"

namespace ftdl::arch {

struct OverlayConfig {
  // Spatial extents (Fig. 3 labels).
  int d1 = 12;
  int d2 = 5;
  int d3 = 20;

  // Per-TPE buffer capacities in 16-bit words.
  std::int64_t actbuf_words = 128;   ///< LUTRAM, double-buffered
  std::int64_t wbuf_words = 1024;    ///< one BRAM18
  // Per-SuperBlock partial-sum buffer capacity in psum entries.
  std::int64_t psumbuf_words = 2048; ///< BRAM, double-buffered

  // On-chip bus widths in 16-bit words per CLKh cycle.
  int actbus_words_per_cycle = 4;
  int psumbus_words_per_cycle = 4;

  // Off-chip memory (paper: 26 GB/s achievable on most platforms).
  double dram_rd_bytes_per_sec = 26e9;
  double dram_wr_bytes_per_sec = 26e9;

  /// Bytes per partial-sum word on the PSumBUS / DRAM path (32-bit psums).
  int psum_bytes = 4;

  // Clocks (Table II example: 650 MHz DSP clock).
  fpga::ClockPair clocks = fpga::ClockPair::from_high(650e6);

  /// Double-pump enabled (ablation A switches this off, halving the DSP
  /// clock to the BRAM ceiling with a single clock).
  bool double_pump = true;

  /// Charge weight-(re)load time to layers executed in multiple weight
  /// groups. The paper's methodology preloads weights "during FPGA
  /// initialization" and excludes reload from FPS, so this defaults off;
  /// turning it on models a DRAM-fed weight reload between groups.
  bool charge_weight_reload = false;

  // ---- derived ------------------------------------------------------------

  int tpes() const { return d1 * d2 * d3; }
  int superblocks() const { return d2 * d3; }

  /// Usable words per ActBUF phase: double-buffering halves the capacity.
  std::int64_t actbuf_usable() const { return actbuf_words / 2; }
  std::int64_t psumbuf_usable() const { return psumbuf_words / 2; }

  /// Pipeline latency of the TPE chain in a SuperBlock (Sec. IV-B1).
  std::int64_t pipeline_latency() const { return d1 + 6; }

  /// DRAM bandwidth expressed in bytes per CLKh cycle.
  double dram_rd_bytes_per_cycle() const {
    return dram_rd_bytes_per_sec / clocks.clk_h_hz;
  }
  double dram_wr_bytes_per_cycle() const {
    return dram_wr_bytes_per_sec / clocks.clk_h_hz;
  }

  /// Validates internal consistency; throws ftdl::ConfigError.
  void validate() const;

  /// Validates that this overlay fits `device` (DSP columns/heights, BRAM);
  /// throws ftdl::ConfigError.
  void validate_for_device(const fpga::Device& device) const;

  std::string to_string() const;
};

/// The example configuration of Table II: D1=12, D2=5, D3=20 on xcvu125 at
/// 650 MHz, 26 GB/s DRAM.
OverlayConfig paper_config();

}  // namespace ftdl::arch
