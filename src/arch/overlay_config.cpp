#include "arch/overlay_config.h"

#include "common/error.h"
#include "common/str_util.h"

namespace ftdl::arch {

void OverlayConfig::validate() const {
  if (d1 <= 0 || d2 <= 0 || d3 <= 0)
    throw ConfigError("overlay extents must be positive");
  if (actbuf_words < 64 || actbuf_words > 256)
    throw ConfigError("ActBUF must hold 64-256 words (distributed RAM)");
  if (wbuf_words <= 0 || wbuf_words > 4096)
    throw ConfigError("WBUF must fit in the TPE's BRAM budget");
  if (psumbuf_words < 1024 || psumbuf_words > 4096)
    throw ConfigError("PSumBUF must hold 1024-4096 words (BRAM)");
  if (actbus_words_per_cycle <= 0 || psumbus_words_per_cycle <= 0)
    throw ConfigError("bus widths must be positive");
  if (dram_rd_bytes_per_sec <= 0 || dram_wr_bytes_per_sec <= 0)
    throw ConfigError("DRAM bandwidth must be positive");
  if (psum_bytes <= 0) throw ConfigError("psum width must be positive");
  if (clocks.clk_h_hz <= 0) throw ConfigError("clock must be positive");
}

void OverlayConfig::validate_for_device(const fpga::Device& device) const {
  validate();
  if (d2 > device.dsp_columns)
    throw ConfigError(strformat("D2=%d exceeds %d DSP columns on %s", d2,
                                device.dsp_columns, device.name.c_str()));
  if (d1 * d3 > device.dsp_per_column)
    throw ConfigError(strformat(
        "D1*D3=%d exceeds %d DSPs per column on %s (paper constraint)",
        d1 * d3, device.dsp_per_column, device.name.c_str()));
  // One WBUF BRAM18 per TPE plus PSumBUF BRAMs (18 Kbit each) per SuperBlock.
  const std::int64_t psum_brams =
      (psumbuf_words * psum_bytes * 8 + 18 * 1024 - 1) / (18 * 1024);
  const std::int64_t bram_needed = std::int64_t{tpes()} + superblocks() * psum_brams;
  if (bram_needed > device.total_bram18())
    throw ConfigError(strformat("overlay needs %lld BRAM18 but %s has %d",
                                static_cast<long long>(bram_needed),
                                device.name.c_str(), device.total_bram18()));
  if (double_pump) {
    fpga::validate_clock_pair(clocks, device.timing);
  } else if (clocks.clk_h_hz > device.timing.bram_fmax_hz + 1.0) {
    throw ConfigError("single-clock design exceeds BRAM fmax");
  }
}

std::string OverlayConfig::to_string() const {
  return strformat(
      "FTDL[D1=%d D2=%d D3=%d, %d TPEs, ActBUF=%lld WBUF=%lld PSumBUF=%lld, "
      "CLKh=%s%s]",
      d1, d2, d3, tpes(), static_cast<long long>(actbuf_words),
      static_cast<long long>(wbuf_words), static_cast<long long>(psumbuf_words),
      format_hz(clocks.clk_h_hz).c_str(), double_pump ? "" : " (no double-pump)");
}

OverlayConfig paper_config() {
  OverlayConfig c;  // defaults are the Table II example
  c.validate();
  return c;
}

}  // namespace ftdl::arch
