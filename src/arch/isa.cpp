#include "arch/isa.h"

#include "common/error.h"
#include "common/str_util.h"

namespace ftdl::arch {

namespace {
constexpr std::uint64_t kImmMask = (std::uint64_t{1} << 48) - 1;
}

const char* to_string(Opcode op) {
  switch (op) {
    case Opcode::Nop: return "nop";
    case Opcode::SetLoop: return "set_loop";
    case Opcode::SetActTile: return "set_act_tile";
    case Opcode::SetPsumTile: return "set_psum_tile";
    case Opcode::SetPsumMode: return "set_psum_mode";
    case Opcode::SetWeightBase: return "set_weight_base";
    case Opcode::Launch: return "launch";
    case Opcode::Barrier: return "barrier";
  }
  return "?";
}

std::string Instruction::to_string() const {
  return strformat("%s f=%u imm=%llu", ftdl::arch::to_string(op), field,
                   static_cast<unsigned long long>(imm));
}

bool field_is_valid(Opcode op, std::uint8_t field) {
  switch (op) {
    case Opcode::SetLoop:
      return field <= static_cast<std::uint8_t>(TemporalLevel::T);
    case Opcode::SetPsumMode:
      return field <= 1;
    default:
      return field == 0;
  }
}

std::uint64_t encode(const Instruction& inst) {
  if (inst.imm > kImmMask)
    throw Error("instruction immediate exceeds 48 bits: " + inst.to_string());
  if (!field_is_valid(inst.op, inst.field))
    throw Error("field value out of range for opcode: " + inst.to_string());
  return (std::uint64_t{static_cast<std::uint8_t>(inst.op)} << 56) |
         (std::uint64_t{inst.field} << 48) | inst.imm;
}

Instruction decode(std::uint64_t word) {
  const auto opcode = static_cast<std::uint8_t>(word >> 56);
  if (opcode > static_cast<std::uint8_t>(Opcode::Barrier))
    throw Error("unknown opcode in InstBUS word: " + std::to_string(opcode));
  Instruction inst;
  inst.op = static_cast<Opcode>(opcode);
  inst.field = static_cast<std::uint8_t>(word >> 48);
  inst.imm = word & kImmMask;
  return inst;
}

Instruction set_loop(TemporalLevel level, std::uint64_t trip) {
  return Instruction{Opcode::SetLoop, static_cast<std::uint8_t>(level), trip};
}
Instruction set_act_tile(std::uint64_t words) {
  return Instruction{Opcode::SetActTile, 0, words};
}
Instruction set_psum_tile(std::uint64_t words) {
  return Instruction{Opcode::SetPsumTile, 0, words};
}
Instruction set_psum_mode(bool accumulate) {
  return Instruction{Opcode::SetPsumMode, accumulate ? std::uint8_t{1} : std::uint8_t{0}, 0};
}
Instruction set_weight_base(std::uint64_t addr) {
  return Instruction{Opcode::SetWeightBase, 0, addr};
}
Instruction launch() { return Instruction{Opcode::Launch, 0, 0}; }
Instruction barrier() { return Instruction{Opcode::Barrier, 0, 0}; }

InstStream decode_stream(const std::vector<std::uint64_t>& words) {
  InstStream out;
  out.reserve(words.size());
  for (std::uint64_t w : words) out.push_back(decode(w));
  return out;
}

std::string disassemble(const InstStream& stream) {
  std::string out;
  for (const Instruction& inst : stream) {
    out += inst.to_string();
    out += '\n';
  }
  return out;
}

ControllerState interpret_stream(const InstStream& stream) {
  ControllerState st;
  bool saw_barrier = false;
  for (const Instruction& inst : stream) {
    if (saw_barrier) throw Error("instructions after Barrier");
    switch (inst.op) {
      case Opcode::Nop:
        break;
      case Opcode::SetLoop:
        if (st.launched) throw Error("SetLoop after Launch");
        if (inst.imm == 0) throw Error("zero loop trip count");
        switch (static_cast<TemporalLevel>(inst.field)) {
          case TemporalLevel::X: st.x_trip = inst.imm; break;
          case TemporalLevel::L: st.l_trip = inst.imm; break;
          case TemporalLevel::T: st.t_trip = inst.imm; break;
          default: throw Error("unknown temporal level in SetLoop");
        }
        break;
      case Opcode::SetActTile:
        st.act_tile_words = inst.imm;
        break;
      case Opcode::SetPsumTile:
        st.psum_tile_words = inst.imm;
        break;
      case Opcode::SetPsumMode:
        st.psum_accumulate = inst.field != 0;
        break;
      case Opcode::SetWeightBase:
        st.weight_base = inst.imm;
        break;
      case Opcode::Launch:
        if (st.launched) throw Error("double Launch");
        st.launched = true;
        break;
      case Opcode::Barrier:
        if (!st.launched) throw Error("Barrier before Launch");
        saw_barrier = true;
        break;
    }
  }
  if (!saw_barrier) throw Error("stream missing Barrier");
  return st;
}

}  // namespace ftdl::arch
