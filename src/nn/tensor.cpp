// Tensor is header-only; this TU pins the vtable-free template
// instantiations used across the library to keep link-time object sizes
// predictable on the single-core builder.
#include "nn/tensor.h"

namespace ftdl::nn {

template class TensorT<std::int16_t>;
template class TensorT<acc_t>;

}  // namespace ftdl::nn
