#include "nn/reference.h"

#include <algorithm>
#include <limits>

#include "common/error.h"

namespace ftdl::nn {

AccTensor conv2d_reference(const Layer& layer, const Tensor16& input,
                           const Tensor16& weights) {
  FTDL_ASSERT(layer.kind == LayerKind::Conv);
  FTDL_ASSERT(input.dims() ==
              (std::vector<int>{layer.in_c, layer.in_h, layer.in_w}));
  FTDL_ASSERT(weights.dims() ==
              (std::vector<int>{layer.out_c, layer.in_c, layer.kh, layer.kw}));

  const int oh = layer.out_h(), ow = layer.out_w();
  AccTensor out({layer.out_c, oh, ow});
  for (int m = 0; m < layer.out_c; ++m) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        acc_t acc = 0;
        for (int n = 0; n < layer.in_c; ++n) {
          for (int r = 0; r < layer.kh; ++r) {
            const int iy = y * layer.stride + r - layer.pad;
            if (iy < 0 || iy >= layer.in_h) continue;
            for (int s = 0; s < layer.kw; ++s) {
              const int ix = x * layer.stride + s - layer.pad;
              if (ix < 0 || ix >= layer.in_w) continue;
              acc = macc(acc, weights.at(m, n, r, s), input.at(n, iy, ix));
            }
          }
        }
        out.at(m, y, x) = acc;
      }
    }
  }
  return out;
}

AccTensor depthwise_reference(const Layer& layer, const Tensor16& input,
                              const Tensor16& weights) {
  FTDL_ASSERT(layer.kind == LayerKind::Depthwise);
  FTDL_ASSERT(input.dims() ==
              (std::vector<int>{layer.in_c, layer.in_h, layer.in_w}));
  FTDL_ASSERT(weights.dims() ==
              (std::vector<int>{layer.in_c, layer.kh, layer.kw}));

  const int oh = layer.out_h(), ow = layer.out_w();
  AccTensor out({layer.in_c, oh, ow});
  for (int c = 0; c < layer.in_c; ++c) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        acc_t acc = 0;
        for (int r = 0; r < layer.kh; ++r) {
          const int iy = y * layer.stride + r - layer.pad;
          if (iy < 0 || iy >= layer.in_h) continue;
          for (int s = 0; s < layer.kw; ++s) {
            const int ix = x * layer.stride + s - layer.pad;
            if (ix < 0 || ix >= layer.in_w) continue;
            acc = macc(acc, weights.at(c, r, s), input.at(c, iy, ix));
          }
        }
        out.at(c, y, x) = acc;
      }
    }
  }
  return out;
}

AccTensor matmul_reference(const Layer& layer, const Tensor16& act,
                           const Tensor16& weights) {
  FTDL_ASSERT(layer.kind == LayerKind::MatMul);
  const int m_dim = static_cast<int>(layer.mm_m);
  const int n_dim = static_cast<int>(layer.mm_n);
  const int p_dim = static_cast<int>(layer.mm_p);
  FTDL_ASSERT(weights.dims() == (std::vector<int>{n_dim, m_dim}));
  FTDL_ASSERT(act.dims() == (std::vector<int>{m_dim, p_dim}));

  AccTensor out({n_dim, p_dim});
  for (int n = 0; n < n_dim; ++n) {
    for (int p = 0; p < p_dim; ++p) {
      acc_t acc = 0;
      for (int m = 0; m < m_dim; ++m) {
        acc = macc(acc, weights.at(n, m), act.at(m, p));
      }
      out.at(n, p) = acc;
    }
  }
  return out;
}

Tensor16 requantize_output(const Layer& layer, const AccTensor& acc, int shift) {
  Tensor16 out(acc.dims());
  for (std::int64_t i = 0; i < acc.size(); ++i) {
    std::int16_t v = requantize(saturate48(acc[i]), shift);
    if (layer.relu) v = relu(v);
    out[i] = v;
  }
  return out;
}

namespace {

template <typename Reduce>
Tensor16 pool_impl(const Layer& layer, const Tensor16& input, Reduce reduce,
                   std::int16_t init, bool average) {
  FTDL_ASSERT(layer.kind == LayerKind::Pool);
  FTDL_ASSERT(input.dims() ==
              (std::vector<int>{layer.in_c, layer.in_h, layer.in_w}));
  const int oh = layer.out_h(), ow = layer.out_w();
  Tensor16 out({layer.in_c, oh, ow});
  for (int c = 0; c < layer.in_c; ++c) {
    for (int y = 0; y < oh; ++y) {
      for (int x = 0; x < ow; ++x) {
        acc_t agg = init;
        int count = 0;
        for (int r = 0; r < layer.kh; ++r) {
          const int iy = y * layer.stride + r - layer.pad;
          if (iy < 0 || iy >= layer.in_h) continue;
          for (int s = 0; s < layer.kw; ++s) {
            const int ix = x * layer.stride + s - layer.pad;
            if (ix < 0 || ix >= layer.in_w) continue;
            agg = reduce(agg, input.at(c, iy, ix));
            ++count;
          }
        }
        if (average && count > 0) agg /= count;
        out.at(c, y, x) = static_cast<std::int16_t>(agg);
      }
    }
  }
  return out;
}

}  // namespace

Tensor16 maxpool_reference(const Layer& layer, const Tensor16& input) {
  return pool_impl(
      layer, input,
      [](acc_t a, std::int16_t b) { return std::max(a, acc_t{b}); },
      std::numeric_limits<std::int16_t>::min(), /*average=*/false);
}

Tensor16 avgpool_reference(const Layer& layer, const Tensor16& input) {
  return pool_impl(
      layer, input, [](acc_t a, std::int16_t b) { return a + b; }, 0,
      /*average=*/true);
}

}  // namespace ftdl::nn
