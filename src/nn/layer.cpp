#include "nn/layer.h"

#include "common/error.h"

namespace ftdl::nn {

const char* to_string(LayerKind k) {
  switch (k) {
    case LayerKind::Conv: return "CONV";
    case LayerKind::Depthwise: return "DWCONV";
    case LayerKind::MatMul: return "MM";
    case LayerKind::Pool: return "POOL";
    case LayerKind::Ewop: return "EWOP";
    case LayerKind::Concat: return "CONCAT";
  }
  return "?";
}

int Layer::out_h() const {
  if (kind != LayerKind::Conv && kind != LayerKind::Depthwise &&
      kind != LayerKind::Pool)
    return 0;
  return (in_h + 2 * pad - kh) / stride + 1;
}

int Layer::out_w() const {
  if (kind != LayerKind::Conv && kind != LayerKind::Depthwise &&
      kind != LayerKind::Pool)
    return 0;
  return (in_w + 2 * pad - kw) / stride + 1;
}

std::int64_t Layer::macs() const {
  switch (kind) {
    case LayerKind::Conv:
      return std::int64_t{out_c} * out_h() * out_w() * in_c * kh * kw;
    case LayerKind::Depthwise:
      return std::int64_t{in_c} * out_h() * out_w() * kh * kw;
    case LayerKind::MatMul:
      return mm_m * mm_n * mm_p;
    default:
      return 0;
  }
}

std::int64_t Layer::conv_ops() const {
  return (kind == LayerKind::Conv || kind == LayerKind::Depthwise)
             ? 2 * macs() * repeat
             : 0;
}

std::int64_t Layer::mm_ops() const {
  return kind == LayerKind::MatMul ? 2 * macs() * repeat : 0;
}

std::int64_t Layer::ewop_ops() const {
  std::int64_t ops = 0;
  switch (kind) {
    case LayerKind::Pool:
      // MLPerf-style accounting: one op per pooled output element (the
      // window comparisons are not arithmetic ops). This matches the EWOP
      // fractions of Table I.
      ops = out_elems();
      break;
    case LayerKind::Ewop:
      ops = explicit_ewop_ops;
      break;
    case LayerKind::Concat:
      ops = 0;  // data movement only
      break;
    default:
      break;
  }
  if (relu) ops += out_elems();
  return ops * repeat;
}

std::int64_t Layer::weight_count() const {
  switch (kind) {
    case LayerKind::Conv:
      return std::int64_t{out_c} * in_c * kh * kw;
    case LayerKind::Depthwise:
      return std::int64_t{in_c} * kh * kw;
    case LayerKind::MatMul:
      return mm_n * mm_m;
    default:
      return 0;
  }
}

std::int64_t Layer::out_elems() const {
  switch (kind) {
    case LayerKind::Conv:
    case LayerKind::Depthwise:
    case LayerKind::Pool:
      return std::int64_t{(kind == LayerKind::Conv) ? out_c : in_c} * out_h() *
             out_w();
    case LayerKind::MatMul:
      return mm_n * mm_p;
    case LayerKind::Ewop:
    case LayerKind::Concat:
      return 0;
  }
  return 0;
}

namespace {
void check_conv_geometry(const Layer& l) {
  if (l.in_c <= 0 || l.in_h <= 0 || l.in_w <= 0)
    throw ConfigError(l.name + ": input extents must be positive");
  if (l.kh <= 0 || l.kw <= 0 || l.stride <= 0 || l.pad < 0)
    throw ConfigError(l.name + ": bad kernel geometry");
  if (l.out_h() <= 0 || l.out_w() <= 0)
    throw ConfigError(l.name + ": kernel does not fit input");
}
}  // namespace

Layer make_conv(const std::string& name, int in_c, int in_h, int in_w,
                int out_c, int k, int stride, int pad, bool relu) {
  return make_conv2(name, in_c, in_h, in_w, out_c, k, k, stride, pad, relu);
}

Layer make_depthwise(const std::string& name, int channels, int in_h,
                     int in_w, int k, int stride, int pad, bool relu) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::Depthwise;
  l.in_c = channels;
  l.out_c = channels;  // one filter per channel
  l.in_h = in_h;
  l.in_w = in_w;
  l.kh = k;
  l.kw = k;
  l.stride = stride;
  l.pad = pad;
  l.relu = relu;
  check_conv_geometry(l);
  return l;
}

Layer make_conv2(const std::string& name, int in_c, int in_h, int in_w,
                 int out_c, int kh, int kw, int stride, int pad, bool relu) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::Conv;
  l.in_c = in_c;
  l.in_h = in_h;
  l.in_w = in_w;
  l.out_c = out_c;
  l.kh = kh;
  l.kw = kw;
  l.stride = stride;
  l.pad = pad;
  l.relu = relu;
  if (out_c <= 0) throw ConfigError(name + ": output channels must be positive");
  check_conv_geometry(l);
  return l;
}

Layer make_matmul(const std::string& name, std::int64_t m, std::int64_t n,
                  std::int64_t p, bool relu, int repeat) {
  if (m <= 0 || n <= 0 || p <= 0)
    throw ConfigError(name + ": matmul extents must be positive");
  if (repeat <= 0) throw ConfigError(name + ": repeat must be positive");
  Layer l;
  l.name = name;
  l.kind = LayerKind::MatMul;
  l.mm_m = m;
  l.mm_n = n;
  l.mm_p = p;
  l.relu = relu;
  l.repeat = repeat;
  return l;
}

Layer make_pool(const std::string& name, int in_c, int in_h, int in_w, int k,
                int stride, int pad) {
  return make_pool2(name, in_c, in_h, in_w, k, k, stride, pad);
}

Layer make_pool2(const std::string& name, int in_c, int in_h, int in_w, int kh,
                 int kw, int stride, int pad) {
  Layer l;
  l.name = name;
  l.kind = LayerKind::Pool;
  l.in_c = in_c;
  l.in_h = in_h;
  l.in_w = in_w;
  l.kh = kh;
  l.kw = kw;
  l.stride = stride;
  l.pad = pad;
  check_conv_geometry(l);
  return l;
}

Layer make_ewop(const std::string& name, std::int64_t ops) {
  if (ops < 0) throw ConfigError(name + ": EWOP op count must be non-negative");
  Layer l;
  l.name = name;
  l.kind = LayerKind::Ewop;
  l.explicit_ewop_ops = ops;
  return l;
}

Layer make_concat(const std::string& name, std::vector<std::string> inputs) {
  if (inputs.size() < 2)
    throw ConfigError(name + ": concat needs at least two inputs");
  Layer l;
  l.name = name;
  l.kind = LayerKind::Concat;
  l.input_names = std::move(inputs);
  return l;
}

Layer make_add_relu(const std::string& name, std::int64_t elems,
                    std::vector<std::string> inputs) {
  if (inputs.size() != 2)
    throw ConfigError(name + ": residual add needs exactly two inputs");
  Layer l = make_ewop(name, 2 * elems);
  l.ewop_op = EwopOp::AddRelu;
  l.input_names = std::move(inputs);
  return l;
}

Layer with_inputs(Layer layer, std::vector<std::string> inputs) {
  layer.input_names = std::move(inputs);
  return layer;
}

}  // namespace ftdl::nn
