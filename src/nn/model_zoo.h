// The MLPerf-derived model set of Table I, built layer-by-layer from the
// original architecture papers (see DESIGN.md §4 note 7).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "nn/network.h"

namespace ftdl::nn {

/// GoogLeNet (Inception v1), 224x224 input: ~3.14 GOP, ~13.7 MB @16-bit.
Network googlenet();

/// ResNet50, 224x224 input: ~7.7 GOP, ~51 MB @16-bit.
Network resnet50();

/// AlphaGoZero-style residual policy/value net on a 19x19 board, sized to
/// Table I's 2.08 MB weight budget.
Network alphago_zero();

/// Sentimental-seqCNN: 1D text CNN with an EWOP-heavy post-stage (Table I:
/// 89.9% CONV / 0.15% MM / 10% EWOP, 345 KB weights).
Network sentimental_seqcnn();

/// Sentimental-seqLSTM: 2-layer LSTM, 1024 hidden (Table I: 99.9% MM,
/// 39.9 MB weights).
Network sentimental_seqlstm();

/// MobileNetV1 (1.0, 224x224) — NOT part of Table I; included to study how
/// depthwise-separable networks map to the overlay (poorly, by design:
/// depthwise layers have no weight-only loop for the D2 columns).
Network mobilenet_v1();

/// All Table I models in row order.
std::vector<Network> mlperf_models();

/// Lookup by Table I name; throws ftdl::ConfigError for unknown names.
Network model_by_name(const std::string& name);

}  // namespace ftdl::nn
