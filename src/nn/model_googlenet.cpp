// GoogLeNet (Szegedy et al., CVPR'15, Table 1) at 224x224, batch 1, with the
// full inception dataflow graph (branches + channel concat).
#include "nn/model_zoo.h"

namespace ftdl::nn {

namespace {

/// Appends one inception module reading from `in_name`; returns the output
/// channel count. The module's output layer is named `tag`/concat.
/// `c1` 1x1 path; `r3`->`c3` 3x3 path; `r5`->`c5` 5x5 path; `cp` pool proj.
int inception(Network& net, const std::string& tag, const std::string& in_name,
              int in_c, int hw, int c1, int r3, int c3, int r5, int c5,
              int cp) {
  net.add(with_inputs(make_conv(tag + "/1x1", in_c, hw, hw, c1, 1, 1, 0),
                      {in_name}));
  net.add(with_inputs(make_conv(tag + "/3x3_reduce", in_c, hw, hw, r3, 1, 1, 0),
                      {in_name}));
  net.add(make_conv(tag + "/3x3", r3, hw, hw, c3, 3, 1, 1));
  net.add(with_inputs(make_conv(tag + "/5x5_reduce", in_c, hw, hw, r5, 1, 1, 0),
                      {in_name}));
  net.add(make_conv(tag + "/5x5", r5, hw, hw, c5, 5, 1, 2));
  net.add(with_inputs(make_pool(tag + "/pool", in_c, hw, hw, 3, 1, 1),
                      {in_name}));
  net.add(make_conv(tag + "/pool_proj", in_c, hw, hw, cp, 1, 1, 0));
  net.add(make_concat(tag + "/concat", {tag + "/1x1", tag + "/3x3",
                                        tag + "/5x5", tag + "/pool_proj"}));
  return c1 + c3 + c5 + cp;
}

}  // namespace

Network googlenet() {
  Network net("GoogLeNet");

  net.add(make_conv("conv1/7x7_s2", 3, 224, 224, 64, 7, 2, 3));
  net.add(make_pool("pool1/3x3_s2", 64, 112, 112, 3, 2, 1));
  net.add(make_conv("conv2/3x3_reduce", 64, 56, 56, 64, 1, 1, 0));
  net.add(make_conv("conv2/3x3", 64, 56, 56, 192, 3, 1, 1));
  net.add(make_pool("pool2/3x3_s2", 192, 56, 56, 3, 2, 1));

  int c = inception(net, "inception_3a", "pool2/3x3_s2", 192, 28, 64, 96, 128,
                    16, 32, 32);
  c = inception(net, "inception_3b", "inception_3a/concat", c, 28, 128, 128,
                192, 32, 96, 64);
  net.add(make_pool("pool3/3x3_s2", c, 28, 28, 3, 2, 1));

  c = inception(net, "inception_4a", "pool3/3x3_s2", c, 14, 192, 96, 208, 16,
                48, 64);
  c = inception(net, "inception_4b", "inception_4a/concat", c, 14, 160, 112,
                224, 24, 64, 64);
  c = inception(net, "inception_4c", "inception_4b/concat", c, 14, 128, 128,
                256, 24, 64, 64);
  c = inception(net, "inception_4d", "inception_4c/concat", c, 14, 112, 144,
                288, 32, 64, 64);
  c = inception(net, "inception_4e", "inception_4d/concat", c, 14, 256, 160,
                320, 32, 128, 128);
  net.add(make_pool("pool4/3x3_s2", c, 14, 14, 3, 2, 1));

  c = inception(net, "inception_5a", "pool4/3x3_s2", c, 7, 256, 160, 320, 32,
                128, 128);
  c = inception(net, "inception_5b", "inception_5a/concat", c, 7, 384, 192,
                384, 48, 128, 128);
  Layer avg = make_pool("pool5/7x7_avg", c, 7, 7, 7, 1, 0);
  avg.pool_op = PoolOp::Avg;
  net.add(std::move(avg));

  net.add(make_matmul("loss3/classifier", /*m=*/c, /*n=*/1000, /*p=*/1));
  net.validate_graph();
  return net;
}

}  // namespace ftdl::nn
