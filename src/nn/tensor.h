// Minimal dense tensors for the quantized datapath.
//
// Tensor16 holds int16 data (weights / activations); AccTensor holds the
// wide accumulators a CONV/MM produces before host-side requantization.
//
// Storage discipline: element data lives in an ArenaVec (common/arena.h),
// so tensors created on a thread with an installed TensorArena draw from
// and return to its pool — the zero-copy memory path of the serving
// runtime. Shape metadata is an inline fixed-capacity Dims (rank <= 6), so
// constructing, copying or comparing tensor shapes never touches the heap.
// Code that never installs an arena sees plain heap-backed tensors.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "common/arena.h"
#include "common/error.h"
#include "common/fixed_point.h"
#include "common/rng.h"

namespace ftdl::nn {

/// Inline tensor shape: a fixed-capacity array of extents. Comparable
/// against std::vector<int> (both directions, via rewritten operator==) so
/// existing `t.dims() == std::vector<int>{...}` call sites keep working;
/// allocation-free call sites compare against a Dims literal instead.
class Dims {
 public:
  static constexpr int kMaxRank = 6;

  Dims() = default;
  Dims(std::initializer_list<int> d) {
    FTDL_ASSERT(d.size() <= kMaxRank);
    for (int v : d) d_[static_cast<std::size_t>(n_++)] = v;
  }
  // Implicit: lets the many std::vector<int>-shaped call sites convert.
  Dims(const std::vector<int>& d) {  // NOLINT(google-explicit-constructor)
    FTDL_ASSERT(d.size() <= kMaxRank);
    for (int v : d) d_[static_cast<std::size_t>(n_++)] = v;
  }

  std::size_t size() const { return static_cast<std::size_t>(n_); }
  bool empty() const { return n_ == 0; }
  int operator[](std::size_t i) const { return d_[i]; }
  const int* begin() const { return d_.data(); }
  const int* end() const { return d_.data() + n_; }

  bool operator==(const Dims&) const = default;
  bool operator==(const std::vector<int>& v) const {
    if (v.size() != size()) return false;
    for (std::size_t i = 0; i < size(); ++i)
      if (v[i] != d_[i]) return false;
    return true;
  }

 private:
  std::array<int, kMaxRank> d_{};
  int n_ = 0;
};

namespace detail {
inline std::int64_t shape_size(const Dims& dims) {
  std::int64_t n = 1;
  for (int d : dims) {
    FTDL_ASSERT(d > 0);
    n *= d;
  }
  return n;
}
}  // namespace detail

template <typename T>
class TensorT {
 public:
  TensorT() = default;
  explicit TensorT(const Dims& dims)
      : dims_(dims), data_(detail::shape_size(dims_)) {}

  const Dims& dims() const { return dims_; }
  std::int64_t size() const { return data_.size(); }

  T* data() { return data_.data(); }
  const T* data() const { return data_.data(); }

  T& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  const T& operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-D access (row-major).
  T& at(int i, int j) { return data_[idx2(i, j)]; }
  const T& at(int i, int j) const { return data_[idx2(i, j)]; }

  /// 3-D access (c, h, w).
  T& at(int c, int h, int w) { return data_[idx3(c, h, w)]; }
  const T& at(int c, int h, int w) const { return data_[idx3(c, h, w)]; }

  /// 4-D access (o, i, h, w) — convolution weights.
  T& at(int o, int i, int h, int w) { return data_[idx4(o, i, h, w)]; }
  const T& at(int o, int i, int h, int w) const { return data_[idx4(o, i, h, w)]; }

  /// Fills with small deterministic values from `rng`.
  void fill_random(Rng& rng, std::int16_t magnitude = 7) {
    for (T& v : data_) v = static_cast<T>(rng.int16_small(magnitude));
  }

  bool operator==(const TensorT&) const = default;

 private:
  std::size_t idx2(int i, int j) const {
    FTDL_ASSERT(dims_.size() == 2);
    FTDL_ASSERT(i >= 0 && i < dims_[0] && j >= 0 && j < dims_[1]);
    return static_cast<std::size_t>(i) * dims_[1] + j;
  }
  std::size_t idx3(int c, int h, int w) const {
    FTDL_ASSERT(dims_.size() == 3);
    FTDL_ASSERT(c >= 0 && c < dims_[0] && h >= 0 && h < dims_[1] && w >= 0 &&
                w < dims_[2]);
    return (static_cast<std::size_t>(c) * dims_[1] + h) * dims_[2] + w;
  }
  std::size_t idx4(int o, int i, int h, int w) const {
    FTDL_ASSERT(dims_.size() == 4);
    FTDL_ASSERT(o >= 0 && o < dims_[0] && i >= 0 && i < dims_[1] && h >= 0 &&
                h < dims_[2] && w >= 0 && w < dims_[3]);
    return ((static_cast<std::size_t>(o) * dims_[1] + i) * dims_[2] + h) *
               dims_[3] +
           w;
  }

  Dims dims_;
  ArenaVec<T> data_;
};

using Tensor16 = TensorT<std::int16_t>;
using AccTensor = TensorT<acc_t>;

}  // namespace ftdl::nn
