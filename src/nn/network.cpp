#include "nn/network.h"

#include <unordered_set>

#include "common/error.h"

namespace ftdl::nn {

std::vector<Layer> Network::overlay_layers() const {
  std::vector<Layer> out;
  for (const Layer& l : layers_) {
    if (l.on_overlay()) out.push_back(l);
  }
  return out;
}

std::vector<std::string> Network::resolved_inputs(std::size_t i) const {
  FTDL_ASSERT(i < layers_.size());
  const Layer& l = layers_[i];
  if (!l.input_names.empty()) return l.input_names;
  if (i == 0) return {kNetworkInput};
  return {layers_[i - 1].name};
}

std::vector<std::string> Network::sink_names() const {
  std::unordered_set<std::string> consumed;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (const std::string& in : resolved_inputs(i)) consumed.insert(in);
  }
  std::vector<std::string> sinks;
  for (const Layer& l : layers_) {
    if (!consumed.contains(l.name)) sinks.push_back(l.name);
  }
  return sinks;
}

int Network::find(const std::string& name) const {
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (layers_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

void Network::validate_graph() const {
  std::unordered_set<std::string> seen;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Layer& l = layers_[i];
    if (!seen.insert(l.name).second)
      throw ConfigError(name_ + ": duplicate layer name " + l.name);
    for (const std::string& in : resolved_inputs(i)) {
      if (in == kNetworkInput) continue;
      if (!seen.contains(in))
        throw ConfigError(name_ + ": layer " + l.name +
                          " references unknown or later layer " + in);
    }
  }
}

NetworkStats Network::stats() const {
  NetworkStats s;
  for (const Layer& l : layers_) {
    s.conv_ops += l.conv_ops();
    s.mm_ops += l.mm_ops();
    // A fused ReLU on a CONV/MM layer is host-side EWOP work.
    s.ewop_ops += l.ewop_ops();
    s.weight_words += l.weight_count();
  }
  return s;
}

}  // namespace ftdl::nn
