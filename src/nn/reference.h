// Scalar reference executor for the quantized datapath.
//
// This is the functional ground truth: the cycle-level overlay simulator's
// outputs are bit-compared against these loops in the test suite.
#pragma once

#include "nn/layer.h"
#include "nn/tensor.h"

namespace ftdl::nn {

/// Exact int16 x int16 -> wide-accumulator convolution.
/// input dims {in_c, in_h, in_w}; weights dims {out_c, in_c, kh, kw};
/// result dims {out_c, out_h, out_w}. Padding contributes zeros.
AccTensor conv2d_reference(const Layer& layer, const Tensor16& input,
                           const Tensor16& weights);

/// Exact depthwise convolution: input {C,H,W}, weights {C,kh,kw},
/// result {C,out_h,out_w}.
AccTensor depthwise_reference(const Layer& layer, const Tensor16& input,
                              const Tensor16& weights);

/// Exact matmul per paper convention: out[N][P] = sum_M W[N][M] * act[M][P].
/// weights dims {N, M}; act dims {M, P}; result dims {N, P}.
AccTensor matmul_reference(const Layer& layer, const Tensor16& act,
                           const Tensor16& weights);

/// Host-side EWOP: requantize accumulators to int16 with `shift`, apply
/// ReLU when the layer requests it.
Tensor16 requantize_output(const Layer& layer, const AccTensor& acc, int shift);

/// Max pooling on int16 activations (host EWOP).
Tensor16 maxpool_reference(const Layer& layer, const Tensor16& input);

/// Average pooling on int16 activations (accumulate + divide).
Tensor16 avgpool_reference(const Layer& layer, const Tensor16& input);

}  // namespace ftdl::nn
