// Layer descriptors and operation accounting.
//
// FTDL partitions DL computation into three sub-workload classes (Table I):
// convolution (CONV), matrix multiply (MM) and element-wise operations
// (EWOP). CONV and MM run on the overlay; EWOP (activations, pooling,
// residual adds, gates) runs on the host CPU in a pipelined fashion.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ftdl::nn {

enum class LayerKind {
  Conv,      ///< 2D convolution (may carry a fused host-side ReLU)
  Depthwise, ///< depthwise 2D convolution: one filter per channel
  MatMul,    ///< fully-connected / LSTM gate matrix: out = W * act
  Pool,      ///< max/avg pooling (EWOP class, host)
  Ewop,      ///< explicit element-wise stage with a given op count (host)
  Concat,    ///< channel-wise concatenation (host, zero arithmetic ops)
};

const char* to_string(LayerKind k);

/// Semantics of pooling (runtime executor).
enum class PoolOp { Max, Avg };

/// Semantics of an Ewop layer for the functional runtime. Layers tagged
/// Generic carry only an op count (host work modeling) and are identity in
/// the runtime.
enum class EwopOp {
  Generic,  ///< op-count only (e.g. normalization stages of seqCNN)
  AddRelu,  ///< residual add of two inputs followed by ReLU (ResNet)
};

/// One layer of a network. A plain aggregate (no invariant beyond positive
/// extents) — construct through the factory functions below which validate.
struct Layer {
  std::string name;
  LayerKind kind = LayerKind::Conv;

  // CONV / Pool geometry (activations are CHW, batch 1).
  int in_c = 0, in_h = 0, in_w = 0;
  int out_c = 0;
  int kh = 0, kw = 0;
  int stride = 1;
  int pad = 0;

  // MM geometry, paper convention: out[N][P] += W[N][M] * act[M][P]
  // (M = reduction / input features, N = output features, P = columns).
  std::int64_t mm_m = 0, mm_n = 0, mm_p = 0;

  /// Explicit op count for Ewop layers.
  std::int64_t explicit_ewop_ops = 0;

  /// Fused host-side ReLU after this layer (adds EWOP ops).
  bool relu = false;

  /// How many times this layer executes per inference (e.g. LSTM steps).
  int repeat = 1;

  /// Dataflow inputs: names of producer layers, or nn::kNetworkInput for
  /// the network input tensor. Empty means "the previous layer in the
  /// list" (sequential chaining), keeping linear networks terse.
  std::vector<std::string> input_names;

  PoolOp pool_op = PoolOp::Max;
  EwopOp ewop_op = EwopOp::Generic;

  // ---- derived ------------------------------------------------------------

  int out_h() const;
  int out_w() const;

  /// Multiply-accumulate count per single execution (CONV/MM only, else 0).
  std::int64_t macs() const;

  /// Total ops per inference in the paper's accounting: 2 ops per MAC for
  /// CONV/MM; for Pool, kh*kw ops per output; Ewop uses the explicit count;
  /// a fused ReLU adds one op per output element. Includes `repeat`.
  std::int64_t conv_ops() const;
  std::int64_t mm_ops() const;
  std::int64_t ewop_ops() const;
  std::int64_t total_ops() const { return conv_ops() + mm_ops() + ewop_ops(); }

  /// Unique weight words (shared across `repeat` executions).
  std::int64_t weight_count() const;

  /// Output elements per single execution.
  std::int64_t out_elems() const;

  /// True for layers the FTDL overlay executes (CONV, depthwise, MM).
  bool on_overlay() const {
    return kind == LayerKind::Conv || kind == LayerKind::Depthwise ||
           kind == LayerKind::MatMul;
  }
};

/// 2D convolution; validates extents and that the kernel covers the input.
Layer make_conv(const std::string& name, int in_c, int in_h, int in_w,
                int out_c, int k, int stride, int pad, bool relu = true);

/// Depthwise convolution: `channels` independent k x k filters (MobileNet
/// style). Note the overlay schedules it poorly by design: no loop is
/// weight-only, so the activation-sharing D2 columns cannot be split.
Layer make_depthwise(const std::string& name, int channels, int in_h,
                     int in_w, int k, int stride, int pad, bool relu = true);

/// Non-square-kernel convolution.
Layer make_conv2(const std::string& name, int in_c, int in_h, int in_w,
                 int out_c, int kh, int kw, int stride, int pad,
                 bool relu = true);

/// Matrix multiply out[N][P] = W[N][M] x act[M][P].
Layer make_matmul(const std::string& name, std::int64_t m, std::int64_t n,
                  std::int64_t p, bool relu = false, int repeat = 1);

/// Pooling layer (host EWOP).
Layer make_pool(const std::string& name, int in_c, int in_h, int in_w, int k,
                int stride, int pad = 0);

/// Non-square pooling window (e.g. max-over-time in sequence models).
Layer make_pool2(const std::string& name, int in_c, int in_h, int in_w, int kh,
                 int kw, int stride, int pad = 0);

/// Explicit element-wise stage with `ops` operations per inference.
Layer make_ewop(const std::string& name, std::int64_t ops);

/// Channel-wise concatenation of the named producer layers.
Layer make_concat(const std::string& name, std::vector<std::string> inputs);

/// Residual add + ReLU over the two named producers (ResNet-style).
/// Counts 2 ops per element.
Layer make_add_relu(const std::string& name, std::int64_t elems,
                    std::vector<std::string> inputs);

/// Name designating the network input tensor in Layer::input_names.
inline constexpr const char* kNetworkInput = "@input";

/// Returns `layer` with explicit dataflow inputs (builder-style helper).
Layer with_inputs(Layer layer, std::vector<std::string> inputs);

}  // namespace ftdl::nn
