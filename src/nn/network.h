// A network = named sequence of layers, with the aggregate statistics the
// paper reports in Table I (op breakdown by class, 16-bit weight bytes).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace ftdl::nn {

struct NetworkStats {
  std::int64_t conv_ops = 0;   ///< 2 ops per CONV MAC
  std::int64_t mm_ops = 0;     ///< 2 ops per MM MAC
  std::int64_t ewop_ops = 0;   ///< pooling / activations / explicit EWOP
  std::int64_t weight_words = 0;

  std::int64_t total_ops() const { return conv_ops + mm_ops + ewop_ops; }
  std::int64_t weight_bytes() const { return 2 * weight_words; }  // 16-bit

  double conv_fraction() const { return double(conv_ops) / double(total_ops()); }
  double mm_fraction() const { return double(mm_ops) / double(total_ops()); }
  double ewop_fraction() const { return double(ewop_ops) / double(total_ops()); }
};

class Network {
 public:
  explicit Network(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::vector<Layer>& layers() const { return layers_; }

  void add(Layer layer) { layers_.push_back(std::move(layer)); }

  /// Layers that run on the overlay (CONV and MM), in execution order.
  std::vector<Layer> overlay_layers() const;

  NetworkStats stats() const;

  // ---- dataflow graph ------------------------------------------------------

  /// The resolved producer names of layer `i`: explicit input_names, or the
  /// previous layer (kNetworkInput for the first layer) when empty.
  std::vector<std::string> resolved_inputs(std::size_t i) const;

  /// Index of the layer named `name`; -1 if absent.
  int find(const std::string& name) const;

  /// Names of the graph's sink layers — layers whose output no other layer
  /// consumes — in declaration order. A non-empty network always has at
  /// least one sink (the last-declared layer can never be consumed, since
  /// inputs only reference earlier layers); branching graphs may have
  /// several (multi-output heads). Callers that need THE network output
  /// (the feed-forward executor) must reject |sinks| != 1.
  std::vector<std::string> sink_names() const;

  /// Checks that layer names are unique and every input reference points to
  /// an earlier layer or the network input (the graph is a DAG by
  /// construction). Throws ftdl::ConfigError on violations.
  void validate_graph() const;

 private:
  std::string name_;
  std::vector<Layer> layers_;
};

}  // namespace ftdl::nn
