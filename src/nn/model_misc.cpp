// AlphaGoZero, Sentimental-seqCNN and Sentimental-seqLSTM, sized to the
// Table I weight budgets (2.08 MB / 345 KB / 39.9 MB at 16 bits) and op
// breakdowns. See EXPERIMENTS.md for the per-model paper-vs-built numbers.
#include "nn/model_zoo.h"

#include "common/error.h"
#include "common/str_util.h"

namespace ftdl::nn {

Network alphago_zero() {
  Network net("AlphaGoZero");
  const int board = 19;
  const int c = 64;      // trunk width chosen to meet the 2.08 MB budget
  const int blocks = 9;

  net.add(make_conv("input_conv", 17, board, board, c, 3, 1, 1));
  std::string trunk = "input_conv";
  for (int b = 1; b <= blocks; ++b) {
    const std::string tag = strformat("res%d", b);
    net.add(with_inputs(make_conv(tag + "/conv1", c, board, board, c, 3, 1, 1),
                        {trunk}));
    net.add(make_conv(tag + "/conv2", c, board, board, c, 3, 1, 1,
                      /*relu=*/false));
    net.add(make_add_relu(tag + "/add_relu", std::int64_t{c} * board * board,
                          {tag + "/conv2", trunk}));
    trunk = tag + "/add_relu";
  }
  // Policy head: 1x1 to 2 planes, FC to 19*19+1 move logits.
  net.add(with_inputs(make_conv("policy/conv_1x1", c, board, board, 2, 1, 1, 0),
                      {trunk}));
  net.add(make_matmul("policy/fc", 2 * board * board, board * board + 1, 1));
  // Value head: 1x1 to 1 plane, FC to 256, FC to scalar.
  net.add(with_inputs(make_conv("value/conv_1x1", c, board, board, 1, 1, 1, 0),
                      {trunk}));
  net.add(make_matmul("value/fc1", board * board, 256, 1, /*relu=*/true));
  net.add(make_matmul("value/fc2", 256, 1, 1));
  net.validate_graph();
  return net;
}

Network sentimental_seqcnn() {
  Network net("Sentimental-seqCNN");
  const int embed = 128;
  const int seq = 75;
  const int filters = 100;

  // Kim-style text CNN: parallel 1-D convolutions of widths 3/4/5 over the
  // embedded sequence (modelled as kh x 1 kernels over an embed-channel
  // column), max-over-time pooling, and a small classifier.
  for (int width : {3, 4, 5}) {
    const std::string tag = strformat("conv_w%d", width);
    net.add(with_inputs(make_conv2(tag, embed, seq, 1, filters, width, 1, 1, 0),
                        {kNetworkInput}));
    net.add(make_pool2(tag + "/max_over_time", filters, seq - width + 1, 1,
                       /*kh=*/seq - width + 1, /*kw=*/1, 1));
  }
  net.add(make_concat("concat", {"conv_w3/max_over_time",
                                 "conv_w4/max_over_time",
                                 "conv_w5/max_over_time"}));
  net.add(make_matmul("fc", 3 * filters, 64, 1, /*relu=*/true));
  // Element-wise sequence pre/post-processing (normalization, gating and
  // score calibration) dominates the non-CONV ops of this benchmark;
  // calibrated so the class breakdown lands on Table I's 89.9/0.15/9.99.
  net.add(make_ewop("seq_ewop", 2'430'000));
  return net;
}

Network sentimental_seqlstm() {
  Network net("Sentimental-seqLSTM");
  const int hidden = 1024;
  const int steps = 30;

  // Two stacked LSTM layers; each step computes the 4 gate matrices against
  // the concatenated [input, state] vector: W[4H][2H] x act[2H][1].
  for (int layer = 1; layer <= 2; ++layer) {
    net.add(make_matmul(strformat("lstm%d/gates", layer), 2 * hidden,
                        4 * hidden, 1, /*relu=*/false, /*repeat=*/steps));
    // Gate nonlinearities and the c/h element-wise updates.
    net.add(make_ewop(strformat("lstm%d/cell_ewop", layer),
                      std::int64_t{steps} * 17 * hidden));
  }
  net.add(make_matmul("classifier", hidden, 3000, 1));
  net.add(make_ewop("softmax", 9000));
  net.validate_graph();
  return net;
}

Network mobilenet_v1() {
  Network net("MobileNetV1");
  net.add(make_conv("conv1", 3, 224, 224, 32, 3, 2, 1));
  int c = 32, hw = 112;
  // (out_c, stride) per depthwise-separable block, Howard et al. Table 1.
  const std::pair<int, int> blocks[] = {
      {64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},  {512, 2},
      {512, 1}, {512, 1}, {512, 1}, {512, 1}, {512, 1},  {1024, 2},
      {1024, 1}};
  int idx = 0;
  for (const auto& [out_c, stride] : blocks) {
    const std::string tag = strformat("block%d", ++idx);
    net.add(make_depthwise(tag + "/dw", c, hw, hw, 3, stride, 1));
    hw /= stride;
    net.add(make_conv(tag + "/pw", c, hw, hw, out_c, 1, 1, 0));
    c = out_c;
  }
  Layer avg = make_pool("avgpool", c, 7, 7, 7, 1, 0);
  avg.pool_op = PoolOp::Avg;
  net.add(std::move(avg));
  net.add(make_matmul("fc", c, 1000, 1));
  net.validate_graph();
  return net;
}

std::vector<Network> mlperf_models() {
  return {googlenet(), resnet50(), alphago_zero(), sentimental_seqcnn(),
          sentimental_seqlstm()};
}

Network model_by_name(const std::string& name) {
  for (Network& n : mlperf_models()) {
    if (n.name() == name) return n;
  }
  if (name == "MobileNetV1") return mobilenet_v1();
  throw ConfigError("unknown model: " + name);
}

}  // namespace ftdl::nn
