// ResNet-50 (He et al., CVPR'16, Table 1) at 224x224, batch 1, with the
// residual dataflow graph (projection shortcuts + add/ReLU).
#include "nn/model_zoo.h"

#include "common/str_util.h"

namespace ftdl::nn {

namespace {

/// Appends one bottleneck block reading from `in_name` (1x1 reduce, 3x3,
/// 1x1 expand + projection shortcut on the first block of a stage).
/// The block's output layer is named `tag`/add_relu.
/// `in_name` is taken by value: callers pass a reference into net's layer
/// vector, which the first add() below may reallocate.
int bottleneck(Network& net, const std::string& tag, std::string in_name,
               int in_c, int hw_in, int mid_c, int out_c, int stride,
               bool project) {
  const int hw_out = hw_in / stride;
  net.add(with_inputs(
      make_conv(tag + "/conv1_1x1", in_c, hw_in, hw_in, mid_c, 1, stride, 0),
      {in_name}));
  net.add(make_conv(tag + "/conv2_3x3", mid_c, hw_out, hw_out, mid_c, 3, 1, 1));
  // The final 1x1 has no fused ReLU: the residual add + ReLU is EWOP below.
  net.add(make_conv(tag + "/conv3_1x1", mid_c, hw_out, hw_out, out_c, 1, 1, 0,
                    /*relu=*/false));
  std::string shortcut = in_name;
  if (project) {
    net.add(with_inputs(make_conv(tag + "/shortcut_1x1", in_c, hw_in, hw_in,
                                  out_c, 1, stride, 0, /*relu=*/false),
                        {in_name}));
    shortcut = tag + "/shortcut_1x1";
  }
  net.add(make_add_relu(tag + "/add_relu",
                        std::int64_t{out_c} * hw_out * hw_out,
                        {tag + "/conv3_1x1", shortcut}));
  return out_c;
}

/// A full stage of `blocks` bottlenecks; the first downsamples by `stride`.
int stage(Network& net, const std::string& tag, int in_c, int& hw, int mid_c,
          int out_c, int blocks, int stride) {
  std::string in_name = net.layers().back().name;
  int c = bottleneck(net, tag + "_1", in_name, in_c, hw, mid_c, out_c, stride,
                     true);
  hw /= stride;
  for (int b = 2; b <= blocks; ++b) {
    const std::string btag = strformat("%s_%d", tag.c_str(), b);
    c = bottleneck(net, btag, net.layers().back().name, c, hw, mid_c, out_c, 1,
                   false);
  }
  return c;
}

}  // namespace

Network resnet50() {
  Network net("ResNet50");

  net.add(make_conv("conv1/7x7_s2", 3, 224, 224, 64, 7, 2, 3));
  net.add(make_pool("pool1/3x3_s2", 64, 112, 112, 3, 2, 1));

  int hw = 56;
  int c = stage(net, "res2", 64, hw, 64, 256, 3, 1);
  c = stage(net, "res3", c, hw, 128, 512, 4, 2);
  c = stage(net, "res4", c, hw, 256, 1024, 6, 2);
  c = stage(net, "res5", c, hw, 512, 2048, 3, 2);

  Layer avg = make_pool("pool5/7x7_avg", c, 7, 7, 7, 1, 0);
  avg.pool_op = PoolOp::Avg;
  net.add(std::move(avg));
  net.add(make_matmul("fc1000", /*m=*/c, /*n=*/1000, /*p=*/1));
  net.validate_graph();
  return net;
}

}  // namespace ftdl::nn
