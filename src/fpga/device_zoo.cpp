#include "fpga/device_zoo.h"

#include "common/error.h"

namespace ftdl::fpga {

namespace {

// Datasheet fmax values quoted in the paper (Sec. II-B2 / III-A2): DSP and
// CLB near 740 MHz, BRAM near 528 MHz. UltraScale parts carry slightly
// faster primitives, which together with the improved interconnect yields
// the 650-vs-620 MHz split seen in Fig. 6.
constexpr PrimitiveTiming kVirtex7Timing{740e6, 528e6, 740e6};
constexpr PrimitiveTiming kUltraScaleTiming{775e6, 560e6, 775e6};

}  // namespace

Device virtex7_vx330t() {
  Device d;
  d.name = "xc7vx330t";
  d.family = Family::Virtex7;
  d.fabric_rows = 350;        // 7 clock regions x 50 CLB rows
  d.fabric_cols = 160;
  d.dsp_columns = 8;
  d.dsp_per_column = 140;     // 8 x 140 = 1120 DSP48E1
  d.bram18_columns = 10;
  d.bram18_per_column = 150;  // 10 x 150 = 1500 BRAM18 (750 BRAM36)
  d.clb_count = 51000;
  d.col_pitch_um = 110.0;
  d.row_pitch_um = 60.0;
  d.timing = kVirtex7Timing;
  d.validate();
  return d;
}

Device ultrascale_vu125() {
  Device d;
  d.name = "xcvu125";
  d.family = Family::UltraScale;
  d.fabric_rows = 300;        // 5 clock regions x 60 CLB rows
  d.fabric_cols = 170;
  // The Table II example (D1=12, D3=20 -> 240 TPEs per column, D2=5) pins
  // the column arrangement: 5 tall DSP columns of 240 slices.
  d.dsp_columns = 5;
  d.dsp_per_column = 240;     // 5 x 240 = 1200 DSP48E2
  d.bram18_columns = 12;
  d.bram18_per_column = 210;  // 12 x 210 = 2520 BRAM18
  d.clb_count = 71000;
  d.col_pitch_um = 95.0;
  d.row_pitch_um = 55.0;
  d.timing = kUltraScaleTiming;
  d.validate();
  return d;
}

Device zynq_7z020() {
  Device d;
  d.name = "xc7z020";
  d.family = Family::Virtex7;  // 7-series fabric
  d.fabric_rows = 150;
  d.fabric_cols = 60;
  d.dsp_columns = 4;
  d.dsp_per_column = 55;      // 220 DSP48E1
  d.bram18_columns = 4;
  d.bram18_per_column = 70;   // 280 BRAM18
  d.clb_count = 6650;
  d.col_pitch_um = 110.0;
  d.row_pitch_um = 60.0;
  d.timing = kVirtex7Timing;
  d.validate();
  return d;
}

Device kintex_ku115() {
  Device d;
  d.name = "xcku115";
  d.family = Family::UltraScale;
  d.fabric_rows = 360;
  d.fabric_cols = 190;
  d.dsp_columns = 24;
  d.dsp_per_column = 230;     // 5520 DSP48E2
  d.bram18_columns = 24;
  d.bram18_per_column = 180;  // 4320 BRAM18
  d.clb_count = 82000;
  d.col_pitch_um = 95.0;
  d.row_pitch_um = 55.0;
  d.timing = kUltraScaleTiming;
  d.validate();
  return d;
}

Device vu9p() {
  Device d;
  d.name = "xcvu9p";
  d.family = Family::UltraScale;
  d.fabric_rows = 540;
  d.fabric_cols = 220;
  d.dsp_columns = 30;
  d.dsp_per_column = 228;     // 6840 DSP48E2
  d.bram18_columns = 24;
  d.bram18_per_column = 180;  // 4320 BRAM18
  d.clb_count = 147000;
  d.col_pitch_um = 90.0;
  d.row_pitch_um = 50.0;
  d.timing = kUltraScaleTiming;
  d.validate();
  return d;
}

Device device_by_name(const std::string& name) {
  for (const auto& make : {virtex7_vx330t, ultrascale_vu125, zynq_7z020,
                           kintex_ku115, vu9p}) {
    Device d = make();
    if (d.name == name) return d;
  }
  throw ConfigError("unknown device: " + name);
}

std::vector<std::string> device_names() {
  return {"xc7vx330t", "xcvu125", "xc7z020", "xcku115", "xcvu9p"};
}

}  // namespace ftdl::fpga
