#include "fpga/clocking.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/str_util.h"

namespace ftdl::fpga {

double datasheet_clk_h_limit(const PrimitiveTiming& t) {
  const double logic_limit = std::min(t.dsp_fmax_hz, t.clb_fmax_hz);
  const double bram_limit = 2.0 * t.bram_fmax_hz;
  return std::min(logic_limit, bram_limit);
}

double single_clock_limit(const PrimitiveTiming& t) {
  return std::min({t.dsp_fmax_hz, t.clb_fmax_hz, t.bram_fmax_hz});
}

void validate_clock_pair(const ClockPair& c, const PrimitiveTiming& t) {
  if (c.clk_l_hz <= 0.0 || c.clk_h_hz <= 0.0)
    throw ConfigError("clock frequencies must be positive");
  if (std::abs(c.clk_h_hz - 2.0 * c.clk_l_hz) > 1.0)
    throw ConfigError("double-pump requires CLKh = 2 x CLKl, got " +
                      format_hz(c.clk_h_hz) + " vs " + format_hz(c.clk_l_hz));
  if (c.clk_h_hz > std::min(t.dsp_fmax_hz, t.clb_fmax_hz) + 1.0)
    throw ConfigError("CLKh " + format_hz(c.clk_h_hz) + " exceeds DSP/CLB fmax");
  if (c.clk_l_hz > t.bram_fmax_hz + 1.0)
    throw ConfigError("CLKl " + format_hz(c.clk_l_hz) + " exceeds BRAM fmax");
}

}  // namespace ftdl::fpga
