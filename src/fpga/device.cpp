#include "fpga/device.h"

#include <cmath>
#include <cstdlib>

#include "common/error.h"

namespace ftdl::fpga {

const char* to_string(Primitive p) {
  switch (p) {
    case Primitive::Dsp: return "DSP";
    case Primitive::Bram18: return "BRAM18";
    case Primitive::Clb: return "CLB";
  }
  return "?";
}

const char* to_string(Family f) {
  switch (f) {
    case Family::Virtex7: return "Virtex-7";
    case Family::UltraScale: return "UltraScale";
  }
  return "?";
}

double Device::dsp_col_x_um(int i) const {
  FTDL_ASSERT(i >= 0 && i < dsp_columns);
  // Columns of one class are spread uniformly across the die width; the +0.5
  // centres the pattern so no column sits on the die edge.
  const double spacing = die_width_um() / dsp_columns;
  return (i + 0.5) * spacing;
}

double Device::bram_col_x_um(int j) const {
  FTDL_ASSERT(j >= 0 && j < bram18_columns);
  const double spacing = die_width_um() / bram18_columns;
  // Offset BRAM columns by a quarter pitch relative to DSP columns, mirroring
  // real devices where the two classes interleave but never coincide.
  return (j + 0.25) * spacing;
}

Point Device::dsp_site(int col, int row) const {
  FTDL_ASSERT(row >= 0 && row < dsp_per_column);
  const double y_pitch = die_height_um() / dsp_per_column;
  return {dsp_col_x_um(col), (row + 0.5) * y_pitch};
}

Point Device::bram_site(int col, int row) const {
  FTDL_ASSERT(row >= 0 && row < bram18_per_column);
  const double y_pitch = die_height_um() / bram18_per_column;
  return {bram_col_x_um(col), (row + 0.5) * y_pitch};
}

int Device::nearest_bram_column(int dsp_col) const {
  const double x = dsp_col_x_um(dsp_col);
  int best = 0;
  double best_d = std::abs(bram_col_x_um(0) - x);
  for (int j = 1; j < bram18_columns; ++j) {
    const double d = std::abs(bram_col_x_um(j) - x);
    if (d < best_d) {
      best_d = d;
      best = j;
    }
  }
  return best;
}

void Device::validate() const {
  if (name.empty()) throw ConfigError("device has no name");
  if (fabric_rows <= 0 || fabric_cols <= 0)
    throw ConfigError(name + ": fabric dimensions must be positive");
  if (dsp_columns <= 0 || dsp_per_column <= 0)
    throw ConfigError(name + ": must have DSP resources");
  if (dsp_per_column > 240)
    throw ConfigError(name + ": DSP column taller than any real device (>240)");
  if (bram18_columns <= 0 || bram18_per_column <= 0)
    throw ConfigError(name + ": must have BRAM resources");
  if (clb_count <= 0) throw ConfigError(name + ": must have CLB resources");
  if (col_pitch_um <= 0.0 || row_pitch_um <= 0.0)
    throw ConfigError(name + ": physical pitches must be positive");
  if (timing.dsp_fmax_hz <= 0 || timing.bram_fmax_hz <= 0 || timing.clb_fmax_hz <= 0)
    throw ConfigError(name + ": primitive fmax values must be positive");
}

double manhattan_um(const Point& a, const Point& b) {
  return std::abs(a.x_um - b.x_um) + std::abs(a.y_um - b.y_um);
}

}  // namespace ftdl::fpga
