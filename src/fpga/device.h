// Column-layout model of a Xilinx-style FPGA device.
//
// Modern FPGAs arrange primitives in uniform vertical columns: a DSP column
// holds a stack of DSP slices with dedicated cascade wiring, BRAM columns
// hold block RAMs, and the remaining columns are CLBs. FTDL's layout-aware
// design exploits exactly this tiled structure, so the device model exposes
// the geometry (column positions, per-column counts, physical pitches) that
// the placement and timing models need.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fpga/primitive.h"

namespace ftdl::fpga {

/// Interconnect quality of the device family; selects wire-delay
/// coefficients in the timing model.
enum class Family { Virtex7, UltraScale };

const char* to_string(Family f);

/// A physical position on the fabric, in micrometres.
struct Point {
  double x_um = 0.0;
  double y_um = 0.0;
};

/// Static description of one device. All counts are per physical column;
/// columns of one primitive class are spread uniformly across the die width.
struct Device {
  std::string name;          ///< e.g. "xc7vx330t"
  Family family = Family::Virtex7;

  int fabric_rows = 0;       ///< die height in CLB rows
  int fabric_cols = 0;       ///< die width in columns (all classes)

  int dsp_columns = 0;
  int dsp_per_column = 0;    ///< paper: 20..240 per column across devices

  int bram18_columns = 0;
  int bram18_per_column = 0;

  long clb_count = 0;        ///< total CLBs available for ActBUF / control

  double col_pitch_um = 0.0; ///< horizontal spacing between adjacent columns
  double row_pitch_um = 0.0; ///< vertical spacing between CLB rows

  PrimitiveTiming timing{};

  // ---- derived quantities -------------------------------------------------

  int total_dsp() const { return dsp_columns * dsp_per_column; }
  int total_bram18() const { return bram18_columns * bram18_per_column; }

  double die_width_um() const { return fabric_cols * col_pitch_um; }
  double die_height_um() const { return fabric_rows * row_pitch_um; }

  /// x-coordinate of the i-th DSP column (0-based), columns spread uniformly.
  double dsp_col_x_um(int i) const;

  /// x-coordinate of the j-th BRAM column (0-based).
  double bram_col_x_um(int j) const;

  /// Physical centre of the r-th DSP in DSP column i.
  Point dsp_site(int col, int row) const;

  /// Physical centre of the r-th BRAM18 in BRAM column j.
  Point bram_site(int col, int row) const;

  /// Index of the BRAM column physically closest to DSP column `dsp_col`.
  int nearest_bram_column(int dsp_col) const;

  /// Validates internal consistency; throws ftdl::ConfigError on failure.
  void validate() const;
};

/// Manhattan distance between two fabric points, in micrometres.
double manhattan_um(const Point& a, const Point& b);

}  // namespace ftdl::fpga
