// Catalogue of modelled devices.
//
// The two devices evaluated in the paper (Fig. 6) are the Virtex-7 xc7vx330t
// and the UltraScale xcvu125; additional devices are provided so users can
// explore FTDL scaling beyond the paper's evaluation.
#pragma once

#include <string>
#include <vector>

#include "fpga/device.h"

namespace ftdl::fpga {

/// Virtex-7 xc7vx330t: 1120 DSP48E1, 1500 BRAM18 (Fig. 6a).
Device virtex7_vx330t();

/// UltraScale xcvu125: 1200 DSP48E2, 2520 BRAM18 (Fig. 6b and Table II).
Device ultrascale_vu125();

/// Zynq-7020: a small edge device (220 DSPs) to exercise small overlays.
Device zynq_7z020();

/// Kintex UltraScale ku115: a mid/large device (5520 DSPs).
Device kintex_ku115();

/// Virtex UltraScale+ vu9p: a very large device (6840 DSPs).
Device vu9p();

/// Lookup by name; throws ftdl::ConfigError for unknown names.
Device device_by_name(const std::string& name);

/// Names of every device in the zoo.
std::vector<std::string> device_names();

}  // namespace ftdl::fpga
