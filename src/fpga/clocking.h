// Double-pump clock pair (Sec. III-A2 of the paper).
//
// BRAM runs on the slow clock CLKl; DSPs and LUTRAM run on CLKh = 2 x CLKl.
// Each weight word fetched from BRAM in one CLKl cycle feeds two MACCs with
// two different activations, so the DSP never starves even though BRAM tops
// out around 528 MHz while the DSP can reach 740 MHz.
#pragma once

#include "fpga/primitive.h"

namespace ftdl::fpga {

/// A synchronized (CLKl, CLKh = 2 CLKl) pair.
struct ClockPair {
  double clk_l_hz = 0.0;
  double clk_h_hz = 0.0;

  static ClockPair from_high(double clk_h_hz) {
    return {clk_h_hz / 2.0, clk_h_hz};
  }
};

/// Highest CLKh permitted by the primitive datasheet limits alone (before
/// routing): CLKh <= dsp/clb fmax and CLKl = CLKh/2 <= bram fmax.
double datasheet_clk_h_limit(const PrimitiveTiming& t);

/// Highest CLKh in a *single-clock* design (no double pump): every primitive,
/// including BRAM, must meet the one clock, so fmax <= bram fmax. Used by the
/// double-pump ablation.
double single_clock_limit(const PrimitiveTiming& t);

/// Validates that a clock pair is a legal double-pump configuration for the
/// given primitives; throws ftdl::ConfigError otherwise.
void validate_clock_pair(const ClockPair& c, const PrimitiveTiming& t);

}  // namespace ftdl::fpga
