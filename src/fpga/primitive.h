// FPGA primitive kinds and their datasheet timing characteristics.
//
// The paper's hardware argument rests on three primitive classes (DS923 /
// UltraScale datasheets): DSP slices and CLB logic can run near 740 MHz,
// while BRAM tops out near 528 MHz — hence the double-pump clock pair.
#pragma once

namespace ftdl::fpga {

/// The primitive classes the overlay is built from.
enum class Primitive {
  Dsp,     ///< DSP48 slice: 16x16 multiply + 48-bit accumulate, cascade chain
  Bram18,  ///< 18 Kbit block RAM (WBUF / PSumBUF storage)
  Clb,     ///< configurable logic block: LUTs, registers, LUTRAM (ActBUF)
};

const char* to_string(Primitive p);

/// Datasheet maximum operating frequencies per primitive class (Hz).
struct PrimitiveTiming {
  double dsp_fmax_hz;   ///< e.g. 740 MHz (DS923 speed grade -3)
  double bram_fmax_hz;  ///< e.g. 528 MHz
  double clb_fmax_hz;   ///< LUT/FF fabric logic, e.g. 740 MHz
};

}  // namespace ftdl::fpga
