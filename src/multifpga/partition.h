// Multi-FPGA model partitioning (Sec. II-B1).
//
// One vu125 holds ~2.4 M WBUF words (1200 TPEs x 1024 x 16-bit = 2.4 MB x 2),
// far below GoogLeNet's ~7 M or ResNet50's ~25.5 M weight words — so a
// single device cannot keep a whole model weight-stationary. The paper's
// answer is a multi-FPGA pipeline (citing Brainwave [14]): the layer
// sequence is split into contiguous stages, one device per stage, weights of
// each stage resident in that device's WBUFs, activations streamed over
// inter-FPGA links.
//
// This module plans such pipelines: an exact DP partitioner minimizes the
// bottleneck stage time (compute or link) subject to per-device weight
// residency, and reports throughput/latency/balance.
#pragma once

#include <cstdint>
#include <vector>

#include "compiler/scheduler.h"

namespace ftdl::multifpga {

/// Inter-FPGA link (e.g. 100G serial): bandwidth plus a fixed hop latency.
struct LinkModel {
  double bytes_per_sec = 12.5e9;  ///< 100 Gbit/s
  double hop_latency_s = 2e-6;
};

/// One pipeline stage = a contiguous run of overlay layers on one device.
struct StagePlan {
  int device_index = 0;
  std::size_t first_layer = 0;  ///< index into schedule.layers
  std::size_t last_layer = 0;   ///< inclusive
  std::int64_t cycles = 0;      ///< stage compute per frame
  std::int64_t resident_weight_words = 0;  ///< incl. E_WBUF duplication
  double egress_bytes = 0.0;    ///< activation tensor shipped to next stage

  double compute_seconds(double clk_hz) const { return double(cycles) / clk_hz; }
};

struct MultiFpgaPlan {
  std::vector<StagePlan> stages;
  double fps = 0.0;                 ///< 1 / bottleneck stage time
  double latency_seconds = 0.0;     ///< one frame through the whole pipeline
  double bottleneck_seconds = 0.0;
  bool weights_resident = false;    ///< every stage fits its device's WBUFs
  double balance = 0.0;             ///< mean/max stage time (1.0 = perfect)
};

/// Weight words a scheduled layer must hold *simultaneously*: unique
/// weights inflated by E_WBUF duplication, divided by the layer's weight
/// groups (a group-split layer keeps one group resident at a time and
/// reloads between groups — such layers are weight-stationary per group,
/// not per layer; see DESIGN.md §4).
std::int64_t resident_words(const compiler::LayerProgram& prog);

/// Total WBUF words of one device running `config`.
std::int64_t device_weight_capacity(const arch::OverlayConfig& config);

/// Plans a pipeline over `num_devices` identical devices. Throws
/// ftdl::ConfigError for num_devices < 1 or an empty schedule. If no
/// partition keeps every stage resident, the plan minimizing the bottleneck
/// is returned with weights_resident = false.
MultiFpgaPlan partition_pipeline(const compiler::NetworkSchedule& schedule,
                                 int num_devices, const LinkModel& link = {});

/// Smallest device count whose best partition keeps all weights resident
/// (bounded by one layer per device; throws InfeasibleError if even that
/// fails because a single layer exceeds one device's capacity).
int min_devices_for_residency(const compiler::NetworkSchedule& schedule,
                              const LinkModel& link = {});

}  // namespace ftdl::multifpga
