#include "multifpga/partition.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"
#include "compiler/session.h"
#include "obs/obs.h"

namespace ftdl::multifpga {

namespace {

struct LayerCost {
  std::int64_t cycles = 0;
  std::int64_t words = 0;
  double egress_bytes = 0.0;  ///< activation bytes if a cut follows this layer
};

std::vector<LayerCost> layer_costs(const compiler::NetworkSchedule& schedule) {
  std::vector<LayerCost> costs;
  costs.reserve(schedule.layers.size());
  for (const compiler::LayerProgram& p : schedule.layers) {
    LayerCost c;
    c.cycles = p.total_cycles() * p.layer.repeat;
    c.words = resident_words(p);
    c.egress_bytes = 2.0 * double(p.layer.out_elems());
    costs.push_back(c);
  }
  return costs;
}

}  // namespace

std::int64_t resident_words(const compiler::LayerProgram& prog) {
  const double e = std::max(prog.perf.e_wbuf, 1e-9);
  // One weight group resident at a time for group-split layers.
  return static_cast<std::int64_t>(std::ceil(
      double(prog.layer.weight_count()) / e / double(prog.weight_groups)));
}

std::int64_t device_weight_capacity(const arch::OverlayConfig& config) {
  return std::int64_t{config.tpes()} * config.wbuf_words;
}

MultiFpgaPlan partition_pipeline(const compiler::NetworkSchedule& schedule,
                                 int num_devices, const LinkModel& link) {
  if (num_devices < 1) throw ConfigError("need at least one device");
  if (schedule.layers.empty()) throw ConfigError("empty schedule");

  obs::ScopedSpan span("multifpga", "partition_pipeline",
                       {{"network", schedule.network_name},
                        {"devices", std::to_string(num_devices)}});

  const auto costs = layer_costs(schedule);
  const std::size_t n = costs.size();
  const int k = std::min<int>(num_devices, static_cast<int>(n));
  const double clk = schedule.config.clocks.clk_h_hz;
  const std::int64_t capacity = device_weight_capacity(schedule.config);

  // Stage time of layers [i, j]: compute plus the link transfer of the
  // boundary activation (overlapped designs would hide it; we charge it to
  // the producing stage as the conservative bound).
  auto stage_seconds = [&](std::size_t i, std::size_t j, bool last) {
    std::int64_t cyc = 0;
    for (std::size_t t = i; t <= j; ++t) cyc += costs[t].cycles;
    double s = double(cyc) / clk;
    if (!last) s += costs[j].egress_bytes / link.bytes_per_sec;
    return s;
  };
  auto stage_words = [&](std::size_t i, std::size_t j) {
    std::int64_t w = 0;
    for (std::size_t t = i; t <= j; ++t) w += costs[t].words;
    return w;
  };

  // DP over (first i layers, s stages): minimize the bottleneck, with a
  // large penalty for capacity violations so resident partitions win when
  // they exist. dp[s][i] = best bottleneck for layers [0, i) in s stages.
  // dp[s][n] is only ever read as the final answer for a partition of
  // exactly s stages (dp[s][j] with j < n feeds dp[s + 1][*]), so the stage
  // ending at i == n is the pipeline's last stage for *every* candidate
  // stage count and performs no egress transfer — `last` must not also
  // require s == k, or every s < k candidate is charged a phantom transfer
  // and best_s is biased toward k stages.
  constexpr double kViolation = 1e6;  // seconds; dwarfs any real stage
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(
      static_cast<std::size_t>(k) + 1, std::vector<double>(n + 1, inf));
  std::vector<std::vector<std::size_t>> cut(
      static_cast<std::size_t>(k) + 1, std::vector<std::size_t>(n + 1, 0));
  dp[0][0] = 0.0;

  for (int s = 1; s <= k; ++s) {
    const auto su = static_cast<std::size_t>(s);
    for (std::size_t i = su; i <= n; ++i) {
      for (std::size_t j = su - 1; j < i; ++j) {  // previous cut at j
        if (dp[su - 1][j] == inf) continue;
        double t = stage_seconds(j, i - 1, /*last=*/i == n);
        if (stage_words(j, i - 1) > capacity) t += kViolation;
        const double bottleneck = std::max(dp[su - 1][j], t);
        if (bottleneck < dp[su][i]) {
          dp[su][i] = bottleneck;
          cut[su][i] = j;
        }
      }
    }
  }

  // A stage per device is not mandatory: every extra cut adds a link
  // transfer, so a partition into fewer stages can beat one that uses all k
  // devices. Pick the best stage count s <= k (the minimum over a superset
  // never worsens, so more available devices still never slow the plan).
  int best_s = k;
  for (int s = 1; s <= k; ++s) {
    if (dp[static_cast<std::size_t>(s)][n] <
        dp[static_cast<std::size_t>(best_s)][n]) {
      best_s = s;
    }
  }

  MultiFpgaPlan plan;
  // Recover cuts.
  std::vector<std::size_t> bounds;  // stage end indices (exclusive)
  std::size_t pos = n;
  for (int s = best_s; s >= 1; --s) {
    bounds.push_back(pos);
    pos = cut[static_cast<std::size_t>(s)][pos];
  }
  std::reverse(bounds.begin(), bounds.end());

  std::size_t first = 0;
  plan.weights_resident = true;
  double sum_stage = 0.0;
  for (std::size_t s = 0; s < bounds.size(); ++s) {
    StagePlan st;
    st.device_index = static_cast<int>(s);
    st.first_layer = first;
    st.last_layer = bounds[s] - 1;
    for (std::size_t t = first; t < bounds[s]; ++t) st.cycles += costs[t].cycles;
    st.resident_weight_words = stage_words(first, bounds[s] - 1);
    st.egress_bytes =
        (s + 1 < bounds.size()) ? costs[bounds[s] - 1].egress_bytes : 0.0;
    if (st.resident_weight_words > capacity) plan.weights_resident = false;

    const double t =
        stage_seconds(first, bounds[s] - 1, s + 1 == bounds.size());
    plan.bottleneck_seconds = std::max(plan.bottleneck_seconds, t);
    sum_stage += t;
    plan.latency_seconds += t + (s + 1 < bounds.size() ? link.hop_latency_s : 0.0);
    plan.stages.push_back(st);
    first = bounds[s];
  }
  plan.fps = 1.0 / plan.bottleneck_seconds;
  plan.balance = sum_stage / (double(plan.stages.size()) * plan.bottleneck_seconds);
  if (obs::enabled()) {
    obs::count("multifpga/plans");
    obs::gauge("multifpga/last_plan_stages", double(plan.stages.size()));
    obs::gauge("multifpga/last_plan_fps", plan.fps);
    obs::gauge("multifpga/last_plan_bottleneck_seconds", plan.bottleneck_seconds);
    obs::gauge("multifpga/last_plan_balance", plan.balance);
    obs::gauge("multifpga/last_plan_weights_resident",
               plan.weights_resident ? 1.0 : 0.0);
  }
  return plan;
}

int min_devices_for_residency(const compiler::NetworkSchedule& schedule,
                              const LinkModel& link) {
  const std::int64_t capacity = device_weight_capacity(schedule.config);
  for (const compiler::LayerProgram& p : schedule.layers) {
    if (resident_words(p) > capacity) {
      throw InfeasibleError(p.layer.name +
                            " alone exceeds one device's WBUF capacity");
    }
  }
  // Scan device counts in blocks of the session's parallelism: each block
  // evaluates its DP partitions concurrently, then the smallest resident
  // count wins — the answer is the same as the serial 1..max scan, and the
  // serial early exit is preserved at block granularity.
  const int max_devices = static_cast<int>(schedule.layers.size());
  ThreadPool& pool = compiler::CompilerSession::global().pool();
  const int block = std::max(1, pool.jobs());
  for (int base = 1; base <= max_devices; base += block) {
    const int count = std::min(block, max_devices - base + 1);
    std::vector<char> resident(static_cast<std::size_t>(count), 0);
    pool.parallel_for(static_cast<std::size_t>(count), [&](std::size_t i) {
      compiler::name_worker_track();
      const int d = base + static_cast<int>(i);
      resident[i] = partition_pipeline(schedule, d, link).weights_resident;
    });
    for (int i = 0; i < count; ++i) {
      if (resident[static_cast<std::size_t>(i)]) return base + i;
    }
  }
  throw InternalError("one layer per device must be resident");
}

}  // namespace ftdl::multifpga
