// Offline loader / query library for ftdl-stream-v1 event logs.
//
// The reading half of the streaming observability backend (writer in
// stream_writer.h, byte layout in stream_format.h, spec in
// docs/obs-stream-format.md). Three layers:
//
//   * load_stream()  — parse the file into records + string table,
//     validating magic, version, chunk framing and CRCs. A log cut
//     mid-chunk (crashed or SIGKILLed producer) still yields every
//     complete chunk, with `truncated` set and the exact byte offset of
//     the incomplete tail; a CRC mismatch rejects only that chunk.
//   * reconstruct()  — replay the records in global sequence order into
//     the same TraceEvent / track / Metrics shapes the in-memory registry
//     holds, so render_chrome_trace()/render_metrics_json() produce
//     byte-identical exports to a live registry that saw the same run.
//   * check_log() / reconstruct_transactions() — the query/checker layer
//     `ftdl-obsq` fronts: structural invariants (contiguous chunk and
//     record sequences, balanced + monotonic spans per track, resolvable
//     string ids) and request-transaction reconstruction (enqueue ->
//     batch -> execute chains recorded by ftdl::serve).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/stream_format.h"

namespace ftdl::obs::stream {

struct LoadedChunk {
  ChunkHeader header;
  std::uint64_t file_offset = 0;  ///< of the chunk header
};

/// A parsed log file. `records` is in file order (sort key for replay is
/// Record::seq); reconstruct() below does the sorting.
struct LoadedLog {
  std::uint32_t version = 0;
  std::uint64_t file_bytes = 0;
  std::vector<Record> records;
  std::map<std::uint32_t, std::string> strings;
  std::vector<LoadedChunk> chunks;  ///< complete, CRC-valid chunks
  bool truncated = false;
  std::uint64_t truncation_offset = 0;  ///< first byte of the cut tail
  std::vector<std::string> errors;      ///< CRC/framing damage (per chunk)
};

/// Parses `path`. Throws ftdl::Error only when the file cannot be read at
/// all or its header is not an ftdl-stream-v1 header; damage past the
/// header is reported through `truncated` / `errors` instead so partial
/// logs stay loadable.
LoadedLog load_stream(const std::string& path);

/// Registry-shaped view of a log: tracks, the global-order event list and
/// the final counter/gauge state. Produced by replaying records in
/// sequence order; feeding `tracks`/`events` to render_chrome_trace()
/// yields byte-identical output to the live registry's export.
struct ReconstructedLog {
  std::vector<TrackNames> tracks;
  std::vector<TraceEvent> events;
  Metrics metrics;
};

ReconstructedLog reconstruct(const LoadedLog& log);

/// One structural-invariant violation found by check_log().
struct CheckProblem {
  std::string kind;    ///< "truncated", "missing_record_seq", ...
  std::string detail;  ///< human-readable description
  std::uint64_t seq = 0;  ///< offending sequence number, when applicable
};

struct CheckReport {
  std::vector<CheckProblem> problems;
  std::uint64_t records_checked = 0;
  bool ok() const { return problems.empty(); }
  std::string to_string() const;
};

/// Verifies the invariants a complete, well-formed log satisfies:
/// contiguous chunk and record sequences (no dropped events), balanced and
/// monotonically-timestamped spans per track, resolvable string ids, and
/// SpanArg adjacency. Truncation and CRC damage surface here too, with
/// the first unrecovered sequence number.
CheckReport check_log(const LoadedLog& log);

/// One request's reconstructed lifecycle through ftdl::serve, stitched
/// from the `enqueue` span (client track) and the `execute` span nested in
/// its `batch` span (worker track), matched on the "request" arg.
struct Transaction {
  std::uint64_t request = 0;
  bool has_enqueue = false;
  bool has_execute = false;
  double enqueue_ts = 0.0, enqueue_dur = 0.0;
  double execute_ts = 0.0, execute_dur = 0.0;
  std::uint64_t batch = 0;
  int batch_size = 0;
  std::string reject_reason;  ///< non-empty when admission rejected it
};

std::vector<Transaction> reconstruct_transactions(const ReconstructedLog& r);

/// Canonical hex rendering (xxd-style: offset, 16 bytes, ASCII gutter) of
/// raw log bytes. Shared by `ftdl-obsq --hexdump` and the spec's worked
/// example, which tests/test_obs_stream.cpp regenerates byte-for-byte.
std::string format_hex_dump(const std::string& bytes);

/// Reads a whole file into a string (throws ftdl::Error when unreadable).
std::string read_file_bytes(const std::string& path);

}  // namespace ftdl::obs::stream
