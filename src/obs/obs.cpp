#include "obs/obs.h"

#include <cctype>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "common/error.h"
#include "obs/stream_format.h"
#include "obs/stream_writer.h"

namespace ftdl::obs {

namespace detail {
bool g_enabled = false;
}  // namespace detail

void set_enabled(bool on) {
  if (!on) Registry::global().detach_stream();
  detail::g_enabled = on;
}

void set_enabled(bool on, const std::string& stream_path) {
  if (on && !stream_path.empty()) {
    Registry::global().attach_stream(
        std::make_shared<stream::StreamWriter>(stream_path));
  }
  set_enabled(on);
}

namespace {
thread_local std::string t_track_name = "main";
}  // namespace

void set_thread_track_name(const std::string& name) { t_track_name = name; }
const std::string& thread_track_name() { return t_track_name; }

namespace {

/// Escapes a string for inclusion inside JSON double quotes.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest representation of a double that round-trips through strtod.
std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer a shorter form when it round-trips exactly.
  for (int prec = 6; prec < 17; ++prec) {
    char cand[32];
    std::snprintf(cand, sizeof(cand), "%.*g", prec, v);
    if (std::strtod(cand, nullptr) == v) return cand;
  }
  return buf;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open " + path + " for writing");
  out << content;
  if (!out.flush()) throw Error("write to " + path + " failed");
}

}  // namespace

Registry& Registry::global() {
  static Registry r;
  return r;
}

void Registry::bump_counter_locked(const std::string& name,
                                   std::int64_t delta) {
  counters_[name] += delta;
  if (stream_) {
    stream::Record r;
    r.kind = static_cast<std::uint8_t>(stream::RecordKind::CounterAdd);
    r.name_id = stream_->intern(name);
    r.payload = stream::i64_bits(delta);
    stream_->publish(&r, 1);
  }
}

void Registry::add(const std::string& name, std::int64_t delta) {
  MutexLock lock(mu_);
  bump_counter_locked(name, delta);
}

void Registry::set_gauge(const std::string& name, double value) {
  MutexLock lock(mu_);
  gauges_[name] = value;
  if (stream_) {
    stream::Record r;
    r.kind = static_cast<std::uint8_t>(stream::RecordKind::GaugeSet);
    r.name_id = stream_->intern(name);
    r.payload = stream::double_bits(value);
    stream_->publish(&r, 1);
  }
}

std::int64_t Registry::counter(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double Registry::gauge(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::uint32_t Registry::track(const std::string& process,
                              const std::string& thread) {
  MutexLock lock(mu_);
  std::uint32_t pid = 0;
  bool pid_found = false;
  std::uint32_t max_tid = 0;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    const TrackInfo& t = tracks_[i];
    if (t.process != process) continue;
    if (t.thread == thread) return static_cast<std::uint32_t>(i);
    pid = t.pid;
    pid_found = true;
    max_tid = std::max(max_tid, t.tid);
  }
  TrackInfo t;
  t.process = process;
  t.thread = thread;
  if (pid_found) {
    t.pid = pid;
    t.tid = max_tid + 1;
  } else {
    std::uint32_t max_pid = 0;
    for (const TrackInfo& e : tracks_) max_pid = std::max(max_pid, e.pid);
    t.pid = tracks_.empty() ? 1 : max_pid + 1;
    t.tid = 1;
  }
  tracks_.push_back(std::move(t));
  const std::uint32_t index = static_cast<std::uint32_t>(tracks_.size() - 1);
  publish_track_def_locked(index);
  return index;
}

void Registry::publish_track_def_locked(std::uint32_t index) {
  if (!stream_) return;
  const TrackInfo& t = tracks_[index];
  stream::Record r;
  r.kind = static_cast<std::uint8_t>(stream::RecordKind::TrackDef);
  r.track = index;
  r.name_id = stream_->intern(t.process);
  r.aux_id = stream_->intern(t.thread);
  r.payload = (std::uint64_t(t.pid) << 32) | std::uint64_t(t.tid);
  stream_->publish(&r, 1);
}

void Registry::begin(std::uint32_t track, std::string name, double ts,
                     const char* cat, SpanArgs args) {
  MutexLock lock(mu_);
  FTDL_ASSERT(track < tracks_.size());
  TrackInfo& t = tracks_[track];
  if (stream_) {
    // The log records every span, including ones the in-memory store is
    // about to drop at its capacity cap — that is the point of streaming.
    std::vector<stream::Record> group(1 + args.size());
    group[0].kind = static_cast<std::uint8_t>(stream::RecordKind::SpanBegin);
    group[0].argc = static_cast<std::uint8_t>(
        std::min<std::size_t>(args.size(), 255));
    group[0].track = track;
    group[0].payload = stream::double_bits(ts);
    group[0].name_id = stream_->intern(name);
    group[0].aux_id = stream_->intern(cat);
    for (std::size_t i = 0; i < args.size(); ++i) {
      group[1 + i].kind = static_cast<std::uint8_t>(stream::RecordKind::SpanArg);
      group[1 + i].track = track;
      group[1 + i].name_id = stream_->intern(args[i].first);
      group[1 + i].aux_id = stream_->intern(args[i].second);
    }
    stream_->publish(group.data(), group.size());
  }
  // +1 leaves room for the matching end() so exports stay balanced.
  if (events_.size() + 1 >= capacity_) {
    bump_counter_locked("obs/dropped_events", 2);
    t.open.push_back(-1);
    return;
  }
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.ph = 'B';
  e.ts = ts;
  e.pid = t.pid;
  e.tid = t.tid;
  e.args = std::move(args);
  t.open.push_back(static_cast<std::int64_t>(events_.size()));
  events_.push_back(std::move(e));
}

void Registry::end(std::uint32_t track, double ts) {
  MutexLock lock(mu_);
  FTDL_ASSERT(track < tracks_.size());
  TrackInfo& t = tracks_[track];
  if (t.open.empty()) {
    bump_counter_locked("obs/unbalanced_ends", 1);
    return;
  }
  if (stream_) {
    stream::Record r;
    r.kind = static_cast<std::uint8_t>(stream::RecordKind::SpanEnd);
    r.track = track;
    r.payload = stream::double_bits(ts);
    stream_->publish(&r, 1);
  }
  const std::int64_t kept = t.open.back();
  t.open.pop_back();
  if (kept < 0) return;
  TraceEvent e;
  e.ph = 'E';
  e.ts = ts;
  e.pid = t.pid;
  e.tid = t.tid;
  events_.push_back(std::move(e));
}

void Registry::annotate(std::uint32_t track, const std::string& key,
                        const std::string& value) {
  MutexLock lock(mu_);
  FTDL_ASSERT(track < tracks_.size());
  TrackInfo& t = tracks_[track];
  if (t.open.empty()) {
    bump_counter_locked("obs/unbalanced_annotations", 1);
    return;
  }
  if (stream_) {
    stream::Record r;
    r.kind = static_cast<std::uint8_t>(stream::RecordKind::Annotate);
    r.track = track;
    r.name_id = stream_->intern(key);
    r.aux_id = stream_->intern(value);
    stream_->publish(&r, 1);
  }
  const std::int64_t open = t.open.back();
  if (open < 0) return;  // span itself was dropped at the capacity cap
  events_[static_cast<std::size_t>(open)].args.emplace_back(key, value);
}

double Registry::now_us() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const std::int64_t ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
  MutexLock lock(mu_);
  if (!epoch_set_) {
    epoch_ns_ = ns;
    epoch_set_ = true;
  }
  return double(ns - epoch_ns_) * 1e-3;
}

void Registry::set_capacity(std::size_t max_events) {
  MutexLock lock(mu_);
  capacity_ = max_events;
}

void Registry::attach_stream(std::shared_ptr<stream::StreamWriter> writer) {
  std::shared_ptr<stream::StreamWriter> previous;
  {
    MutexLock lock(mu_);
    previous = std::move(stream_);
    stream_ = std::move(writer);
    // Snapshot: tracks registered and scalar state accumulated before
    // attachment, so every later record in the log resolves and the log's
    // final counter/gauge state equals the registry's.
    for (std::uint32_t i = 0; i < tracks_.size(); ++i)
      publish_track_def_locked(i);
    if (stream_) {
      for (const auto& [name, value] : counters_) {
        stream::Record r;
        r.kind = static_cast<std::uint8_t>(stream::RecordKind::CounterAdd);
        r.name_id = stream_->intern(name);
        r.payload = stream::i64_bits(value);
        stream_->publish(&r, 1);
      }
      for (const auto& [name, value] : gauges_) {
        stream::Record r;
        r.kind = static_cast<std::uint8_t>(stream::RecordKind::GaugeSet);
        r.name_id = stream_->intern(name);
        r.payload = stream::double_bits(value);
        stream_->publish(&r, 1);
      }
    }
  }
  if (previous) previous->finish();
}

stream::StreamStats Registry::detach_stream() {
  std::shared_ptr<stream::StreamWriter> writer;
  {
    MutexLock lock(mu_);
    writer = std::move(stream_);
  }
  if (!writer) return stream::StreamStats{};
  // All publishes happen under mu_, and stream_ is now null under mu_, so
  // no publish can race the finish below.
  writer->finish();
  const stream::StreamStats s = writer->stats();
  MutexLock lock(mu_);
  counters_["obs/stream_records"] += static_cast<std::int64_t>(s.records);
  counters_["obs/stream_chunks"] +=
      static_cast<std::int64_t>(s.data_chunks + s.string_chunks);
  counters_["obs/stream_strings"] += static_cast<std::int64_t>(s.strings);
  counters_["obs/stream_bytes"] +=
      static_cast<std::int64_t>(s.bytes_written);
  return s;
}

bool Registry::stream_attached() const {
  MutexLock lock(mu_);
  return stream_ != nullptr;
}

Metrics Registry::metrics() const {
  MutexLock lock(mu_);
  return Metrics{counters_, gauges_};
}

std::string render_chrome_trace(const std::vector<TrackNames>& tracks,
                                const std::vector<TraceEvent>& events) {
  std::string out;
  out.reserve(events.size() * 96 + 1024);
  out += "{\n\"otherData\": {\"schema\": \"ftdl-trace-v1\"},\n";
  out += "\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
  };
  // Metadata: process / thread names, deduplicated per pid.
  std::map<std::uint32_t, bool> named_pid;
  for (const TrackNames& t : tracks) {
    if (!named_pid[t.pid]) {
      named_pid[t.pid] = true;
      sep();
      out += "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" +
             std::to_string(t.pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
             json_escape(t.process) + "\"}}";
    }
    sep();
    out += "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" +
           std::to_string(t.pid) + ",\"tid\":" + std::to_string(t.tid) +
           ",\"args\":{\"name\":\"" + json_escape(t.thread) + "\"}}";
  }
  for (const TraceEvent& e : events) {
    sep();
    out += "{\"ph\":\"";
    out += e.ph;
    out += "\"";
    if (e.ph == 'B') {
      out += ",\"name\":\"" + json_escape(e.name) + "\",\"cat\":\"" +
             json_escape(e.cat) + "\"";
    }
    out += ",\"ts\":" + json_double(e.ts) + ",\"pid\":" +
           std::to_string(e.pid) + ",\"tid\":" + std::to_string(e.tid);
    if (!e.args.empty()) {
      out += ",\"args\":{";
      bool afirst = true;
      for (const auto& [k, v] : e.args) {
        if (!afirst) out += ",";
        afirst = false;
        out += "\"" + json_escape(k) + "\":\"" + json_escape(v) + "\"";
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n]\n}\n";
  return out;
}

std::string render_metrics_json(const Metrics& m) {
  std::string out = "{\n\"schema\": \"ftdl-metrics-v1\",\n\"counters\": {\n";
  bool first = true;
  for (const auto& [name, value] : m.counters) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + json_escape(name) + "\": " + std::to_string(value);
  }
  out += "\n},\n\"gauges\": {\n";
  first = true;
  for (const auto& [name, value] : m.gauges) {
    if (!first) out += ",\n";
    first = false;
    out += "  \"" + json_escape(name) + "\": " + json_double(value);
  }
  out += "\n}\n}\n";
  return out;
}

std::string Registry::chrome_trace_json() const {
  MutexLock lock(mu_);
  std::vector<TrackNames> tracks;
  tracks.reserve(tracks_.size());
  for (const TrackInfo& t : tracks_)
    tracks.push_back(TrackNames{t.process, t.thread, t.pid, t.tid});
  return render_chrome_trace(tracks, events_);
}

std::string Registry::metrics_json() const { return render_metrics_json(metrics()); }

void Registry::write_chrome_trace(const std::string& path) const {
  write_file(path, chrome_trace_json());
}

void Registry::write_metrics(const std::string& path) const {
  write_file(path, metrics_json());
}

void Registry::reset() {
  detach_stream();
  MutexLock lock(mu_);
  events_.clear();
  tracks_.clear();
  counters_.clear();
  gauges_.clear();
  epoch_set_ = false;
}

ScopedSpan::ScopedSpan(const char* cat, std::string name, SpanArgs args,
                       const char* thread) {
  if (!enabled()) return;
  Registry& r = Registry::global();
  track_ = r.track("host", thread ? thread : thread_track_name());
  r.begin(track_, std::move(name), r.now_us(), cat, std::move(args));
  active_ = true;
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Registry& r = Registry::global();
  r.end(track_, r.now_us());
}

void ScopedSpan::add_arg(const std::string& key, const std::string& value) {
  if (!active_) return;
  Registry::global().annotate(track_, key, value);
}

namespace {

/// Minimal parser for the exact documents metrics_json() emits.
class MetricsParser {
 public:
  explicit MetricsParser(const std::string& s) : s_(s) {}

  Metrics parse() {
    Metrics m;
    expect('{');
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      const std::string key = parse_string();
      expect(':');
      if (key == "schema") {
        if (parse_string() != "ftdl-metrics-v1")
          throw Error("metrics JSON: unknown schema");
      } else if (key == "counters") {
        parse_object([&](const std::string& k, const std::string& v) {
          m.counters[k] = std::strtoll(v.c_str(), nullptr, 10);
        });
      } else if (key == "gauges") {
        parse_object([&](const std::string& k, const std::string& v) {
          m.gauges[k] = std::strtod(v.c_str(), nullptr);
        });
      } else {
        throw Error("metrics JSON: unexpected key " + key);
      }
    }
    expect('}');
    return m;
  }

 private:
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' ||
                              s_[i_] == '\t' || s_[i_] == '\r'))
      ++i_;
  }

  bool peek_is(char c) {
    skip_ws();
    return i_ < s_.size() && s_[i_] == c;
  }

  void expect(char c) {
    skip_ws();
    if (i_ >= s_.size() || s_[i_] != c)
      throw Error(std::string("metrics JSON: expected '") + c + "'");
    ++i_;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (i_ < s_.size() && s_[i_] != '"') {
      if (s_[i_] == '\\' && i_ + 1 < s_.size()) {
        ++i_;
        switch (s_[i_]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: out += s_[i_];
        }
      } else {
        out += s_[i_];
      }
      ++i_;
    }
    expect('"');
    return out;
  }

  std::string parse_number_token() {
    skip_ws();
    std::size_t start = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '-' ||
            s_[i_] == '+' || s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            s_[i_] == 'i' || s_[i_] == 'n' || s_[i_] == 'f' || s_[i_] == 'a'))
      ++i_;
    if (i_ == start) throw Error("metrics JSON: expected a number");
    return s_.substr(start, i_ - start);
  }

  template <typename Fn>
  void parse_object(Fn&& on_pair) {
    expect('{');
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      const std::string k = parse_string();
      expect(':');
      on_pair(k, parse_number_token());
    }
    expect('}');
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

}  // namespace

Metrics parse_metrics_json(const std::string& json) {
  return MetricsParser(json).parse();
}

}  // namespace ftdl::obs
