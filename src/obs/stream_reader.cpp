#include "obs/stream_reader.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/error.h"

namespace ftdl::obs::stream {

std::string read_file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open " + path + " for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

namespace {

LoadedLog parse_stream_bytes(const std::string& bytes,
                             const std::string& origin) {
  LoadedLog log;
  log.file_bytes = bytes.size();
  const unsigned char* data =
      reinterpret_cast<const unsigned char*>(bytes.data());
  if (bytes.size() < kFileHeaderBytes ||
      std::memcmp(data, kFileMagic, sizeof(kFileMagic)) != 0)
    throw Error(origin + ": not an ftdl-stream file (bad magic)");
  log.version = get_u32(data + 8);
  if (log.version != kFormatVersion)
    throw Error(origin + ": unsupported ftdl-stream version " +
                std::to_string(log.version));
  const std::uint32_t header_bytes = get_u32(data + 12);
  if (header_bytes < kFileHeaderBytes || header_bytes > bytes.size())
    throw Error(origin + ": corrupt file header");

  std::size_t off = header_bytes;
  while (off < bytes.size()) {
    if (bytes.size() - off < kChunkHeaderBytes) {
      log.truncated = true;
      log.truncation_offset = off;
      break;
    }
    const ChunkHeader h = decode_chunk_header(data + off);
    if (h.magic != kChunkMagic) {
      // Not a chunk boundary: unrecoverable framing damage. Everything
      // before this offset has already been validated, so stop here.
      log.errors.push_back(origin + ": bad chunk magic at offset " +
                           std::to_string(off));
      log.truncated = true;
      log.truncation_offset = off;
      break;
    }
    if (bytes.size() - off - kChunkHeaderBytes < h.payload_bytes) {
      log.truncated = true;
      log.truncation_offset = off;
      break;
    }
    const unsigned char* payload = data + off + kChunkHeaderBytes;
    const std::uint32_t crc = crc32(payload, h.payload_bytes);
    if (crc != h.crc32) {
      log.errors.push_back(origin + ": CRC mismatch in chunk " +
                           std::to_string(h.chunk_seq) + " at offset " +
                           std::to_string(off));
      off += kChunkHeaderBytes + h.payload_bytes;
      continue;
    }
    LoadedChunk lc;
    lc.header = h;
    lc.file_offset = off;
    log.chunks.push_back(lc);
    switch (static_cast<ChunkKind>(h.kind)) {
      case ChunkKind::Data: {
        if (std::uint64_t(h.count) * kRecordBytes != h.payload_bytes) {
          log.errors.push_back(origin + ": record count disagrees with " +
                               "payload size in chunk " +
                               std::to_string(h.chunk_seq));
          break;
        }
        for (std::uint32_t i = 0; i < h.count; ++i)
          log.records.push_back(decode_record(payload + i * kRecordBytes));
        break;
      }
      case ChunkKind::Strings: {
        std::size_t p = 0;
        for (std::uint32_t i = 0; i < h.count; ++i) {
          if (h.payload_bytes - p < 8) {
            log.errors.push_back(origin + ": short string entry in chunk " +
                                 std::to_string(h.chunk_seq));
            break;
          }
          const std::uint32_t id = get_u32(payload + p);
          const std::uint32_t len = get_u32(payload + p + 4);
          p += 8;
          if (h.payload_bytes - p < len) {
            log.errors.push_back(origin + ": string overruns chunk " +
                                 std::to_string(h.chunk_seq));
            break;
          }
          log.strings[id] = std::string(
              reinterpret_cast<const char*>(payload + p), len);
          p += len;
        }
        break;
      }
      default:
        // Forward compatibility: unknown chunk kinds are framed the same
        // way (length-prefixed, CRC-checked) and are skipped, not errors.
        break;
    }
    off += kChunkHeaderBytes + h.payload_bytes;
  }
  return log;
}

std::string lookup(const std::map<std::uint32_t, std::string>& strings,
                   std::uint32_t id) {
  if (id == 0) return "";
  auto it = strings.find(id);
  return it == strings.end() ? "" : it->second;
}

std::vector<Record> records_in_seq_order(const LoadedLog& log) {
  std::vector<Record> sorted = log.records;
  std::sort(sorted.begin(), sorted.end(),
            [](const Record& a, const Record& b) { return a.seq < b.seq; });
  return sorted;
}

}  // namespace

LoadedLog load_stream(const std::string& path) {
  return parse_stream_bytes(read_file_bytes(path), path);
}

ReconstructedLog reconstruct(const LoadedLog& log) {
  ReconstructedLog out;
  const std::vector<Record> sorted = records_in_seq_order(log);
  // Per-track stack of indexes into out.events of open SpanBegins.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> open;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const Record& r = sorted[i];
    switch (static_cast<RecordKind>(r.kind)) {
      case RecordKind::TrackDef: {
        if (out.tracks.size() <= r.track)
          out.tracks.resize(r.track + 1);
        TrackNames& t = out.tracks[r.track];
        t.process = lookup(log.strings, r.name_id);
        t.thread = lookup(log.strings, r.aux_id);
        t.pid = static_cast<std::uint32_t>(r.payload >> 32);
        t.tid = static_cast<std::uint32_t>(r.payload & 0xFFFFFFFFu);
        break;
      }
      case RecordKind::SpanBegin: {
        TraceEvent e;
        e.ph = 'B';
        e.name = lookup(log.strings, r.name_id);
        e.cat = lookup(log.strings, r.aux_id);
        e.ts = bits_double(r.payload);
        if (r.track < out.tracks.size()) {
          e.pid = out.tracks[r.track].pid;
          e.tid = out.tracks[r.track].tid;
        }
        for (std::uint8_t a = 0; a < r.argc && i + 1 < sorted.size(); ++a) {
          const Record& arg = sorted[i + 1];
          if (static_cast<RecordKind>(arg.kind) != RecordKind::SpanArg)
            break;
          e.args.emplace_back(lookup(log.strings, arg.name_id),
                              lookup(log.strings, arg.aux_id));
          ++i;
        }
        open[r.track].push_back(out.events.size());
        out.events.push_back(std::move(e));
        break;
      }
      case RecordKind::Annotate: {
        auto& stack = open[r.track];
        if (!stack.empty()) {
          out.events[stack.back()].args.emplace_back(
              lookup(log.strings, r.name_id),
              lookup(log.strings, r.aux_id));
        }
        break;
      }
      case RecordKind::SpanEnd: {
        TraceEvent e;
        e.ph = 'E';
        e.ts = bits_double(r.payload);
        if (r.track < out.tracks.size()) {
          e.pid = out.tracks[r.track].pid;
          e.tid = out.tracks[r.track].tid;
        }
        auto& stack = open[r.track];
        if (!stack.empty()) stack.pop_back();
        out.events.push_back(std::move(e));
        break;
      }
      case RecordKind::CounterAdd:
        out.metrics.counters[lookup(log.strings, r.name_id)] +=
            bits_i64(r.payload);
        break;
      case RecordKind::GaugeSet:
        out.metrics.gauges[lookup(log.strings, r.name_id)] =
            bits_double(r.payload);
        break;
      case RecordKind::SpanArg:  // consumed by its SpanBegin; orphans skip
      default:
        break;
    }
  }
  return out;
}

CheckReport check_log(const LoadedLog& log) {
  CheckReport rep;
  rep.records_checked = log.records.size();
  auto problem = [&](const char* kind, std::string detail,
                     std::uint64_t seq = 0) {
    rep.problems.push_back(CheckProblem{kind, std::move(detail), seq});
  };

  for (const std::string& e : log.errors) problem("chunk_damage", e);

  // Record sequence contiguity: the writer stamps every published record
  // from one atomic counter, so a complete log covers exactly [0, N).
  std::vector<std::uint64_t> seqs;
  seqs.reserve(log.records.size());
  for (const Record& r : log.records) seqs.push_back(r.seq);
  std::sort(seqs.begin(), seqs.end());
  std::uint64_t first_missing = seqs.size();
  bool gap = false;
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    if (seqs[i] != i) {
      first_missing = i;
      gap = true;
      break;
    }
  }
  if (gap) {
    problem("missing_record_seq",
            "record sequence " + std::to_string(first_missing) +
                " is missing (first gap; events were lost)",
            first_missing);
  }

  if (log.truncated) {
    problem("truncated",
            "log cut mid-chunk at byte offset " +
                std::to_string(log.truncation_offset) +
                "; first unrecovered record sequence is " +
                std::to_string(first_missing),
            first_missing);
  }

  // Chunk sequence contiguity (catches whole lost chunks even when every
  // surviving record seq happens to be contiguous).
  std::vector<std::uint64_t> cseqs;
  cseqs.reserve(log.chunks.size());
  for (const LoadedChunk& c : log.chunks) cseqs.push_back(c.header.chunk_seq);
  std::sort(cseqs.begin(), cseqs.end());
  for (std::size_t i = 0; i < cseqs.size(); ++i) {
    if (cseqs[i] != i) {
      if (!log.truncated && log.errors.empty()) {
        problem("missing_chunk_seq",
                "chunk sequence " + std::to_string(i) + " is missing", i);
      }
      break;
    }
  }

  // String resolution and SpanArg adjacency over the replay order.
  const std::vector<Record> sorted = records_in_seq_order(log);
  auto resolved = [&](std::uint32_t id) {
    return id == 0 || log.strings.count(id) != 0;
  };
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const Record& r = sorted[i];
    if (!resolved(r.name_id) || !resolved(r.aux_id)) {
      problem("unresolved_string",
              "record seq " + std::to_string(r.seq) +
                  " references a string id missing from the table",
              r.seq);
    }
    if (static_cast<RecordKind>(r.kind) == RecordKind::SpanBegin) {
      for (std::uint8_t a = 0; a < r.argc; ++a) {
        const bool adjacent =
            i + 1 + a < sorted.size() &&
            static_cast<RecordKind>(sorted[i + 1 + a].kind) ==
                RecordKind::SpanArg &&
            sorted[i + 1 + a].seq == r.seq + 1 + a;
        if (!adjacent) {
          problem("detached_span_args",
                  "SpanBegin seq " + std::to_string(r.seq) + " declares " +
                      std::to_string(int(r.argc)) +
                      " args but they are not contiguous",
                  r.seq);
          break;
        }
      }
      i += r.argc;
    }
  }

  // Span balance and per-track timestamp monotonicity over the
  // reconstructed event list (the same invariants the Chrome-trace
  // exporter guarantees for the in-memory backend).
  const ReconstructedLog rec = reconstruct(log);
  std::map<std::pair<std::uint32_t, std::uint32_t>, int> depth;
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> last_ts;
  for (std::size_t i = 0; i < rec.events.size(); ++i) {
    const TraceEvent& e = rec.events[i];
    const auto key = std::make_pair(e.pid, e.tid);
    auto it = last_ts.find(key);
    if (it != last_ts.end() && e.ts < it->second) {
      problem("nonmonotonic_ts",
              "timestamp went backwards on track " + std::to_string(e.pid) +
                  "/" + std::to_string(e.tid) + " at event " +
                  std::to_string(i),
              i);
    }
    last_ts[key] = e.ts;
    if (e.ph == 'B') {
      ++depth[key];
    } else if (depth[key] == 0) {
      problem("unbalanced_end",
              "SpanEnd with no open span on track " + std::to_string(e.pid) +
                  "/" + std::to_string(e.tid),
              i);
    } else {
      --depth[key];
    }
  }
  for (const auto& [key, d] : depth) {
    if (d != 0) {
      problem("unclosed_span",
              std::to_string(d) + " span(s) left open on track " +
                  std::to_string(key.first) + "/" +
                  std::to_string(key.second));
    }
  }
  return rep;
}

std::string CheckReport::to_string() const {
  std::string out;
  if (ok()) {
    out = "check: OK (" + std::to_string(records_checked) + " records)\n";
    return out;
  }
  for (const CheckProblem& p : problems) {
    out += "check: " + p.kind + ": " + p.detail + "\n";
  }
  out += "check: " + std::to_string(problems.size()) + " problem(s) over " +
         std::to_string(records_checked) + " records\n";
  return out;
}

std::vector<Transaction> reconstruct_transactions(const ReconstructedLog& r) {
  // One pass with per-track stacks; each open B remembers its parent so an
  // `execute` span can reach its enclosing `batch` args when it closes.
  struct OpenSpan {
    std::size_t event = 0;
    std::int64_t parent = -1;  ///< index into r.events, -1 at top level
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<OpenSpan>>
      stacks;
  std::map<std::uint64_t, Transaction> txns;

  auto arg_of = [](const TraceEvent& e, const char* key) -> const std::string* {
    for (const auto& [k, v] : e.args)
      if (k == key) return &v;
    return nullptr;
  };
  auto close_span = [&](const TraceEvent& b, double end_ts,
                        std::int64_t parent) {
    const std::string* req = arg_of(b, "request");
    if (!req) return;
    const std::uint64_t id = std::strtoull(req->c_str(), nullptr, 10);
    Transaction& t = txns[id];
    t.request = id;
    if (b.name == "enqueue") {
      t.has_enqueue = true;
      t.enqueue_ts = b.ts;
      t.enqueue_dur = end_ts - b.ts;
      if (const std::string* rej = arg_of(b, "rejected")) t.reject_reason = *rej;
    } else if (b.name == "execute") {
      t.has_execute = true;
      t.execute_ts = b.ts;
      t.execute_dur = end_ts - b.ts;
      if (parent >= 0) {
        const TraceEvent& batch = r.events[static_cast<std::size_t>(parent)];
        if (batch.name == "batch") {
          if (const std::string* bid = arg_of(batch, "batch"))
            t.batch = std::strtoull(bid->c_str(), nullptr, 10);
          if (const std::string* sz = arg_of(batch, "size"))
            t.batch_size = static_cast<int>(std::strtol(sz->c_str(),
                                                        nullptr, 10));
        }
      }
    }
  };

  for (std::size_t i = 0; i < r.events.size(); ++i) {
    const TraceEvent& e = r.events[i];
    auto& stack = stacks[std::make_pair(e.pid, e.tid)];
    if (e.ph == 'B') {
      OpenSpan s;
      s.event = i;
      s.parent = stack.empty() ? -1
                               : static_cast<std::int64_t>(stack.back().event);
      stack.push_back(s);
    } else if (!stack.empty()) {
      const OpenSpan s = stack.back();
      stack.pop_back();
      close_span(r.events[s.event], e.ts, s.parent);
    }
  }

  std::vector<Transaction> out;
  out.reserve(txns.size());
  for (auto& [id, t] : txns) out.push_back(std::move(t));
  return out;
}

std::string format_hex_dump(const std::string& bytes) {
  std::string out;
  char line[80];
  for (std::size_t off = 0; off < bytes.size(); off += 16) {
    const std::size_t n = std::min<std::size_t>(16, bytes.size() - off);
    int w = std::snprintf(line, sizeof(line), "%08zx  ", off);
    out.append(line, static_cast<std::size_t>(w));
    for (std::size_t i = 0; i < 16; ++i) {
      if (i < n) {
        w = std::snprintf(line, sizeof(line), "%02x ",
                          static_cast<unsigned char>(bytes[off + i]));
        out.append(line, static_cast<std::size_t>(w));
      } else {
        out += "   ";
      }
      if (i == 7) out += ' ';
    }
    out += " |";
    for (std::size_t i = 0; i < n; ++i) {
      const unsigned char c = static_cast<unsigned char>(bytes[off + i]);
      out += (c >= 0x20 && c < 0x7F) ? static_cast<char>(c) : '.';
    }
    out += "|\n";
  }
  return out;
}

}  // namespace ftdl::obs::stream
