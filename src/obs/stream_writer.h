// Streaming event-log writer — the publishing half of the ftdl-stream-v1
// backend (byte layout in stream_format.h, spec in
// docs/obs-stream-format.md).
//
// Architecture: a lock-light pubsub split. Instrumented threads *publish*
// fixed-size records into a per-thread chunk buffer (their Channel); a
// single background *serializer* thread turns sealed chunks into
// length-prefixed, CRC-protected chunks appended to the log file. The
// publish fast path touches only the calling thread's channel mutex —
// uncontended except at the instant the serializer sweeps that channel —
// so publishing threads never wait on each other and never perform file
// I/O, allocation amortizes to the chunk granularity, and a server under
// sustained load records every event instead of dropping at a capacity
// cap (the failure mode of the in-memory fallback backend).
//
// Ordering: every record is stamped with a global sequence number from one
// atomic counter at publish time. Chunks from different threads reach the
// file in seal order, not record order; the reader re-establishes the
// total publish order by sorting on the record sequence and proves
// completeness by checking both the chunk and record sequences are
// contiguous from 0.
//
// Lifecycle: publish() after finish() is a counted no-op (never a crash,
// never blocking); finish() — idempotent, also run by the destructor —
// sweeps every channel's partial chunk, drains the serializer queue,
// flushes and closes the file. The caller must guarantee no publish() is
// *concurrent* with destruction (the obs Registry detaches the writer
// before dropping it; see obs.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/stream_format.h"

namespace ftdl::obs::stream {

struct StreamWriterOptions {
  /// Records per data chunk (64 KiB of payload at the default). Smaller
  /// chunks lower the crash-loss window; larger chunks amortize better.
  std::size_t chunk_records = 2048;
  /// Serializer sweep period: even idle channels with a partial chunk are
  /// sealed and written this often, bounding log-tail staleness. 0 writes
  /// only on full chunks and finish() (used by deterministic tests).
  std::int64_t flush_period_ms = 100;
};

/// Writer-side accounting (monotonic; a consistent snapshot via stats()).
struct StreamStats {
  std::uint64_t records = 0;          ///< data records written to the file
  std::uint64_t data_chunks = 0;
  std::uint64_t string_chunks = 0;
  std::uint64_t strings = 0;          ///< interned string-table entries
  std::uint64_t bytes_written = 0;    ///< file size including headers
  std::uint64_t dropped_after_finish = 0;  ///< publishes after finish()
};

class StreamWriter {
 public:
  /// Opens `path` for writing (truncating) and starts the serializer
  /// thread. Throws ftdl::Error when the file cannot be opened.
  explicit StreamWriter(std::string path, StreamWriterOptions opt = {});
  ~StreamWriter();
  StreamWriter(const StreamWriter&) = delete;
  StreamWriter& operator=(const StreamWriter&) = delete;

  /// Interns `s` into the log's string table and returns its non-zero id.
  /// Ids are assigned in first-intern order; the serializer writes each
  /// new entry in a Strings chunk before any Data chunk referencing it.
  std::uint32_t intern(const std::string& s);

  /// Publishes `n` records as one atomic group: they receive contiguous
  /// sequence numbers and land in the same chunk (a SpanBegin and its
  /// SpanArgs always travel together). Returns the first sequence number.
  /// `n` must be <= chunk_records. Thread-safe; after finish() the group
  /// is dropped and counted in dropped_after_finish.
  std::uint64_t publish(const Record* records, std::size_t n);

  /// Seals every channel's partial chunk, drains and joins the
  /// serializer, flushes and closes the file. Idempotent.
  void finish();

  StreamStats stats() const;
  const std::string& path() const { return path_; }

 private:
  struct Channel {
    std::uint32_t id = 0;
    Mutex mu;
    std::vector<Record> buf FTDL_GUARDED_BY(mu);
  };

  struct SealedChunk {
    std::uint32_t writer_thread = 0;
    std::vector<Record> records;
  };

  Channel* channel_for_this_thread();
  void seal_locked(Channel& ch) FTDL_REQUIRES(ch.mu);
  void serializer_loop();
  void write_pending_strings();
  void write_data_chunk(const SealedChunk& c);
  void append(const std::string& bytes);

  const std::string path_;
  const StreamWriterOptions opt_;
  const std::uint64_t writer_id_;  ///< distinguishes thread-local caches
  std::FILE* file_ = nullptr;

  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<bool> finished_{false};
  std::atomic<std::uint64_t> dropped_after_finish_{0};

  mutable Mutex channels_mu_;
  std::vector<std::unique_ptr<Channel>> channels_
      FTDL_GUARDED_BY(channels_mu_);

  mutable Mutex strings_mu_;
  std::unordered_map<std::string, std::uint32_t> interned_
      FTDL_GUARDED_BY(strings_mu_);
  std::vector<std::pair<std::uint32_t, std::string>> pending_strings_
      FTDL_GUARDED_BY(strings_mu_);

  mutable Mutex queue_mu_;
  CondVar queue_cv_;
  std::vector<SealedChunk> queue_ FTDL_GUARDED_BY(queue_mu_);
  bool stopping_ FTDL_GUARDED_BY(queue_mu_) = false;

  // Serializer-thread state: chunk_seq_ and the FILE* are touched only by
  // the serializer (and by finish() after the join), so they need no lock.
  std::uint64_t chunk_seq_ = 0;

  mutable Mutex stats_mu_;
  StreamStats stats_ FTDL_GUARDED_BY(stats_mu_);

  std::thread serializer_;
};

}  // namespace ftdl::obs::stream
