#include "obs/stream_writer.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "common/error.h"

namespace ftdl::obs::stream {

namespace {

/// Monotonic id source for writers; lets the thread-local channel cache
/// detect that it belongs to a dead writer without dereferencing it.
std::atomic<std::uint64_t> g_next_writer_id{1};

struct ChannelCache {
  std::uint64_t writer_id = 0;
  void* channel = nullptr;
};
thread_local ChannelCache t_channel_cache;

}  // namespace

StreamWriter::StreamWriter(std::string path, StreamWriterOptions opt)
    : path_(std::move(path)),
      opt_(opt),
      writer_id_(g_next_writer_id.fetch_add(1)) {
  if (opt_.chunk_records < 2)
    throw Error("stream writer: chunk_records must be >= 2");
  file_ = std::fopen(path_.c_str(), "wb");
  if (!file_) throw Error("cannot open " + path_ + " for writing");
  std::string header;
  header.append(kFileMagic, sizeof(kFileMagic));
  put_u32(header, kFormatVersion);
  put_u32(header, static_cast<std::uint32_t>(kFileHeaderBytes));
  put_u64(header, 0);  // flags
  put_u64(header, 0);  // reserved
  append(header);
  serializer_ = std::thread([this] { serializer_loop(); });
}

StreamWriter::~StreamWriter() { finish(); }

std::uint32_t StreamWriter::intern(const std::string& s) {
  MutexLock lock(strings_mu_);
  auto it = interned_.find(s);
  if (it != interned_.end()) return it->second;
  const std::uint32_t id = static_cast<std::uint32_t>(interned_.size() + 1);
  interned_.emplace(s, id);
  pending_strings_.emplace_back(id, s);
  return id;
}

StreamWriter::Channel* StreamWriter::channel_for_this_thread() {
  ChannelCache& cache = t_channel_cache;
  if (cache.writer_id == writer_id_)
    return static_cast<Channel*>(cache.channel);
  MutexLock lock(channels_mu_);
  auto ch = std::make_unique<Channel>();
  ch->id = static_cast<std::uint32_t>(channels_.size() + 1);
  {
    MutexLock chlock(ch->mu);
    ch->buf.reserve(opt_.chunk_records);
  }
  Channel* raw = ch.get();
  channels_.push_back(std::move(ch));
  cache.writer_id = writer_id_;
  cache.channel = raw;
  return raw;
}

void StreamWriter::seal_locked(Channel& ch) {
  if (ch.buf.empty()) return;
  SealedChunk sealed;
  sealed.writer_thread = ch.id;
  sealed.records.swap(ch.buf);
  ch.buf.reserve(opt_.chunk_records);
  {
    MutexLock qlock(queue_mu_);
    queue_.push_back(std::move(sealed));
  }
  queue_cv_.notify_one();
}

std::uint64_t StreamWriter::publish(const Record* records, std::size_t n) {
  if (n == 0) return next_seq_.load();
  if (finished_.load(std::memory_order_acquire)) {
    dropped_after_finish_.fetch_add(n, std::memory_order_relaxed);
    return 0;
  }
  const std::uint64_t first = next_seq_.fetch_add(n);
  Channel* ch = channel_for_this_thread();
  MutexLock lock(ch->mu);
  if (ch->buf.size() + n > opt_.chunk_records) seal_locked(*ch);
  for (std::size_t i = 0; i < n; ++i) {
    Record r = records[i];
    r.seq = first + i;
    ch->buf.push_back(r);
  }
  if (ch->buf.size() >= opt_.chunk_records) seal_locked(*ch);
  return first;
}

void StreamWriter::append(const std::string& bytes) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size())
    throw Error("stream writer: write to " + path_ + " failed");
  MutexLock lock(stats_mu_);
  stats_.bytes_written += bytes.size();
}

void StreamWriter::write_pending_strings() {
  std::vector<std::pair<std::uint32_t, std::string>> batch;
  {
    MutexLock lock(strings_mu_);
    if (pending_strings_.empty()) return;
    batch.swap(pending_strings_);
  }
  std::string payload;
  for (const auto& [id, s] : batch) {
    put_u32(payload, id);
    put_u32(payload, static_cast<std::uint32_t>(s.size()));
    payload.append(s);
  }
  ChunkHeader h;
  h.kind = static_cast<std::uint32_t>(ChunkKind::Strings);
  h.payload_bytes = static_cast<std::uint32_t>(payload.size());
  h.crc32 = crc32(payload.data(), payload.size());
  h.chunk_seq = chunk_seq_++;
  h.writer_thread = 0;
  h.count = static_cast<std::uint32_t>(batch.size());
  std::string bytes;
  bytes.reserve(kChunkHeaderBytes + payload.size());
  encode_chunk_header(bytes, h);
  bytes.append(payload);
  append(bytes);
  MutexLock lock(stats_mu_);
  ++stats_.string_chunks;
  stats_.strings += batch.size();
}

void StreamWriter::write_data_chunk(const SealedChunk& c) {
  // Any string a record references was interned before its publish
  // completed, so flushing the intern delta first guarantees the reader
  // never sees a dangling id.
  write_pending_strings();
  std::string payload;
  payload.reserve(c.records.size() * kRecordBytes);
  for (const Record& r : c.records) encode_record(payload, r);
  ChunkHeader h;
  h.kind = static_cast<std::uint32_t>(ChunkKind::Data);
  h.payload_bytes = static_cast<std::uint32_t>(payload.size());
  h.crc32 = crc32(payload.data(), payload.size());
  h.chunk_seq = chunk_seq_++;
  h.writer_thread = c.writer_thread;
  h.count = static_cast<std::uint32_t>(c.records.size());
  std::string bytes;
  bytes.reserve(kChunkHeaderBytes + payload.size());
  encode_chunk_header(bytes, h);
  bytes.append(payload);
  append(bytes);
  MutexLock lock(stats_mu_);
  ++stats_.data_chunks;
  stats_.records += c.records.size();
}

void StreamWriter::serializer_loop() {
  const auto period = std::chrono::milliseconds(
      opt_.flush_period_ms > 0 ? opt_.flush_period_ms : 0);
  for (;;) {
    std::vector<SealedChunk> work;
    bool stop = false;
    {
      MutexLock lock(queue_mu_);
      if (opt_.flush_period_ms > 0) {
        const auto deadline = std::chrono::steady_clock::now() + period;
        while (queue_.empty() && !stopping_) {
          if (queue_cv_.wait_until(queue_mu_, deadline) ==
              std::cv_status::timeout)
            break;
        }
      } else {
        while (queue_.empty() && !stopping_) queue_cv_.wait(queue_mu_);
      }
      work.swap(queue_);
      stop = stopping_;
    }
    if (work.empty() && !stop && opt_.flush_period_ms > 0) {
      // Periodic sweep: seal partial chunks so the log tail stays fresh
      // even when no channel fills up (an idle or low-rate server).
      MutexLock lock(channels_mu_);
      for (const auto& ch : channels_) {
        MutexLock chlock(ch->mu);
        seal_locked(*ch);
      }
      {
        MutexLock qlock(queue_mu_);
        work.swap(queue_);
      }
    }
    for (const SealedChunk& c : work) write_data_chunk(c);
    if (!work.empty()) std::fflush(file_);
    if (stop) {
      MutexLock lock(queue_mu_);
      if (queue_.empty()) return;
    }
  }
}

void StreamWriter::finish() {
  bool expected = false;
  if (!finished_.compare_exchange_strong(expected, true)) return;
  // No publish() can begin past this point; ones already inside observe
  // their channel mutex, so the sweep below sees a consistent buffer.
  {
    MutexLock lock(channels_mu_);
    for (const auto& ch : channels_) {
      MutexLock chlock(ch->mu);
      seal_locked(*ch);
    }
  }
  {
    MutexLock lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  serializer_.join();
  write_pending_strings();  // strings interned but never referenced
  std::fflush(file_);
  std::fclose(file_);
  file_ = nullptr;
}

StreamStats StreamWriter::stats() const {
  MutexLock lock(stats_mu_);
  StreamStats s = stats_;
  s.dropped_after_finish = dropped_after_finish_.load();
  return s;
}

}  // namespace ftdl::obs::stream
