// ftdl-stream-v1 — the on-disk byte layout of the streaming event log.
//
// This header is the single in-code source of truth for the format that
// stream_writer.cpp emits and stream_reader.cpp parses. The normative,
// prose specification lives in docs/obs-stream-format.md; the two cannot
// drift because tests/test_obs_stream.cpp regenerates the spec's worked
// hex dump byte-for-byte from these definitions.
//
// Layout summary (all integers little-endian, no implicit padding):
//
//   file      := FileHeader Chunk*
//   Chunk     := ChunkHeader payload[payload_bytes]
//   payload   := Record*32B * record_count          (kind = Data)
//              | { u32 id, u32 len, byte[len] }*    (kind = Strings)
//
// Every chunk carries a CRC32 (IEEE 802.3 reflected, the zlib polynomial)
// over its payload and a global chunk sequence number; every data record
// carries a global record sequence number. Both sequences are contiguous
// from 0 in a complete log, which is what lets an offline checker prove
// "no event was lost" instead of assuming it.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>

namespace ftdl::obs::stream {

// ---- file header (32 bytes) ----

inline constexpr char kFileMagic[8] = {'F', 'T', 'D', 'L',
                                       'S', 'T', 'R', 'M'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kFileHeaderBytes = 32;

// ---- chunk header (32 bytes) ----

/// "CHNK" read as a little-endian u32.
inline constexpr std::uint32_t kChunkMagic = 0x4B4E4843u;
inline constexpr std::size_t kChunkHeaderBytes = 32;

enum class ChunkKind : std::uint32_t {
  Data = 0,     ///< payload is record_count fixed 32-byte records
  Strings = 1,  ///< payload is string-table entries {id, len, bytes}
};

struct ChunkHeader {
  std::uint32_t magic = kChunkMagic;
  std::uint32_t kind = 0;           ///< ChunkKind
  std::uint32_t payload_bytes = 0;
  std::uint32_t crc32 = 0;          ///< over the payload bytes only
  std::uint64_t chunk_seq = 0;      ///< contiguous from 0 across both kinds
  std::uint32_t writer_thread = 0;  ///< publisher channel id; 0 for strings
  std::uint32_t count = 0;          ///< records (Data) / entries (Strings)
};

// ---- data records (32 bytes each) ----

enum class RecordKind : std::uint8_t {
  Invalid = 0,
  TrackDef = 1,   ///< track: index; name_id: process; aux_id: thread;
                  ///< payload: (pid << 32) | tid
  SpanBegin = 2,  ///< track, payload: ts bits, name_id, aux_id: category;
                  ///< argc following SpanArg records
  SpanArg = 3,    ///< name_id: key string, aux_id: value string
  SpanEnd = 4,    ///< track, payload: ts bits
  CounterAdd = 5, ///< name_id, payload: int64 delta bits
  GaugeSet = 6,   ///< name_id, payload: double bits
  Annotate = 7,   ///< innermost open span of `track` gains {name_id: aux_id}
};

/// One fixed-size event record. The in-memory struct mirrors the wire
/// layout field-for-field; encode_record/decode_record are still explicit
/// per-field little-endian copies so the format never depends on host
/// struct padding or byte order.
struct Record {
  std::uint8_t kind = 0;      ///< RecordKind
  std::uint8_t argc = 0;      ///< SpanBegin: number of following SpanArgs
  std::uint16_t reserved = 0; ///< must be written 0, ignored on read
  std::uint32_t track = 0;
  std::uint64_t seq = 0;      ///< global record sequence, contiguous from 0
  std::uint64_t payload = 0;  ///< ts / delta / gauge double (bit patterns)
  std::uint32_t name_id = 0;  ///< interned string id (0 = none)
  std::uint32_t aux_id = 0;   ///< second interned string id (0 = none)
};

inline constexpr std::size_t kRecordBytes = 32;

// ---- little-endian codec helpers ----

inline void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
}
inline void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}
inline void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

inline std::uint16_t get_u16(const unsigned char* p) {
  return static_cast<std::uint16_t>(p[0] | (std::uint16_t(p[1]) << 8));
}
inline std::uint32_t get_u32(const unsigned char* p) {
  return std::uint32_t(p[0]) | (std::uint32_t(p[1]) << 8) |
         (std::uint32_t(p[2]) << 16) | (std::uint32_t(p[3]) << 24);
}
inline std::uint64_t get_u64(const unsigned char* p) {
  return std::uint64_t(get_u32(p)) | (std::uint64_t(get_u32(p + 4)) << 32);
}

inline std::uint64_t double_bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}
inline double bits_double(std::uint64_t b) {
  double v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}
inline std::uint64_t i64_bits(std::int64_t v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}
inline std::int64_t bits_i64(std::uint64_t b) {
  std::int64_t v;
  std::memcpy(&v, &b, sizeof(v));
  return v;
}

inline void encode_record(std::string& out, const Record& r) {
  out.push_back(static_cast<char>(r.kind));
  out.push_back(static_cast<char>(r.argc));
  put_u16(out, r.reserved);
  put_u32(out, r.track);
  put_u64(out, r.seq);
  put_u64(out, r.payload);
  put_u32(out, r.name_id);
  put_u32(out, r.aux_id);
}

inline Record decode_record(const unsigned char* p) {
  Record r;
  r.kind = p[0];
  r.argc = p[1];
  r.reserved = get_u16(p + 2);
  r.track = get_u32(p + 4);
  r.seq = get_u64(p + 8);
  r.payload = get_u64(p + 16);
  r.name_id = get_u32(p + 24);
  r.aux_id = get_u32(p + 28);
  return r;
}

inline void encode_chunk_header(std::string& out, const ChunkHeader& h) {
  put_u32(out, h.magic);
  put_u32(out, h.kind);
  put_u32(out, h.payload_bytes);
  put_u32(out, h.crc32);
  put_u64(out, h.chunk_seq);
  put_u32(out, h.writer_thread);
  put_u32(out, h.count);
}

inline ChunkHeader decode_chunk_header(const unsigned char* p) {
  ChunkHeader h;
  h.magic = get_u32(p);
  h.kind = get_u32(p + 4);
  h.payload_bytes = get_u32(p + 8);
  h.crc32 = get_u32(p + 12);
  h.chunk_seq = get_u64(p + 16);
  h.writer_thread = get_u32(p + 24);
  h.count = get_u32(p + 28);
  return h;
}

/// CRC-32 (IEEE 802.3): reflected, polynomial 0xEDB88320, initial value
/// 0xFFFFFFFF, final XOR 0xFFFFFFFF — bit-compatible with zlib's crc32(),
/// so recorded logs can be cross-checked with standard tooling.
inline std::uint32_t crc32(const void* data, std::size_t n,
                           std::uint32_t seed = 0) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i)
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  return ~crc;
}

}  // namespace ftdl::obs::stream
