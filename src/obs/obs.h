// ftdl::obs — cross-layer observability.
//
// One process-wide Registry collects three kinds of signal:
//   * counters  — monotonically accumulated int64 totals with hierarchical
//     slash-separated names ("sim/act_refills");
//   * gauges    — last-written doubles ("host/frame_seconds");
//   * spans     — begin/end intervals on named tracks, either on the wall
//     clock (compiler phases, runtime layer execution) or on a *virtual*
//     clock (the cycle-level simulator emits its LoopT bursts, ActBUF
//     refills, PSumBUF drains and stall intervals in CLKh cycles).
//
// Collection is globally gated by set_enabled(): every instrumentation site
// first reads one global bool, so a build with observability compiled in
// but disabled costs a predicted branch per site and allocates nothing.
// Framework results never depend on the registry — enabling or disabling
// observability leaves compiler and simulator outputs bit-identical (pinned
// by tests/test_obs.cpp).
//
// Backends. The registry records through one of two sinks, selected at
// set_enabled() time:
//   * in-memory (the fallback) — events buffer in one process-wide vector
//     and whole spans are *dropped* past a capacity cap. Right for one
//     bounded profiling run; wrong for a server under sustained traffic.
//   * streaming — set_enabled(true, "run.stream") additionally attaches an
//     append-only ftdl-stream-v1 binary event log (docs/obs-stream-format.md):
//     instrumented threads publish fixed-size records into per-thread
//     chunks and a background serializer flushes sealed chunks to disk, so
//     no span is ever dropped regardless of run length. The in-memory
//     store keeps recording alongside (same capacity rules) so live
//     exports still work; the log is the durable, complete record.
//
// Exporters (schemas documented in docs/observability.md):
//   * chrome_trace_json() — Chrome trace-event JSON ("JSON Object Format"
//     with a traceEvents array of B/E pairs plus process/thread-name
//     metadata), loadable in Perfetto / chrome://tracing;
//   * metrics_json()      — flat {"counters": {...}, "gauges": {...}}
//     snapshot, parseable back via parse_metrics_json().
// Both are *renderings* of registry-shaped state (render_chrome_trace /
// render_metrics_json below); the offline loader in obs/stream_reader.h
// reconstructs that same shape from a recorded log, so exports derived
// from the log are byte-identical to live ones for the same run.
//
// The registry is thread-safe: every mutating and reading operation takes
// one internal mutex, so instrumentation from the compiler session's worker
// threads (src/common/thread_pool.h) is safe. Spans still must nest *per
// track*; parallel code gets that for free by giving each worker thread its
// own track via set_thread_track_name() — ScopedSpan picks the calling
// thread's registered track name up as its default.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace ftdl::obs {

namespace stream {
class StreamWriter;
struct StreamStats;
}  // namespace stream

namespace detail {
extern bool g_enabled;
}  // namespace detail

/// True when collection is on. Off by default so library consumers and the
/// test suite pay (almost) nothing.
inline bool enabled() { return detail::g_enabled; }
void set_enabled(bool on);

/// Backend-selecting overload: enables collection and attaches a streaming
/// ftdl-stream-v1 event log on `stream_path` (empty = in-memory fallback
/// only, identical to set_enabled(on)). Disabling detaches and finishes
/// any attached stream. Throws ftdl::Error when the file cannot be opened.
void set_enabled(bool on, const std::string& stream_path);

/// Sets the calling thread's default ScopedSpan track ("main" unless set).
/// The compiler session names each pool worker ("jobs-0", "jobs-1", ...) so
/// per-task spans land on per-worker tracks and keep the per-track nesting
/// and monotonicity invariants.
void set_thread_track_name(const std::string& name);
const std::string& thread_track_name();

/// Key/value annotations attached to a span ("layer" -> "conv1/3x3").
using SpanArgs = std::vector<std::pair<std::string, std::string>>;

/// One trace-event record. `ts_us` is microseconds on wall-clock tracks and
/// CLKh cycles on the simulator's virtual tracks (1 cycle rendered as 1 us).
struct TraceEvent {
  std::string name;
  std::string cat;     ///< owning subsystem: compiler / sim / runtime / ...
  char ph = 'B';       ///< 'B' begin or 'E' end
  double ts = 0.0;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
  SpanArgs args;
};

/// Flat snapshot of the registry's scalar state.
struct Metrics {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
};

/// Names + Chrome trace ids of one track, in registration order. The
/// public shape shared by the live registry and the offline stream loader
/// so both can drive the same renderers below.
struct TrackNames {
  std::string process;
  std::string thread;
  std::uint32_t pid = 0;
  std::uint32_t tid = 0;
};

/// Renders the ftdl-trace-v1 Chrome trace-event document for the given
/// tracks and event list. Registry::chrome_trace_json() and the offline
/// log exporter both call this, which is what makes a log-derived export
/// byte-identical to a live one for the same run.
std::string render_chrome_trace(const std::vector<TrackNames>& tracks,
                                const std::vector<TraceEvent>& events);

/// Renders the ftdl-metrics-v1 document for a metrics snapshot.
std::string render_metrics_json(const Metrics& m);

class Registry {
 public:
  /// The process-wide registry every instrumentation site writes to.
  static Registry& global();

  // ---- counters / gauges ----
  void add(const std::string& name, std::int64_t delta = 1);
  void set_gauge(const std::string& name, double value);
  std::int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  // ---- tracks & spans ----

  /// Registers (or finds) the track named `process` / `thread` and returns
  /// its handle. Tracks map to Chrome trace pid/tid pairs; every span lives
  /// on exactly one track and spans on one track must nest.
  std::uint32_t track(const std::string& process, const std::string& thread);

  /// Opens a span on `track` at timestamp `ts` (microseconds or cycles,
  /// depending on the track's clock domain). Must be closed by end() with a
  /// timestamp >= ts; timestamps on one track must be monotonic.
  void begin(std::uint32_t track, std::string name, double ts,
             const char* cat, SpanArgs args = {});

  /// Closes the innermost open span of `track`. Unmatched end() calls are
  /// dropped and counted under "obs/unbalanced_ends".
  void end(std::uint32_t track, double ts);

  /// Appends {key, value} to the args of the innermost *open* span of
  /// `track` — for facts only known after the span began (the request id a
  /// Server::submit admission assigns, the cycle count an execution
  /// produced). With no open span the call is dropped and counted under
  /// "obs/unbalanced_annotations".
  void annotate(std::uint32_t track, const std::string& key,
                const std::string& value);

  // ---- streaming backend ----

  /// Attaches `writer` as a streaming sink: from this call on, every track
  /// definition, span begin/end/annotation, counter add and gauge set is
  /// also published to the log. Attachment starts by snapshotting already-
  /// registered tracks and current counter/gauge values into the log, so a
  /// log attached at t reflects all scalar state from t on; events
  /// recorded before attachment live only in the in-memory store. Replaces
  /// (and finishes) any previously attached writer.
  void attach_stream(std::shared_ptr<stream::StreamWriter> writer);

  /// Detaches the streaming sink, finishes the log (flush + close) and
  /// returns the writer's final stats; also accumulates them into the
  /// in-memory counters as obs/stream_records, obs/stream_chunks,
  /// obs/stream_strings and obs/stream_bytes (memory-only by construction
  /// — the log is already closed when they are recorded). No-op returning
  /// zeros when nothing is attached.
  stream::StreamStats detach_stream();

  bool stream_attached() const;

  /// Wall-clock microseconds since the registry's first use (steady clock).
  double now_us();

  /// Caps the recorded event count. Past the cap, whole spans are dropped
  /// (a dropped begin() drops its end() too, so exports stay balanced) and
  /// counted under "obs/dropped_events" — never silently.
  void set_capacity(std::size_t max_events);

  // Unsynchronized views for tests and exporters driven after parallel
  // regions have completed; do not call while spans may still be recorded
  // on other threads. Deliberately outside the thread-safety analysis —
  // the safety argument is quiescence, not locking.
  std::size_t event_count() const FTDL_NO_THREAD_SAFETY_ANALYSIS {
    return events_.size();
  }
  const std::vector<TraceEvent>& events() const
      FTDL_NO_THREAD_SAFETY_ANALYSIS {
    return events_;
  }

  Metrics metrics() const;

  // ---- exporters ----
  std::string chrome_trace_json() const;
  std::string metrics_json() const;
  void write_chrome_trace(const std::string& path) const;
  void write_metrics(const std::string& path) const;

  /// Clears events, counters, gauges, tracks and the wall-clock epoch,
  /// detaching (and finishing) any attached stream first.
  void reset();

 private:
  struct TrackInfo {
    std::string process;
    std::string thread;
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;
    /// Stack of open spans: index into events_ of the B record, or -1 when
    /// the span was dropped at the capacity cap (annotations skip it and
    /// the matching end() emits no E event).
    std::vector<std::int64_t> open;
  };

  void bump_counter_locked(const std::string& name, std::int64_t delta)
      FTDL_REQUIRES(mu_);
  void publish_track_def_locked(std::uint32_t index) FTDL_REQUIRES(mu_);

  // All state below is guarded by mu_ (one coarse lock; instrumentation
  // sites are far from any inner loop). Stream publication happens inside
  // the same critical section that mutates the in-memory state, so record
  // sequence numbers in the log reproduce the registry's event order
  // exactly; the writer's fast path is one uncontended per-thread mutex,
  // and all slow work (I/O, CRC, framing) lives on its serializer thread.
  mutable Mutex mu_;
  std::vector<TraceEvent> events_ FTDL_GUARDED_BY(mu_);
  std::vector<TrackInfo> tracks_ FTDL_GUARDED_BY(mu_);
  std::map<std::string, std::int64_t> counters_ FTDL_GUARDED_BY(mu_);
  std::map<std::string, double> gauges_ FTDL_GUARDED_BY(mu_);
  std::shared_ptr<stream::StreamWriter> stream_ FTDL_GUARDED_BY(mu_);
  std::size_t capacity_ FTDL_GUARDED_BY(mu_) = 1u << 20;
  bool epoch_set_ FTDL_GUARDED_BY(mu_) = false;
  std::int64_t epoch_ns_ FTDL_GUARDED_BY(mu_) = 0;
};

/// RAII wall-clock span on the given track of the "host" process. Samples
/// the clock only when observability is enabled at construction. With no
/// explicit thread name (nullptr), the span lands on the calling thread's
/// registered track (thread_track_name(): "main", or the pool worker's).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* cat, std::string name, SpanArgs args = {},
                      const char* thread = nullptr);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches {key, value} to this (still open) span — for values that are
  /// only known after construction, like an admission-assigned request id.
  /// No-op when observability was off at construction.
  void add_arg(const std::string& key, const std::string& value);

 private:
  bool active_ = false;
  std::uint32_t track_ = 0;
};

// Convenience wrappers: no-ops (one branch) when observability is off.
inline void count(const char* name, std::int64_t delta = 1) {
  if (enabled()) Registry::global().add(name, delta);
}
inline void gauge(const char* name, double value) {
  if (enabled()) Registry::global().set_gauge(name, value);
}

/// Parses a metrics_json() document back into a Metrics snapshot. Throws
/// ftdl::Error on documents that do not match the ftdl-metrics-v1 schema.
Metrics parse_metrics_json(const std::string& json);

}  // namespace ftdl::obs
