// Structured channel pruning (the paper's conclusion: FTDL is designed to
// combine with "algorithm level acceleration techniques such as model
// compression and quantization").
//
// Prunes convolution output channels by a keep ratio and propagates the
// reduced widths through the dataflow graph: consumers' input channels
// shrink, concat widths become the sum of pruned branches, pooling passes
// channels through, and fully-connected input sizes are recomputed from the
// pruned producer shape. Structured (whole-channel) pruning is the
// FPGA-friendly variant — the overlay executes the smaller dense layer
// directly, no sparse indexing needed.
//
// Residual-safety: layers feeding a residual add (EwopOp::AddRelu) keep
// their full width so the two summands stay shape-compatible.
#pragma once

#include <map>
#include <string>

#include "nn/network.h"

namespace ftdl::prune {

struct PruneSpec {
  /// Keep ratio applied to every prunable conv's output channels (0, 1].
  double conv_keep_ratio = 1.0;
  /// Kept channel counts are rounded up to a multiple of this (hardware-
  /// friendly widths; 1 disables rounding).
  int channel_multiple = 4;
  /// Per-layer keep-ratio overrides by layer name.
  std::map<std::string, double> overrides;
};

/// Statistics of a pruning pass.
struct PruneReport {
  std::int64_t macs_before = 0;
  std::int64_t macs_after = 0;
  std::int64_t weights_before = 0;
  std::int64_t weights_after = 0;
  int layers_pruned = 0;
  int layers_protected = 0;  ///< kept full width for residual safety

  double mac_reduction() const {
    return 1.0 - double(macs_after) / double(macs_before);
  }
};

/// Returns the pruned network (name suffixed "-pruned"). Throws
/// ftdl::ConfigError on an invalid spec or graph.
nn::Network prune_channels(const nn::Network& net, const PruneSpec& spec,
                           PruneReport* report = nullptr);

}  // namespace ftdl::prune
