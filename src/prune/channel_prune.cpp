#include "prune/channel_prune.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/error.h"
#include "common/math_util.h"

namespace ftdl::prune {

namespace {

struct Shape {
  int c = 0, h = 0, w = 0;
  std::int64_t elems() const { return std::int64_t{c} * h * w; }
};

int rounded_keep(int channels, double ratio, int multiple) {
  const int kept = static_cast<int>(std::ceil(channels * ratio));
  const int rounded =
      static_cast<int>(round_up(std::max(kept, 1), std::max(multiple, 1)));
  return std::min(rounded, channels);
}

}  // namespace

nn::Network prune_channels(const nn::Network& net, const PruneSpec& spec,
                           PruneReport* report) {
  if (spec.conv_keep_ratio <= 0.0 || spec.conv_keep_ratio > 1.0)
    throw ConfigError("conv_keep_ratio must be in (0, 1]");
  for (const auto& [name, r] : spec.overrides) {
    if (r <= 0.0 || r > 1.0)
      throw ConfigError("override keep ratio for " + name + " out of (0, 1]");
    if (net.find(name) < 0)
      throw ConfigError("override names unknown layer " + name);
  }
  net.validate_graph();

  // Residual-safety: producers feeding an AddRelu keep full width.
  std::unordered_set<std::string> protected_layers;
  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    const nn::Layer& l = net.layers()[i];
    if (l.kind == nn::LayerKind::Ewop && l.ewop_op == nn::EwopOp::AddRelu) {
      for (const std::string& in : net.resolved_inputs(i)) {
        protected_layers.insert(in);
      }
    }
  }
  // Inputs of protected Ewop/pool chains propagate protection backwards one
  // hop at a time (a pool between a conv and the add still ties widths).
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < net.layers().size(); ++i) {
      const nn::Layer& l = net.layers()[i];
      const bool passthrough = l.kind == nn::LayerKind::Pool ||
                               (l.kind == nn::LayerKind::Ewop &&
                                l.ewop_op == nn::EwopOp::Generic);
      if (passthrough && protected_layers.contains(l.name)) {
        for (const std::string& in : net.resolved_inputs(i)) {
          changed |= protected_layers.insert(in).second;
        }
      }
    }
  }

  PruneReport rep;
  nn::Network out(net.name() + "-pruned");
  std::unordered_map<std::string, Shape> shapes;

  auto producer_shape = [&](const std::string& name,
                            const nn::Layer& original) -> Shape {
    if (name == nn::kNetworkInput) {
      // The network input keeps the original layer's declared geometry.
      return Shape{original.in_c, original.in_h, original.in_w};
    }
    auto it = shapes.find(name);
    FTDL_ASSERT(it != shapes.end());
    return it->second;
  };

  for (std::size_t i = 0; i < net.layers().size(); ++i) {
    nn::Layer l = net.layers()[i];
    const auto inputs = net.resolved_inputs(i);
    rep.macs_before += l.macs() * l.repeat;
    rep.weights_before += l.weight_count();

    switch (l.kind) {
      case nn::LayerKind::Conv: {
        const Shape in = producer_shape(inputs[0], l);
        l.in_c = in.c;
        l.in_h = in.h;
        l.in_w = in.w;
        const bool is_output = (i + 1 == net.layers().size());
        const bool keep_full =
            protected_layers.contains(l.name) || is_output;
        double ratio = spec.conv_keep_ratio;
        if (auto it = spec.overrides.find(l.name); it != spec.overrides.end())
          ratio = it->second;
        if (keep_full) {
          ++rep.layers_protected;
        } else {
          const int pruned =
              rounded_keep(l.out_c, ratio, spec.channel_multiple);
          if (pruned < l.out_c) ++rep.layers_pruned;
          l.out_c = pruned;
        }
        shapes[l.name] = Shape{l.out_c, l.out_h(), l.out_w()};
        break;
      }
      case nn::LayerKind::Depthwise: {
        // Depthwise channels are tied to the producer: the layer follows
        // whatever pruning its input received (one filter per channel).
        const Shape in = producer_shape(inputs[0], l);
        l.in_c = in.c;
        l.out_c = in.c;
        l.in_h = in.h;
        l.in_w = in.w;
        shapes[l.name] = Shape{l.in_c, l.out_h(), l.out_w()};
        break;
      }
      case nn::LayerKind::Pool: {
        const Shape in = producer_shape(inputs[0], l);
        l.in_c = in.c;
        l.in_h = in.h;
        l.in_w = in.w;
        shapes[l.name] = Shape{l.in_c, l.out_h(), l.out_w()};
        break;
      }
      case nn::LayerKind::Concat: {
        int c = 0;
        Shape first = producer_shape(inputs[0], l);
        for (const std::string& in : inputs) c += producer_shape(in, l).c;
        shapes[l.name] = Shape{c, first.h, first.w};
        break;
      }
      case nn::LayerKind::Ewop: {
        // Element-wise op counts stay as declared (AddRelu producers are
        // protected, so their widths are unchanged; Generic stages carry
        // workload-level counts independent of pruning).
        shapes[l.name] = producer_shape(inputs[0], l);
        break;
      }
      case nn::LayerKind::MatMul: {
        const Shape in = producer_shape(inputs[0], l);
        if (in.c > 0) l.mm_m = in.elems();  // re-derive flattened width
        shapes[l.name] =
            Shape{static_cast<int>(l.mm_n), 1, static_cast<int>(l.mm_p)};
        break;
      }
    }

    rep.macs_after += l.macs() * l.repeat;
    rep.weights_after += l.weight_count();
    out.add(std::move(l));
  }

  out.validate_graph();
  if (report) *report = rep;
  return out;
}

}  // namespace ftdl::prune
